// Repository-level benchmarks: one testing.B per table/figure of the
// paper, plus the DESIGN.md ablations. Each benchmark runs its figure's
// representative configuration at Quick scale (so `go test -bench=.`
// completes in minutes) and reports the simulated virtual latency as a
// custom metric "virt-us" — wall-clock ns/op measures only the simulator
// itself. Regenerate the full-scale tables with cmd/mhabench.
package mha

import (
	"fmt"
	"testing"

	"mha/internal/apps/dltrain"
	"mha/internal/apps/matvec"
	"mha/internal/bench"
	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

// reportVirt attaches the virtual-time result to the benchmark output.
func reportVirt(b *testing.B, d sim.Duration) {
	b.ReportMetric(d.Micros(), "virt-us")
}

func BenchmarkFig01PtPtBandwidth(b *testing.B) {
	prm := netmodel.Thor()
	var last float64
	for i := 0; i < b.N; i++ {
		last = bench.PtPtBandwidth(topology.New(2, 1, 2), prm, 4<<20)
	}
	b.ReportMetric(last, "MB/s")
}

func BenchmarkFig02RingTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rec := trace.New()
		w := mpi.New(mpi.Config{Topo: topology.New(2, 2, 2), Tracer: rec, Phantom: true})
		err := w.Run(func(p *mpi.Proc) {
			collectives.RingAllgather(p, w.CommWorld(), mpi.Phantom(256<<10), mpi.Phantom(256<<10*4))
		})
		if err != nil {
			b.Fatal(err)
		}
		if rec.Len() == 0 {
			b.Fatal("no trace events")
		}
	}
}

func BenchmarkFig03PtPtLatency(b *testing.B) {
	prm := netmodel.Thor()
	var last sim.Duration
	for i := 0; i < b.N; i++ {
		last = bench.PtPtLatency(topology.New(2, 1, 2), prm, 4<<20)
	}
	reportVirt(b, last)
}

func BenchmarkFig05OffloadTuning(b *testing.B) {
	prm := netmodel.Thor()
	topo := topology.New(1, 8, 2)
	for i := 0; i < b.N; i++ {
		if d, _ := core.TuneOffload(topo, prm, 4<<20, 6); d <= 0 {
			b.Fatal("tuner found no offload")
		}
	}
}

func benchInter(b *testing.B, topo topology.Cluster, m int, cfg core.InterConfig) {
	prm := netmodel.Thor()
	var last sim.Duration
	for i := 0; i < b.N; i++ {
		last = core.MeasureInter(topo, prm, m, cfg)
	}
	reportVirt(b, last)
}

func BenchmarkFig08RDvsRing(b *testing.B) {
	topo := topology.New(4, 8, 2)
	b.Run("rd", func(b *testing.B) { benchInter(b, topo, 64<<10, core.InterConfig{LeaderAlg: core.ForceRD}) })
	b.Run("ring", func(b *testing.B) { benchInter(b, topo, 64<<10, core.InterConfig{LeaderAlg: core.ForceRing}) })
}

func BenchmarkFig09ModelIntra(b *testing.B) {
	prm := netmodel.Thor()
	topo := topology.New(1, 4, 2)
	var last sim.Duration
	for i := 0; i < b.N; i++ {
		last = core.MeasureIntra(topo, prm, 1<<20, core.AutoOffload)
	}
	reportVirt(b, last)
}

func BenchmarkFig10ModelInter(b *testing.B) {
	benchInter(b, topology.New(4, 8, 2), 64<<10, core.InterConfig{})
}

func benchProfileAllgather(b *testing.B, topo topology.Cluster, m int) {
	prm := netmodel.Thor()
	for _, prof := range bench.Profiles() {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			var last sim.Duration
			for i := 0; i < b.N; i++ {
				last = bench.AllgatherLatency(topo, prm, m, prof)
			}
			reportVirt(b, last)
		})
	}
}

func BenchmarkFig11IntraAllgather(b *testing.B) {
	benchProfileAllgather(b, topology.New(1, 8, 2), 4<<20)
}

func BenchmarkFig12Allgather256(b *testing.B) {
	benchProfileAllgather(b, topology.New(4, 8, 2), 64<<10)
}

func BenchmarkFig13Allgather512(b *testing.B) {
	benchProfileAllgather(b, topology.New(8, 8, 2), 64<<10)
}

func BenchmarkFig14Allgather1024(b *testing.B) {
	benchProfileAllgather(b, topology.New(8, 16, 2), 64<<10)
}

func BenchmarkFig15Allreduce(b *testing.B) {
	prm := netmodel.Thor()
	topo := topology.New(4, 8, 2)
	for _, prof := range bench.Profiles() {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			var last sim.Duration
			for i := 0; i < b.N; i++ {
				last = bench.AllreduceLatency(topo, prm, 1<<20, prof)
			}
			reportVirt(b, last)
		})
	}
}

func BenchmarkFig16MatVec(b *testing.B) {
	for _, prof := range bench.Profiles() {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				res, err := matvec.Run(matvec.Config{
					Rows: 1024, Cols: 32768,
					Topo: topology.New(4, 8, 2), Profile: prof, Phantom: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				gflops = res.GFLOPS
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

func BenchmarkFig17DLTraining(b *testing.B) {
	for _, net := range dltrain.Networks() {
		net := net
		b.Run(net.Name, func(b *testing.B) {
			var imgs float64
			for i := 0; i < b.N; i++ {
				res, err := dltrain.Run(dltrain.Config{
					Net: net, Topo: topology.New(4, 8, 2), Profile: core.Profile(),
				})
				if err != nil {
					b.Fatal(err)
				}
				imgs = res.ImagesPerSec
			}
			b.ReportMetric(imgs, "img/s")
		})
	}
}

func BenchmarkAblationPhase2(b *testing.B) {
	topo := topology.New(4, 8, 2)
	for _, cfg := range []struct {
		name string
		c    core.InterConfig
	}{
		{"ring", core.InterConfig{LeaderAlg: core.ForceRing}},
		{"rd", core.InterConfig{LeaderAlg: core.ForceRD}},
		{"auto", core.InterConfig{}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) { benchInter(b, topo, 64<<10, cfg.c) })
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	topo := topology.New(4, 8, 2)
	b.Run("overlap", func(b *testing.B) {
		benchInter(b, topo, 64<<10, core.InterConfig{LeaderAlg: core.ForceRing})
	})
	b.Run("sequential", func(b *testing.B) {
		benchInter(b, topo, 64<<10, core.InterConfig{LeaderAlg: core.ForceRing, NoOverlap: true})
	})
}

func BenchmarkAblationOffload(b *testing.B) {
	prm := netmodel.Thor()
	topo := topology.New(1, 8, 2)
	for _, cfg := range []struct {
		name string
		d    float64
	}{{"none", 0}, {"analytic", core.AutoOffload}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var last sim.Duration
			for i := 0; i < b.N; i++ {
				last = core.MeasureIntra(topo, prm, 4<<20, cfg.d)
			}
			reportVirt(b, last)
		})
	}
}

func BenchmarkAblationStripe(b *testing.B) {
	for _, thr := range []struct {
		name string
		v    int
	}{{"16KB", 16 << 10}, {"never", 1 << 30}} {
		thr := thr
		b.Run(thr.name, func(b *testing.B) {
			prm := netmodel.Thor()
			prm.StripeThreshold = thr.v
			var last sim.Duration
			for i := 0; i < b.N; i++ {
				last = bench.PtPtLatency(topology.New(2, 1, 2), prm, 4<<20)
			}
			reportVirt(b, last)
		})
	}
}

func BenchmarkAblationRails(b *testing.B) {
	prm := netmodel.Thor()
	for _, h := range []int{1, 2, 4, 8} {
		h := h
		b.Run(fmt.Sprintf("H=%d", h), func(b *testing.B) {
			topo := topology.New(4, 8, h)
			var last sim.Duration
			for i := 0; i < b.N; i++ {
				last = core.MeasureInter(topo, prm, 256<<10, core.InterConfig{})
			}
			reportVirt(b, last)
		})
	}
}

func BenchmarkExtNUMAThreeLevel(b *testing.B) {
	topo := topology.Cluster{Nodes: 4, PPN: 16, HCAs: 2, Sockets: 2}
	if err := topo.Validate(); err != nil {
		b.Fatal(err)
	}
	prm := netmodel.NumaThor()
	m := 256 << 10
	measure := func(b *testing.B, alg func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)) {
		var last sim.Time
		for i := 0; i < b.N; i++ {
			w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
			var worst sim.Time
			err := w.Run(func(p *mpi.Proc) {
				alg(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()))
				if p.Now() > worst {
					worst = p.Now()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			last = worst
		}
		reportVirt(b, sim.Duration(last))
	}
	b.Run("2level", func(b *testing.B) { measure(b, core.MHAInterAllgather) })
	b.Run("3level", func(b *testing.B) { measure(b, core.MHA3LevelAllgather) })
}

func BenchmarkExtCollectives(b *testing.B) {
	topo := topology.New(4, 8, 2)
	prm := netmodel.Thor()
	measure := func(b *testing.B, body func(p *mpi.Proc, w *mpi.World)) {
		var last sim.Time
		for i := 0; i < b.N; i++ {
			w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
			var worst sim.Time
			err := w.Run(func(p *mpi.Proc) {
				body(p, w)
				if p.Now() > worst {
					worst = p.Now()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			last = worst
		}
		reportVirt(b, sim.Duration(last))
	}
	b.Run("bcast-flat", func(b *testing.B) {
		measure(b, func(p *mpi.Proc, w *mpi.World) {
			collectives.BinomialBcast(p, w.CommWorld(), 0, mpi.Phantom(4<<20))
		})
	})
	b.Run("bcast-mha", func(b *testing.B) {
		measure(b, func(p *mpi.Proc, w *mpi.World) {
			core.MHABcast(p, w, 0, mpi.Phantom(4<<20))
		})
	})
	b.Run("alltoall-flat", func(b *testing.B) {
		measure(b, func(p *mpi.Proc, w *mpi.World) {
			n := 8 << 10 * p.Size()
			collectives.PairwiseAlltoall(p, w.CommWorld(), mpi.Phantom(n), mpi.Phantom(n))
		})
	})
	b.Run("alltoall-mha", func(b *testing.B) {
		measure(b, func(p *mpi.Proc, w *mpi.World) {
			n := 8 << 10 * p.Size()
			core.MHAAlltoall(p, w, mpi.Phantom(n), mpi.Phantom(n))
		})
	})
	b.Run("allgatherv-mha", func(b *testing.B) {
		measure(b, func(p *mpi.Proc, w *mpi.World) {
			counts := make([]int, p.Size())
			total := 0
			for i := range counts {
				counts[i] = 16<<10 + i*1024
				total += counts[i]
			}
			core.MHAAllgatherv(p, w, mpi.Phantom(counts[p.Rank()]), mpi.Phantom(total), counts)
		})
	})
}

func BenchmarkExtJitterDistribution(b *testing.B) {
	prm := netmodel.Thor()
	prm.Jitter = 0.08
	topo := topology.New(4, 8, 2)
	var st bench.Stats
	for i := 0; i < b.N; i++ {
		st = bench.NoisyAllgather(topo, prm, 64<<10, core.Profile(), 5)
	}
	b.ReportMetric(st.Mean, "mean-us")
	b.ReportMetric(st.Std, "std-us")
}

func BenchmarkExtFabricTaper(b *testing.B) {
	for _, taper := range []float64{1, 4} {
		taper := taper
		b.Run(fmt.Sprintf("taper-%.0f", taper), func(b *testing.B) {
			prm := netmodel.Thor()
			prm.NodesPerLeaf = 1
			prm.Oversubscription = taper
			var last sim.Duration
			for i := 0; i < b.N; i++ {
				last = bench.AllgatherLatency(topology.New(4, 8, 2), prm, 64<<10, core.Profile())
			}
			reportVirt(b, last)
		})
	}
}

// BenchmarkSimEngine measures raw simulator throughput: events/second for
// a ping-pong chain, the figure of merit for the substrate itself.
func BenchmarkSimEngine(b *testing.B) {
	prm := netmodel.Thor()
	topo := topology.New(2, 16, 2)
	for i := 0; i < b.N; i++ {
		w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
		err := w.Run(func(p *mpi.Proc) {
			c := w.CommWorld()
			next := (p.Rank() + 1) % p.Size()
			prev := (p.Rank() - 1 + p.Size()) % p.Size()
			for k := 0; k < 8; k++ {
				p.SendRecv(c, next, k, mpi.Phantom(1024), prev, k)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
