// Command mhabench regenerates the tables and figures of the paper's
// evaluation (Section 5) from the simulator, plus the ablations listed in
// DESIGN.md.
//
// Usage:
//
//	mhabench -list                 # enumerate experiment ids
//	mhabench -fig 14b              # one experiment at full (paper) scale
//	mhabench -fig 11a,11b -quick   # several, at reduced scale
//	mhabench -all -quick           # the whole suite, CI-sized
//
// Full scale reproduces the paper's exact topologies (up to 32 nodes x 32
// PPN = 1024 simulated ranks) and takes a few minutes for the largest
// figures; -quick shrinks topologies 4x in each dimension and runs in
// seconds while preserving every qualitative shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mha/internal/bench"
)

func main() {
	var (
		fig   = flag.String("fig", "", "comma-separated experiment ids (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced-scale topologies (seconds instead of minutes)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		timed = flag.Bool("time", false, "print wall-clock time per experiment")
		asCSV = flag.Bool("csv", false, "emit CSV tables instead of aligned text")
		tier1 = flag.String("tier1", "", "also write the tier-1 perf metrics (BENCH_tier1.json) to this path")
	)
	flag.Parse()
	bench.CSVMode = *asCSV

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	sc := bench.Full
	if *quick {
		sc = bench.Quick
	}

	var todo []bench.Experiment
	switch {
	case *all:
		todo = bench.Registry()
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	default:
		if *tier1 == "" {
			flag.Usage()
			os.Exit(2)
		}
	}

	fmt.Printf("# mhabench scale=%s experiments=%d\n", sc, len(todo))
	for _, e := range todo {
		start := time.Now()
		if err := e.Run(os.Stdout, sc); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *timed {
			fmt.Printf("(%s took %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *tier1 != "" {
		f, err := os.Create(*tier1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = bench.WriteTier1(f, sc)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing tier-1 metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote tier-1 metrics to %s\n", *tier1)
	}
}
