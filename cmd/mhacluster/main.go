// Command mhacluster drives the multi-tenant cluster scheduler
// (internal/cluster): streams of collective jobs admitted onto ONE shared
// simulated fabric, contending for HCA rails and memory buses in
// overlapping virtual time. It answers operator questions the single-job
// tools cannot: how much does co-scheduling slow each tenant down, which
// placement policy contains the interference, and what does the queue look
// like under load.
//
// Usage:
//
//	mhacluster run -nodes 8 -ppn 4 -hcas 2 -jobs 8 -policy rail-aware   # one workload, per-job metrics
//	mhacluster sweep -jobs 4,8,16,32 -policy rail-aware                 # load sweep, aggregate metrics
//	mhacluster policy-compare -workload burst                           # all policies on one workload
//
// Workloads are deterministic: -workload random draws a seeded stream of
// allgather/allreduce/bcast jobs; -workload burst issues simultaneous
// 256 KB allgathers that force rail sharing under packed placement. The
// exit status is 0 on success; byte-check failures (with -payload) and
// teardown violations exit 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mha/internal/bench"
	"mha/internal/cluster"
	"mha/internal/faults"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "policy-compare":
		err = cmdCompare(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "mhacluster: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mhacluster: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mhacluster <subcommand> [flags]

subcommands:
  run             run one workload under one policy; print per-job metrics
  sweep           run the workload at several job counts; print aggregates
  policy-compare  run one workload under every placement policy

run 'mhacluster <subcommand> -h' for that subcommand's flags.
`)
}

// opts carries the flags shared by every subcommand.
type opts struct {
	nodes, ppn, hcas *int
	workload         *string
	jobs             *string
	seed             *int64
	policy           *string
	queue            *string
	maxInFlight      *int
	payload          *bool
	horizon          *time.Duration
	faultSpec        *string
	blind            *bool
	timeline         *bool
	width            *int
}

func addFlags(fs *flag.FlagSet) *opts {
	o := &opts{}
	o.nodes = fs.Int("nodes", 8, "number of nodes")
	o.ppn = fs.Int("ppn", 4, "processes per node")
	o.hcas = fs.Int("hcas", 2, "HCA rails per node")
	o.workload = fs.String("workload", "random", "workload kind: random (seeded stream) or burst (simultaneous allgathers)")
	o.jobs = fs.String("jobs", "8", "job count; sweep accepts a comma-separated list")
	o.seed = fs.Int64("seed", 42, "seed for -workload random")
	o.policy = fs.String("policy", cluster.RailAware, "placement policy: packed, spread, or rail-aware")
	o.queue = fs.String("queue", "fifo", "admission queue: fifo or priority")
	o.maxInFlight = fs.Int("maxinflight", 0, "backpressure knob: max jobs running at once (0 = unlimited)")
	o.payload = fs.Bool("payload", false, "carry and byte-check real payloads (slower)")
	o.horizon = fs.Duration("horizon", 400*time.Microsecond, "arrival horizon for -workload random (virtual time)")
	o.faultSpec = fs.String("faults", "", "fault schedule, ';'-separated lines of the internal/faults spec language")
	o.blind = fs.Bool("blind", false, "run the transport health-blind (naive failover baseline)")
	o.timeline = fs.Bool("timeline", false, "print an ASCII timeline of the run")
	o.width = fs.Int("width", 100, "timeline width in columns")
	return o
}

func (o *opts) topo() topology.Cluster {
	return topology.New(*o.nodes, *o.ppn, *o.hcas)
}

func (o *opts) faults() (*faults.Schedule, error) {
	if *o.faultSpec == "" {
		return nil, nil
	}
	return faults.Parse(strings.ReplaceAll(*o.faultSpec, ";", "\n"))
}

// jobCounts parses the -jobs flag (a single count for run/policy-compare,
// a comma-separated list for sweep).
func (o *opts) jobCounts() ([]int, error) {
	parts := strings.Split(*o.jobs, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -jobs entry %q (want positive integers)", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// makeJobs builds the deterministic workload.
func (o *opts) makeJobs(n int) ([]cluster.JobSpec, error) {
	topo := o.topo()
	switch *o.workload {
	case "random":
		return cluster.RandomJobs(*o.seed, n, topo, sim.Duration(*o.horizon)), nil
	case "burst":
		ranks := 6
		if ranks > topo.Size() {
			ranks = topo.Size()
		}
		jobs := make([]cluster.JobSpec, n)
		for i := range jobs {
			jobs[i] = cluster.JobSpec{ID: i, Coll: cluster.Allgather, Msg: 256 << 10, Ranks: ranks}
		}
		return jobs, nil
	}
	return nil, fmt.Errorf("unknown workload %q (want random or burst)", *o.workload)
}

// runOnce executes one cluster run and fails on byte errors.
func runOnce(o *opts, policy string, n int, rec *trace.Recorder) (*cluster.Result, error) {
	sched, err := o.faults()
	if err != nil {
		return nil, err
	}
	jobs, err := o.makeJobs(n)
	if err != nil {
		return nil, err
	}
	res, err := cluster.Run(cluster.Config{
		Topo:        o.topo(),
		Policy:      policy,
		Queue:       *o.queue,
		MaxInFlight: *o.maxInFlight,
		Payload:     *o.payload,
		Tracer:      rec,
		Faults:      sched,
		FaultBlind:  *o.blind,
	}, jobs)
	if err != nil {
		return nil, err
	}
	if len(res.Errors) > 0 {
		return nil, fmt.Errorf("byte-check failures: %s", strings.Join(res.Errors, "; "))
	}
	return res, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	o := addFlags(fs)
	fs.Parse(args)
	counts, err := o.jobCounts()
	if err != nil {
		return err
	}
	var rec *trace.Recorder
	if *o.timeline {
		rec = trace.New()
	}
	res, err := runOnce(o, *o.policy, counts[0], rec)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %v  policy=%s queue=%s maxinflight=%d workload=%s\n",
		o.topo(), *o.policy, *o.queue, *o.maxInFlight, *o.workload)
	t := bench.NewTable("per-job metrics",
		"job", "coll", "ranks", "size", "arrival (us)", "wait (us)", "makespan (us)", "slowdown", "rail share", "nodes")
	for _, jm := range res.Jobs {
		t.Add(jm.Spec.ID, jm.Spec.Coll.String(), jm.Spec.Ranks, bench.SizeLabel(jm.Spec.Msg),
			jm.Spec.Arrival.Micros(), jm.Wait.Micros(), jm.Makespan.Micros(),
			fmt.Sprintf("%.2fx", jm.Slowdown), fmt.Sprintf("%.2f", jm.RailShare),
			fmt.Sprintf("%v", jm.Placement))
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("makespan %.2f us, mean wait %.2f us, mean slowdown %.2fx, max slowdown %.2fx, trace hash %#x\n",
		res.Makespan.Micros(), res.MeanWait.Micros(), res.MeanSlowdown, res.MaxSlowdown, res.Hash)
	if *o.timeline {
		fmt.Print(rec.Timeline(*o.width))
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	o := addFlags(fs)
	fs.Parse(args)
	counts, err := o.jobCounts()
	if err != nil {
		return err
	}
	t := bench.NewTable(fmt.Sprintf("load sweep, policy=%s queue=%s", *o.policy, *o.queue),
		"jobs", "makespan (us)", "mean wait (us)", "mean slowdown", "max slowdown")
	for _, n := range counts {
		res, err := runOnce(o, *o.policy, n, nil)
		if err != nil {
			return fmt.Errorf("%d jobs: %v", n, err)
		}
		t.Add(n, res.Makespan.Micros(), res.MeanWait.Micros(),
			fmt.Sprintf("%.2fx", res.MeanSlowdown), fmt.Sprintf("%.2fx", res.MaxSlowdown))
	}
	return t.Fprint(os.Stdout)
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("policy-compare", flag.ExitOnError)
	o := addFlags(fs)
	fs.Parse(args)
	counts, err := o.jobCounts()
	if err != nil {
		return err
	}
	t := bench.NewTable(fmt.Sprintf("policy comparison, workload=%s jobs=%d", *o.workload, counts[0]),
		"policy", "makespan (us)", "mean wait (us)", "mean slowdown", "max slowdown")
	best, bestSlow := "", 0.0
	for _, policy := range cluster.Policies() {
		res, err := runOnce(o, policy, counts[0], nil)
		if err != nil {
			return fmt.Errorf("%s: %v", policy, err)
		}
		t.Add(policy, res.Makespan.Micros(), res.MeanWait.Micros(),
			fmt.Sprintf("%.2fx", res.MeanSlowdown), fmt.Sprintf("%.2fx", res.MaxSlowdown))
		if best == "" || res.MeanSlowdown < bestSlow {
			best, bestSlow = policy, res.MeanSlowdown
		}
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("lowest mean slowdown: %s (%.2fx)\n", best, bestSlow)
	return nil
}
