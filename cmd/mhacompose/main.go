// Command mhacompose works with compositional collectives (the
// internal/compose layer): declarative pipelines of multicast / reduce /
// fence primitives over a machine hierarchy, compiled to the schedule
// IR. It prints the standard compositions and the hierarchy a machine
// spec induces, lowers a composition to the IR, prices and checks the
// lowered schedule with the static analyzer, and runs a registered
// derived variant on the simulated MPI runtime under the byte-exact
// verification oracle.
//
// Usage:
//
//	mhacompose list                                         # registered derived variants
//	mhacompose describe -coll reduce-scatter                # pipeline + hierarchy levels
//	mhacompose lower -coll alltoall -nodes 4 -ppn 4 -msg 4096   # schedule IR on stdout
//	mhacompose analyze -coll reduce-scatter -flat -msg 65536    # analyzer report
//	mhacompose run -name compose-rs -nodes 2 -ppn 4 -msg 1024   # execute + verify bytes
//	mhacompose lower -f pipeline.txt -nodes 2 -ppn 2            # custom composition file
//
// The exit status is 0 on success; analyzer violations and verification
// mismatches exit 1, so scripts can gate on derivation validity.
package main

import (
	"flag"
	"fmt"
	"os"

	"mha/internal/compose"
	"mha/internal/netmodel"
	"mha/internal/sched"
	"mha/internal/topology"
	"mha/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "describe":
		err = cmdDescribe(os.Args[2:])
	case "lower":
		err = cmdLower(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "mhacompose: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mhacompose: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mhacompose <subcommand> [flags]

subcommands:
  list      show the registered derived variants and their pipelines
  describe  print a composition's pipeline and the machine hierarchy
  lower     compile a composition to the schedule IR (text on stdout)
  analyze   lower, then check invariants and price the critical path
  run       execute a registered variant with the byte-exact oracle

run 'mhacompose <subcommand> -h' for that subcommand's flags.
`)
}

// topoFlags registers the machine-shape flags on fs and returns a
// constructor to call after parsing.
func topoFlags(fs *flag.FlagSet) func() (topology.Cluster, error) {
	nodes := fs.Int("nodes", 2, "number of nodes")
	ppn := fs.Int("ppn", 2, "processes per node")
	hcas := fs.Int("hcas", 2, "network rails per node")
	sockets := fs.Int("sockets", 0, "NUMA sockets per node (0 = uniform)")
	layout := fs.String("layout", "block", "rank layout: block or cyclic")
	return func() (topology.Cluster, error) {
		c := topology.New(*nodes, *ppn, *hcas)
		c.Sockets = *sockets
		switch *layout {
		case "block":
		case "cyclic":
			c.Layout = topology.Cyclic
		default:
			return c, fmt.Errorf("unknown layout %q (want block or cyclic)", *layout)
		}
		return c, nil
	}
}

// compFlags registers the composition-selection flags and returns a
// loader: either a standard composition picked by collective name (flat
// or hierarchical), or a pipeline file parsed from -f.
func compFlags(fs *flag.FlagSet) func() (compose.Composition, error) {
	coll := fs.String("coll", "", "collective: allgather, reduce-scatter, alltoall, gather, scatter, allreduce, bcast")
	flat := fs.Bool("flat", false, "use the flat (topology-oblivious) standard composition")
	file := fs.String("f", "", "composition file (overrides -coll)")
	return func() (compose.Composition, error) {
		if *file != "" {
			data, err := os.ReadFile(*file)
			if err != nil {
				return compose.Composition{}, err
			}
			return compose.ParseComposition(string(data))
		}
		if *coll == "" {
			return compose.Composition{}, fmt.Errorf("need -coll or -f")
		}
		c, err := compose.ParseCollective(*coll)
		if err != nil {
			return compose.Composition{}, err
		}
		if *flat {
			return compose.Flat(c), nil
		}
		if c == compose.Allreduce {
			// The standard allreduce is already a flat pipeline
			// (reduce-scatter ring, fence, allgather ring).
			return compose.Flat(c), nil
		}
		return compose.Hierarchical(c), nil
	}
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, v := range compose.Variants() {
		kind := "hierarchical"
		if !v.BlockOnly {
			kind = "flat"
		}
		fmt.Printf("%-24s %-14s %-13s %d primitives\n", v.Name, v.Coll, kind, len(v.Comp.Pipeline))
	}
	return nil
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	mkComp := compFlags(fs)
	mkTopo := topoFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	comp, err := mkComp()
	if err != nil {
		return err
	}
	topo, err := mkTopo()
	if err != nil {
		return err
	}
	hier := compose.NewHierarchy(topo)
	fmt.Print(comp.String())
	fmt.Printf("\nhierarchy %s\n%s", hier.String(), hier.Describe())
	return nil
}

func cmdLower(args []string) error {
	fs := flag.NewFlagSet("lower", flag.ExitOnError)
	mkComp := compFlags(fs)
	mkTopo := topoFlags(fs)
	msg := fs.Int("msg", 64<<10, "per-rank message size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := lower(mkComp, mkTopo, *msg)
	if err != nil {
		return err
	}
	fmt.Print(plan.Sched.String())
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	mkComp := compFlags(fs)
	mkTopo := topoFlags(fs)
	msg := fs.Int("msg", 64<<10, "per-rank message size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := lower(mkComp, mkTopo, *msg)
	if err != nil {
		return err
	}
	rep, err := plan.Analyze(netmodel.Thor(), nil)
	if err != nil {
		return fmt.Errorf("analyze %s: %v", plan.Comp.Name, err)
	}
	topo := plan.Hier.Topo
	fmt.Printf("composition %s (%s) on %dx%dx%d, msg %d B\n",
		plan.Comp.Name, plan.Comp.Coll, topo.Nodes, topo.PPN, topo.HCAs, plan.Msg)
	xfers := 0
	for _, st := range plan.Sched.Steps {
		xfers += len(st.Xfers)
	}
	fmt.Printf("  steps %d, transfers %d (pulls %d, copies %d, reducing %d)\n",
		len(plan.Sched.Steps), xfers, rep.Pulls, rep.Copies, rep.Reduces)
	fmt.Printf("  wire bytes %d, intra-node bytes %d\n", rep.WireBytes, rep.IntraBytes)
	fmt.Printf("  analyzer cost %.3f us\n", rep.Cost.Micros())
	if mk, err := sched.SimulateGoal(topo, netmodel.Thor(), plan.Sched, plan.Goal); err == nil {
		fmt.Printf("  simulated makespan %.3f us\n", mk.Micros())
	}
	fmt.Println("  invariants: ok")
	return nil
}

func lower(mkComp func() (compose.Composition, error), mkTopo func() (topology.Cluster, error), msg int) (*compose.Plan, error) {
	comp, err := mkComp()
	if err != nil {
		return nil, err
	}
	topo, err := mkTopo()
	if err != nil {
		return nil, err
	}
	return compose.Lower(comp, compose.NewHierarchy(topo), msg, nil)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("name", "compose-ag", "registered variant name (see 'mhacompose list')")
	mkTopo := topoFlags(fs)
	msg := fs.Int("msg", 4096, "per-rank message size in bytes")
	seed := fs.Int64("seed", 1, "engine seed")
	jitter := fs.Float64("jitter", 0, "fabric noise amplitude (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, ok := compose.ByName(*name); !ok {
		return fmt.Errorf("unknown variant %q (see 'mhacompose list')", *name)
	}
	topo, err := mkTopo()
	if err != nil {
		return err
	}
	sc := verify.Scenario{
		Alg: *name, Nodes: topo.Nodes, PPN: topo.PPN, HCAs: topo.HCAs,
		Sockets: topo.Sockets, Layout: topo.Layout,
		Msg: *msg, Seed: *seed, Jitter: *jitter,
	}
	res := verify.RunOnce(sc, nil)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", v.Kind, v.Detail)
		}
		return fmt.Errorf("%s on %dx%dx%d: %d violations", *name, topo.Nodes, topo.PPN, topo.HCAs, len(res.Violations))
	}
	fmt.Printf("%s on %dx%dx%d, msg %d B: verified, makespan %.3f us, trace hash %#016x\n",
		*name, topo.Nodes, topo.PPN, topo.HCAs, *msg,
		float64(res.Makespan)/1e3, res.Hash)
	return nil
}
