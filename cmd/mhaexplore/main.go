// Command mhaexplore exhaustively model-checks allgather variants on
// small worlds. Where mhaverify samples random scenarios, mhaexplore
// enumerates: for a fixed world shape it visits every meaningfully
// distinct interleaving of same-virtual-time events and (with -faults)
// every single-rail Down placement, checking the byte-exact oracle and
// the teardown audits at every terminal state. Dynamic partial-order
// reduction keeps the visited schedules a small fraction of the raw
// interleaving space; the report prints both counts so the reduction is
// auditable. Failing schedules are shrunk to a one-line repro spec that
// -repro replays.
//
// Usage:
//
//	mhaexplore                             # ring+rd+sched-mha on 2 nodes x 2 ranks x 2 rails
//	mhaexplore -algs ring -nodes 1 -ppn 3  # one variant, another shape
//	mhaexplore -faults                     # add every single-rail-fault placement
//	mhaexplore -list                       # show registered variants
//	mhaexplore -repro "alg=ring nodes=2 ppn=2 hcas=2 msg=8 fault=none sched=0.2.1"
//
// The exit status is 0 when every explored schedule passes and 1
// otherwise, so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mha/internal/explore"
	"mha/internal/verify"
)

func main() {
	var (
		algs    = flag.String("algs", "ring,rd,sched-mha", "comma-separated variant names")
		nodes   = flag.Int("nodes", 2, "nodes in the explored world")
		ppn     = flag.Int("ppn", 2, "ranks per node")
		hcas    = flag.Int("hcas", 2, "rails (HCAs) per node")
		msg     = flag.Int("msg", 8, "per-rank contribution in bytes")
		fabspec = flag.String("fabric", "", "fabric spec (e.g. ft:arity=2,levels=2,over=2); empty means flat")
		faults  = flag.Bool("faults", false, "also explore every single-rail Down placement")
		maxExec = flag.Int("max-execs", 0, "executions per (variant, placement) before giving up (default 50000)")
		budget  = flag.Int("shrink-budget", 0, "replay evaluations per counterexample shrink (default 60)")
		quiet   = flag.Bool("q", false, "suppress the per-placement progress lines")
		repro   = flag.String("repro", "", "replay one schedule spec instead of exploring")
		list    = flag.Bool("list", false, "list registered variants and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range verify.Algorithms() {
			fmt.Println(a.Name)
		}
		return
	}

	if *repro != "" {
		spec, err := explore.ParseSpec(*repro)
		if err != nil {
			fatal(err)
		}
		vs, err := explore.Replay(spec)
		if err != nil {
			fatal(err)
		}
		if len(vs) == 0 {
			fmt.Printf("repro passed: no violations\n  %s\n", spec)
			return
		}
		fmt.Printf("repro FAILED: %d violations\n  %s\n", len(vs), spec)
		for _, v := range vs {
			fmt.Printf("  %s\n", v)
		}
		os.Exit(1)
	}

	opt := explore.Options{
		Nodes: *nodes, PPN: *ppn, HCAs: *hcas, Msg: *msg, Fabric: *fabspec,
		MaxExecs: *maxExec, ShrinkBudget: *budget,
	}
	if *faults {
		opt.FaultBudget = 1
	}
	for _, a := range strings.Split(*algs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			opt.Algs = append(opt.Algs, a)
		}
	}
	var log io.Writer
	if !*quiet {
		log = os.Stdout
	}
	opt.Log = log
	rep, err := explore.Run(opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("explored %d executions (%d engine steps) of ~%.3g unreduced interleavings across %d placements\n",
		rep.Executions, rep.Steps, rep.SpaceEstimate, len(rep.Placements))
	if !rep.Complete {
		fmt.Println("exploration INCOMPLETE: an execution cap was hit; raise -max-execs or shrink the world")
	}
	if rep.Counterexamples == 0 {
		if rep.Complete {
			fmt.Println("all interleavings verified")
		}
	} else {
		fmt.Printf("%d FAILING schedules:\n", rep.Counterexamples)
		for _, pr := range rep.Placements {
			for _, ce := range pr.Counterexamples {
				fmt.Printf("  original: %s\n  shrunk:   %s\n", ce.Spec, ce.Shrunk)
				for _, v := range ce.Violations {
					fmt.Printf("    %s\n", v)
				}
				fmt.Printf("  replay with: mhaexplore -repro %q\n", ce.Shrunk)
			}
		}
	}
	if rep.Counterexamples > 0 || !rep.Complete {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
