// Command mhafabric inspects the structured inter-node networks of
// internal/fabric and sweeps the allgather family across them.
//
//	mhafabric describe -fabric ft:arity=2,levels=2,over=2 -nodes 8
//	mhafabric route -fabric dfly:groups=2,routers=2,nodes=2 -nodes 8 -src 0 -dst 7
//	mhafabric route -fabric ft:arity=2,levels=2,over=2 -nodes 4 -all
//	mhafabric sweep            # quick fabric x algorithm table
//	mhafabric sweep -full
//
// describe prints the link structure a spec builds over a cluster; route
// prints the deterministic shared-link path between two nodes (or every
// pair); sweep reruns the bench fabric experiment, so its output matches
// the checked-in golden byte for byte.
package main

import (
	"flag"
	"fmt"
	"os"

	"mha/internal/bench"
	"mha/internal/fabric"
	"mha/internal/netmodel"
	"mha/internal/topology"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "describe":
		describe(os.Args[2:])
	case "route":
		route(os.Args[2:])
	case "sweep":
		sweep(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mhafabric <describe|route|sweep> [flags]")
	os.Exit(2)
}

// buildFlags returns the flag set and cluster/spec flags shared by
// describe and route.
func buildFlags(name string) (*flag.FlagSet, *string, *int, *int, *int) {
	fs := flag.NewFlagSet("mhafabric "+name, flag.ExitOnError)
	spec := fs.String("fabric", "ft:arity=2,levels=2,over=2", "fabric spec (flat, ft:..., dfly:...)")
	nodes := fs.Int("nodes", 8, "cluster node count")
	ppn := fs.Int("ppn", 2, "ranks per node")
	hcas := fs.Int("hcas", 2, "rails per node")
	return fs, spec, nodes, ppn, hcas
}

func build(specText string, nodes, ppn, hcas int) *fabric.Network {
	spec, err := fabric.ParseSpec(specText)
	if err != nil {
		fatal(err)
	}
	topo := topology.New(nodes, ppn, hcas)
	nw, err := fabric.Build(nil, spec, topo, netmodel.Thor())
	if err != nil {
		fatal(err)
	}
	return nw
}

func describe(args []string) {
	fs, spec, nodes, ppn, hcas := buildFlags("describe")
	_ = fs.Parse(args)
	build(*spec, *nodes, *ppn, *hcas).Describe(os.Stdout)
}

func route(args []string) {
	fs, spec, nodes, ppn, hcas := buildFlags("route")
	src := fs.Int("src", 0, "source node")
	dst := fs.Int("dst", 1, "destination node")
	all := fs.Bool("all", false, "print every pairwise route")
	_ = fs.Parse(args)
	nw := build(*spec, *nodes, *ppn, *hcas)
	printRoute := func(s, d int) {
		fmt.Printf("node%d -> node%d:", s, d)
		links := nw.Route(s, d)
		if len(links) == 0 {
			fmt.Print(" (no shared links)")
		}
		for _, l := range links {
			fmt.Printf(" %s", l.Name)
		}
		fmt.Println()
	}
	if *all {
		for s := 0; s < *nodes; s++ {
			for d := 0; d < *nodes; d++ {
				if s != d {
					printRoute(s, d)
				}
			}
		}
		return
	}
	if *src < 0 || *src >= *nodes || *dst < 0 || *dst >= *nodes {
		fatal(fmt.Errorf("mhafabric: route %d -> %d outside a %d-node cluster", *src, *dst, *nodes))
	}
	printRoute(*src, *dst)
}

func sweep(args []string) {
	fs := flag.NewFlagSet("mhafabric sweep", flag.ExitOnError)
	full := fs.Bool("full", false, "run the paper-scale sweep instead of the quick one")
	_ = fs.Parse(args)
	ex, ok := bench.ByID("fabric")
	if !ok {
		fatal(fmt.Errorf("mhafabric: the fabric experiment is not registered"))
	}
	sc := bench.Quick
	if *full {
		sc = bench.Full
	}
	if err := ex.Run(os.Stdout, sc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
