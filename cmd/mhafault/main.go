// Command mhafault runs the fault-injection campaigns: it executes the
// allgather variants under a fault schedule (scripted in the small spec
// language of internal/faults, or derived deterministically from a seed)
// and prints a resilience table — healthy vs faulted latency per
// algorithm and message size, with the naive health-blind baseline on
// request — plus per-rail utilization summaries showing where the bytes
// went on the degraded machine.
//
// Usage:
//
//	mhafault                                       # demo schedule, all algorithms
//	mhafault -inline "down node=0 rail=1 until=40us"
//	mhafault -spec faults.txt -algs mha,ring -sizes 64K,1M
//	mhafault -random -seed 7                       # seeded random campaign
//	mhafault -naive                                # add the health-blind column
//	mhafault -chrome out.json                      # Chrome trace incl. fault windows
//	mhafault -timeline -width 120                  # ASCII Gantt of the faulted run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mha/internal/bench"
	"mha/internal/faults"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "number of nodes")
		ppn      = flag.Int("ppn", 4, "processes per node")
		hcas     = flag.Int("hcas", 2, "HCA rails per node")
		sizes    = flag.String("sizes", "64K,256K,1M", "per-rank message sizes (comma-separated, K/M suffixes)")
		algs     = flag.String("algs", "mha,two-level,multi-leader,ring", "algorithms to run")
		specPath = flag.String("spec", "", "fault schedule file (see internal/faults spec format)")
		inline   = flag.String("inline", "", "fault schedule given inline, ';'-separated lines")
		random   = flag.Bool("random", false, "derive the schedule from -seed instead of a spec")
		seed     = flag.Int64("seed", 1, "seed for -random schedules and run jitter")
		horizon  = flag.Duration("horizon", 0, "horizon for -random schedules (default 10x the healthy run)")
		naive    = flag.Bool("naive", false, "also measure the health-blind (naive) baseline")
		chrome   = flag.String("chrome", "", "write a Chrome trace of the faulted run (first alg, largest size)")
		timeline = flag.Bool("timeline", false, "print an ASCII timeline of the faulted run")
		width    = flag.Int("width", 100, "timeline width in columns")
	)
	flag.Parse()

	topo := topology.New(*nodes, *ppn, *hcas)
	prm := netmodel.Thor()
	sizeList, err := parseSizes(*sizes)
	if err != nil {
		fatal(err)
	}
	algList, err := pickAlgorithms(*algs)
	if err != nil {
		fatal(err)
	}

	sched, err := loadSchedule(*specPath, *inline, *random, *seed, sim.Duration(*horizon), topo, prm, sizeList, algList)
	if err != nil {
		fatal(err)
	}
	if err := sched.Check(topo.Nodes, topo.HCAs); err != nil {
		fatal(err)
	}

	fmt.Printf("cluster: %v\nfault schedule:\n%s\n", topo, indent(sched.String()))

	// The resilience table: healthy vs faulted latency per algorithm/size.
	cols := []string{"algorithm", "size", "healthy (us)", "faulted (us)", "slowdown"}
	if *naive {
		cols = append(cols, "naive (us)", "aware vs naive")
	}
	t := bench.NewTable("resilience under the fault schedule", cols...)
	var lastStats []mpi.RailStat
	for _, alg := range algList {
		for _, m := range sizeList {
			healthy, _ := bench.FaultedAllgatherLatency(topo, prm, m, alg.Fn, nil, false)
			faulted, stats := bench.FaultedAllgatherLatency(topo, prm, m, alg.Fn, sched, false)
			row := []interface{}{alg.Name, bench.SizeLabel(m),
				healthy.Micros(), faulted.Micros(),
				fmt.Sprintf("%.2fx", float64(faulted)/float64(healthy))}
			if *naive {
				blind, _ := bench.FaultedAllgatherLatency(topo, prm, m, alg.Fn, sched, true)
				row = append(row, blind.Micros(), bench.Improvement(blind, faulted))
			}
			t.Add(row...)
			lastStats = stats
		}
	}
	if err := t.Fprint(os.Stdout); err != nil {
		fatal(err)
	}
	if err := bench.FprintRailStats(os.Stdout, "per-rail utilization (last faulted run)", lastStats); err != nil {
		fatal(err)
	}

	if *chrome != "" || *timeline {
		if err := tracedRun(topo, sched, algList[0], sizeList[len(sizeList)-1], *seed, *chrome, *timeline, *width); err != nil {
			fatal(err)
		}
	}
}

// tracedRun re-runs the faulted campaign's first algorithm at the largest
// size with tracing on, injecting the schedule's fault windows as events
// on each node's leader lane so the outage is visible alongside the
// traffic it displaced.
func tracedRun(topo topology.Cluster, sched *faults.Schedule, alg struct {
	Name string
	Fn   bench.AllgatherFn
}, m int, seed int64, chrome string, timeline bool, width int) error {
	rec := trace.New()
	w := mpi.New(mpi.Config{Topo: topo, Tracer: rec, Phantom: true, Faults: sched, Seed: seed})
	var worst sim.Time
	if err := w.Run(func(p *mpi.Proc) {
		alg.Fn(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()))
		if p.Now() > worst {
			worst = p.Now()
		}
	}); err != nil {
		return err
	}
	for n := 0; n < topo.Nodes; n++ {
		for r := 0; r < topo.HCAs; r++ {
			for _, win := range sched.Windows(n, r, 0, worst) {
				name := fmt.Sprintf("fault:node%d.rail%d frac=%.2f", n, r, win.Fraction)
				if win.Extra > 0 {
					name += fmt.Sprintf(" extra=%v", win.Extra)
				}
				rec.Add(trace.Event{
					Rank: n * topo.PPN, Cat: trace.CatFault,
					Name:  name,
					Start: win.From, End: win.To, Peer: -1,
				})
			}
		}
	}
	if timeline {
		fmt.Printf("\n%s under faults, %v, %s/rank\n", alg.Name, topo, bench.SizeLabel(m))
		fmt.Print(rec.Timeline(width))
	}
	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", rec.Len(), chrome)
	}
	return nil
}

// loadSchedule resolves the schedule from -spec, -inline, or -random; with
// none given it falls back to a small demo schedule exercising an outage
// window and a degraded rail.
func loadSchedule(specPath, inline string, random bool, seed int64, horizon sim.Duration,
	topo topology.Cluster, prm *netmodel.Params, sizes []int, algs []struct {
		Name string
		Fn   bench.AllgatherFn
	}) (*faults.Schedule, error) {
	switch {
	case specPath != "":
		text, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		return faults.Parse(string(text))
	case inline != "":
		return faults.Parse(strings.ReplaceAll(inline, ";", "\n"))
	case random:
		if horizon <= 0 {
			// Scale the campaign to the workload: ten healthy runs of the
			// largest size under the slowest algorithm.
			var worst sim.Duration
			for _, alg := range algs {
				if d, _ := bench.FaultedAllgatherLatency(topo, prm, sizes[len(sizes)-1], alg.Fn, nil, false); d > worst {
					worst = d
				}
			}
			horizon = 10 * worst
		}
		return faults.Random(seed, topo.Nodes, topo.HCAs, sim.Time(horizon)), nil
	default:
		return faults.Parse("down node=0 rail=1 until=40us\ndegrade node=* rail=1 frac=0.5 from=40us")
	}
}

func pickAlgorithms(list string) ([]struct {
	Name string
	Fn   bench.AllgatherFn
}, error) {
	all := bench.FaultAlgorithms()
	var out []struct {
		Name string
		Fn   bench.AllgatherFn
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown algorithm %q (have mha, two-level, multi-leader, ring)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no algorithms selected")
	}
	return out, nil
}

func parseSizes(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		mult := 1
		switch {
		case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
			mult, s = 1<<20, s[:len(s)-1]
		case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
			mult, s = 1<<10, s[:len(s)-1]
		}
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", s)
		}
		out = append(out, v*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
