// Command mhalint runs the project's static-analysis suite: stdlib-only
// passes that enforce the simulator's determinism and resource-discipline
// contracts at build time (see internal/lint and DESIGN.md §10, §15).
//
// Usage:
//
//	mhalint [-list] [-pass name[,name...]] [-json] [-baseline file]
//	        [-write-baseline file] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 usage
// or load error. Findings can be suppressed per line with
// `//lint:ignore <pass> <reason>`; accepted findings can be parked in a
// baseline file instead, which CI diffs so only new findings fail the
// build. -json emits a byte-deterministic machine-readable report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mha/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered passes and exit")
	passFlag := flag.String("pass", "", "comma-separated subset of passes to run (default: all)")
	jsonFlag := flag.Bool("json", false, "emit findings as deterministic JSON on stdout")
	baselineFlag := flag.String("baseline", "", "baseline file of accepted findings; only new findings fail")
	writeBaseline := flag.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	passes := lint.Passes()
	if *passFlag != "" {
		byName := map[string]*lint.Pass{}
		for _, p := range passes {
			byName[p.Name] = p
		}
		passes = passes[:0]
		for _, name := range strings.Split(*passFlag, ",") {
			p, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "mhalint: unknown pass %q (have %s)\n",
					name, strings.Join(lint.PassNames(), ", "))
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mhalint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Check(units, passes)

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, lint.FormatBaseline(diags), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mhalint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mhalint: wrote %d accepted finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	accepted := 0
	if *baselineFlag != "" {
		data, err := os.ReadFile(*baselineFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mhalint: %v\n", err)
			os.Exit(2)
		}
		var kept []lint.Diagnostic
		kept, acc := lint.ApplyBaseline(diags, lint.ParseBaseline(data))
		diags, accepted = kept, len(acc)
	}

	names := make([]string, 0, len(passes))
	for _, p := range passes {
		names = append(names, p.Name)
	}
	if *jsonFlag {
		os.Stdout.Write(lint.RenderJSON(names, diags))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mhalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	if !*jsonFlag {
		fmt.Printf("mhalint: %d packages, %d passes, no findings", len(units), len(passes))
		if accepted > 0 {
			fmt.Printf(" (%d baselined)", accepted)
		}
		fmt.Println()
	}
}
