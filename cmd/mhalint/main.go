// Command mhalint runs the project's static-analysis suite: stdlib-only
// passes that enforce the simulator's determinism and resource-discipline
// contracts at build time (see internal/lint and DESIGN.md §10).
//
// Usage:
//
//	mhalint [-list] [-pass name[,name...]] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 usage
// or load error. Findings can be suppressed per line with
// `//lint:ignore <pass> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mha/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered passes and exit")
	passFlag := flag.String("pass", "", "comma-separated subset of passes to run (default: all)")
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-10s %s\n", p.Name, p.Doc)
		}
		return
	}

	passes := lint.Passes()
	if *passFlag != "" {
		byName := map[string]*lint.Pass{}
		for _, p := range passes {
			byName[p.Name] = p
		}
		passes = passes[:0]
		for _, name := range strings.Split(*passFlag, ",") {
			p, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "mhalint: unknown pass %q (have %s)\n",
					name, strings.Join(lint.PassNames(), ", "))
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mhalint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Check(units, passes)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mhalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Printf("mhalint: %d packages, %d passes, no findings\n", len(units), len(passes))
}
