// Command mhamodel evaluates the analytic cost models of the paper's
// Section 4 (Equations 1-7) for arbitrary cluster shapes and message
// sizes, and runs the model-validation experiments (Figures 9 and 10).
//
// Usage:
//
//	mhamodel -nodes 8 -ppn 32 -hcas 2          # model table over sizes
//	mhamodel -validate 9                       # Figure 9 validation
//	mhamodel -validate 10 -quick               # Figure 10, reduced scale
package main

import (
	"flag"
	"fmt"
	"os"

	"mha/internal/bench"
	"mha/internal/netmodel"
	"mha/internal/perfmodel"
	"mha/internal/topology"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 8, "number of nodes (N)")
		ppn      = flag.Int("ppn", 32, "processes per node (L)")
		hcas     = flag.Int("hcas", 2, "network adapters per node (H)")
		minSize  = flag.Int("min", 1<<10, "smallest per-rank message size")
		maxSize  = flag.Int("max", 1<<20, "largest per-rank message size")
		validate = flag.String("validate", "", "run a validation figure instead: 9 or 10")
		quick    = flag.Bool("quick", false, "reduced scale for -validate")
	)
	flag.Parse()

	if *validate != "" {
		sc := bench.Full
		if *quick {
			sc = bench.Quick
		}
		e, ok := bench.ByID(*validate)
		if !ok || (*validate != "9" && *validate != "10") {
			fmt.Fprintf(os.Stderr, "-validate takes 9 or 10\n")
			os.Exit(2)
		}
		if err := e.Run(os.Stdout, sc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	prm := netmodel.Thor()
	topo := topology.New(*nodes, *ppn, *hcas)
	m := perfmodel.New(prm, topo)

	fmt.Printf("cost model for %v\n", topo)
	fmt.Printf("parameters: %v\n\n", prm)
	fmt.Printf("%-10s %10s %12s %12s %14s %14s %8s\n",
		"size", "Eq.1 d", "MHA-intra", "flat ring", "MHA-inter RD", "MHA-inter Ring", "phase2")
	for sz := *minSize; sz <= *maxSize; sz *= 2 {
		alg := "rd"
		if m.RingBetterThanRD(sz) {
			alg = "ring"
		}
		fmt.Printf("%-10s %10.2f %10.1fus %10.1fus %12.1fus %12.1fus %8s\n",
			bench.SizeLabel(sz),
			m.OffloadD(sz),
			m.MHAIntra(sz).Micros(),
			m.FlatRing(sz).Micros(),
			m.MHAInterRD(sz).Micros(),
			m.MHAInterRing(sz).Micros(),
			alg)
	}

	fmt.Printf("\npublished-form equations at %s:\n", bench.SizeLabel(*maxSize))
	fmt.Printf("  Eq.3 phase-2 RD:    %v\n", m.Phase2RD(*maxSize))
	fmt.Printf("  Eq.4 phase-2 Ring:  %v\n", m.Phase2Ring(*maxSize))
	fmt.Printf("  Eq.5 intra bcast:   %v\n", m.IntraBcast(*maxSize))
	fmt.Printf("  Eq.6 MHA-inter RD:  %v\n", m.PaperEq6(*maxSize))
	fmt.Printf("  Eq.7 MHA-inter Ring:%v\n", m.PaperEq7(*maxSize))
}
