// Command mhaosu is an OSU-micro-benchmark-style CLI over the simulator —
// the same tests the paper's evaluation ran (osu_latency, osu_bw,
// osu_allgather, osu_allreduce) plus bcast and alltoall, against any of
// the three modeled libraries.
//
// Usage:
//
//	mhaosu latency                     # inter-node pt2pt latency sweep
//	mhaosu bw -hcas 1                  # single-rail bandwidth
//	mhaosu allgather -nodes 8 -ppn 32 -lib mha
//	mhaosu allreduce -lib mvapich2x -min 65536 -max 1048576
//	mhaosu bcast -nodes 4 -ppn 8
//	mhaosu alltoall -nodes 4 -ppn 8 -lib mha
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mha/internal/bench"
	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/machines"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	test := os.Args[1]
	fs := flag.NewFlagSet(test, flag.ExitOnError)
	var (
		nodes   = fs.Int("nodes", 2, "number of nodes")
		ppn     = fs.Int("ppn", 1, "processes per node")
		hcas    = fs.Int("hcas", 2, "HCAs per node")
		machine = fs.String("machine", "", "named preset (overrides -hcas and the cost model): "+strings.Join(machines.Names(), " | "))
		lib     = fs.String("lib", "mha", "library: hpcx | mvapich2x | mha")
		min     = fs.Int("min", 1<<10, "smallest message size")
		max     = fs.Int("max", 4<<20, "largest message size")
	)
	fs.Parse(os.Args[2:])

	prm := netmodel.Thor()
	topo := topology.New(*nodes, *ppn, *hcas)
	if *machine != "" {
		m, ok := machines.Get(*machine)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown machine %q (have: %s)\n", *machine, strings.Join(machines.Names(), ", "))
			os.Exit(2)
		}
		prm = m.Params
		topo = m.Topo
		topo.Nodes, topo.PPN = *nodes, *ppn // shape from flags, rails+model from preset
		if err := topo.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	prof, ok := profileOf(*lib)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown library %q\n", *lib)
		os.Exit(2)
	}

	switch test {
	case "latency":
		fmt.Printf("# OSU-style pt2pt latency, %v\n%-12s %12s\n", topo, "size", "latency (us)")
		for m := *min; m <= *max; m *= 2 {
			fmt.Printf("%-12d %12.2f\n", m, bench.PtPtLatency(topo, prm, m).Micros())
		}
	case "bw":
		fmt.Printf("# OSU-style pt2pt bandwidth, %v\n%-12s %12s\n", topo, "size", "MB/s")
		for m := *min; m <= *max; m *= 2 {
			fmt.Printf("%-12d %12.2f\n", m, bench.PtPtBandwidth(topo, prm, m))
		}
	case "allgather":
		fmt.Printf("# OSU-style allgather, %v, %s\n%-12s %12s\n", topo, prof.Name, "size", "latency (us)")
		for m := *min; m <= *max; m *= 2 {
			fmt.Printf("%-12d %12.2f\n", m, bench.AllgatherLatency(topo, prm, m, prof).Micros())
		}
	case "allreduce":
		fmt.Printf("# OSU-style allreduce, %v, %s\n%-12s %12s\n", topo, prof.Name, "size", "latency (us)")
		for m := *min; m <= *max; m *= 2 {
			fmt.Printf("%-12d %12.2f\n", m, bench.AllreduceLatency(topo, prm, m, prof).Micros())
		}
	case "bcast":
		fmt.Printf("# OSU-style bcast, %v, %s\n%-12s %12s\n", topo, prof.Name, "size", "latency (us)")
		for m := *min; m <= *max; m *= 2 {
			fmt.Printf("%-12d %12.2f\n", m, measureBcast(topo, prm, m, *lib).Micros())
		}
	case "alltoall":
		fmt.Printf("# OSU-style alltoall, %v, %s\n%-12s %12s\n", topo, prof.Name, "size", "latency (us)")
		for m := *min; m <= *max; m *= 2 {
			fmt.Printf("%-12d %12.2f\n", m, measureAlltoall(topo, prm, m, *lib).Micros())
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mhaosu {latency|bw|allgather|allreduce|bcast|alltoall} [flags]")
}

func profileOf(lib string) (collectives.Profile, bool) {
	switch lib {
	case "hpcx":
		return collectives.HPCX(), true
	case "mvapich2x":
		return collectives.MVAPICH2X(), true
	case "mha":
		return core.Profile(), true
	default:
		return collectives.Profile{}, false
	}
}

func measureBcast(topo topology.Cluster, prm *netmodel.Params, m int, lib string) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		buf := mpi.Phantom(m)
		if lib == "mha" {
			core.MHABcast(p, w, 0, buf)
		} else {
			collectives.BinomialBcast(p, w.CommWorld(), 0, buf)
		}
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}

func measureAlltoall(topo topology.Cluster, prm *netmodel.Params, m int, lib string) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		total := m * p.Size()
		if lib == "mha" {
			core.MHAAlltoall(p, w, mpi.Phantom(total), mpi.Phantom(total))
		} else {
			collectives.PairwiseAlltoall(p, w.CommWorld(), mpi.Phantom(total), mpi.Phantom(total))
		}
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}
