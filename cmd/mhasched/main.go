// Command mhasched works with explicit communication schedules (the
// internal/sched IR): lowering the repo's allgather designs to schedule
// files, statically analyzing them (correctness invariants plus an
// alpha-beta critical-path cost), executing them on the simulated MPI
// runtime with real payload verification, and searching schedule space
// for a machine/message-size pair.
//
// Usage:
//
//	mhasched build -alg mha -nodes 4 -ppn 8 -hcas 2 -msg 262144   # lower to text IR on stdout
//	mhasched analyze -f plan.sched                                 # invariants + cost report
//	mhasched run -f plan.sched                                     # execute, verify bytes, time it
//	mhasched search -nodes 4 -ppn 8 -hcas 2 -msg 262144 -o best.sched
//	mhasched export -f plan.sched -json                            # convert text <-> JSON
//
// The exit status is 0 on success; analysis failures (an invalid
// schedule) and verification mismatches exit 1, so scripts can gate on
// schedule validity directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sched"
	"mha/internal/sim"
	"mha/internal/topology"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "mhasched: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mhasched: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mhasched <subcommand> [flags]

subcommands:
  build    lower a named design (ring, rd, mha, mha-rd, direct-rail) to the schedule IR
  analyze  check a schedule's invariants and price its critical path
  run      execute a schedule on the simulated runtime with byte verification
  search   synthesize a schedule for a machine and message size
  export   convert a schedule between the text and JSON forms

run 'mhasched <subcommand> -h' for that subcommand's flags.
`)
}

// topoFlags registers the machine-shape flags on fs and returns a
// constructor to call after parsing.
func topoFlags(fs *flag.FlagSet) func() (topology.Cluster, error) {
	nodes := fs.Int("nodes", 2, "number of nodes")
	ppn := fs.Int("ppn", 2, "processes per node")
	hcas := fs.Int("hcas", 2, "network rails per node")
	layout := fs.String("layout", "block", "rank layout: block or cyclic")
	return func() (topology.Cluster, error) {
		c := topology.New(*nodes, *ppn, *hcas)
		switch *layout {
		case "block":
		case "cyclic":
			c.Layout = topology.Cyclic
		default:
			return c, fmt.Errorf("unknown layout %q (want block or cyclic)", *layout)
		}
		return c, nil
	}
}

// buildAlg lowers one named design.
func buildAlg(alg string, topo topology.Cluster, msg int) (*sched.Schedule, error) {
	prm := netmodel.Thor()
	switch alg {
	case "ring":
		return sched.Ring(topo, msg), nil
	case "rd":
		return sched.RecursiveDoubling(topo, msg), nil
	case "mha", "mha-ring":
		return sched.TwoPhaseMHA(topo, prm, msg, sched.MHAOptions{Offload: sched.AutoOffload}), nil
	case "mha-rd":
		return sched.TwoPhaseMHA(topo, prm, msg,
			sched.MHAOptions{Phase2: sched.Phase2RD, Offload: sched.AutoOffload}), nil
	case "direct-rail":
		s := sched.DirectRail(topo, msg)
		if s == nil {
			return nil, fmt.Errorf("direct-rail does not fit the step limit on %v", topo)
		}
		return s, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want ring, rd, mha, mha-rd, or direct-rail)", alg)
}

// emit writes the schedule to path (or stdout when empty), as JSON when
// asJSON is set and the canonical text form otherwise.
func emit(s *sched.Schedule, path string, asJSON bool) error {
	var out []byte
	if asJSON {
		js, err := s.JSON()
		if err != nil {
			return err
		}
		out = append(js, '\n')
	} else {
		out = []byte(s.String())
	}
	if path == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// load reads and parses a schedule file ("-" means stdin).
func load(path string) (*sched.Schedule, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -f <schedule file>")
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return sched.Parse(string(data))
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	alg := fs.String("alg", "mha", "design to lower: ring, rd, mha, mha-rd, direct-rail")
	msg := fs.Int("msg", 64<<10, "message size per rank in bytes")
	out := fs.String("o", "", "output file (default stdout)")
	asJSON := fs.Bool("json", false, "emit JSON instead of the text form")
	mkTopo := topoFlags(fs)
	fs.Parse(args)
	topo, err := mkTopo()
	if err != nil {
		return err
	}
	s, err := buildAlg(*alg, topo, *msg)
	if err != nil {
		return err
	}
	return emit(s, *out, *asJSON)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	file := fs.String("f", "", "schedule file (text or JSON; - for stdin)")
	steps := fs.Bool("steps", false, "print the per-step cost breakdown")
	fs.Parse(args)
	s, err := load(*file)
	if err != nil {
		return err
	}
	prm := netmodel.Thor()
	rep, err := sched.Analyze(s, prm)
	if err != nil {
		return fmt.Errorf("schedule %s is invalid:\n%v", s.Name, err)
	}
	fmt.Printf("schedule %s on %v, msg %d B\n", s.Name, s.Topo, s.Msg)
	fmt.Printf("  steps      %d\n", len(s.Steps))
	fmt.Printf("  transfers  %d (%d pulls, %d staging copies)\n", rep.Transfers, rep.Pulls, rep.Copies)
	fmt.Printf("  wire bytes %d   intra bytes %d\n", rep.WireBytes, rep.IntraBytes)
	fmt.Printf("  cost       %v (critical path, alpha-beta model)\n", rep.Cost)
	if *steps {
		for i, c := range rep.StepCosts {
			fmt.Printf("  step %3d   %v\n", i, c)
		}
	}
	fmt.Println("OK")
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	file := fs.String("f", "", "schedule file (text or JSON; - for stdin)")
	fs.Parse(args)
	s, err := load(*file)
	if err != nil {
		return err
	}
	prm := netmodel.Thor()
	if _, err := sched.Analyze(s, prm); err != nil {
		return fmt.Errorf("refusing to run an invalid schedule:\n%v", err)
	}
	// Real-payload execution with byte verification against the
	// allgather contract: rank r's contribution is r's pattern.
	w := mpi.New(mpi.Config{Topo: s.Topo, Params: prm})
	n := s.Topo.Size()
	m := s.Msg
	var worst sim.Time
	bad := 0
	err = w.Run(func(p *mpi.Proc) {
		send := mpi.NewBuf(m)
		for i := range send.Data() {
			send.Data()[i] = byte(p.Rank()*131 + i*7 + 3)
		}
		recv := mpi.NewBuf(n * m)
		sched.Execute(p, w, s, send, recv)
		for i, b := range recv.Data() {
			if b != byte((i/m)*131+(i%m)*7+3) {
				bad++
				break
			}
		}
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("schedule %s: %d of %d ranks ended with wrong bytes", s.Name, bad, n)
	}
	fmt.Printf("schedule %s on %v: %d ranks verified, makespan %v\n",
		s.Name, s.Topo, n, sim.Duration(worst))
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	msg := fs.Int("msg", 256<<10, "message size per rank in bytes")
	beam := fs.Int("beam", 0, "beam width (default 4)")
	rounds := fs.Int("rounds", 0, "mutation rounds (default 6)")
	out := fs.String("o", "", "write the winning schedule here (default: report only)")
	asJSON := fs.Bool("json", false, "emit the winner as JSON instead of text")
	mkTopo := topoFlags(fs)
	fs.Parse(args)
	topo, err := mkTopo()
	if err != nil {
		return err
	}
	res, err := sched.Synthesize(topo, netmodel.Thor(), *msg, sched.SynthOptions{Beam: *beam, Rounds: *rounds})
	if err != nil {
		return err
	}
	fmt.Printf("search on %v, msg %d B: %d seeds\n", topo, *msg, len(res.Seeds))
	fmt.Printf("%-16s %14s %14s\n", "lowered", "analyzer", "simulated")
	for _, c := range res.Lowered {
		fmt.Printf("%-16s %14v %14v\n", c.Name, c.Cost, c.Makespan)
	}
	fmt.Printf("best: %s  analyzer %v  simulated %v\n", res.Best.Name, res.Best.Cost, res.Best.Makespan)
	if *out != "" {
		return emit(res.Best.Sched, *out, *asJSON)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	file := fs.String("f", "", "schedule file (text or JSON; - for stdin)")
	out := fs.String("o", "", "output file (default stdout)")
	asJSON := fs.Bool("json", false, "emit JSON (default: the canonical text form)")
	fs.Parse(args)
	s, err := load(*file)
	if err != nil {
		return err
	}
	return emit(s, *out, *asJSON)
}
