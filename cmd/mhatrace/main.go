// Command mhatrace renders communication timelines of the simulated
// collectives as ASCII Gantt charts — the reproduction of the paper's
// Figure 2 (a TAU trace of the flat ring allgather on 2 nodes x 2 PPN,
// exposing the intra-node bottleneck) and a tool for inspecting any of the
// implemented algorithms.
//
// Usage:
//
//	mhatrace                                  # Figure 2 (ring, 2x2)
//	mhatrace -alg mha-inter -nodes 4 -ppn 4   # the proposed design
//	mhatrace -alg mha-intra -ppn 4 -listing   # per-event log
package main

import (
	"flag"
	"fmt"
	"os"

	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/mpi"
	"mha/internal/topology"
	"mha/internal/trace"
)

func main() {
	var (
		alg     = flag.String("alg", "ring", "algorithm: ring | rd | bruck | direct | mha-intra | mha-inter | kandalla | mamidala")
		nodes   = flag.Int("nodes", 2, "number of nodes")
		ppn     = flag.Int("ppn", 2, "processes per node")
		hcas    = flag.Int("hcas", 2, "HCAs per node")
		size    = flag.Int("size", 256<<10, "per-rank message size in bytes")
		width   = flag.Int("width", 100, "timeline width in columns")
		listing = flag.Bool("listing", false, "print the per-event log instead of the chart")
		chrome  = flag.String("chrome", "", "write a Chrome trace-event JSON file (chrome://tracing)")
	)
	flag.Parse()

	run, ok := algorithms(*alg)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	rec := trace.New()
	w := mpi.New(mpi.Config{
		Topo:    topology.New(*nodes, *ppn, *hcas),
		Tracer:  rec,
		Phantom: true,
	})
	err := w.Run(func(p *mpi.Proc) {
		run(p, w, mpi.Phantom(*size), mpi.Phantom(*size*p.Size()))
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d events to %s\n", rec.Len(), *chrome)
		return
	}

	fmt.Printf("%s allgather, %v, %d bytes/rank\n", *alg, w.Topo(), *size)
	if *listing {
		fmt.Print(rec.Listing())
		return
	}
	fmt.Print(rec.Timeline(*width))
}

func algorithms(name string) (func(*mpi.Proc, *mpi.World, mpi.Buf, mpi.Buf), bool) {
	switch name {
	case "ring":
		return flat(collectives.RingAllgather), true
	case "rd":
		return flat(collectives.RDAllgather), true
	case "bruck":
		return flat(collectives.BruckAllgather), true
	case "direct":
		return flat(collectives.DirectSpreadAllgather), true
	case "mha-intra":
		return func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			core.MHAIntraAllgather(p, w.CommWorld(), send, recv)
		}, true
	case "mha-inter":
		return core.MHAInterAllgather, true
	case "kandalla":
		return collectives.KandallaAllgather, true
	case "mamidala":
		return collectives.MamidalaAllgather, true
	default:
		return nil, false
	}
}

func flat(f func(*mpi.Proc, *mpi.Comm, mpi.Buf, mpi.Buf)) func(*mpi.Proc, *mpi.World, mpi.Buf, mpi.Buf) {
	return func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		f(p, w.CommWorld(), send, recv)
	}
}
