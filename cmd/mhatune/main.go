// Command mhatune generates, inspects and verifies tuning tables for the
// MHA collectives — the simulator-side equivalent of the measured
// selection tables production MPI libraries ship.
//
// Usage:
//
//	mhatune -nodes 16 -ppn 32 -o thor-16x32.json   # build and save
//	mhatune -show thor-16x32.json                  # print a saved table
//	mhatune -verify thor-16x32.json                # re-measure and compare
//	mhatune -nodes 4 -ppn 8 -o-cache warm.json     # export in mhatuned cache format
package main

import (
	"flag"
	"fmt"
	"os"

	"mha/internal/core"
	"mha/internal/netmodel"
	"mha/internal/topology"
	"mha/internal/tuner"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 8, "number of nodes")
		ppn      = flag.Int("ppn", 32, "processes per node")
		hcas     = flag.Int("hcas", 2, "HCAs per node")
		out      = flag.String("o", "", "write the generated table to this file (default stdout)")
		outCache = flag.String("o-cache", "", "also export the table in mhatuned's cache format to this file")
		show     = flag.String("show", "", "print a saved table and exit")
		verify   = flag.String("verify", "", "re-measure a saved table's selections and report drift")
	)
	flag.Parse()

	prm := netmodel.Thor()

	if *show != "" {
		t := load(*show)
		fmt.Printf("tuning table for %d nodes x %d ppn x %d HCAs\n", t.Nodes, t.PPN, t.HCAs)
		fmt.Printf("%-12s %-6s %10s %12s %12s\n", "<= bytes", "alg", "offload d", "ring (us)", "rd (us)")
		for _, e := range t.Entries {
			fmt.Printf("%-12d %-6s %10.2f %12.2f %12.2f\n", e.MaxBytes, e.Alg, e.OffloadD, e.RingUS, e.RDUS)
		}
		return
	}

	if *verify != "" {
		t := load(*verify)
		topo := topology.New(t.Nodes, t.PPN, t.HCAs)
		fresh := core.BuildTuningTable(topo, prm, sizesOf(t))
		drift := 0
		for i, e := range t.Entries {
			if fresh.Entries[i].Alg != e.Alg {
				fmt.Printf("drift at <=%d bytes: table says %s, measurement says %s\n",
					e.MaxBytes, e.Alg, fresh.Entries[i].Alg)
				drift++
			}
		}
		if drift == 0 {
			fmt.Printf("table verified: all %d selections reproduce\n", len(t.Entries))
			return
		}
		os.Exit(1)
	}

	topo := topology.New(*nodes, *ppn, *hcas)
	sizes := []int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	fmt.Fprintf(os.Stderr, "measuring %d size classes on %v...\n", len(sizes), topo)
	t := core.BuildTuningTable(topo, prm, sizes)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := t.Save(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	// -o-cache: the same measurements, re-lowered into schedule decisions
	// in mhatuned's cache format, so a measured machine profile
	// warm-starts the daemon.
	if *outCache != "" {
		decs, err := tuner.ImportTuningTable(prm, t)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*outCache)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tuner.SaveDecisions(f, decs); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cache entries)\n", *outCache, len(decs))
	}
}

func load(path string) core.TuningTable {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	t, err := core.LoadTuningTable(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return t
}

func sizesOf(t core.TuningTable) []int {
	out := make([]int, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.MaxBytes
	}
	return out
}
