// Command mhatuned is the caching autotuner daemon: schedule synthesis
// as a service. It answers "best allgather schedule for this machine
// state" queries over HTTP by composing the schedule IR's beam
// synthesizer, the alpha-beta analyzer, and the closed-form performance
// model, memoizing every decision in an LRU cache keyed on the
// canonicalized (topology, ppn, rails, layout, message size, rail
// health) tuple.
//
// Usage:
//
//	mhatuned                                   # serve on 127.0.0.1:7117
//	mhatuned -addr 127.0.0.1:9000 -warmstart   # pre-synthesize the paper's shapes
//	mhatuned -cache /var/tmp/mhatuned.json     # persist decisions across restarts
//	mhatuned -bench                            # synthetic-load benchmark, no server
//
// Endpoints:
//
//	POST /v1/schedule   query JSON -> decision JSON (X-Mhatuned-Cache: hit|miss)
//	GET  /v1/stats      serving statistics
//	GET  /healthz       liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mha/internal/tuner"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7117", "listen address")
		cacheFile = flag.String("cache", "", "cache persistence file: loaded at startup, saved on shutdown")
		capacity  = flag.Int("capacity", 512, "maximum cached decisions")
		warmstart = flag.Bool("warmstart", false, "pre-synthesize the paper's Thor configurations at startup")
		bench     = flag.Bool("bench", false, "run the synthetic-load benchmark instead of serving")
		workers   = flag.Int("bench-workers", 4, "benchmark client goroutines")
		requests  = flag.Int("bench-requests", 200000, "benchmark request count")
	)
	flag.Parse()

	svc := tuner.New(tuner.Config{Capacity: *capacity})

	if *cacheFile != "" {
		if f, err := os.Open(*cacheFile); err == nil {
			n, lerr := svc.LoadCache(f)
			f.Close()
			if lerr != nil {
				// A bad cache file means start cold, not crash: the cache is
				// an optimization, and every entry re-verifies on load.
				fmt.Fprintf(os.Stderr, "mhatuned: ignoring cache %s: %v\n", *cacheFile, lerr)
			} else {
				fmt.Fprintf(os.Stderr, "mhatuned: restored %d cached decisions from %s\n", n, *cacheFile)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintln(os.Stderr, "mhatuned:", err)
			os.Exit(1)
		}
	}

	if *warmstart {
		start := time.Now()
		n, err := tuner.WarmStart(svc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mhatuned: warm start:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mhatuned: warm-started %d shapes in %v\n", n, time.Since(start).Round(time.Millisecond))
	}

	if *bench {
		runBench(svc, *workers, *requests)
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhatuned:", err)
		os.Exit(1)
	}
	// The listener is live before this line prints: scripts (and the CI
	// smoke test) wait for it as the readiness signal.
	fmt.Fprintf(os.Stderr, "mhatuned: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: tuner.Handler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "mhatuned:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mhatuned: shutdown:", err)
	}

	if *cacheFile != "" {
		if err := saveCache(svc, *cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "mhatuned:", err)
			os.Exit(1)
		}
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "mhatuned: saved %d cached decisions to %s\n", st.Entries, *cacheFile)
	}
	fmt.Fprintln(os.Stderr, "mhatuned: bye")
}

// saveCache writes atomically: temp file in the same directory, then
// rename, so a crash mid-save never corrupts the previous cache.
func saveCache(svc *tuner.Service, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := svc.SaveCache(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// runBench warms the cache with the paper shapes (unless -warmstart or
// -cache already did) and measures warm-path throughput.
func runBench(svc *tuner.Service, workers, requests int) {
	queries := tuner.PaperQueries()
	fmt.Fprintf(os.Stderr, "mhatuned: bench: warming %d shapes...\n", len(queries))
	for _, q := range queries {
		if _, err := svc.Decide(q); err != nil {
			fmt.Fprintln(os.Stderr, "mhatuned: bench:", err)
			os.Exit(1)
		}
	}
	rep, err := tuner.RunLoad(svc, tuner.LoadOptions{Workers: workers, Requests: requests, Queries: queries})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhatuned: bench:", err)
		os.Exit(1)
	}
	fmt.Printf("mhatuned bench: %v\n", rep)
	st := svc.Stats()
	fmt.Printf("cache: %d entries, %d synths, hit rate %.3f\n", st.Entries, st.Synths, st.HitRate)
}
