// Command mhaverify runs the randomized differential-verification
// campaign: seeded scenario generation over every registered allgather
// variant, a byte-exact oracle on all ranks, simulator invariant audits
// (clock monotonicity, resource-busy conservation, drained mailboxes at
// teardown), and a same-seed determinism cross-check. Failing scenarios
// are shrunk to a one-line repro spec that -repro replays.
//
// Usage:
//
//	mhaverify                              # 200 scenarios, seed 42
//	mhaverify -n 50 -seed 7 -v             # smaller campaign, per-scenario log
//	mhaverify -algs mha,ring               # restrict the variant set
//	mhaverify -list                        # show registered variants
//	mhaverify -repro "alg=mha nodes=2 ppn=2 hcas=1 msg=13 faults=none"
//
// The exit status is 0 when every scenario passes and 1 otherwise, so CI
// can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mha/internal/verify"
)

func main() {
	var (
		n        = flag.Int("n", 200, "number of scenarios to generate")
		seed     = flag.Int64("seed", 42, "campaign seed (same seed, same scenarios)")
		algs     = flag.String("algs", "", "comma-separated variant names (default: all registered)")
		maxRanks = flag.Int("maxranks", 0, "cap on nodes*ppn per scenario (default 48)")
		budget   = flag.Int("shrink-budget", 0, "candidate evaluations per shrink (default 150)")
		noshrink = flag.Bool("noshrink", false, "report failures without minimizing them")
		verbose  = flag.Bool("v", false, "log every scenario as it runs")
		repro    = flag.String("repro", "", "replay one scenario spec instead of running a campaign")
		list     = flag.Bool("list", false, "list registered variants and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range verify.Algorithms() {
			var cons []string
			if a.BlockOnly {
				cons = append(cons, "block-layout")
			}
			if a.SingleNode {
				cons = append(cons, "single-node")
			}
			if a.EvenPPN {
				cons = append(cons, "even-ppn")
			}
			note := ""
			if len(cons) > 0 {
				note = "  (" + strings.Join(cons, ", ") + ")"
			}
			fmt.Printf("%-14s%s\n", a.Name, note)
		}
		return
	}

	if *repro != "" {
		sc, err := verify.ParseSpec(*repro)
		if err != nil {
			fatal(err)
		}
		vs := verify.Check(sc)
		if len(vs) == 0 {
			fmt.Printf("repro passed: no violations\n  %s\n", sc.Spec())
			return
		}
		fmt.Printf("repro FAILED: %d violations\n  %s\n", len(vs), sc.Spec())
		for _, v := range vs {
			fmt.Printf("  %s\n", v)
		}
		os.Exit(1)
	}

	opt := verify.Options{MaxRanks: *maxRanks, ShrinkBudget: *budget, NoShrink: *noshrink}
	if *algs != "" {
		for _, a := range strings.Split(*algs, ",") {
			opt.Algs = append(opt.Algs, strings.TrimSpace(a))
		}
	}
	var log io.Writer
	if *verbose {
		log = os.Stdout
	}
	opt.Log = log
	rep, err := verify.Campaign(*n, *seed, opt)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(rep.PerAlg))
	for name := range rep.PerAlg {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("verified %d scenarios (seed %d, %d checks incl. shrinking, 2 runs each for determinism)\n",
		rep.Scenarios, *seed, rep.Checks)
	for _, name := range names {
		fmt.Printf("  %-14s %d\n", name, rep.PerAlg[name])
	}
	if len(rep.Failures) == 0 {
		fmt.Println("all scenarios passed")
		return
	}
	fmt.Printf("%d FAILING scenarios:\n", len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Printf("  original: %s\n  shrunk:   %s\n", f.Scenario.Spec(), f.Shrunk.Spec())
		for _, v := range f.Violations {
			fmt.Printf("    %s\n", v)
		}
		fmt.Printf("  replay with: mhaverify -repro %q\n", f.Shrunk.Spec())
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
