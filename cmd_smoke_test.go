package mha_test

// End-to-end smoke tests: build every binary once and drive each through
// a representative invocation, asserting on its observable output.

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var buildOnce sync.Once
var binDir string
var buildErr error

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "mha-bins")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			_ = out
		}
	})
	if buildErr != nil {
		t.Fatalf("building binaries: %v", buildErr)
	}
	return binDir
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestSmokeMhabenchList(t *testing.T) {
	out := run(t, "mhabench", "-list")
	for _, id := range []string{"14b", "17c", "abl-overlap", "ext-numa"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list missing %s:\n%s", id, out)
		}
	}
}

func TestSmokeMhabenchRunsOneFigure(t *testing.T) {
	out := run(t, "mhabench", "-fig", "3", "-quick")
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "50%") {
		t.Fatalf("figure 3 output unexpected:\n%s", out)
	}
}

func TestSmokeMhatraceTimelineAndChrome(t *testing.T) {
	out := run(t, "mhatrace", "-nodes", "2", "-ppn", "2")
	if !strings.Contains(out, "legend") || !strings.Contains(out, "rank") {
		t.Fatalf("timeline output unexpected:\n%s", out)
	}
	tmp := filepath.Join(t.TempDir(), "trace.json")
	out = run(t, "mhatrace", "-alg", "mha-inter", "-nodes", "2", "-ppn", "2", "-chrome", tmp)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("chrome export output unexpected:\n%s", out)
	}
	data, err := os.ReadFile(tmp)
	if err != nil || !strings.HasPrefix(strings.TrimSpace(string(data)), "[") {
		t.Fatalf("chrome trace file bad: %v, %.40q", err, data)
	}
}

func TestSmokeMhamodel(t *testing.T) {
	out := run(t, "mhamodel", "-nodes", "4", "-ppn", "8", "-max", "65536")
	for _, want := range []string{"cost model", "Eq.1 d", "Eq.7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mhamodel output missing %q:\n%s", want, out)
		}
	}
	out = run(t, "mhamodel", "-validate", "9", "-quick")
	if !strings.Contains(out, "Figure 9") {
		t.Fatalf("validation output unexpected:\n%s", out)
	}
}

func TestSmokeMhaosu(t *testing.T) {
	out := run(t, "mhaosu", "latency", "-min", "1024", "-max", "4096")
	if !strings.Contains(out, "latency") || len(strings.Split(out, "\n")) < 4 {
		t.Fatalf("mhaosu latency output unexpected:\n%s", out)
	}
	out = run(t, "mhaosu", "allgather", "-nodes", "2", "-ppn", "4", "-lib", "mha",
		"-min", "4096", "-max", "16384")
	if !strings.Contains(out, "MHA") {
		t.Fatalf("mhaosu allgather output unexpected:\n%s", out)
	}
}

func TestSmokeMhatuneRoundTrip(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "table.json")
	run(t, "mhatune", "-nodes", "2", "-ppn", "4", "-o", tmp)
	out := run(t, "mhatune", "-show", tmp)
	if !strings.Contains(out, "tuning table for 2 nodes") {
		t.Fatalf("-show output unexpected:\n%s", out)
	}
	out = run(t, "mhatune", "-verify", tmp)
	if !strings.Contains(out, "verified") {
		t.Fatalf("-verify output unexpected:\n%s", out)
	}
}

func TestSmokeMhafaultResilienceTable(t *testing.T) {
	out := run(t, "mhafault", "-nodes", "2", "-ppn", "2", "-sizes", "64K",
		"-algs", "mha,ring", "-naive")
	for _, want := range []string{"resilience under the fault schedule",
		"aware vs naive", "per-rail utilization", "node0.rail1", "mha", "ring"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mhafault output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeMhafaultSpecAndChrome(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "faults.txt")
	if err := os.WriteFile(spec, []byte("down node=0 rail=1 until=40us\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "trace.json")
	out := run(t, "mhafault", "-nodes", "2", "-ppn", "2", "-sizes", "32K",
		"-algs", "mha", "-spec", spec, "-chrome", tmp, "-timeline")
	if !strings.Contains(out, "legend") || !strings.Contains(out, "wrote") {
		t.Fatalf("mhafault trace output unexpected:\n%s", out)
	}
	data, err := os.ReadFile(tmp)
	if err != nil || !strings.HasPrefix(strings.TrimSpace(string(data)), "[") {
		t.Fatalf("chrome trace file bad: %v, %.40q", err, data)
	}
}

func TestSmokeMhafaultRejectsBadSpec(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "mhafault"), "-inline", "explode node=0")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bad spec accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown fault kind") {
		t.Fatalf("bad-spec diagnostic unexpected:\n%s", out)
	}
}

func TestSmokeMhaverifyCampaign(t *testing.T) {
	out := run(t, "mhaverify", "-n", "25", "-seed", "42")
	for _, want := range []string{"verified 25 scenarios", "all scenarios passed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mhaverify output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeMhaverifyRepro(t *testing.T) {
	out := run(t, "mhaverify", "-repro",
		"alg=mha nodes=2 ppn=2 hcas=2 msg=257 faults=down node=0 rail=1 until=40us")
	if !strings.Contains(out, "repro passed") {
		t.Fatalf("mhaverify -repro output unexpected:\n%s", out)
	}
	out = run(t, "mhaverify", "-list")
	for _, want := range []string{"mha", "ring", "block-layout"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mhaverify -list missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeMhaverifyRejectsBadSpec(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "mhaverify"), "-repro", "alg=mha-intra nodes=2 ppn=2")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("contract-violating spec accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "does not support") {
		t.Fatalf("bad-spec diagnostic unexpected:\n%s", out)
	}
}

func TestSmokeMhaexplore(t *testing.T) {
	// A shape small enough to exhaust in well under a second, with fault
	// placements so the placement matrix is exercised end to end.
	out := run(t, "mhaexplore", "-algs", "ring,rd", "-nodes", "2", "-ppn", "1",
		"-hcas", "2", "-msg", "4", "-faults")
	for _, want := range []string{"fault=node1.rail1", "all interleavings verified", "across 10 placements"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mhaexplore output missing %q:\n%s", want, out)
		}
	}
	out = run(t, "mhaexplore", "-repro", "alg=ring nodes=1 ppn=2 hcas=1 msg=4 fault=none sched=canonical")
	if !strings.Contains(out, "repro passed") {
		t.Fatalf("mhaexplore -repro output unexpected:\n%s", out)
	}
	out = run(t, "mhaexplore", "-list")
	for _, want := range []string{"ring", "rd", "sched-mha"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mhaexplore -list missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeMhaexploreRejectsUnfittingSchedule(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "mhaexplore"), "-repro",
		"alg=ring nodes=1 ppn=2 hcas=1 msg=4 fault=none sched=9.9.9")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unfitting schedule accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "does not replay") {
		t.Fatalf("unfitting-schedule diagnostic unexpected:\n%s", out)
	}
}

func TestSmokeMhaosuMachinePreset(t *testing.T) {
	out := run(t, "mhaosu", "allgather", "-machine", "thetagpu", "-nodes", "2", "-ppn", "4",
		"-min", "16384", "-max", "65536")
	if !strings.Contains(out, "8 HCAs") {
		t.Fatalf("preset did not apply:\n%s", out)
	}
}

func TestSmokeMhaschedPipeline(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.sched")
	out := run(t, "mhasched", "build", "-alg", "mha", "-nodes", "2", "-ppn", "2",
		"-hcas", "2", "-msg", "1024", "-o", plan)
	if out != "" {
		t.Fatalf("build -o wrote to stdout:\n%s", out)
	}
	out = run(t, "mhasched", "analyze", "-f", plan)
	for _, want := range []string{"mha-ring", "cost", "OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, out)
		}
	}
	out = run(t, "mhasched", "run", "-f", plan)
	if !strings.Contains(out, "4 ranks verified") {
		t.Fatalf("run did not verify:\n%s", out)
	}
	// JSON export must re-parse to the same canonical schedule.
	js := filepath.Join(dir, "plan.json")
	run(t, "mhasched", "export", "-f", plan, "-json", "-o", js)
	out = run(t, "mhasched", "analyze", "-f", js)
	if !strings.Contains(out, "OK") {
		t.Fatalf("exported JSON does not analyze:\n%s", out)
	}
	out = run(t, "mhasched", "search", "-nodes", "2", "-ppn", "2", "-hcas", "2", "-msg", "65536")
	if !strings.Contains(out, "best:") {
		t.Fatalf("search output missing winner:\n%s", out)
	}
}

func TestSmokeMhaschedRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.sched")
	// A schedule whose only step never delivers most blocks.
	spec := "schedule bad nodes=1 ppn=4 msg=8\nstep\nxfer src=0 dst=1 first=0 count=1\n"
	if err := os.WriteFile(bad, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(binaries(t), "mhasched"), "analyze", "-f", bad)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("incomplete schedule accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "missing block") {
		t.Fatalf("diagnostic unexpected:\n%s", out)
	}
}

func TestSmokeMhacluster(t *testing.T) {
	out := run(t, "mhacluster", "policy-compare", "-workload", "burst", "-jobs", "4")
	for _, want := range []string{"policy comparison", "packed", "spread", "rail-aware",
		"lowest mean slowdown: rail-aware"} {
		if !strings.Contains(out, want) {
			t.Fatalf("policy-compare output missing %q:\n%s", want, out)
		}
	}
	out = run(t, "mhacluster", "run", "-nodes", "4", "-ppn", "4", "-jobs", "4",
		"-payload", "-timeline", "-faults", "down node=1 rail=1 until=100us")
	for _, want := range []string{"per-job metrics", "trace hash", "legend", "J=job"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output missing %q:\n%s", want, out)
		}
	}
	out = run(t, "mhacluster", "sweep", "-jobs", "2,4", "-policy", "packed")
	if !strings.Contains(out, "load sweep") {
		t.Fatalf("sweep output unexpected:\n%s", out)
	}
}

func TestSmokeMhalint(t *testing.T) {
	out := run(t, "mhalint", "-list")
	for _, pass := range []string{"detnow", "maporder", "waitpair", "railpin", "gonosim",
		"sharedstate", "purity", "locklint", "suppaudit"} {
		if !strings.Contains(out, pass) {
			t.Fatalf("-list missing pass %s:\n%s", pass, out)
		}
	}
	out = run(t, "mhalint", "./...")
	if !strings.Contains(out, "9 passes") || !strings.Contains(out, "no findings") {
		t.Fatalf("tree should lint clean under all nine passes:\n%s", out)
	}
}

func TestSmokeMhalintFlagsFixtures(t *testing.T) {
	// Every pass must exit non-zero on its own firing fixture, naming
	// itself in the diagnostics.
	for _, pass := range []string{"detnow", "maporder", "waitpair", "railpin", "gonosim",
		"sharedstate", "purity", "locklint", "suppaudit"} {
		cmd := exec.Command(filepath.Join(binaries(t), "mhalint"),
			"./internal/lint/testdata/src/"+pass)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s fixture lints clean:\n%s", pass, out)
		}
		if !strings.Contains(string(out), pass+":") {
			t.Fatalf("%s fixture diagnostics unexpected:\n%s", pass, out)
		}
	}
}

func TestSmokeMhalintPassSelection(t *testing.T) {
	// -pass restricts the run: the waitpair fixture fires under its own
	// pass but is silent under detnow alone.
	fixture := "./internal/lint/testdata/src/waitpair"
	cmd := exec.Command(filepath.Join(binaries(t), "mhalint"), "-pass", "waitpair", fixture)
	out, err := cmd.CombinedOutput()
	if err == nil || !strings.Contains(string(out), "waitpair:") {
		t.Fatalf("-pass waitpair did not fire on its fixture (err=%v):\n%s", err, out)
	}
	out2 := run(t, "mhalint", "-pass", "detnow", fixture)
	if !strings.Contains(out2, "no findings") {
		t.Fatalf("-pass detnow should be silent on the waitpair fixture:\n%s", out2)
	}
	cmd = exec.Command(filepath.Join(binaries(t), "mhalint"), "-pass", "nosuchpass", fixture)
	if _, err := cmd.CombinedOutput(); err == nil {
		t.Fatal("-pass nosuchpass must be a usage error")
	}
}

func TestSmokeMhalintJSONAndBaseline(t *testing.T) {
	fixture := "./internal/lint/testdata/src/detnow"
	bin := filepath.Join(binaries(t), "mhalint")

	// -json: findings as machine-readable output, still exit 1; two runs
	// must agree byte for byte.
	cmd := exec.Command(bin, "-json", fixture)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("fixture lints clean under -json:\n%s", out)
	}
	if !strings.Contains(string(out), `"pass": "detnow"`) || !strings.Contains(string(out), `"findings"`) {
		t.Fatalf("-json output shape unexpected:\n%s", out)
	}
	cmd = exec.Command(bin, "-json", fixture)
	out2, _ := cmd.CombinedOutput()
	if string(out) != string(out2) {
		t.Fatalf("-json output not deterministic:\n%s\nvs\n%s", out, out2)
	}

	// -write-baseline accepts the findings; -baseline then comes back
	// clean, and deleting a line resurfaces exactly that finding.
	base := filepath.Join(t.TempDir(), "fixture.baseline")
	run(t, "mhalint", "-write-baseline", base, fixture)
	out3 := run(t, "mhalint", "-baseline", base, fixture)
	if !strings.Contains(out3, "baselined") {
		t.Fatalf("-baseline did not absorb the accepted findings:\n%s", out3)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if err := os.WriteFile(base, []byte(strings.Join(lines[:len(lines)-1], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(bin, "-baseline", base, fixture)
	out4, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("shrunken baseline still absorbs everything:\n%s", out4)
	}
	if !strings.Contains(string(out4), "1 finding(s)") {
		t.Fatalf("want exactly the un-baselined finding back:\n%s", out4)
	}
}

func TestSmokeMhatuneCacheExport(t *testing.T) {
	dir := t.TempDir()
	table := filepath.Join(dir, "table.json")
	cache := filepath.Join(dir, "warm.json")
	out := run(t, "mhatune", "-nodes", "2", "-ppn", "4", "-o", table, "-o-cache", cache)
	if !strings.Contains(out, "cache entries") {
		t.Fatalf("-o-cache output unexpected:\n%s", out)
	}
	data, err := os.ReadFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"source": "mhatune"`) {
		t.Fatalf("cache export missing mhatune-sourced decisions:\n%.200s", data)
	}
}

// startMhatuned launches the daemon on an ephemeral port and returns its
// base URL plus the process handle; the listener is ready once the
// "listening on" line appears on stderr.
func startMhatuned(t *testing.T, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), "mhatuned"),
		append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			go io.Copy(io.Discard, stderr) // keep draining so the daemon never blocks
			return strings.TrimSpace(line[i+len("listening on "):]), cmd
		}
	}
	cmd.Wait()
	t.Fatal("mhatuned never reported readiness")
	return "", nil
}

func TestSmokeMhatunedDaemon(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "cache.json")
	url, cmd := startMhatuned(t, "-cache", cacheFile)

	query := `{"nodes":2,"ppn":2,"hcas":2,"msg":4096}`
	post := func() (string, string) {
		t.Helper()
		resp, err := http.Post(url+"/v1/schedule", "application/json", strings.NewReader(query))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/schedule: %v status=%d\n%s", err, resp.StatusCode, body)
		}
		return resp.Header.Get("X-Mhatuned-Cache"), string(body)
	}

	if resp, err := http.Get(url + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v", err)
	} else {
		resp.Body.Close()
	}
	coldHdr, coldBody := post()
	warmHdr, warmBody := post()
	if coldHdr != "miss" || warmHdr != "hit" {
		t.Fatalf("cache headers cold=%q warm=%q, want miss/hit", coldHdr, warmHdr)
	}
	if coldBody != warmBody {
		t.Fatal("warm response differs from cold response")
	}

	// Graceful shutdown persists the cache...
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v", err)
	}
	if _, err := os.Stat(cacheFile); err != nil {
		t.Fatalf("cache file not saved: %v", err)
	}

	// ...and a restarted daemon answers the same query warm.
	url2, _ := startMhatuned(t, "-cache", cacheFile)
	resp, err := http.Post(url2+"/v1/schedule", "application/json", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get("X-Mhatuned-Cache"); h != "hit" {
		t.Fatalf("restarted daemon served %q, want hit", h)
	}
	if string(body) != coldBody {
		t.Fatal("restarted daemon serves different bytes")
	}
}

func TestSmokeMhatunedBench(t *testing.T) {
	out := run(t, "mhatuned", "-bench", "-bench-requests", "5000")
	if !strings.Contains(out, "decisions/sec") || !strings.Contains(out, "hit rate") {
		t.Fatalf("bench output unexpected:\n%s", out)
	}
}

func TestSmokeMhaclusterRejectsBadPolicy(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "mhacluster"), "run", "-policy", "best-fit")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bad policy accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown policy") {
		t.Fatalf("bad-policy diagnostic unexpected:\n%s", out)
	}
}

func TestSmokeMhacomposeListAndDescribe(t *testing.T) {
	out := run(t, "mhacompose", "list")
	for _, name := range []string{"compose-ag", "compose-rs", "compose-a2a", "compose-ar", "compose-bcast"} {
		if !strings.Contains(out, name) {
			t.Fatalf("list missing %s:\n%s", name, out)
		}
	}
	out = run(t, "mhacompose", "describe", "-coll", "reduce-scatter", "-nodes", "4", "-ppn", "4", "-hcas", "2")
	for _, want := range []string{"coll=reduce-scatter", "red scope=node", "mc scope=node alg=pull", "leader-group"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeMhacomposeLowerAnalyzeRun(t *testing.T) {
	out := run(t, "mhacompose", "lower", "-coll", "alltoall", "-nodes", "2", "-ppn", "2", "-hcas", "2", "-msg", "4096")
	if !strings.Contains(out, "step") {
		t.Fatalf("lowered IR unexpected:\n%s", out)
	}
	// A custom pipeline file goes through the same path.
	pipe := filepath.Join(t.TempDir(), "rs.compose")
	custom := "compose my-rs coll=reduce-scatter\nred scope=world alg=ring\n"
	if err := os.WriteFile(pipe, []byte(custom), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, "mhacompose", "analyze", "-f", pipe, "-nodes", "2", "-ppn", "2", "-msg", "65536")
	if !strings.Contains(out, "my-rs") || !strings.Contains(out, "invariants: ok") {
		t.Fatalf("analyze output unexpected:\n%s", out)
	}
	out = run(t, "mhacompose", "run", "-name", "compose-rs", "-nodes", "2", "-ppn", "4", "-msg", "1024")
	if !strings.Contains(out, "verified") || !strings.Contains(out, "trace hash") {
		t.Fatalf("run output unexpected:\n%s", out)
	}
}

func TestSmokeMhacomposeRejectsIncompletePipeline(t *testing.T) {
	pipe := filepath.Join(t.TempDir(), "bad.compose")
	// A reduce-scatter that folds into node leaders but never
	// distributes: the static analyzer must refuse it.
	bad := "compose bad coll=reduce-scatter\nred scope=node\nred scope=leaders alg=ring\n"
	if err := os.WriteFile(pipe, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(binaries(t), "mhacompose"),
		"analyze", "-f", pipe, "-nodes", "2", "-ppn", "2", "-msg", "1024")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("incomplete pipeline accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "analyze") {
		t.Fatalf("diagnostic unexpected:\n%s", out)
	}
}

func TestSmokeMhafabricDescribeAndRoute(t *testing.T) {
	out := run(t, "mhafabric", "describe", "-fabric", "ft:arity=2,levels=2,over=2", "-nodes", "8")
	if !strings.Contains(out, "fattree") || !strings.Contains(out, "shared links: 8") {
		t.Fatalf("describe output unexpected:\n%s", out)
	}
	out = run(t, "mhafabric", "route", "-fabric", "dfly:groups=2,routers=2,nodes=2", "-nodes", "8", "-src", "0", "-dst", "7")
	if !strings.Contains(out, "node0 -> node7:") || !strings.Contains(out, "dfly.g0-g1") {
		t.Fatalf("route output unexpected:\n%s", out)
	}
	// Same-leaf traffic crosses no shared links.
	out = run(t, "mhafabric", "route", "-fabric", "ft:arity=2,levels=2,over=2", "-nodes", "4", "-src", "0", "-dst", "1")
	if !strings.Contains(out, "no shared links") {
		t.Fatalf("same-leaf route output unexpected:\n%s", out)
	}
}

func TestSmokeMhafabricSweepMatchesGolden(t *testing.T) {
	out := run(t, "mhafabric", "sweep")
	want, err := os.ReadFile(filepath.Join("internal", "bench", "testdata", "golden", "fabric.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Fatalf("sweep output drifted from the fabric golden:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestSmokeMhafabricRejectsBadSpec(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "mhafabric"), "describe", "-fabric", "torus:dims=3")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bad fabric spec accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "fabric") {
		t.Fatalf("diagnostic unexpected:\n%s", out)
	}
}
