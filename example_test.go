package mha_test

// Godoc examples for the public API: each is a complete, tested program
// fragment a user can copy.

import (
	"fmt"

	"mha"
)

// The basic pattern: build a world, run one body per rank, call the
// paper's allgather.
func ExampleAllgather() {
	topo := mha.NewCluster(2, 2, 2) // 2 nodes x 2 ranks, 2 HCAs per node
	w := mha.NewWorld(mha.Config{Topo: topo})
	err := w.Run(func(p *mha.Proc) {
		send := mha.Bytes([]byte{byte('a' + p.Rank())})
		recv := mha.NewBuf(p.Size())
		mha.Allgather(p, w, send, recv)
		if p.Rank() == 0 {
			fmt.Println(string(recv.Data()))
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: abcd
}

// Phantom buffers measure the paper's large configurations without
// materializing data; virtual time is deterministic.
func ExampleMeasureAllgather() {
	topo := mha.NewCluster(4, 8, 2)
	d1 := mha.MeasureAllgather(topo, mha.Thor(), 64<<10, mha.MHAProfile())
	d2 := mha.MeasureAllgather(topo, mha.Thor(), 64<<10, mha.MHAProfile())
	fmt.Println(d1 == d2, d1 < mha.MeasureAllgather(topo, mha.Thor(), 64<<10, mha.HPCXProfile()))
	// Output: true true
}

// The Section 4 cost model predicts before simulating.
func ExampleNewModel() {
	m := mha.NewModel(mha.Thor(), mha.NewCluster(16, 32, 2))
	fmt.Printf("offload d at 1MB: %.1f transfers\n", m.OffloadD(1<<20))
	fmt.Println("ring beats RD at 256KB:", m.RingBetterThanRD(256<<10))
	// Output:
	// offload d at 1MB: 3.3 transfers
	// ring beats RD at 256KB: true
}

// Allreduce composes the ring reduce-scatter with the MHA allgather.
func ExampleAllreduce() {
	topo := mha.NewCluster(2, 2, 2)
	w := mha.NewWorld(mha.Config{Topo: topo})
	err := w.Run(func(p *mha.Proc) {
		buf := mha.NewBuf(8 * p.Size()) // one float64 chunk per rank
		buf.Data()[0] = byte(1)         // rank-distinct low byte
		mha.Allreduce(p, w, buf, mha.SumF64())
	})
	fmt.Println(err == nil)
	// Output: true
}
