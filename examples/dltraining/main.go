// Synthetic data-parallel deep-learning training (the paper's Section
// 5.6): every step runs modeled forward/backward compute followed by a
// gradient allreduce, for ResNet-50/101/152 with batch size 16 per rank.
// Reports images/second for the MVAPICH2-X-style allreduce versus the MHA
// allreduce, as in the paper's Figure 17.
package main

import (
	"fmt"
	"log"

	"mha"
	"mha/internal/apps/dltrain"
)

func main() {
	topos := []mha.Cluster{
		mha.NewCluster(2, 8, 2), mha.NewCluster(4, 8, 2), mha.NewCluster(8, 8, 2),
	}
	for _, net := range dltrain.Networks() {
		fmt.Printf("%s (%.1fM params, %dMB gradients), batch 16/rank:\n",
			net.Name, float64(net.Params)/1e6, net.GradBytes()>>20)
		fmt.Printf("  %-8s %18s %18s %12s %10s\n",
			"ranks", "MVAPICH2-X img/s", "MHA img/s", "improvement", "comm frac")
		for _, topo := range topos {
			run := func(p mha.Profile) dltrain.Result {
				res, err := dltrain.Run(dltrain.Config{
					Net: net, Topo: topo, Profile: p, Steps: 2,
				})
				if err != nil {
					log.Fatal(err)
				}
				return res
			}
			base := run(mha.MVAPICH2XProfile())
			ours := run(mha.MHAProfile())
			fmt.Printf("  %-8d %18.1f %18.1f %11.2f%% %9.1f%%\n",
				topo.Size(), base.ImagesPerSec, ours.ImagesPerSec,
				(ours.ImagesPerSec/base.ImagesPerSec-1)*100,
				ours.CommFraction*100)
		}
		fmt.Println()
	}
}
