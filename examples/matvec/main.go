// Distributed matrix-vector multiplication (the paper's Section 5.5
// application): y = A*x with a 1D row layout, where each iteration
// allgathers the input vector's segments before the local multiply.
// Compares the achieved GFLOP/s of the three library profiles for both
// strong and weak scaling, and verifies the distributed arithmetic
// against a sequential multiplication at a small size.
package main

import (
	"fmt"
	"log"
	"math"

	"mha"
	"mha/internal/apps/matvec"
)

func main() {
	// --- Verify the kernel arithmetic at a small, real-data size.
	small := matvec.Config{
		Rows: 64, Cols: 256,
		Topo:    mha.NewCluster(2, 4, 2),
		Profile: mha.MHAProfile(),
	}
	res, err := matvec.Run(small)
	if err != nil {
		log.Fatal(err)
	}
	oracle := matvec.Sequential(small.Rows, small.Cols)
	for i := range oracle {
		if math.Abs(res.Y[i]-oracle[i]) > 1e-9 {
			log.Fatalf("distributed y[%d]=%v, sequential %v", i, res.Y[i], oracle[i])
		}
	}
	fmt.Printf("verified %dx%d distributed matvec against sequential oracle\n\n",
		small.Rows, small.Cols)

	// --- Strong scaling on the paper's 1024x32768 problem (scaled shapes).
	fmt.Println("strong scaling, A = 1024 x 32768 (GFLOP/s):")
	fmt.Printf("%-8s %12s %12s %12s\n", "ranks", "HPC-X", "MVAPICH2-X", "MHA")
	for _, topo := range []mha.Cluster{
		mha.NewCluster(2, 8, 2), mha.NewCluster(4, 8, 2), mha.NewCluster(8, 8, 2),
	} {
		fmt.Printf("%-8d", topo.Size())
		for _, prof := range []mha.Profile{mha.HPCXProfile(), mha.MVAPICH2XProfile(), mha.MHAProfile()} {
			r, err := matvec.Run(matvec.Config{
				Rows: 1024, Cols: 32768,
				Topo: topo, Profile: prof, Phantom: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.2f", r.GFLOPS)
		}
		fmt.Println()
	}

	// --- Weak scaling: columns grow with the rank count.
	fmt.Println("\nweak scaling, cols = 512 x ranks (GFLOP/s):")
	fmt.Printf("%-24s %12s %12s %12s\n", "ranks (problem)", "HPC-X", "MVAPICH2-X", "MHA")
	for _, topo := range []mha.Cluster{
		mha.NewCluster(2, 8, 2), mha.NewCluster(4, 8, 2), mha.NewCluster(8, 8, 2),
	} {
		cols := 512 * topo.Size()
		fmt.Printf("%-24s", fmt.Sprintf("%d (1024x%d)", topo.Size(), cols))
		for _, prof := range []mha.Profile{mha.HPCXProfile(), mha.MVAPICH2XProfile(), mha.MHAProfile()} {
			r, err := matvec.Run(matvec.Config{
				Rows: 1024, Cols: cols,
				Topo: topo, Profile: prof, Phantom: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.2f", r.GFLOPS)
		}
		fmt.Println()
	}
}
