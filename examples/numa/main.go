// NUMA and tracing: runs the paper's future-work 3-level design against
// the 2-level design on a NUMA cluster (2 sockets per node, 1.5x
// cross-socket CMA penalty) and renders an ASCII timeline of the 3-level
// algorithm so the level structure is visible.
package main

import (
	"fmt"
	"log"

	"mha"
)

func main() {
	topo := mha.Cluster{Nodes: 4, PPN: 8, HCAs: 2, Sockets: 2}
	if err := topo.Validate(); err != nil {
		log.Fatal(err)
	}
	prm := mha.NumaThor()

	measure := func(alg func(p *mha.Proc, w *mha.World, send, recv mha.Buf), m int) mha.Duration {
		w := mha.NewWorld(mha.Config{Topo: topo, Params: prm, Phantom: true})
		var worst mha.Time
		err := w.Run(func(p *mha.Proc) {
			alg(p, w, mha.Phantom(m), mha.Phantom(m*p.Size()))
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return mha.Duration(worst)
	}

	fmt.Printf("allgather on %v with 2 NUMA sockets/node (1.5x cross-socket penalty)\n\n", topo)
	fmt.Printf("%-10s %14s %14s %8s\n", "size/rank", "2-level MHA", "3-level MHA", "gain")
	for _, m := range []int{16 << 10, 128 << 10, 1 << 20} {
		two := measure(mha.Allgather, m)
		three := measure(mha.Allgather3Level, m)
		fmt.Printf("%-10d %12.1fus %12.1fus %7.1f%%\n",
			m, two.Micros(), three.Micros(), (1-float64(three)/float64(two))*100)
	}

	// Timeline of the 3-level run on one node's worth of ranks.
	rec := mha.NewTracer()
	w := mha.NewWorld(mha.Config{Topo: topo, Params: prm, Phantom: true, Tracer: rec})
	err := w.Run(func(p *mha.Proc) {
		mha.Allgather3Level(p, w, mha.Phantom(64<<10), mha.Phantom(64<<10*p.Size()))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3-level timeline (64KB/rank), ranks of node 0 only:\n")
	full := rec.Timeline(100)
	// The recorder draws all ranks; show the first node's lanes plus legend.
	lines := 0
	for _, line := range splitLines(full) {
		fmt.Println(line)
		lines++
		if lines > topo.PPN+1 { // header + one lane per rank of node 0
			break
		}
	}
	fmt.Println("legend: S=send R=recv H=HCA transfer I=shm copy-in O=shm copy-out C=compute .=wait")
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
