// Quickstart: run the paper's MHA allgather on a simulated 4-node cluster
// with 8 ranks per node and 2 HCAs per node, verify the result against
// the expected concatenation, and compare its virtual-time latency with
// the flat ring baseline.
package main

import (
	"fmt"
	"log"

	"mha"
)

func main() {
	topo := mha.NewCluster(4, 8, 2)
	fmt.Printf("cluster: %v (%d ranks)\n", topo, topo.Size())

	// --- Correctness: real payloads round-trip through the collective.
	w := mha.NewWorld(mha.Config{Topo: topo})
	const m = 1024 // bytes contributed per rank
	var latency mha.Duration
	err := w.Run(func(p *mha.Proc) {
		send := mha.NewBuf(m)
		for i := range send.Data() {
			send.Data()[i] = byte(p.Rank())
		}
		recv := mha.NewBuf(m * p.Size())
		mha.Allgather(p, w, send, recv)

		// Every rank must now hold every other rank's block, in order.
		for r := 0; r < p.Size(); r++ {
			if recv.Data()[r*m] != byte(r) {
				log.Fatalf("rank %d: block %d corrupted", p.Rank(), r)
			}
		}
		if d := mha.Duration(p.Now()); d > latency {
			latency = d
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MHA allgather of %dB/rank verified on all %d ranks in %v (virtual)\n",
		m, topo.Size(), latency)

	// --- Performance: sweep message sizes against the baselines.
	fmt.Printf("\n%-8s %14s %14s %14s\n", "size", "HPC-X", "MVAPICH2-X", "MHA")
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		fmt.Printf("%-8d", size)
		for _, prof := range []mha.Profile{mha.HPCXProfile(), mha.MVAPICH2XProfile(), mha.MHAProfile()} {
			d := mha.MeasureAllgather(topo, mha.Thor(), size, prof)
			fmt.Printf(" %13.1fus", d.Micros())
		}
		fmt.Println()
	}
}
