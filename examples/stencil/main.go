// Distributed 1-D heat diffusion (Jacobi) with halo exchange — the
// "solving differential equations" application family from the paper's
// introduction. Verifies the distributed grid against a sequential solve
// and reports scaling of the update throughput.
package main

import (
	"fmt"
	"log"
	"math"

	"mha"
	"mha/internal/apps/stencil"
)

func main() {
	// --- Correctness at a small size.
	cfg := stencil.Config{
		Points: 256, Iterations: 100, Alpha: 0.25,
		Topo: mha.NewCluster(2, 4, 2),
	}
	res, err := stencil.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	oracle := stencil.Sequential(cfg)
	worst := 0.0
	for i := range oracle {
		if d := math.Abs(res.Grid[i] - oracle[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("verified %d-point grid after %d sweeps on %d ranks (max |err| = %.2e)\n",
		cfg.Points, cfg.Iterations, cfg.Topo.Size(), worst)

	// --- Weak scaling: points grow with the rank count.
	fmt.Printf("\nweak scaling (4096 points/rank, 50 sweeps):\n")
	fmt.Printf("%-10s %16s %14s\n", "ranks", "points/sec", "sweep time")
	for _, topo := range []mha.Cluster{
		mha.NewCluster(1, 8, 2), mha.NewCluster(2, 8, 2),
		mha.NewCluster(4, 8, 2), mha.NewCluster(8, 8, 2),
	} {
		r, err := stencil.Run(stencil.Config{
			Points: 4096 * topo.Size(), Iterations: 50, Alpha: 0.25,
			Topo: topo, Phantom: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %16.0f %12.1fus\n",
			topo.Size(), r.PointsPerSec, r.Elapsed.Micros()/50)
	}
}
