// Offload tuning (the paper's Section 3.1 / Figure 5): sweep the amount
// of intra-node allgather work offloaded to the idle HCAs, print the
// U-shaped latency curve, and compare the empirically tuned optimum with
// the analytic Equation (1). Also demonstrates the phase-2 Ring-vs-RD
// selection (Figure 8) through the cost model.
package main

import (
	"fmt"
	"sort"

	"mha"
)

func main() {
	prm := mha.Thor()
	topo := mha.NewCluster(1, 8, 2) // a single node with 8 ranks, 2 rails
	msg := 4 << 20

	best, curve := mha.TuneOffload(topo, prm, msg, 10)
	sort.Slice(curve, func(i, j int) bool { return curve[i].D < curve[j].D })

	model := mha.NewModel(prm, topo)
	fmt.Printf("offload tuning, %v, %d bytes/rank\n", topo, msg)
	fmt.Printf("analytic Eq.(1) d = %.2f, tuned d = %.2f\n\n", model.OffloadD(msg), best)
	fmt.Printf("%-10s %14s   (bar = latency)\n", "offload d", "latency")
	var worst float64
	for _, pt := range curve {
		if us := pt.Latency.Micros(); us > worst {
			worst = us
		}
	}
	for _, pt := range curve {
		bar := int(pt.Latency.Micros() / worst * 50)
		marker := ""
		if pt.D == best {
			marker = "  <- optimum"
		}
		fmt.Printf("%-10.2f %12.1fus   %s%s\n", pt.D, pt.Latency.Micros(),
			stringOf('#', bar), marker)
	}

	// Phase-2 selection across sizes (the Figure 8 crossover).
	fmt.Printf("\nphase-2 algorithm selection on %v:\n", mha.NewCluster(16, 32, 2))
	inter := mha.NewModel(prm, mha.NewCluster(16, 32, 2))
	for sz := 256; sz <= 1<<20; sz *= 4 {
		alg := "recursive doubling"
		if inter.RingBetterThanRD(sz) {
			alg = "ring"
		}
		fmt.Printf("  %8d bytes/rank -> %s\n", sz, alg)
	}
}

func stringOf(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
