module mha

go 1.22
