// Package bpmf implements a distributed Bayesian-Probabilistic-Matrix-
// Factorization-style training loop, the application family the paper
// cites three times as a major allgather consumer (Salakhutdinov & Mnih;
// Vander Aa et al., "Distributed Bayesian probabilistic matrix
// factorization"). Each Gibbs sweep alternates two half-steps; in each,
// every rank updates its partition of one factor matrix and then
// allgathers it so the opposite half-step can read all of it — two
// allgathers of K-dimensional factors per sweep.
//
// In real mode the factor updates are a deterministic contraction, so the
// test suite can assert that after any number of sweeps every rank holds
// bit-identical factor matrices — i.e. the collective really delivered
// everyone's updates everywhere.
package bpmf

import (
	"encoding/binary"
	"fmt"
	"math"

	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// FlopRate models the per-core factor-update throughput in FLOP/s
// (Cholesky solves are compute-dense; higher than streaming dgemv).
const FlopRate = 8e9

// Config describes one BPMF run.
type Config struct {
	// Users and Items are the two entity counts; both must divide by the
	// rank count. Latent is the factor dimension K (the paper's cited
	// implementations use 10-100).
	Users, Items, Latent int
	// RatingsPerEntity scales the per-update compute (K^2 per rating plus
	// a K^3 solve). Zero defaults to 50.
	RatingsPerEntity int
	// Sweeps is the number of Gibbs sweeps (>= 1).
	Sweeps int
	// Topo, Params, Profile, Phantom as elsewhere.
	Topo    topology.Cluster
	Params  *netmodel.Params
	Profile collectives.Profile
	Phantom bool
}

// Result summarizes a run.
type Result struct {
	// Elapsed is the completion time of the slowest rank.
	Elapsed sim.Duration
	// SweepsPerSec is the training throughput.
	SweepsPerSec float64
	// UserDigest and ItemDigest are order-sensitive checksums of the final
	// factor matrices (real mode; every rank must agree, tests verify via
	// Run's internal cross-check).
	UserDigest, ItemDigest float64
}

func (c *Config) validate() error {
	p := c.Topo.Size()
	switch {
	case c.Users <= 0 || c.Items <= 0 || c.Latent <= 0:
		return fmt.Errorf("bpmf: non-positive problem %d/%d/%d", c.Users, c.Items, c.Latent)
	case c.Users%p != 0 || c.Items%p != 0:
		return fmt.Errorf("bpmf: users %d / items %d not divisible by %d ranks", c.Users, c.Items, p)
	case c.Sweeps < 0:
		return fmt.Errorf("bpmf: negative sweeps")
	}
	return nil
}

// factor returns the deterministic update value of entity e, dimension k,
// at a given sweep.
func factor(e, k, sweep int) float64 {
	return float64((e*31+k*7+sweep*13)%101) / 101
}

// updateCost models one entity's factor update.
func updateCost(cfg Config) sim.Duration {
	k := float64(cfg.Latent)
	ratings := float64(cfg.RatingsPerEntity)
	if ratings == 0 {
		ratings = 50
	}
	flops := ratings*k*k + k*k*k
	return sim.FromSeconds(flops / FlopRate)
}

// Run executes the training loop.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Sweeps == 0 {
		cfg.Sweeps = 1
	}
	w := mpi.New(mpi.Config{Topo: cfg.Topo, Params: cfg.Params, Phantom: cfg.Phantom})
	p := cfg.Topo.Size()
	K := cfg.Latent
	uPer, iPer := cfg.Users/p, cfg.Items/p
	uBytes, iBytes := uPer*K*8, iPer*K*8
	cost := updateCost(cfg)

	var worst sim.Time
	digests := make([][2]float64, p)
	mismatch := false
	err := w.Run(func(proc *mpi.Proc) {
		r := proc.Rank()
		userSeg := mpi.Make(uBytes, cfg.Phantom)
		itemSeg := mpi.Make(iBytes, cfg.Phantom)
		userAll := mpi.Make(uBytes*p, cfg.Phantom)
		itemAll := mpi.Make(iBytes*p, cfg.Phantom)
		for s := 1; s <= cfg.Sweeps; s++ {
			// Half-step 1: update this rank's user factors, share them.
			fill(userSeg, r*uPer, K, s)
			proc.Compute(cost * sim.Duration(uPer))
			cfg.Profile.Allgather(proc, w, userSeg, userAll)
			// Half-step 2: item factors (reads userAll in the real system).
			fill(itemSeg, r*iPer, K, s)
			proc.Compute(cost * sim.Duration(iPer))
			cfg.Profile.Allgather(proc, w, itemSeg, itemAll)
		}
		digests[r] = [2]float64{digest(userAll), digest(itemAll)}
		if proc.Now() > worst {
			worst = proc.Now()
		}
	})
	if err != nil {
		return Result{}, err
	}
	for r := 1; r < p; r++ {
		if digests[r] != digests[0] {
			mismatch = true
		}
	}
	if mismatch {
		return Result{}, fmt.Errorf("bpmf: ranks disagree on the final factors")
	}
	elapsed := sim.Duration(worst)
	return Result{
		Elapsed:      elapsed,
		SweepsPerSec: float64(cfg.Sweeps) / elapsed.Seconds(),
		UserDigest:   digests[0][0],
		ItemDigest:   digests[0][1],
	}, nil
}

// fill writes the sweep's deterministic factors for entities starting at
// base into a real segment (no-op for phantom).
func fill(seg mpi.Buf, base, K, sweep int) {
	if seg.IsPhantom() {
		return
	}
	d := seg.Data()
	for e := 0; e < len(d)/(K*8); e++ {
		for k := 0; k < K; k++ {
			binary.LittleEndian.PutUint64(d[(e*K+k)*8:], math.Float64bits(factor(base+e, k, sweep)))
		}
	}
}

// digest folds a buffer into an order-sensitive checksum (0 for phantom).
func digest(b mpi.Buf) float64 {
	if b.IsPhantom() {
		return 0
	}
	s := 0.0
	d := b.Data()
	for i := 0; i+8 <= len(d); i += 8 {
		s = s*1.000001 + math.Float64frombits(binary.LittleEndian.Uint64(d[i:]))
	}
	return s
}
