package bpmf

import (
	"testing"

	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/topology"
)

func TestAllRanksConvergeIdentically(t *testing.T) {
	for _, prof := range []collectives.Profile{collectives.HPCX(), collectives.MVAPICH2X(), core.Profile()} {
		res, err := Run(Config{
			Users: 64, Items: 32, Latent: 4, Sweeps: 3,
			Topo:    topology.New(2, 4, 2),
			Profile: prof,
		})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if res.UserDigest == 0 || res.ItemDigest == 0 {
			t.Fatalf("%s: empty digests %+v", prof.Name, res)
		}
		if res.SweepsPerSec <= 0 {
			t.Fatalf("%s: no throughput", prof.Name)
		}
	}
}

func TestDigestsIndependentOfLibrary(t *testing.T) {
	// Different allgather implementations must produce the same data.
	get := func(prof collectives.Profile) [2]float64 {
		res, err := Run(Config{
			Users: 32, Items: 32, Latent: 3, Sweeps: 2,
			Topo: topology.New(2, 2, 2), Profile: prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		return [2]float64{res.UserDigest, res.ItemDigest}
	}
	a := get(collectives.HPCX())
	b := get(core.Profile())
	if a != b {
		t.Fatalf("digest differs across libraries: %v vs %v", a, b)
	}
}

func TestMHASpeedsUpCommBoundTraining(t *testing.T) {
	run := func(prof collectives.Profile) float64 {
		res, err := Run(Config{
			Users: 512 * 64, Items: 512 * 64, Latent: 32, Sweeps: 2,
			RatingsPerEntity: 5, // light compute: comm-bound
			Topo:             topology.New(8, 8, 2),
			Profile:          prof,
			Phantom:          true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SweepsPerSec
	}
	mha := run(core.Profile())
	hpcx := run(collectives.HPCX())
	if mha <= hpcx {
		t.Fatalf("MHA %.2f sweeps/s not faster than HPC-X %.2f", mha, hpcx)
	}
}

func TestValidation(t *testing.T) {
	topo := topology.New(2, 2, 1)
	bad := []Config{
		{Users: 0, Items: 4, Latent: 2, Topo: topo},
		{Users: 4, Items: 0, Latent: 2, Topo: topo},
		{Users: 4, Items: 4, Latent: 0, Topo: topo},
		{Users: 5, Items: 4, Latent: 2, Topo: topo}, // indivisible
		{Users: 4, Items: 4, Latent: 2, Topo: topo, Sweeps: -1},
	}
	for i, cfg := range bad {
		cfg.Profile = collectives.HPCX()
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMoreSweepsTakeLonger(t *testing.T) {
	base := Config{
		Users: 64, Items: 64, Latent: 4,
		Topo: topology.New(2, 2, 2), Profile: core.Profile(), Phantom: true,
	}
	base.Sweeps = 1
	one, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Sweeps = 4
	four, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(four.Elapsed) / float64(one.Elapsed)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4 sweeps took %.2fx one sweep", ratio)
	}
}
