// Package dltrain implements the synthetic data-parallel deep-learning
// training benchmark of the paper's Section 5.6 (PyTorch + Horovod on
// ResNet-50/101/152 with batch size 16): every training step runs local
// forward/backward compute and then a gradient allreduce, and the metric
// is images per second. Only the allreduce differs between the compared
// libraries, exactly as in the paper's Figure 17.
//
// The paper used the Horovod-provided synthetic benchmark; compute per
// step is therefore a modeled constant per network, calibrated so the
// gradient allreduce contributes a realistic (~5-15%) share of the step —
// the regime where the paper's reported 7.83% end-to-end improvement is
// possible.
package dltrain

import (
	"fmt"

	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// Network describes one neural network's training footprint.
type Network struct {
	// Name is the display name.
	Name string
	// Params is the parameter count; gradients are 4-byte floats.
	Params int
	// StepCompute is the modeled forward+backward time for one batch on
	// one rank.
	StepCompute sim.Duration
}

// GradBytes returns the gradient buffer size (fp32).
func (n Network) GradBytes() int { return n.Params * 4 }

// The three networks of the paper's Figure 17 (parameter counts from its
// Section 5.6: 25.6M, 44.7M and 60.4M).
func ResNet50() Network {
	return Network{Name: "ResNet-50", Params: 25_600_000, StepCompute: 150 * sim.Millisecond}
}
func ResNet101() Network {
	return Network{Name: "ResNet-101", Params: 44_700_000, StepCompute: 260 * sim.Millisecond}
}
func ResNet152() Network {
	return Network{Name: "ResNet-152", Params: 60_400_000, StepCompute: 360 * sim.Millisecond}
}

// Networks returns the benchmark set in the paper's order.
func Networks() []Network { return []Network{ResNet50(), ResNet101(), ResNet152()} }

// Config describes one training benchmark.
type Config struct {
	// Net is the network being trained.
	Net Network
	// Topo is the cluster shape.
	Topo topology.Cluster
	// Params is the cost model (nil = Thor).
	Params *netmodel.Params
	// Profile supplies the allreduce implementation.
	Profile collectives.Profile
	// BatchPerRank is the per-worker batch size (the paper uses 16).
	BatchPerRank int
	// Steps is the number of measured training steps (>=1).
	Steps int
}

// Result is the outcome of one training benchmark.
type Result struct {
	// StepTime is the average wall-clock (virtual) time per step.
	StepTime sim.Duration
	// ImagesPerSec is the aggregate training throughput.
	ImagesPerSec float64
	// CommFraction is the allreduce share of the step time, averaged.
	CommFraction float64
}

// Run executes the synthetic training loop.
func Run(cfg Config) (Result, error) {
	if cfg.BatchPerRank <= 0 {
		cfg.BatchPerRank = 16
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	if cfg.Net.Params <= 0 || cfg.Net.StepCompute <= 0 {
		return Result{}, fmt.Errorf("dltrain: invalid network %+v", cfg.Net)
	}
	w := mpi.New(mpi.Config{Topo: cfg.Topo, Params: cfg.Params, Phantom: true})
	p := cfg.Topo.Size()
	// Pad the gradient buffer to a multiple of 8*P so ring reduce-scatter
	// chunks are uniform (Horovod's fusion buffer does the same).
	grad := cfg.Net.GradBytes()
	unit := 8 * p
	grad = (grad + unit - 1) / unit * unit

	var worst sim.Time
	var commTotal sim.Duration
	err := w.Run(func(proc *mpi.Proc) {
		buf := mpi.Phantom(grad)
		for s := 0; s < cfg.Steps; s++ {
			proc.Compute(cfg.Net.StepCompute)
			t0 := proc.Now()
			cfg.Profile.Allreduce(proc, w, buf, collectives.SumF64())
			if proc.Rank() == 0 {
				commTotal += sim.Duration(proc.Now() - t0)
			}
		}
		if proc.Now() > worst {
			worst = proc.Now()
		}
	})
	if err != nil {
		return Result{}, err
	}
	elapsed := sim.Duration(worst)
	step := elapsed / sim.Duration(cfg.Steps)
	images := float64(cfg.Steps * cfg.BatchPerRank * p)
	return Result{
		StepTime:     step,
		ImagesPerSec: images / elapsed.Seconds(),
		CommFraction: float64(commTotal) / float64(elapsed),
	}, nil
}
