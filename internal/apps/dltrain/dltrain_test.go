package dltrain

import (
	"testing"

	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/topology"
)

func TestNetworksMatchPaper(t *testing.T) {
	nets := Networks()
	if len(nets) != 3 {
		t.Fatalf("want 3 networks, got %d", len(nets))
	}
	wantParams := []int{25_600_000, 44_700_000, 60_400_000}
	for i, n := range nets {
		if n.Params != wantParams[i] {
			t.Fatalf("%s params = %d, want %d", n.Name, n.Params, wantParams[i])
		}
		if n.GradBytes() != n.Params*4 {
			t.Fatalf("%s grad bytes wrong", n.Name)
		}
		if n.StepCompute <= 0 {
			t.Fatalf("%s has no compute cost", n.Name)
		}
	}
}

func TestRunProducesThroughput(t *testing.T) {
	res, err := Run(Config{
		Net:     ResNet50(),
		Topo:    topology.New(2, 4, 2),
		Profile: core.Profile(),
		Steps:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImagesPerSec <= 0 || res.StepTime <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.CommFraction <= 0 || res.CommFraction >= 1 {
		t.Fatalf("comm fraction %v out of range", res.CommFraction)
	}
}

func TestMHAImprovesThroughput(t *testing.T) {
	// Figure 17 behavior: the MHA allreduce gives a single-digit
	// percentage end-to-end improvement.
	run := func(prof collectives.Profile) float64 {
		res, err := Run(Config{
			Net:     ResNet50(),
			Topo:    topology.New(8, 8, 2),
			Profile: prof,
			Steps:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ImagesPerSec
	}
	mha := run(core.Profile())
	mvp := run(collectives.MVAPICH2X())
	imp := (mha - mvp) / mvp
	if imp <= 0 {
		t.Fatalf("MHA (%.1f img/s) not faster than MVAPICH2-X (%.1f img/s)", mha, mvp)
	}
	if imp > 0.30 {
		t.Fatalf("improvement %.0f%% implausibly large for an end-to-end metric", imp*100)
	}
}

func TestThroughputScalesWithRanks(t *testing.T) {
	run := func(nodes int) float64 {
		res, err := Run(Config{
			Net:     ResNet101(),
			Topo:    topology.New(nodes, 4, 2),
			Profile: core.Profile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ImagesPerSec
	}
	small, large := run(2), run(4)
	if large <= small {
		t.Fatalf("throughput did not scale: %v -> %v img/s", small, large)
	}
	// Slightly superlinear is possible (the 2-node hierarchical allgather
	// degenerates to a single unpipelined block), but not more than a few
	// percent.
	if large >= 2.1*small {
		t.Fatalf("superlinear scaling %v -> %v img/s is suspicious", small, large)
	}
}

func TestLargerNetworksSlowerSteps(t *testing.T) {
	var prev float64
	for _, net := range Networks() {
		res, err := Run(Config{
			Net:     net,
			Topo:    topology.New(2, 4, 2),
			Profile: core.Profile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if s := res.StepTime.Seconds(); s <= prev {
			t.Fatalf("%s step %.3fs not slower than previous %.3fs", net.Name, s, prev)
		} else {
			prev = s
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	res, err := Run(Config{
		Net:     ResNet50(),
		Topo:    topology.New(1, 2, 1),
		Profile: collectives.HPCX(),
		// BatchPerRank and Steps left zero: defaults 16 and 1.
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImagesPerSec <= 0 {
		t.Fatal("defaults produced no throughput")
	}
}

func TestInvalidNetworkRejected(t *testing.T) {
	if _, err := Run(Config{
		Net:     Network{Name: "broken"},
		Topo:    topology.New(1, 2, 1),
		Profile: collectives.HPCX(),
	}); err == nil {
		t.Fatal("invalid network should error")
	}
}
