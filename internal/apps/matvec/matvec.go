// Package matvec implements the distributed matrix-vector multiplication
// kernel of the paper's Section 5.5: y = A*x with A partitioned in a 1D
// row layout, x and y split into equal per-rank segments. Each step every
// rank broadcasts its x segment — an allgather — and then multiplies its
// row block locally. The problem sizes of the paper's Figure 16 make
// communication a significant fraction of the runtime, which is what
// exposes the allgather implementation.
//
// With real buffers the kernel computes actual float64 arithmetic so the
// distributed result is verified against a sequential multiplication; with
// phantom buffers only the cost model runs, which is how the full 1024-
// process configurations are measured.
package matvec

import (
	"encoding/binary"
	"fmt"
	"math"

	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// FlopRate is the modeled per-core dgemv throughput in FLOP/s. dgemv is
// memory-bound: 2 flops per 8-byte matrix element read gives roughly
// BW/4 flops/s on a Broadwell core streaming at ~13 GB/s.
const FlopRate = 3.2e9

// Config describes one matvec experiment.
type Config struct {
	// Rows and Cols are the dimensions of A (the paper's M x N). Rows must
	// divide evenly among ranks, and Cols must divide by 8-byte elements.
	Rows, Cols int
	// Topo is the cluster shape; Rows and Cols must divide by its size.
	Topo topology.Cluster
	// Params is the cost model (nil = Thor).
	Params *netmodel.Params
	// Profile supplies the allgather (HPC-X, MVAPICH2-X or MHA).
	Profile collectives.Profile
	// Phantom runs the kernel without real arithmetic.
	Phantom bool
	// Iterations repeats the multiply (>=1; deterministic, so 1 is enough
	// for timing — more iterations exercise buffer reuse).
	Iterations int
}

// Result is the outcome of one matvec run.
type Result struct {
	// Elapsed is the virtual time of the slowest rank across all
	// iterations.
	Elapsed sim.Duration
	// GFLOPS is the aggregate achieved rate: Iterations*2*Rows*Cols /
	// Elapsed.
	GFLOPS float64
	// Y is the assembled output vector (real mode only, for verification).
	Y []float64
}

func (c *Config) validate() error {
	p := c.Topo.Size()
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("matvec: non-positive problem %dx%d", c.Rows, c.Cols)
	case c.Rows%p != 0:
		return fmt.Errorf("matvec: rows %d not divisible by %d ranks", c.Rows, p)
	case c.Cols%p != 0:
		return fmt.Errorf("matvec: cols %d not divisible by %d ranks", c.Cols, p)
	case c.Iterations < 0:
		return fmt.Errorf("matvec: negative iterations")
	}
	return nil
}

// A returns the deterministic test matrix element at (i, j).
func A(i, j int) float64 { return float64((i*31+j*17)%97) / 97 }

// X returns the deterministic input vector element at j.
func X(j int) float64 { return float64((j*13)%89) / 89 }

// Sequential computes y = A*x on one core, the oracle for tests.
func Sequential(rows, cols int) []float64 {
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		s := 0.0
		for j := 0; j < cols; j++ {
			s += A(i, j) * X(j)
		}
		y[i] = s
	}
	return y
}

// Run executes the kernel and reports timing (and, in real mode, the
// result vector).
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	iters := cfg.Iterations
	if iters == 0 {
		iters = 1
	}
	w := mpi.New(mpi.Config{Topo: cfg.Topo, Params: cfg.Params, Phantom: cfg.Phantom})
	p := cfg.Topo.Size()
	segElems := cfg.Cols / p
	rowsPer := cfg.Rows / p
	segBytes := segElems * 8

	var worst sim.Time
	y := make([]float64, cfg.Rows)
	err := w.Run(func(proc *mpi.Proc) {
		r := proc.Rank()
		// Local x segment.
		seg := mpi.Make(segBytes, cfg.Phantom)
		if !cfg.Phantom {
			for e := 0; e < segElems; e++ {
				binary.LittleEndian.PutUint64(seg.Data()[e*8:], math.Float64bits(X(r*segElems+e)))
			}
		}
		full := mpi.Make(segBytes*p, cfg.Phantom)
		flops := 2 * float64(rowsPer) * float64(cfg.Cols)
		for it := 0; it < iters; it++ {
			cfg.Profile.Allgather(proc, w, seg, full)
			proc.Compute(sim.FromSeconds(flops / FlopRate))
		}
		if !cfg.Phantom {
			for i := 0; i < rowsPer; i++ {
				row := r*rowsPer + i
				s := 0.0
				for j := 0; j < cfg.Cols; j++ {
					s += A(row, j) * math.Float64frombits(binary.LittleEndian.Uint64(full.Data()[j*8:]))
				}
				y[row] = s
			}
		}
		if proc.Now() > worst {
			worst = proc.Now()
		}
	})
	if err != nil {
		return Result{}, err
	}
	elapsed := sim.Duration(worst)
	totalFlops := float64(iters) * 2 * float64(cfg.Rows) * float64(cfg.Cols)
	res := Result{
		Elapsed: elapsed,
		GFLOPS:  totalFlops / elapsed.Seconds() / 1e9,
	}
	if !cfg.Phantom {
		res.Y = y
	}
	return res, nil
}
