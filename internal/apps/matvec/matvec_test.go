package matvec

import (
	"math"
	"testing"
	"testing/quick"

	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/topology"
)

func TestDistributedMatchesSequential(t *testing.T) {
	for _, prof := range []collectives.Profile{collectives.HPCX(), collectives.MVAPICH2X(), core.Profile()} {
		cfg := Config{
			Rows: 16, Cols: 32,
			Topo:    topology.New(2, 4, 2),
			Profile: prof,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := Sequential(16, 32)
		for i := range want {
			if math.Abs(res.Y[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: y[%d] = %v, want %v", prof.Name, i, res.Y[i], want[i])
			}
		}
		if res.GFLOPS <= 0 || res.Elapsed <= 0 {
			t.Fatalf("%s: degenerate result %+v", prof.Name, res)
		}
	}
}

func TestMHABeatsBaselinesWhenCommBound(t *testing.T) {
	// The Figure 16 regime: long rows make the allgather dominate.
	mk := func(prof collectives.Profile) float64 {
		res, err := Run(Config{
			Rows: 1024, Cols: 64 * 1024,
			Topo:    topology.New(8, 8, 2),
			Profile: prof,
			Phantom: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GFLOPS
	}
	mha := mk(core.Profile())
	hpcx := mk(collectives.HPCX())
	mvp := mk(collectives.MVAPICH2X())
	if mha <= hpcx || mha <= mvp {
		t.Fatalf("MHA %.2f GFLOPS not best (hpcx %.2f, mvp %.2f)", mha, hpcx, mvp)
	}
}

func TestValidation(t *testing.T) {
	topo := topology.New(2, 2, 1)
	cases := []Config{
		{Rows: 0, Cols: 8, Topo: topo},
		{Rows: 8, Cols: 0, Topo: topo},
		{Rows: 7, Cols: 8, Topo: topo},  // rows not divisible
		{Rows: 8, Cols: 10, Topo: topo}, // cols not divisible
		{Rows: 8, Cols: 8, Topo: topo, Iterations: -1},
	}
	for i, cfg := range cases {
		cfg.Profile = collectives.HPCX()
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d should fail: %+v", i, cfg)
		}
	}
}

func TestIterationsScaleElapsed(t *testing.T) {
	base := Config{
		Rows: 64, Cols: 128,
		Topo:    topology.New(2, 2, 2),
		Profile: collectives.HPCX(),
		Phantom: true,
	}
	one, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Iterations = 3
	three, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(three.Elapsed) / float64(one.Elapsed)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("3 iterations took %.2fx one iteration", ratio)
	}
	// GFLOPS should be roughly iteration-independent.
	if d := three.GFLOPS / one.GFLOPS; d < 0.8 || d > 1.2 {
		t.Fatalf("GFLOPS changed %.2fx with iterations", d)
	}
}

// Property: the deterministic matrix/vector generators stay in [0, 1).
func TestQuickGenerators(t *testing.T) {
	f := func(i, j uint16) bool {
		a := A(int(i), int(j))
		x := X(int(j))
		return a >= 0 && a < 1 && x >= 0 && x < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWeakScalingImprovesThroughput(t *testing.T) {
	// More ranks on a proportionally larger problem should raise GFLOPS.
	small, err := Run(Config{
		Rows: 1024, Cols: 8192,
		Topo: topology.New(2, 4, 2), Profile: core.Profile(), Phantom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(Config{
		Rows: 1024, Cols: 16384,
		Topo: topology.New(4, 4, 2), Profile: core.Profile(), Phantom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if large.GFLOPS <= small.GFLOPS {
		t.Fatalf("weak scaling regressed: %v -> %v GFLOPS", small.GFLOPS, large.GFLOPS)
	}
}
