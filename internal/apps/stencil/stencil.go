// Package stencil implements a distributed 1-D Jacobi heat-diffusion
// solver — the "solving differential equations" application family the
// paper's introduction motivates. Unlike the allgather-bound kernels, its
// communication is nearest-neighbor halo exchange, so it exercises the
// runtime's point-to-point layer (CMA inside nodes, rail-striped transfers
// at node boundaries) and demonstrates that the substrate is a general
// MPI runtime, not an allgather-only harness.
//
// In real mode the distributed grid is verified against a sequential
// solver to full floating-point equality.
package stencil

import (
	"encoding/binary"
	"fmt"
	"math"

	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// FlopRate models the per-core stencil update throughput in FLOP/s
// (3 flops per point, streaming: memory bound).
const FlopRate = 4e9

// Config describes one solver run.
type Config struct {
	// Points is the global grid size; must divide by the rank count.
	Points int
	// Iterations is the number of Jacobi sweeps (>= 1).
	Iterations int
	// Alpha is the diffusion coefficient (0 < Alpha <= 0.5 for stability).
	Alpha float64
	// Topo, Params, Phantom as elsewhere.
	Topo    topology.Cluster
	Params  *netmodel.Params
	Phantom bool
}

// Result summarizes a run.
type Result struct {
	// Elapsed is the completion time of the slowest rank.
	Elapsed sim.Duration
	// PointsPerSec is the aggregate update throughput.
	PointsPerSec float64
	// Grid is the final global grid (real mode only).
	Grid []float64
}

// Initial returns the deterministic initial condition at point i.
func Initial(i, points int) float64 {
	x := float64(i) / float64(points-1)
	return math.Sin(math.Pi * x)
}

// Sequential runs the same sweeps on one core — the oracle.
func Sequential(cfg Config) []float64 {
	g := make([]float64, cfg.Points)
	for i := range g {
		g[i] = Initial(i, cfg.Points)
	}
	next := make([]float64, cfg.Points)
	for it := 0; it < cfg.Iterations; it++ {
		next[0], next[cfg.Points-1] = g[0], g[cfg.Points-1] // fixed boundary
		for i := 1; i < cfg.Points-1; i++ {
			next[i] = g[i] + cfg.Alpha*(g[i-1]-2*g[i]+g[i+1])
		}
		g, next = next, g
	}
	return g
}

func (c *Config) validate() error {
	p := c.Topo.Size()
	switch {
	case c.Points <= 0 || c.Points%p != 0:
		return fmt.Errorf("stencil: %d points not divisible by %d ranks", c.Points, p)
	case c.Points/p < 2:
		return fmt.Errorf("stencil: need at least 2 points per rank")
	case c.Iterations < 1:
		return fmt.Errorf("stencil: need at least 1 iteration")
	case c.Alpha <= 0 || c.Alpha > 0.5:
		return fmt.Errorf("stencil: alpha %v outside (0, 0.5]", c.Alpha)
	}
	return nil
}

// Run executes the distributed solver.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	w := mpi.New(mpi.Config{Topo: cfg.Topo, Params: cfg.Params, Phantom: cfg.Phantom})
	p := cfg.Topo.Size()
	per := cfg.Points / p
	var worst sim.Time
	grid := make([]float64, cfg.Points)
	err := w.Run(func(proc *mpi.Proc) {
		r := proc.Rank()
		base := r * per
		// Local segment with one halo cell on each side.
		cur := make([]float64, per+2)
		next := make([]float64, per+2)
		for i := 0; i < per; i++ {
			cur[i+1] = Initial(base+i, cfg.Points)
		}
		c := w.CommWorld()
		left, right := r-1, r+1
		flops := 3 * float64(per)
		for it := 0; it < cfg.Iterations; it++ {
			// Halo exchange: send edges, receive neighbors' edges.
			var reqs []*mpi.Request
			if left >= 0 {
				reqs = append(reqs, proc.Isend(c, left, mpi.Tag(it, 0, 1), cell(cur[1], cfg.Phantom)))
				reqs = append(reqs, proc.Irecv(c, left, mpi.Tag(it, 0, 2)))
			}
			if right < p {
				reqs = append(reqs, proc.Isend(c, right, mpi.Tag(it, 0, 2), cell(cur[per], cfg.Phantom)))
				reqs = append(reqs, proc.Irecv(c, right, mpi.Tag(it, 0, 1)))
			}
			idx := 0
			if left >= 0 {
				proc.Wait(reqs[idx])
				cur[0] = cellValue(proc.Wait(reqs[idx+1]), cur[0])
				idx += 2
			}
			if right < p {
				proc.Wait(reqs[idx])
				cur[per+1] = cellValue(proc.Wait(reqs[idx+1]), cur[per+1])
			}
			// Update; global boundary points stay fixed.
			proc.Compute(sim.FromSeconds(flops / FlopRate))
			for i := 1; i <= per; i++ {
				gi := base + i - 1
				if gi == 0 || gi == cfg.Points-1 {
					next[i] = cur[i]
					continue
				}
				next[i] = cur[i] + cfg.Alpha*(cur[i-1]-2*cur[i]+cur[i+1])
			}
			cur, next = next, cur
		}
		if !cfg.Phantom {
			for i := 0; i < per; i++ {
				grid[base+i] = cur[i+1]
			}
		}
		if proc.Now() > worst {
			worst = proc.Now()
		}
	})
	if err != nil {
		return Result{}, err
	}
	elapsed := sim.Duration(worst)
	res := Result{
		Elapsed:      elapsed,
		PointsPerSec: float64(cfg.Points) * float64(cfg.Iterations) / elapsed.Seconds(),
	}
	if !cfg.Phantom {
		res.Grid = grid
	}
	return res, nil
}

// cell wraps one float64 as a message payload.
func cell(v float64, phantom bool) mpi.Buf {
	if phantom {
		return mpi.Phantom(8)
	}
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return mpi.Bytes(b)
}

// cellValue unwraps a one-float64 payload (returning fallback in phantom
// mode, where the halo value is not carried).
func cellValue(b mpi.Buf, fallback float64) float64 {
	if b.IsPhantom() {
		return fallback
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Data()))
}
