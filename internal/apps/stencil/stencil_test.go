package stencil

import (
	"math"
	"testing"
	"testing/quick"

	"mha/internal/topology"
)

func TestDistributedMatchesSequential(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 4}, {2, 2}, {2, 4}, {4, 2}} {
		cfg := Config{
			Points: 64, Iterations: 10, Alpha: 0.25,
			Topo: topology.New(s.nodes, s.ppn, 2),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.nodes, s.ppn, err)
		}
		want := Sequential(cfg)
		for i := range want {
			if math.Abs(res.Grid[i]-want[i]) > 1e-12 {
				t.Fatalf("%dx%d: grid[%d] = %v, want %v", s.nodes, s.ppn, i, res.Grid[i], want[i])
			}
		}
		if res.PointsPerSec <= 0 {
			t.Fatal("no throughput")
		}
	}
}

func TestHeatDiffuses(t *testing.T) {
	cfg := Config{Points: 32, Iterations: 50, Alpha: 0.25, Topo: topology.New(2, 2, 1)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The sine bump must decay but stay positive in the interior.
	mid := res.Grid[16]
	if mid <= 0 || mid >= Initial(16, 32) {
		t.Fatalf("midpoint %v did not decay from %v", mid, Initial(16, 32))
	}
}

func TestValidation(t *testing.T) {
	topo := topology.New(2, 2, 1)
	bad := []Config{
		{Points: 0, Iterations: 1, Alpha: 0.2, Topo: topo},
		{Points: 30, Iterations: 1, Alpha: 0.2, Topo: topo},  // not divisible
		{Points: 4, Iterations: 1, Alpha: 0.2, Topo: topo},   // 1 point/rank
		{Points: 32, Iterations: 0, Alpha: 0.2, Topo: topo},  // no iterations
		{Points: 32, Iterations: 1, Alpha: 0.9, Topo: topo},  // unstable alpha
		{Points: 32, Iterations: 1, Alpha: -0.1, Topo: topo}, // negative alpha
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPhantomModeTimesOnly(t *testing.T) {
	res, err := Run(Config{
		Points: 1 << 16, Iterations: 5, Alpha: 0.25,
		Topo: topology.New(4, 4, 2), Phantom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid != nil {
		t.Fatal("phantom run should not materialize the grid")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

// Property: the distributed grid equals the sequential one for random
// shapes and iteration counts.
func TestQuickStencilCorrect(t *testing.T) {
	f := func(nodes, ppn, iters uint8) bool {
		nd := int(nodes)%3 + 1
		l := int(ppn)%3 + 1
		p := nd * l
		cfg := Config{
			Points:     p * 8,
			Iterations: int(iters)%8 + 1,
			Alpha:      0.2,
			Topo:       topology.New(nd, l, 1),
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		want := Sequential(cfg)
		for i := range want {
			if math.Abs(res.Grid[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
