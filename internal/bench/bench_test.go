package bench

import (
	"bytes"
	"strings"
	"testing"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{
		"1", "2", "3", "5", "8a", "8b", "9", "10",
		"11a", "11b", "11c", "11d",
		"12a", "12b", "13a", "13b", "14a", "14b",
		"15a", "15b", "15c", "16a", "16b", "17a", "17b", "17c",
		"abl-phase2", "abl-overlap", "abl-offload", "abl-phase1", "abl-stripe", "abl-rails",
		"abl-leaders", "ext-numa", "ext-coll", "ext-noise", "ext-fabric", "ext-overhead", "ext-apps",
		"ext-validate", "ext-faults", "sched", "cluster", "compose", "fabric",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(ids), len(want))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("14b"); !ok {
		t.Fatal("14b not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Quick); err != nil {
				t.Fatalf("experiment %s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("experiment %s produced no output", e.ID)
			}
		})
	}
}

func TestFig1ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	if err := mustByID(t, "1").Run(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "intra-node CMA") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func mustByID(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	return e
}

func TestPtPtBandwidthDoublesWithStriping(t *testing.T) {
	prm := netmodel.Thor()
	m := 4 << 20
	one := PtPtBandwidth(topology.New(2, 1, 1), prm, m)
	two := PtPtBandwidth(topology.New(2, 1, 2), prm, m)
	if r := two / one; r < 1.8 || r > 2.1 {
		t.Fatalf("2-rail bandwidth ratio = %.2f, want ~2", r)
	}
	// And the single-rail bandwidth approaches the configured line rate.
	if one < prm.BWHCA/1e6*0.9 {
		t.Fatalf("1-rail bandwidth %.0f MB/s too far below line rate", one)
	}
}

func TestPtPtLatencyStripingReduction(t *testing.T) {
	prm := netmodel.Thor()
	m := 4 << 20
	one := PtPtLatency(topology.New(2, 1, 1), prm, m)
	two := PtPtLatency(topology.New(2, 1, 2), prm, m)
	if float64(two) > 0.6*float64(one) {
		t.Fatalf("striping reduction too small: %v -> %v", one, two)
	}
	small := 1 << 10
	oneS := PtPtLatency(topology.New(2, 1, 1), prm, small)
	twoS := PtPtLatency(topology.New(2, 1, 2), prm, small)
	if oneS != twoS {
		t.Fatalf("small messages should not stripe: %v vs %v", oneS, twoS)
	}
}

func TestAllgatherHeadlineShape(t *testing.T) {
	// The paper's headline: MHA wins the inter-node allgather and the
	// margin grows with scale.
	prm := netmodel.Thor()
	m := 64 << 10
	gap := func(nodes int) float64 {
		topo := topology.New(nodes, 8, 2)
		profs := Profiles()
		hpcx := AllgatherLatency(topo, prm, m, profs[0])
		mha := AllgatherLatency(topo, prm, m, profs[2])
		return float64(hpcx) / float64(mha)
	}
	g4, g8 := gap(4), gap(8)
	if g4 < 1.2 {
		t.Fatalf("4-node speedup %.2f too small", g4)
	}
	if g8 < g4*0.95 {
		t.Fatalf("speedup shrank with scale: %.2f -> %.2f", g4, g8)
	}
}

func TestAllreducePadsOddSizes(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(2, 2, 2)
	// 1000 bytes is not a multiple of 8*4; must not panic.
	for _, prof := range Profiles() {
		if d := AllreduceLatency(topo, prm, 1000, prof); d <= 0 {
			t.Fatalf("%s: non-positive latency", prof.Name)
		}
	}
}

func TestImprovementFormatting(t *testing.T) {
	if got := Improvement(100, 50); got != "50%" {
		t.Fatalf("Improvement = %q", got)
	}
	if got := Improvement(0, 50); got != "-" {
		t.Fatalf("Improvement(0, x) = %q", got)
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		512:     "512B",
		1 << 10: "1KB",
		16384:   "16KB",
		1 << 20: "1MB",
		4 << 20: "4MB",
		1500:    "1500B",
	}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Fatalf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "a", "bb")
	tab.Notes = "a note"
	tab.Add("x", 1.5)
	tab.Add("y", "z")
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "1.50", "bb", "--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale strings")
	}
	c := Quick.Cluster(32, 32, 2)
	if c.Nodes != 8 || c.PPN != 8 {
		t.Fatalf("quick cluster = %v", c)
	}
	f := Full.Cluster(32, 32, 2)
	if f.Nodes != 32 || f.PPN != 32 {
		t.Fatalf("full cluster = %v", f)
	}
	sizes := geometric(1, 16) // 1,2,4,8,16
	if len(sizes) != 5 {
		t.Fatalf("geometric = %v", sizes)
	}
	q := Quick.Sizes(sizes)
	if len(q) != 3 || q[0] != 1 || q[2] != 16 {
		t.Fatalf("quick sizes = %v", q)
	}
	if len(Full.Sizes(sizes)) != 5 {
		t.Fatal("full sizes should be unmodified")
	}
}

func TestValidationGridFidelity(t *testing.T) {
	prm := netmodel.Thor()
	shapes := []topology.Cluster{topology.New(1, 4, 2), topology.New(4, 8, 2)}
	pts := GridValidation(prm, shapes, []int{16 << 10, 256 << 10})
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	s := SummarizeValidation(pts)
	if s.GeoMeanRatio < 0.7 || s.GeoMeanRatio > 1.5 {
		t.Fatalf("geometric mean ratio %.2f outside plausibility band", s.GeoMeanRatio)
	}
	// Small alpha-dominated sizes can sit outside the 50% band (the same
	// visible gap as the paper's own Figure 9 at 16KB); allow one outlier.
	if s.Within50 < s.Points-1 {
		t.Fatalf("only %d/%d points within 50%% of the model", s.Within50, s.Points)
	}
	// Worst ratio must be one of the sampled ratios.
	found := false
	for _, p := range pts {
		if p.Ratio() == s.WorstRatio {
			found = true
		}
	}
	if !found {
		t.Fatal("worst ratio not among sampled points")
	}
}

func TestSummarizeValidationEmpty(t *testing.T) {
	s := SummarizeValidation(nil)
	if s.Points != 0 || s.WorstRatio != 1 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestTableCSVRendering(t *testing.T) {
	tab := NewTable("demo", "size", "latency")
	tab.Add("1KB", 3.25)
	tab.Add("has,comma", "x")
	var buf bytes.Buffer
	if err := tab.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# demo", "size,latency", "1KB,3.25", `"has,comma",x`} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
	// CSVMode routes Fprint through the CSV renderer.
	CSVMode = true
	defer func() { CSVMode = false }()
	buf.Reset()
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# demo") {
		t.Fatalf("CSVMode ignored:\n%s", buf.String())
	}
}

func TestExperimentOutputsDeterministic(t *testing.T) {
	// Whole-stack determinism: running an experiment twice must produce
	// byte-identical tables (the property EXPERIMENTS.md relies on).
	for _, id := range []string{"3", "5", "9", "abl-stripe", "ext-overhead"} {
		e := mustByID(t, id)
		var a, b bytes.Buffer
		if err := e.Run(&a, Quick); err != nil {
			t.Fatalf("%s first run: %v", id, err)
		}
		if err := e.Run(&b, Quick); err != nil {
			t.Fatalf("%s second run: %v", id, err)
		}
		if a.String() != b.String() {
			t.Fatalf("experiment %s not deterministic:\n--- first\n%s\n--- second\n%s",
				id, a.String(), b.String())
		}
	}
}
