package bench

import (
	"fmt"
	"io"

	"mha/internal/cluster"
	"mha/internal/faults"
	"mha/internal/sim"
	"mha/internal/topology"
)

// clusterBurst returns n identical b-byte allgather jobs of `ranks` ranks
// all arriving at t=0 — the bursty contended scenario where placement
// policy decides how many jobs share a node's rails.
func clusterBurst(n, ranks, bytes int) []cluster.JobSpec {
	jobs := make([]cluster.JobSpec, n)
	for i := range jobs {
		jobs[i] = cluster.JobSpec{ID: i, Coll: cluster.Allgather, Msg: bytes, Ranks: ranks}
	}
	return jobs
}

// clusterScenario is one workload in the policy comparison.
type clusterScenario struct {
	name   string
	jobs   []cluster.JobSpec
	faults *faults.Schedule
}

func clusterScenarios(sc Scale, topo topology.Cluster) []clusterScenario {
	burstJobs := 4
	if sc == Full {
		burstJobs = 8
	}
	mixedJobs := 8
	if sc == Full {
		mixedJobs = 24
	}
	return []clusterScenario{
		{name: "burst", jobs: clusterBurst(burstJobs, 6, 256<<10)},
		{name: "mixed", jobs: cluster.RandomJobs(42, mixedJobs, topo, 400*sim.Microsecond)},
		{name: "burst+fault", jobs: clusterBurst(burstJobs, 6, 256<<10),
			faults: faults.MustNew(
				faults.Fault{Kind: faults.Down, Node: 1, Rail: 1,
					Until: sim.Time(300 * sim.Microsecond)},
				faults.Fault{Kind: faults.Degrade, Node: 2, Rail: 0, Fraction: 0.5},
			)},
	}
}

// runClusterExperiment compares the three placement policies of the
// multi-tenant scheduler on contended workloads sharing one fabric. The
// claim on trial: rail-aware placement yields lower mean slowdown than
// packed whenever the burst forces packed to co-locate jobs on one node's
// rails, and the ordering survives a rail fault.
func runClusterExperiment(w io.Writer, sc Scale) error {
	topo := topology.New(8, 4, 2)
	if sc == Full {
		topo = topology.New(16, 8, 2)
	}
	tbl := NewTable(fmt.Sprintf("multi-tenant scheduler: policy comparison, %dx%dx%d fabric",
		topo.Nodes, topo.PPN, topo.HCAs),
		"scenario", "policy", "makespan (us)", "mean wait (us)", "mean slowdown", "max slowdown")
	tbl.Notes = "slowdown = concurrent runtime / isolated runtime of the same job at the same placement;\n" +
		"burst = simultaneous 256 KB allgathers, mixed = seeded random arrivals, +fault = one rail down + one degraded"
	for _, scen := range clusterScenarios(sc, topo) {
		for _, policy := range cluster.Policies() {
			res, err := cluster.Run(cluster.Config{
				Topo:   topo,
				Policy: policy,
				Faults: scen.faults,
			}, scen.jobs)
			if err != nil {
				return fmt.Errorf("cluster %s/%s: %v", scen.name, policy, err)
			}
			tbl.Add(scen.name, policy,
				sim.Duration(res.Makespan).Micros(), res.MeanWait.Micros(),
				res.MeanSlowdown, res.MaxSlowdown)
		}
	}
	return tbl.Fprint(w)
}

// ClusterBurstMakespan measures the burst scenario's makespan under one
// policy — the tier-1 probe of the scheduler's trajectory.
func ClusterBurstMakespan(topo topology.Cluster, policy string) (sim.Duration, error) {
	res, err := cluster.Run(cluster.Config{Topo: topo, Policy: policy, SkipIsolated: true},
		clusterBurst(4, 6, 256<<10))
	if err != nil {
		return 0, err
	}
	return sim.Duration(res.Makespan), nil
}

func init() {
	register("cluster", "multi-tenant scheduler: placement policy comparison on a shared fabric", runClusterExperiment)
}
