package bench

import (
	"bytes"
	"strings"
	"testing"

	"mha/internal/cluster"
	"mha/internal/topology"
)

// TestClusterRailAwareBeatsPacked pins the experiment's headline claim
// programmatically (the golden only freezes the numbers): on the Quick
// burst scenario, rail-aware placement has strictly lower mean slowdown
// than packed.
func TestClusterRailAwareBeatsPacked(t *testing.T) {
	topo := topology.New(8, 4, 2)
	jobs := clusterBurst(4, 6, 256<<10)
	run := func(policy string) *cluster.Result {
		res, err := cluster.Run(cluster.Config{Topo: topo, Policy: policy}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return res
	}
	packed := run(cluster.Packed)
	aware := run(cluster.RailAware)
	if aware.MeanSlowdown >= packed.MeanSlowdown {
		t.Fatalf("rail-aware mean slowdown %.3f not better than packed %.3f",
			aware.MeanSlowdown, packed.MeanSlowdown)
	}
}

// TestClusterExperimentRuns smoke-runs the table at Quick scale and
// checks every scenario/policy pair appears.
func TestClusterExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	e, ok := ByID("cluster")
	if !ok {
		t.Fatal("cluster experiment not registered")
	}
	if err := e.Run(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"burst", "mixed", "burst+fault",
		cluster.Packed, cluster.Spread, cluster.RailAware} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiment output missing %q:\n%s", want, out)
		}
	}
}
