package bench

import (
	"fmt"
	"io"
	"time"

	"mha/internal/compose"
	"mha/internal/netmodel"
	"mha/internal/sched"
	"mha/internal/sim"
	"mha/internal/topology"
)

// runComposeExperiment lowers every registered derived collective on a
// sweep of machine shapes and puts the composition layer on trial: the
// pipeline must compile, pass the full static analysis (completeness,
// hold discipline, rail conflicts), and the analyzer's alpha-beta cost
// must track the simulated makespan of the same schedule. The table is
// the derivation audit: one row per (variant, machine), with pipeline
// length, lowered step/transfer counts, and both latency estimates.
func runComposeExperiment(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	const msg = 64 << 10
	topos := []topology.Cluster{
		topology.New(2, 4, 2),
		topology.New(4, 4, 2),
	}
	if sc == Full {
		topos = append(topos, topology.New(8, 16, 2), topology.New(16, 32, 2))
	}
	tbl := NewTable(fmt.Sprintf("compositional collectives: derived schedules, %d KB per rank slot", msg>>10),
		"variant", "machine", "prims", "steps", "xfers", "analyzer (us)", "simulated (us)", "ratio")
	tbl.Notes = "every row passed the static analyzer (completeness, hold, rail conflicts) before timing;\n" +
		"ratio = analyzer/simulated on the same lowered schedule"
	for _, v := range compose.Variants() {
		for _, topo := range topos {
			plan, err := compose.Lower(v.Comp, compose.NewHierarchy(topo), msg, prm)
			if err != nil {
				return fmt.Errorf("%s on %v: %v", v.Name, topo, err)
			}
			rep, err := plan.Analyze(prm, nil)
			if err != nil {
				return fmt.Errorf("%s on %v: analyze: %v", v.Name, topo, err)
			}
			mk, err := sched.SimulateGoal(topo, prm, plan.Sched, plan.Goal)
			if err != nil {
				return fmt.Errorf("%s on %v: simulate: %v", v.Name, topo, err)
			}
			xfers := 0
			for _, st := range plan.Sched.Steps {
				xfers += len(st.Xfers)
			}
			tbl.Add(v.Name, fmt.Sprintf("%dx%dx%d", topo.Nodes, topo.PPN, topo.HCAs),
				len(v.Comp.Pipeline), len(plan.Sched.Steps), xfers,
				rep.Cost.Micros(), mk.Micros(), float64(rep.Cost)/float64(mk))
		}
	}
	return tbl.Fprint(w)
}

// ComposeLatency lowers one registered derived collective and returns
// its simulated makespan — the modeled-latency sample behind the
// compose tier-1 probe.
func ComposeLatency(name string, topo topology.Cluster, msg int) (sim.Duration, error) {
	v, ok := compose.ByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown compose variant %q", name)
	}
	prm := netmodel.Thor()
	plan, err := compose.Lower(v.Comp, compose.NewHierarchy(topo), msg, prm)
	if err != nil {
		return 0, err
	}
	return sched.SimulateGoal(topo, prm, plan.Sched, plan.Goal)
}

// ComposeLowerMicros times the hierarchy compiler itself: wall-clock
// microseconds per full Lower of the registered variant set on a
// mid-size machine, amortized over enough rounds to be stable. This is
// the compile-cost probe — it tracks regressions in the composition
// layer's own speed, not in the schedules it emits.
func ComposeLowerMicros() (float64, error) {
	topo := topology.New(4, 8, 2)
	hier := compose.NewHierarchy(topo)
	prm := netmodel.Thor()
	vars := compose.Variants()
	const rounds = 50
	start := time.Now()
	for i := 0; i < rounds; i++ {
		for _, v := range vars {
			if _, err := compose.Lower(v.Comp, hier, 64<<10, prm); err != nil {
				return 0, err
			}
		}
	}
	per := time.Since(start) / time.Duration(rounds*len(vars))
	return float64(per) / float64(time.Microsecond), nil
}

func init() {
	register("compose", "compositional collectives: derived schedule audit (analyzer vs simulator)", runComposeExperiment)
}
