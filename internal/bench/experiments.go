package bench

import (
	"fmt"
	"io"
	"sort"

	"mha/internal/apps/bpmf"
	"mha/internal/apps/dltrain"
	"mha/internal/apps/matvec"
	"mha/internal/apps/stencil"
	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/perfmodel"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

// An Experiment regenerates one table or figure of the paper (or one
// ablation from DESIGN.md).
type Experiment struct {
	// ID is the figure identifier ("1", "8a", "14b", "abl-rails", ...).
	ID string
	// Title describes what the paper's figure shows.
	Title string
	// Run executes the experiment at the given scale, writing its table.
	Run func(w io.Writer, sc Scale) error
}

var registry []Experiment

func register(id, title string, run func(w io.Writer, sc Scale) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Registry returns every experiment in figure order.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

func init() {
	register("1", "pt2pt bandwidth: intra-node CMA vs inter-node 1/2 HCAs", runFig1)
	register("2", "ring allgather timeline, 2 nodes 2 PPN (TAU-style)", runFig2)
	register("3", "pt2pt latency: inter-node 1 vs 2 HCAs", runFig3)
	register("5", "offload-size vs latency tuning curve (MHA-intra)", runFig5)
	register("8a", "RD vs Ring in inter-leader exchange, 16 nodes 32 PPN", runFig8(16))
	register("8b", "RD vs Ring in inter-leader exchange, 32 nodes 32 PPN", runFig8(32))
	register("9", "model validation: MHA-intra, 4 processes", runFig9)
	register("10", "model validation: MHA-inter, 8 nodes 32 PPN", runFig10)
	register("11a", "intra-node allgather, 2 processes", runFig11(2))
	register("11b", "intra-node allgather, 4 processes", runFig11(4))
	register("11c", "intra-node allgather, 8 processes", runFig11(8))
	register("11d", "intra-node allgather, 16 processes", runFig11(16))
	register("12a", "inter-node allgather, 256 procs (8x32), medium messages", runFigAG(8, geometric(256, 8192)))
	register("12b", "inter-node allgather, 256 procs (8x32), large messages", runFigAG(8, geometric(16<<10, 256<<10)))
	register("13a", "inter-node allgather, 512 procs (16x32), medium messages", runFigAG(16, geometric(256, 8192)))
	register("13b", "inter-node allgather, 512 procs (16x32), large messages", runFigAG(16, geometric(16<<10, 256<<10)))
	register("14a", "inter-node allgather, 1024 procs (32x32), medium messages", runFigAG(32, geometric(256, 8192)))
	register("14b", "inter-node allgather, 1024 procs (32x32), large messages", runFigAG(32, geometric(16<<10, 256<<10)))
	register("15a", "allreduce, 256 procs (8x32)", runFig15(8))
	register("15b", "allreduce, 512 procs (16x32)", runFig15(16))
	register("15c", "allreduce, 1024 procs (32x32)", runFig15(32))
	register("16a", "matvec strong scaling, 1024x32768", runFig16Strong)
	register("16b", "matvec weak scaling", runFig16Weak)
	register("17a", "DL training images/sec, ResNet-50", runFig17(0))
	register("17b", "DL training images/sec, ResNet-101", runFig17(1))
	register("17c", "DL training images/sec, ResNet-152", runFig17(2))
	register("abl-phase2", "ablation: phase-2 algorithm (ring/rd/auto)", runAblPhase2)
	register("abl-overlap", "ablation: phase-2/3 overlap on vs off", runAblOverlap)
	register("abl-offload", "ablation: HCA offload none/analytic/tuned", runAblOffload)
	register("abl-phase1", "ablation: phase-1 MHA-intra vs plain gather", runAblPhase1)
	register("abl-stripe", "ablation: multirail striping threshold", runAblStripe)
	register("abl-rails", "ablation: rail count H = 1/2/4/8 (ThetaGPU-like)", runAblRails)
	register("abl-leaders", "ablation: multi-leader group count (Kandalla) vs MHA", runAblLeaders)
	register("ext-numa", "extension: 3-level NUMA-aware design vs 2-level (paper future work)", runExtNuma)
	register("ext-coll", "extension: MHA bcast/alltoall vs flat baselines (paper future work)", runExtColl)
	register("ext-noise", "extension: robustness of the comparison under OS/fabric jitter", runExtNoise)
	register("ext-fabric", "extension: fat-tree oversubscription sensitivity", runExtFabric)
	register("fabric", "fabric x algorithm sweep: locality family vs flat on structured networks", runFabricSweep)
	register("ext-overhead", "extension: per-message software overhead sensitivity", runExtOverhead)
	register("ext-apps", "extension: library sensitivity of all application kernels", runExtApps)
	sort.SliceStable(registry, func(i, j int) bool { return false }) // keep insertion order
}

func runFig1(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	t := NewTable("Figure 1: pt2pt bandwidth (MB/s)",
		"size", "intra-node CMA", "inter-node 1 HCA", "inter-node 2 HCAs")
	t.Notes = "paper: CMA ~= 1 HCA; 2 HCAs double bandwidth beyond the 16KB striping point"
	for _, m := range sc.Sizes(geometric(8<<10, 4<<20)) {
		intra := PtPtBandwidth(topology.New(1, 2, 2), prm, m)
		one := PtPtBandwidth(topology.New(2, 1, 1), prm, m)
		two := PtPtBandwidth(topology.New(2, 1, 2), prm, m)
		t.Add(SizeLabel(m), intra, one, two)
	}
	return t.Fprint(w)
}

func runFig2(w io.Writer, sc Scale) error {
	rec := trace.New()
	world := mpi.New(mpi.Config{Topo: topology.New(2, 2, 2), Tracer: rec})
	m := 256 << 10
	err := world.Run(func(p *mpi.Proc) {
		recv := mpi.NewBuf(m * p.Size())
		send := mpi.NewBuf(m)
		collectives.RingAllgather(p, world.CommWorld(), send, recv)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n== Figure 2: ring allgather timeline, 2 nodes 2 PPN, 256KB ==")
	fmt.Fprintln(w, "paper: the flat ring serializes on the slower intra-node hops")
	_, err = fmt.Fprint(w, rec.Timeline(100))
	return err
}

func runFig3(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	t := NewTable("Figure 3: inter-node pt2pt latency (us)",
		"size", "1 HCA", "2 HCAs", "reduction")
	t.Notes = "paper: striping halves large-message latency from 16KB up"
	for _, m := range sc.Sizes(geometric(8<<10, 4<<20)) {
		one := PtPtLatency(topology.New(2, 1, 1), prm, m)
		two := PtPtLatency(topology.New(2, 1, 2), prm, m)
		t.Add(SizeLabel(m), one.Micros(), two.Micros(), Improvement(one, two))
	}
	return t.Fprint(w)
}

func runFig5(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.IntraCluster(8, 2)
	m := 4 << 20
	best, curve := core.TuneOffload(topo, prm, m, 8)
	pm := perfmodel.New(prm, topo)
	t := NewTable(fmt.Sprintf("Figure 5: offload sweep, %d procs, %s", topo.PPN, SizeLabel(m)),
		"offload d", "measured (us)", "model (us)")
	t.Notes = fmt.Sprintf("tuned optimum d=%.2f; analytic Eq.(1) d=%.2f", best, pm.OffloadD(m))
	sort.Slice(curve, func(i, j int) bool { return curve[i].D < curve[j].D })
	for _, pt := range curve {
		t.Add(fmt.Sprintf("%.2f", pt.D), pt.Latency.Micros(), pm.MHAIntraWithOffload(m, pt.D).Micros())
	}
	return t.Fprint(w)
}

func runFig8(nodes int) func(io.Writer, Scale) error {
	return func(w io.Writer, sc Scale) error {
		prm := netmodel.Thor()
		topo := sc.Cluster(nodes, 32, 2)
		t := NewTable(fmt.Sprintf("Figure 8: RD vs Ring in phase 2, %v", topo),
			"size/rank", "RD (us)", "Ring (us)", "winner")
		t.Notes = "paper: RD wins small messages, Ring wins large (more overlap)"
		for _, m := range sc.Sizes(geometric(64, 1<<20)) {
			rd := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRD})
			ring := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRing})
			winner := "rd"
			if ring < rd {
				winner = "ring"
			}
			t.Add(SizeLabel(m), rd.Micros(), ring.Micros(), winner)
		}
		return t.Fprint(w)
	}
}

func runFig9(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := topology.New(1, 4, 2)
	pm := perfmodel.New(prm, topo)
	t := NewTable("Figure 9: model validation, MHA-intra, 4 processes",
		"size", "actual (us)", "predicted (us)", "ratio")
	for _, m := range sc.Sizes(geometric(16<<10, 16<<20)) {
		actual := core.MeasureIntra(topo, prm, m, core.AutoOffload)
		pred := pm.MHAIntra(m)
		t.Add(SizeLabel(m), actual.Micros(), pred.Micros(),
			fmt.Sprintf("%.2f", float64(actual)/float64(pred)))
	}
	return t.Fprint(w)
}

func runFig10(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.Cluster(8, 32, 2)
	pm := perfmodel.New(prm, topo)
	t := NewTable(fmt.Sprintf("Figure 10: model validation, MHA-inter, %v", topo),
		"size", "actual (us)", "predicted (us)", "ratio")
	t.Notes = "predicted = min(pipeline-form Eq.6, Eq.7); tuned algorithm on both sides"
	for _, m := range sc.Sizes(geometric(1<<10, 512<<10)) {
		actual := core.MeasureInter(topo, prm, m, core.InterConfig{})
		pred := pm.MHAInterRing(m)
		if rd := pm.MHAInterRD(m); rd < pred {
			pred = rd
		}
		t.Add(SizeLabel(m), actual.Micros(), pred.Micros(),
			fmt.Sprintf("%.2f", float64(actual)/float64(pred)))
	}
	return t.Fprint(w)
}

func runFig11(ppn int) func(io.Writer, Scale) error {
	return func(w io.Writer, sc Scale) error {
		prm := netmodel.Thor()
		topo := sc.IntraCluster(ppn, 2)
		t := NewTable(fmt.Sprintf("Figure 11: intra-node allgather, %d processes", ppn),
			"size", "HPC-X (us)", "MVAPICH2-X (us)", "MHA (us)", "vs HPC-X", "vs MVAPICH2-X")
		sizes := geometric(256<<10, 16<<20)
		for _, m := range sc.Sizes(sizes) {
			var lat []interface{}
			lat = append(lat, SizeLabel(m))
			var vals []float64
			for _, prof := range Profiles() {
				d := AllgatherLatency(topo, prm, m, prof)
				vals = append(vals, d.Micros())
				lat = append(lat, d.Micros())
			}
			lat = append(lat, fmt.Sprintf("%.0f%%", (1-vals[2]/vals[0])*100))
			lat = append(lat, fmt.Sprintf("%.0f%%", (1-vals[2]/vals[1])*100))
			t.Add(lat...)
		}
		return t.Fprint(w)
	}
}

func runFigAG(nodes int, sizes []int) func(io.Writer, Scale) error {
	return func(w io.Writer, sc Scale) error {
		prm := netmodel.Thor()
		topo := sc.Cluster(nodes, 32, 2)
		t := NewTable(fmt.Sprintf("Figures 12-14: allgather, %v (%d procs)", topo, topo.Size()),
			"size/rank", "HPC-X (us)", "MVAPICH2-X (us)", "MHA (us)", "vs HPC-X", "vs MVAPICH2-X")
		for _, m := range sc.Sizes(sizes) {
			var vals []float64
			row := []interface{}{SizeLabel(m)}
			for _, prof := range Profiles() {
				d := AllgatherLatency(topo, prm, m, prof)
				vals = append(vals, d.Micros())
				row = append(row, d.Micros())
			}
			row = append(row, fmt.Sprintf("%.0f%%", (1-vals[2]/vals[0])*100),
				fmt.Sprintf("%.0f%%", (1-vals[2]/vals[1])*100))
			t.Add(row...)
		}
		return t.Fprint(w)
	}
}

func runFig15(nodes int) func(io.Writer, Scale) error {
	return func(w io.Writer, sc Scale) error {
		prm := netmodel.Thor()
		topo := sc.Cluster(nodes, 32, 2)
		t := NewTable(fmt.Sprintf("Figure 15: allreduce, %v (%d procs)", topo, topo.Size()),
			"size", "HPC-X (us)", "MVAPICH2-X (us)", "MHA (us)", "vs HPC-X", "vs MVAPICH2-X")
		t.Notes = "MHA = ring reduce-scatter + MHA allgather (Section 5.4)"
		for _, n := range sc.Sizes(geometric(64<<10, 1<<20)) {
			var vals []float64
			row := []interface{}{SizeLabel(n)}
			for _, prof := range Profiles() {
				d := AllreduceLatency(topo, prm, n, prof)
				vals = append(vals, d.Micros())
				row = append(row, d.Micros())
			}
			row = append(row, fmt.Sprintf("%.0f%%", (1-vals[2]/vals[0])*100),
				fmt.Sprintf("%.0f%%", (1-vals[2]/vals[1])*100))
			t.Add(row...)
		}
		return t.Fprint(w)
	}
}

// fig16Shapes returns the (topology, cols) points of the scaling sweep.
func fig16Shapes(sc Scale, weak bool) []topology.Cluster {
	if sc == Quick {
		return []topology.Cluster{
			topology.New(2, 8, 2), topology.New(4, 8, 2), topology.New(8, 8, 2),
		}
	}
	return []topology.Cluster{
		topology.New(8, 32, 2), topology.New(16, 32, 2), topology.New(32, 32, 2),
	}
}

func runFig16Strong(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	t := NewTable("Figure 16a: matvec strong scaling, 1024 x 32768 (GFLOP/s)",
		"procs", "HPC-X", "MVAPICH2-X", "MHA", "vs HPC-X", "vs MVAPICH2-X")
	for _, topo := range fig16Shapes(sc, false) {
		var vals []float64
		row := []interface{}{fmt.Sprint(topo.Size())}
		for _, prof := range Profiles() {
			res, err := matvec.Run(matvec.Config{
				Rows: 1024, Cols: 32768,
				Topo: topo, Params: prm, Profile: prof, Phantom: true,
			})
			if err != nil {
				return err
			}
			vals = append(vals, res.GFLOPS)
			row = append(row, res.GFLOPS)
		}
		row = append(row, fmt.Sprintf("%.2fx", vals[2]/vals[0]), fmt.Sprintf("%.2fx", vals[2]/vals[1]))
		t.Add(row...)
	}
	return t.Fprint(w)
}

func runFig16Weak(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	t := NewTable("Figure 16b: matvec weak scaling, cols = 128 x procs (GFLOP/s)",
		"procs (problem)", "HPC-X", "MVAPICH2-X", "MHA", "vs HPC-X", "vs MVAPICH2-X")
	for _, topo := range fig16Shapes(sc, true) {
		cols := 128 * topo.Size()
		var vals []float64
		row := []interface{}{fmt.Sprintf("%d (1024x%d)", topo.Size(), cols)}
		for _, prof := range Profiles() {
			res, err := matvec.Run(matvec.Config{
				Rows: 1024, Cols: cols,
				Topo: topo, Params: prm, Profile: prof, Phantom: true,
			})
			if err != nil {
				return err
			}
			vals = append(vals, res.GFLOPS)
			row = append(row, res.GFLOPS)
		}
		row = append(row, fmt.Sprintf("%.2fx", vals[2]/vals[0]), fmt.Sprintf("%.2fx", vals[2]/vals[1]))
		t.Add(row...)
	}
	return t.Fprint(w)
}

func runFig17(netIdx int) func(io.Writer, Scale) error {
	return func(w io.Writer, sc Scale) error {
		prm := netmodel.Thor()
		net := dltrain.Networks()[netIdx]
		t := NewTable(fmt.Sprintf("Figure 17: DL training, %s (%.1fM params), batch 16", net.Name, float64(net.Params)/1e6),
			"procs", "MVAPICH2-X (img/s)", "MHA (img/s)", "improvement")
		t.Notes = "paper compares only MVAPICH2-X and MHA (HPC-X + Horovod did not run)"
		for _, topo := range fig16Shapes(sc, false) {
			run := func(prof collectives.Profile) (float64, error) {
				res, err := dltrain.Run(dltrain.Config{
					Net: net, Topo: topo, Params: prm, Profile: prof, Steps: 2,
				})
				return res.ImagesPerSec, err
			}
			mvp, err := run(collectives.MVAPICH2X())
			if err != nil {
				return err
			}
			mha, err := run(core.Profile())
			if err != nil {
				return err
			}
			t.Add(fmt.Sprint(topo.Size()), mvp, mha, fmt.Sprintf("%.2f%%", (mha/mvp-1)*100))
		}
		return t.Fprint(w)
	}
}

func runAblPhase2(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.Cluster(16, 32, 2)
	t := NewTable(fmt.Sprintf("Ablation: phase-2 algorithm, %v", topo),
		"size/rank", "ring (us)", "rd (us)", "auto (us)")
	for _, m := range sc.Sizes(geometric(256, 256<<10)) {
		ring := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRing})
		rd := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRD})
		auto := core.MeasureInter(topo, prm, m, core.InterConfig{})
		t.Add(SizeLabel(m), ring.Micros(), rd.Micros(), auto.Micros())
	}
	return t.Fprint(w)
}

func runAblOverlap(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.Cluster(8, 32, 2)
	t := NewTable(fmt.Sprintf("Ablation: phase-2/3 overlap, %v", topo),
		"size/rank", "overlap (us)", "sequential (us)", "gain")
	for _, m := range sc.Sizes(geometric(4<<10, 256<<10)) {
		with := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRing})
		without := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRing, NoOverlap: true})
		t.Add(SizeLabel(m), with.Micros(), without.Micros(), Improvement(without, with))
	}
	return t.Fprint(w)
}

func runAblOffload(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.IntraCluster(8, 2)
	t := NewTable("Ablation: HCA offload policy, 8 processes single node",
		"size", "no offload (us)", "analytic Eq.1 (us)", "tuned (us)")
	for _, m := range sc.Sizes(geometric(256<<10, 16<<20)) {
		none := core.MeasureIntra(topo, prm, m, 0)
		analytic := core.MeasureIntra(topo, prm, m, core.AutoOffload)
		bestD, _ := core.TuneOffload(topo, prm, m, 6)
		tuned := core.MeasureIntra(topo, prm, m, bestD)
		t.Add(SizeLabel(m), none.Micros(), analytic.Micros(), tuned.Micros())
	}
	return t.Fprint(w)
}

func runAblPhase1(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.Cluster(8, 32, 2)
	t := NewTable(fmt.Sprintf("Ablation: phase-1 aggregation, %v", topo),
		"size/rank", "MHA-intra phase 1 (us)", "plain gather phase 1 (us)", "gain")
	for _, m := range sc.Sizes(geometric(4<<10, 256<<10)) {
		mhaP1 := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRing})
		plain := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRing, PlainPhase1: true})
		t.Add(SizeLabel(m), mhaP1.Micros(), plain.Micros(), Improvement(plain, mhaP1))
	}
	return t.Fprint(w)
}

func runAblStripe(w io.Writer, sc Scale) error {
	t := NewTable("Ablation: striping threshold (inter-node pt2pt latency, us)",
		"size", "4KB thr", "16KB thr (default)", "64KB thr", "no striping")
	topo := topology.New(2, 1, 2)
	for _, m := range sc.Sizes(geometric(4<<10, 4<<20)) {
		row := []interface{}{SizeLabel(m)}
		for _, thr := range []int{4 << 10, 16 << 10, 64 << 10, 1 << 30} {
			prm := netmodel.Thor()
			prm.StripeThreshold = thr
			row = append(row, PtPtLatency(topo, prm, m).Micros())
		}
		t.Add(row...)
	}
	return t.Fprint(w)
}

func runExtFabric(w io.Writer, sc Scale) error {
	topo := sc.Cluster(16, 32, 2)
	nodesPerLeaf := topo.Nodes / 4
	if nodesPerLeaf < 1 {
		nodesPerLeaf = 1
	}
	t := NewTable(fmt.Sprintf("Extension: fat-tree oversubscription, %v, %d nodes/leaf, 64KB/rank",
		topo, nodesPerLeaf),
		"taper", "HPC-X (us)", "MHA-Ring (us)", "MHA-RD (us)", "RD penalty")
	t.Notes = "ring schedules are leaf-local (only boundary hops cross), so taper barely " +
		"touches them; recursive doubling crosses leaves at every distance and pays the taper"
	m := 64 << 10
	for _, taper := range []float64{1, 2, 4} {
		prm := netmodel.Thor()
		prm.NodesPerLeaf = nodesPerLeaf
		prm.Oversubscription = taper
		hpcx := AllgatherLatency(topo, prm, m, Profiles()[0])
		ring := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRing})
		rd := core.MeasureInter(topo, prm, m, core.InterConfig{LeaderAlg: core.ForceRD})
		t.Add(fmt.Sprintf("%.0f:1", taper),
			hpcx.Micros(), ring.Micros(), rd.Micros(),
			fmt.Sprintf("%.2fx", float64(rd)/float64(ring)))
	}
	return t.Fprint(w)
}

func runExtOverhead(w io.Writer, sc Scale) error {
	topo := sc.Cluster(16, 32, 2)
	t := NewTable(fmt.Sprintf("Extension: per-message software overhead (LogGP o), %v, 4KB/rank", topo),
		"o per msg", "HPC-X (us)", "MVAPICH2-X (us)", "MHA (us)", "MHA vs HPC-X")
	t.Notes = "medium-message margins compress toward the paper's as library overhead grows"
	m := 4 << 10
	for _, o := range []float64{0, 0.5, 1, 2} {
		prm := netmodel.ThorWithOverhead(sim.FromMicros(o))
		var vals []float64
		row := []interface{}{fmt.Sprintf("%.1fus", o)}
		for _, prof := range Profiles() {
			d := AllgatherLatency(topo, prm, m, prof)
			vals = append(vals, d.Micros())
			row = append(row, d.Micros())
		}
		row = append(row, fmt.Sprintf("%.0f%%", (1-vals[2]/vals[0])*100))
		t.Add(row...)
	}
	return t.Fprint(w)
}

func runExtApps(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.Cluster(16, 32, 2)
	t := NewTable(fmt.Sprintf("Extension: application kernels across libraries, %v", topo),
		"kernel", "metric", "HPC-X", "MVAPICH2-X", "MHA")
	t.Notes = "matvec/BPMF are allgather-bound, DL is allreduce-bound, the stencil's halo exchange is library-independent"

	mv := make([]float64, 3)
	bp := make([]float64, 3)
	dl := make([]float64, 3)
	for i, prof := range Profiles() {
		res, err := matvec.Run(matvec.Config{
			Rows: 1024, Cols: 128 * topo.Size(),
			Topo: topo, Params: prm, Profile: prof, Phantom: true,
		})
		if err != nil {
			return err
		}
		mv[i] = res.GFLOPS
		b, err := bpmf.Run(bpmf.Config{
			Users: 64 * topo.Size(), Items: 64 * topo.Size(), Latent: 32,
			RatingsPerEntity: 5, Sweeps: 2,
			Topo: topo, Params: prm, Profile: prof, Phantom: true,
		})
		if err != nil {
			return err
		}
		bp[i] = b.SweepsPerSec
		d, err := dltrain.Run(dltrain.Config{
			Net: dltrain.ResNet50(), Topo: topo, Params: prm, Profile: prof, Steps: 1,
		})
		if err != nil {
			return err
		}
		dl[i] = d.ImagesPerSec
	}
	t.Add("matvec 1024x128P", "GFLOP/s", mv[0], mv[1], mv[2])
	t.Add("BPMF K=32", "sweeps/s", bp[0], bp[1], bp[2])
	t.Add("ResNet-50 batch16", "img/s", dl[0], dl[1], dl[2])

	st, err := stencil.Run(stencil.Config{
		Points: 4096 * topo.Size(), Iterations: 20, Alpha: 0.25,
		Topo: topo, Params: prm, Phantom: true,
	})
	if err != nil {
		return err
	}
	t.Add("Jacobi stencil", "Mpoints/s", st.PointsPerSec/1e6, "(same)", "(same)")
	return t.Fprint(w)
}

func runAblLeaders(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.Cluster(8, 32, 2)
	t := NewTable(fmt.Sprintf("Ablation: leader count in the multi-leader design, %v", topo),
		"size/rank", "1 leader (us)", "2 leaders (us)", "4 leaders (us)", "MHA (us)")
	t.Notes = "the Section 1.1 critique: the multi-leader blend ring bottlenecks on intra-node hops"
	measure := func(m, groups int) sim.Duration {
		wl := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
		var worst sim.Time
		if err := wl.Run(func(p *mpi.Proc) {
			collectives.MultiLeaderAllgather(p, wl, mpi.Phantom(m), mpi.Phantom(m*p.Size()), groups)
			if p.Now() > worst {
				worst = p.Now()
			}
		}); err != nil {
			panic(err)
		}
		return sim.Duration(worst)
	}
	for _, m := range sc.Sizes(geometric(16<<10, 256<<10)) {
		mha := core.MeasureInter(topo, prm, m, core.InterConfig{})
		t.Add(SizeLabel(m),
			measure(m, 1).Micros(), measure(m, 2).Micros(), measure(m, 4).Micros(),
			mha.Micros())
	}
	return t.Fprint(w)
}

func runExtNuma(w io.Writer, sc Scale) error {
	prm := netmodel.NumaThor()
	nodes := 8
	if sc == Quick {
		nodes = 4
	}
	topo := topology.Cluster{Nodes: nodes, PPN: 16, HCAs: 2, Sockets: 2}
	if err := topo.Validate(); err != nil {
		return err
	}
	t := NewTable(fmt.Sprintf("Extension: 3-level NUMA design, %v, 2 sockets, 1.5x cross-socket penalty", topo),
		"size/rank", "2-level MHA (us)", "3-level MHA (us)", "gain")
	t.Notes = "the paper's Section 7 future work: overlap intra-socket, inter-socket and inter-node"
	measure := func(m int, alg func(p *mpi.Proc, wl *mpi.World, send, recv mpi.Buf)) sim.Duration {
		wl := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
		var worst sim.Time
		if err := wl.Run(func(p *mpi.Proc) {
			alg(p, wl, mpi.Phantom(m), mpi.Phantom(m*p.Size()))
			if p.Now() > worst {
				worst = p.Now()
			}
		}); err != nil {
			panic(err)
		}
		return sim.Duration(worst)
	}
	for _, m := range sc.Sizes(geometric(16<<10, 1<<20)) {
		two := measure(m, core.MHAInterAllgather)
		three := measure(m, core.MHA3LevelAllgather)
		t.Add(SizeLabel(m), two.Micros(), three.Micros(), Improvement(two, three))
	}
	return t.Fprint(w)
}

func runExtColl(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	topo := sc.Cluster(16, 32, 2)
	t := NewTable(fmt.Sprintf("Extension: other collectives, %v", topo),
		"collective", "size", "flat (us)", "MHA (us)", "gain")
	t.Notes = "the hierarchical multi-rail template applied beyond allgather"
	measure := func(body func(p *mpi.Proc, wl *mpi.World)) sim.Duration {
		wl := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
		var worst sim.Time
		if err := wl.Run(func(p *mpi.Proc) {
			body(p, wl)
			if p.Now() > worst {
				worst = p.Now()
			}
		}); err != nil {
			panic(err)
		}
		return sim.Duration(worst)
	}
	for _, m := range sc.Sizes([]int{64 << 10, 1 << 20, 4 << 20}) {
		m := m
		flat := measure(func(p *mpi.Proc, wl *mpi.World) {
			collectives.BinomialBcast(p, wl.CommWorld(), 0, mpi.Phantom(m))
		})
		ours := measure(func(p *mpi.Proc, wl *mpi.World) {
			core.MHABcast(p, wl, 0, mpi.Phantom(m))
		})
		t.Add("bcast", SizeLabel(m), flat.Micros(), ours.Micros(), Improvement(flat, ours))
	}
	for _, m := range sc.Sizes([]int{1 << 10, 8 << 10, 32 << 10}) {
		m := m
		total := m * topo.Size()
		flat := measure(func(p *mpi.Proc, wl *mpi.World) {
			collectives.PairwiseAlltoall(p, wl.CommWorld(), mpi.Phantom(total), mpi.Phantom(total))
		})
		ours := measure(func(p *mpi.Proc, wl *mpi.World) {
			core.MHAAlltoall(p, wl, mpi.Phantom(total), mpi.Phantom(total))
		})
		t.Add("alltoall", SizeLabel(m), flat.Micros(), ours.Micros(), Improvement(flat, ours))
	}
	for _, m := range sc.Sizes([]int{256 << 10, 1 << 20, 4 << 20}) {
		m := m
		flat := measure(func(p *mpi.Proc, wl *mpi.World) {
			buf := mpi.Phantom(m)
			collectives.BinomialReduce(p, wl.CommWorld(), 0, buf, collectives.SumF64())
		})
		ours := measure(func(p *mpi.Proc, wl *mpi.World) {
			buf := mpi.Phantom(m)
			core.MHAReduce(p, wl, 0, buf, collectives.SumF64())
		})
		t.Add("reduce", SizeLabel(m), flat.Micros(), ours.Micros(), Improvement(flat, ours))
	}
	return t.Fprint(w)
}

func runExtNoise(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	prm.Jitter = 0.08 // ±8% uniform noise on every transfer/copy
	topo := sc.Cluster(8, 32, 2)
	seeds := 10
	t := NewTable(fmt.Sprintf("Extension: jitter robustness, %v, ±8%% noise, %d seeds (us, mean±std)", topo, seeds),
		"size/rank", "HPC-X", "MVAPICH2-X", "MHA", "MHA wins")
	t.Notes = "the deterministic results hold as distributions: the MHA ordering survives noise"
	for _, m := range sc.Sizes([]int{16 << 10, 64 << 10, 256 << 10}) {
		profs := Profiles()
		hp := NoisyAllgather(topo, prm, m, profs[0], seeds)
		mv := NoisyAllgather(topo, prm, m, profs[1], seeds)
		mh := NoisyAllgather(topo, prm, m, profs[2], seeds)
		wins := 0
		for s := 0; s < seeds; s++ {
			a := AllgatherLatencySeeded(topo, prm, m, profs[2], int64(s))
			b := AllgatherLatencySeeded(topo, prm, m, profs[0], int64(s))
			c := AllgatherLatencySeeded(topo, prm, m, profs[1], int64(s))
			if a < b && a < c {
				wins++
			}
		}
		t.Add(SizeLabel(m), hp.String(), mv.String(), mh.String(),
			fmt.Sprintf("%d/%d", wins, seeds))
	}
	return t.Fprint(w)
}

func runAblRails(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	t := NewTable("Ablation: rail count scaling (MHA allgather, 8 nodes 8 PPN, us)",
		"size/rank", "H=1", "H=2", "H=4", "H=8")
	nodes, ppn := 8, 8
	if sc == Quick {
		nodes = 4
	}
	for _, m := range sc.Sizes(geometric(16<<10, 1<<20)) {
		row := []interface{}{SizeLabel(m)}
		for _, h := range []int{1, 2, 4, 8} {
			topo := topology.New(nodes, ppn, h)
			row = append(row, core.MeasureInter(topo, prm, m, core.InterConfig{}).Micros())
		}
		t.Add(row...)
	}
	return t.Fprint(w)
}
