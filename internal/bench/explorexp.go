package bench

// Model-checker probe. Like the tuner-* probes this measures wall
// clock, not modeled time: the sustained rate at which the exhaustive
// explorer (internal/explore) visits engine states on the paper's
// 4-rank dual-rail shape. It tracks the cost of the scheduler seam and
// the DPOR bookkeeping, which the modeled-latency probes cannot see.

import (
	"fmt"
	"time"

	"mha/internal/explore"
)

// ExploreStatesPerSec exhausts the ring variant on the 2x2x2 benchmark
// shape and returns visited engine states per wall-clock second. The
// exploration must complete and find nothing: an incomplete search means
// the reduction regressed, a counterexample means the variant broke, and
// either makes the probe's rate meaningless.
func ExploreStatesPerSec() (float64, error) {
	start := time.Now()
	rep, err := explore.Run(explore.Options{
		Algs: []string{"ring"}, Nodes: 2, PPN: 2, HCAs: 2, Msg: 8,
	})
	if err != nil {
		return 0, err
	}
	if !rep.Complete {
		return 0, fmt.Errorf("bench: exploration incomplete (%d executions)", rep.Executions)
	}
	if rep.Counterexamples != 0 {
		return 0, fmt.Errorf("bench: exploration found %d counterexamples", rep.Counterexamples)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("bench: implausible exploration elapsed time")
	}
	return float64(rep.Steps) / elapsed, nil
}
