package bench

import "testing"

// TestExploreStatesPerSec sanity-checks the model-checker probe: the
// benchmark-shape exploration must complete cleanly at a plausible rate.
// The floor is deliberately loose (the race-detector CI step slows the
// engine ~10x); the trajectory that matters is the order of magnitude
// recorded in BENCH_tier1.json.
func TestExploreStatesPerSec(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock throughput probe; skipped in -short")
	}
	rate, err := ExploreStatesPerSec()
	if err != nil {
		t.Fatal(err)
	}
	if rate < 1000 {
		t.Errorf("explorer visited %.0f states/sec; expected thousands", rate)
	}
	t.Logf("explorer: %.0f states/sec", rate)
}
