package bench

import (
	"fmt"
	"io"
	"time"

	"mha/internal/collectives"
	"mha/internal/fabric"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// FabricAllgatherLatency measures one allgather of m bytes per rank by
// registered algorithm name on a cluster whose inter-node traffic
// crosses the given fabric (nil = flat non-blocking).
func FabricAllgatherLatency(topo topology.Cluster, prm *netmodel.Params, m int, spec *fabric.Spec, alg string) sim.Duration {
	run, ok := collectives.AllgatherByName(alg)
	if !ok {
		panic(fmt.Sprintf("bench: allgather %q is not registered", alg))
	}
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true, Fabric: spec})
	var worst sim.Time
	if err := w.Run(func(p *mpi.Proc) {
		run(p, w.CommWorld(), mpi.Phantom(m), mpi.Phantom(m*p.Size()))
		if p.Now() > worst {
			worst = p.Now()
		}
	}); err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}

// fabricSweepSpecs returns the fabric rows of the sweep for a cluster of
// the given node count: flat, fat-trees of increasing taper, and a
// dragonfly that tiles the nodes.
func fabricSweepSpecs(nodes int) []struct {
	label string
	spec  *fabric.Spec
} {
	ft := func(over float64) *fabric.Spec {
		return &fabric.Spec{Kind: fabric.FatTree, Arity: 2, Levels: 2, Over: []float64{over}}
	}
	dfly := &fabric.Spec{Kind: fabric.Dragonfly, Groups: 2, Routers: 2,
		NodesPer: nodes / 4, LocalOver: 1, GlobalOver: 2}
	return []struct {
		label string
		spec  *fabric.Spec
	}{
		{"flat", nil},
		{"ft 1:1", ft(1)},
		{"ft 2:1", ft(2)},
		{"ft 4:1", ft(4)},
		{"dfly 2:1g", dfly},
	}
}

// fabricSweepAlgs are the algorithm columns of the sweep: the two flat
// reference algorithms and the locality family's representatives.
var fabricSweepAlgs = []string{"rd", "ring", "locality-ring", "locality-bruck", "hier-bruck-ml"}

func runFabricSweep(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	nodes, ppn := 8, 4
	if sc == Quick {
		nodes, ppn = 4, 2
	}
	m := 64 << 10
	for _, layout := range []topology.Layout{topology.Block, topology.Cyclic} {
		topo := topology.Cluster{Nodes: nodes, PPN: ppn, HCAs: 2, Layout: layout}
		if err := topo.Validate(); err != nil {
			return err
		}
		cols := append([]string{"fabric"}, fabricSweepAlgs...)
		t := NewTable(fmt.Sprintf("Fabric sweep: %v, %s/rank (us)", topo, SizeLabel(m)), cols...)
		t.Notes = "locality variants route most bytes under the leaf switches; " +
			"flat rd/ring pay the full taper on every cross-leaf step"
		for _, row := range fabricSweepSpecs(nodes) {
			cells := []interface{}{row.label}
			for _, alg := range fabricSweepAlgs {
				cells = append(cells, FabricAllgatherLatency(topo, prm, m, row.spec, alg).Micros())
			}
			t.Add(cells...)
		}
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}

// FabricRouteMicros is the wall-clock cost of building a mid-size
// fat-tree network — links, capacities, and the full pairwise route
// table — in microseconds. It is a serving-path number (mhafabric and
// every World construction pay it), so it rides tier 1 as the one
// wall-clock fabric probe.
func FabricRouteMicros() float64 {
	spec := fabric.Spec{Kind: fabric.FatTree, Arity: 4, Levels: 3, Over: []float64{2, 2}}
	topo := topology.New(64, 4, 2)
	const iters = 10
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := fabric.Build(nil, spec, topo, netmodel.Thor()); err != nil {
			panic(err)
		}
	}
	return float64(time.Since(start)) / float64(time.Microsecond) / iters
}
