package bench

import (
	"testing"

	"mha/internal/fabric"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// TestFabricTaperMonotonic pins the sweep's physics: on a fat-tree,
// tightening the taper can only slow an algorithm down, and the flat
// fabric is never slower than any tapered one.
func TestFabricTaperMonotonic(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(8, 4, 2)
	m := 64 << 10
	ft := func(over float64) *fabric.Spec {
		return &fabric.Spec{Kind: fabric.FatTree, Arity: 2, Levels: 2, Over: []float64{over}}
	}
	for _, alg := range fabricSweepAlgs {
		flat := FabricAllgatherLatency(topo, prm, m, nil, alg)
		prev := flat
		for _, over := range []float64{1, 2, 4} {
			d := FabricAllgatherLatency(topo, prm, m, ft(over), alg)
			if d < prev {
				t.Errorf("%s: taper %v:1 ran in %v, faster than the looser fabric's %v", alg, over, d, prev)
			}
			prev = d
		}
	}
}

// TestFabricCrossover is the acceptance claim in bench form: on a 2:1
// oversubscribed fat-tree with a cyclic rank layout, the best locality
// variant beats the best flat algorithm, while on the flat fabric the
// flat algorithms remain competitive (within 2x).
func TestFabricCrossover(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.Cluster{Nodes: 8, PPN: 4, HCAs: 2, Layout: topology.Cyclic}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	m := 64 << 10
	ft := &fabric.Spec{Kind: fabric.FatTree, Arity: 2, Levels: 2, Over: []float64{2}}
	best := func(spec *fabric.Spec, algs []string) (string, sim.Duration) {
		name, d := "", sim.Duration(0)
		for _, alg := range algs {
			if v := FabricAllgatherLatency(topo, prm, m, spec, alg); name == "" || v < d {
				name, d = alg, v
			}
		}
		return name, d
	}
	flatAlgs := []string{"ring", "rd", "bruck", "direct", "neighbor"}
	locAlgs := []string{"locality-p2p", "locality-ring", "locality-bruck", "hier-bruck-ml"}
	flatName, flatBest := best(ft, flatAlgs)
	locName, locBest := best(ft, locAlgs)
	if locBest >= flatBest {
		t.Errorf("on the 2:1 fat-tree, best locality %s (%v) does not beat best flat %s (%v)",
			locName, locBest, flatName, flatBest)
	}
	_, flatFlat := best(nil, flatAlgs)
	_, locFlat := best(nil, locAlgs)
	if locFlat > 2*flatFlat {
		t.Errorf("on the flat fabric, best locality variant (%v) is more than 2x the best flat algorithm (%v)",
			locFlat, flatFlat)
	}
}
