package bench

import (
	"fmt"
	"io"

	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/faults"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// AllgatherFn is one allgather implementation under test in the fault
// sweep.
type AllgatherFn func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)

// FaultAlgorithms returns the allgather variants the resilience sweep
// compares, in presentation order.
func FaultAlgorithms() []struct {
	Name string
	Fn   AllgatherFn
} {
	return []struct {
		Name string
		Fn   AllgatherFn
	}{
		{"mha", core.MHAAllgather},
		{"two-level", collectives.KandallaAllgather},
		{"multi-leader", func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			collectives.MultiLeaderAllgather(p, w, send, recv, 2)
		}},
		{"ring", func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			collectives.RingAllgather(p, w.CommWorld(), send, recv)
		}},
	}
}

// FaultedAllgatherLatency times one allgather of m bytes per rank on a
// world running under the given fault schedule, returning the completion
// time and the per-rail utilization summary. blind selects the naive
// (health-unaware) transport baseline.
func FaultedAllgatherLatency(topo topology.Cluster, prm *netmodel.Params, m int,
	alg AllgatherFn, sched *faults.Schedule, blind bool) (sim.Duration, []mpi.RailStat) {
	w := mpi.New(mpi.Config{
		Topo:       topo,
		Params:     prm,
		Phantom:    true,
		Faults:     sched,
		FaultBlind: blind,
	})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		alg(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()))
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst), w.RailStats()
}

// FaultScenarios returns the degraded-mode sweep's scenarios for a
// cluster of the given shape: healthy, one rail of node 0 down for the
// whole run, and every rail at half bandwidth (health-aware and naive).
func FaultScenarios() []struct {
	Name  string
	Sched *faults.Schedule
	Blind bool
} {
	railDown := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 1})
	outage := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 1,
		Until: 40 * sim.Time(sim.Microsecond)})
	degraded := faults.MustNew(faults.Fault{
		Kind: faults.Degrade, Node: faults.AllNodes, Rail: 1, Fraction: 0.5})
	return []struct {
		Name  string
		Sched *faults.Schedule
		Blind bool
	}{
		{"healthy", nil, false},
		{"rail1@node0 down", railDown, false},
		{"rail1@node0 down 40us", outage, false},
		{"rail1 50% (aware)", degraded, false},
		{"rail1 50% (naive)", degraded, true},
	}
}

// FprintRailStats renders a per-rail utilization table: busy time and
// acquisition counts of every rail's tx/rx engines — where the sweep's
// time actually went.
func FprintRailStats(w io.Writer, title string, stats []mpi.RailStat) error {
	t := NewTable(title, "rail", "tx busy", "tx uses", "rx busy", "rx uses")
	for _, s := range stats {
		t.Add(fmt.Sprintf("node%d.rail%d", s.Node, s.Rail),
			s.TxBusy, s.TxUses, s.RxBusy, s.RxUses)
	}
	return t.Fprint(w)
}

// runFaultSweep is the degraded-mode resilience experiment: every
// allgather variant under every fault scenario, with the health-aware
// striping's re-weighting visible as "aware" beating "naive" and the
// one-rail-down time landing between healthy multirail and a single-rail
// machine.
func runFaultSweep(w io.Writer, sc Scale) error {
	topo := sc.Cluster(8, 8, 2)
	oneRail := topology.New(topo.Nodes, topo.PPN, 1)
	prm := netmodel.Thor()
	sizes := sc.Sizes(geometric(64<<10, 512<<10))

	for _, alg := range FaultAlgorithms() {
		t := NewTable(
			fmt.Sprintf("degraded-mode allgather latency (us), %s, %d nodes x %d ppn x 2 rails",
				alg.Name, topo.Nodes, topo.PPN),
			append([]string{"size"}, scenarioColumns()...)...)
		for _, m := range sizes {
			row := []interface{}{SizeLabel(m)}
			for _, sc := range FaultScenarios() {
				lat, _ := FaultedAllgatherLatency(topo, prm, m, alg.Fn, sc.Sched, sc.Blind)
				row = append(row, lat.Micros())
			}
			lat1, _ := FaultedAllgatherLatency(oneRail, prm, m, alg.Fn, nil, false)
			row = append(row, lat1.Micros())
			t.Add(row...)
		}
		if err := t.Fprint(w); err != nil {
			return err
		}
	}

	// Satellite view: where the bytes went on the degraded machine. One
	// rail of node 0 is dead, so its engines must show zero acquisitions
	// while its partner rail carries the whole node.
	m := sizes[len(sizes)-1]
	_, stats := FaultedAllgatherLatency(topo, prm, m,
		core.MHAAllgather, FaultScenarios()[1].Sched, false)
	return FprintRailStats(w,
		fmt.Sprintf("per-rail utilization, mha, %s, rail1@node0 down", SizeLabel(m)),
		stats[:4*2]) // first four nodes keep the table readable
}

func scenarioColumns() []string {
	var cols []string
	for _, sc := range FaultScenarios() {
		cols = append(cols, sc.Name)
	}
	return append(cols, "1-rail machine")
}

func init() {
	register("ext-faults", "resilience: allgather under rail faults (down/degraded, aware vs naive)", runFaultSweep)
}
