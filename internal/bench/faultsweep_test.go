package bench

import (
	"io"
	"testing"

	"mha/internal/core"
	"mha/internal/faults"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// TestOneRailDownLandsBetweenHealthyAndSingleRail is the acceptance
// criterion for graceful degradation: with one of the two rails down for
// the opening stretch of the run, the MHA allgather must pay for the
// outage (strictly slower than the healthy two-rail machine) but recover
// the moment the rail returns (strictly faster than a machine that never
// had the second rail).
func TestOneRailDownLandsBetweenHealthyAndSingleRail(t *testing.T) {
	topo := topology.New(4, 4, 2)
	oneRail := topology.New(4, 4, 1)
	prm := netmodel.Thor()
	down := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 1,
		Until: 40 * sim.Time(sim.Microsecond)})

	for _, m := range []int{64 << 10, 256 << 10} {
		healthy, _ := FaultedAllgatherLatency(topo, prm, m, core.MHAAllgather, nil, false)
		degraded, _ := FaultedAllgatherLatency(topo, prm, m, core.MHAAllgather, down, false)
		single, _ := FaultedAllgatherLatency(oneRail, prm, m, core.MHAAllgather, nil, false)
		if !(healthy < degraded && degraded < single) {
			t.Errorf("m=%d: want healthy (%v) < one-rail-down (%v) < single-rail machine (%v)",
				m, healthy, degraded, single)
		}
	}
}

// TestPermanentRailDownNeverBeatsSingleRailMachine pins the limiting
// case: a rail that is down for the entire run degrades node 0 to the
// single-rail machine's speed — and with the plan-level integration, not
// below it.
func TestPermanentRailDownNeverBeatsSingleRailMachine(t *testing.T) {
	topo := topology.New(4, 4, 2)
	oneRail := topology.New(4, 4, 1)
	prm := netmodel.Thor()
	down := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 1})

	for _, m := range []int{64 << 10, 256 << 10} {
		healthy, _ := FaultedAllgatherLatency(topo, prm, m, core.MHAAllgather, nil, false)
		degraded, _ := FaultedAllgatherLatency(topo, prm, m, core.MHAAllgather, down, false)
		single, _ := FaultedAllgatherLatency(oneRail, prm, m, core.MHAAllgather, nil, false)
		if !(healthy < degraded && degraded <= single) {
			t.Errorf("m=%d: want healthy (%v) < permanent-down (%v) <= single-rail machine (%v)",
				m, healthy, degraded, single)
		}
	}
}

// TestAwareStripingBeatsNaiveOnDegradedRail is the second acceptance
// criterion: on a 50%-degraded rail, re-weighted striping must beat the
// naive equal split for large messages.
func TestAwareStripingBeatsNaiveOnDegradedRail(t *testing.T) {
	topo := topology.New(4, 4, 2)
	prm := netmodel.Thor()
	degraded := faults.MustNew(faults.Fault{
		Kind: faults.Degrade, Node: faults.AllNodes, Rail: 1, Fraction: 0.5})

	for _, m := range []int{128 << 10, 512 << 10} {
		aware, _ := FaultedAllgatherLatency(topo, prm, m, core.MHAAllgather, degraded, false)
		naive, _ := FaultedAllgatherLatency(topo, prm, m, core.MHAAllgather, degraded, true)
		if aware >= naive {
			t.Errorf("m=%d: aware striping (%v) not faster than naive equal split (%v)",
				m, aware, naive)
		}
	}
}

func TestFaultedLatencyDeterministic(t *testing.T) {
	topo := topology.New(4, 2, 2)
	sched := faults.Random(7, 4, 2, 5_000_000)
	a, _ := FaultedAllgatherLatency(topo, netmodel.Thor(), 64<<10, core.MHAAllgather, sched, false)
	b, _ := FaultedAllgatherLatency(topo, netmodel.Thor(), 64<<10, core.MHAAllgather, sched, false)
	if a != b {
		t.Fatalf("same schedule, different latencies: %v vs %v", a, b)
	}
}

func TestRailStatsReflectDeadRail(t *testing.T) {
	topo := topology.New(2, 2, 2)
	down := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 1})
	_, stats := FaultedAllgatherLatency(topo, netmodel.Thor(), 128<<10, core.MHAAllgather, down, false)
	var usedAny bool
	for _, s := range stats {
		if s.Node == 0 && s.Rail == 1 && s.TxUses != 0 {
			t.Errorf("dead rail transmitted: %v", s)
		}
		if s.TxUses > 0 {
			usedAny = true
		}
	}
	if !usedAny {
		t.Fatal("no rail recorded any use")
	}
}

func TestFaultSweepExperimentRuns(t *testing.T) {
	e, ok := ByID("ext-faults")
	if !ok {
		t.Fatal("ext-faults experiment not registered")
	}
	if err := e.Run(io.Discard, Quick); err != nil {
		t.Fatal(err)
	}
}
