package bench

import (
	"testing"

	"mha/internal/core"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// The simulator is deterministic, so key figures can be pinned exactly.
// These golden values are regression anchors: they change only when the
// calibration (internal/netmodel) or an algorithm's communication schedule
// changes, and any such change should be deliberate and re-recorded in
// EXPERIMENTS.md.
func TestGoldenPtPtLatencies(t *testing.T) {
	prm := netmodel.Thor()
	cases := []struct {
		name  string
		topo  topology.Cluster
		bytes int
		want  sim.Duration
	}{
		// 4 MiB over one rail: 3us startup (alpha+rendezvous) + 4MiB/12.4GB/s.
		{"4MB-1rail", topology.New(2, 1, 1), 4 << 20, sim.FromMicros(341.251)},
		// Striped over two rails: half the bytes per rail.
		{"4MB-2rails", topology.New(2, 1, 2), 4 << 20, sim.FromMicros(172.125)},
		// Below the striping threshold: single rail, no rendezvous.
		{"8KB", topology.New(2, 1, 2), 8 << 10, sim.FromMicros(2.561)},
		// Intra-node CMA.
		{"1MB-cma", topology.New(1, 2, 1), 1 << 20, sim.FromMicros(87.979)},
	}
	for _, c := range cases {
		got := PtPtLatency(c.topo, prm, c.bytes)
		if diff := got - c.want; diff > 5 || diff < -5 { // 5ns rounding slack
			t.Errorf("%s: latency %v, golden %v", c.name, got, c.want)
		}
	}
}

func TestGoldenAllgatherLatencies(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(4, 8, 2)
	m := 64 << 10
	profs := Profiles()
	want := []sim.Duration{
		sim.FromMicros(190.714), // HPC-X (flat ring)
		sim.FromMicros(220.003), // MVAPICH2-X (Kandalla two-level)
		sim.FromMicros(156.029), // MHA
	}
	for i, prof := range profs {
		got := AllgatherLatency(topo, prm, m, prof)
		if diff := got - want[i]; diff > 100 || diff < -100 { // 0.1us slack
			t.Errorf("%s: latency %v, golden %v", prof.Name, got, want[i])
		}
	}
}

func TestGoldenDeterminismAcrossRuns(t *testing.T) {
	// Three identical measurements must agree to the nanosecond.
	prm := netmodel.Thor()
	topo := topology.New(4, 8, 2)
	first := core.MeasureInter(topo, prm, 32<<10, core.InterConfig{})
	for i := 0; i < 2; i++ {
		if again := core.MeasureInter(topo, prm, 32<<10, core.InterConfig{}); again != first {
			t.Fatalf("run %d: %v != %v", i, again, first)
		}
	}
}
