// Package bench is the evaluation harness: one registered experiment per
// table and figure of the paper's evaluation (Section 5), each printing
// the same rows/series the paper reports, plus the ablation studies called
// out in DESIGN.md. The cmd/mhabench binary and the repository-level
// testing.B benchmarks both drive this package.
package bench

import (
	"fmt"

	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// PtPtLatency measures the one-way latency of a single message of m bytes
// between rank 0 and rank 1 of the given cluster (two ranks total:
// same-node for intra-node runs, one per node for inter-node runs).
func PtPtLatency(topo topology.Cluster, prm *netmodel.Params, m int, opts ...mpi.SendOption) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var arrived sim.Time
	err := w.Run(func(p *mpi.Proc) {
		c := w.CommWorld()
		switch p.Rank() {
		case 0:
			p.Send(c, 1, 0, mpi.Phantom(m), opts...)
		case 1:
			p.Recv(c, 0, 0)
			arrived = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(arrived)
}

// PtPtBandwidth reports the achieved point-to-point bandwidth in MB/s for
// message size m, in the OSU bandwidth-test style: a window of back-to-back
// nonblocking sends so startup costs amortize. Intra-node transfers use a
// window of 1: CMA copies serialize through the sending CPU, so a deeper
// window adds nothing real but would inflate the concurrency gauge.
func PtPtBandwidth(topo topology.Cluster, prm *netmodel.Params, m int, opts ...mpi.SendOption) float64 {
	window := 64
	if topo.Nodes == 1 {
		window = 1
	}
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var done sim.Time
	err := w.Run(func(p *mpi.Proc) {
		c := w.CommWorld()
		switch p.Rank() {
		case 0:
			reqs := make([]*mpi.Request, window)
			for i := range reqs {
				reqs[i] = p.Isend(c, 1, i, mpi.Phantom(m), opts...)
			}
			p.Waitall(reqs...)
		case 1:
			reqs := make([]*mpi.Request, window)
			for i := range reqs {
				reqs[i] = p.Irecv(c, 0, i)
			}
			p.Waitall(reqs...)
			done = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	bytes := float64(window) * float64(m)
	return bytes / sim.Duration(done).Seconds() / 1e6
}

// AllgatherLatency measures one allgather of m bytes per rank under the
// given profile.
func AllgatherLatency(topo topology.Cluster, prm *netmodel.Params, m int, prof collectives.Profile) sim.Duration {
	return core.MeasureProfileAllgather(topo, prm, m, prof)
}

// AllreduceLatency measures one allreduce of n total bytes under the given
// profile. n is padded up to a multiple of 8*ranks for uniform chunking.
func AllreduceLatency(topo topology.Cluster, prm *netmodel.Params, n int, prof collectives.Profile) sim.Duration {
	unit := 8 * topo.Size()
	n = (n + unit - 1) / unit * unit
	return core.MeasureProfileAllreduce(topo, prm, n, prof)
}

// Profiles returns the three compared implementations in the paper's
// presentation order.
func Profiles() []collectives.Profile {
	return []collectives.Profile{collectives.HPCX(), collectives.MVAPICH2X(), core.Profile()}
}

// Improvement formats the latency reduction of new vs old as the paper
// quotes it ("X% better"): 1 - new/old.
func Improvement(old, new sim.Duration) string {
	if old <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", (1-float64(new)/float64(old))*100)
}

// SizeLabel renders byte sizes the way the paper's axes do.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
