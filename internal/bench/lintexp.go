package bench

// Static-analysis probe: what a whole-program mhalint run costs. The
// linter rides CI on every push, so its wall-clock cost is a serving
// number like tuner latency — a regression here slows every merge.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mha/internal/lint"
)

// LintWholeProgramMicros is the wall-clock cost of one full mhalint
// cycle — load + typecheck, whole-program index and call graph, all
// nine passes — over a representative package, in microseconds. The
// package must come back clean: a finding means the probe (or the
// tree) regressed, and the number would no longer measure the same
// work.
func LintWholeProgramMicros() (float64, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	dir := filepath.Join(root, "internal", "topology")
	const rounds = 3
	start := time.Now()
	for i := 0; i < rounds; i++ {
		units, err := lint.Load([]string{dir})
		if err != nil {
			return 0, err
		}
		if diags := lint.Check(units, lint.Passes()); len(diags) != 0 {
			return 0, fmt.Errorf("lint probe package is not clean: %d finding(s)", len(diags))
		}
	}
	return float64(time.Since(start)) / float64(time.Microsecond) / rounds, nil
}

// moduleRoot walks up from the working directory to the go.mod that
// anchors the tree, so the probe works from any package's test dir.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
