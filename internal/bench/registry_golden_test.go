package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the experiment golden files")

// TestRegistryGoldenOutput pins the full table output of every registered
// experiment at Quick scale. The simulator is deterministic, so any diff
// is a real behavior change: re-record deliberately with
//
//	go test ./internal/bench/ -run TestRegistryGoldenOutput -update
func TestRegistryGoldenOutput(t *testing.T) {
	for _, ex := range Registry() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ex.Run(&buf, Quick); err != nil {
				t.Fatalf("experiment %s: %v", ex.ID, err)
			}
			path := filepath.Join("testdata", "golden", ex.ID+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden for %s (record with -update): %v", ex.ID, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("experiment %s output drifted from golden:\n%s", ex.ID, firstDiff(want, buf.Bytes()))
			}
		})
	}
}

// firstDiff renders the first differing line of got vs want.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: golden %d vs got %d", len(wl), len(gl))
}

// TestTier1Metrics sanity-checks the perf-trajectory probes: every probe
// present, positive, and the JSON render stable across two calls.
func TestTier1Metrics(t *testing.T) {
	ms := Tier1(Quick)
	if len(ms) < 8 {
		t.Fatalf("only %d tier-1 probes", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if m.Micros <= 0 {
			t.Errorf("probe %s: non-positive latency %v", m.ID, m.Micros)
		}
		if seen[m.ID] {
			t.Errorf("duplicate probe id %s", m.ID)
		}
		seen[m.ID] = true
	}
	for _, id := range []string{"fig3-pt2pt-2hca-64k", "fig12a-allgather-MHA-8k",
		"fig15-allreduce-mha-1m", "explore-states-per-sec-4x2",
		"lint-whole-program-us"} {
		if !seen[id] {
			t.Errorf("missing probe %s (have %v)", id, ms)
		}
	}
	var a, b bytes.Buffer
	if err := WriteTier1(&a, Quick); err != nil {
		t.Fatal(err)
	}
	if err := WriteTier1(&b, Quick); err != nil {
		t.Fatal(err)
	}
	// The tuner-* probes are wall-clock serving measurements and drift
	// run to run by design; every modeled probe must render identically.
	if got, want := maskWallClock(t, b.Bytes()), maskWallClock(t, a.Bytes()); got != want {
		t.Fatalf("WriteTier1 modeled probes not deterministic:\n%s\nvs\n%s", want, got)
	}
}

// maskWallClock zeroes the wall-clock (tuner-*, explore-*, lint-*,
// compose-lower-us) probe values in a rendered tier-1 file so
// determinism checks compare only modeled time.
func maskWallClock(t *testing.T, data []byte) string {
	t.Helper()
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("tier-1 render does not parse: %v", err)
	}
	for k := range m {
		if strings.HasPrefix(k, "tuner-") || strings.HasPrefix(k, "explore-") ||
			strings.HasPrefix(k, "lint-") ||
			k == "compose-lower-us" || k == "fabric-route-us" {
			m[k] = 0
		}
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v\n", k, m[k])
	}
	return b.String()
}
