package bench

import "mha/internal/topology"

// Scale selects how big the experiment topologies are. Full reproduces the
// paper's exact shapes (up to 32 nodes x 32 PPN = 1024 simulated ranks);
// Quick shrinks nodes and PPN by 4x each so the whole suite runs in
// seconds, preserving every qualitative shape (who wins, crossovers,
// scaling trends) at reduced magnitude.
type Scale int

const (
	// Quick is the CI-friendly reduction.
	Quick Scale = iota
	// Full is the paper's scale.
	Full
)

func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

func shrink(v, factor, min int) int {
	v /= factor
	if v < min {
		v = min
	}
	return v
}

// Cluster maps a paper topology to the scale's topology. Quick keeps at
// least 4 nodes: a 2-node hierarchy is degenerate (a single inter-leader
// step, nothing to pipeline) and would misrepresent every multi-node
// figure.
func (s Scale) Cluster(nodes, ppn, hcas int) topology.Cluster {
	if s == Quick {
		nodes = shrink(nodes, 4, 4)
		ppn = shrink(ppn, 4, 2)
	}
	return topology.New(nodes, ppn, hcas)
}

// IntraCluster maps a single-node topology (Figure 11): PPN is part of the
// figure's identity, so only very large per-rank sizes shrink, not PPN.
func (s Scale) IntraCluster(ppn, hcas int) topology.Cluster {
	return topology.New(1, ppn, hcas)
}

// Sizes thins a message-size sweep for Quick runs (first, middle, last).
func (s Scale) Sizes(sizes []int) []int {
	if s == Full || len(sizes) <= 3 {
		return sizes
	}
	return []int{sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]}
}

// geometric returns the sizes from lo to hi inclusive, doubling.
func geometric(lo, hi int) []int {
	var out []int
	for n := lo; n <= hi; n *= 2 {
		out = append(out, n)
	}
	return out
}
