package bench

import (
	"fmt"
	"io"

	"mha/internal/netmodel"
	"mha/internal/sched"
	"mha/internal/topology"
)

// runSchedExperiment compares the schedule analyzer's alpha-beta cost
// prediction against the simulated makespan of the same schedule, for
// every lowered design plus the synthesizer's pick, at each machine
// scale. Two things are on trial: model fidelity (the predicted/
// simulated ratio and whether both agree on the winning design) and the
// synthesizer acceptance bar (its emitted schedule must simulate no
// slower than the best hand-written lowering).
func runSchedExperiment(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	const msg = 256 << 10
	topos := []topology.Cluster{
		topology.New(2, 2, 2),
		topology.New(4, 4, 2),
	}
	if sc == Full {
		topos = []topology.Cluster{
			topology.New(2, 2, 2),
			topology.New(4, 4, 2),
			topology.New(4, 8, 2),
			topology.New(8, 16, 2),
		}
	}
	tbl := NewTable(fmt.Sprintf("schedule IR: analyzer cost vs simulated makespan, %d KB", msg>>10),
		"machine", "schedule", "analyzer (us)", "simulated (us)", "ratio", "verdict")
	tbl.Notes = "ratio = analyzer/simulated; 'agree' marks the analyzer and simulator picking the same winner;\n" +
		"the synthesized row must simulate no slower than the best lowering (ties allowed)"
	for _, topo := range topos {
		res, err := sched.Synthesize(topo, prm, msg, sched.SynthOptions{})
		if err != nil {
			return fmt.Errorf("synthesize on %v: %v", topo, err)
		}
		machine := fmt.Sprintf("%dx%dx%d", topo.Nodes, topo.PPN, topo.HCAs)
		byCost, bySim := res.Lowered[0], res.Lowered[0]
		bestHand := res.Lowered[0]
		for _, c := range res.Lowered[1:] {
			if c.Cost < byCost.Cost {
				byCost = c
			}
			if c.Makespan < bySim.Makespan {
				bySim = c
			}
			if c.Makespan < bestHand.Makespan {
				bestHand = c
			}
		}
		for _, c := range res.Lowered {
			verdict := ""
			if c.Name == byCost.Name {
				if byCost.Name == bySim.Name {
					verdict = "winner (agree)"
				} else {
					verdict = "analyzer pick"
				}
			} else if c.Name == bySim.Name {
				verdict = "simulator pick"
			}
			tbl.Add(machine, c.Name, c.Cost.Micros(), c.Makespan.Micros(),
				float64(c.Cost)/float64(c.Makespan), verdict)
		}
		verdict := "<= best lowering"
		if res.Best.Makespan > bestHand.Makespan {
			verdict = fmt.Sprintf("SLOWER than %s", bestHand.Name)
		}
		tbl.Add(machine, "synthesized: "+res.Best.Name, res.Best.Cost.Micros(),
			res.Best.Makespan.Micros(),
			float64(res.Best.Cost)/float64(res.Best.Makespan), verdict)
	}
	return tbl.Fprint(w)
}

func init() {
	register("sched", "schedule IR: analyzer cost vs simulated makespan, synthesized vs lowered", runSchedExperiment)
}
