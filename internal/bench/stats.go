package bench

import (
	"fmt"
	"math"

	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// Stats summarizes a sample of measurements (used by the noise-robustness
// studies, where the simulator's seeded jitter produces distributions).
type Stats struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes sample statistics (population std for N == 1 is 0).
func Summarize(xs []float64) Stats {
	s := Stats{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%.1f±%.1f", s.Mean, s.Std)
}

// AllgatherLatencySeeded measures one allgather under a specific jitter
// seed (Params.Jitter controls the noise amplitude).
func AllgatherLatencySeeded(topo topology.Cluster, prm *netmodel.Params, m int,
	prof collectives.Profile, seed int64) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true, Seed: seed})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		prof.Allgather(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()))
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}

// NoisyAllgather sweeps seeds and returns the latency distribution in
// microseconds.
func NoisyAllgather(topo topology.Cluster, prm *netmodel.Params, m int,
	prof collectives.Profile, seeds int) Stats {
	xs := make([]float64, seeds)
	for s := 0; s < seeds; s++ {
		xs[s] = AllgatherLatencySeeded(topo, prm, m, prof, int64(s)).Micros()
	}
	return Summarize(xs)
}
