package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table accumulates experiment output rows and renders them aligned.
type Table struct {
	Title   string
	Notes   string
	Columns []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FprintCSV renders the table as CSV: a comment line with the title, a
// header row, then the data rows — the machine-readable counterpart of
// Fprint for plotting pipelines.
func (t *Table) FprintCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVMode switches every experiment's Fprint to CSV output. It is set
// once by cmd/mhabench's -csv flag before any experiment runs; the
// harness is single-threaded per process.
var CSVMode bool

// Fprint renders the table (aligned text, or CSV under CSVMode).
func (t *Table) Fprint(w io.Writer) error {
	if CSVMode {
		return t.FprintCSV(w)
	}
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
		return err
	}
	if t.Notes != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Notes); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	return tw.Flush()
}
