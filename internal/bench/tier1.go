package bench

import (
	"encoding/json"
	"io"
	"time"

	"mha/internal/cluster"
	"mha/internal/core"
	"mha/internal/fabric"
	"mha/internal/faults"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// Tier1Metric is one headline modeled-latency probe: a named point taken
// from a paper experiment, measured at a fixed shape and size so future
// PRs can diff the repo's performance trajectory.
type Tier1Metric struct {
	// ID names the probe after the experiment it samples.
	ID string
	// Micros is the probe's value: modeled latency in microseconds for
	// the experiment probes, wall-clock microseconds for the tuner-*
	// serving probes, and wall-clock states/sec for the explore-* probe
	// (the one rate in the set, named accordingly).
	Micros float64
}

// Tier1 measures the headline probes at the given scale. The set is small
// on purpose: one representative point per major experiment family
// (pt2pt, intra-node, inter-node allgather per library, allreduce,
// resilience under a fault schedule).
func Tier1(sc Scale) []Tier1Metric {
	prm := netmodel.Thor()
	profs := Profiles() // HPC-X, MVAPICH2-X, MHA
	inter := sc.Cluster(8, 32, 2)
	intra := topology.New(1, 16, 2)
	demoFaults := faults.MustNew(
		faults.Fault{Kind: faults.Down, Node: 0, Rail: 1, Until: sim.Time(40 * sim.Microsecond)},
		faults.Fault{Kind: faults.Degrade, Node: faults.AllNodes, Rail: 1,
			Fraction: 0.5, From: sim.Time(40 * sim.Microsecond)},
	)
	mhaFaulted, _ := FaultedAllgatherLatency(topology.New(4, 4, 2), prm, 64<<10,
		core.MHAAllgather, demoFaults, false)

	out := []Tier1Metric{
		{"fig3-pt2pt-2hca-64k", PtPtLatency(topology.New(2, 1, 2), prm, 64<<10).Micros()},
		{"fig3-pt2pt-1hca-64k", PtPtLatency(topology.New(2, 1, 1), prm, 64<<10).Micros()},
		{"fig11d-intra-mha-64k", AllgatherLatency(intra, prm, 64<<10, core.Profile()).Micros()},
		{"ext-faults-mha-4x4-64k", mhaFaulted.Micros()},
	}
	for _, prof := range profs {
		out = append(out, Tier1Metric{
			ID:     "fig12a-allgather-" + prof.Name + "-8k",
			Micros: AllgatherLatency(inter, prm, 8<<10, prof).Micros(),
		})
		out = append(out, Tier1Metric{
			ID:     "fig12b-allgather-" + prof.Name + "-256k",
			Micros: AllgatherLatency(inter, prm, 256<<10, prof).Micros(),
		})
	}
	out = append(out, Tier1Metric{
		ID:     "fig15-allreduce-mha-1m",
		Micros: AllreduceLatency(inter, prm, 1<<20, core.Profile()).Micros(),
	})
	// Fabric probes: the locality-ring allgather on a 2:1-oversubscribed
	// fat-tree (modeled), and the wall-clock cost of building a fabric's
	// route table.
	ftSpec := fabric.Spec{Kind: fabric.FatTree, Arity: 2, Levels: 2, Over: []float64{2}}
	out = append(out, Tier1Metric{
		ID:     "fabric-ft-ag-4x2x2-64k",
		Micros: FabricAllgatherLatency(topology.New(4, 2, 2), prm, 64<<10, &ftSpec, "locality-ring").Micros(),
	})
	out = append(out, Tier1Metric{
		ID:     "fabric-route-us",
		Micros: FabricRouteMicros(),
	})
	clusterTopo := topology.New(8, 4, 2)
	for _, policy := range []string{cluster.Packed, cluster.RailAware} {
		d, err := ClusterBurstMakespan(clusterTopo, policy)
		if err != nil {
			continue // a scheduler regression shows up as a missing probe
		}
		out = append(out, Tier1Metric{
			ID:     "cluster-" + policy + "-burst-makespan",
			Micros: d.Micros(),
		})
	}
	// Composition-layer probes: the modeled latency of the derived
	// reduce-scatter on a small dual-rail machine, and the wall-clock
	// cost of one hierarchy-compiler Lower (the only non-deterministic
	// number besides the tuner/explore probes).
	if d, err := ComposeLatency("compose-rs", topology.New(4, 2, 2), 64<<10); err == nil {
		out = append(out, Tier1Metric{
			ID:     "compose-rs-4x2x2-64k",
			Micros: d.Micros(),
		})
	}
	if us, err := ComposeLowerMicros(); err == nil && us > 0 {
		out = append(out, Tier1Metric{
			ID:     "compose-lower-us",
			Micros: us,
		})
	}
	// Autotuner-service probes: the only wall-clock (non-deterministic)
	// tier-1 numbers — a cold-miss synthesis latency and the per-decision
	// cost of the warm cache under load (1e6/us = decisions/sec).
	if d, err := TunerColdSynthLatency(); err == nil {
		out = append(out, Tier1Metric{
			ID:     "tuner-cold-synth-2x8x2-64k",
			Micros: float64(d) / float64(time.Microsecond),
		})
	}
	if rep, err := TunerWarmThroughput(50000); err == nil && rep.PerSec > 0 {
		out = append(out, Tier1Metric{
			ID:     "tuner-warm-decision-us",
			Micros: 1e6 / rep.PerSec,
		})
	}
	// Model-checker probe, also wall clock: visited engine states per
	// second while exhausting the 4-rank dual-rail ring exploration.
	if rate, err := ExploreStatesPerSec(); err == nil && rate > 0 {
		out = append(out, Tier1Metric{
			ID:     "explore-states-per-sec-4x2",
			Micros: rate,
		})
	}
	// Static-analysis probe, wall clock: one full whole-program mhalint
	// cycle over a representative package (CI pays this on every push).
	if us, err := LintWholeProgramMicros(); err == nil && us > 0 {
		out = append(out, Tier1Metric{
			ID:     "lint-whole-program-us",
			Micros: us,
		})
	}
	return out
}

// WriteTier1 renders the probes as a JSON object (probe id -> modeled
// latency in microseconds, keys sorted) — the BENCH_tier1.json format.
func WriteTier1(w io.Writer, sc Scale) error {
	m := map[string]float64{}
	for _, p := range Tier1(sc) {
		m[p.ID] = p.Micros
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
