package bench

// Autotuner-service probes. Unlike the other tier-1 probes, which report
// modeled (virtual-time) latencies, these two measure the daemon's own
// wall-clock serving performance: what a client pays for a cold
// synthesis, and what the warm cache sustains under concurrent load.
// They are therefore the only tier-1 numbers expected to drift run to
// run; the trajectory that matters is their order of magnitude.

import (
	"time"

	"mha/internal/sched"
	"mha/internal/tuner"
)

// tunerService builds the service the probes measure, with the same
// search strength the daemon defaults to.
func tunerService() *tuner.Service {
	return tuner.New(tuner.Config{Capacity: 64})
}

// TunerColdSynthLatency measures one cold autotuner decision end to end
// — canonicalize, beam-synthesize, analyze, encode — for a dual-rail
// 2x8 node pair at 64 KiB, the daemon's representative cold-miss cost.
func TunerColdSynthLatency() (time.Duration, error) {
	s := tunerService()
	q := tuner.Query{Nodes: 2, PPN: 8, HCAs: 2, Msg: 64 << 10}
	start := time.Now()
	if _, err := s.Decide(q); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// tunerWarmQueries is the warm-throughput probe's query mix: small
// shapes so warming is cheap; the warm path's cost is independent of the
// shape behind the cache key.
func tunerWarmQueries() []tuner.Query {
	return []tuner.Query{
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 4 << 10},
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 64 << 10},
		{Nodes: 2, PPN: 4, HCAs: 2, Msg: 16 << 10},
		{Nodes: 1, PPN: 4, HCAs: 2, Msg: 8 << 10},
	}
}

// TunerWarmThroughput warms a service and drives the synthetic load
// generator over the cached keys, returning the sustained decision rate.
// The acceptance bar is >= 1e5 cached decisions/sec (tested in
// tunerexp_test.go); a healthy run is well above it.
func TunerWarmThroughput(requests int) (tuner.LoadReport, error) {
	// Warming uses a reduced search only to keep the probe quick; the
	// warm path being measured never touches the synthesizer.
	s := tuner.New(tuner.Config{Capacity: 64, Synth: sched.SynthOptions{Beam: 3, Rounds: 3}})
	queries := tunerWarmQueries()
	for _, q := range queries {
		if _, err := s.Decide(q); err != nil {
			return tuner.LoadReport{}, err
		}
	}
	return tuner.RunLoad(s, tuner.LoadOptions{Workers: 4, Requests: requests, Queries: queries})
}
