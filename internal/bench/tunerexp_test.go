package bench

import (
	"testing"
	"time"
)

func TestTunerColdSynthLatency(t *testing.T) {
	d, err := TunerColdSynthLatency()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("non-positive cold-synthesis latency %v", d)
	}
	if d > time.Minute {
		t.Fatalf("cold synthesis took %v; the probe shape should be interactive", d)
	}
	t.Logf("cold synthesis: %v", d)
}

// TestTunerWarmThroughput is the acceptance bar for the warm-cache
// probe: the load generator must sustain at least 1e5 cached
// decisions/sec. A healthy run is an order of magnitude above the bar;
// skipped under -short so the race-detector CI step (which slows the
// hot path ~10x) is not held to a wall-clock promise.
func TestTunerWarmThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock throughput bar; skipped in -short")
	}
	rep, err := TunerWarmThroughput(100000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits != int64(rep.Requests) {
		t.Errorf("warm run saw %d hits out of %d requests", rep.Hits, rep.Requests)
	}
	const bar = 1e5
	if rep.PerSec < bar {
		t.Errorf("warm cache sustained %.0f decisions/sec, want >= %.0f", rep.PerSec, bar)
	}
	t.Logf("warm load: %v", rep)
}
