package bench

import (
	"fmt"
	"io"
	"math"

	"mha/internal/core"
	"mha/internal/netmodel"
	"mha/internal/perfmodel"
	"mha/internal/topology"
)

// ValidationPoint is one (shape, size) comparison of the analytic model
// against the simulator.
type ValidationPoint struct {
	Topo      topology.Cluster
	Bytes     int
	ActualUS  float64
	PredictUS float64
}

// Ratio returns actual/predicted.
func (v ValidationPoint) Ratio() float64 { return v.ActualUS / v.PredictUS }

// GridValidation sweeps the cross product of shapes and sizes, comparing
// the simulator against the Section 4 cost model (MHA-inter with the
// tuned phase-2 algorithm on both sides). It generalizes the paper's
// Figures 9 and 10 from two curves to the whole parameter space.
func GridValidation(prm *netmodel.Params, shapes []topology.Cluster, sizes []int) []ValidationPoint {
	var out []ValidationPoint
	for _, topo := range shapes {
		pm := perfmodel.New(prm, topo)
		for _, m := range sizes {
			var actual, predicted float64
			if topo.Nodes == 1 {
				actual = core.MeasureIntra(topo, prm, m, core.AutoOffload).Micros()
				predicted = pm.MHAIntra(m).Micros()
			} else {
				actual = core.MeasureInter(topo, prm, m, core.InterConfig{}).Micros()
				p := pm.MHAInterRing(m)
				if rd := pm.MHAInterRD(m); rd < p {
					p = rd
				}
				predicted = p.Micros()
			}
			out = append(out, ValidationPoint{Topo: topo, Bytes: m, ActualUS: actual, PredictUS: predicted})
		}
	}
	return out
}

// ValidationSummary aggregates a grid into fidelity statistics.
type ValidationSummary struct {
	Points int
	// GeoMeanRatio is the geometric mean of actual/predicted (1 = perfect
	// on average; the right mean for ratios).
	GeoMeanRatio float64
	// WorstRatio is the ratio farthest from 1 in either direction.
	WorstRatio float64
	// Within25 and Within50 count points whose ratio lies within 25%/50%
	// of 1.
	Within25, Within50 int
}

// Summarize computes the grid's fidelity statistics.
func SummarizeValidation(pts []ValidationPoint) ValidationSummary {
	s := ValidationSummary{Points: len(pts), WorstRatio: 1}
	if len(pts) == 0 {
		return s
	}
	logSum := 0.0
	for _, p := range pts {
		r := p.Ratio()
		logSum += math.Log(r)
		if math.Abs(math.Log(r)) > math.Abs(math.Log(s.WorstRatio)) {
			s.WorstRatio = r
		}
		if r >= 0.8 && r <= 1.25 {
			s.Within25++
		}
		if r >= 2.0/3.0 && r <= 1.5 {
			s.Within50++
		}
	}
	s.GeoMeanRatio = math.Exp(logSum / float64(len(pts)))
	return s
}

// runExtValidate is the ext-validate experiment: a model-fidelity report
// over a grid of shapes and sizes.
func runExtValidate(w io.Writer, sc Scale) error {
	prm := netmodel.Thor()
	shapes := []topology.Cluster{
		topology.New(1, 4, 2), topology.New(1, 16, 2),
		topology.New(4, 8, 2), topology.New(8, 16, 2),
	}
	if sc == Full {
		shapes = append(shapes, topology.New(8, 32, 2), topology.New(16, 32, 2))
	}
	sizes := sc.Sizes(geometric(4<<10, 1<<20))
	pts := GridValidation(prm, shapes, sizes)
	t := NewTable("Extension: model-fidelity grid (Figures 9-10 generalized)",
		"shape", "size", "actual (us)", "predicted (us)", "ratio")
	for _, p := range pts {
		t.Add(p.Topo.String(), SizeLabel(p.Bytes), p.ActualUS, p.PredictUS,
			fmt.Sprintf("%.2f", p.Ratio()))
	}
	s := SummarizeValidation(pts)
	t.Notes = fmt.Sprintf("%d points; geometric-mean ratio %.2f; worst %.2f; %d/%d within 25%%, %d/%d within 50%%",
		s.Points, s.GeoMeanRatio, s.WorstRatio, s.Within25, s.Points, s.Within50, s.Points)
	return t.Fprint(w)
}

func init() {
	register("ext-validate", "extension: model-fidelity grid across shapes and sizes", runExtValidate)
}
