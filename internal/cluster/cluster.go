// Package cluster is a multi-tenant job scheduler for the simulated
// fabric: it admits a stream of collective jobs (allgather, allreduce,
// bcast, reduce-scatter, alltoall, gather and scatter over rank
// subsets) and runs them concurrently on ONE shared mpi.World, so jobs genuinely contend for HCA rails, leaf uplinks, and
// memory buses — the regime any production deployment lives in and the
// single-job experiments cannot measure.
//
// The scheduler itself is a simulated process: job arrivals are events,
// admission decisions happen in virtual time, and every rank is a worker
// that loops on a control mailbox, executing whichever job's collective
// it was placed into. Everything is deterministic — the same Config and
// job list produce bit-identical schedules, metrics, and trace hashes.
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"mha/internal/collectives"
	"mha/internal/compose"
	"mha/internal/faults"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

// Coll identifies which collective a job runs.
type Coll int

// The collectives the scheduler can run. The last four are derived by
// the compose layer and dispatch through its goal interpreter.
const (
	Allgather Coll = iota
	Allreduce
	Bcast
	ReduceScatter
	Alltoall
	Gather
	Scatter
)

func (c Coll) String() string {
	switch c {
	case Allgather:
		return "allgather"
	case Allreduce:
		return "allreduce"
	case Bcast:
		return "bcast"
	case ReduceScatter:
		return "reduce-scatter"
	case Alltoall:
		return "alltoall"
	case Gather:
		return "gather"
	case Scatter:
		return "scatter"
	}
	return fmt.Sprintf("coll(%d)", int(c))
}

// JobSpec is one tenant's request: a collective over some number of
// ranks, arriving at a virtual time.
type JobSpec struct {
	// ID names the job in metrics, traces, and audit attributions.
	ID int
	// Coll is the collective to run.
	Coll Coll
	// Alg picks the algorithm variant ("" = the collective's default:
	// ring for allgather, allreduce and reduce-scatter, binomial for
	// bcast, direct for alltoall, gather and scatter). Allgather also
	// accepts "rd", "bruck", "direct"; allreduce accepts "rd".
	Alg string
	// Msg is the payload size in bytes: per-rank contribution for
	// allgather, whole buffer for allreduce (multiple of 8) and bcast,
	// and per-slot payload for the compose-derived collectives (a
	// reduce-scatter job's send buffer is Ranks*Msg bytes).
	Msg int
	// Ranks is how many ranks the job needs (1..world size).
	Ranks int
	// Arrival is when the job enters the admission queue.
	Arrival sim.Time
	// Priority orders admission under Queue="priority" (higher first).
	Priority int
}

// Config describes one scheduler run.
type Config struct {
	// Topo is the shared fabric every job contends on (required).
	Topo topology.Cluster
	// Params is the communication cost model; nil means netmodel.Thor().
	Params *netmodel.Params
	// Policy places admitted jobs onto free ranks: "packed", "spread",
	// or "rail-aware" ("" = packed). See policy.go.
	Policy string
	// Queue orders admission: "fifo" (strict arrival order) or
	// "priority" (highest Priority first, ties by arrival). "" = fifo.
	// Both queues are head-of-line blocking: when the next job does not
	// fit, nothing behind it is admitted — the backpressure that makes
	// queue-wait measurable.
	Queue string
	// MaxInFlight caps how many jobs run concurrently (0 = unlimited).
	// It is the backpressure knob: 1 serializes the cluster, higher
	// values trade queue wait for contention slowdown.
	MaxInFlight int
	// Payload runs every job with real buffers and byte-checks each
	// result against its oracle; failures land in Result.Errors.
	// Without it, buffers are phantom (sizes only).
	Payload bool
	// Tracer, when non-nil, records every event of every job plus the
	// scheduler's admission decisions (trace.CatJob).
	Tracer *trace.Recorder
	// Seed feeds the world's jitter RNG (only used when Params.Jitter>0).
	Seed int64
	// Faults degrades rails over the run; the rail-aware policy also
	// reads it when ranking nodes.
	Faults *faults.Schedule
	// FaultBlind disables health-aware transport selection (see mpi).
	FaultBlind bool
	// SkipIsolated skips the per-job isolated-baseline runs; Slowdown
	// and the slowdown aggregates are then zero.
	SkipIsolated bool
}

// JobMetrics is what one job experienced on the shared cluster.
type JobMetrics struct {
	Spec JobSpec
	// Placement is the world ranks the job ran on, in comm-rank order.
	Placement []int
	// Start is when the job was admitted and dispatched; End is when its
	// last rank finished the collective.
	Start, End sim.Time
	// Wait is Start - Arrival: time spent in the admission queue.
	Wait sim.Duration
	// Makespan is End - Start: the job's contended runtime.
	Makespan sim.Duration
	// Isolated is the same job's runtime alone on an idle, healthy
	// fabric with the same placement (0 when SkipIsolated).
	Isolated sim.Duration
	// Slowdown is Makespan/Isolated (0 when SkipIsolated).
	Slowdown float64
	// RailShare approximates how occupied the job's nodes' rails were
	// during its run: the busy-time booked on those rails over the job's
	// window divided by their capacity. Competing jobs sharing the nodes
	// count too — by design, it is a contention gauge.
	RailShare float64
}

// Result aggregates a scheduler run.
type Result struct {
	// Jobs holds per-job metrics in input order.
	Jobs []JobMetrics
	// Makespan is when the last job finished.
	Makespan sim.Time
	// MeanWait averages queue wait across jobs.
	MeanWait sim.Duration
	// MeanSlowdown / MaxSlowdown aggregate contended-vs-isolated ratios
	// (0 when SkipIsolated).
	MeanSlowdown, MaxSlowdown float64
	// Hash fingerprints the trace (0 without a Tracer) — two runs of the
	// same Config must agree.
	Hash uint64
	// Errors collects byte-check failures (Payload mode only).
	Errors []string
}

// Control-plane messages. Workers and the scheduler exchange them through
// sim mailboxes, so every decision happens at a deterministic virtual
// time.
type (
	arrivalMsg struct{ idx int }
	doneMsg    struct{ jobID, worldRank int }
	assignMsg  struct {
		job  JobSpec
		comm *mpi.Comm
	}
	stopMsg struct{}
)

// runInfo is the scheduler's state for one in-flight job.
type runInfo struct {
	idx       int // index into the jobs slice
	remaining int // ranks that have not reported completion yet
	placement []int
	nodes     []int
	start     sim.Time
	busyAt    sim.Duration // rail busy-time on the job's nodes at dispatch
}

// Validate reports why the configuration or job list is not runnable.
func Validate(cfg Config, jobs []JobSpec) error {
	if err := cfg.Topo.Validate(); err != nil {
		return err
	}
	switch cfg.Policy {
	case "", Packed, Spread, RailAware:
	default:
		return fmt.Errorf("cluster: unknown policy %q (have %v)", cfg.Policy, Policies())
	}
	switch cfg.Queue {
	case "", "fifo", "priority":
	default:
		return fmt.Errorf("cluster: unknown queue %q (fifo or priority)", cfg.Queue)
	}
	if cfg.MaxInFlight < 0 {
		return fmt.Errorf("cluster: negative MaxInFlight %d", cfg.MaxInFlight)
	}
	if len(jobs) == 0 {
		return fmt.Errorf("cluster: no jobs")
	}
	size := cfg.Topo.Size()
	seen := map[int]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			return fmt.Errorf("cluster: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if j.Ranks < 1 || j.Ranks > size {
			return fmt.Errorf("cluster: job %d needs %d ranks, world has %d", j.ID, j.Ranks, size)
		}
		if j.Msg < 0 {
			return fmt.Errorf("cluster: job %d has negative message size", j.ID)
		}
		if j.Coll == Allreduce && j.Msg%8 != 0 {
			return fmt.Errorf("cluster: job %d: allreduce size %d is not a multiple of 8", j.ID, j.Msg)
		}
		if j.Arrival < 0 {
			return fmt.Errorf("cluster: job %d arrives at negative time", j.ID)
		}
		if _, err := jobRunner(j); err != nil {
			return fmt.Errorf("cluster: job %d: %v", j.ID, err)
		}
	}
	if cfg.Faults.Len() > 0 {
		if err := cfg.Faults.Check(cfg.Topo.Nodes, cfg.Topo.HCAs); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the job stream on one shared world and returns per-job and
// aggregate metrics. The run is deterministic: identical inputs give
// identical schedules, metrics, and (with a Tracer) trace hashes.
func Run(cfg Config, jobs []JobSpec) (*Result, error) {
	if err := Validate(cfg, jobs); err != nil {
		return nil, err
	}
	w := mpi.New(mpi.Config{
		Topo: cfg.Topo, Params: cfg.Params, Tracer: cfg.Tracer,
		Phantom: !cfg.Payload, Seed: cfg.Seed,
		Faults: cfg.Faults, FaultBlind: cfg.FaultBlind,
	})
	eng := w.Engine()
	size := cfg.Topo.Size()

	schedM := eng.NewMailbox("cluster.sched")
	schedM.SetOwner("cluster-scheduler")
	ctl := make([]*sim.Mailbox, size)
	for r := range ctl {
		ctl[r] = eng.NewMailbox(fmt.Sprintf("cluster.ctl%d", r))
		ctl[r].SetOwner("cluster-scheduler")
	}
	// Arrivals are pre-deposited events: the scheduler just consumes its
	// mailbox and the engine delivers everything in virtual-time order.
	for i, j := range jobs {
		schedM.PutAt(j.Arrival, arrivalMsg{idx: i})
	}

	metrics := make([]JobMetrics, len(jobs))
	for i, j := range jobs {
		metrics[i] = JobMetrics{Spec: j, Wait: -1}
	}
	var errMu sync.Mutex
	var errs []string
	report := func(s string) {
		errMu.Lock()
		if len(errs) < 32 {
			errs = append(errs, s)
		}
		errMu.Unlock()
	}
	any := func(interface{}) bool { return true }

	eng.Spawn("cluster.sched", func(sp *sim.Proc) {
		free := make([]bool, size)
		for i := range free {
			free[i] = true
		}
		jobsOnNode := make([]int, cfg.Topo.Nodes)
		var queue []int // indices into jobs, in arrival order
		running := map[int]*runInfo{}
		left := len(jobs)
		for left > 0 {
			switch m := schedM.Get(sp, "cluster event", any).(type) {
			case arrivalMsg:
				queue = append(queue, m.idx)
			case doneMsg:
				info := running[m.jobID]
				free[m.worldRank] = true
				info.remaining--
				if info.remaining == 0 {
					now := sp.Now()
					jm := &metrics[info.idx]
					jm.End = now
					jm.Makespan = sim.Duration(now - jm.Start)
					jm.RailShare = railShare(w, info, now, cfg.Topo.HCAs)
					for _, nd := range info.nodes {
						jobsOnNode[nd]--
					}
					delete(running, m.jobID)
					left--
					jobTrace(cfg.Tracer, info.placement[0], now,
						fmt.Sprintf("finish job%d", m.jobID), jobs[info.idx].Msg)
				}
			}
			// Admission: head-of-line blocking on the queue's next pick,
			// bounded by the MaxInFlight backpressure knob.
			for len(queue) > 0 {
				if cfg.MaxInFlight > 0 && len(running) >= cfg.MaxInFlight {
					break
				}
				pos := pickNext(queue, jobs, cfg.Queue)
				job := jobs[queue[pos]]
				now := sp.Now()
				placement := place(cfg.Policy, w, free, jobsOnNode, job.Ranks, now)
				if placement == nil {
					break // not enough free ranks: wait for a completion
				}
				idx := queue[pos]
				queue = append(queue[:pos], queue[pos+1:]...)
				info := &runInfo{idx: idx, remaining: job.Ranks, placement: placement, start: now}
				for _, r := range placement {
					free[r] = false
				}
				info.nodes = placementNodes(cfg.Topo, placement)
				for _, nd := range info.nodes {
					jobsOnNode[nd]++
				}
				info.busyAt = railBusy(w, info.nodes)
				running[job.ID] = info
				comm := w.NewComm(placement)
				comm.SetOwner(fmt.Sprintf("job%d", job.ID))
				jm := &metrics[idx]
				jm.Start = now
				jm.Wait = sim.Duration(now - job.Arrival)
				jm.Placement = placement
				jobTrace(cfg.Tracer, placement[0], now,
					fmt.Sprintf("dispatch job%d(%s %s x%d)", job.ID, job.Coll, algName(job), job.Ranks), job.Msg)
				for _, r := range placement {
					ctl[r].PutAt(now, assignMsg{job: job, comm: comm})
				}
			}
		}
		for _, mb := range ctl {
			mb.PutAt(sp.Now(), stopMsg{})
		}
	})

	err := w.Run(func(p *mpi.Proc) {
		sp := p.Sim()
		mb := ctl[p.Rank()]
		for {
			switch m := mb.Get(sp, "cluster assignment", any).(type) {
			case stopMsg:
				return
			case assignMsg:
				runJob(p, m.job, m.comm, cfg.Payload, report)
				schedM.PutAt(p.Now(), doneMsg{jobID: m.job.ID, worldRank: p.Rank()})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if terr := w.VerifyTeardown(); terr != nil {
		return nil, terr
	}

	res := &Result{Jobs: metrics, Makespan: eng.Stats().Now, Errors: errs, Hash: cfg.Tracer.Hash()}
	iso := map[string]sim.Duration{}
	for i := range res.Jobs {
		jm := &res.Jobs[i]
		res.MeanWait += jm.Wait
		if !cfg.SkipIsolated {
			jm.Isolated = isolatedTime(cfg, jm.Spec, jm.Placement, iso)
			if jm.Isolated > 0 {
				jm.Slowdown = float64(jm.Makespan) / float64(jm.Isolated)
			}
			res.MeanSlowdown += jm.Slowdown
			if jm.Slowdown > res.MaxSlowdown {
				res.MaxSlowdown = jm.Slowdown
			}
		}
	}
	res.MeanWait /= sim.Duration(len(jobs))
	res.MeanSlowdown /= float64(len(jobs))
	return res, nil
}

// jobTrace records a scheduler decision on the job's lead rank's lane.
func jobTrace(rec *trace.Recorder, rank int, at sim.Time, name string, bytes int) {
	if rec == nil {
		return
	}
	rec.Add(trace.Event{Rank: rank, Cat: trace.CatJob, Name: name,
		Start: at, End: at, Peer: -1, Bytes: bytes})
}

// pickNext returns the position in queue of the job to admit next: the
// head for FIFO, the highest-priority job (ties to arrival order) for the
// priority queue.
func pickNext(queue []int, jobs []JobSpec, q string) int {
	if q != "priority" {
		return 0
	}
	best := 0
	for i := 1; i < len(queue); i++ {
		if jobs[queue[i]].Priority > jobs[queue[best]].Priority {
			best = i
		}
	}
	return best
}

// placementNodes returns the distinct nodes of a placement, ascending.
func placementNodes(topo topology.Cluster, placement []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range placement {
		nd := topo.NodeOf(r)
		if !seen[nd] {
			seen[nd] = true
			out = append(out, nd)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// railBusy sums the booked busy-time of every rail engine on the given
// nodes.
func railBusy(w *mpi.World, nodes []int) sim.Duration {
	var sum sim.Duration
	for _, st := range w.RailStats() {
		for _, nd := range nodes {
			if st.Node == nd {
				sum += st.TxBusy + st.RxBusy
			}
		}
	}
	return sum
}

// railShare computes the fraction of the job's nodes' rail capacity that
// was booked during its run window: busy-time delta on those rails
// divided by (2 engines x rails x nodes x window). Busy time is booked at
// acquire time, so transfers posted near the end that drain later are
// charged in full — the metric is an occupancy gauge, not an exact
// integral, and competing jobs on shared nodes count by design.
func railShare(w *mpi.World, info *runInfo, end sim.Time, hcas int) float64 {
	window := sim.Duration(end - info.start)
	capacity := float64(2*hcas*len(info.nodes)) * float64(window)
	if capacity <= 0 {
		return 0
	}
	delta := float64(railBusy(w, info.nodes) - info.busyAt)
	if delta < 0 {
		return 0
	}
	return delta / capacity
}

// isolatedTime measures the job alone on a fresh, idle, healthy fabric
// with the same shape and placement — the denominator of Slowdown.
// Buffers are phantom (the byte-level check already ran on the shared
// world). Results are cached per (collective, alg, msg, placement).
func isolatedTime(cfg Config, job JobSpec, placement []int, cache map[string]sim.Duration) sim.Duration {
	key := fmt.Sprintf("%d|%s|%d|%v", job.Coll, algName(job), job.Msg, placement)
	if d, ok := cache[key]; ok {
		return d
	}
	w := mpi.New(mpi.Config{Topo: cfg.Topo, Params: cfg.Params, Phantom: true, Seed: cfg.Seed})
	comm := w.NewComm(placement)
	if err := w.Run(func(p *mpi.Proc) {
		if comm.Rank(p) < 0 {
			return
		}
		runJob(p, job, comm, false, nil)
	}); err != nil {
		panic(fmt.Sprintf("cluster: isolated baseline for job %d failed: %v", job.ID, err))
	}
	d := sim.Duration(w.Engine().Stats().Now)
	cache[key] = d
	return d
}

// algName resolves a job's effective algorithm name.
func algName(job JobSpec) string {
	if job.Alg != "" {
		return job.Alg
	}
	switch job.Coll {
	case Bcast:
		return "binomial"
	case Alltoall, Gather, Scatter:
		return "direct"
	default:
		return "ring"
	}
}

// jobRunner resolves the collective body for a job, or an error when the
// (collective, algorithm) pair is unknown.
func jobRunner(job JobSpec) (func(p *mpi.Proc, c *mpi.Comm, payload bool, report func(string)), error) {
	switch job.Coll {
	case Allgather:
		ag, ok := collectives.AllgatherByName(algName(job))
		if !ok {
			return nil, fmt.Errorf("unknown allgather algorithm %q", job.Alg)
		}
		return func(p *mpi.Proc, c *mpi.Comm, payload bool, report func(string)) {
			runAllgather(p, c, job, ag, payload, report)
		}, nil
	case Allreduce:
		var ar func(*mpi.Proc, *mpi.Comm, mpi.Buf, collectives.Reducer)
		switch algName(job) {
		case "ring":
			ar = collectives.RingAllreduce
		case "rd":
			ar = collectives.RDAllreduce
		default:
			return nil, fmt.Errorf("unknown allreduce algorithm %q", job.Alg)
		}
		return func(p *mpi.Proc, c *mpi.Comm, payload bool, report func(string)) {
			runAllreduce(p, c, job, ar, payload, report)
		}, nil
	case Bcast:
		if algName(job) != "binomial" {
			return nil, fmt.Errorf("unknown bcast algorithm %q", job.Alg)
		}
		return func(p *mpi.Proc, c *mpi.Comm, payload bool, report func(string)) {
			runBcast(p, c, job, payload, report)
		}, nil
	case ReduceScatter, Alltoall, Gather, Scatter:
		comp, err := flatComposition(job)
		if err != nil {
			return nil, err
		}
		return func(p *mpi.Proc, c *mpi.Comm, payload bool, report func(string)) {
			runComposed(p, c, job, comp, payload, report)
		}, nil
	}
	return nil, fmt.Errorf("unknown collective %v", job.Coll)
}

// flatComposition maps a derived-collective job to its flat compose
// pipeline — the compose layer's registration point is the only place
// these algorithms are defined. Flat pipelines run on arbitrary
// sub-communicators; the transport still routes each transfer over CMA
// or the rails by the ranks' real placement.
func flatComposition(job JobSpec) (compose.Composition, error) {
	var coll compose.Collective
	var def string
	switch job.Coll {
	case ReduceScatter:
		coll, def = compose.ReduceScatter, "ring"
	case Alltoall:
		coll, def = compose.Alltoall, "direct"
	case Gather:
		coll, def = compose.Gather, "direct"
	case Scatter:
		coll, def = compose.Scatter, "direct"
	default:
		return compose.Composition{}, fmt.Errorf("collective %v is not compose-derived", job.Coll)
	}
	if algName(job) != def {
		return compose.Composition{}, fmt.Errorf("unknown %s algorithm %q", job.Coll, job.Alg)
	}
	return compose.Flat(coll), nil
}

// runComposed lowers the job's composition for a flat machine of the
// communicator's size and runs it under the goal interpreter with the
// ByteSum fold. In payload mode the result is byte-checked against the
// collective's oracle over the job's pattern.
func runComposed(p *mpi.Proc, c *mpi.Comm, job JobSpec, comp compose.Composition,
	payload bool, report func(string)) {
	n, m := c.Size(), job.Msg
	flat := compose.NewHierarchy(topology.Cluster{Nodes: 1, PPN: n, HCAs: 1, Layout: topology.Block})
	plan, err := compose.Lower(comp, flat, m, nil)
	if err != nil {
		panic(fmt.Sprintf("cluster: job %d: %v", job.ID, err))
	}
	sendLen, recvLen := compose.Geometry(comp.Coll, n, m)
	send := mpi.Make(sendLen, !payload)
	recv := mpi.Make(recvLen, !payload)
	me := c.Rank(p)
	if payload {
		for i := range send.Data() {
			send.Data()[i] = jobPat(job.ID, me, i)
		}
	}
	compose.ExecutePlanOn(p, c, plan, send, recv)
	if !payload || report == nil {
		return
	}
	data := recv.Data()
	for blk := 0; m > 0 && blk*m < len(data); blk++ {
		for i := 0; i < m; i++ {
			b, want := data[blk*m+i], jobExpByte(comp.Coll, job.ID, n, m, me, blk, i)
			if b != want {
				report(fmt.Sprintf("job %d rank %d: %s block %d byte %d = %#02x, want %#02x",
					job.ID, p.Rank(), job.Coll, blk, i, b, want))
				break
			}
		}
	}
}

// jobExpByte is the oracle for byte i of receive block blk at comm
// rank me of a compose-derived job, under the jobPat fill (see the
// analogous oracle in internal/verify).
func jobExpByte(coll compose.Collective, jobID, n, m, me, blk, i int) byte {
	switch coll {
	case compose.ReduceScatter:
		var s byte
		for r := 0; r < n; r++ {
			s += jobPat(jobID, r, me*m+i)
		}
		return s
	case compose.Alltoall:
		return jobPat(jobID, blk, me*m+i)
	case compose.Gather:
		if me != 0 {
			return 0
		}
		return jobPat(jobID, blk, i)
	case compose.Scatter:
		return jobPat(jobID, 0, me*m+i)
	default:
		panic("cluster: no oracle for collective " + coll.String())
	}
}

// runJob executes one job's collective on its communicator and, in
// payload mode, byte-checks this rank's result against the job's oracle.
func runJob(p *mpi.Proc, job JobSpec, c *mpi.Comm, payload bool, report func(string)) {
	run, err := jobRunner(job)
	if err != nil {
		panic(err) // Validate rejected this before the run started
	}
	run(p, c, payload, report)
}

// jobPat is byte i of comm-rank r's contribution to a job: the pattern
// differs per job so cross-job payload mixups surface as byte mismatches.
func jobPat(jobID, r, i int) byte { return byte(jobID*29 + r*131 + i*7 + 3) }

func runAllgather(p *mpi.Proc, c *mpi.Comm, job JobSpec,
	ag func(*mpi.Proc, *mpi.Comm, mpi.Buf, mpi.Buf), payload bool, report func(string)) {
	n, m := c.Size(), job.Msg
	send := mpi.Make(m, !payload)
	me := c.Rank(p)
	if payload {
		for i := range send.Data() {
			send.Data()[i] = jobPat(job.ID, me, i)
		}
	}
	recv := mpi.Make(n*m, !payload)
	ag(p, c, send, recv)
	if !payload || report == nil {
		return
	}
	for r := 0; r < n; r++ {
		blk := recv.Data()[r*m : (r+1)*m]
		for i, b := range blk {
			if b != jobPat(job.ID, r, i) {
				report(fmt.Sprintf("job %d rank %d: allgather block %d byte %d = %#02x, want %#02x",
					job.ID, p.Rank(), r, i, b, jobPat(job.ID, r, i)))
				break
			}
		}
	}
}

func runAllreduce(p *mpi.Proc, c *mpi.Comm, job JobSpec,
	ar func(*mpi.Proc, *mpi.Comm, mpi.Buf, collectives.Reducer), payload bool, report func(string)) {
	n := c.Size()
	buf := mpi.Make(job.Msg, !payload)
	me := c.Rank(p)
	vals := job.Msg / 8
	// Integer-valued float64 contributions sum exactly, so the oracle is
	// an equality check, not an epsilon comparison.
	contrib := func(r, k int) float64 { return float64(job.ID%13 + r + k%16) }
	if payload {
		for k := 0; k < vals; k++ {
			binary.LittleEndian.PutUint64(buf.Data()[k*8:], math.Float64bits(contrib(me, k)))
		}
	}
	ar(p, c, buf, collectives.SumF64())
	if !payload || report == nil {
		return
	}
	for k := 0; k < vals; k++ {
		want := 0.0
		for r := 0; r < n; r++ {
			want += contrib(r, k)
		}
		got := math.Float64frombits(binary.LittleEndian.Uint64(buf.Data()[k*8:]))
		if got != want {
			report(fmt.Sprintf("job %d rank %d: allreduce value %d = %g, want %g",
				job.ID, p.Rank(), k, got, want))
			break
		}
	}
}

func runBcast(p *mpi.Proc, c *mpi.Comm, job JobSpec, payload bool, report func(string)) {
	buf := mpi.Make(job.Msg, !payload)
	if payload && c.Rank(p) == 0 {
		for i := range buf.Data() {
			buf.Data()[i] = jobPat(job.ID, 0, i)
		}
	}
	collectives.BinomialBcast(p, c, 0, buf)
	if !payload || report == nil {
		return
	}
	for i, b := range buf.Data() {
		if b != jobPat(job.ID, 0, i) {
			report(fmt.Sprintf("job %d rank %d: bcast byte %d = %#02x, want %#02x",
				job.ID, p.Rank(), i, b, jobPat(job.ID, 0, i)))
			break
		}
	}
}
