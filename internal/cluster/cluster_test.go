package cluster

import (
	"strings"
	"testing"

	"mha/internal/faults"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

// burst returns four 6-rank jobs arriving together on a 2-rail fabric:
// enough to force node sharing under packed placement on 8x4 (each job
// spans 1.5 nodes).
func burst() []JobSpec {
	return []JobSpec{
		{ID: 0, Coll: Allgather, Msg: 64 << 10, Ranks: 6},
		{ID: 1, Coll: Allgather, Msg: 64 << 10, Ranks: 6},
		{ID: 2, Coll: Allreduce, Msg: 64 << 10, Ranks: 6},
		{ID: 3, Coll: Bcast, Msg: 64 << 10, Ranks: 6},
	}
}

func burstCfg() Config {
	return Config{
		Topo:    topology.New(8, 4, 2),
		Payload: true,
		Tracer:  trace.New(),
	}
}

// TestConcurrentJobsByteCorrect is the core acceptance property: four
// jobs overlapping on one 2-rail world, every payload byte-checked, and
// the teardown audit clean (Run fails otherwise).
func TestConcurrentJobsByteCorrect(t *testing.T) {
	res, err := Run(burstCfg(), burst())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) > 0 {
		t.Fatalf("byte-check failures: %v", res.Errors)
	}
	overlaps := 0
	for i := range res.Jobs {
		ji := res.Jobs[i]
		if ji.End <= ji.Start {
			t.Fatalf("job %d has empty run window [%v, %v]", ji.Spec.ID, ji.Start, ji.End)
		}
		for j := i + 1; j < len(res.Jobs); j++ {
			jj := res.Jobs[j]
			if ji.Start < jj.End && jj.Start < ji.End {
				overlaps++
			}
		}
	}
	if overlaps == 0 {
		t.Fatal("no two jobs overlapped in virtual time; the run was not concurrent")
	}
	if res.Hash == 0 {
		t.Fatal("trace hash not recorded")
	}
}

// TestDeterminism: two runs of the same config must agree on the trace
// hash, the cluster makespan, and every per-job metric.
func TestDeterminism(t *testing.T) {
	r1, err := Run(burstCfg(), burst())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(burstCfg(), burst())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hash != r2.Hash {
		t.Fatalf("trace hash diverged: %#x vs %#x", r1.Hash, r2.Hash)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("makespan diverged: %v vs %v", r1.Makespan, r2.Makespan)
	}
	for i := range r1.Jobs {
		a, b := r1.Jobs[i], r2.Jobs[i]
		if a.Start != b.Start || a.End != b.End || a.Slowdown != b.Slowdown {
			t.Fatalf("job %d metrics diverged: %+v vs %+v", a.Spec.ID, a, b)
		}
	}
}

// TestUnderRailFault: the same burst with a rail outage plus a degrade
// window must stay byte-correct and deterministic.
func TestUnderRailFault(t *testing.T) {
	sched := faults.MustNew(
		faults.Fault{Kind: faults.Down, Node: 1, Rail: 1, Until: sim.Time(200 * sim.Microsecond)},
		faults.Fault{Kind: faults.Degrade, Node: 2, Rail: 0, Fraction: 0.4},
	)
	faultedCfg := func() Config {
		cfg := burstCfg() // fresh tracer per run: Hash is cumulative
		cfg.Faults = sched
		return cfg
	}
	r1, err := Run(faultedCfg(), burst())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Errors) > 0 {
		t.Fatalf("byte-check failures under fault: %v", r1.Errors)
	}
	r2, err := Run(faultedCfg(), burst())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hash != r2.Hash {
		t.Fatalf("trace hash diverged under fault: %#x vs %#x", r1.Hash, r2.Hash)
	}
}

// TestBackpressure: MaxInFlight=1 serializes the cluster — no overlap,
// strictly ordered starts, and a growing queue wait.
func TestBackpressure(t *testing.T) {
	cfg := burstCfg()
	cfg.MaxInFlight = 1
	res, err := Run(cfg, burst())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Jobs); i++ {
		if res.Jobs[i].Start < res.Jobs[i-1].End {
			t.Fatalf("jobs %d and %d overlap despite MaxInFlight=1", i-1, i)
		}
	}
	if res.Jobs[3].Wait <= res.Jobs[1].Wait || res.MeanWait <= 0 {
		t.Fatalf("serialized queue wait not increasing: %v then %v (mean %v)",
			res.Jobs[1].Wait, res.Jobs[3].Wait, res.MeanWait)
	}
	// Serialized jobs run alone: their slowdown must be ~1.
	for _, jm := range res.Jobs {
		if jm.Slowdown < 0.99 || jm.Slowdown > 1.01 {
			t.Fatalf("job %d serialized slowdown = %.3f, want ~1", jm.Spec.ID, jm.Slowdown)
		}
	}
}

// TestPriorityQueue: with the cluster full, a high-priority late arrival
// jumps a low-priority earlier one under the priority queue but not under
// FIFO.
func TestPriorityQueue(t *testing.T) {
	topo := topology.New(2, 2, 2)
	jobs := []JobSpec{
		{ID: 0, Coll: Allgather, Msg: 64 << 10, Ranks: 4, Arrival: 0},
		{ID: 1, Coll: Allgather, Msg: 16 << 10, Ranks: 4, Arrival: 1, Priority: 0},
		{ID: 2, Coll: Allgather, Msg: 16 << 10, Ranks: 4, Arrival: 2, Priority: 3},
	}
	order := func(queue string) (lo, hi sim.Time) {
		res, err := Run(Config{Topo: topo, Queue: queue, SkipIsolated: true}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Jobs[1].Start, res.Jobs[2].Start
	}
	fifoLo, fifoHi := order("fifo")
	if fifoLo >= fifoHi {
		t.Fatalf("fifo ran job 2 (start %v) before job 1 (start %v)", fifoHi, fifoLo)
	}
	prioLo, prioHi := order("priority")
	if prioHi >= prioLo {
		t.Fatalf("priority queue ran job 1 (start %v) before high-priority job 2 (start %v)",
			prioLo, prioHi)
	}
}

// TestValidateRejects covers the spec errors Validate must catch.
func TestValidateRejects(t *testing.T) {
	topo := topology.New(2, 2, 2)
	cases := []struct {
		name string
		cfg  Config
		jobs []JobSpec
		want string
	}{
		{"bad policy", Config{Topo: topo, Policy: "best-fit"},
			[]JobSpec{{ID: 0, Ranks: 2}}, "unknown policy"},
		{"bad queue", Config{Topo: topo, Queue: "lifo"},
			[]JobSpec{{ID: 0, Ranks: 2}}, "unknown queue"},
		{"too many ranks", Config{Topo: topo},
			[]JobSpec{{ID: 0, Ranks: 5}}, "needs 5 ranks"},
		{"dup id", Config{Topo: topo},
			[]JobSpec{{ID: 7, Ranks: 2}, {ID: 7, Ranks: 2}}, "duplicate job ID"},
		{"odd allreduce", Config{Topo: topo},
			[]JobSpec{{ID: 0, Coll: Allreduce, Ranks: 2, Msg: 12}}, "multiple of 8"},
		{"bad alg", Config{Topo: topo},
			[]JobSpec{{ID: 0, Coll: Bcast, Alg: "ring", Ranks: 2}}, "unknown bcast algorithm"},
		{"no jobs", Config{Topo: topo}, nil, "no jobs"},
	}
	for _, tc := range cases {
		_, err := Run(tc.cfg, tc.jobs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRandomWorkload: a seeded generated stream runs byte-correct on
// every policy, and the generator itself is deterministic.
func TestRandomWorkload(t *testing.T) {
	topo := topology.New(4, 4, 2)
	jobs := RandomJobs(42, 10, topo, 500*sim.Microsecond)
	again := RandomJobs(42, 10, topo, 500*sim.Microsecond)
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("workload generator not deterministic at job %d: %+v vs %+v",
				i, jobs[i], again[i])
		}
	}
	for _, policy := range Policies() {
		res, err := Run(Config{Topo: topo, Policy: policy, Payload: true, SkipIsolated: true}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(res.Errors) > 0 {
			t.Fatalf("%s: byte-check failures: %v", policy, res.Errors)
		}
	}
}

// TestRaceStress is the -race workout: many concurrent jobs multiplexing
// one shared world through every policy and both queues.
func TestRaceStress(t *testing.T) {
	topo := topology.New(4, 4, 2)
	jobs := RandomJobs(7, 16, topo, 300*sim.Microsecond)
	for _, policy := range Policies() {
		for _, queue := range []string{"fifo", "priority"} {
			res, err := Run(Config{
				Topo: topo, Policy: policy, Queue: queue, Payload: true,
				Tracer: trace.New(), SkipIsolated: true,
			}, jobs)
			if err != nil {
				t.Fatalf("%s/%s: %v", policy, queue, err)
			}
			if len(res.Errors) > 0 {
				t.Fatalf("%s/%s: byte-check failures: %v", policy, queue, res.Errors)
			}
		}
	}
}

// TestRailShareBounds: the occupancy gauge stays within sane bounds on a
// contended run.
func TestRailShareBounds(t *testing.T) {
	res, err := Run(burstCfg(), burst())
	if err != nil {
		t.Fatal(err)
	}
	for _, jm := range res.Jobs {
		if jm.RailShare < 0 || jm.RailShare > 4 {
			t.Fatalf("job %d rail share %.3f out of bounds", jm.Spec.ID, jm.RailShare)
		}
	}
}
