package cluster

import (
	"fmt"

	"mha/internal/collectives"
	"mha/internal/mpi"
)

// Contended returns an allgather built the way the scheduler runs jobs:
// the world is split into `groups` contiguous rank groups that each run
// their own sub-communicator ring allgather CONCURRENTLY — contending for
// rails and memory buses exactly like co-scheduled tenants — after which
// group leaders exchange their gathered windows and broadcast the
// assembled result within their groups. The net effect equals a world
// allgather byte-for-byte, so the verification harness's oracle and
// determinism checks apply unchanged while exercising the multi-tenant
// overlap paths (runtime CommNamed creation, per-comm epochs, shared-rail
// interleaving). internal/verify registers it as the cluster-contended-*
// scenario family.
func Contended(groups int) func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	return func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		n := w.Topo().Size()
		m := send.Len()
		g := groups
		if g > n {
			g = n
		}
		if g < 1 {
			g = 1
		}
		bounds := groupBounds(n, g)
		gi := groupOf(bounds, p.Rank())
		lo, hi := bounds[gi], bounds[gi+1]
		gc := w.CommNamed(fmt.Sprintf("contended.%d.g%d", g, gi), func() []int {
			ranks := make([]int, hi-lo)
			for i := range ranks {
				ranks[i] = lo + i
			}
			return ranks
		})
		// Phase 1 (overlapping across groups): gather the group's blocks
		// straight into this rank's window of recv.
		collectives.RingAllgather(p, gc, send, recv.Slice(lo*m, (hi-lo)*m))
		// Phase 2: group leaders trade windows so each holds the full
		// result. Windows differ in size when g does not divide n, so the
		// exchange is direct sends rather than an allgather.
		if gc.Rank(p) == 0 {
			lc := w.CommNamed(fmt.Sprintf("contended.%d.leaders", g), func() []int {
				leaders := make([]int, g)
				for j := 0; j < g; j++ {
					leaders[j] = bounds[j]
				}
				return leaders
			})
			ep := lc.Epoch(p)
			reqs := make([]*mpi.Request, 0, 2*(g-1))
			recvs := make([]*mpi.Request, g)
			for j := 0; j < g; j++ {
				if j == gi {
					continue
				}
				recvs[j] = p.Irecv(lc, j, mpi.Tag(ep, 1, j))
				reqs = append(reqs, p.Isend(lc, j, mpi.Tag(ep, 1, gi), recv.Slice(lo*m, (hi-lo)*m)))
			}
			for j := 0; j < g; j++ {
				if j == gi {
					continue
				}
				got := p.Wait(recvs[j])
				recv.Slice(bounds[j]*m, (bounds[j+1]-bounds[j])*m).CopyFrom(got)
			}
			for _, r := range reqs {
				p.Wait(r)
			}
		}
		// Phase 3: every leader broadcasts the assembled buffer inside its
		// group (again overlapping across groups).
		collectives.BinomialBcast(p, gc, 0, recv)
	}
}

// groupBounds partitions n ranks into g contiguous groups: bounds[i] is
// group i's first rank, bounds[g] == n. The first n%g groups get one
// extra rank.
func groupBounds(n, g int) []int {
	bounds := make([]int, g+1)
	base, extra := n/g, n%g
	for i := 0; i < g; i++ {
		bounds[i+1] = bounds[i] + base
		if i < extra {
			bounds[i+1]++
		}
	}
	return bounds
}

// groupOf returns which group a rank falls into.
func groupOf(bounds []int, rank int) int {
	for i := 0; i+1 < len(bounds); i++ {
		if rank < bounds[i+1] {
			return i
		}
	}
	return len(bounds) - 2
}
