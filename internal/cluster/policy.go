package cluster

import (
	"sort"

	"mha/internal/mpi"
	"mha/internal/sim"
)

// Placement policy names accepted by Config.Policy.
const (
	// Packed fills ranks in world order: jobs land on the lowest free
	// ranks, minimizing node count per job but happily co-locating
	// consecutive jobs on the same node's rails.
	Packed = "packed"
	// Spread balances ranks across nodes: each slot goes to the node
	// with the most free slots, maximizing per-job rail count at the
	// price of more inter-node traffic.
	Spread = "spread"
	// RailAware packs like Packed but orders nodes by how contended
	// their rails are right now: nodes hosting fewer jobs come first,
	// then nodes with more healthy planned rails (rail-health registry),
	// then less rail backlog. It is the policy the paper's rail-
	// occupancy argument implies.
	RailAware = "rail-aware"
)

// Policies lists the placement policies in comparison order.
func Policies() []string { return []string{Packed, Spread, RailAware} }

// place chooses `need` free world ranks for a new job under the given
// policy, or returns nil when fewer than `need` ranks are free. The
// returned slice is the job's comm-rank order. jobsOnNode counts the jobs
// currently holding at least one rank on each node; now is the admission
// time (rail-backlog queries are time-dependent).
func place(policy string, w *mpi.World, free []bool, jobsOnNode []int, need int, now sim.Time) []int {
	avail := 0
	for _, f := range free {
		if f {
			avail++
		}
	}
	if avail < need {
		return nil
	}
	switch policy {
	case Spread:
		return placeSpread(w, free, need)
	case RailAware:
		return placeRailAware(w, free, jobsOnNode, need, now)
	default: // Packed
		return placePacked(free, need)
	}
}

func placePacked(free []bool, need int) []int {
	out := make([]int, 0, need)
	for r := 0; r < len(free) && len(out) < need; r++ {
		if free[r] {
			out = append(out, r)
		}
	}
	return out
}

func placeSpread(w *mpi.World, free []bool, need int) []int {
	topo := w.Topo()
	freeOn := make([][]int, topo.Nodes)
	for r := 0; r < len(free); r++ {
		if free[r] {
			nd := topo.NodeOf(r)
			freeOn[nd] = append(freeOn[nd], r)
		}
	}
	out := make([]int, 0, need)
	for len(out) < need {
		best := -1
		for nd := range freeOn {
			if len(freeOn[nd]) == 0 {
				continue
			}
			if best < 0 || len(freeOn[nd]) > len(freeOn[best]) {
				best = nd
			}
		}
		out = append(out, freeOn[best][0])
		freeOn[best] = freeOn[best][1:]
	}
	sort.Ints(out)
	return out
}

func placeRailAware(w *mpi.World, free []bool, jobsOnNode []int, need int, now sim.Time) []int {
	topo := w.Topo()
	health := w.Health()
	nodes := make([]int, topo.Nodes)
	backlog := make([]sim.Duration, topo.Nodes)
	rails := make([]int, topo.Nodes)
	for nd := range nodes {
		nodes[nd] = nd
		backlog[nd] = w.RailBacklog(nd, now)
		rails[nd] = health.PlanRails(nd)
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		if jobsOnNode[a] != jobsOnNode[b] {
			return jobsOnNode[a] < jobsOnNode[b] // fewer tenants first
		}
		if rails[a] != rails[b] {
			return rails[a] > rails[b] // more surviving rails first
		}
		if backlog[a] != backlog[b] {
			return backlog[a] < backlog[b] // less queued rail work first
		}
		return a < b
	})
	out := make([]int, 0, need)
	for _, nd := range nodes {
		for _, r := range topo.NodeRanks(nd) {
			if free[r] {
				out = append(out, r)
				if len(out) == need {
					sort.Ints(out)
					return out
				}
			}
		}
	}
	sort.Ints(out)
	return out
}
