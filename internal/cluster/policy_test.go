package cluster

import (
	"reflect"
	"testing"

	"mha/internal/faults"
	"mha/internal/mpi"
	"mha/internal/sim"
	"mha/internal/topology"
)

func freshPlacer(t *testing.T, topo topology.Cluster, sched *faults.Schedule) (*mpi.World, []bool, []int) {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topo, Params: nil, Phantom: true, Faults: sched})
	free := make([]bool, topo.Size())
	for i := range free {
		free[i] = true
	}
	return w, free, make([]int, topo.Nodes)
}

func TestPlacePacked(t *testing.T) {
	w, free, jobs := freshPlacer(t, topology.New(4, 4, 2), nil)
	got := place(Packed, w, free, jobs, 6, 0)
	if want := []int{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("packed placement = %v, want %v", got, want)
	}
	free[1] = false
	got = place(Packed, w, free, jobs, 4, 0)
	if want := []int{0, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("packed with hole = %v, want %v", got, want)
	}
}

func TestPlaceSpread(t *testing.T) {
	w, free, jobs := freshPlacer(t, topology.New(4, 4, 2), nil)
	got := place(Spread, w, free, jobs, 4, 0)
	if want := []int{0, 4, 8, 12}; !reflect.DeepEqual(got, want) {
		t.Fatalf("spread placement = %v, want one rank per node %v", got, want)
	}
}

func TestPlaceInsufficient(t *testing.T) {
	w, free, jobs := freshPlacer(t, topology.New(2, 2, 2), nil)
	free[0] = false
	if got := place(Packed, w, free, jobs, 4, 0); got != nil {
		t.Fatalf("placement with 3 free ranks for 4 = %v, want nil", got)
	}
}

// TestRailAwareAvoidsTenants: with node 0 already hosting a job, the
// rail-aware placer starts on the emptiest nodes instead.
func TestRailAwareAvoidsTenants(t *testing.T) {
	w, free, jobs := freshPlacer(t, topology.New(4, 4, 2), nil)
	jobs[0] = 1
	free[0], free[1] = false, false
	got := place(RailAware, w, free, jobs, 4, 0)
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rail-aware placement = %v, want it to skip tenant node 0: %v", got, want)
	}
	// Packed would have grabbed node 0's free tail first.
	if got := place(Packed, w, free, jobs, 4, 0); got[0] != 2 {
		t.Fatalf("packed control placement starts at %d, want 2", got[0])
	}
}

// TestRailAwareAvoidsDeadRails: a node whose rail is down for the whole
// run ranks behind healthy nodes.
func TestRailAwareAvoidsDeadRails(t *testing.T) {
	sched := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 0})
	w, free, jobs := freshPlacer(t, topology.New(4, 4, 2), sched)
	got := place(RailAware, w, free, jobs, 4, 0)
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rail-aware placement = %v, want healthy node 1 first: %v", got, want)
	}
}

// TestRailAwareBeatsPackedContended is the headline acceptance property:
// on a bursty contended scenario, rail-aware placement yields lower mean
// slowdown than packed because it refuses to co-locate jobs on one
// node's rails while empty nodes remain.
func TestRailAwareBeatsPackedContended(t *testing.T) {
	topo := topology.New(8, 4, 2)
	jobs := []JobSpec{
		{ID: 0, Coll: Allgather, Msg: 256 << 10, Ranks: 6},
		{ID: 1, Coll: Allgather, Msg: 256 << 10, Ranks: 6},
		{ID: 2, Coll: Allgather, Msg: 256 << 10, Ranks: 6},
		{ID: 3, Coll: Allgather, Msg: 256 << 10, Ranks: 6},
	}
	run := func(policy string) *Result {
		res, err := Run(Config{Topo: topo, Policy: policy}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return res
	}
	packed := run(Packed)
	aware := run(RailAware)
	if aware.MeanSlowdown >= packed.MeanSlowdown {
		t.Fatalf("rail-aware mean slowdown %.3f not better than packed %.3f",
			aware.MeanSlowdown, packed.MeanSlowdown)
	}
	if aware.MeanSlowdown < 1.0-1e-9 {
		t.Fatalf("rail-aware mean slowdown %.3f below 1: isolated baseline broken", aware.MeanSlowdown)
	}
}

// TestPlacementSortedAndDisjoint: every policy returns sorted, disjoint,
// currently-free ranks.
func TestPlacementSortedAndDisjoint(t *testing.T) {
	for _, policy := range Policies() {
		w, free, jobs := freshPlacer(t, topology.New(4, 4, 2), nil)
		taken := map[int]bool{}
		for round := 0; round < 3; round++ {
			got := place(policy, w, free, jobs, 5, sim.Time(round))
			if len(got) != 5 {
				t.Fatalf("%s round %d: %d ranks, want 5", policy, round, len(got))
			}
			for i, r := range got {
				if taken[r] || !free[r] {
					t.Fatalf("%s round %d: rank %d reused", policy, round, r)
				}
				if i > 0 && got[i-1] >= r {
					t.Fatalf("%s round %d: placement %v not sorted", policy, round, got)
				}
				taken[r] = true
				free[r] = false
			}
		}
	}
}
