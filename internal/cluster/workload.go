package cluster

import (
	"math/rand"

	"mha/internal/sim"
	"mha/internal/topology"
)

// RandomJobs generates a seeded mixed workload of n jobs for a topology:
// mostly allgathers with a tail of allreduces, bcasts and the
// compose-derived collectives (reduce-scatter, alltoall, gather,
// scatter), payloads from 4 KB to 256 KB, rank counts from 2 to the
// world size, arrivals uniform over the horizon, priorities 0-3. The
// same seed always yields the same stream, so scheduler runs over
// generated workloads stay reproducible.
func RandomJobs(seed int64, n int, topo topology.Cluster, horizon sim.Duration) []JobSpec {
	rng := rand.New(rand.NewSource(seed))
	size := topo.Size()
	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	out := make([]JobSpec, n)
	for i := range out {
		coll := Allgather
		switch v := rng.Float64(); {
		case v < 0.40:
			coll = Allgather
		case v < 0.60:
			coll = Allreduce
		case v < 0.70:
			coll = Bcast
		case v < 0.80:
			coll = ReduceScatter
		case v < 0.90:
			coll = Alltoall
		case v < 0.95:
			coll = Gather
		default:
			coll = Scatter
		}
		ranks := 2
		if size > 2 {
			ranks = 2 + rng.Intn(size-1)
		}
		arrival := sim.Time(0)
		if horizon > 0 {
			arrival = sim.Time(rng.Int63n(int64(horizon) + 1))
		}
		out[i] = JobSpec{
			ID:       i,
			Coll:     coll,
			Msg:      sizes[rng.Intn(len(sizes))],
			Ranks:    ranks,
			Arrival:  arrival,
			Priority: rng.Intn(4),
		}
	}
	return out
}
