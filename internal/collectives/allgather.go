// Package collectives implements the conventional collective algorithms the
// paper builds on and compares against: the flat Ring, Recursive Doubling,
// Bruck and Direct-Spread allgathers (Section 2.2), the two-level leader-
// based allgathers of Kandalla et al. and Mamidala et al. (Section 1.1),
// and the bandwidth-optimal Ring allreduce of Patarasuk and Yuan
// (Section 2.4), plus the library profiles that stand in for HPC-X and
// MVAPICH2-X in the evaluation.
//
// Every algorithm moves real payload bytes when given real buffers, so the
// whole package is verified against a sequential oracle; given phantom
// buffers the same code runs at the paper's full scale.
package collectives

import (
	"fmt"

	"mha/internal/mpi"
)

// Phase ids used in message tags, one per algorithm family, so different
// algorithms can never match each other's traffic even within one epoch.
const (
	phaseRing = iota
	phaseRD
	phaseBruck
	phaseDirect
	phaseGather
	phaseLeader
	phaseBcast
	phaseRS // reduce-scatter
	phaseARAG
	phaseLocGather // locality family: intra-group gather to the group leader
	phaseLocX      // locality family: inter-group exchange
	phaseLocBcast  // locality family: intra-group distribution
)

// checkAllgatherArgs validates an allgather call: recv must hold exactly
// Size contributions of send's length.
func checkAllgatherArgs(c *mpi.Comm, send, recv mpi.Buf) {
	if recv.Len() != send.Len()*c.Size() {
		panic(fmt.Sprintf("collectives: allgather recv %dB != %d ranks x %dB",
			recv.Len(), c.Size(), send.Len()))
	}
}

// RingAllgather is the flat ring algorithm: N-1 nearest-neighbor steps, each
// forwarding the chunk received in the previous step. With more than one
// process per node the ring crosses intra-node links on most hops, which is
// exactly the bottleneck the paper's Figure 2 visualizes.
func RingAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	checkAllgatherArgs(c, send, recv)
	m := send.Len()
	n := c.Size()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	p.LocalCopy(recv.Slice(me*m, m), send)
	if n == 1 {
		return
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	cur := me
	for s := 0; s < n-1; s++ {
		tag := mpi.Tag(epoch, phaseRing, s)
		rreq := p.Irecv(c, left, tag)
		sreq := p.Isend(c, right, tag, recv.Slice(cur*m, m))
		data := p.Wait(rreq)
		cur = (cur - 1 + n) % n
		recv.Slice(cur*m, m).CopyFrom(data)
		p.Wait(sreq)
	}
}

// RDAllgather is recursive doubling: log2(N) steps with doubling block
// sizes. For non-power-of-two communicators it falls back to Bruck, which
// has the same log-step structure without the power-of-two restriction
// (the paper notes RD "requires additional steps" in that case).
func RDAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	checkAllgatherArgs(c, send, recv)
	n := c.Size()
	if n&(n-1) != 0 {
		BruckAllgather(p, c, send, recv)
		return
	}
	m := send.Len()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	p.LocalCopy(recv.Slice(me*m, m), send)
	// After step k the rank owns the 2^(k+1)-aligned block containing it.
	blockStart := me
	blockLen := 1
	for dist := 1; dist < n; dist *= 2 {
		peer := me ^ dist
		tag := mpi.Tag(epoch, phaseRD, dist)
		own := recv.Slice(blockStart*m, blockLen*m)
		got := p.SendRecv(c, peer, tag, own, peer, tag)
		peerStart := blockStart ^ dist // the peer's block is the sibling
		recv.Slice(peerStart*m, blockLen*m).CopyFrom(got)
		if peerStart < blockStart {
			blockStart = peerStart
		}
		blockLen *= 2
	}
}

// BruckAllgather is Bruck's allgather: ceil(log2 N) steps for any N,
// followed by a local rotation to put blocks in rank order.
func BruckAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	checkAllgatherArgs(c, send, recv)
	m := send.Len()
	n := c.Size()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	tmp := mpi.Make(n*m, send.IsPhantom())
	p.LocalCopy(tmp.Slice(0, m), send)
	filled := 1
	step := 0
	for pow := 1; pow < n; pow *= 2 {
		cnt := pow
		if n-filled < cnt {
			cnt = n - filled
		}
		dst := (me - pow + n) % n
		src := (me + pow) % n
		tag := mpi.Tag(epoch, phaseBruck, step)
		got := p.SendRecv(c, dst, tag, tmp.Slice(0, cnt*m), src, tag)
		tmp.Slice(filled*m, cnt*m).CopyFrom(got)
		filled += cnt
		step++
	}
	// Rotate: tmp[i] holds the block of rank (me+i) mod n.
	for i := 0; i < n; i++ {
		recv.Slice(((me+i)%n)*m, m).CopyFrom(tmp.Slice(i*m, m))
	}
	p.ChargeCopy(n * m) // one bulk memmove for the rotation
}

// DirectSpreadAllgather is the dissemination algorithm of Section 2.2: in
// step i every rank receives directly from rank (r-i) mod N and sends to
// rank (r+i) mod N — no forwarding dependencies, which is what makes it
// extensible with HCA offload (the MHA-intra design builds on it).
func DirectSpreadAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	checkAllgatherArgs(c, send, recv)
	m := send.Len()
	n := c.Size()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	p.LocalCopy(recv.Slice(me*m, m), send)
	for s := 1; s < n; s++ {
		dst := (me + s) % n
		src := (me - s + n) % n
		tag := mpi.Tag(epoch, phaseDirect, s)
		rreq := p.Irecv(c, src, tag)
		sreq := p.Isend(c, dst, tag, send)
		got := p.Wait(rreq)
		recv.Slice(src*m, m).CopyFrom(got)
		p.Wait(sreq)
	}
}

// NeighborExchangeAllgather pairs ranks in alternating even/odd exchanges;
// it is included as an additional conventional baseline for even N and used
// by the property tests as one more oracle-checked algorithm.
func NeighborExchangeAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	checkAllgatherArgs(c, send, recv)
	n := c.Size()
	if n%2 != 0 {
		// The classic neighbor-exchange needs even N; fall back.
		RingAllgather(p, c, send, recv)
		return
	}
	m := send.Len()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	p.LocalCopy(recv.Slice(me*m, m), send)
	if n == 1 {
		return
	}
	even := me%2 == 0

	// Step 1: exchange own blocks with the first neighbor; afterwards
	// every rank holds the even-aligned pair {prevLo, prevLo+1}.
	var peer, prevLo int
	if even {
		peer = (me + 1) % n
		prevLo = me
	} else {
		peer = (me - 1 + n) % n
		prevLo = peer
	}
	tag := mpi.Tag(epoch, phaseDirect, 1<<10|1)
	got := p.SendRecv(c, peer, tag, recv.Slice(me*m, m), peer, tag)
	recv.Slice(peer*m, m).CopyFrom(got)

	// Steps 2..n/2: alternate neighbors, each time exchanging the pair of
	// blocks acquired in the previous step. All pair bases are even, so a
	// pair never wraps around the block array.
	for k := 2; k <= n/2; k++ {
		var lo int
		if even {
			if k%2 == 0 {
				peer = (me - 1 + n) % n
				lo = (me - k + n) % n
			} else {
				peer = (me + 1) % n
				lo = (me + k - 1) % n
			}
		} else {
			if k%2 == 0 {
				peer = (me + 1) % n
				lo = (me + k - 1) % n
			} else {
				peer = (me - 1 + n) % n
				lo = (me - k + n) % n
			}
		}
		tag := mpi.Tag(epoch, phaseDirect, 1<<10|k)
		got := p.SendRecv(c, peer, tag, recv.Slice(prevLo*m, 2*m), peer, tag)
		recv.Slice(lo*m, 2*m).CopyFrom(got)
		prevLo = lo
	}
}
