package collectives

import (
	"fmt"

	"mha/internal/mpi"
)

const (
	phaseAGV = 21 + iota
	phaseBarrier
	phaseScan
)

// vOffsets returns the receive-buffer offset of each rank's block and the
// total size for variable counts.
func vOffsets(counts []int) (offs []int, total int) {
	offs = make([]int, len(counts))
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("collectives: negative count %d for rank %d", c, i))
		}
		offs[i] = total
		total += c
	}
	return offs, total
}

// RingAllgatherv is MPI_Allgatherv with the ring algorithm: rank i
// contributes counts[i] bytes and every rank ends with the concatenation
// in comm-rank order. send must have counts[rank] bytes and recv the sum.
func RingAllgatherv(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf, counts []int) {
	n := c.Size()
	if len(counts) != n {
		panic(fmt.Sprintf("collectives: %d counts for %d ranks", len(counts), n))
	}
	me := c.Rank(p)
	if send.Len() != counts[me] {
		panic(fmt.Sprintf("collectives: rank %d sends %dB, counts say %dB", me, send.Len(), counts[me]))
	}
	offs, total := vOffsets(counts)
	if recv.Len() != total {
		panic(fmt.Sprintf("collectives: recv %dB, counts sum to %dB", recv.Len(), total))
	}
	epoch := c.Epoch(p)
	p.LocalCopy(recv.Slice(offs[me], counts[me]), send)
	if n == 1 {
		return
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	cur := me
	for s := 0; s < n-1; s++ {
		tag := mpi.Tag(epoch, phaseAGV, s)
		rreq := p.Irecv(c, left, tag)
		sreq := p.Isend(c, right, tag, recv.Slice(offs[cur], counts[cur]))
		data := p.Wait(rreq)
		cur = (cur - 1 + n) % n
		recv.Slice(offs[cur], counts[cur]).CopyFrom(data)
		p.Wait(sreq)
	}
}

// DisseminationBarrier is the log2(N)-round dissemination barrier over
// zero-byte messages — unlike Comm.Barrier (a free synchronization fence
// for test orchestration), its cost is modeled, so it can appear inside
// timed regions.
func DisseminationBarrier(p *mpi.Proc, c *mpi.Comm) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.Rank(p)
	epoch := c.Epoch(p)
	for dist, round := 1, 0; dist < n; dist, round = dist*2, round+1 {
		dst := (me + dist) % n
		src := (me - dist + n) % n
		tag := mpi.Tag(epoch, phaseBarrier, round)
		sreq := p.Isend(c, dst, tag, mpi.Phantom(0))
		p.Wait(p.Irecv(c, src, tag))
		p.Wait(sreq)
	}
}

// InclusiveScan computes, at each rank r, the reduction of ranks 0..r's
// buffers (in place), with the log-round doubling-distance algorithm.
// Note the combine order is commutative-only (Float64Sum qualifies).
func InclusiveScan(p *mpi.Proc, c *mpi.Comm, buf mpi.Buf, red Reducer) {
	n := c.Size()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	for dist, round := 1, 0; dist < n; dist, round = dist*2, round+1 {
		tag := mpi.Tag(epoch, phaseScan, round)
		var sreq *mpi.Request
		if me+dist < n {
			sreq = p.Isend(c, me+dist, tag, buf)
		}
		if me-dist >= 0 {
			got := p.Wait(p.Irecv(c, me-dist, tag))
			red.Reduce(buf, got)
			p.Compute(red.Cost(buf.Len()))
		}
		if sreq != nil {
			p.Wait(sreq)
		}
	}
}
