package collectives

import (
	"encoding/binary"
	"fmt"
	"math"

	"mha/internal/mpi"
	"mha/internal/sim"
)

// A Reducer combines message payloads element-wise and prices the
// combination, so reductions cost virtual time even in phantom mode.
type Reducer interface {
	// Reduce folds src into dst (dst = dst op src). Phantom buffers fold
	// nothing but still type-check sizes.
	Reduce(dst, src mpi.Buf)
	// Cost returns the compute time of reducing n bytes.
	Cost(n int) sim.Duration
}

// Float64Sum sums buffers of little-endian float64s at a fixed throughput,
// the reduction used by the Allreduce experiments (gradient averaging in
// the deep-learning application reduces float gradients the same way).
type Float64Sum struct {
	// BW is the reduction throughput in bytes/second (memory bound).
	BW float64
}

// SumF64 returns the default float64-sum reducer (8 GB/s, a memory-bound
// AVX2 sum on one Broadwell core).
func SumF64() Float64Sum { return Float64Sum{BW: 8e9} }

// Reduce implements Reducer.
func (f Float64Sum) Reduce(dst, src mpi.Buf) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("collectives: reduce size mismatch %d vs %d", dst.Len(), src.Len()))
	}
	if dst.IsPhantom() || src.IsPhantom() {
		return
	}
	if dst.Len()%8 != 0 {
		panic("collectives: float64 reduce needs a multiple of 8 bytes")
	}
	d, s := dst.Data(), src.Data()
	for i := 0; i+8 <= len(d); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(d[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(s[i:]))
		binary.LittleEndian.PutUint64(d[i:], math.Float64bits(a+b))
	}
}

// Cost implements Reducer.
func (f Float64Sum) Cost(n int) sim.Duration {
	bw := f.BW
	if bw <= 0 {
		bw = 8e9
	}
	return sim.FromSeconds(float64(n) / bw)
}

// Float64Extreme keeps the element-wise maximum (or minimum) of float64
// buffers — the MPI_MAX/MPI_MIN analogue.
type Float64Extreme struct {
	// Min selects minimum instead of maximum.
	Min bool
	// BW is the reduction throughput in bytes/second (memory bound).
	BW float64
}

// MaxF64 returns the element-wise float64 maximum reducer.
func MaxF64() Float64Extreme { return Float64Extreme{BW: 8e9} }

// MinF64 returns the element-wise float64 minimum reducer.
func MinF64() Float64Extreme { return Float64Extreme{Min: true, BW: 8e9} }

// Reduce implements Reducer.
func (f Float64Extreme) Reduce(dst, src mpi.Buf) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("collectives: reduce size mismatch %d vs %d", dst.Len(), src.Len()))
	}
	if dst.IsPhantom() || src.IsPhantom() {
		return
	}
	if dst.Len()%8 != 0 {
		panic("collectives: float64 reduce needs a multiple of 8 bytes")
	}
	d, s := dst.Data(), src.Data()
	for i := 0; i+8 <= len(d); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(d[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(s[i:]))
		keep := math.Max(a, b)
		if f.Min {
			keep = math.Min(a, b)
		}
		binary.LittleEndian.PutUint64(d[i:], math.Float64bits(keep))
	}
}

// Cost implements Reducer.
func (f Float64Extreme) Cost(n int) sim.Duration {
	bw := f.BW
	if bw <= 0 {
		bw = 8e9
	}
	return sim.FromSeconds(float64(n) / bw)
}

// chunkOf returns the balanced chunk boundaries used by ring allreduce:
// chunk i of a buffer of n bytes split into parts 8-byte-aligned pieces.
func chunkOf(n, parts, i int) (off, ln int) {
	elems := n / 8
	base := elems / parts
	rem := elems % parts
	start := i*base + min(i, rem)
	count := base
	if i < rem {
		count++
	}
	return start * 8, count * 8
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ReduceScatterRing performs the reduce-scatter phase of the
// Patarasuk-Yuan ring allreduce on buf (which must be a multiple of 8
// bytes): after it returns, rank r holds the fully reduced chunk r of buf,
// and chunkOf reports the chunk boundaries. Chunk j circulates the ring
// starting at rank j+1, accumulating every rank's contribution, and lands
// fully reduced back at rank j.
func ReduceScatterRing(p *mpi.Proc, c *mpi.Comm, buf mpi.Buf, red Reducer) {
	if buf.Len()%8 != 0 {
		panic("collectives: ring allreduce needs a multiple of 8 bytes")
	}
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.Rank(p)
	epoch := c.Epoch(p)
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := (me - s - 1 + n) % n
		recvIdx := (me - s - 2 + 2*n) % n
		so, sl := chunkOf(buf.Len(), n, sendIdx)
		ro, rl := chunkOf(buf.Len(), n, recvIdx)
		tag := mpi.Tag(epoch, phaseRS, s)
		rreq := p.Irecv(c, left, tag)
		sreq := p.Isend(c, right, tag, buf.Slice(so, sl))
		got := p.Wait(rreq)
		dst := buf.Slice(ro, rl)
		red.Reduce(dst, got)
		p.Compute(red.Cost(rl))
		p.Wait(sreq)
	}
}

// RingAllreduce is the bandwidth-optimal allreduce of Patarasuk and Yuan:
// a ring reduce-scatter followed by a ring allgather of the reduced
// chunks. It operates in place on buf.
func RingAllreduce(p *mpi.Proc, c *mpi.Comm, buf mpi.Buf, red Reducer) {
	ReduceScatterRing(p, c, buf, red)
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.Rank(p)
	epoch := c.Epoch(p)
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := (me - s + n) % n
		recvIdx := (me - s - 1 + n) % n
		so, sl := chunkOf(buf.Len(), n, sendIdx)
		ro, rl := chunkOf(buf.Len(), n, recvIdx)
		tag := mpi.Tag(epoch, phaseARAG, s)
		rreq := p.Irecv(c, left, tag)
		sreq := p.Isend(c, right, tag, buf.Slice(so, sl))
		got := p.Wait(rreq)
		buf.Slice(ro, rl).CopyFrom(got)
		p.Wait(sreq)
	}
}

// RDAllreduce is the recursive-doubling allreduce: log2(N) full-buffer
// exchanges, each followed by a local reduction — the latency-optimal
// choice for small messages. Non-power-of-two communicators fold the
// excess ranks onto the power-of-two core first and fan the result back
// out afterwards.
func RDAllreduce(p *mpi.Proc, c *mpi.Comm, buf mpi.Buf, red Reducer) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.Rank(p)
	epoch := c.Epoch(p)
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	extra := n - pow2

	// Fold: ranks >= pow2 contribute to their partner and go idle.
	if me >= pow2 {
		partner := me - pow2
		p.Send(c, partner, mpi.Tag(epoch, phaseRD, 1<<12), buf)
		got := p.Recv(c, partner, mpi.Tag(epoch, phaseRD, 1<<13))
		buf.CopyFrom(got)
		return
	}
	if me < extra {
		got := p.Recv(c, me+pow2, mpi.Tag(epoch, phaseRD, 1<<12))
		red.Reduce(buf, got)
		p.Compute(red.Cost(buf.Len()))
	}

	for dist := 1; dist < pow2; dist *= 2 {
		peer := me ^ dist
		tag := mpi.Tag(epoch, phaseRD, dist)
		got := p.SendRecv(c, peer, tag, buf, peer, tag)
		red.Reduce(buf, got)
		p.Compute(red.Cost(buf.Len()))
	}

	if me < extra {
		p.Send(c, me+pow2, mpi.Tag(epoch, phaseRD, 1<<13), buf)
	}
}

// AllreduceViaAllgather composes a ring reduce-scatter with an arbitrary
// allgather over the reduced chunks — the structure the paper exploits:
// plugging the MHA allgather into phase two of ring allreduce. The buffer
// length must be a multiple of 8*N bytes so chunks are uniform (callers
// pad; the harness always does).
func AllreduceViaAllgather(p *mpi.Proc, c *mpi.Comm, buf mpi.Buf, red Reducer,
	allgather func(p *mpi.Proc, send, recv mpi.Buf)) {
	n := c.Size()
	if buf.Len()%(8*n) != 0 {
		panic(fmt.Sprintf("collectives: AllreduceViaAllgather needs len %% %d == 0, got %d", 8*n, buf.Len()))
	}
	ReduceScatterRing(p, c, buf, red)
	if n == 1 {
		return
	}
	me := c.Rank(p)
	m := buf.Len() / n
	own := buf.Slice(me*m, m).Clone()
	allgather(p, own, buf)
}
