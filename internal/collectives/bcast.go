package collectives

import (
	"fmt"

	"mha/internal/mpi"
)

// Additional tag phases for the broadcast/reduce/gather/scatter/alltoall
// family.
const (
	phaseBcast2 = 16 + iota
	phaseReduce
	phaseGatherL
	phaseScatterL
	phaseA2A
)

// BinomialBcast broadcasts root's buffer to every rank of c along a
// binomial tree: log2(N) rounds, with the set of holders doubling each
// round. This is the classic flat baseline for MPI_Bcast.
func BinomialBcast(p *mpi.Proc, c *mpi.Comm, root int, buf mpi.Buf) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.Rank(p)
	epoch := c.Epoch(p)
	// Work in root-relative coordinates so any root works. Each non-root
	// rank receives once, from the rank that differs in its lowest set
	// bit; it then forwards to the sub-tree below that bit, highest mask
	// first (the MPICH binomial schedule).
	rel := (me - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			got := p.Recv(c, src, mpi.Tag(epoch, phaseBcast2, mask))
			buf.CopyFrom(got)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			p.Send(c, dst, mpi.Tag(epoch, phaseBcast2, mask), buf)
		}
	}
}

// BinomialReduce reduces every rank's buffer into root's along the mirror
// of the binomial broadcast tree. buf is overwritten with partial results
// on non-root ranks.
func BinomialReduce(p *mpi.Proc, c *mpi.Comm, root int, buf mpi.Buf, red Reducer) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.Rank(p)
	epoch := c.Epoch(p)
	rel := (me - root + n) % n
	// Receive from children (highest mask first, mirroring bcast order),
	// then send to the parent.
	top := 1
	for top < n {
		top <<= 1
	}
	for mask := top >> 1; mask >= 1; mask >>= 1 {
		if rel&(mask-1) == 0 && rel&mask == 0 && rel+mask < n {
			src := (rel + mask + root) % n
			got := p.Recv(c, src, mpi.Tag(epoch, phaseReduce, mask))
			red.Reduce(buf, got)
			p.Compute(red.Cost(buf.Len()))
		}
	}
	if rel != 0 {
		mask := 1
		for rel&mask == 0 {
			mask <<= 1
		}
		parent := (rel&^mask + root) % n
		p.Send(c, parent, mpi.Tag(epoch, phaseReduce, mask), buf)
	}
}

// LinearGather collects every rank's m-byte block at root in comm-rank
// order. It is the flat baseline for MPI_Gather: root matches N-1
// messages, one per peer.
func LinearGather(p *mpi.Proc, c *mpi.Comm, root int, send, recv mpi.Buf) {
	n := c.Size()
	m := send.Len()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	if me != root {
		p.Send(c, root, mpi.Tag(epoch, phaseGatherL, me), send)
		return
	}
	if recv.Len() != n*m {
		panic(fmt.Sprintf("collectives: gather recv %dB != %d x %dB", recv.Len(), n, m))
	}
	p.LocalCopy(recv.Slice(me*m, m), send)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		got := p.Recv(c, r, mpi.Tag(epoch, phaseGatherL, r))
		recv.Slice(r*m, m).CopyFrom(got)
	}
}

// LinearScatter distributes root's N blocks of m bytes to the ranks in
// comm-rank order — the flat baseline for MPI_Scatter.
func LinearScatter(p *mpi.Proc, c *mpi.Comm, root int, send, recv mpi.Buf) {
	n := c.Size()
	m := recv.Len()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	if me != root {
		got := p.Recv(c, root, mpi.Tag(epoch, phaseScatterL, me))
		recv.CopyFrom(got)
		return
	}
	if send.Len() != n*m {
		panic(fmt.Sprintf("collectives: scatter send %dB != %d x %dB", send.Len(), n, m))
	}
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		p.Send(c, r, mpi.Tag(epoch, phaseScatterL, r), send.Slice(r*m, m))
	}
	p.LocalCopy(recv, send.Slice(me*m, m))
}

// PairwiseAlltoall is the flat pairwise-exchange MPI_Alltoall: in step s,
// rank r sends its block for rank (r+s) mod N and receives from (r-s) mod
// N. send and recv both hold N blocks of m bytes.
func PairwiseAlltoall(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	n := c.Size()
	if send.Len() != recv.Len() || send.Len()%n != 0 {
		panic("collectives: alltoall needs equal send/recv of N blocks")
	}
	m := send.Len() / n
	me := c.Rank(p)
	epoch := c.Epoch(p)
	p.LocalCopy(recv.Slice(me*m, m), send.Slice(me*m, m))
	for s := 1; s < n; s++ {
		dst := (me + s) % n
		src := (me - s + n) % n
		tag := mpi.Tag(epoch, phaseA2A, s)
		got := p.SendRecv(c, dst, tag, send.Slice(dst*m, m), src, tag)
		recv.Slice(src*m, m).CopyFrom(got)
	}
}
