package collectives

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"mha/internal/mpi"
	"mha/internal/topology"
)

func TestBinomialBcastAllRootsAllShapes(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 1}, {1, 4}, {2, 3}, {4, 2}, {3, 3}, {1, 7}} {
		n := s.nodes * s.ppn
		for root := 0; root < n; root++ {
			w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
			payload := pattern(root, 128)
			err := w.Run(func(p *mpi.Proc) {
				buf := mpi.NewBuf(128)
				if p.Rank() == root {
					buf.CopyFrom(mpi.Bytes(payload))
				}
				BinomialBcast(p, w.CommWorld(), root, buf)
				if string(buf.Data()) != string(payload) {
					t.Errorf("%dx%d root=%d: rank %d wrong data", s.nodes, s.ppn, root, p.Rank())
				}
			})
			if err != nil {
				t.Fatalf("%dx%d root=%d: %v", s.nodes, s.ppn, root, err)
			}
		}
	}
}

func TestBinomialReduceAllRoots(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 2}, {2, 2}, {1, 5}, {3, 2}, {2, 4}} {
		n := s.nodes * s.ppn
		for root := 0; root < n; root++ {
			w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
			elems := 8
			err := w.Run(func(p *mpi.Proc) {
				buf := f64buf(float64(p.Rank()), elems)
				BinomialReduce(p, w.CommWorld(), root, buf, SumF64())
				if p.Rank() != root {
					return
				}
				for i := 0; i < elems; i++ {
					want := float64(n*(n-1))/2 + float64(n*i)
					if got := f64at(buf, i); math.Abs(got-want) > 1e-9 {
						t.Errorf("%dx%d root=%d: elem %d = %v want %v", s.nodes, s.ppn, root, i, got, want)
						return
					}
				}
			})
			if err != nil {
				t.Fatalf("%dx%d root=%d: %v", s.nodes, s.ppn, root, err)
			}
		}
	}
}

func TestLinearGatherScatterRoundTrip(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 3}, {2, 2}, {3, 2}} {
		n := s.nodes * s.ppn
		for _, root := range []int{0, n - 1} {
			w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 1)})
			m := 64
			err := w.Run(func(p *mpi.Proc) {
				c := w.CommWorld()
				// Gather everyone's pattern at root...
				var gathered mpi.Buf
				if p.Rank() == root {
					gathered = mpi.NewBuf(n * m)
				}
				LinearGather(p, c, root, mpi.Bytes(pattern(p.Rank(), m)), gathered)
				if p.Rank() == root {
					if string(gathered.Data()) != string(expectedAllgather(n, m)) {
						t.Errorf("gather root=%d wrong", root)
					}
				}
				// ...then scatter it back and check each rank gets its own.
				out := mpi.NewBuf(m)
				LinearScatter(p, c, root, gathered, out)
				if string(out.Data()) != string(pattern(p.Rank(), m)) {
					t.Errorf("scatter root=%d rank=%d wrong", root, p.Rank())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// alltoallPattern is rank r's block destined for rank d.
func alltoallPattern(r, d, m int) []byte {
	b := make([]byte, m)
	for i := range b {
		b[i] = byte(r*37 + d*11 + i)
	}
	return b
}

func TestPairwiseAlltoall(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 2}, {2, 2}, {2, 3}, {4, 2}, {1, 8}} {
		n := s.nodes * s.ppn
		w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
		m := 32
		err := w.Run(func(p *mpi.Proc) {
			send := mpi.NewBuf(n * m)
			for d := 0; d < n; d++ {
				send.Slice(d*m, m).CopyFrom(mpi.Bytes(alltoallPattern(p.Rank(), d, m)))
			}
			recv := mpi.NewBuf(n * m)
			PairwiseAlltoall(p, w.CommWorld(), send, recv)
			for src := 0; src < n; src++ {
				want := string(alltoallPattern(src, p.Rank(), m))
				if got := string(recv.Slice(src*m, m).Data()); got != want {
					t.Errorf("%dx%d rank %d: block from %d wrong", s.nodes, s.ppn, p.Rank(), src)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGatherToLeaderExported(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(1, 4, 1)})
	m := 16
	err := w.Run(func(p *mpi.Proc) {
		var blk mpi.Buf
		if p.IsLeader() {
			blk = mpi.NewBuf(4 * m)
		}
		GatherToLeader(p, w.NodeComm(0), mpi.Bytes(pattern(p.Rank(), m)), blk)
		if p.IsLeader() && string(blk.Data()) != string(expectedAllgather(4, m)) {
			t.Error("leader gather wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: binomial bcast delivers for random shapes and roots.
func TestQuickBinomialBcast(t *testing.T) {
	f := func(nodes, ppn, rootRaw uint8, mRaw uint16) bool {
		nd := int(nodes)%4 + 1
		l := int(ppn)%4 + 1
		n := nd * l
		root := int(rootRaw) % n
		m := int(mRaw)%256 + 1
		w := mpi.New(mpi.Config{Topo: topology.New(nd, l, 1)})
		payload := pattern(root, m)
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			buf := mpi.NewBuf(m)
			if p.Rank() == root {
				buf.CopyFrom(mpi.Bytes(payload))
			}
			BinomialBcast(p, w.CommWorld(), root, buf)
			if string(buf.Data()) != string(payload) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBcastScalesLogarithmically(t *testing.T) {
	// Binomial tree: doubling ranks should add roughly one step, not
	// double the time.
	lat := func(n int) float64 {
		w := mpi.New(mpi.Config{Topo: topology.New(n, 1, 2), Phantom: true})
		var worst float64
		err := w.Run(func(p *mpi.Proc) {
			buf := mpi.Phantom(64 << 10)
			BinomialBcast(p, w.CommWorld(), 0, buf)
			if us := float64(p.Now()); us > worst {
				worst = us
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	l8, l16 := lat(8), lat(16)
	if l16 > l8*1.6 {
		t.Fatalf("bcast not logarithmic: %v -> %v", l8, l16)
	}
}

func ExampleBinomialBcast() {
	w := mpi.New(mpi.Config{Topo: topology.New(2, 2, 1)})
	err := w.Run(func(p *mpi.Proc) {
		buf := mpi.NewBuf(1)
		if p.Rank() == 2 {
			buf.Data()[0] = 'x'
		}
		BinomialBcast(p, w.CommWorld(), 2, buf)
		if p.Rank() == 0 {
			fmt.Println(string(buf.Data()))
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: x
}

func TestGathervScattervRoundTrip(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 4}, {2, 3}, {3, 2}} {
		n := s.nodes * s.ppn
		counts := make([]int, n)
		for i := range counts {
			counts[i] = (i * 13) % 29 // includes zero for i=0
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		for _, root := range []int{0, n - 1} {
			w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 1)})
			err := w.Run(func(p *mpi.Proc) {
				c := w.CommWorld()
				me := p.Rank()
				var gathered mpi.Buf
				if me == root {
					gathered = mpi.NewBuf(total)
				}
				LinearGatherv(p, c, root, mpi.Bytes(pattern(me, counts[me])), gathered, counts)
				if me == root {
					want := []byte{}
					for r := 0; r < n; r++ {
						want = append(want, pattern(r, counts[r])...)
					}
					if string(gathered.Data()) != string(want) {
						t.Errorf("%dx%d root=%d: gatherv wrong", s.nodes, s.ppn, root)
					}
				}
				out := mpi.NewBuf(counts[me])
				LinearScatterv(p, c, root, gathered, out, counts)
				if string(out.Data()) != string(pattern(me, counts[me])) {
					t.Errorf("%dx%d root=%d rank=%d: scatterv wrong", s.nodes, s.ppn, root, me)
				}
			})
			if err != nil {
				t.Fatalf("%dx%d root=%d: %v", s.nodes, s.ppn, root, err)
			}
		}
	}
}
