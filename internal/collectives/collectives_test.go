package collectives

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"mha/internal/mpi"
	"mha/internal/sim"
	"mha/internal/topology"
)

// pattern fills rank r's contribution of m bytes deterministically.
func pattern(r, m int) []byte {
	b := make([]byte, m)
	for i := range b {
		b[i] = byte(r*131 + i*7 + 3)
	}
	return b
}

// expectedAllgather is the sequential oracle: the concatenation of every
// rank's pattern.
func expectedAllgather(n, m int) []byte {
	out := make([]byte, 0, n*m)
	for r := 0; r < n; r++ {
		out = append(out, pattern(r, m)...)
	}
	return out
}

type allgatherFn func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)

func flat(f func(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf)) allgatherFn {
	return func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		f(p, w.CommWorld(), send, recv)
	}
}

// runAllgather executes alg on a fresh world and checks every rank's
// result against the oracle, returning the completion time (max over
// ranks).
func runAllgather(t *testing.T, nodes, ppn, hcas, m int, alg allgatherFn) sim.Time {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topology.New(nodes, ppn, hcas)})
	n := w.Topo().Size()
	want := expectedAllgather(n, m)
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		send := mpi.Bytes(pattern(p.Rank(), m))
		recv := mpi.NewBuf(n * m)
		alg(p, w, send, recv)
		if got := string(recv.Data()); got != string(want) {
			t.Errorf("%d nodes x %d ppn, m=%d: rank %d wrong result", nodes, ppn, m, p.Rank())
		}
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		t.Fatalf("%d nodes x %d ppn: %v", nodes, ppn, err)
	}
	return worst
}

var flatAlgorithms = map[string]allgatherFn{
	"ring":   flat(RingAllgather),
	"rd":     flat(RDAllgather),
	"bruck":  flat(BruckAllgather),
	"direct": flat(DirectSpreadAllgather),
}

func TestFlatAllgathersMatchOracle(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{
		{1, 1}, {1, 2}, {1, 5}, {1, 8},
		{2, 1}, {2, 3}, {4, 2}, {3, 3}, {8, 1}, {4, 4}, {5, 2},
	}
	for name, alg := range flatAlgorithms {
		for _, s := range shapes {
			for _, m := range []int{1, 8, 1024} {
				t.Run(fmt.Sprintf("%s/%dx%d/m=%d", name, s.nodes, s.ppn, m), func(t *testing.T) {
					runAllgather(t, s.nodes, s.ppn, 2, m, alg)
				})
			}
		}
	}
}

func TestNeighborExchangeMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 2}, {1, 4}, {2, 3}, {1, 8}, {2, 2}, {3, 2}, {1, 5}} {
		t.Run(fmt.Sprintf("%dx%d", s.nodes, s.ppn), func(t *testing.T) {
			runAllgather(t, s.nodes, s.ppn, 1, 64, flat(NeighborExchangeAllgather))
		})
	}
}

func TestHierarchicalAllgatherAllVariants(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{
		{1, 1}, {1, 4}, {2, 1}, {2, 4}, {4, 2}, {4, 4}, {3, 3}, {8, 2}, {5, 3},
	}
	cfgs := map[string]HierarchicalConfig{
		"gather-ring-seq":     {LeaderAlg: LeaderRing, Overlap: false},
		"gather-ring-overlap": {LeaderAlg: LeaderRing, Overlap: true},
		"gather-rd-seq":       {LeaderAlg: LeaderRD, Overlap: false},
		"gather-rd-overlap":   {LeaderAlg: LeaderRD, Overlap: true},
		"nodeag-ring-overlap": {NodeAllgather: DirectSpreadAllgather, LeaderAlg: LeaderRing, Overlap: true},
		"nodeag-rd-overlap":   {NodeAllgather: DirectSpreadAllgather, LeaderAlg: LeaderRD, Overlap: true},
		"nodeag-ring-seq":     {NodeAllgather: RingAllgather, LeaderAlg: LeaderRing, Overlap: false},
	}
	for name, cfg := range cfgs {
		cfg := cfg
		for _, s := range shapes {
			for _, m := range []int{16, 512} {
				t.Run(fmt.Sprintf("%s/%dx%d/m=%d", name, s.nodes, s.ppn, m), func(t *testing.T) {
					runAllgather(t, s.nodes, s.ppn, 2, m, func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
						HierarchicalAllgather(p, w, send, recv, cfg)
					})
				})
			}
		}
	}
}

func TestKandallaAndMamidalaMatchOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{2, 4}, {4, 4}, {3, 2}} {
		runAllgather(t, s.nodes, s.ppn, 2, 256, KandallaAllgather)
		runAllgather(t, s.nodes, s.ppn, 2, 256, MamidalaAllgather)
	}
}

func TestOverlapIsFasterAtScale(t *testing.T) {
	// The overlap claim of Section 3.2: streaming phase 3 through shared
	// memory while phase 2 is on the wire beats sequential phases.
	m := 64 << 10
	seq := runTimedAllgather(t, 8, 8, 2, m, HierarchicalConfig{LeaderAlg: LeaderRing, Overlap: false})
	ovl := runTimedAllgather(t, 8, 8, 2, m, HierarchicalConfig{LeaderAlg: LeaderRing, Overlap: true})
	if ovl >= seq {
		t.Fatalf("overlap (%v) not faster than sequential (%v)", ovl, seq)
	}
}

// runTimedAllgather runs a phantom-mode hierarchical allgather for timing.
func runTimedAllgather(t *testing.T, nodes, ppn, hcas, m int, cfg HierarchicalConfig) sim.Time {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topology.New(nodes, ppn, hcas), Phantom: true})
	n := w.Topo().Size()
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		HierarchicalAllgather(p, w, mpi.Phantom(m), mpi.Phantom(n*m), cfg)
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return worst
}

func TestArrivalOrderCoversAllNodes(t *testing.T) {
	for _, alg := range []LeaderAlg{LeaderRing, LeaderRD} {
		for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
			for node := 0; node < n; node++ {
				seen := map[int]bool{}
				for _, grp := range arrivalOrder(alg, n, node) {
					for _, b := range grp {
						if seen[b] {
							t.Fatalf("%v n=%d node=%d: block %d twice", alg, n, node, b)
						}
						seen[b] = true
					}
				}
				if len(seen) != n {
					t.Fatalf("%v n=%d node=%d: %d blocks, want %d", alg, n, node, len(seen), n)
				}
				if grp := arrivalOrder(alg, n, node)[0]; len(grp) != 1 || grp[0] != node {
					t.Fatalf("%v n=%d node=%d: first group %v, want own block", alg, n, node, grp)
				}
			}
		}
	}
}

// f64buf builds a little-endian float64 buffer with value base+i.
func f64buf(base float64, elems int) mpi.Buf {
	b := make([]byte, elems*8)
	for i := 0; i < elems; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(base+float64(i)))
	}
	return mpi.Bytes(b)
}

func f64at(b mpi.Buf, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Data()[i*8:]))
}

type allreduceFn func(p *mpi.Proc, c *mpi.Comm, buf mpi.Buf, red Reducer)

func runAllreduce(t *testing.T, nodes, ppn, elems int, alg allreduceFn) {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topology.New(nodes, ppn, 2)})
	n := w.Topo().Size()
	err := w.Run(func(p *mpi.Proc) {
		buf := f64buf(float64(p.Rank()), elems)
		alg(p, w.CommWorld(), buf, SumF64())
		for i := 0; i < elems; i++ {
			// sum over r of (r + i) = n(n-1)/2 + n*i
			want := float64(n*(n-1))/2 + float64(n*i)
			if got := f64at(buf, i); math.Abs(got-want) > 1e-9 {
				t.Errorf("%dx%d elems=%d rank %d: elem %d = %v, want %v",
					nodes, ppn, elems, p.Rank(), i, got, want)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRingAllreduceMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn, elems int }{
		{1, 1, 4}, {1, 2, 1}, {1, 4, 16}, {2, 2, 7}, {4, 2, 64}, {3, 3, 10}, {2, 5, 33},
	} {
		runAllreduce(t, s.nodes, s.ppn, s.elems, RingAllreduce)
	}
}

func TestRDAllreduceMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn, elems int }{
		{1, 2, 4}, {1, 4, 8}, {2, 2, 16}, {1, 3, 4}, {3, 2, 8}, {5, 1, 2}, {1, 7, 5},
	} {
		runAllreduce(t, s.nodes, s.ppn, s.elems, RDAllreduce)
	}
}

func TestReduceScatterOwnership(t *testing.T) {
	// After reduce-scatter, rank r must hold the fully reduced chunk r.
	w := mpi.New(mpi.Config{Topo: topology.New(2, 2, 1)})
	n := 4
	elems := 8
	err := w.Run(func(p *mpi.Proc) {
		buf := f64buf(float64(p.Rank()*100), elems)
		ReduceScatterRing(p, w.CommWorld(), buf, SumF64())
		off, ln := chunkOf(buf.Len(), n, p.Rank())
		for i := off / 8; i < (off+ln)/8; i++ {
			want := float64(100*(n*(n-1))/2) + float64(n*i)
			if got := f64at(buf, i); math.Abs(got-want) > 1e-9 {
				t.Errorf("rank %d chunk elem %d = %v, want %v", p.Rank(), i, got, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceViaAllgatherMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{2, 2}, {4, 2}, {2, 4}} {
		w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
		n := w.Topo().Size()
		elems := 4 * n // multiple of n so chunks are uniform
		err := w.Run(func(p *mpi.Proc) {
			buf := f64buf(float64(p.Rank()), elems)
			AllreduceViaAllgather(p, w.CommWorld(), buf, SumF64(),
				func(p *mpi.Proc, send, recv mpi.Buf) {
					HierarchicalAllgather(p, w, send, recv, HierarchicalConfig{
						NodeAllgather: DirectSpreadAllgather,
						LeaderAlg:     LeaderRing,
						Overlap:       true,
					})
				})
			for i := 0; i < elems; i++ {
				want := float64(n*(n-1))/2 + float64(n*i)
				if got := f64at(buf, i); math.Abs(got-want) > 1e-9 {
					t.Errorf("rank %d elem %d = %v want %v", p.Rank(), i, got, want)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestProfilesProduceCorrectResults(t *testing.T) {
	for _, prof := range []Profile{HPCX(), MVAPICH2X()} {
		prof := prof
		for _, m := range []int{64, 16 << 10} { // below and above switch points
			runAllgather(t, 2, 4, 2, m, prof.Allgather)
		}
		// Allreduce via profile.
		w := mpi.New(mpi.Config{Topo: topology.New(2, 2, 2)})
		n := w.Topo().Size()
		err := w.Run(func(p *mpi.Proc) {
			buf := f64buf(float64(p.Rank()), 16)
			prof.Allreduce(p, w, buf, SumF64())
			want := float64(n*(n-1)) / 2
			if got := f64at(buf, 0); math.Abs(got-want) > 1e-9 {
				t.Errorf("%s allreduce elem 0 = %v, want %v", prof.Name, got, want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestChunkOfPartition(t *testing.T) {
	f := func(rawN uint16, rawParts uint8) bool {
		n := (int(rawN)%2048 + 1) * 8
		parts := int(rawParts)%16 + 1
		total := 0
		prevEnd := 0
		for i := 0; i < parts; i++ {
			off, ln := chunkOf(n, parts, i)
			if off != prevEnd || ln < 0 || off%8 != 0 || ln%8 != 0 {
				return false
			}
			prevEnd = off + ln
			total += ln
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every flat allgather yields the oracle on random small shapes.
func TestQuickFlatAllgatherCorrect(t *testing.T) {
	algs := []allgatherFn{flat(RingAllgather), flat(RDAllgather), flat(BruckAllgather), flat(DirectSpreadAllgather)}
	f := func(nodes, ppn, which uint8, mRaw uint16) bool {
		nd := int(nodes)%3 + 1
		l := int(ppn)%4 + 1
		m := int(mRaw)%256 + 1
		alg := algs[int(which)%len(algs)]
		w := mpi.New(mpi.Config{Topo: topology.New(nd, l, 2)})
		n := w.Topo().Size()
		want := string(expectedAllgather(n, m))
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(n * m)
			alg(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv)
			if string(recv.Data()) != want {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: hierarchical allgather (any phase-2 alg, overlap on/off)
// matches the oracle on random shapes.
func TestQuickHierarchicalCorrect(t *testing.T) {
	f := func(nodes, ppn uint8, rd, overlap, nodeag bool, mRaw uint16) bool {
		nd := int(nodes)%5 + 1
		l := int(ppn)%4 + 1
		m := (int(mRaw)%64 + 1) * 8
		cfg := HierarchicalConfig{LeaderAlg: LeaderRing, Overlap: overlap}
		if rd {
			cfg.LeaderAlg = LeaderRD
		}
		if nodeag {
			cfg.NodeAllgather = DirectSpreadAllgather
		}
		w := mpi.New(mpi.Config{Topo: topology.New(nd, l, 2)})
		n := w.Topo().Size()
		want := string(expectedAllgather(n, m))
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(n * m)
			HierarchicalAllgather(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv, cfg)
			if string(recv.Data()) != want {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLeaderAlgString(t *testing.T) {
	if LeaderRing.String() != "ring" || LeaderRD.String() != "rd" {
		t.Fatal("LeaderAlg strings")
	}
	if LeaderAlg(9).String() == "" {
		t.Fatal("unknown alg string empty")
	}
}

func TestAllgatherArgCheck(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(1, 2, 1)})
	err := w.Run(func(p *mpi.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("size mismatch should panic")
			}
		}()
		RingAllgather(p, w.CommWorld(), mpi.Phantom(8), mpi.Phantom(8)) // needs 16
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloat64SumReduce(t *testing.T) {
	a := f64buf(1, 4)
	b := f64buf(10, 4)
	SumF64().Reduce(a, b)
	for i := 0; i < 4; i++ {
		want := (1 + float64(i)) + (10 + float64(i))
		if got := f64at(a, i); got != want {
			t.Fatalf("elem %d = %v, want %v", i, got, want)
		}
	}
	// Phantom reduce must be a no-op without panicking.
	SumF64().Reduce(mpi.Phantom(16), mpi.Phantom(16))
	if SumF64().Cost(8<<20) <= 0 {
		t.Fatal("reduction cost should be positive")
	}
	var zero Float64Sum
	if zero.Cost(1024) <= 0 {
		t.Fatal("zero-valued reducer should fall back to a default rate")
	}
}

func TestMultiLeaderAllgatherMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn, groups int }{
		{2, 4, 1}, {2, 4, 2}, {2, 4, 4}, {3, 6, 3}, {4, 2, 2}, {1, 4, 2}, {2, 1, 1},
	} {
		w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
		n := w.Topo().Size()
		m := 96
		want := string(expectedAllgather(n, m))
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(n * m)
			MultiLeaderAllgather(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv, s.groups)
			if string(recv.Data()) != want {
				t.Errorf("%+v: rank %d wrong", s, p.Rank())
			}
		})
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
	}
}

func TestMultiLeaderBlendBottleneck(t *testing.T) {
	// The paper's Section 1.1 critique of the multi-leader design: with
	// several leaders per node, the phase-2 ring blends intra-node and
	// inter-node hops and serializes on the slower intra-node ones, so
	// more groups make large-message allgathers SLOWER -- the motivation
	// for the single-leader decoupling in MHA-inter.
	m := 256 << 10
	run := func(groups int) sim.Time {
		w := mpi.New(mpi.Config{Topo: topology.New(4, 8, 2), Phantom: true})
		var worst sim.Time
		err := w.Run(func(p *mpi.Proc) {
			MultiLeaderAllgather(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()), groups)
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	one, two := run(1), run(2)
	if two <= one {
		t.Fatalf("expected the blend bottleneck: 2 groups (%v) vs 1 group (%v)", two, one)
	}
}

func TestMultiLeaderBadGroupsPanics(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(1, 4, 1)})
	err := w.Run(func(p *mpi.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("3 groups over PPN 4 should panic")
			}
		}()
		MultiLeaderAllgather(p, w, mpi.Phantom(8), mpi.Phantom(32), 3)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommNamedSharedAcrossRanks(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(1, 4, 1)})
	err := w.Run(func(p *mpi.Proc) {
		c1 := p.World().CommNamed("test", func() []int { return []int{0, 1, 2, 3} })
		c2 := p.World().CommNamed("test", func() []int { return []int{0, 1, 2, 3} })
		if c1 != c2 {
			t.Error("CommNamed returned different objects for the same key")
		}
		c1.Barrier(p) // all four ranks must share it for the barrier to pass
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIAllgatherMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 4}, {2, 3}, {4, 2}} {
		w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
		n := w.Topo().Size()
		m := 128
		want := string(expectedAllgather(n, m))
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(n * m)
			req := IAllgatherDirect(p, w.CommWorld(), mpi.Bytes(pattern(p.Rank(), m)), recv)
			req.Wait()
			req.Wait() // idempotent
			if string(recv.Data()) != want {
				t.Errorf("%dx%d: rank %d wrong", s.nodes, s.ppn, p.Rank())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestIAllgatherOverlapsCompute(t *testing.T) {
	// One rank per node: the transfers ride the NICs, so computing between
	// Start and Wait costs max(comm, compute), not the sum.
	m := 2 << 20
	compute := 300 * sim.Microsecond
	measure := func(withCompute bool) sim.Time {
		w := mpi.New(mpi.Config{Topo: topology.New(4, 1, 2), Phantom: true})
		var worst sim.Time
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.Phantom(m * p.Size())
			req := IAllgatherDirect(p, w.CommWorld(), mpi.Phantom(m), recv)
			if withCompute {
				p.Sleep(compute) // independent work
			}
			req.Wait()
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	plain := measure(false)
	overlapped := measure(true)
	// The overlapped run may be at most slightly longer than
	// max(plain, compute), never plain+compute.
	bound := plain
	if sim.Time(compute) > bound {
		bound = sim.Time(compute)
	}
	if float64(overlapped) > 1.1*float64(bound) {
		t.Fatalf("overlap broken: plain %v, compute %v, overlapped %v", plain, compute, overlapped)
	}
}

func TestExtremeReducers(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(2, 2, 2)})
	n := w.Topo().Size()
	err := w.Run(func(p *mpi.Proc) {
		// Rank r holds r, r+1, ...; max over ranks is n-1+i, min is i.
		buf := f64buf(float64(p.Rank()), 4)
		RingAllreduce(p, w.CommWorld(), buf, MaxF64())
		for i := 0; i < 4; i++ {
			if got, want := f64at(buf, i), float64(n-1+i); got != want {
				t.Errorf("max elem %d = %v want %v", i, got, want)
			}
		}
		buf2 := f64buf(float64(p.Rank()), 4)
		RDAllreduce(p, w.CommWorld(), buf2, MinF64())
		for i := 0; i < 4; i++ {
			if got, want := f64at(buf2, i), float64(i); got != want {
				t.Errorf("min elem %d = %v want %v", i, got, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phantom reduce is a costed no-op.
	MaxF64().Reduce(mpi.Phantom(8), mpi.Phantom(8))
	if MaxF64().Cost(1<<20) <= 0 {
		t.Fatal("extreme reducer should cost time")
	}
	var zero Float64Extreme
	if zero.Cost(8) <= 0 {
		t.Fatal("zero-value reducer should fall back to a default rate")
	}
}
