package collectives

import (
	"fmt"

	"mha/internal/mpi"
)

const (
	phaseGatherV  = 14
	phaseScatterV = 15
)

// LinearGatherv is MPI_Gatherv: rank r contributes counts[r] bytes and
// root receives the concatenation in comm-rank order. Non-root ranks may
// pass a zero Buf for recv.
func LinearGatherv(p *mpi.Proc, c *mpi.Comm, root int, send, recv mpi.Buf, counts []int) {
	n := c.Size()
	if len(counts) != n {
		panic(fmt.Sprintf("collectives: %d counts for %d ranks", len(counts), n))
	}
	me := c.Rank(p)
	if send.Len() != counts[me] {
		panic(fmt.Sprintf("collectives: rank %d sends %dB, counts say %dB", me, send.Len(), counts[me]))
	}
	epoch := c.Epoch(p)
	if me != root {
		if counts[me] > 0 {
			p.Send(c, root, mpi.Tag(epoch, phaseGatherV, me), send)
		}
		return
	}
	offs, total := vOffsets(counts)
	if recv.Len() != total {
		panic(fmt.Sprintf("collectives: gatherv recv %dB, counts sum to %dB", recv.Len(), total))
	}
	if counts[me] > 0 {
		p.LocalCopy(recv.Slice(offs[me], counts[me]), send)
	}
	for r := 0; r < n; r++ {
		if r == root || counts[r] == 0 {
			continue
		}
		got := p.Recv(c, r, mpi.Tag(epoch, phaseGatherV, r))
		recv.Slice(offs[r], counts[r]).CopyFrom(got)
	}
}

// LinearScatterv is MPI_Scatterv: root distributes counts[r] bytes to each
// rank r from its concatenated send buffer. Non-root ranks may pass a zero
// Buf for send.
func LinearScatterv(p *mpi.Proc, c *mpi.Comm, root int, send, recv mpi.Buf, counts []int) {
	n := c.Size()
	if len(counts) != n {
		panic(fmt.Sprintf("collectives: %d counts for %d ranks", len(counts), n))
	}
	me := c.Rank(p)
	if recv.Len() != counts[me] {
		panic(fmt.Sprintf("collectives: rank %d receives %dB, counts say %dB", me, recv.Len(), counts[me]))
	}
	epoch := c.Epoch(p)
	if me != root {
		if counts[me] > 0 {
			got := p.Recv(c, root, mpi.Tag(epoch, phaseScatterV, me))
			recv.CopyFrom(got)
		}
		return
	}
	offs, total := vOffsets(counts)
	if send.Len() != total {
		panic(fmt.Sprintf("collectives: scatterv send %dB, counts sum to %dB", send.Len(), total))
	}
	for r := 0; r < n; r++ {
		if r == root || counts[r] == 0 {
			continue
		}
		p.Send(c, r, mpi.Tag(epoch, phaseScatterV, r), send.Slice(offs[r], counts[r]))
	}
	if counts[me] > 0 {
		p.LocalCopy(recv, send.Slice(offs[me], counts[me]))
	}
}
