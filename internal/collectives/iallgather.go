package collectives

import (
	"mha/internal/mpi"
)

const phaseIAG = 31 // last free phase id (see the other phase blocks)

// AllgatherRequest is the handle of an in-flight nonblocking allgather
// (the MPI_Iallgather pattern). Complete it with Wait; the caller may
// compute between Start and Wait, overlapping communication.
type AllgatherRequest struct {
	p     *mpi.Proc
	recvs []iagPending
	sends []*mpi.Request
	recv  mpi.Buf
	done  bool
}

type iagPending struct {
	req *mpi.Request
	off int
	n   int
}

// IAllgatherDirect starts a nonblocking allgather using the dissemination
// (Direct Spread) schedule — the only conventional schedule with no
// forwarding dependencies, so every transfer can be posted up front.
// Intra-node copies still occupy the caller's CPU (they queue on it and
// run before any later Compute, as on real hardware); inter-node
// transfers proceed entirely in the background.
func IAllgatherDirect(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) *AllgatherRequest {
	checkAllgatherArgs(c, send, recv)
	m := send.Len()
	n := c.Size()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	r := &AllgatherRequest{p: p, recv: recv}
	p.LocalCopy(recv.Slice(me*m, m), send)
	for s := 1; s < n; s++ {
		src := (me - s + n) % n
		r.recvs = append(r.recvs, iagPending{
			req: p.Irecv(c, src, mpi.Tag(epoch, phaseIAG, s)),
			off: src * m,
			n:   m,
		})
	}
	for s := 1; s < n; s++ {
		dst := (me + s) % n
		r.sends = append(r.sends, p.Isend(c, dst, mpi.Tag(epoch, phaseIAG, s), send))
	}
	return r
}

// Wait completes the allgather: blocks until every block has arrived and
// every outgoing transfer has left. Wait is idempotent.
func (r *AllgatherRequest) Wait() {
	if r.done {
		return
	}
	r.done = true
	for _, pr := range r.recvs {
		data := r.p.Wait(pr.req)
		r.recv.Slice(pr.off, pr.n).CopyFrom(data)
	}
	for _, sr := range r.sends {
		r.p.Wait(sr)
	}
}
