package collectives

import "mha/internal/mpi"

// This file implements the locality-aware allgather family: flat
// communicator-based algorithms that discover which ranks share a node and
// route the bulk of the traffic so that each inter-node link carries every
// byte at most once. Unlike HierarchicalAllgather they assume nothing about
// the rank layout — block, cyclic, custom and sub-communicators all work —
// because the node groups are derived from the communicator membership
// itself. On oversubscribed fabrics (internal/fabric) this is what keeps
// the thin trunk links off the critical path: the conventional flat
// algorithms cross them once per rank pair, the locality family once per
// node pair.

// localityGroups partitions the communicator's ranks by the node hosting
// them. Groups are ordered by node id and each group lists its member comm
// ranks in ascending order, so every rank derives the identical partition
// without communication. The second result maps each comm rank to its
// (group, slot) position.
func localityGroups(p *mpi.Proc, c *mpi.Comm) (groups [][]int, groupOf, slotOf []int) {
	topo := p.World().Topo()
	n := c.Size()
	byNode := make([][]int, topo.Nodes)
	for cr := 0; cr < n; cr++ {
		nd := topo.NodeOf(c.WorldRank(cr))
		byNode[nd] = append(byNode[nd], cr)
	}
	groupOf = make([]int, n)
	slotOf = make([]int, n)
	for nd := 0; nd < topo.Nodes; nd++ {
		if len(byNode[nd]) == 0 {
			continue
		}
		g := len(groups)
		groups = append(groups, byNode[nd])
		for j, cr := range byNode[nd] {
			groupOf[cr] = g
			slotOf[cr] = j
		}
	}
	return groups, groupOf, slotOf
}

// localityLeaderAlg is the shape shared by the inter-group exchanges of the
// three leader-based variants: given the leader's staging state it must
// leave every group's block in tmp at its natural offset (tmp is laid out
// group 0, group 1, ... regardless of the exchange order).
type localityLeaderAlg func(p *mpi.Proc, c *mpi.Comm, epoch int, groups [][]int, g, m int, tmp mpi.Buf, off []int)

// localityAllgather is the three-phase skeleton shared by locality-p2p,
// locality-ring and locality-bruck: (1) every member hands its block to the
// group leader by reference and the leader pulls it over CMA, (2) the
// leaders exchange variable-size group blocks with the given algorithm,
// (3) every member pulls the assembled result from its leader over CMA.
func localityAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf, exchange localityLeaderAlg) {
	checkAllgatherArgs(c, send, recv)
	m := send.Len()
	n := c.Size()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	groups, groupOf, slotOf := localityGroups(p, c)
	g, slot := groupOf[me], slotOf[me]
	mine := groups[g]

	if slot != 0 {
		// Non-leader: expose the block (phase 1), then pull everything the
		// leader assembled (phase 3). The ByRef handoff costs nothing; the
		// CMA pulls carry the real intra-node price.
		leader := mine[0]
		p.Send(c, leader, mpi.Tag(epoch, phaseLocGather, slot), send, mpi.ByRef())
		got := p.Recv(c, leader, mpi.Tag(epoch, phaseLocBcast, slot))
		p.ChargeCMA(n * m)
		recv.CopyFrom(got)
		return
	}

	// ---- Phase 1 (leader): pull every member's block into a contiguous
	// group block, so phase 2 sends one message per group pair.
	k := len(mine)
	tmp := mpi.Make(n*m, send.IsPhantom())
	off := make([]int, len(groups)+1) // natural group-block offsets in tmp
	for i, grp := range groups {
		off[i+1] = off[i] + len(grp)*m
	}
	tmp.Slice(off[g], m).CopyFrom(send)
	for j := 1; j < k; j++ {
		got := p.Recv(c, mine[j], mpi.Tag(epoch, phaseLocGather, j))
		p.ChargeCMA(m)
		tmp.Slice(off[g]+j*m, m).CopyFrom(got)
	}
	p.ChargeCopy(k * m)

	// ---- Phase 2: inter-group exchange over the leaders.
	if len(groups) > 1 {
		exchange(p, c, epoch, groups, g, m, tmp, off)
	}

	// ---- Scatter the group blocks into rank order. One bulk memmove: the
	// blocks are contiguous per group, only the group interleave varies.
	for i, grp := range groups {
		for j, cr := range grp {
			recv.Slice(cr*m, m).CopyFrom(tmp.Slice(off[i]+j*m, m))
		}
	}
	p.ChargeCopy(n * m)

	// ---- Phase 3 (leader): every member pulls the full result.
	if k > 1 {
		reqs := make([]*mpi.Request, 0, k-1)
		for j := 1; j < k; j++ {
			reqs = append(reqs, p.Isend(c, mine[j], mpi.Tag(epoch, phaseLocBcast, j), recv, mpi.ByRef()))
		}
		for _, r := range reqs {
			p.Wait(r)
		}
	}
}

// LocalityP2PAllgather exchanges group blocks leader-to-leader with the
// direct-spread pattern: in step s the leader of group g sends its own
// block to group (g+s) and receives group (g-s)'s — no forwarding, G-1
// inter-node messages per leader.
func LocalityP2PAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	localityAllgather(p, c, send, recv,
		func(p *mpi.Proc, c *mpi.Comm, epoch int, groups [][]int, g, m int, tmp mpi.Buf, off []int) {
			G := len(groups)
			own := tmp.Slice(off[g], off[g+1]-off[g])
			for s := 1; s < G; s++ {
				dst := (g + s) % G
				src := (g - s + G) % G
				tag := mpi.Tag(epoch, phaseLocX, s)
				rreq := p.Irecv(c, groups[src][0], tag)
				sreq := p.Isend(c, groups[dst][0], tag, own)
				got := p.Wait(rreq)
				tmp.Slice(off[src], off[src+1]-off[src]).CopyFrom(got)
				p.Wait(sreq)
			}
		})
}

// LocalityRingAllgather exchanges group blocks around a ring of leaders:
// G-1 nearest-leader steps, each forwarding the block received in the
// previous step. Every inter-node link carries each node block exactly
// once, which is what makes it the steady-state winner on tapered trees.
func LocalityRingAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	localityAllgather(p, c, send, recv,
		func(p *mpi.Proc, c *mpi.Comm, epoch int, groups [][]int, g, m int, tmp mpi.Buf, off []int) {
			G := len(groups)
			right := groups[(g+1)%G][0]
			left := groups[(g-1+G)%G][0]
			cur := g
			for s := 0; s < G-1; s++ {
				tag := mpi.Tag(epoch, phaseLocX, s)
				rreq := p.Irecv(c, left, tag)
				sreq := p.Isend(c, right, tag, tmp.Slice(off[cur], off[cur+1]-off[cur]))
				got := p.Wait(rreq)
				cur = (cur - 1 + G) % G
				tmp.Slice(off[cur], off[cur+1]-off[cur]).CopyFrom(got)
				p.Wait(sreq)
			}
		})
}

// LocalityBruckAllgather exchanges group blocks with Bruck's algorithm over
// the leaders: ceil(log2 G) steps of doubling aggregate size, so short
// leader counts finish in few rounds. The staging buffer is kept in
// rotated group order during the exchange and un-rotated at the end.
func LocalityBruckAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	localityAllgather(p, c, send, recv,
		func(p *mpi.Proc, c *mpi.Comm, epoch int, groups [][]int, g, m int, tmp mpi.Buf, off []int) {
			G := len(groups)
			n := off[G] / m
			// rot[i]: offset of the i-th rotated block (group (g+i)%G); the
			// sender's first cnt rotated blocks are groups g..g+cnt-1 from
			// the receiver's point of view too, so sizes always agree.
			rot := make([]int, G+1)
			for i := 0; i < G; i++ {
				rot[i+1] = rot[i] + len(groups[(g+i)%G])*m
			}
			stage := mpi.Make(n*m, tmp.IsPhantom())
			stage.Slice(0, rot[1]).CopyFrom(tmp.Slice(off[g], off[g+1]-off[g]))
			filled := 1
			step := 0
			for pow := 1; pow < G; pow *= 2 {
				cnt := pow
				if G-filled < cnt {
					cnt = G - filled
				}
				dst := (g - pow + G) % G
				src := (g + pow) % G
				tag := mpi.Tag(epoch, phaseLocX, step)
				got := p.SendRecv(c, groups[dst][0], tag, stage.Slice(0, rot[cnt]), groups[src][0], tag)
				stage.Slice(rot[filled], rot[filled+cnt]-rot[filled]).CopyFrom(got)
				filled += cnt
				step++
			}
			for i := 0; i < G; i++ {
				gg := (g + i) % G
				tmp.Slice(off[gg], off[gg+1]-off[gg]).CopyFrom(stage.Slice(rot[i], rot[i+1]-rot[i]))
			}
			p.ChargeCopy(n * m) // one bulk memmove for the un-rotation
		})
}

// HierBruckMLAllgather is the multi-level hierarchical Bruck: instead of
// funneling through one leader per node, every member runs its own Bruck
// exchange across the groups against the same-slot members of the other
// nodes, and the members of each node continuously share what they have
// gathered so far over CMA. There is no intra-node gather phase at all —
// member j's share of the node's traffic is exactly its own block — so all
// rails of a node are driven concurrently from step one, and the CMA
// shares of round s ride the CPU while the NICs carry inter-node step s+1
// (the paper's phase-overlap, applied per member). Requires equal group
// sizes; uneven communicators fall back to LocalityBruckAllgather.
func HierBruckMLAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	checkAllgatherArgs(c, send, recv)
	m := send.Len()
	me := c.Rank(p)
	groups, groupOf, slotOf := localityGroups(p, c)
	G := len(groups)
	k := len(groups[0])
	for _, grp := range groups {
		if len(grp) != k {
			LocalityBruckAllgather(p, c, send, recv)
			return
		}
	}
	epoch := c.Epoch(p)
	g, j := groupOf[me], slotOf[me]

	// tmpJ accumulates, in rotated order, the block of group (g+i)%G's
	// slot-j member. Once a range of tmpJ has landed it is never rewritten,
	// so in-flight ByRef exposures of earlier ranges stay valid.
	tmpJ := mpi.Make(G*m, send.IsPhantom())
	p.LocalCopy(tmpJ.Slice(0, m), send)

	var pending []*mpi.Request
	// share exposes tmpJ's rotated range [lo, lo+cnt) to every sibling,
	// places the own copy, and pulls the siblings' same range over CMA
	// straight into rank order (a scattered process_vm_readv — the pull is
	// the placement, so only the own copy charges memcpy time).
	share := func(round, lo, cnt int) {
		for jj := 0; jj < k; jj++ {
			if jj == j {
				continue
			}
			pending = append(pending, p.Isend(c, groups[g][jj],
				mpi.Tag(epoch, phaseLocBcast, round), tmpJ.Slice(lo*m, cnt*m), mpi.ByRef()))
		}
		for i := lo; i < lo+cnt; i++ {
			recv.Slice(groups[(g+i)%G][j]*m, m).CopyFrom(tmpJ.Slice(i*m, m))
		}
		p.ChargeCopy(cnt * m)
		for jj := 0; jj < k; jj++ {
			if jj == j {
				continue
			}
			got := p.Recv(c, groups[g][jj], mpi.Tag(epoch, phaseLocBcast, round))
			p.ChargeCMA(cnt * m)
			for i := lo; i < lo+cnt; i++ {
				recv.Slice(groups[(g+i)%G][jj]*m, m).CopyFrom(got.Slice((i-lo)*m, m))
			}
		}
	}

	// Bruck across groups between slot-j members. Slots never share an
	// endpoint pair, so the per-step tags cannot collide across slots; the
	// intra-node share tags are disambiguated by (sender, round).
	filled := 1
	step := 0
	prevLo, prevCnt := 0, 1
	for pow := 1; pow < G; pow *= 2 {
		cnt := pow
		if G-filled < cnt {
			cnt = G - filled
		}
		dst := groups[(g-pow+G)%G][j]
		src := groups[(g+pow)%G][j]
		tag := mpi.Tag(epoch, phaseLocX, step)
		rreq := p.Irecv(c, src, tag)
		sreq := p.Isend(c, dst, tag, tmpJ.Slice(0, cnt*m))
		share(step, prevLo, prevCnt) // CPU shares round s while NICs run step s+1
		got := p.Wait(rreq)
		tmpJ.Slice(filled*m, cnt*m).CopyFrom(got)
		p.Wait(sreq)
		prevLo, prevCnt = filled, cnt
		filled += cnt
		step++
	}
	share(step, prevLo, prevCnt) // tail: the final range still needs sharing
	p.Waitall(pending...)
}
