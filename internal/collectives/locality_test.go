package collectives

import (
	"fmt"
	"testing"

	"mha/internal/fabric"
	"mha/internal/mpi"
	"mha/internal/sim"
	"mha/internal/topology"
)

var localityAlgorithms = map[string]func(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf){
	"locality-p2p":   LocalityP2PAllgather,
	"locality-ring":  LocalityRingAllgather,
	"locality-bruck": LocalityBruckAllgather,
	"hier-bruck-ml":  HierBruckMLAllgather,
}

// The locality family must be byte-correct on every rank layout: the node
// groups are derived from the communicator, not assumed contiguous.
func TestLocalityAllgathersMatchOracle(t *testing.T) {
	topos := map[string]topology.Cluster{
		"1x1-block":  topology.New(1, 1, 1),
		"1x5-block":  topology.New(1, 5, 2),
		"2x1-block":  topology.New(2, 1, 2),
		"4x2-block":  topology.New(4, 2, 2),
		"3x3-block":  topology.New(3, 3, 2),
		"5x2-cyclic": {Nodes: 5, PPN: 2, HCAs: 2, Layout: topology.Cyclic},
		"4x4-cyclic": {Nodes: 4, PPN: 4, HCAs: 2, Layout: topology.Cyclic},
		"2x2-custom": {Nodes: 2, PPN: 2, HCAs: 2, Layout: topology.Custom,
			Ranks: [][]int{{3, 0}, {2, 1}}},
	}
	for name, alg := range localityAlgorithms {
		for tname, topo := range topos {
			for _, m := range []int{1, 8, 1024} {
				t.Run(fmt.Sprintf("%s/%s/m=%d", name, tname, m), func(t *testing.T) {
					w := mpi.New(mpi.Config{Topo: topo})
					n := topo.Size()
					want := string(expectedAllgather(n, m))
					err := w.Run(func(p *mpi.Proc) {
						recv := mpi.NewBuf(n * m)
						alg(p, w.CommWorld(), mpi.Bytes(pattern(p.Rank(), m)), recv)
						if string(recv.Data()) != want {
							t.Errorf("rank %d wrong result", p.Rank())
						}
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// On a sub-communicator the groups are uneven (node 0 contributes three
// ranks, node 1 only one), which exercises the variable-size exchange and
// the hier-bruck-ml fallback.
func TestLocalityAllgathersOnSubComm(t *testing.T) {
	members := []int{0, 2, 3, 5} // nodes: 0,0,0,1 under block 2x3
	for name, alg := range localityAlgorithms {
		t.Run(name, func(t *testing.T) {
			w := mpi.New(mpi.Config{Topo: topology.New(2, 3, 2)})
			m := 64
			want := string(expectedAllgather(len(members), m))
			err := w.Run(func(p *mpi.Proc) {
				c := p.World().CommNamed("sub", func() []int { return members })
				cr := c.Rank(p)
				if cr < 0 {
					return
				}
				recv := mpi.NewBuf(len(members) * m)
				alg(p, c, mpi.Bytes(pattern(cr, m)), recv)
				if string(recv.Data()) != want {
					t.Errorf("comm rank %d wrong result", cr)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Mixed 1/2-HCA nodes with asymmetric rail bandwidth: the transport layer
// clamps and re-weights underneath, the collective must stay byte-exact.
func TestLocalityAllgathersHeterogeneous(t *testing.T) {
	topo := topology.Cluster{
		Nodes: 4, PPN: 2, HCAs: 2,
		NodeHCAs: []int{2, 1, 2, 1},
		RailBW:   []float64{1, 0.5},
		Layout:   topology.Cyclic,
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, alg := range localityAlgorithms {
		t.Run(name, func(t *testing.T) {
			w := mpi.New(mpi.Config{Topo: topo})
			n := topo.Size()
			m := 512
			want := string(expectedAllgather(n, m))
			err := w.Run(func(p *mpi.Proc) {
				recv := mpi.NewBuf(n * m)
				alg(p, w.CommWorld(), mpi.Bytes(pattern(p.Rank(), m)), recv)
				if string(recv.Data()) != want {
					t.Errorf("rank %d wrong result", p.Rank())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The family's reason to exist: on an oversubscribed fat-tree with a
// cyclic rank layout, every flat-algorithm hop crosses nodes and queues on
// the tapered trunks, while the locality variants cross each trunk once
// per node block. At 64KB at least one locality variant must beat the best
// conventional flat algorithm.
func TestLocalityBeatsFlatOnOversubscribedFatTree(t *testing.T) {
	topo := topology.Cluster{Nodes: 8, PPN: 4, HCAs: 2, Layout: topology.Cyclic}
	spec := fabric.MustParse("ft:arity=2,levels=2,over=2")
	m := 64 << 10
	measure := func(alg func(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf)) sim.Time {
		w := mpi.New(mpi.Config{Topo: topo, Fabric: &spec, Phantom: true})
		var worst sim.Time
		err := w.Run(func(p *mpi.Proc) {
			alg(p, w.CommWorld(), mpi.Phantom(m), mpi.Phantom(m*p.Size()))
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	bestFlat := sim.Time(0)
	for _, name := range []string{"ring", "rd", "bruck", "direct", "neighbor"} {
		run, _ := AllgatherByName(name)
		if tt := measure(run); bestFlat == 0 || tt < bestFlat {
			bestFlat = tt
		}
	}
	bestLoc := sim.Time(0)
	times := map[string]sim.Time{}
	for name, alg := range localityAlgorithms {
		tt := measure(alg)
		times[name] = tt
		if bestLoc == 0 || tt < bestLoc {
			bestLoc = tt
		}
	}
	if bestLoc >= bestFlat {
		t.Fatalf("locality family (%v, best of %v) not faster than best flat (%v)",
			bestLoc, times, bestFlat)
	}
}
