package collectives

import (
	"fmt"

	"mha/internal/mpi"
)

// MultiLeaderAllgather is the multi-leader-based allgather of Kandalla et
// al. [14] in its general form: each node's ranks are split into `groups`
// equal groups, each with its own leader; group leaders gather their
// group's blocks, all N*groups leaders run a flat ring allgather of group
// blocks, and every leader then broadcasts the complete result to its
// group through shared memory — phases strictly sequential, as published.
//
// groups == 1 is the single-leader configuration used as the MVAPICH2-X
// stand-in; higher group counts implicitly engage more rails in phase 2
// (several leaders per node drive the NICs concurrently), which is the
// design's original motivation and what the leader-count ablation sweeps.
func MultiLeaderAllgather(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf, groups int) {
	topo := w.Topo()
	c := w.CommWorld()
	checkAllgatherArgs(c, send, recv)
	L := topo.PPN
	if groups < 1 || L%groups != 0 {
		panic(fmt.Sprintf("collectives: %d groups do not divide PPN %d", groups, L))
	}
	m := send.Len()
	grpSize := L / groups
	node := p.Node()
	local := p.Local()
	grp := local / grpSize
	grpLeadLocal := grp * grpSize
	epoch := c.Epoch(p)

	// Group communicator (ranks of this node's group, leader first).
	gc := w.CommNamed(fmt.Sprintf("mlgrp-%d-%d-%d", groups, node, grp), func() []int {
		out := make([]int, grpSize)
		for i := range out {
			out[i] = topo.RankOf(node, grpLeadLocal+i)
		}
		return out
	})

	// Phase 1: gather the group's blocks at the group leader, into the
	// leader's receive buffer at the group's final offset.
	grpBase := (node*L + grpLeadLocal) * m
	var nodeBlock mpi.Buf
	if gc.Rank(p) == 0 {
		nodeBlock = recv.Slice(grpBase, grpSize*m)
	}
	GatherToLeader(p, gc, send, nodeBlock)

	isLeader := gc.Rank(p) == 0

	// Phase 2: flat ring allgather over all N*groups group leaders, with
	// one group block per step. Group leaders are ordered node-major.
	if topo.Nodes*groups > 1 && isLeader {
		lc := w.CommNamed(fmt.Sprintf("mllead-%d", groups), func() []int {
			out := make([]int, 0, topo.Nodes*groups)
			for nd := 0; nd < topo.Nodes; nd++ {
				for g := 0; g < groups; g++ {
					out = append(out, topo.RankOf(nd, g*grpSize))
				}
			}
			return out
		})
		nl := lc.Size()
		me := lc.Rank(p)
		right := (me + 1) % nl
		left := (me - 1 + nl) % nl
		B := grpSize * m
		cur := me
		for s := 0; s < nl-1; s++ {
			tag := mpi.Tag(epoch, phaseLeader, s)
			rreq := p.Irecv(lc, left, tag)
			sreq := p.Isend(lc, right, tag, recv.Slice(cur*B, B))
			got := p.Wait(rreq)
			cur = (me - s - 1 + nl) % nl
			recv.Slice(cur*B, B).CopyFrom(got)
			p.Wait(sreq)
		}
	}

	// Phase 3: each group leader publishes the complete result to its
	// group's shared region; members copy out everything but their own
	// group's final placement is included for simplicity (the published
	// buffer is the whole allgather result).
	if grpSize == 1 {
		return
	}
	shm := p.ShmOpen(fmt.Sprintf("ml-%d-%d-%d", groups, grp, epoch), recv.Len())
	done := shm.Counter("full")
	if isLeader {
		shm.CopyIn(p, 0, recv)
		done.Add(1)
		return
	}
	shm.WaitCounter(p, "full", 1)
	shm.CopyOut(p, 0, recv)
}
