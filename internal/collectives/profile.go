package collectives

import (
	"mha/internal/mpi"
)

// A Profile stands in for one MPI library's collective selection logic: a
// named set of message-size-dependent algorithm choices for Allgather and
// Allreduce. The two profiles below model the comparison targets of the
// paper's evaluation. They necessarily capture the documented, observable
// behavior of those libraries (flat versus two-level selection, striping at
// the point-to-point level) rather than their exact internal tuning tables.
type Profile struct {
	// Name identifies the profile in benchmark output.
	Name string
	// Allgather runs the profile's allgather over the world communicator.
	Allgather func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)
	// Allreduce runs the profile's in-place allreduce over the world
	// communicator.
	Allreduce func(p *mpi.Proc, w *mpi.World, buf mpi.Buf, red Reducer)
}

// Allgather algorithm switch points (bytes per rank contribution).
const (
	// smallAllgather: below this, log-step algorithms win on latency.
	smallAllgather = 8 << 10
	// smallAllreduce: below this, recursive doubling wins for allreduce.
	smallAllreduce = 16 << 10
)

// HPCX models NVIDIA HPC-X (an Open MPI variant): flat algorithms with
// multirail striping only at the point-to-point level — Bruck for small
// messages, recursive doubling for medium power-of-two worlds, and the
// flat ring for large messages, where the intra-node hops become the
// bottleneck the paper's Figure 2 shows.
func HPCX() Profile {
	return Profile{
		Name: "HPC-X",
		Allgather: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			name := "bruck"
			if send.Len() >= smallAllgather {
				name = "ring"
			}
			mustAllgather(name)(p, w.CommWorld(), send, recv)
		},
		Allreduce: func(p *mpi.Proc, w *mpi.World, buf mpi.Buf, red Reducer) {
			c := w.CommWorld()
			if buf.Len() < smallAllreduce {
				RDAllreduce(p, c, buf, red)
				return
			}
			RingAllreduce(p, c, buf, red)
		},
	}
}

// MVAPICH2X models MVAPICH2-X: recursive doubling for small messages and
// the two-level single-leader design with sequential phases (Kandalla et
// al.) for large ones — hierarchical, but without the multi-HCA-aware
// phase 1 or the phase-2/3 overlap the paper adds.
func MVAPICH2X() Profile {
	return Profile{
		Name: "MVAPICH2-X",
		Allgather: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			if send.Len() < smallAllgather {
				mustAllgather("rd")(p, w.CommWorld(), send, recv)
				return
			}
			KandallaAllgather(p, w, send, recv)
		},
		Allreduce: func(p *mpi.Proc, w *mpi.World, buf mpi.Buf, red Reducer) {
			c := w.CommWorld()
			if buf.Len() < smallAllreduce {
				RDAllreduce(p, c, buf, red)
				return
			}
			RingAllreduce(p, c, buf, red)
		},
	}
}
