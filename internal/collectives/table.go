package collectives

import (
	"fmt"

	"mha/internal/mpi"
)

// NamedAllgather is one flat, communicator-based allgather registered
// by name.
type NamedAllgather struct {
	Name string
	Run  func(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf)
}

// Allgathers is the single registration point for the flat allgather
// implementations. The verify campaign, the cluster scheduler's job
// dispatch and the library profiles all resolve flat allgathers from
// this table (compose.Variants is the analogous point for the derived
// collectives), so an algorithm added here cannot drift out of any of
// them.
func Allgathers() []NamedAllgather {
	return []NamedAllgather{
		{Name: "ring", Run: RingAllgather},
		{Name: "rd", Run: RDAllgather},
		{Name: "bruck", Run: BruckAllgather},
		{Name: "direct", Run: DirectSpreadAllgather},
		{Name: "neighbor", Run: NeighborExchangeAllgather},
		{Name: "locality-p2p", Run: LocalityP2PAllgather},
		{Name: "locality-ring", Run: LocalityRingAllgather},
		{Name: "locality-bruck", Run: LocalityBruckAllgather},
		{Name: "hier-bruck-ml", Run: HierBruckMLAllgather},
	}
}

// AllgatherByName resolves one registered flat allgather.
func AllgatherByName(name string) (func(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf), bool) {
	for _, a := range Allgathers() {
		if a.Name == name {
			return a.Run, true
		}
	}
	return nil, false
}

// mustAllgather resolves a name the caller registered itself.
func mustAllgather(name string) func(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	run, ok := AllgatherByName(name)
	if !ok {
		panic(fmt.Sprintf("collectives: allgather %q is not registered", name))
	}
	return run
}
