package collectives

import (
	"fmt"

	"mha/internal/mpi"
)

// LeaderAlg selects the inter-leader data-exchange algorithm for phase 2 of
// a hierarchical allgather.
type LeaderAlg int

const (
	// LeaderRing runs N-1 nearest-neighbor steps of one node-block each.
	// Constant step size gives the best phase-2/phase-3 overlap (Figure 7).
	LeaderRing LeaderAlg = iota
	// LeaderRD runs log2(N) recursive-doubling steps with doubling block
	// sizes; better for small messages, worse overlap for large ones.
	LeaderRD
)

func (a LeaderAlg) String() string {
	switch a {
	case LeaderRing:
		return "ring"
	case LeaderRD:
		return "rd"
	default:
		return fmt.Sprintf("LeaderAlg(%d)", int(a))
	}
}

// HierarchicalConfig selects the three phases of a two-level allgather.
type HierarchicalConfig struct {
	// NodeAllgather, when non-nil, is used as phase 1 so that every rank of
	// a node ends up holding the whole node block (the paper's design uses
	// MHA-intra here). When nil, phase 1 is a point-to-point gather to the
	// node leader only (the classic leader-based design).
	NodeAllgather func(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf)
	// LeaderAlg is the phase-2 algorithm.
	LeaderAlg LeaderAlg
	// Overlap, when true, streams each phase-2 chunk through shared memory
	// as it arrives (the paper's phase-3 overlap); when false, node-level
	// distribution starts only after phase 2 completes (Kandalla-style).
	Overlap bool
}

// HierarchicalAllgather runs a two-level allgather over the world
// communicator of w: phase 1 node-level aggregation, phase 2 inter-leader
// exchange, phase 3 node-level distribution through shared memory. The
// world must use block rank layout so that node blocks are contiguous in
// the receive buffer.
func HierarchicalAllgather(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf, cfg HierarchicalConfig) {
	c := w.CommWorld()
	checkAllgatherArgs(c, send, recv)
	m := send.Len()
	topo := w.Topo()
	L := topo.PPN
	N := topo.Nodes
	B := L * m // node-block size
	node := p.Node()
	nodeComm := w.NodeComm(node)
	leaderComm := w.LeaderComm()
	epoch := c.Epoch(p)

	// ---- Phase 1: node-level aggregation ----
	nodeBase := topo.RankOf(node, 0) * m
	if cfg.NodeAllgather != nil {
		cfg.NodeAllgather(p, nodeComm, send, recv.Slice(nodeBase, B))
	} else {
		gatherToLeader(p, nodeComm, epoch, send, recv.Slice(nodeBase, B))
	}
	if N == 1 {
		// Single node: with a gather-style phase 1 the non-leaders still
		// need the node block; broadcast it through shared memory.
		if cfg.NodeAllgather == nil && L > 1 {
			shm := p.ShmOpen(shmName(epoch), B)
			avail := shm.Counter("avail")
			if p.IsLeader() {
				shm.CopyIn(p, 0, recv.Slice(nodeBase, B))
				avail.Add(1)
			} else {
				shm.WaitCounter(p, "avail", 1)
				shm.CopyOut(p, 0, recv.Slice(nodeBase, B))
			}
		}
		return
	}

	shm := p.ShmOpen(shmName(epoch), N*B)
	// avail counts completed copy-ins, in the deterministic arrival order
	// that both leader and peers compute from the phase-2 algorithm.
	const availName = "avail"

	// When phase 1 already gave every rank its node block, the leader can
	// skip publishing it into shared memory (the availability slot is
	// granted for free and the peers skip the copy-out).
	skipOwn := cfg.NodeAllgather != nil

	if p.IsLeader() {
		switch cfg.LeaderAlg {
		case LeaderRing:
			leaderRing(p, leaderComm, epoch, recv, m*L, node, shm, availName, cfg.Overlap, skipOwn)
		case LeaderRD:
			leaderRD(p, leaderComm, epoch, recv, m*L, node, shm, availName, cfg.Overlap, skipOwn)
		default:
			panic("collectives: unknown leader algorithm")
		}
		return
	}
	if L == 1 {
		return
	}

	// ---- Phase 3 (non-leaders): copy blocks out as they become available.
	haveOwnBlock := cfg.NodeAllgather != nil
	for k, blk := range arrivalOrder(cfg.LeaderAlg, N, node) {
		shm.WaitCounter(p, availName, int64(k+1))
		for _, nb := range blk {
			if haveOwnBlock && nb == node {
				continue
			}
			off := nb * B
			shm.CopyOut(p, off, recv.Slice(off, B))
		}
	}
}

func shmName(epoch int) string { return fmt.Sprintf("hier-ag-%d", epoch) }

// GatherToLeader collects every rank's m-byte block at the leader (comm
// rank 0) of a single-node communicator, leader-pull style. Non-leaders
// may pass a zero Buf for nodeBlock.
func GatherToLeader(p *mpi.Proc, c *mpi.Comm, send, nodeBlock mpi.Buf) {
	gatherToLeader(p, c, c.Epoch(p), send, nodeBlock)
}

// gatherToLeader collects every rank's block at the node leader. CMA
// gathers are leader-driven: each non-leader only exposes its buffer (a
// zero-cost pointer handoff) and the leader's CPU performs the L-1
// cross-address-space pulls, serialized — which is exactly the phase-1
// bottleneck the MHA-intra design relieves by putting every rank's CPU and
// the idle adapters to work instead.
func gatherToLeader(p *mpi.Proc, nodeComm *mpi.Comm, epoch int, send, nodeBlock mpi.Buf) {
	m := send.Len()
	l := nodeComm.Rank(p)
	if l != 0 {
		p.Send(nodeComm, 0, mpi.Tag(epoch, phaseGather, l), send, mpi.ByRef())
		return
	}
	p.LocalCopy(nodeBlock.Slice(0, m), send)
	for peer := 1; peer < nodeComm.Size(); peer++ {
		got := p.Recv(nodeComm, peer, mpi.Tag(epoch, phaseGather, peer))
		p.ChargeCMA(m)
		nodeBlock.Slice(peer*m, m).CopyFrom(got)
	}
}

// arrivalOrder returns, for phase 2 of the given algorithm on N nodes as
// seen from `node`, the sequence of node-block groups in the order the node
// leader copies them into shared memory. Element 0 is always the node's own
// block; element k>0 lands when the avail counter reaches k+1.
func arrivalOrder(alg LeaderAlg, n, node int) [][]int {
	out := [][]int{{node}}
	switch alg {
	case LeaderRing:
		for s := 1; s < n; s++ {
			out = append(out, []int{(node - s + n) % n})
		}
	case LeaderRD:
		if n&(n-1) != 0 {
			// Non-power-of-two falls back to ring (see leaderRD).
			return arrivalOrder(LeaderRing, n, node)
		}
		base := node
		for dist := 1; dist < n; dist *= 2 {
			base = base &^ (dist - 1)
			sib := base ^ dist
			grp := make([]int, dist)
			for i := range grp {
				grp[i] = sib&^(dist-1) + i
			}
			out = append(out, grp)
		}
	}
	return out
}

// leaderRing is phase 2 with the ring algorithm plus, optionally, the
// overlapped phase-3 copy-ins: the copy of chunk i into shared memory runs
// while the transfer of chunk i+1 is already on the wire.
func leaderRing(p *mpi.Proc, lc *mpi.Comm, epoch int, recv mpi.Buf, B, node int, shm *mpi.Shm, avail string, overlap, skipOwn bool) {
	n := lc.Size()
	me := lc.Rank(p)
	right := (me + 1) % n
	left := (me - 1 + n) % n
	availC := shm.Counter(avail)

	cur := node // node whose block we forward next
	for s := 0; s < n-1; s++ {
		tag := mpi.Tag(epoch, phaseLeader, s)
		rreq := p.Irecv(lc, left, tag)
		sreq := p.Isend(lc, right, tag, recv.Slice(cur*B, B))
		if overlap {
			// While the wire is busy, publish the block we already hold
			// (own block at s==0, the previously received one after).
			if s > 0 || !skipOwn {
				shm.CopyIn(p, cur*B, recv.Slice(cur*B, B))
			}
			availC.Add(1)
		}
		got := p.Wait(rreq)
		cur = (node - s - 1 + n) % n
		recv.Slice(cur*B, B).CopyFrom(got)
		p.Wait(sreq)
	}
	if overlap {
		// Tail: the final block still has to be published after arrival.
		shm.CopyIn(p, cur*B, recv.Slice(cur*B, B))
		availC.Add(1)
		return
	}
	// Non-overlapped: publish everything only now, in arrival order.
	for k, blk := range arrivalOrder(LeaderRing, n, node) {
		for _, nb := range blk {
			if k == 0 && skipOwn {
				continue
			}
			shm.CopyIn(p, nb*B, recv.Slice(nb*B, B))
		}
		availC.Add(1)
	}
}

// leaderRD is phase 2 with recursive doubling. Each step exchanges the
// whole accumulated block range, which doubles every step; the overlap
// variant publishes each step's newly received range while the next
// (larger) transfer is in flight. Non-power-of-two node counts fall back
// to the ring exchange.
func leaderRD(p *mpi.Proc, lc *mpi.Comm, epoch int, recv mpi.Buf, B, node int, shm *mpi.Shm, avail string, overlap, skipOwn bool) {
	n := lc.Size()
	if n&(n-1) != 0 {
		leaderRing(p, lc, epoch, recv, B, node, shm, avail, overlap, skipOwn)
		return
	}
	me := lc.Rank(p)
	availC := shm.Counter(avail)

	type rng struct{ start, len int }
	pending := rng{node, 1} // own block: published while step 0 is in flight
	pendingOwn := true
	base := me
	for dist := 1; dist < n; dist *= 2 {
		peer := me ^ dist
		base = base &^ (dist - 1)
		tag := mpi.Tag(epoch, phaseLeader, dist)
		own := recv.Slice(base*B, dist*B)
		rreq := p.Irecv(lc, peer, tag)
		sreq := p.Isend(lc, peer, tag, own)
		if overlap {
			if !(pendingOwn && skipOwn) {
				shm.CopyIn(p, pending.start*B, recv.Slice(pending.start*B, pending.len*B))
			}
			availC.Add(1)
		}
		got := p.Wait(rreq)
		sibBase := base ^ dist
		recv.Slice(sibBase*B, dist*B).CopyFrom(got)
		p.Wait(sreq)
		pending = rng{sibBase, dist}
		pendingOwn = false
	}
	if overlap {
		shm.CopyIn(p, pending.start*B, recv.Slice(pending.start*B, pending.len*B))
		availC.Add(1)
		return
	}
	for k, blk := range arrivalOrder(LeaderRD, n, node) {
		if k == 0 && skipOwn {
			availC.Add(1)
			continue
		}
		lo, ln := blk[0], len(blk)
		shm.CopyIn(p, lo*B, recv.Slice(lo*B, ln*B))
		availC.Add(1)
	}
}

// KandallaAllgather is the multi-leader-based allgather of Kandalla et al.
// with a single leader per node and strictly sequential phases — the
// state-of-the-art two-level design the paper improves on. It stands in
// for MVAPICH2-X's large-message allgather in the evaluation.
func KandallaAllgather(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	HierarchicalAllgather(p, w, send, recv, HierarchicalConfig{
		LeaderAlg: LeaderRing,
		Overlap:   false,
	})
}

// MamidalaAllgather is the shared-memory + RDMA allgather of Mamidala et
// al.: a single-leader design whose inter-leader exchange is recursive
// doubling with network/shared-memory-copy overlap. The paper cites it as
// the prior overlapped design that is restricted to RD in phase 2.
func MamidalaAllgather(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	HierarchicalAllgather(p, w, send, recv, HierarchicalConfig{
		LeaderAlg: LeaderRD,
		Overlap:   true,
	})
}
