package compose

import (
	"fmt"

	"mha/internal/mpi"
	"mha/internal/sched"
	"mha/internal/sim"
)

// ByteSum is the reduction the derived collectives verify with: a
// byte-wise wrapping add. Unlike float addition it is exactly
// commutative and associative, so the oracle's expected bytes do not
// depend on fold order; unlike XOR, folding the same contribution twice
// does not cancel out, so a double delivery corrupts bytes visibly.
// It implements collectives.Reducer, which lets the differential tests
// drive the hand-written allreduces with the very same arithmetic.
type ByteSum struct{}

// Reduce implements collectives.Reducer (dst[i] += src[i], mod 256).
func (ByteSum) Reduce(dst, src mpi.Buf) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("compose: reduce size mismatch %d vs %d", dst.Len(), src.Len()))
	}
	if dst.IsPhantom() || src.IsPhantom() {
		return
	}
	d, s := dst.Data(), src.Data()
	for i := range d {
		d[i] += s[i]
	}
}

// Cost implements collectives.Reducer at the analyzer's fold
// throughput, so modeled and executed reduction times agree.
func (ByteSum) Cost(n int) sim.Duration {
	return sim.FromSeconds(float64(n) / 8e9)
}

// Fold is the sched.ExecuteGoal reducer for derived schedules: charge
// the fold's compute time, then sum the bytes in place.
func Fold(p *mpi.Proc, dst, src mpi.Buf) {
	sched.ChargeRed(p, dst, src)
	ByteSum{}.Reduce(dst, src)
}
