// Package compose is the composition layer over the sched IR: a
// collective is not hand-written code but a pipeline of three
// primitives — multicast, reduce, fence — interpreted against a
// declarative machine hierarchy (world → node → leader group → rail)
// and compiled down to a sched.Schedule plus sched.Goal. Every derived
// schedule therefore inherits the whole toolchain for free: the static
// analyzer checks completeness, hold progression, double folds and rail
// conflicts; the alpha-beta model prices it; the interpreter executes
// it on the mpi runtime; and the verify campaign, the cluster
// scheduler's job mix and the bench registry all consume the derived
// variants through one registration point (Variants).
//
// The primitive algebra follows HiCCL's: multicast moves copies of
// blocks toward the ranks that want them at some scope of the
// hierarchy, reduce folds partial contributions together (ownership
// chosen by the collective's goal), and fence forbids fusing the
// primitives on either side into overlapped steps. Reduce-scatter,
// alltoall, gather and scatter are derived this way, and the three
// hand-written collectives (allgather, allreduce, bcast) are re-derived
// as lowerings of the same pipelines — the two-phase multi-HCA
// allgather composition compiles to the byte-identical schedule
// TwoPhaseMHA builds by hand.
package compose

import "fmt"

// Collective names the contract a composition implements; it selects
// the goal (who starts and ends with which blocks) the lowering
// compiles against.
type Collective int

const (
	Allgather Collective = iota
	ReduceScatter
	Alltoall
	Gather
	Scatter
	Allreduce
	Bcast
)

var collNames = []string{"allgather", "reduce-scatter", "alltoall", "gather", "scatter", "allreduce", "bcast"}

func (c Collective) String() string {
	if c < 0 || int(c) >= len(collNames) {
		return fmt.Sprintf("Collective(%d)", int(c))
	}
	return collNames[c]
}

// ParseCollective resolves a collective by its textual name.
func ParseCollective(s string) (Collective, error) {
	for i, name := range collNames {
		if s == name {
			return Collective(i), nil
		}
	}
	return 0, fmt.Errorf("compose: unknown collective %q", s)
}

// Collectives lists every collective the layer can derive.
func Collectives() []Collective {
	out := make([]Collective, len(collNames))
	for i := range out {
		out[i] = Collective(i)
	}
	return out
}

// Op is a primitive's kind.
type Op int

const (
	// Multicast moves block copies toward the ranks that want them
	// within the primitive's scope.
	Multicast Op = iota
	// Reduce folds partial contributions together within the scope.
	Reduce
	// Fence is a sequencing barrier: the lowering may not fuse the
	// primitives on either side into overlapped steps.
	Fence
)

func (o Op) String() string {
	switch o {
	case Multicast:
		return "mc"
	case Reduce:
		return "red"
	case Fence:
		return "fence"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Scope selects the hierarchy level a primitive acts on.
type Scope int

const (
	// ScopeWorld is the flat view: every rank, no hierarchy.
	ScopeWorld Scope = iota
	// ScopeNode acts within each node (the CMA domain).
	ScopeNode
	// ScopeLeaders acts between the node leaders (the rail domain).
	ScopeLeaders
)

func (s Scope) String() string {
	switch s {
	case ScopeWorld:
		return "world"
	case ScopeNode:
		return "node"
	case ScopeLeaders:
		return "leaders"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

func parseScope(s string) (Scope, error) {
	switch s {
	case "world":
		return ScopeWorld, nil
	case "node":
		return ScopeNode, nil
	case "leaders":
		return ScopeLeaders, nil
	default:
		return 0, fmt.Errorf("unknown scope %q", s)
	}
}

// Alg selects the communication pattern a primitive lowers to.
type Alg int

const (
	// AlgDirect sends each block straight from a holder to each rank
	// (or leader) that needs it, in as few steps as the pattern allows.
	AlgDirect Alg = iota
	// AlgRing rotates blocks around the scope's members; for a reduce
	// this is the reduce-scatter ring (ownership by block index).
	AlgRing
	// AlgRD exchanges doubling ranges (power-of-two member counts fall
	// back to ring otherwise).
	AlgRD
	// AlgTree is the binomial tree from the single holder (broadcasts).
	AlgTree
	// AlgPull is the receiver-driven intra-node read: peers pull wanted
	// blocks out of their leader's buffer.
	AlgPull
)

var algNames = []string{"direct", "ring", "rd", "tree", "pull"}

func (a Alg) String() string {
	if a < 0 || int(a) >= len(algNames) {
		return fmt.Sprintf("Alg(%d)", int(a))
	}
	return algNames[a]
}

func parseAlg(s string) (Alg, error) {
	for i, name := range algNames {
		if s == name {
			return Alg(i), nil
		}
	}
	return 0, fmt.Errorf("unknown alg %q", s)
}

// AutoOffload asks a node-scope multicast to derive its HCA offload
// count from the performance model (sched.AutoOffload).
const AutoOffload = -1

// Prim is one primitive of a composition pipeline.
type Prim struct {
	Op    Op
	Scope Scope
	Alg   Alg
	// Striped stripes leader-scope transfers across every rail in
	// pinned pieces (reductions cannot pin partial windows, so they use
	// the policy transport instead and ignore this).
	Striped bool
	// Offload is the node-scope direct spread's HCA offload step count
	// (AutoOffload derives it from the model; only meaningful there).
	Offload int
}

// Composition is a named collective expressed as a primitive pipeline.
type Composition struct {
	Name     string
	Coll     Collective
	Pipeline []Prim
}
