package compose

import "mha/internal/sched"

// GoalFor returns the goal of a collective over n ranks: the block
// space, who contributes which blocks, and who must end with which.
// Block identities follow the natural buffer layouts: allgather-family
// blocks are rank contributions, reduce-family blocks are result slots
// (slot r lands at rank r), alltoall chunks are numbered src*n+dst, and
// a bcast is one block held by root 0.
func GoalFor(coll Collective, n int) *sched.Goal {
	mk := func(blocks int) *sched.Goal {
		return &sched.Goal{Blocks: blocks, Init: make([][]sched.Range, n), Want: make([][]sched.Range, n)}
	}
	switch coll {
	case Allgather:
		return sched.AllgatherGoal(n)
	case ReduceScatter:
		g := mk(n)
		for r := 0; r < n; r++ {
			g.Init[r] = []sched.Range{{First: 0, Count: n}}
			g.Want[r] = []sched.Range{{First: r, Count: 1}}
		}
		return g
	case Alltoall:
		g := mk(n * n)
		for r := 0; r < n; r++ {
			g.Init[r] = []sched.Range{{First: r * n, Count: n}}
			for s := 0; s < n; s++ {
				g.Want[r] = append(g.Want[r], sched.Range{First: s*n + r, Count: 1})
			}
		}
		return g
	case Gather:
		g := mk(n)
		for r := 0; r < n; r++ {
			g.Init[r] = []sched.Range{{First: r, Count: 1}}
		}
		g.Want[0] = []sched.Range{{First: 0, Count: n}}
		return g
	case Scatter:
		g := mk(n)
		g.Init[0] = []sched.Range{{First: 0, Count: n}}
		for r := 0; r < n; r++ {
			g.Want[r] = []sched.Range{{First: r, Count: 1}}
		}
		return g
	case Allreduce:
		g := mk(n)
		for r := 0; r < n; r++ {
			g.Init[r] = []sched.Range{{First: 0, Count: n}}
			g.Want[r] = []sched.Range{{First: 0, Count: n}}
		}
		return g
	case Bcast:
		g := mk(1)
		g.Init[0] = []sched.Range{{First: 0, Count: 1}}
		for r := 0; r < n; r++ {
			g.Want[r] = []sched.Range{{First: 0, Count: 1}}
		}
		return g
	default:
		panic("compose: unknown collective")
	}
}

// Geometry returns the per-rank send and receive buffer sizes of a
// collective over n ranks with per-block payload m. Non-root ranks of
// a gather still size recv at n*m (it must stay untouched), and every
// rank of a scatter sizes send at n*m (only root's bytes matter) —
// matching the MPI calling conventions the verify oracles check.
func Geometry(coll Collective, n, m int) (sendLen, recvLen int) {
	switch coll {
	case Allgather, Gather:
		return m, n * m
	case ReduceScatter, Scatter:
		return n * m, m
	case Alltoall, Allreduce:
		return n * m, n * m
	case Bcast:
		return m, m
	default:
		panic("compose: unknown collective")
	}
}

// Hierarchical returns the standard hierarchical (multi-HCA aware)
// composition of a collective: node-scope staging, leader-scope
// exchange, node-scope distribution. Allreduce has no hierarchical
// standard here (its flat reduce-scatter + allgather pipeline is the
// registered derivation).
func Hierarchical(coll Collective) Composition {
	switch coll {
	case Allgather:
		return Composition{Name: "compose-ag", Coll: Allgather, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeNode, Alg: AlgDirect, Offload: AutoOffload},
			{Op: Multicast, Scope: ScopeLeaders, Alg: AlgRing, Striped: true},
			{Op: Multicast, Scope: ScopeNode, Alg: AlgPull},
		}}
	case ReduceScatter:
		return Composition{Name: "compose-rs", Coll: ReduceScatter, Pipeline: []Prim{
			{Op: Reduce, Scope: ScopeNode, Alg: AlgDirect},
			{Op: Reduce, Scope: ScopeLeaders, Alg: AlgRing},
			{Op: Multicast, Scope: ScopeNode, Alg: AlgPull},
		}}
	case Alltoall:
		return Composition{Name: "compose-a2a", Coll: Alltoall, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeNode, Alg: AlgDirect},
			{Op: Multicast, Scope: ScopeLeaders, Alg: AlgDirect},
			{Op: Multicast, Scope: ScopeNode, Alg: AlgPull},
		}}
	case Gather:
		return Composition{Name: "compose-gather", Coll: Gather, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeNode, Alg: AlgDirect},
			{Op: Multicast, Scope: ScopeLeaders, Alg: AlgDirect},
		}}
	case Scatter:
		return Composition{Name: "compose-scatter", Coll: Scatter, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeLeaders, Alg: AlgDirect},
			{Op: Multicast, Scope: ScopeNode, Alg: AlgPull},
		}}
	case Bcast:
		return Composition{Name: "compose-bcast", Coll: Bcast, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeLeaders, Alg: AlgTree, Striped: true},
			{Op: Multicast, Scope: ScopeNode, Alg: AlgPull},
		}}
	default:
		panic("compose: no hierarchical composition for " + coll.String())
	}
}

// Flat returns the world-scope composition of a collective: no
// hierarchy, one primitive pattern over all ranks (allreduce is the
// classic reduce-scatter + allgather pipeline with a fence between).
// Flat compositions work on any layout and on arbitrary
// sub-communicators, which is how the cluster scheduler runs them.
func Flat(coll Collective) Composition {
	switch coll {
	case Allgather:
		return Composition{Name: "compose-ag-ring", Coll: Allgather, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeWorld, Alg: AlgRing},
		}}
	case ReduceScatter:
		return Composition{Name: "compose-rs-ring", Coll: ReduceScatter, Pipeline: []Prim{
			{Op: Reduce, Scope: ScopeWorld, Alg: AlgRing},
		}}
	case Alltoall:
		return Composition{Name: "compose-a2a-direct", Coll: Alltoall, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeWorld, Alg: AlgDirect},
		}}
	case Gather:
		return Composition{Name: "compose-gather-direct", Coll: Gather, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeWorld, Alg: AlgDirect},
		}}
	case Scatter:
		return Composition{Name: "compose-scatter-direct", Coll: Scatter, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeWorld, Alg: AlgDirect},
		}}
	case Allreduce:
		return Composition{Name: "compose-ar", Coll: Allreduce, Pipeline: []Prim{
			{Op: Reduce, Scope: ScopeWorld, Alg: AlgRing},
			{Op: Fence},
			{Op: Multicast, Scope: ScopeWorld, Alg: AlgRing},
		}}
	case Bcast:
		return Composition{Name: "compose-bcast-tree", Coll: Bcast, Pipeline: []Prim{
			{Op: Multicast, Scope: ScopeWorld, Alg: AlgTree},
		}}
	default:
		panic("compose: no flat composition for " + coll.String())
	}
}
