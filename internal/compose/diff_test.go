package compose_test

import (
	"fmt"
	"sync"
	"testing"

	"mha/internal/collectives"
	"mha/internal/compose"
	"mha/internal/core"
	"mha/internal/mpi"
	"mha/internal/sched"
	"mha/internal/topology"
	"mha/internal/verify"
)

// normalized renders a schedule with its name blanked, so two
// identically-shaped lowerings from different front ends compare equal.
func normalized(s *sched.Schedule) string {
	c := s.Clone()
	c.Name = "x"
	return c.String()
}

// TestComposeAgEqualsTwoPhaseMHA: the re-derived hierarchical
// allgather must compile to the very schedule TwoPhaseMHA builds by
// hand — same steps, transfers, transports, rails, byte windows — for
// every machine shape and message size.
func TestComposeAgEqualsTwoPhaseMHA(t *testing.T) {
	comp := compose.Hierarchical(compose.Allgather)
	for _, topo := range testTopos {
		for _, msg := range []int{1, 64, 4096, 256 << 10} {
			plan, err := compose.Lower(comp, compose.NewHierarchy(topo), msg, nil)
			if err != nil {
				t.Fatalf("%v msg=%d: %v", topo, msg, err)
			}
			want := sched.TwoPhaseMHA(topo, nil, msg, sched.MHAOptions{Offload: sched.AutoOffload})
			if got, exp := normalized(plan.Sched), normalized(want); got != exp {
				t.Fatalf("%v msg=%d: compose-ag diverged from TwoPhaseMHA:\n--- compose\n%s\n--- hand\n%s",
					topo, msg, got, exp)
			}
		}
	}
}

// TestComposeAgRingEqualsRing: the flat allgather composition is the
// classic ring, transfer for transfer.
func TestComposeAgRingEqualsRing(t *testing.T) {
	comp := compose.Flat(compose.Allgather)
	for _, topo := range testTopos {
		plan, err := compose.Lower(comp, compose.NewHierarchy(topo), 512, nil)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		want := sched.Ring(topo, 512)
		if got, exp := normalized(plan.Sched), normalized(want); got != exp {
			t.Fatalf("%v: compose-ag-ring diverged from sched.Ring:\n%s\nvs\n%s", topo, got, exp)
		}
	}
}

// TestComposeAgTraceEqualsSchedMHA: beyond schedule equality, the
// executed event timeline is identical — the derived variant is
// indistinguishable from the hand-lowered one at the simulator level.
func TestComposeAgTraceEqualsSchedMHA(t *testing.T) {
	scenarios := []verify.Scenario{
		{Nodes: 2, PPN: 4, HCAs: 2, Layout: topology.Block, Msg: 1024, Seed: 7},
		{Nodes: 3, PPN: 2, HCAs: 2, Layout: topology.Block, Msg: 8192, Seed: 11},
		{Nodes: 4, PPN: 4, HCAs: 4, Layout: topology.Block, Msg: 257, Seed: 13},
	}
	for _, sc := range scenarios {
		sc.Alg = "compose-ag"
		r1 := verify.RunOnce(sc, nil)
		if len(r1.Violations) > 0 {
			t.Fatalf("%+v: %v", sc, r1.Violations)
		}
		sc.Alg = "sched-mha"
		r2 := verify.RunOnce(sc, nil)
		if len(r2.Violations) > 0 {
			t.Fatalf("%+v: %v", sc, r2.Violations)
		}
		if r1.Hash != r2.Hash {
			t.Errorf("%+v: trace hash %#x (compose-ag) vs %#x (sched-mha)", sc, r1.Hash, r2.Hash)
		}
		if r1.Makespan != r2.Makespan {
			t.Errorf("%+v: makespan %v vs %v", sc, r1.Makespan, r2.Makespan)
		}
	}
}

// runCollect executes body on every rank of a fresh world and returns
// each rank's result buffer.
func runCollect(t *testing.T, topo topology.Cluster, body func(p *mpi.Proc, w *mpi.World) mpi.Buf) []mpi.Buf {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topo})
	out := make([]mpi.Buf, topo.Size())
	var mu sync.Mutex
	if err := w.Run(func(p *mpi.Proc) {
		b := body(p, w)
		mu.Lock()
		out[p.Rank()] = b
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func fill(b mpi.Buf, r int) {
	for i := range b.Data() {
		b.Data()[i] = byte(r*131 + i*7 + 3)
	}
}

func diffBufs(t *testing.T, name string, got, want []mpi.Buf) {
	t.Helper()
	for r := range got {
		if !got[r].Equal(want[r]) {
			t.Fatalf("%s: rank %d bytes diverge from hand-written counterpart", name, r)
		}
	}
}

// TestComposeArEqualsRingAllreduce: the derived allreduce pipeline
// (reduce-scatter ring, fence, allgather ring) ends with the same bytes
// as the hand-written Patarasuk-Yuan ring allreduce driven by the same
// ByteSum arithmetic.
func TestComposeArEqualsRingAllreduce(t *testing.T) {
	topo := topology.Cluster{Nodes: 2, PPN: 4, HCAs: 2, Layout: topology.Block}
	n := topo.Size()
	m := 64 // per-slot payload; hand-written chunking needs 8 | n*m
	runner := compose.Runner(compose.Flat(compose.Allreduce))
	got := runCollect(t, topo, func(p *mpi.Proc, w *mpi.World) mpi.Buf {
		send := mpi.NewBuf(n * m)
		fill(send, p.Rank())
		recv := mpi.NewBuf(n * m)
		runner(p, w, send, recv)
		return recv
	})
	want := runCollect(t, topo, func(p *mpi.Proc, w *mpi.World) mpi.Buf {
		buf := mpi.NewBuf(n * m)
		fill(buf, p.Rank())
		collectives.RingAllreduce(p, w.CommWorld(), buf, compose.ByteSum{})
		return buf
	})
	diffBufs(t, "compose-ar", got, want)
}

// TestComposeBcastEqualsMHABcast: the derived hierarchical bcast moves
// the same bytes as the hand-written MHA broadcast from root 0.
func TestComposeBcastEqualsMHABcast(t *testing.T) {
	topo := topology.Cluster{Nodes: 3, PPN: 4, HCAs: 2, Layout: topology.Block}
	m := 2048
	runner := compose.Runner(compose.Hierarchical(compose.Bcast))
	got := runCollect(t, topo, func(p *mpi.Proc, w *mpi.World) mpi.Buf {
		send := mpi.NewBuf(m)
		fill(send, p.Rank())
		recv := mpi.NewBuf(m)
		runner(p, w, send, recv)
		return recv
	})
	want := runCollect(t, topo, func(p *mpi.Proc, w *mpi.World) mpi.Buf {
		buf := mpi.NewBuf(m)
		if p.Rank() == 0 {
			fill(buf, 0)
		}
		core.MHABcast(p, w, 0, buf)
		return buf
	})
	diffBufs(t, "compose-bcast", got, want)
}

// TestDerivedEqualHandWritten: the derived gather, scatter and
// alltoall agree byte-for-byte with the hand-written hierarchical
// implementations in internal/core (root 0, world-rank block order).
func TestDerivedEqualHandWritten(t *testing.T) {
	topo := topology.Cluster{Nodes: 2, PPN: 4, HCAs: 2, Layout: topology.Block}
	n := topo.Size()
	m := 512
	cases := []struct {
		name string
		comp compose.Composition
		hand func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)
	}{
		{"gather", compose.Hierarchical(compose.Gather),
			func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
				core.MHAGather(p, w, 0, send, recv)
			}},
		{"scatter", compose.Hierarchical(compose.Scatter),
			func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
				core.MHAScatter(p, w, 0, send, recv)
			}},
		{"alltoall", compose.Hierarchical(compose.Alltoall), core.MHAAlltoall},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sendLen, recvLen := compose.Geometry(tc.comp.Coll, n, m)
			runner := compose.Runner(tc.comp)
			mk := func(run func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)) []mpi.Buf {
				return runCollect(t, topo, func(p *mpi.Proc, w *mpi.World) mpi.Buf {
					send := mpi.NewBuf(sendLen)
					fill(send, p.Rank())
					recv := mpi.NewBuf(recvLen)
					run(p, w, send, recv)
					return recv
				})
			}
			diffBufs(t, fmt.Sprintf("compose-%s", tc.name), mk(runner), mk(tc.hand))
		})
	}
}

// TestFlatEqualsHierarchicalBytes: for every collective with both a
// flat and a hierarchical standard composition, the two lowerings are
// different schedules but must end with identical bytes.
func TestFlatEqualsHierarchicalBytes(t *testing.T) {
	topo := topology.Cluster{Nodes: 2, PPN: 3, HCAs: 2, Layout: topology.Block}
	n := topo.Size()
	m := 96
	for _, coll := range []compose.Collective{
		compose.Allgather, compose.ReduceScatter, compose.Alltoall,
		compose.Gather, compose.Scatter, compose.Bcast,
	} {
		sendLen, recvLen := compose.Geometry(coll, n, m)
		mk := func(comp compose.Composition) []mpi.Buf {
			runner := compose.Runner(comp)
			return runCollect(t, topo, func(p *mpi.Proc, w *mpi.World) mpi.Buf {
				send := mpi.NewBuf(sendLen)
				fill(send, p.Rank())
				recv := mpi.NewBuf(recvLen)
				runner(p, w, send, recv)
				return recv
			})
		}
		diffBufs(t, coll.String(), mk(compose.Hierarchical(coll)), mk(compose.Flat(coll)))
	}
}
