package compose

import (
	"fmt"

	"mha/internal/mpi"
	"mha/internal/sched"
)

// MsgOf recovers the per-block payload from a collective's send buffer
// length (the inverse of Geometry's sendLen).
func MsgOf(coll Collective, n, sendLen int) int {
	switch coll {
	case Allgather, Gather, Bcast:
		return sendLen
	default:
		return sendLen / n
	}
}

// Runner adapts a composition to the verify harness's run signature:
// the composition is lowered at run time against the world's machine
// and executed on the world communicator. Lowering uses the default
// model parameters, like the hand-written sched variants, so the
// model-derived choices (the allgather offload count) match byte for
// byte.
func Runner(comp Composition) func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	return func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		n := w.Topo().Size()
		m := MsgOf(comp.Coll, n, send.Len())
		plan, err := Lower(comp, NewHierarchy(w.Topo()), m, nil)
		if err != nil {
			panic(fmt.Sprintf("%v (at run time)", err))
		}
		ExecutePlan(p, w, plan, send, recv)
	}
}

// ExecutePlan runs a lowered plan on the world communicator.
// Allgather plans go through the plain schedule interpreter — their
// goal is the interpreter's native contract — so a re-derived allgather
// is trace-identical to its hand-lowered counterpart; everything else
// runs under the goal interpreter with the ByteSum fold.
func ExecutePlan(p *mpi.Proc, w *mpi.World, plan *Plan, send, recv mpi.Buf) {
	if plan.Comp.Coll == Allgather {
		sched.Execute(p, w, plan.Sched, send, recv)
		return
	}
	ExecutePlanOn(p, w.CommWorld(), plan, send, recv)
}

// ExecutePlanOn runs a lowered plan on an arbitrary communicator (the
// cluster scheduler's jobs run flat plans on sub-communicators this
// way). send and recv follow the collective's Geometry for the
// communicator size; schedule ranks are communicator ranks.
func ExecutePlanOn(p *mpi.Proc, c *mpi.Comm, plan *Plan, send, recv mpi.Buf) {
	n := plan.Sched.Topo.Size()
	m := plan.Msg
	coll := plan.Comp.Coll
	init := func(rng sched.Range) mpi.Buf {
		// Every collective contributes one contiguous range that is
		// exactly the send buffer.
		return send.Slice(0, rng.Count*m)
	}
	out := func(rng sched.Range) mpi.Buf {
		if coll == Alltoall {
			// Want[me] is the singleton chunk s*n+me per source s, landing
			// at recv offset s*m.
			return recv.Slice(rng.First/n*m, m)
		}
		return recv.Slice(0, rng.Count*m)
	}
	sched.ExecuteGoal(p, c, plan.Sched, plan.Goal, init, out, Fold)
}
