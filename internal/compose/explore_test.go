package compose_test

import (
	"testing"

	"mha/internal/explore"
)

// TestExploreDerivedReduceScatter runs the exhaustive DPOR model
// checker over the derived hierarchical reduce-scatter on a 4-rank
// dual-rail world: every inequivalent interleaving of the lowered
// schedule's message deposits must satisfy the byte-exact oracle, not
// just the canonical ordering the randomized campaign exercises.
func TestExploreDerivedReduceScatter(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration in -short mode")
	}
	rep, err := explore.Run(explore.Options{
		Algs: []string{"compose-rs"}, Nodes: 2, PPN: 2, HCAs: 2, Msg: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Error("exploration did not complete")
	}
	if rep.Counterexamples != 0 {
		for _, pr := range rep.Placements {
			for _, ce := range pr.Counterexamples {
				t.Errorf("%s %s: %s -> %v", pr.Alg, pr.Fault, ce.Shrunk, ce.Violations)
			}
		}
	}
	if rep.Executions < 1 {
		t.Errorf("implausible exploration: %d executions", rep.Executions)
	}
}
