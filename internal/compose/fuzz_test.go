package compose_test

import (
	"testing"

	"mha/internal/compose"
)

// FuzzParseHierarchy checks that the hierarchy parser never panics and
// that accepted specs round-trip: String(Parse(x)) reparses to the
// same machine.
func FuzzParseHierarchy(f *testing.F) {
	f.Add("world nodes=4 ppn=8 hcas=2 layout=block")
	f.Add("world nodes=2 ppn=4 hcas=4 layout=cyclic sockets=2")
	f.Add("world nodes=1 ppn=1")
	f.Add("world nodes=0 ppn=-1 hcas=9999999")
	f.Add("world nodes=2 ppn=2 nodes=2")
	f.Add("worldnodes=2")
	f.Fuzz(func(t *testing.T, spec string) {
		h, err := compose.ParseHierarchy(spec)
		if err != nil {
			return
		}
		again, err := compose.ParseHierarchy(h.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", h.String(), spec, err)
		}
		if !again.Topo.Equal(h.Topo) {
			t.Fatalf("round trip drifted: %+v vs %+v (input %q)", again.Topo, h.Topo, spec)
		}
	})
}

// FuzzParseComposition checks that the composition parser never panics
// and that accepted pipelines round-trip through their canonical
// rendering.
func FuzzParseComposition(f *testing.F) {
	for _, coll := range compose.Collectives() {
		f.Add(compose.Flat(coll).String())
	}
	f.Add(compose.Hierarchical(compose.Allgather).String())
	f.Add("compose x coll=reduce-scatter\nred scope=node\n# c\nfence\nmc scope=node alg=pull")
	f.Add("compose x coll=allgather\nmc offload=auto striped=1")
	f.Add("compose x coll=allgather\nmc offload=-7")
	f.Add("fence\ncompose late coll=bcast")
	f.Fuzz(func(t *testing.T, text string) {
		c, err := compose.ParseComposition(text)
		if err != nil {
			return
		}
		canon := c.String()
		again, err := compose.ParseComposition(canon)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, canon)
		}
		if again.String() != canon {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", canon, again.String())
		}
	})
}
