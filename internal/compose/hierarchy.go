package compose

import (
	"fmt"
	"strings"

	"mha/internal/topology"
)

// Hierarchy is the declarative machine spec a composition is lowered
// against: the world of ranks, its nodes (the CMA domains), the leader
// group (rank 0 of every node, the only ranks that talk across nodes
// in hierarchical pipelines), and the rails (the HCAs leader transfers
// may stripe across). It is a thin view over topology.Cluster so the
// lowered schedule, the analyzer and the runtime all agree on shape.
type Hierarchy struct {
	Topo topology.Cluster
}

// NewHierarchy wraps a cluster topology.
func NewHierarchy(topo topology.Cluster) Hierarchy { return Hierarchy{Topo: topo} }

// Level describes one level of the hierarchy for display and tests.
type Level struct {
	// Name is "world", "node", "leader-group" or "rail".
	Name string
	// Groups is how many instances of the level the machine has, and
	// Size how many members each has.
	Groups, Size int
}

// Levels lists the hierarchy top-down: the world, the nodes, the
// leader group, and the rails per node.
func (h Hierarchy) Levels() []Level {
	t := h.Topo
	return []Level{
		{Name: "world", Groups: 1, Size: t.Size()},
		{Name: "node", Groups: t.Nodes, Size: t.PPN},
		{Name: "leader-group", Groups: 1, Size: t.Nodes},
		{Name: "rail", Groups: t.Nodes, Size: t.HCAs},
	}
}

// String renders the canonical one-line spec accepted by
// ParseHierarchy.
func (h Hierarchy) String() string {
	t := h.Topo
	s := fmt.Sprintf("world nodes=%d ppn=%d hcas=%d layout=%s", t.Nodes, t.PPN, t.HCAs, t.Layout)
	if t.Sockets > 0 {
		s += fmt.Sprintf(" sockets=%d", t.Sockets)
	}
	return s
}

// Describe renders the level table, one line per level.
func (h Hierarchy) Describe() string {
	var b strings.Builder
	for _, lv := range h.Levels() {
		fmt.Fprintf(&b, "%-12s %d x %d\n", lv.Name, lv.Groups, lv.Size)
	}
	return b.String()
}

// Validate checks the underlying machine shape.
func (h Hierarchy) Validate() error { return h.Topo.Validate() }

// ParseHierarchy reads the one-line spec String produces:
//
//	world nodes=4 ppn=8 hcas=2 layout=block sockets=2
//
// layout defaults to block and sockets to 0 (no NUMA split); hcas
// defaults to 1. The result is shape-validated.
func ParseHierarchy(line string) (Hierarchy, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "world" {
		return Hierarchy{}, fmt.Errorf("compose: hierarchy spec must start with \"world\"")
	}
	kv, err := keyvals(fields[1:], "nodes", "ppn", "hcas", "layout", "sockets")
	if err != nil {
		return Hierarchy{}, fmt.Errorf("compose: %v", err)
	}
	var t topology.Cluster
	var errs [4]error
	t.Nodes, errs[0] = kv.num("nodes", -1)
	t.PPN, errs[1] = kv.num("ppn", -1)
	t.HCAs, errs[2] = kv.num("hcas", 1)
	t.Sockets, errs[3] = kv.num("sockets", 0)
	for _, err := range errs {
		if err != nil {
			return Hierarchy{}, fmt.Errorf("compose: %v", err)
		}
	}
	switch kv.str("layout", "block") {
	case "block":
		t.Layout = topology.Block
	case "cyclic":
		t.Layout = topology.Cyclic
	default:
		return Hierarchy{}, fmt.Errorf("compose: unknown layout %q", kv.str("layout", ""))
	}
	h := Hierarchy{Topo: t}
	if err := h.Validate(); err != nil {
		return Hierarchy{}, fmt.Errorf("compose: %v", err)
	}
	return h, nil
}
