package compose_test

import (
	"strings"
	"testing"

	"mha/internal/compose"
	"mha/internal/topology"
)

func TestHierarchyRoundTrip(t *testing.T) {
	specs := []string{
		"world nodes=1 ppn=1 hcas=1 layout=block",
		"world nodes=4 ppn=8 hcas=2 layout=block",
		"world nodes=2 ppn=4 hcas=4 layout=cyclic",
		"world nodes=3 ppn=6 hcas=2 layout=block sockets=2",
	}
	for _, spec := range specs {
		h, err := compose.ParseHierarchy(spec)
		if err != nil {
			t.Fatalf("ParseHierarchy(%q): %v", spec, err)
		}
		if got := h.String(); got != spec {
			t.Errorf("round trip: %q -> %q", spec, got)
		}
		again, err := compose.ParseHierarchy(h.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", h.String(), err)
		}
		if !again.Topo.Equal(h.Topo) {
			t.Errorf("reparse changed topo: %+v vs %+v", again.Topo, h.Topo)
		}
	}
}

func TestHierarchyDefaults(t *testing.T) {
	h, err := compose.ParseHierarchy("world nodes=2 ppn=3")
	if err != nil {
		t.Fatal(err)
	}
	want := topology.Cluster{Nodes: 2, PPN: 3, HCAs: 1, Layout: topology.Block}
	if !h.Topo.Equal(want) {
		t.Errorf("defaults: got %+v, want %+v", h.Topo, want)
	}
}

func TestHierarchyErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"nodes=2 ppn=2",
		"world nodes=2",
		"world nodes=2 ppn=2 layout=banana",
		"world nodes=2 ppn=2 nodes=3",
		"world nodes=0 ppn=2",
		"world nodes=2 ppn=2 rails=2",
	} {
		if _, err := compose.ParseHierarchy(spec); err == nil {
			t.Errorf("ParseHierarchy(%q): expected error", spec)
		}
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := compose.NewHierarchy(topology.Cluster{Nodes: 4, PPN: 8, HCAs: 2, Layout: topology.Block})
	lv := h.Levels()
	if len(lv) != 4 {
		t.Fatalf("want 4 levels, got %d", len(lv))
	}
	checks := []struct {
		name         string
		groups, size int
	}{
		{"world", 1, 32},
		{"node", 4, 8},
		{"leader-group", 1, 4},
		{"rail", 4, 2},
	}
	for i, c := range checks {
		if lv[i].Name != c.name || lv[i].Groups != c.groups || lv[i].Size != c.size {
			t.Errorf("level %d: got %+v, want %+v", i, lv[i], c)
		}
	}
	desc := h.Describe()
	for _, c := range checks {
		if !strings.Contains(desc, c.name) {
			t.Errorf("Describe missing level %q:\n%s", c.name, desc)
		}
	}
}
