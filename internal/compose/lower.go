package compose

import (
	"fmt"

	"mha/internal/netmodel"
	"mha/internal/perfmodel"
	"mha/internal/sched"
	"mha/internal/topology"
)

// Plan is a lowered composition: the schedule, the goal it is checked
// against, and the inputs that produced them.
type Plan struct {
	Comp  Composition
	Hier  Hierarchy
	Msg   int
	Sched *sched.Schedule
	Goal  *sched.Goal
}

// Analyze statically checks and prices the plan with the sched
// analyzer (completeness, hold progression, double folds, rail
// conflicts; alpha-beta critical path). health follows
// sched.AnalyzeHealth's contract.
func (p *Plan) Analyze(prm *netmodel.Params, health []float64) (*sched.Report, error) {
	return sched.AnalyzeGoalHealth(p.Sched, prm, health, p.Goal)
}

// Lower compiles a composition for one (hierarchy, message size) pair.
// prm feeds the model-derived choices (the auto offload count); nil
// means netmodel.Thor(), matching the hand-written sched variants. The
// result is shape-validated; Plan.Analyze runs the semantic checks.
//
// Hierarchical pipelines (node or leader scope) need the block layout
// on multi-node machines, like every leader-based design in this repo:
// a node's blocks must be one contiguous range.
func Lower(comp Composition, hier Hierarchy, msg int, prm *netmodel.Params) (*Plan, error) {
	if err := hier.Validate(); err != nil {
		return nil, err
	}
	if len(comp.Pipeline) == 0 {
		return nil, fmt.Errorf("compose: %s has no primitives", comp.Name)
	}
	if prm == nil {
		prm = netmodel.Thor()
	}
	topo := hier.Topo
	n := topo.Size()
	for _, pr := range comp.Pipeline {
		if pr.Op != Fence && pr.Scope != ScopeWorld && topo.Nodes > 1 && topo.Layout != topology.Block {
			return nil, fmt.Errorf("compose: %s: %s-scope primitives need the block layout on %v",
				comp.Name, pr.Scope, topo)
		}
	}
	g := GoalFor(comp.Coll, n)
	lo := &lowerer{
		topo: topo, msg: msg, prm: prm,
		coll: comp.Coll, g: g,
		b: sched.NewBuilder(comp.Name, topo, msg),
	}
	if g.Blocks != n {
		lo.b.Blocks(g.Blocks)
	}
	pl := comp.Pipeline
	for i := 0; i < len(pl); i++ {
		pr := pl[i]
		if pr.Op == Fence {
			continue
		}
		var err error
		// The one fusion rule: a leader-scope rotation multicast followed
		// (without a fence) by a node-scope pull multicast overlaps the
		// distribution with the next rotation step — the paper's fused
		// phase-2/phase-3 design.
		if pr.Op == Multicast && pr.Scope == ScopeLeaders &&
			(pr.Alg == AlgRing || pr.Alg == AlgRD) &&
			i+1 < len(pl) && pl[i+1].Op == Multicast &&
			pl[i+1].Scope == ScopeNode && pl[i+1].Alg == AlgPull {
			err = lo.mcLeadersRotate(pr, true)
			i++
		} else {
			err = lo.apply(pr)
		}
		if err != nil {
			return nil, fmt.Errorf("compose: %s: %v", comp.Name, err)
		}
	}
	s, err := lo.b.Build()
	if err != nil {
		return nil, fmt.Errorf("compose: %s: %v", comp.Name, err)
	}
	return &Plan{Comp: comp, Hier: hier, Msg: msg, Sched: s, Goal: g}, nil
}

// lowerer carries the lowering state: the machine, the goal, and the
// schedule under construction.
type lowerer struct {
	topo topology.Cluster
	msg  int
	prm  *netmodel.Params
	coll Collective
	g    *sched.Goal
	b    *sched.Builder
}

func (lo *lowerer) apply(pr Prim) error {
	switch {
	case pr.Op == Multicast && pr.Scope == ScopeWorld && pr.Alg == AlgRing:
		return lo.mcWorldRing()
	case pr.Op == Multicast && pr.Scope == ScopeWorld && pr.Alg == AlgTree:
		return lo.mcWorldTree()
	case pr.Op == Multicast && pr.Scope == ScopeWorld && pr.Alg == AlgDirect:
		return lo.mcWorldDirect()
	case pr.Op == Multicast && pr.Scope == ScopeNode && pr.Alg == AlgDirect:
		return lo.mcNodeDirect(pr)
	case pr.Op == Multicast && pr.Scope == ScopeNode && pr.Alg == AlgPull:
		return lo.mcNodePull()
	case pr.Op == Multicast && pr.Scope == ScopeLeaders && (pr.Alg == AlgRing || pr.Alg == AlgRD):
		return lo.mcLeadersRotate(pr, false)
	case pr.Op == Multicast && pr.Scope == ScopeLeaders && pr.Alg == AlgTree:
		return lo.mcLeadersTree(pr)
	case pr.Op == Multicast && pr.Scope == ScopeLeaders && pr.Alg == AlgDirect:
		return lo.mcLeadersDirect()
	case pr.Op == Reduce && pr.Scope == ScopeWorld && pr.Alg == AlgRing:
		return lo.redWorldRing()
	case pr.Op == Reduce && pr.Scope == ScopeNode:
		return lo.redNode()
	case pr.Op == Reduce && pr.Scope == ScopeLeaders && pr.Alg == AlgRing:
		return lo.redLeadersRing()
	default:
		return fmt.Errorf("no lowering for primitive %q with collective %s", pr, lo.coll)
	}
}

// mcWorldRing is the flat rotation: in step s every rank forwards the
// block it received in the previous step. It serves the allgather (and
// the allgather phase of the allreduce pipeline, where "block r" is the
// slot the reduce-scatter phase left fully reduced at rank r).
func (lo *lowerer) mcWorldRing() error {
	if lo.coll != Allgather && lo.coll != Allreduce {
		return fmt.Errorf("world-scope ring multicast derives allgather shapes, not %s", lo.coll)
	}
	n := lo.topo.Size()
	for s := 0; s < n-1; s++ {
		lo.b.Step()
		for r := 0; r < n; r++ {
			lo.b.Send(r, (r+1)%n, ((r-s)%n+n)%n)
		}
	}
	return nil
}

// mcWorldTree is the binomial broadcast from root 0.
func (lo *lowerer) mcWorldTree() error {
	if lo.coll != Bcast {
		return fmt.Errorf("world-scope tree multicast derives bcast, not %s", lo.coll)
	}
	n := lo.topo.Size()
	for dist := 1; dist < n; dist *= 2 {
		lo.b.Step()
		for r := 0; r < dist && r+dist < n; r++ {
			lo.b.Send(r, r+dist, 0)
		}
	}
	return nil
}

// mcWorldDirect sends each block straight from its holder to its
// wanter: the flat alltoall, gather and scatter.
func (lo *lowerer) mcWorldDirect() error {
	n := lo.topo.Size()
	switch lo.coll {
	case Alltoall:
		if n == 1 {
			return nil
		}
		lo.b.Step()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if d != s {
					lo.b.Send(s, d, s*n+d)
				}
			}
		}
	case Gather:
		if n == 1 {
			return nil
		}
		lo.b.Step()
		for r := 1; r < n; r++ {
			lo.b.Send(r, 0, r)
		}
	case Scatter:
		if n == 1 {
			return nil
		}
		lo.b.Step()
		for r := 1; r < n; r++ {
			lo.b.Send(0, r, r)
		}
	default:
		return fmt.Errorf("world-scope direct multicast derives alltoall/gather/scatter, not %s", lo.coll)
	}
	return nil
}

// mcNodeDirect is the node-scope staging pattern: the allgather's
// direct spread (with the model-derived HCA offload tail), the
// alltoall's concentrate-at-leader plus on-node pulls, and the
// gather's members-to-leader push.
func (lo *lowerer) mcNodeDirect(pr Prim) error {
	topo := lo.topo
	n, N, L := topo.Size(), topo.Nodes, topo.PPN
	switch lo.coll {
	case Allgather:
		d := pr.Offload
		if d < 0 {
			node := topo
			node.Nodes, node.PPN, node.Sockets = 1, L, 0
			d = int(perfmodel.New(lo.prm, node).OffloadD(lo.msg))
		}
		if d > L-1 {
			d = L - 1
		}
		for s := 1; s < L; s++ {
			lo.b.Step()
			for nd := 0; nd < N; nd++ {
				for l := 0; l < L; l++ {
					src := topo.RankOf(nd, l)
					dst := topo.RankOf(nd, (l+s)%L)
					if s >= L-d {
						lo.b.SendHCA(src, dst, src, 1)
					} else {
						lo.b.Send(src, dst, src)
					}
				}
			}
		}
	case Alltoall:
		if L == 1 {
			return nil
		}
		lo.b.Step()
		for nd := 0; nd < N; nd++ {
			leader := topo.LeaderOf(nd)
			for l := 0; l < L; l++ {
				src := topo.RankOf(nd, l)
				// On-node chunks go straight to their peers,
				// receiver-driven.
				for l2 := 0; l2 < L; l2++ {
					if l2 == l {
						continue
					}
					dst := topo.RankOf(nd, l2)
					lo.b.Pull(src, dst, src*n+dst, 1)
				}
				// Cross-node ranges concentrate at the leader.
				if src == leader {
					continue
				}
				for nd2 := 0; nd2 < N; nd2++ {
					if nd2 != nd {
						lo.b.SendRange(src, leader, src*n+nd2*L, L)
					}
				}
			}
		}
	case Gather:
		if L == 1 {
			return nil
		}
		lo.b.Step()
		for nd := 0; nd < N; nd++ {
			leader := topo.LeaderOf(nd)
			for l := 1; l < L; l++ {
				src := topo.RankOf(nd, l)
				lo.b.Send(src, leader, src)
			}
		}
	default:
		return fmt.Errorf("node-scope direct multicast derives allgather/alltoall/gather, not %s", lo.coll)
	}
	return nil
}

// mcNodePull is the node-scope distribution: each non-leader reads the
// blocks it wants out of its leader's buffer.
func (lo *lowerer) mcNodePull() error {
	topo := lo.topo
	n, N, L := topo.Size(), topo.Nodes, topo.PPN
	if L == 1 {
		return nil
	}
	emitted := false
	step := func() {
		if !emitted {
			lo.b.Step()
			emitted = true
		}
	}
	for nd := 0; nd < N; nd++ {
		leader := topo.LeaderOf(nd)
		for l := 1; l < L; l++ {
			peer := topo.RankOf(nd, l)
			switch lo.coll {
			case Allgather:
				for nd2 := 0; nd2 < N; nd2++ {
					if nd2 != nd {
						step()
						lo.b.Pull(leader, peer, nd2*L, L)
					}
				}
			case Bcast:
				step()
				lo.b.Pull(leader, peer, 0, 1)
			case ReduceScatter, Scatter:
				step()
				lo.b.Pull(leader, peer, peer, 1)
			case Alltoall:
				for nd2 := 0; nd2 < N; nd2++ {
					if nd2 == nd {
						continue
					}
					for s := nd2 * L; s < (nd2+1)*L; s++ {
						step()
						lo.b.Pull(leader, peer, s*n+peer, 1)
					}
				}
			default:
				return fmt.Errorf("node-scope pull multicast does not serve %s", lo.coll)
			}
		}
	}
	return nil
}

// mcLeadersRotate moves whole node blocks between leaders, ring or
// recursive-doubling, optionally striped across every rail in pinned
// pieces. fused overlaps each node block's on-node distribution with
// the following rotation step (plus one trailing step), reproducing the
// two-phase MHA design exactly.
func (lo *lowerer) mcLeadersRotate(pr Prim, fused bool) error {
	if lo.coll != Allgather {
		return fmt.Errorf("leader-scope rotation multicast derives allgather, not %s", lo.coll)
	}
	topo := lo.topo
	N, L, H := topo.Nodes, topo.PPN, topo.HCAs
	if N == 1 {
		return nil
	}
	send := func(src, dst, first, count int) {
		if pr.Striped {
			lo.b.Striped(src, dst, first, count, H)
		} else {
			lo.b.SendHCA(src, dst, first, count)
		}
	}
	distribute := func(nd, firstBlock, count int) {
		leader := topo.LeaderOf(nd)
		for l := 1; l < L; l++ {
			lo.b.Pull(leader, topo.RankOf(nd, l), firstBlock, count)
		}
	}
	if pr.Alg == AlgRD && N&(N-1) == 0 {
		type rng struct{ base, count int }
		prev := make([]rng, N)
		step := 0
		for dist := 1; dist < N; dist *= 2 {
			lo.b.Step()
			for v := 0; v < N; v++ {
				base := v &^ (2*dist - 1)
				mine := base
				if v&dist != 0 {
					mine = base + dist
				}
				send(topo.LeaderOf(v), topo.LeaderOf(v^dist), mine*L, dist*L)
				if fused && step > 0 {
					distribute(v, prev[v].base*L, prev[v].count*L)
				}
				theirs := base
				if v&dist == 0 {
					theirs = base + dist
				}
				prev[v] = rng{theirs, dist}
			}
			step++
		}
		if fused && L > 1 {
			lo.b.Step()
			for v := 0; v < N; v++ {
				distribute(v, prev[v].base*L, prev[v].count*L)
			}
		}
		return nil
	}
	for k := 0; k < N-1; k++ {
		lo.b.Step()
		for v := 0; v < N; v++ {
			cur := ((v-k)%N + N) % N
			send(topo.LeaderOf(v), topo.LeaderOf((v+1)%N), cur*L, L)
			if fused && k > 0 {
				distribute(v, cur*L, L)
			}
		}
	}
	if fused && L > 1 {
		lo.b.Step()
		for v := 0; v < N; v++ {
			distribute(v, ((v+1)%N)*L, L)
		}
	}
	return nil
}

// mcLeadersTree is the binomial broadcast over the leader group.
func (lo *lowerer) mcLeadersTree(pr Prim) error {
	if lo.coll != Bcast {
		return fmt.Errorf("leader-scope tree multicast derives bcast, not %s", lo.coll)
	}
	topo := lo.topo
	N, H := topo.Nodes, topo.HCAs
	for dist := 1; dist < N; dist *= 2 {
		lo.b.Step()
		for v := 0; v < dist && v+dist < N; v++ {
			if pr.Striped {
				lo.b.Striped(topo.LeaderOf(v), topo.LeaderOf(v+dist), 0, 1, H)
			} else {
				lo.b.SendHCA(topo.LeaderOf(v), topo.LeaderOf(v+dist), 0, 1)
			}
		}
	}
	return nil
}

// mcLeadersDirect sends aggregated node ranges between the leaders
// that hold them and the leaders (or root) that want them: the
// alltoall's pairwise exchange, the gather's leaders-to-root, the
// scatter's root-to-leaders.
func (lo *lowerer) mcLeadersDirect() error {
	topo := lo.topo
	n, N, L := topo.Size(), topo.Nodes, topo.PPN
	if N == 1 {
		return nil
	}
	switch lo.coll {
	case Alltoall:
		for k := 1; k < N; k++ {
			lo.b.Step()
			for v := 0; v < N; v++ {
				u := (v + k) % N
				for l := 0; l < L; l++ {
					s := topo.RankOf(v, l)
					lo.b.SendHCA(topo.LeaderOf(v), topo.LeaderOf(u), s*n+u*L, L)
				}
			}
		}
	case Gather:
		lo.b.Step()
		for nd := 1; nd < N; nd++ {
			lo.b.SendHCA(topo.LeaderOf(nd), 0, nd*L, L)
		}
	case Scatter:
		lo.b.Step()
		for nd := 1; nd < N; nd++ {
			lo.b.SendHCA(0, topo.LeaderOf(nd), nd*L, L)
		}
	default:
		return fmt.Errorf("leader-scope direct multicast derives alltoall/gather/scatter, not %s", lo.coll)
	}
	return nil
}

// redWorldRing is the flat reduce-scatter ring at slot granularity:
// slot j travels the ring folding every host's contribution and lands
// fully reduced at rank j. Serves reduce-scatter and the reduce phase
// of the allreduce pipeline.
func (lo *lowerer) redWorldRing() error {
	if lo.coll != ReduceScatter && lo.coll != Allreduce {
		return fmt.Errorf("world-scope ring reduce derives reduce-scatter shapes, not %s", lo.coll)
	}
	n := lo.topo.Size()
	for s := 0; s < n-1; s++ {
		lo.b.Step()
		for r := 0; r < n; r++ {
			lo.b.SendRed(r, (r+1)%n, ((r-s-1)%n+n)%n, 1)
		}
	}
	return nil
}

// redNode folds every member's whole contribution into its node
// leader, one fan-in step.
func (lo *lowerer) redNode() error {
	if lo.coll != ReduceScatter {
		return fmt.Errorf("node-scope reduce derives reduce-scatter, not %s", lo.coll)
	}
	topo := lo.topo
	N, L := topo.Nodes, topo.PPN
	if L == 1 {
		return nil
	}
	lo.b.Step()
	for nd := 0; nd < N; nd++ {
		leader := topo.LeaderOf(nd)
		for l := 1; l < L; l++ {
			src := topo.RankOf(nd, l)
			for _, rng := range lo.g.Init[src] {
				lo.b.SendRed(src, leader, rng.First, rng.Count)
			}
		}
	}
	return nil
}

// redLeadersRing is the reduce-scatter ring at node-block granularity:
// node range v lands fully reduced at leader v.
func (lo *lowerer) redLeadersRing() error {
	if lo.coll != ReduceScatter {
		return fmt.Errorf("leader-scope ring reduce derives reduce-scatter, not %s", lo.coll)
	}
	topo := lo.topo
	N, L := topo.Nodes, topo.PPN
	if N == 1 {
		return nil
	}
	for s := 0; s < N-1; s++ {
		lo.b.Step()
		for v := 0; v < N; v++ {
			sendNode := ((v-s-1)%N + N) % N
			lo.b.SendRedHCA(topo.LeaderOf(v), topo.LeaderOf((v+1)%N), sendNode*L, L)
		}
	}
	return nil
}
