package compose_test

import (
	"testing"

	"mha/internal/compose"
	"mha/internal/netmodel"
	"mha/internal/sched"
	"mha/internal/topology"
)

// testTopos spans the hierarchy shapes the lowerings must handle: a
// single rank, a single fat node, multi-node with and without multiple
// rails, odd counts, and a NUMA split.
var testTopos = []topology.Cluster{
	{Nodes: 1, PPN: 1, HCAs: 1, Layout: topology.Block},
	{Nodes: 1, PPN: 4, HCAs: 2, Layout: topology.Block},
	{Nodes: 2, PPN: 2, HCAs: 2, Layout: topology.Block},
	{Nodes: 2, PPN: 4, HCAs: 4, Layout: topology.Block, Sockets: 2},
	{Nodes: 3, PPN: 4, HCAs: 2, Layout: topology.Block},
	{Nodes: 4, PPN: 2, HCAs: 1, Layout: topology.Block},
	{Nodes: 5, PPN: 3, HCAs: 2, Layout: topology.Block},
}

// TestVariantsAnalyzeClean lowers every registered derived variant for
// every test topology and runs the full static analysis: completeness
// against the collective's goal, hold/provenance progression, double
// folds, rail conflicts. Every derived schedule must be violation-free
// with a positive modeled cost, and must also survive a contended
// phantom execution (SimulateGoal).
func TestVariantsAnalyzeClean(t *testing.T) {
	prm := netmodel.Thor()
	for _, v := range compose.Variants() {
		for _, topo := range testTopos {
			for _, msg := range []int{64, 4096} {
				plan, err := compose.Lower(v.Comp, compose.NewHierarchy(topo), msg, nil)
				if err != nil {
					t.Fatalf("%s on %v: %v", v.Name, topo, err)
				}
				rep, err := plan.Analyze(prm, nil)
				if err != nil {
					t.Fatalf("%s on %v msg=%d: analyze: %v", v.Name, topo, msg, err)
				}
				if rep.Cost <= 0 {
					t.Errorf("%s on %v msg=%d: non-positive modeled cost %v", v.Name, topo, msg, rep.Cost)
				}
				if _, err := sched.SimulateGoal(topo, prm, plan.Sched, plan.Goal); err != nil {
					t.Fatalf("%s on %v msg=%d: simulate: %v", v.Name, topo, msg, err)
				}
			}
		}
	}
}

// TestPrimitiveLowerings is the primitive-by-level table: each
// supported (op, scope, alg) pair is lowered in isolation (or with the
// minimal preceding stage it depends on) and checked structurally —
// step counts, transport kinds, reduce flags. Completeness of full
// pipelines is TestVariantsAnalyzeClean's job; here single stages are
// allowed to leave the goal unfinished.
func TestPrimitiveLowerings(t *testing.T) {
	topo := topology.Cluster{Nodes: 4, PPN: 4, HCAs: 2, Layout: topology.Block}
	n, N, L := topo.Size(), topo.Nodes, topo.PPN
	cases := []struct {
		name  string
		coll  compose.Collective
		prims []compose.Prim
		steps int
		check func(t *testing.T, s *sched.Schedule)
	}{
		{name: "mc-world-ring", coll: compose.Allgather,
			prims: []compose.Prim{{Op: compose.Multicast, Scope: compose.ScopeWorld, Alg: compose.AlgRing}},
			steps: n - 1,
			check: func(t *testing.T, s *sched.Schedule) {
				for _, st := range s.Steps {
					if len(st.Xfers) != n {
						t.Errorf("ring step has %d transfers, want %d", len(st.Xfers), n)
					}
				}
			}},
		{name: "mc-world-tree", coll: compose.Bcast,
			prims: []compose.Prim{{Op: compose.Multicast, Scope: compose.ScopeWorld, Alg: compose.AlgTree}},
			steps: 4, // ceil(log2 16)
			check: func(t *testing.T, s *sched.Schedule) {
				total := 0
				for _, st := range s.Steps {
					total += len(st.Xfers)
				}
				if total != n-1 {
					t.Errorf("binomial tree moved %d copies, want %d", total, n-1)
				}
			}},
		{name: "mc-world-direct-alltoall", coll: compose.Alltoall,
			prims: []compose.Prim{{Op: compose.Multicast, Scope: compose.ScopeWorld, Alg: compose.AlgDirect}},
			steps: 1,
			check: func(t *testing.T, s *sched.Schedule) {
				if got := len(s.Steps[0].Xfers); got != n*(n-1) {
					t.Errorf("direct alltoall has %d transfers, want %d", got, n*(n-1))
				}
			}},
		{name: "mc-world-direct-gather", coll: compose.Gather,
			prims: []compose.Prim{{Op: compose.Multicast, Scope: compose.ScopeWorld, Alg: compose.AlgDirect}},
			steps: 1,
			check: func(t *testing.T, s *sched.Schedule) {
				for _, x := range s.Steps[0].Xfers {
					if x.Dst != 0 {
						t.Errorf("gather transfer lands at %d, want root 0", x.Dst)
					}
				}
			}},
		{name: "mc-world-direct-scatter", coll: compose.Scatter,
			prims: []compose.Prim{{Op: compose.Multicast, Scope: compose.ScopeWorld, Alg: compose.AlgDirect}},
			steps: 1,
			check: func(t *testing.T, s *sched.Schedule) {
				for _, x := range s.Steps[0].Xfers {
					if x.Src != 0 {
						t.Errorf("scatter transfer leaves from %d, want root 0", x.Src)
					}
				}
			}},
		{name: "mc-node-direct-allgather", coll: compose.Allgather,
			prims: []compose.Prim{{Op: compose.Multicast, Scope: compose.ScopeNode, Alg: compose.AlgDirect}},
			steps: L - 1},
		{name: "mc-leaders-ring", coll: compose.Allgather,
			prims: []compose.Prim{
				{Op: compose.Multicast, Scope: compose.ScopeNode, Alg: compose.AlgDirect},
				{Op: compose.Multicast, Scope: compose.ScopeLeaders, Alg: compose.AlgRing, Striped: true},
			},
			steps: (L - 1) + (N - 1),
			check: func(t *testing.T, s *sched.Schedule) {
				last := s.Steps[len(s.Steps)-1]
				for _, x := range last.Xfers {
					if x.Via != sched.ViaRail {
						t.Errorf("striped leader transfer uses %v, want rail pinning", x.Via)
					}
				}
			}},
		{name: "mc-leaders-rd", coll: compose.Allgather,
			prims: []compose.Prim{
				{Op: compose.Multicast, Scope: compose.ScopeNode, Alg: compose.AlgDirect},
				{Op: compose.Multicast, Scope: compose.ScopeLeaders, Alg: compose.AlgRD},
			},
			steps: (L - 1) + 2}, // log2(4) leader exchanges
		{name: "mc-leaders-tree", coll: compose.Bcast,
			prims: []compose.Prim{{Op: compose.Multicast, Scope: compose.ScopeLeaders, Alg: compose.AlgTree}},
			steps: 2}, // ceil(log2 4)
		{name: "mc-node-pull-bcast", coll: compose.Bcast,
			prims: []compose.Prim{
				{Op: compose.Multicast, Scope: compose.ScopeLeaders, Alg: compose.AlgTree},
				{Op: compose.Multicast, Scope: compose.ScopeNode, Alg: compose.AlgPull},
			},
			steps: 3,
			check: func(t *testing.T, s *sched.Schedule) {
				last := s.Steps[len(s.Steps)-1]
				if len(last.Xfers) != N*(L-1) {
					t.Errorf("pull step has %d transfers, want %d", len(last.Xfers), N*(L-1))
				}
				for _, x := range last.Xfers {
					if x.Via != sched.ViaPull {
						t.Errorf("distribution transfer uses %v, want pull", x.Via)
					}
				}
			}},
		{name: "red-world-ring", coll: compose.ReduceScatter,
			prims: []compose.Prim{{Op: compose.Reduce, Scope: compose.ScopeWorld, Alg: compose.AlgRing}},
			steps: n - 1,
			check: func(t *testing.T, s *sched.Schedule) {
				for _, st := range s.Steps {
					for _, x := range st.Xfers {
						if !x.Red {
							t.Error("reduce-scatter ring transfer is not reducing")
						}
					}
				}
			}},
		{name: "red-node", coll: compose.ReduceScatter,
			prims: []compose.Prim{{Op: compose.Reduce, Scope: compose.ScopeNode}},
			steps: 1,
			check: func(t *testing.T, s *sched.Schedule) {
				if got := len(s.Steps[0].Xfers); got != N*(L-1) {
					t.Errorf("node fold has %d transfers, want %d", got, N*(L-1))
				}
			}},
		{name: "red-leaders-ring", coll: compose.ReduceScatter,
			prims: []compose.Prim{
				{Op: compose.Reduce, Scope: compose.ScopeNode},
				{Op: compose.Reduce, Scope: compose.ScopeLeaders, Alg: compose.AlgRing},
			},
			steps: 1 + (N - 1),
			check: func(t *testing.T, s *sched.Schedule) {
				last := s.Steps[len(s.Steps)-1]
				for _, x := range last.Xfers {
					if !x.Red || x.Via != sched.ViaHCA {
						t.Errorf("leader fold transfer red=%v via=%v, want reducing over HCA", x.Red, x.Via)
					}
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			comp := compose.Composition{Name: "t-" + tc.name, Coll: tc.coll, Pipeline: tc.prims}
			plan, err := compose.Lower(comp, compose.NewHierarchy(topo), 256, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Sched.Steps) != tc.steps {
				t.Fatalf("lowered to %d steps, want %d:\n%s", len(plan.Sched.Steps), tc.steps, plan.Sched)
			}
			if tc.check != nil {
				tc.check(t, plan.Sched)
			}
		})
	}
}

// TestFusionRule: a leader ring followed by a node pull with no fence
// fuses the distribution into the rotation steps (plus one trailing
// step); a fence between them keeps the stages sequential.
func TestFusionRule(t *testing.T) {
	topo := topology.Cluster{Nodes: 4, PPN: 4, HCAs: 2, Layout: topology.Block}
	N, L := topo.Nodes, topo.PPN
	mk := func(fence bool) compose.Composition {
		pl := []compose.Prim{
			{Op: compose.Multicast, Scope: compose.ScopeNode, Alg: compose.AlgDirect},
			{Op: compose.Multicast, Scope: compose.ScopeLeaders, Alg: compose.AlgRing, Striped: true},
		}
		if fence {
			pl = append(pl, compose.Prim{Op: compose.Fence})
		}
		pl = append(pl, compose.Prim{Op: compose.Multicast, Scope: compose.ScopeNode, Alg: compose.AlgPull})
		return compose.Composition{Name: "fused", Coll: compose.Allgather, Pipeline: pl}
	}
	fused, err := compose.Lower(mk(false), compose.NewHierarchy(topo), 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	fenced, err := compose.Lower(mk(true), compose.NewHierarchy(topo), 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fused: phase 1 + (N-1) ring steps + one trailing distribution.
	if got, want := len(fused.Sched.Steps), (L-1)+(N-1)+1; got != want {
		t.Errorf("fused lowering has %d steps, want %d", got, want)
	}
	// Fenced: the pull distribution stands alone as one extra step, and
	// no ring step carries pulls.
	if got, want := len(fenced.Sched.Steps), (L-1)+(N-1)+1; got != want {
		t.Errorf("fenced lowering has %d steps, want %d", got, want)
	}
	ringSteps := fenced.Sched.Steps[L-1 : L-1+N-1]
	for si, st := range ringSteps {
		for _, x := range st.Xfers {
			if x.Via == sched.ViaPull {
				t.Errorf("fenced ring step %d carries a fused pull", si)
			}
		}
	}
	// Both must still analyze clean.
	for _, plan := range []*compose.Plan{fused, fenced} {
		if _, err := plan.Analyze(netmodel.Thor(), nil); err != nil {
			t.Fatalf("plan %s: %v", plan.Comp.Name, err)
		}
	}
}

func TestLowerErrors(t *testing.T) {
	cyclic := topology.Cluster{Nodes: 2, PPN: 2, HCAs: 1, Layout: topology.Cyclic}
	if _, err := compose.Lower(compose.Hierarchical(compose.ReduceScatter),
		compose.NewHierarchy(cyclic), 64, nil); err == nil {
		t.Error("hierarchical pipeline on a cyclic multi-node layout: expected error")
	}
	// Flat pipelines are layout-independent.
	if _, err := compose.Lower(compose.Flat(compose.ReduceScatter),
		compose.NewHierarchy(cyclic), 64, nil); err != nil {
		t.Errorf("flat pipeline on cyclic layout: %v", err)
	}
	block := topology.Cluster{Nodes: 2, PPN: 2, HCAs: 1, Layout: topology.Block}
	// A primitive with no lowering for the collective.
	bad := compose.Composition{Name: "bad", Coll: compose.ReduceScatter, Pipeline: []compose.Prim{
		{Op: compose.Multicast, Scope: compose.ScopeWorld, Alg: compose.AlgRing},
	}}
	if _, err := compose.Lower(bad, compose.NewHierarchy(block), 64, nil); err == nil {
		t.Error("world ring multicast for reduce-scatter: expected error")
	}
	empty := compose.Composition{Name: "empty", Coll: compose.Allgather}
	if _, err := compose.Lower(empty, compose.NewHierarchy(block), 64, nil); err == nil {
		t.Error("empty pipeline: expected error")
	}
}

// TestIncompletePipelineCaughtByAnalyzer: dropping the distribution
// stage of the hierarchical reduce-scatter leaves non-leaders without
// their slots — the analyzer must say so.
func TestIncompletePipelineCaughtByAnalyzer(t *testing.T) {
	topo := topology.Cluster{Nodes: 2, PPN: 2, HCAs: 1, Layout: topology.Block}
	comp := compose.Hierarchical(compose.ReduceScatter)
	comp.Pipeline = comp.Pipeline[:2] // drop the node pull
	plan, err := compose.Lower(comp, compose.NewHierarchy(topo), 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Analyze(netmodel.Thor(), nil); err == nil {
		t.Fatal("truncated pipeline analyzed clean; want missing-block violations")
	}
}
