package compose

import (
	"fmt"
	"strconv"
	"strings"
)

// The composition spec is line-oriented, mirroring the sched text form:
//
//	compose rs-mha coll=reduce-scatter
//	red scope=node
//	red scope=leaders alg=ring
//	mc scope=node alg=pull
//
// A primitive line is its op ("mc", "red" or "fence") followed by
// key=value fields; "fence" takes none. Blank lines and '#' comments
// are skipped. String is the canonical renderer and
// String(ParseComposition(String(c))) is a fixed point.

// String renders the canonical text form.
func (c Composition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compose %s coll=%s\n", c.Name, c.Coll)
	for _, pr := range c.Pipeline {
		b.WriteString(pr.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one primitive line.
func (pr Prim) String() string {
	if pr.Op == Fence {
		return "fence"
	}
	s := fmt.Sprintf("%s scope=%s alg=%s", pr.Op, pr.Scope, pr.Alg)
	if pr.Striped {
		s += " striped=1"
	}
	if pr.Offload != 0 {
		if pr.Offload == AutoOffload {
			s += " offload=auto"
		} else {
			s += fmt.Sprintf(" offload=%d", pr.Offload)
		}
	}
	return s
}

// ParseComposition reads the text form String produces. The result is
// shape-checked (known ops, scopes and algs; a non-empty pipeline);
// whether the pipeline actually lowers for a machine is Lower's job.
func ParseComposition(text string) (Composition, error) {
	var c Composition
	seen := false
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		at := fmt.Sprintf("compose: line %d", ln+1)
		switch fields[0] {
		case "compose":
			if seen {
				return c, fmt.Errorf("%s: duplicate compose header", at)
			}
			if len(fields) < 2 || strings.ContainsRune(fields[1], '=') {
				return c, fmt.Errorf("%s: compose header needs a name", at)
			}
			kv, err := keyvals(fields[2:], "coll")
			if err != nil {
				return c, fmt.Errorf("%s: %v", at, err)
			}
			coll, err := ParseCollective(kv.str("coll", ""))
			if err != nil {
				return c, fmt.Errorf("%s: %v", at, err)
			}
			c.Name, c.Coll = fields[1], coll
			seen = true
		case "mc", "red":
			if !seen {
				return c, fmt.Errorf("%s: primitive before compose header", at)
			}
			kv, err := keyvals(fields[1:], "scope", "alg", "striped", "offload")
			if err != nil {
				return c, fmt.Errorf("%s: %v", at, err)
			}
			pr := Prim{Op: Multicast}
			if fields[0] == "red" {
				pr.Op = Reduce
			}
			if pr.Scope, err = parseScope(kv.str("scope", "world")); err != nil {
				return c, fmt.Errorf("%s: %v", at, err)
			}
			if pr.Alg, err = parseAlg(kv.str("alg", "direct")); err != nil {
				return c, fmt.Errorf("%s: %v", at, err)
			}
			striped, err := kv.num("striped", 0)
			if err != nil {
				return c, fmt.Errorf("%s: %v", at, err)
			}
			pr.Striped = striped != 0
			if off := kv.str("offload", "0"); off == "auto" {
				pr.Offload = AutoOffload
			} else if pr.Offload, err = kv.num("offload", 0); err != nil {
				return c, fmt.Errorf("%s: %v", at, err)
			}
			if pr.Offload < AutoOffload {
				return c, fmt.Errorf("%s: offload %d out of range", at, pr.Offload)
			}
			c.Pipeline = append(c.Pipeline, pr)
		case "fence":
			if !seen {
				return c, fmt.Errorf("%s: primitive before compose header", at)
			}
			if len(fields) != 1 {
				return c, fmt.Errorf("%s: fence takes no arguments", at)
			}
			c.Pipeline = append(c.Pipeline, Prim{Op: Fence})
		default:
			return c, fmt.Errorf("%s: unknown directive %q", at, fields[0])
		}
	}
	if !seen {
		return c, fmt.Errorf("compose: empty input")
	}
	if len(c.Pipeline) == 0 {
		return c, fmt.Errorf("compose: %s has no primitives", c.Name)
	}
	return c, nil
}

// kvset holds the key=value fields of one directive line.
type kvset map[string]string

// keyvals splits "k=v" fields, rejecting unknown keys and duplicates.
func keyvals(fields []string, allowed ...string) (kvset, error) {
	kv := kvset{}
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		k, v := f[:eq], f[eq+1:]
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown key %q", k)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

func (kv kvset) str(k, def string) string {
	if v, ok := kv[k]; ok {
		return v
	}
	return def
}

func (kv kvset) num(k string, def int) (int, error) {
	v, ok := kv[k]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s value %q", k, v)
	}
	return n, nil
}
