package compose_test

import (
	"testing"

	"mha/internal/compose"
)

// standardComps enumerates every standard composition once.
func standardComps() []compose.Composition {
	var out []compose.Composition
	for _, coll := range compose.Collectives() {
		if coll != compose.Allreduce {
			out = append(out, compose.Hierarchical(coll))
		}
		out = append(out, compose.Flat(coll))
	}
	return out
}

func TestCompositionRoundTrip(t *testing.T) {
	for _, comp := range standardComps() {
		text := comp.String()
		parsed, err := compose.ParseComposition(text)
		if err != nil {
			t.Fatalf("%s: parse of own rendering failed: %v\n%s", comp.Name, err, text)
		}
		if parsed.Name != comp.Name || parsed.Coll != comp.Coll {
			t.Errorf("%s: header drifted: %+v", comp.Name, parsed)
		}
		if len(parsed.Pipeline) != len(comp.Pipeline) {
			t.Fatalf("%s: %d primitives, want %d", comp.Name, len(parsed.Pipeline), len(comp.Pipeline))
		}
		for i := range parsed.Pipeline {
			if parsed.Pipeline[i] != comp.Pipeline[i] {
				t.Errorf("%s: primitive %d drifted: %+v vs %+v",
					comp.Name, i, parsed.Pipeline[i], comp.Pipeline[i])
			}
		}
		if again := parsed.String(); again != text {
			t.Errorf("%s: render not a fixed point:\n%s\nvs\n%s", comp.Name, text, again)
		}
	}
}

func TestParseCompositionComments(t *testing.T) {
	text := `# derived reduce-scatter
compose rs coll=reduce-scatter
red scope=node          # fold into leaders
red scope=leaders alg=ring
fence
mc scope=node alg=pull
`
	c, err := compose.ParseComposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Pipeline) != 4 || c.Pipeline[2].Op != compose.Fence {
		t.Errorf("unexpected pipeline: %+v", c.Pipeline)
	}
}

func TestParseCompositionErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"# only a comment\n",
		"compose x coll=allgather\n", // no primitives
		"mc scope=world alg=ring\n",  // primitive before header
		"compose x coll=nope\nmc\n",  // unknown collective
		"compose x coll=allgather\nmc scope=galaxy\n",           // unknown scope
		"compose x coll=allgather\nmc alg=warp\n",               // unknown alg
		"compose x coll=allgather\nmc striped=yes\n",            // bad number
		"compose x coll=allgather\nmc offload=-3\n",             // offload below auto
		"compose x coll=allgather\nfence now\n",                 // fence with args
		"compose x coll=allgather\ncompose y coll=bcast\n",      // duplicate header
		"compose coll=allgather\nmc\n",                          // missing name
		"compose x coll=allgather\nteleport\n",                  // unknown directive
		"compose x coll=allgather\nmc scope=world scope=node\n", // duplicate key
	} {
		if _, err := compose.ParseComposition(text); err == nil {
			t.Errorf("ParseComposition(%q): expected error", text)
		}
	}
}

func TestParseCollective(t *testing.T) {
	for _, coll := range compose.Collectives() {
		got, err := compose.ParseCollective(coll.String())
		if err != nil || got != coll {
			t.Errorf("ParseCollective(%q) = %v, %v", coll.String(), got, err)
		}
	}
	if _, err := compose.ParseCollective("allga"); err == nil {
		t.Error("expected error for unknown collective")
	}
}
