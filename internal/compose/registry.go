package compose

import "mha/internal/mpi"

// Variant is one derived collective, packaged for the rest of the
// toolchain: a name, the contract it implements, the composition it
// lowers from, its topology constraint, and a verify-shaped runner.
type Variant struct {
	Name string
	Coll Collective
	Comp Composition
	// BlockOnly marks hierarchical pipelines, which need the block rank
	// layout on multi-node machines (leader designs own contiguous block
	// ranges). Flat pipelines run anywhere.
	BlockOnly bool
	Run       func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)
}

// Variants is the single registration point for every derived
// collective. The verify campaign, the cluster scheduler's job mix and
// the bench registry all enumerate from this table, so a variant added
// here cannot drift out of any of them.
func Variants() []Variant {
	var out []Variant
	add := func(comp Composition, blockOnly bool) {
		out = append(out, Variant{
			Name: comp.Name, Coll: comp.Coll, Comp: comp,
			BlockOnly: blockOnly, Run: Runner(comp),
		})
	}
	// The hierarchical pipelines (node and leader scopes).
	add(Hierarchical(Allgather), true)
	add(Hierarchical(ReduceScatter), true)
	add(Hierarchical(Alltoall), true)
	add(Hierarchical(Gather), true)
	add(Hierarchical(Scatter), true)
	add(Hierarchical(Bcast), true)
	// The flat pipelines: any layout, any communicator.
	add(Flat(ReduceScatter), false)
	add(Flat(Alltoall), false)
	add(Flat(Gather), false)
	add(Flat(Scatter), false)
	add(Flat(Allreduce), false)
	add(Flat(Bcast), false)
	return out
}

// ByName resolves one derived variant from the Variants table.
func ByName(name string) (Variant, bool) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}
