package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/perfmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

func pattern(r, m int) []byte {
	b := make([]byte, m)
	for i := range b {
		b[i] = byte(r*131 + i*7 + 3)
	}
	return b
}

func expected(n, m int) string {
	out := make([]byte, 0, n*m)
	for r := 0; r < n; r++ {
		out = append(out, pattern(r, m)...)
	}
	return string(out)
}

// verifyIntra runs MHA-intra with real payloads on one node and checks the
// oracle.
func verifyIntra(t *testing.T, ppn, hcas, m int, d float64) {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topology.New(1, ppn, hcas)})
	want := expected(ppn, m)
	err := w.Run(func(p *mpi.Proc) {
		recv := mpi.NewBuf(ppn * m)
		MHAIntraAllgatherD(p, w.CommWorld(), mpi.Bytes(pattern(p.Rank(), m)), recv, d)
		if string(recv.Data()) != want {
			t.Errorf("ppn=%d m=%d d=%v: rank %d wrong result", ppn, m, d, p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMHAIntraMatchesOracle(t *testing.T) {
	for _, ppn := range []int{1, 2, 3, 4, 8, 16} {
		for _, m := range []int{1, 64, 4096} {
			for _, d := range []float64{AutoOffload, 0, 0.5, 1, 1.7, 2.25} {
				if d > float64(ppn-1) {
					continue
				}
				verifyIntra(t, ppn, 2, m, d)
			}
		}
	}
}

func TestMHAIntraSingleHCA(t *testing.T) {
	verifyIntra(t, 4, 1, 512, AutoOffload)
	verifyIntra(t, 8, 4, 512, AutoOffload)
}

// measure runs an allgather in phantom mode and returns the latency.
func measureAllgather(nodes, ppn, hcas, m int, alg func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topology.New(nodes, ppn, hcas), Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		alg(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()))
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}

func intraMHA(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	MHAIntraAllgather(p, w.CommWorld(), send, recv)
}

func intraDirect(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	collectives.DirectSpreadAllgather(p, w.CommWorld(), send, recv)
}

func TestMHAIntraBeatsDirectSpread(t *testing.T) {
	// The Figure 11 claim: with 2 idle HCAs, MHA-intra beats the pure-CPU
	// direct spread, and the margin shrinks as PPN grows.
	m := 4 << 20
	var prev float64 = math.Inf(1)
	for _, ppn := range []int{2, 4, 8, 16} {
		ds := measureAllgather(1, ppn, 2, m, intraDirect)
		mha := measureAllgather(1, ppn, 2, m, intraMHA)
		speedup := float64(ds) / float64(mha)
		if speedup <= 1.02 {
			t.Fatalf("ppn=%d: MHA (%v) not faster than direct spread (%v)", ppn, mha, ds)
		}
		if speedup > prev+0.05 {
			t.Fatalf("ppn=%d: speedup %.2f grew vs smaller ppn %.2f", ppn, speedup, prev)
		}
		prev = speedup
	}
	// Two processes: the paper reports ~64-65% latency reduction.
	ds := measureAllgather(1, 2, 2, m, intraDirect)
	mha := measureAllgather(1, 2, 2, m, intraMHA)
	if red := 1 - float64(mha)/float64(ds); red < 0.4 {
		t.Fatalf("2-process reduction = %.0f%%, want >= 40%%", red*100)
	}
}

func TestOffloadPlanProperties(t *testing.T) {
	f := func(lRaw, mRaw uint16, dRaw uint16) bool {
		L := int(lRaw)%31 + 2
		m := int(mRaw)%8192 + 1
		d := float64(dRaw%1000) / 1000 * float64(L-1)
		plan := offloadPlan(L, m, d)
		if len(plan) != L {
			return false
		}
		totalHCA := 0
		for s := 1; s < L; s++ {
			if plan[s].cpu+plan[s].hca != m || plan[s].cpu < 0 || plan[s].hca < 0 {
				return false
			}
			totalHCA += plan[s].hca
		}
		// Total offloaded bytes within one rounding of d*m.
		want := d * float64(m)
		return math.Abs(float64(totalHCA)-want) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadPlanFullOffload(t *testing.T) {
	plan := offloadPlan(4, 100, 3)
	for s := 1; s < 4; s++ {
		if plan[s].hca != 100 || plan[s].cpu != 0 {
			t.Fatalf("full offload plan wrong at step %d: %+v", s, plan[s])
		}
	}
	plan = offloadPlan(4, 100, 0)
	for s := 1; s < 4; s++ {
		if plan[s].cpu != 100 || plan[s].hca != 0 {
			t.Fatalf("zero offload plan wrong at step %d: %+v", s, plan[s])
		}
	}
}

func verifyInter(t *testing.T, nodes, ppn, hcas, m int, cfg InterConfig) {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topology.New(nodes, ppn, hcas)})
	n := nodes * ppn
	want := expected(n, m)
	err := w.Run(func(p *mpi.Proc) {
		recv := mpi.NewBuf(n * m)
		MHAInterAllgatherCfg(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv, cfg)
		if string(recv.Data()) != want {
			t.Errorf("%dx%d m=%d cfg=%+v: rank %d wrong", nodes, ppn, m, cfg, p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMHAInterMatchesOracle(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{{2, 2}, {4, 4}, {3, 3}, {8, 2}, {2, 8}, {5, 2}}
	for _, s := range shapes {
		for _, cfg := range []InterConfig{
			{},
			{LeaderAlg: ForceRing},
			{LeaderAlg: ForceRD},
			{LeaderAlg: ForceRing, NoOverlap: true},
			{LeaderAlg: ForceRD, PlainPhase1: true},
		} {
			for _, m := range []int{8, 2048} {
				verifyInter(t, s.nodes, s.ppn, 2, m, cfg)
			}
		}
	}
}

func TestMHAAllgatherDispatch(t *testing.T) {
	// Single node goes through MHA-intra; multi-node through MHA-inter.
	for _, s := range []struct{ nodes, ppn int }{{1, 4}, {4, 2}} {
		w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
		n := s.nodes * s.ppn
		m := 128
		want := expected(n, m)
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(n * m)
			MHAAllgather(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv)
			if string(recv.Data()) != want {
				t.Errorf("%dx%d: rank %d wrong", s.nodes, s.ppn, p.Rank())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMHAInterBeatsBaselinesAtScale(t *testing.T) {
	// Figure 12-14 behavior at a reduced but still multi-node scale:
	// MHA wins against both library profiles for large messages, and the
	// margin grows with node count.
	m := 64 << 10
	gap := func(nodes int) (hpcx, mvp float64) {
		mha := measureAllgather(nodes, 8, 2, m, MHAInterAllgather)
		h := measureAllgather(nodes, 8, 2, m, collectives.HPCX().Allgather)
		v := measureAllgather(nodes, 8, 2, m, collectives.MVAPICH2X().Allgather)
		return float64(h) / float64(mha), float64(v) / float64(mha)
	}
	h8, v8 := gap(8)
	if h8 < 1.2 || v8 < 1.2 {
		t.Fatalf("8 nodes: speedups %.2f / %.2f, want > 1.2", h8, v8)
	}
	h16, v16 := gap(16)
	if h16 < h8*0.9 || v16 < v8*0.9 {
		t.Fatalf("margin should grow or hold with node count: hpcx %.2f->%.2f mvp %.2f->%.2f",
			h8, h16, v8, v16)
	}
}

func TestRingVsRDCrossoverMeasured(t *testing.T) {
	// Figure 8: RD wins small messages, Ring wins large.
	topo := topology.New(8, 8, 2)
	prm := netmodel.Thor()
	small := 256
	large := 256 << 10
	ringS := MeasureInter(topo, prm, small, InterConfig{LeaderAlg: ForceRing})
	rdS := MeasureInter(topo, prm, small, InterConfig{LeaderAlg: ForceRD})
	if rdS >= ringS {
		t.Fatalf("small: RD (%v) should beat Ring (%v)", rdS, ringS)
	}
	ringL := MeasureInter(topo, prm, large, InterConfig{LeaderAlg: ForceRing})
	rdL := MeasureInter(topo, prm, large, InterConfig{LeaderAlg: ForceRD})
	if ringL >= rdL {
		t.Fatalf("large: Ring (%v) should beat RD (%v)", ringL, rdL)
	}
}

func TestAutoSelectionNeverMuchWorseThanBest(t *testing.T) {
	topo := topology.New(8, 8, 2)
	prm := netmodel.Thor()
	for _, m := range []int{128, 4096, 64 << 10, 512 << 10} {
		auto := MeasureInter(topo, prm, m, InterConfig{})
		ring := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRing})
		rd := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRD})
		best := ring
		if rd < best {
			best = rd
		}
		if float64(auto) > 1.25*float64(best) {
			t.Fatalf("m=%d: auto %v much worse than best %v (ring %v, rd %v)", m, auto, best, ring, rd)
		}
	}
}

func TestOverlapAblation(t *testing.T) {
	topo := topology.New(8, 8, 2)
	prm := netmodel.Thor()
	m := 128 << 10
	with := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRing})
	without := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRing, NoOverlap: true})
	if with >= without {
		t.Fatalf("overlap (%v) not faster than sequential (%v)", with, without)
	}
}

func TestMHAIntraPhase1Ablation(t *testing.T) {
	// The MHA-intra phase 1 should beat the plain gather-to-leader
	// phase 1 for large per-rank blocks.
	topo := topology.New(4, 8, 2)
	prm := netmodel.Thor()
	m := 1 << 20
	mha := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRing})
	plain := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRing, PlainPhase1: true})
	if mha >= plain {
		t.Fatalf("MHA phase 1 (%v) not faster than plain gather (%v)", mha, plain)
	}
}

func TestTuneOffloadFindsGoodD(t *testing.T) {
	topo := topology.New(1, 8, 2)
	prm := netmodel.Thor()
	m := 4 << 20
	bestD, curve := TuneOffload(topo, prm, m, 8)
	if len(curve) < 8 {
		t.Fatalf("curve has %d points", len(curve))
	}
	tuned := MeasureIntra(topo, prm, m, bestD)
	none := MeasureIntra(topo, prm, m, 0)
	full := MeasureIntra(topo, prm, m, 7)
	if tuned > none || tuned > full {
		t.Fatalf("tuned d=%.2f (%v) worse than an endpoint (none %v, full %v)",
			bestD, tuned, none, full)
	}
	// The tuned point should be within ~15%% of the analytic Equation (1).
	analytic := MeasureIntra(topo, prm, m, AutoOffload)
	if float64(tuned) > 1.15*float64(analytic) {
		t.Fatalf("tuned %v much worse than analytic %v", tuned, analytic)
	}
}

func TestTuneOffloadSingleRank(t *testing.T) {
	d, curve := TuneOffload(topology.New(1, 1, 2), netmodel.Thor(), 1024, 5)
	if d != 0 || len(curve) != 1 {
		t.Fatalf("single-rank tuning: d=%v curve=%v", d, curve)
	}
}

func TestTuneLeaderAlg(t *testing.T) {
	topo := topology.New(8, 8, 2)
	prm := netmodel.Thor()
	if got := TuneLeaderAlg(topo, prm, 256); got != ForceRD {
		t.Fatalf("small message tuned to %v, want rd", got)
	}
	if got := TuneLeaderAlg(topo, prm, 256<<10); got != ForceRing {
		t.Fatalf("large message tuned to %v, want ring", got)
	}
}

func f64buf(base float64, elems int) mpi.Buf {
	b := make([]byte, elems*8)
	for i := 0; i < elems; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(base+float64(i)))
	}
	return mpi.Bytes(b)
}

func f64at(b mpi.Buf, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Data()[i*8:]))
}

func TestMHAAllreduceMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{2, 2}, {4, 2}, {2, 4}, {4, 4}} {
		w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
		n := s.nodes * s.ppn
		elems := 8 * n
		err := w.Run(func(p *mpi.Proc) {
			buf := f64buf(float64(p.Rank()), elems)
			MHAAllreduce(p, w, buf, collectives.SumF64())
			for i := 0; i < elems; i++ {
				want := float64(n*(n-1))/2 + float64(n*i)
				if got := f64at(buf, i); math.Abs(got-want) > 1e-9 {
					t.Errorf("%dx%d rank %d elem %d = %v want %v", s.nodes, s.ppn, p.Rank(), i, got, want)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMHAAllreduceBeatsRingAtScale(t *testing.T) {
	// Figure 15 behavior: plugging the MHA allgather into ring allreduce
	// beats the flat ring allreduce for large buffers.
	topo := topology.New(8, 8, 2)
	prm := netmodel.Thor()
	n := 1 << 20 // 1 MB per rank, divisible by 8*64
	mha := MeasureProfileAllreduce(topo, prm, n, Profile())
	ring := MeasureProfileAllreduce(topo, prm, n, collectives.HPCX())
	if float64(ring)/float64(mha) < 1.1 {
		t.Fatalf("MHA allreduce %v vs ring %v: want > 1.1x", mha, ring)
	}
}

func TestProfileFallbackForNonUniformBuffers(t *testing.T) {
	// A buffer not divisible by 8*size must still reduce correctly.
	w := mpi.New(mpi.Config{Topo: topology.New(2, 3, 2)})
	n := 6
	err := w.Run(func(p *mpi.Proc) {
		buf := f64buf(float64(p.Rank()), 5) // 40 bytes, not divisible by 48
		Profile().Allreduce(p, w, buf, collectives.SumF64())
		want := float64(n * (n - 1) / 2)
		if got := f64at(buf, 0); math.Abs(got-want) > 1e-9 {
			t.Errorf("elem 0 = %v want %v", got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModelValidation(t *testing.T) {
	// Figures 9 and 10: the analytic model must track the simulated
	// latency within a factor band across the sweep.
	prm := netmodel.Thor()

	// Fig. 9: MHA-intra, 4 processes, 16KB..16MB.
	intraTopo := topology.New(1, 4, 2)
	pm := perfmodel.New(prm, intraTopo)
	for m := 16 << 10; m <= 16<<20; m *= 4 {
		actual := MeasureIntra(intraTopo, prm, m, AutoOffload)
		predicted := pm.MHAIntra(m)
		ratio := float64(actual) / float64(predicted)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("intra m=%d: actual %v vs predicted %v (ratio %.2f)", m, actual, predicted, ratio)
		}
	}

	// Fig. 10 (scaled down): MHA-inter, 4 nodes 8 PPN, 1KB..512KB.
	interTopo := topology.New(4, 8, 2)
	pm2 := perfmodel.New(prm, interTopo)
	for m := 1 << 10; m <= 512<<10; m *= 8 {
		actual := MeasureInter(interTopo, prm, m, InterConfig{})
		pr := pm2.MHAInterRing(m)
		if rd := pm2.MHAInterRD(m); rd < pr {
			pr = rd
		}
		ratio := float64(actual) / float64(pr)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("inter m=%d: actual %v vs predicted %v (ratio %.2f)", m, actual, pr, ratio)
		}
	}
}

func TestLeaderChoiceString(t *testing.T) {
	for _, c := range []struct {
		l    LeaderChoice
		want string
	}{{AutoLeaderAlg, "auto"}, {ForceRing, "ring"}, {ForceRD, "rd"}, {LeaderChoice(9), "?"}} {
		if got := c.l.String(); got != c.want {
			t.Fatalf("%d.String() = %q want %q", c.l, got, c.want)
		}
	}
}

func TestMHAIntraArgCheck(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(1, 2, 1)})
	err := w.Run(func(p *mpi.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("mismatched buffers should panic")
			}
		}()
		MHAIntraAllgather(p, w.CommWorld(), mpi.Phantom(8), mpi.Phantom(8))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: MHA-intra is correct for random (ppn, hca, m, d).
func TestQuickMHAIntraCorrect(t *testing.T) {
	f := func(ppn, hcas uint8, mRaw uint16, dRaw uint16) bool {
		L := int(ppn)%6 + 1
		H := int(hcas)%3 + 1
		m := int(mRaw)%512 + 1
		d := float64(dRaw%1000) / 1000 * float64(L-1)
		w := mpi.New(mpi.Config{Topo: topology.New(1, L, H)})
		want := expected(L, m)
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(L * m)
			MHAIntraAllgatherD(p, w.CommWorld(), mpi.Bytes(pattern(p.Rank(), m)), recv, d)
			if string(recv.Data()) != want {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func ExampleMHAAllgather() {
	w := mpi.New(mpi.Config{Topo: topology.New(2, 2, 2)})
	err := w.Run(func(p *mpi.Proc) {
		send := mpi.Bytes([]byte{byte('A' + p.Rank())})
		recv := mpi.NewBuf(4)
		MHAAllgather(p, w, send, recv)
		if p.Rank() == 0 {
			fmt.Println(string(recv.Data()))
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: ABCD
}

func TestTuningTableBuildLookupRoundTrip(t *testing.T) {
	topo := topology.New(4, 8, 2)
	prm := netmodel.Thor()
	table := BuildTuningTable(topo, prm, []int{1 << 10, 64 << 10, 1 << 20})
	if len(table.Entries) != 3 {
		t.Fatalf("entries = %d", len(table.Entries))
	}
	if !table.Matches(topo) || table.Matches(topology.New(2, 8, 2)) {
		t.Fatal("Matches wrong")
	}
	// Small messages should select RD, large Ring (the Figure 8 result).
	if table.Lookup(256).Alg != "rd" {
		t.Fatalf("small lookup = %+v, want rd", table.Lookup(256))
	}
	if table.Lookup(1<<20).Alg != "ring" {
		t.Fatalf("large lookup = %+v, want ring", table.Lookup(1<<20))
	}
	// Beyond the table: last entry.
	if table.Lookup(64<<20).Alg != table.Entries[2].Alg {
		t.Fatal("out-of-range lookup should use the last entry")
	}
	// Round-trip through JSON.
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTuningTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != 3 || loaded.Entries[1].Alg != table.Entries[1].Alg {
		t.Fatalf("round trip mismatch: %+v", loaded)
	}
	// The derived config matches the entry.
	if cfg := table.InterConfigFor(256); cfg.LeaderAlg != ForceRD {
		t.Fatalf("InterConfigFor(256) = %+v", cfg)
	}
	if cfg := table.InterConfigFor(1 << 20); cfg.LeaderAlg != ForceRing {
		t.Fatalf("InterConfigFor(1MB) = %+v", cfg)
	}
}

func TestLoadTuningTableRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"nodes":0,"ppn":1,"hcas":1,"entries":[{"max_bytes":1,"alg":"ring"}]}`,
		`{"nodes":1,"ppn":1,"hcas":1,"entries":[]}`,
		`{"nodes":1,"ppn":1,"hcas":1,"entries":[{"max_bytes":10,"alg":"ring"},{"max_bytes":5,"alg":"rd"}]}`,
		`{"nodes":1,"ppn":1,"hcas":1,"entries":[{"max_bytes":10,"alg":"quantum"}]}`,
	}
	for i, c := range cases {
		if _, err := LoadTuningTable(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestTunedTableAgreesWithAuto(t *testing.T) {
	// The table-driven selection should never be much worse than the
	// model-driven auto selection.
	topo := topology.New(4, 8, 2)
	prm := netmodel.Thor()
	table := BuildTuningTable(topo, prm, []int{1 << 10, 16 << 10, 256 << 10})
	for _, m := range []int{512, 8 << 10, 128 << 10} {
		tuned := MeasureInter(topo, prm, m, table.InterConfigFor(m))
		auto := MeasureInter(topo, prm, m, InterConfig{})
		if float64(tuned) > 1.15*float64(auto) {
			t.Fatalf("m=%d: table selection %v much worse than auto %v", m, tuned, auto)
		}
	}
}
