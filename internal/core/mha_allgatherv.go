package core

import (
	"fmt"

	"mha/internal/collectives"
	"mha/internal/mpi"
)

const (
	phaseVGather = 29 + iota
	phaseVLeader
)

// MHAAllgatherv is the hierarchical, multi-rail-aware MPI_Allgatherv:
// rank r contributes counts[r] bytes (world-rank indexed). The design is
// the MHA-inter template with variable block sizes — leader-pull node
// gather, ring inter-leader exchange of whole (variable) node blocks
// striped across all rails, and the overlapped shared-memory distribution
// with availability counters.
func MHAAllgatherv(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf, counts []int) {
	topo := w.Topo()
	c := w.CommWorld()
	n := topo.Size()
	if len(counts) != n {
		panic(fmt.Sprintf("core: %d counts for %d ranks", len(counts), n))
	}
	me := p.Rank()
	if send.Len() != counts[me] {
		panic(fmt.Sprintf("core: rank %d sends %dB, counts say %dB", me, send.Len(), counts[me]))
	}
	offs := make([]int, n)
	total := 0
	for i, cnt := range counts {
		offs[i] = total
		total += cnt
	}
	if recv.Len() != total {
		panic(fmt.Sprintf("core: recv %dB, counts sum to %dB", recv.Len(), total))
	}
	N := topo.Nodes
	L := topo.PPN
	node := p.Node()
	epoch := c.Epoch(p)

	// Per-node block geometry (contiguous because of the block layout).
	nodeOff := make([]int, N)
	nodeLen := make([]int, N)
	for nd := 0; nd < N; nd++ {
		first := topo.RankOf(nd, 0)
		nodeOff[nd] = offs[first]
		for l := 0; l < L; l++ {
			nodeLen[nd] += counts[topo.RankOf(nd, l)]
		}
	}

	// Phase 1: leader-pull gather of the node block.
	if !p.IsLeader() {
		p.Send(c, topo.LeaderOf(node), mpi.Tag(epoch, phaseVGather, p.Local()), send, mpi.ByRef())
	} else {
		p.LocalCopy(recv.Slice(offs[me], counts[me]), send)
		for l := 1; l < L; l++ {
			src := topo.RankOf(node, l)
			got := p.Recv(c, src, mpi.Tag(epoch, phaseVGather, l))
			p.ChargeCMA(counts[src])
			recv.Slice(offs[src], counts[src]).CopyFrom(got)
		}
	}

	if N == 1 {
		// Distribute the node block to the non-leaders via shared memory.
		if L == 1 {
			return
		}
		shm := p.ShmOpen(shmvName(epoch), total)
		avail := shm.Counter("avail")
		if p.IsLeader() {
			shm.CopyIn(p, 0, recv)
			avail.Add(1)
			return
		}
		shm.WaitCounter(p, "avail", 1)
		shm.CopyOut(p, 0, recv)
		return
	}

	shm := p.ShmOpen(shmvName(epoch), total)
	avail := shm.Counter("avail")

	if p.IsLeader() {
		lc := w.LeaderComm()
		right := (node + 1) % N
		left := (node - 1 + N) % N
		cur := node
		for s := 0; s < N-1; s++ {
			tag := mpi.Tag(epoch, phaseVLeader, s)
			rreq := p.Irecv(lc, left, tag)
			sreq := p.Isend(lc, right, tag, recv.Slice(nodeOff[cur], nodeLen[cur]))
			// Publish the block already held while the wire is busy.
			if nodeLen[cur] > 0 {
				shm.CopyIn(p, nodeOff[cur], recv.Slice(nodeOff[cur], nodeLen[cur]))
			}
			avail.Add(1)
			got := p.Wait(rreq)
			cur = (node - s - 1 + N) % N
			recv.Slice(nodeOff[cur], nodeLen[cur]).CopyFrom(got)
			p.Wait(sreq)
		}
		if nodeLen[cur] > 0 {
			shm.CopyIn(p, nodeOff[cur], recv.Slice(nodeOff[cur], nodeLen[cur]))
		}
		avail.Add(1)
		return
	}
	if L == 1 {
		return
	}
	// Non-leaders: blocks arrive in ring order starting with the own node.
	for k := 0; k < N; k++ {
		shm.WaitCounter(p, "avail", int64(k+1))
		nd := (node - k + N) % N
		if nodeLen[nd] == 0 {
			continue
		}
		shm.CopyOut(p, nodeOff[nd], recv.Slice(nodeOff[nd], nodeLen[nd]))
	}
}

func shmvName(epoch int) string { return fmt.Sprintf("mha-agv-%d", epoch) }

// FlatAllgatherv exposes the ring baseline under the same world-oriented
// signature for side-by-side comparisons.
func FlatAllgatherv(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf, counts []int) {
	collectives.RingAllgatherv(p, w.CommWorld(), send, recv, counts)
}
