package core

import (
	"math"
	"testing"
	"testing/quick"

	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/sim"
	"mha/internal/topology"
)

// vExpected builds the oracle for variable counts.
func vExpected(counts []int) string {
	out := []byte{}
	for r, cnt := range counts {
		out = append(out, pattern(r, cnt)...)
	}
	return string(out)
}

func runAllgatherv(t *testing.T, nodes, ppn int, counts []int,
	alg func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf, counts []int)) {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topology.New(nodes, ppn, 2)})
	total := 0
	for _, c := range counts {
		total += c
	}
	want := vExpected(counts)
	err := w.Run(func(p *mpi.Proc) {
		recv := mpi.NewBuf(total)
		alg(p, w, mpi.Bytes(pattern(p.Rank(), counts[p.Rank()])), recv, counts)
		if string(recv.Data()) != want {
			t.Errorf("%dx%d counts=%v: rank %d wrong", nodes, ppn, counts, p.Rank())
		}
	})
	if err != nil {
		t.Fatalf("%dx%d counts=%v: %v", nodes, ppn, counts, err)
	}
}

func TestAllgathervMatchesOracle(t *testing.T) {
	cases := []struct {
		nodes, ppn int
		counts     []int
	}{
		{1, 4, []int{5, 0, 17, 3}},
		{2, 2, []int{8, 8, 8, 8}},
		{2, 3, []int{1, 2, 3, 4, 5, 6}},
		{4, 2, []int{100, 0, 0, 50, 25, 12, 6, 3}},
		{3, 2, []int{0, 0, 7, 7, 0, 0}},
		{2, 1, []int{9, 4}},
	}
	for _, cs := range cases {
		runAllgatherv(t, cs.nodes, cs.ppn, cs.counts, MHAAllgatherv)
		runAllgatherv(t, cs.nodes, cs.ppn, cs.counts, FlatAllgatherv)
	}
}

func TestMHAAllgathervBeatsFlatAtScale(t *testing.T) {
	topo := topology.New(4, 8, 2)
	counts := make([]int, topo.Size())
	for i := range counts {
		counts[i] = 32<<10 + (i%5)*4096 // uneven, ~32-48KB
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	measure := func(alg func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf, counts []int)) sim.Duration {
		w := mpi.New(mpi.Config{Topo: topo, Phantom: true})
		var worst sim.Time
		err := w.Run(func(p *mpi.Proc) {
			alg(p, w, mpi.Phantom(counts[p.Rank()]), mpi.Phantom(total), counts)
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Duration(worst)
	}
	mha := measure(MHAAllgatherv)
	flat := measure(FlatAllgatherv)
	if mha >= flat {
		t.Fatalf("MHA allgatherv (%v) not faster than flat ring (%v)", mha, flat)
	}
}

func TestAllgathervArgChecks(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(1, 2, 1)})
	err := w.Run(func(p *mpi.Proc) {
		check := func(fn func()) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}
		check(func() { // wrong counts length
			MHAAllgatherv(p, w, mpi.Phantom(4), mpi.Phantom(8), []int{4})
		})
		check(func() { // send size mismatch
			MHAAllgatherv(p, w, mpi.Phantom(3), mpi.Phantom(8), []int{4, 4})
		})
		check(func() { // recv size mismatch
			MHAAllgatherv(p, w, mpi.Phantom(4), mpi.Phantom(9), []int{4, 4})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: MHA allgatherv matches the oracle for random counts.
func TestQuickAllgathervCorrect(t *testing.T) {
	f := func(nodes, ppn uint8, raw []uint8) bool {
		nd := int(nodes)%3 + 1
		l := int(ppn)%3 + 1
		n := nd * l
		counts := make([]int, n)
		for i := range counts {
			if i < len(raw) {
				counts[i] = int(raw[i])
			}
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		w := mpi.New(mpi.Config{Topo: topology.New(nd, l, 2)})
		want := vExpected(counts)
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(total)
			MHAAllgatherv(p, w, mpi.Bytes(pattern(p.Rank(), counts[p.Rank()])), recv, counts)
			if string(recv.Data()) != want {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDisseminationBarrierSynchronizes(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(2, 3, 2)})
	var minExit sim.Time = 1 << 62
	var maxEnter sim.Time
	err := w.Run(func(p *mpi.Proc) {
		p.Sleep(sim.Duration(p.Rank()) * 10 * sim.Microsecond)
		if p.Now() > maxEnter {
			maxEnter = p.Now()
		}
		collectives.DisseminationBarrier(p, w.CommWorld())
		if p.Now() < minExit {
			minExit = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if minExit < maxEnter {
		t.Fatalf("a rank left the barrier (%v) before the last rank entered (%v)", minExit, maxEnter)
	}
}

func TestDisseminationBarrierCostIsLogarithmic(t *testing.T) {
	lat := func(n int) sim.Time {
		w := mpi.New(mpi.Config{Topo: topology.New(n, 1, 2), Phantom: true})
		var worst sim.Time
		err := w.Run(func(p *mpi.Proc) {
			collectives.DisseminationBarrier(p, w.CommWorld())
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	l8, l16 := lat(8), lat(16)
	if l8 == 0 {
		t.Fatal("barrier should have modeled cost")
	}
	if float64(l16) > 1.5*float64(l8) {
		t.Fatalf("barrier not logarithmic: %v -> %v", l8, l16)
	}
}

func TestInclusiveScan(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 4}, {2, 3}, {4, 2}, {1, 7}} {
		w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
		elems := 4
		err := w.Run(func(p *mpi.Proc) {
			buf := f64buf(float64(p.Rank()), elems)
			collectives.InclusiveScan(p, w.CommWorld(), buf, collectives.SumF64())
			r := p.Rank()
			for i := 0; i < elems; i++ {
				// sum over k<=r of (k+i) = r(r+1)/2 + (r+1)*i
				want := float64(r*(r+1))/2 + float64((r+1)*i)
				if got := f64at(buf, i); math.Abs(got-want) > 1e-9 {
					t.Errorf("%dx%d rank %d elem %d = %v want %v", s.nodes, s.ppn, r, i, got, want)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
