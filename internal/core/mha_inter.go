package core

import (
	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/perfmodel"
)

// InterConfig customizes the hierarchical MHA allgather.
type InterConfig struct {
	// LeaderAlg fixes the phase-2 algorithm; leave as AutoLeaderAlg to let
	// the cost model pick per message size (the paper's "tuned numbers
	// between these two algorithms").
	LeaderAlg LeaderChoice
	// NoOverlap disables the phase-2/3 overlap (ablation only).
	NoOverlap bool
	// PlainPhase1 replaces the MHA-intra phase 1 with a plain gather to
	// the leader (ablation only).
	PlainPhase1 bool
}

// LeaderChoice selects phase 2's inter-leader algorithm.
type LeaderChoice int

const (
	// AutoLeaderAlg picks Ring or RD per message size from the model.
	AutoLeaderAlg LeaderChoice = iota
	// ForceRing always uses Ring.
	ForceRing
	// ForceRD always uses Recursive Doubling.
	ForceRD
)

func (l LeaderChoice) String() string {
	switch l {
	case AutoLeaderAlg:
		return "auto"
	case ForceRing:
		return "ring"
	case ForceRD:
		return "rd"
	default:
		return "?"
	}
}

// MHAInterAllgather is the hierarchical multi-HCA-aware allgather of
// Section 3.2 with the default configuration: MHA-intra phase 1, model-
// selected phase-2 algorithm, overlapped phase 3.
func MHAInterAllgather(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	MHAInterAllgatherCfg(p, w, send, recv, InterConfig{})
}

// RingBetter reports whether the cost model prefers Ring over RD for the
// phase-2 exchange of per-rank messages of n bytes on w's topology.
func RingBetter(w *mpi.World, n int) bool {
	return perfmodel.New(w.Params(), w.Topo()).RingBetterThanRD(n)
}

// MHAInterAllgatherCfg is MHAInterAllgather with explicit configuration.
func MHAInterAllgatherCfg(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf, cfg InterConfig) {
	alg := collectives.LeaderRing
	switch cfg.LeaderAlg {
	case ForceRD:
		alg = collectives.LeaderRD
	case AutoLeaderAlg:
		if !RingBetter(w, send.Len()) {
			alg = collectives.LeaderRD
		}
	}
	hc := collectives.HierarchicalConfig{
		LeaderAlg: alg,
		Overlap:   !cfg.NoOverlap,
	}
	if !cfg.PlainPhase1 {
		hc.NodeAllgather = NodeAllgather
	}
	collectives.HierarchicalAllgather(p, w, send, recv, hc)
}

// MHAAllgather is the top-level MHA collective: pure intra-node jobs run
// MHA-intra, multi-node jobs run the hierarchical design. This is the
// entry point the evaluation benchmarks as "MHA".
func MHAAllgather(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	if w.Topo().Nodes == 1 {
		MHAIntraAllgather(p, w.CommWorld(), send, recv)
		return
	}
	MHAInterAllgather(p, w, send, recv)
}

// MHAAllreduce is the improved ring allreduce of Section 5.4: the ring
// reduce-scatter followed by the MHA allgather of the reduced chunks. The
// buffer must be a multiple of 8*size bytes (pad gradients up; the
// benchmark harness and the DL application both do).
func MHAAllreduce(p *mpi.Proc, w *mpi.World, buf mpi.Buf, red collectives.Reducer) {
	collectives.AllreduceViaAllgather(p, w.CommWorld(), buf, red,
		func(p *mpi.Proc, send, recv mpi.Buf) {
			MHAAllgather(p, w, send, recv)
		})
}

// Profile packages the MHA collectives in the same shape as the library
// profiles in internal/collectives, for side-by-side benchmarking.
func Profile() collectives.Profile {
	return collectives.Profile{
		Name:      "MHA",
		Allgather: MHAAllgather,
		Allreduce: func(p *mpi.Proc, w *mpi.World, buf mpi.Buf, red collectives.Reducer) {
			if buf.Len()%(8*w.Topo().Size()) == 0 {
				MHAAllreduce(p, w, buf, red)
				return
			}
			// Non-uniform chunking: fall back to the classic ring.
			collectives.RingAllreduce(p, w.CommWorld(), buf, red)
		},
	}
}
