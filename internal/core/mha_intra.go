// Package core implements the paper's contribution: the Multi-HCA-Aware
// (MHA) Allgather designs.
//
//   - MHAIntraAllgather (Section 3.1) extends the Direct-Spread algorithm
//     with HCA offload: each rank hands a tuned fraction d of its L-1
//     intra-node transfers to the otherwise idle network adapters, so CPUs
//     and NICs finish together (Equation 1).
//   - MHAInterAllgather (Section 3.2) is the hierarchical design: phase 1
//     aggregates the node block with MHA-intra, phase 2 exchanges node
//     blocks between single per-node leaders with Recursive Doubling or
//     Ring striped over every rail, and phase 3 streams each arriving block
//     through shared memory, overlapped with phase 2.
//   - MHAAllreduce (Section 5.4) plugs the MHA allgather into the allgather
//     phase of the bandwidth-optimal ring allreduce.
package core

import (
	"math"

	"mha/internal/mpi"
	"mha/internal/perfmodel"
	"mha/internal/topology"
)

// Tag phase ids private to the MHA algorithms. (Phases 0-8 belong to the
// flat algorithms in internal/collectives; collisions would be harmless —
// every collective invocation gets its own epoch — but distinct ids keep
// traces and tag dumps unambiguous.)
const (
	phaseIntraCPU = 10 + iota // direct-spread transfer carried by the CPU
	phaseIntraHCA             // transfer (or split remainder) carried by HCAs
)

// AutoOffload asks MHAIntraAllgatherD to derive the offload from
// Equation (1).
const AutoOffload = -1

// MHAIntraAllgather is the multi-HCA-aware intra-node allgather of
// Section 3.1 with the analytic offload of Equation (1).
func MHAIntraAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	MHAIntraAllgatherD(p, c, send, recv, AutoOffload)
}

// MHAIntraAllgatherD runs MHA-intra with an explicit offload d (in
// transfers per rank, fractional; AutoOffload derives it from the model).
// All ranks of c must pass the same d. The communicator must live entirely
// on one node; the world communicator of a single-node job qualifies, as
// does any node communicator.
//
// Structure per rank, following Figure 4b: the offloaded transfers are
// posted first (nonblocking — the NICs work in the background), then the
// CPU performs its share of direct-spread steps, then everything is
// awaited. A fractional d splits one message between CPU and NIC.
func MHAIntraAllgatherD(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf, d float64) {
	if recv.Len() != send.Len()*c.Size() {
		panic("core: allgather buffer size mismatch")
	}
	m := send.Len()
	L := c.Size()
	me := c.Rank(p)
	epoch := c.Epoch(p)
	if L == 1 {
		p.LocalCopy(recv.Slice(me*m, m), send)
		return
	}
	if d < 0 {
		// Equation (1) with L = the communicator's size (a whole node, or
		// one NUMA socket in the 3-level design). Under a fault schedule,
		// plan the offload for the node's steady surviving rail count —
		// every rank of the node derives the same count regardless of when
		// it asks, so the byte-exact plans still agree.
		t := p.World().Topo()
		// Project the cluster down to this node: the heterogeneous fields
		// describe the whole machine and do not survive the projection, but
		// the node's own usable rail count does.
		t.HCAs = t.HCAsOf(p.Node())
		t.Nodes, t.PPN, t.Sockets = 1, L, 0
		t.Layout, t.NodeHCAs, t.RailBW, t.Ranks = topology.Block, nil, nil, nil
		if h := p.World().Health(); h.Faulty() {
			t.HCAs = h.PlanRails(p.Node())
		}
		if t.HCAs == 0 {
			d = 0 // every rail is dead for the whole run: pure CPU spread
		} else {
			d = perfmodel.New(p.World().Params(), t).OffloadD(m)
		}
	}
	if max := float64(L - 1); d > max {
		d = max
	}
	plan := offloadPlan(L, m, d)

	// Post every receive up front; they hold no resources.
	type pending struct {
		req *mpi.Request
		src int
		off int // offset within the source block (for split pieces)
		n   int
	}
	var recvs []pending
	for s := 1; s < L; s++ {
		src := (me - s + L) % L
		cpuN, hcaN := plan[s].cpu, plan[s].hca
		if cpuN > 0 {
			recvs = append(recvs, pending{p.Irecv(c, src, mpi.Tag(epoch, phaseIntraCPU, s)), src, 0, cpuN})
		}
		if hcaN > 0 {
			recvs = append(recvs, pending{p.Irecv(c, src, mpi.Tag(epoch, phaseIntraHCA, s)), src, cpuN, hcaN})
		}
	}

	// Offloaded sends: post them all now; rails queue behind one another
	// and run concurrently with the CPU's copies below.
	var sends []*mpi.Request
	for s := 1; s < L; s++ {
		if n := plan[s].hca; n > 0 {
			dst := (me + s) % L
			off := plan[s].cpu
			sends = append(sends,
				p.Isend(c, dst, mpi.Tag(epoch, phaseIntraHCA, s), send.Slice(off, n), mpi.ViaHCA()))
		}
	}

	// CPU share: first the send-to-receive self copy (the adapters are
	// already working), then the classic direct-spread order, one blocking
	// CMA copy at a time (the rank's CPU can only run one copy anyway).
	p.LocalCopy(recv.Slice(me*m, m), send)
	for s := 1; s < L; s++ {
		if n := plan[s].cpu; n > 0 {
			dst := (me + s) % L
			p.Send(c, dst, mpi.Tag(epoch, phaseIntraCPU, s), send.Slice(0, n))
		}
	}

	for _, pr := range recvs {
		data := p.Wait(pr.req)
		recv.Slice(pr.src*m+pr.off, pr.n).CopyFrom(data)
	}
	for _, sr := range sends {
		p.Wait(sr)
	}
}

// split describes how one step's message divides between CPU and HCAs.
type split struct{ cpu, hca int }

// offloadPlan assigns each direct-spread step s=1..L-1 to the CPU, the
// HCAs, or a byte split of both, so that the total HCA share equals d
// messages. The plan is a pure function of (L, m, d), so sender and
// receiver always agree. The last floor(d) steps offload whole messages
// (they are the "farthest" peers); the step before them carries the
// fractional remainder.
func offloadPlan(L, m int, d float64) []split {
	plan := make([]split, L)
	whole := int(d)
	frac := d - float64(whole)
	if whole > L-1 {
		whole, frac = L-1, 0
	}
	for s := 1; s < L; s++ {
		plan[s] = split{cpu: m}
	}
	for k := 0; k < whole; k++ {
		plan[L-1-k] = split{hca: m}
	}
	if frac > 0 && whole < L-1 {
		hcaN := int(math.Round(frac * float64(m)))
		if hcaN > m {
			hcaN = m
		}
		plan[L-1-whole] = split{cpu: m - hcaN, hca: hcaN}
	}
	return plan
}

// NodeAllgather adapts MHA-intra to the collectives.HierarchicalConfig
// phase-1 signature.
func NodeAllgather(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	MHAIntraAllgather(p, c, send, recv)
}
