package core

// The paper's future work ("we plan to address other collectives"): the
// same three-phase hierarchical, multi-rail-aware template applied to
// Bcast, Reduce, Gather, Scatter and Alltoall. Each follows the MHA-inter
// recipe — single leader per node, inter-leader traffic striped across
// every rail, node-level distribution through shared-memory chunk
// counters overlapped with the network phase — and each is verified
// against its flat baseline's oracle in the tests.

import (
	"fmt"

	"mha/internal/collectives"
	"mha/internal/mpi"
)

const (
	phaseMBcast = 24 + iota
	phaseMReduce
	phaseMGather
	phaseMScatter
	phaseMA2A
)

// bcastChunk is the pipeline granularity of the shared-memory broadcast
// stage: small enough to overlap, large enough to amortize alpha_L.
const bcastChunk = 256 << 10

// MHABcast broadcasts root's buffer with the hierarchical template:
// root -> its node leader, binomial tree over node leaders (striped over
// all rails), and a chunked shared-memory pipeline inside every node so
// peers start copying while later chunks are still arriving at the NICs
// of other leaders.
func MHABcast(p *mpi.Proc, w *mpi.World, root int, buf mpi.Buf) {
	topo := w.Topo()
	c := w.CommWorld()
	epoch := c.Epoch(p)
	me := p.Rank()
	rootNode := topo.NodeOf(root)
	n := buf.Len()

	// Phase A: move the payload from root to its node's leader.
	if me == root && !p.IsLeader() {
		p.Send(c, topo.LeaderOf(rootNode), mpi.Tag(epoch, phaseMBcast, 1<<12), buf)
	}
	if p.IsLeader() && p.Node() == rootNode && me != root {
		got := p.Recv(c, root, mpi.Tag(epoch, phaseMBcast, 1<<12))
		buf.CopyFrom(got)
	}

	// Phase B: binomial broadcast over the leaders (world ranks of local 0).
	if p.IsLeader() && topo.Nodes > 1 {
		collectives.BinomialBcast(p, w.LeaderComm(), rootNode, buf)
	}

	// Phase C: chunked shared-memory distribution within each node.
	if topo.PPN == 1 {
		return
	}
	shm := p.ShmOpen(fmt.Sprintf("mha-bcast-%d", epoch), n)
	avail := shm.Counter("chunks")
	chunks := (n + bcastChunk - 1) / bcastChunk
	if p.IsLeader() {
		for k := 0; k < chunks; k++ {
			off := k * bcastChunk
			ln := min(bcastChunk, n-off)
			shm.CopyIn(p, off, buf.Slice(off, ln))
			avail.Add(1)
		}
		return
	}
	if me == root {
		return // root already holds the data
	}
	for k := 0; k < chunks; k++ {
		shm.WaitCounter(p, "chunks", int64(k+1))
		off := k * bcastChunk
		ln := min(bcastChunk, n-off)
		shm.CopyOut(p, off, buf.Slice(off, ln))
	}
}

// MHAReduce reduces every rank's buffer into root's: an intra-node
// binomial reduce over CMA first (so only one rank per node talks to the
// network), then a binomial reduce over the leaders with every message
// striped across the rails, then leader -> root if root is not a leader.
func MHAReduce(p *mpi.Proc, w *mpi.World, root int, buf mpi.Buf, red collectives.Reducer) {
	topo := w.Topo()
	c := w.CommWorld()
	epoch := c.Epoch(p)
	rootNode := topo.NodeOf(root)

	// Phase A: node-level reduction to the node leader.
	collectives.BinomialReduce(p, w.NodeComm(p.Node()), 0, buf, red)

	// Phase B: inter-leader reduction to the root's node leader.
	if p.IsLeader() && topo.Nodes > 1 {
		collectives.BinomialReduce(p, w.LeaderComm(), rootNode, buf, red)
	}

	// Phase C: hand the result to root if it is not its node's leader.
	if !topo.IsLeader(root) {
		lead := topo.LeaderOf(rootNode)
		if p.Rank() == lead {
			p.Send(c, root, mpi.Tag(epoch, phaseMReduce, 1<<12), buf)
		}
		if p.Rank() == root {
			got := p.Recv(c, lead, mpi.Tag(epoch, phaseMReduce, 1<<12))
			buf.CopyFrom(got)
		}
	}
}

// MHAGather collects every rank's m-byte block at root in world-rank
// order: node-level gather to each leader (leader-driven CMA pulls), then
// each leader ships its whole node block to root in one striped transfer,
// N-1 messages instead of N*L-1.
func MHAGather(p *mpi.Proc, w *mpi.World, root int, send, recv mpi.Buf) {
	topo := w.Topo()
	c := w.CommWorld()
	epoch := c.Epoch(p)
	m := send.Len()
	L := topo.PPN
	B := L * m
	rootNode := topo.NodeOf(root)
	me := p.Rank()

	if me == root && recv.Len() != m*topo.Size() {
		panic(fmt.Sprintf("core: gather recv %dB != %d x %dB", recv.Len(), topo.Size(), m))
	}

	// Phase A: node-level gather into the leader's staging block. On the
	// root's node the staging area is root's receive buffer directly.
	var nodeBlock mpi.Buf
	if p.IsLeader() {
		nodeBlock = mpi.Make(B, send.IsPhantom())
	}
	collectives.GatherToLeader(p, w.NodeComm(p.Node()), send, nodeBlock)

	// Phase B: leaders ship node blocks to root.
	if p.IsLeader() && p.Node() != rootNode {
		p.Send(c, root, mpi.Tag(epoch, phaseMGather, p.Node()), nodeBlock)
	}
	if me == root {
		// Own node's block.
		var own mpi.Buf
		if p.IsLeader() {
			own = nodeBlock
		} else {
			own = p.Recv(c, topo.LeaderOf(rootNode), mpi.Tag(epoch, phaseMGather, 1<<12))
		}
		recv.Slice(rootNode*B, B).CopyFrom(own)
		for nd := 0; nd < topo.Nodes; nd++ {
			if nd == rootNode {
				continue
			}
			got := p.Recv(c, topo.LeaderOf(nd), mpi.Tag(epoch, phaseMGather, nd))
			recv.Slice(nd*B, B).CopyFrom(got)
		}
	}
	if p.IsLeader() && p.Node() == rootNode && me != root {
		p.Send(c, root, mpi.Tag(epoch, phaseMGather, 1<<12), nodeBlock)
	}
}

// MHAScatter distributes root's per-rank blocks: root ships one striped
// node block to each leader, and leaders fan out through shared memory
// with availability counters.
func MHAScatter(p *mpi.Proc, w *mpi.World, root int, send, recv mpi.Buf) {
	topo := w.Topo()
	c := w.CommWorld()
	epoch := c.Epoch(p)
	m := recv.Len()
	L := topo.PPN
	B := L * m
	me := p.Rank()
	rootNode := topo.NodeOf(root)

	if me == root {
		if send.Len() != m*topo.Size() {
			panic(fmt.Sprintf("core: scatter send %dB != %d x %dB", send.Len(), topo.Size(), m))
		}
		for nd := 0; nd < topo.Nodes; nd++ {
			dst := topo.LeaderOf(nd)
			blk := send.Slice(nd*B, B)
			if nd == rootNode {
				if p.IsLeader() {
					continue // handled below via shm
				}
				p.Send(c, dst, mpi.Tag(epoch, phaseMScatter, nd), blk)
				continue
			}
			p.Send(c, dst, mpi.Tag(epoch, phaseMScatter, nd), blk)
		}
	}

	if L == 1 {
		// Every rank is a leader; just receive the block.
		if me != root {
			got := p.Recv(c, root, mpi.Tag(epoch, phaseMScatter, p.Node()))
			recv.CopyFrom(got)
		} else {
			p.LocalCopy(recv, send.Slice(rootNode*B, m))
		}
		return
	}

	shm := p.ShmOpen(fmt.Sprintf("mha-scatter-%d", epoch), B)
	avail := shm.Counter("block")
	if p.IsLeader() {
		var blk mpi.Buf
		if me == root {
			blk = send.Slice(rootNode*B, B)
		} else {
			blk = p.Recv(c, root, mpi.Tag(epoch, phaseMScatter, p.Node()))
		}
		shm.CopyIn(p, 0, blk)
		avail.Add(1)
	}
	shm.WaitCounter(p, "block", 1)
	shm.CopyOut(p, p.Local()*m, recv)
}

// MHAAlltoall is the hierarchical alltoall: ranks stage their slices into
// a per-destination-node shared region, leaders exchange L*L-sized node-
// pair blocks pairwise with striping, and arriving blocks stream out to
// the destination ranks through availability counters, overlapped with
// the remaining exchanges. send and recv hold one m-byte block per world
// rank.
func MHAAlltoall(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	topo := w.Topo()
	c := w.CommWorld()
	if send.Len() != recv.Len() || send.Len()%topo.Size() != 0 {
		panic("core: alltoall needs equal send/recv of one block per rank")
	}
	epoch := c.Epoch(p)
	m := send.Len() / topo.Size()
	L := topo.PPN
	N := topo.Nodes
	node := p.Node()
	local := p.Local()
	pair := L * L * m // bytes exchanged per node pair

	if N == 1 {
		collectives.PairwiseAlltoall(p, c, send, recv)
		return
	}

	// Staging region: for each destination node, L*L slices laid out as
	// [srcLocal][dstLocal]. The arrival region mirrors it per source node.
	out := p.ShmOpen(fmt.Sprintf("mha-a2a-out-%d", epoch), N*pair)
	in := p.ShmOpen(fmt.Sprintf("mha-a2a-in-%d", epoch), N*pair)
	staged := out.Counter("staged")
	arrived := in.Counter("arrived")

	// Phase 1: every rank stages its slice for every destination rank.
	for dn := 0; dn < N; dn++ {
		for dl := 0; dl < L; dl++ {
			dst := topo.RankOf(dn, dl)
			off := dn*pair + (local*L+dl)*m
			out.CopyIn(p, off, send.Slice(dst*m, m))
		}
	}
	staged.Add(1)

	// Local slices don't cross the network: once every node rank has
	// staged, pull the slices the on-node peers addressed to this rank.
	out.WaitCounter(p, "staged", int64(L))
	for sl := 0; sl < L; sl++ {
		src := topo.RankOf(node, sl)
		off := node*pair + (sl*L+local)*m
		out.CopyOut(p, off, recv.Slice(src*m, m))
	}

	if p.IsLeader() {
		lc := w.LeaderComm()
		// Pairwise exchange of node-pair blocks; each arrival is
		// published immediately so peers overlap their copy-out.
		reqs := make([]*mpi.Request, 0, N-1)
		order := make([]int, 0, N-1)
		for s := 1; s < N; s++ {
			srcN := (node - s + N) % N
			reqs = append(reqs, p.Irecv(lc, srcN, mpi.Tag(epoch, phaseMA2A, s)))
			order = append(order, srcN)
		}
		sends := make([]*mpi.Request, 0, N-1)
		for s := 1; s < N; s++ {
			dstN := (node + s) % N
			blk := out.Region(dstN*pair, pair)
			sends = append(sends, p.Isend(lc, dstN, mpi.Tag(epoch, phaseMA2A, s), blk))
		}
		for i, rq := range reqs {
			got := p.Wait(rq)
			in.CopyIn(p, order[i]*pair, got)
			arrived.Add(1)
		}
		// Leader's own incoming slices.
		for _, srcN := range order {
			for sl := 0; sl < L; sl++ {
				src := topo.RankOf(srcN, sl)
				recv.Slice(src*m, m).CopyFrom(in.Region(srcN*pair+(sl*L+local)*m, m))
			}
			p.ChargeCopy(L * m)
		}
		// Drain the send requests so the leader observes its transfers
		// complete before leaving the epoch (waitpair contract; by now
		// every peer has received, so these waits are effectively free).
		p.Waitall(sends...)
		return
	}

	// Non-leaders: copy each arriving node-pair block's slices out as the
	// counter advances.
	for k := 1; k < N; k++ {
		in.WaitCounter(p, "arrived", int64(k))
		srcN := (node - k + N) % N
		for sl := 0; sl < L; sl++ {
			src := topo.RankOf(srcN, sl)
			off := srcN*pair + (sl*L+local)*m
			dst := recv.Slice(src*m, m)
			in.CopyOut(p, off, dst)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
