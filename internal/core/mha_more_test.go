package core

import (
	"math"
	"testing"
	"testing/quick"

	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

func TestMHABcastAllRoots(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 4}, {2, 2}, {3, 3}, {4, 2}, {2, 1}} {
		n := s.nodes * s.ppn
		for root := 0; root < n; root++ {
			w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
			payload := pattern(root, 512)
			err := w.Run(func(p *mpi.Proc) {
				buf := mpi.NewBuf(512)
				if p.Rank() == root {
					buf.CopyFrom(mpi.Bytes(payload))
				}
				MHABcast(p, w, root, buf)
				if string(buf.Data()) != string(payload) {
					t.Errorf("%dx%d root=%d: rank %d wrong", s.nodes, s.ppn, root, p.Rank())
				}
			})
			if err != nil {
				t.Fatalf("%dx%d root=%d: %v", s.nodes, s.ppn, root, err)
			}
		}
	}
}

func TestMHABcastChunkedPipeline(t *testing.T) {
	// Buffers larger than the chunk size exercise the shm pipeline.
	w := mpi.New(mpi.Config{Topo: topology.New(2, 4, 2)})
	n := 3*bcastChunk + 100
	payload := pattern(1, n)
	err := w.Run(func(p *mpi.Proc) {
		buf := mpi.NewBuf(n)
		if p.Rank() == 0 {
			buf.CopyFrom(mpi.Bytes(payload))
		}
		MHABcast(p, w, 0, buf)
		if string(buf.Data()) != string(payload) {
			t.Errorf("rank %d corrupted chunked bcast", p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMHAReduceAllRoots(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 3}, {2, 2}, {3, 2}, {2, 4}} {
		n := s.nodes * s.ppn
		for root := 0; root < n; root++ {
			w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
			elems := 8
			err := w.Run(func(p *mpi.Proc) {
				buf := f64buf(float64(p.Rank()), elems)
				MHAReduce(p, w, root, buf, collectives.SumF64())
				if p.Rank() != root {
					return
				}
				for i := 0; i < elems; i++ {
					want := float64(n*(n-1))/2 + float64(n*i)
					if got := f64at(buf, i); math.Abs(got-want) > 1e-9 {
						t.Errorf("%dx%d root=%d elem %d = %v want %v", s.nodes, s.ppn, root, i, got, want)
						return
					}
				}
			})
			if err != nil {
				t.Fatalf("%dx%d root=%d: %v", s.nodes, s.ppn, root, err)
			}
		}
	}
}

func TestMHAGatherScatterRoundTrip(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{2, 2}, {3, 2}, {2, 4}, {4, 1}} {
		n := s.nodes * s.ppn
		for _, root := range []int{0, n - 1} {
			w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
			m := 64
			err := w.Run(func(p *mpi.Proc) {
				var gathered mpi.Buf
				if p.Rank() == root {
					gathered = mpi.NewBuf(n * m)
				}
				MHAGather(p, w, root, mpi.Bytes(pattern(p.Rank(), m)), gathered)
				if p.Rank() == root {
					want := expected(n, m)
					if string(gathered.Data()) != want {
						t.Errorf("%dx%d root=%d: gather wrong", s.nodes, s.ppn, root)
					}
				}
				out := mpi.NewBuf(m)
				MHAScatter(p, w, root, gathered, out)
				if string(out.Data()) != string(pattern(p.Rank(), m)) {
					t.Errorf("%dx%d root=%d: scatter rank %d wrong", s.nodes, s.ppn, root, p.Rank())
				}
			})
			if err != nil {
				t.Fatalf("%dx%d root=%d: %v", s.nodes, s.ppn, root, err)
			}
		}
	}
}

func a2aPattern(r, d, m int) []byte {
	b := make([]byte, m)
	for i := range b {
		b[i] = byte(r*37 + d*11 + i)
	}
	return b
}

func TestMHAAlltoallMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn int }{{1, 4}, {2, 2}, {2, 3}, {3, 2}, {4, 2}} {
		n := s.nodes * s.ppn
		w := mpi.New(mpi.Config{Topo: topology.New(s.nodes, s.ppn, 2)})
		m := 32
		err := w.Run(func(p *mpi.Proc) {
			send := mpi.NewBuf(n * m)
			for d := 0; d < n; d++ {
				send.Slice(d*m, m).CopyFrom(mpi.Bytes(a2aPattern(p.Rank(), d, m)))
			}
			recv := mpi.NewBuf(n * m)
			MHAAlltoall(p, w, send, recv)
			for src := 0; src < n; src++ {
				want := string(a2aPattern(src, p.Rank(), m))
				if got := string(recv.Slice(src*m, m).Data()); got != want {
					t.Errorf("%dx%d rank %d: block from %d wrong", s.nodes, s.ppn, p.Rank(), src)
					return
				}
			}
		})
		if err != nil {
			t.Fatalf("%dx%d: %v", s.nodes, s.ppn, err)
		}
	}
}

func TestMHAAlltoallBeatsPairwiseAtScale(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(4, 8, 2)
	m := 16 << 10
	measure := func(alg func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)) sim.Duration {
		w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
		var worst sim.Time
		err := w.Run(func(p *mpi.Proc) {
			alg(p, w, mpi.Phantom(m*p.Size()), mpi.Phantom(m*p.Size()))
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Duration(worst)
	}
	mha := measure(MHAAlltoall)
	flat := measure(func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		collectives.PairwiseAlltoall(p, w.CommWorld(), send, recv)
	})
	if mha >= flat {
		t.Fatalf("MHA alltoall (%v) not faster than pairwise (%v)", mha, flat)
	}
}

func TestMHABcastBeatsFlatBinomialAtScale(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(8, 16, 2)
	n := 4 << 20
	measure := func(alg func(p *mpi.Proc, w *mpi.World, buf mpi.Buf)) sim.Duration {
		w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
		var worst sim.Time
		err := w.Run(func(p *mpi.Proc) {
			alg(p, w, mpi.Phantom(n))
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Duration(worst)
	}
	mha := measure(func(p *mpi.Proc, w *mpi.World, buf mpi.Buf) { MHABcast(p, w, 0, buf) })
	flat := measure(func(p *mpi.Proc, w *mpi.World, buf mpi.Buf) {
		collectives.BinomialBcast(p, w.CommWorld(), 0, buf)
	})
	if mha >= flat {
		t.Fatalf("MHA bcast (%v) not faster than flat binomial (%v)", mha, flat)
	}
}

// Property: MHA alltoall is correct on random small shapes.
func TestQuickMHAAlltoall(t *testing.T) {
	f := func(nodes, ppn uint8, mRaw uint16) bool {
		nd := int(nodes)%3 + 1
		l := int(ppn)%3 + 1
		n := nd * l
		m := (int(mRaw)%64 + 1) * 4
		w := mpi.New(mpi.Config{Topo: topology.New(nd, l, 2)})
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			send := mpi.NewBuf(n * m)
			for d := 0; d < n; d++ {
				send.Slice(d*m, m).CopyFrom(mpi.Bytes(a2aPattern(p.Rank(), d, m)))
			}
			recv := mpi.NewBuf(n * m)
			MHAAlltoall(p, w, send, recv)
			for src := 0; src < n; src++ {
				if string(recv.Slice(src*m, m).Data()) != string(a2aPattern(src, p.Rank(), m)) {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
