package core

// The paper's second piece of future work (Section 7): "We can have a
// 3-level design with the overlapping of intra-socket, inter-socket, and
// inter-node communication." On NUMA topologies (Cluster.Sockets > 1 with
// a cross-socket CMA penalty) the 2-level design's phase 1 pays the
// penalty on most of its transfers; the 3-level design below keeps level
// 0 entirely socket-local, crosses sockets once through shared memory,
// and reuses the overlapped inter-node machinery unchanged.

import (
	"fmt"

	"mha/internal/collectives"
	"mha/internal/mpi"
)

// NodeAllgather3Level aggregates the node block NUMA-aware: an MHA-intra
// allgather inside each socket (level 0, all transfers socket-local),
// then socket leaders publish their socket blocks through node shared
// memory and every rank copies the other sockets' blocks out (level 1).
// It has the same signature as the phase-1 hook of the hierarchical
// allgather, so level 2 (inter-node) composes for free.
//
// On flat topologies it degrades to plain MHA-intra.
func NodeAllgather3Level(p *mpi.Proc, c *mpi.Comm, send, recv mpi.Buf) {
	w := p.World()
	topo := w.Topo()
	S := topo.NumaSockets()
	if S <= 1 {
		MHAIntraAllgather(p, c, send, recv)
		return
	}
	m := send.Len()
	if recv.Len() != m*c.Size() {
		panic("core: 3-level node allgather buffer mismatch")
	}
	local := p.Local()
	sock := topo.SocketOf(local)
	sc := w.SocketComm(p.Node(), sock)
	per := topo.PPN / S
	sockOff := sock * per * m

	// Level 0: socket-local MHA-intra into this socket's slice.
	MHAIntraAllgather(p, sc, send, recv.Slice(sockOff, per*m))

	// Level 1: cross the sockets exactly once, through shared memory.
	epoch := c.Epoch(p)
	shm := p.ShmOpen(fmt.Sprintf("numa-l1-%d", epoch), topo.PPN*m)
	ready := shm.Counter("sockets")
	if sc.Rank(p) == 0 {
		shm.CopyIn(p, sockOff, recv.Slice(sockOff, per*m))
		ready.Add(1)
	}
	shm.WaitCounter(p, "sockets", int64(S))
	for s2 := 0; s2 < S; s2++ {
		if s2 == sock {
			continue
		}
		off := s2 * per * m
		shm.CopyOut(p, off, recv.Slice(off, per*m))
	}
}

// MHA3LevelAllgather is the NUMA-aware hierarchical allgather: level 0
// intra-socket, level 1 inter-socket, level 2 inter-node with the usual
// striped, overlapped leader exchange.
func MHA3LevelAllgather(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	if w.Topo().Nodes == 1 {
		NodeAllgather3Level(p, w.CommWorld(), send, recv)
		return
	}
	alg := collectives.LeaderRing
	if !RingBetter(w, send.Len()) {
		alg = collectives.LeaderRD
	}
	collectives.HierarchicalAllgather(p, w, send, recv, collectives.HierarchicalConfig{
		NodeAllgather: NodeAllgather3Level,
		LeaderAlg:     alg,
		Overlap:       true,
	})
}
