package core

import (
	"testing"
	"testing/quick"

	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

func numaCluster(nodes, ppn, hcas, sockets int) topology.Cluster {
	c := topology.Cluster{Nodes: nodes, PPN: ppn, HCAs: hcas, Sockets: sockets}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

func TestMHA3LevelMatchesOracle(t *testing.T) {
	for _, s := range []struct{ nodes, ppn, sockets int }{
		{1, 4, 2}, {2, 4, 2}, {2, 8, 2}, {3, 6, 3}, {4, 4, 2}, {2, 4, 1},
	} {
		topo := numaCluster(s.nodes, s.ppn, 2, s.sockets)
		w := mpi.New(mpi.Config{Topo: topo, Params: netmodel.NumaThor()})
		n := topo.Size()
		m := 256
		want := expected(n, m)
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(n * m)
			MHA3LevelAllgather(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv)
			if string(recv.Data()) != want {
				t.Errorf("%+v: rank %d wrong result", s, p.Rank())
			}
		})
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
	}
}

func measureNuma(t *testing.T, topo topology.Cluster, prm *netmodel.Params, m int,
	alg func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)) sim.Duration {
	t.Helper()
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		alg(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()))
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Duration(worst)
}

func TestThreeLevelBeatsTwoLevelUnderNUMA(t *testing.T) {
	// With a cross-socket penalty, keeping level 0 socket-local must beat
	// the flat 2-level design whose phase-1 transfers cross sockets.
	topo := numaCluster(4, 16, 2, 2)
	prm := netmodel.NumaThor()
	m := 512 << 10
	three := measureNuma(t, topo, prm, m, MHA3LevelAllgather)
	two := measureNuma(t, topo, prm, m, MHAInterAllgather)
	if three >= two {
		t.Fatalf("3-level (%v) not faster than 2-level (%v) under NUMA", three, two)
	}
}

func TestThreeLevelHarmlessOnFlatNodes(t *testing.T) {
	// Without a penalty the 3-level design should cost at most a little
	// extra (the additional shared-memory hop).
	topo := numaCluster(4, 16, 2, 2)
	prm := netmodel.Thor() // flat: factor 1
	m := 256 << 10
	three := measureNuma(t, topo, prm, m, MHA3LevelAllgather)
	two := measureNuma(t, topo, prm, m, MHAInterAllgather)
	if float64(three) > 1.3*float64(two) {
		t.Fatalf("3-level overhead too big on flat nodes: %v vs %v", three, two)
	}
}

func TestCrossSocketPenaltyApplied(t *testing.T) {
	// A CMA transfer across sockets must cost more than within a socket.
	topo := numaCluster(1, 4, 1, 2) // locals 0,1 on socket 0; 2,3 on socket 1
	prm := netmodel.NumaThor()
	lat := func(dst int) sim.Time {
		w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
		var arrived sim.Time
		err := w.Run(func(p *mpi.Proc) {
			c := w.CommWorld()
			switch p.Rank() {
			case 0:
				p.Send(c, dst, 0, mpi.Phantom(1<<20))
			case dst:
				p.Recv(c, 0, 0)
				arrived = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return arrived
	}
	same := lat(1)  // same socket
	cross := lat(2) // different socket
	ratio := float64(cross) / float64(same)
	if ratio < 1.4 || ratio > 1.6 {
		t.Fatalf("cross-socket ratio = %.2f, want ~1.5", ratio)
	}
}

func TestSocketCommShape(t *testing.T) {
	topo := numaCluster(2, 4, 1, 2)
	w := mpi.New(mpi.Config{Topo: topo})
	err := w.Run(func(p *mpi.Proc) {
		sock := topo.SocketOf(p.Local())
		sc := w.SocketComm(p.Node(), sock)
		if sc.Size() != 2 {
			t.Errorf("socket comm size %d, want 2", sc.Size())
		}
		if sc.Rank(p) < 0 {
			t.Errorf("rank %d missing from its socket comm", p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSocketCommPanicsOnFlatTopology(t *testing.T) {
	w := mpi.New(mpi.Config{Topo: topology.New(1, 2, 1)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.SocketComm(0, 0)
}

// Property: 3-level allgather is correct for random NUMA shapes.
func TestQuickThreeLevelCorrect(t *testing.T) {
	f := func(nodes, perSock uint8, mRaw uint16) bool {
		nd := int(nodes)%3 + 1
		ps := int(perSock)%3 + 1
		topo := numaCluster(nd, 2*ps, 2, 2)
		m := int(mRaw)%128 + 1
		w := mpi.New(mpi.Config{Topo: topo, Params: netmodel.NumaThor()})
		n := topo.Size()
		want := expected(n, m)
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			recv := mpi.NewBuf(n * m)
			MHA3LevelAllgather(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv)
			if string(recv.Data()) != want {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
