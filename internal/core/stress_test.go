package core

import (
	"math/rand"
	"testing"

	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/topology"
)

// TestStressMixedCollectiveSequences runs randomized sequences of
// different collectives back-to-back on a single world — the epoch-based
// tag scheme must keep every operation's traffic isolated with no
// cross-matching and no deadlock, and every payload must still verify.
func TestStressMixedCollectiveSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		nodes := rng.Intn(3) + 1
		ppn := rng.Intn(3) + 1
		topo := topology.New(nodes, ppn, 2)
		n := topo.Size()
		m := (rng.Intn(32) + 1) * 8
		steps := rng.Intn(6) + 3
		ops := make([]int, steps)
		roots := make([]int, steps)
		for i := range ops {
			ops[i] = rng.Intn(6)
			roots[i] = rng.Intn(n)
		}
		w := mpi.New(mpi.Config{Topo: topo})
		err := w.Run(func(p *mpi.Proc) {
			for i, op := range ops {
				root := roots[i]
				switch op {
				case 0: // MHA allgather
					recv := mpi.NewBuf(n * m)
					MHAAllgather(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv)
					if string(recv.Data()) != expected(n, m) {
						t.Errorf("trial %d step %d: allgather wrong", trial, i)
					}
				case 1: // MHA bcast
					buf := mpi.NewBuf(m)
					if p.Rank() == root {
						buf.CopyFrom(mpi.Bytes(pattern(root, m)))
					}
					MHABcast(p, w, root, buf)
					if string(buf.Data()) != string(pattern(root, m)) {
						t.Errorf("trial %d step %d: bcast wrong", trial, i)
					}
				case 2: // flat ring allgather interleaved with MHA traffic
					recv := mpi.NewBuf(n * m)
					collectives.RingAllgather(p, w.CommWorld(), mpi.Bytes(pattern(p.Rank(), m)), recv)
					if string(recv.Data()) != expected(n, m) {
						t.Errorf("trial %d step %d: ring wrong", trial, i)
					}
				case 3: // MHA alltoall
					send := mpi.NewBuf(n * m)
					for d := 0; d < n; d++ {
						send.Slice(d*m, m).CopyFrom(mpi.Bytes(a2aPattern(p.Rank(), d, m)))
					}
					recv := mpi.NewBuf(n * m)
					MHAAlltoall(p, w, send, recv)
					for src := 0; src < n; src++ {
						if string(recv.Slice(src*m, m).Data()) != string(a2aPattern(src, p.Rank(), m)) {
							t.Errorf("trial %d step %d: alltoall wrong", trial, i)
							break
						}
					}
				case 4: // allreduce
					buf := f64buf(float64(p.Rank()), m/8*n/n) // m/8 elems
					collectives.RingAllreduce(p, w.CommWorld(), buf, collectives.SumF64())
				case 5: // barrier + scan
					collectives.DisseminationBarrier(p, w.CommWorld())
					buf := f64buf(1, 2)
					collectives.InclusiveScan(p, w.CommWorld(), buf, collectives.SumF64())
				}
			}
		})
		if err != nil {
			t.Fatalf("trial %d (nodes=%d ppn=%d m=%d ops=%v): %v", trial, nodes, ppn, m, ops, err)
		}
	}
}

// TestStressRepeatedAllgatherReusesShm runs many MHA allgathers on one
// world; each epoch allocates fresh shm regions and counters, and none of
// them may interfere.
func TestStressRepeatedAllgatherReusesShm(t *testing.T) {
	topo := topology.New(3, 3, 2)
	n := topo.Size()
	m := 64
	w := mpi.New(mpi.Config{Topo: topo})
	err := w.Run(func(p *mpi.Proc) {
		for i := 0; i < 20; i++ {
			recv := mpi.NewBuf(n * m)
			MHAAllgather(p, w, mpi.Bytes(pattern(p.Rank(), m)), recv)
			if string(recv.Data()) != expected(n, m) {
				t.Errorf("iteration %d wrong", i)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
