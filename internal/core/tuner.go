package core

import (
	"mha/internal/collectives"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// OffloadPoint is one sample of the offload-size/latency trade-off curve
// (the paper's Figure 5).
type OffloadPoint struct {
	// D is the offload in transfers per rank (fractional).
	D float64
	// Latency is the measured allgather completion time.
	Latency sim.Duration
}

// MeasureIntra runs one phantom-mode MHA-intra allgather of per-rank size
// m with offload d on a fresh single-node world and returns its latency
// (completion time of the slowest rank). Pass AutoOffload for the analytic
// d of Equation (1).
func MeasureIntra(topo topology.Cluster, prm *netmodel.Params, m int, d float64) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		MHAIntraAllgatherD(p, w.CommWorld(), mpi.Phantom(m), mpi.Phantom(m*p.Size()), d)
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}

// TuneOffload implements the tuning procedure of Section 3.1 / Figure 5:
// start from offloading everything to the adapters, gradually decrease the
// offload, and find the point where the downward and upward latency trends
// meet. It returns the best offload found and the measured curve. points
// controls the sweep resolution (>= 3; the sweep adds one refinement pass
// around the coarse minimum).
func TuneOffload(topo topology.Cluster, prm *netmodel.Params, m, points int) (float64, []OffloadPoint) {
	if points < 3 {
		points = 3
	}
	L := topo.Size() // single-node tuning: every rank participates
	maxD := float64(L - 1)
	if maxD == 0 {
		return 0, []OffloadPoint{{0, MeasureIntra(topo, prm, m, 0)}}
	}
	var curve []OffloadPoint
	sample := func(d float64) OffloadPoint {
		pt := OffloadPoint{D: d, Latency: MeasureIntra(topo, prm, m, d)}
		curve = append(curve, pt)
		return pt
	}
	// Coarse sweep from full offload down to none.
	best := sample(maxD)
	step := maxD / float64(points-1)
	for i := 1; i < points; i++ {
		pt := sample(maxD - float64(i)*step)
		if pt.Latency < best.Latency {
			best = pt
		}
	}
	// Refine once around the coarse minimum.
	lo, hi := best.D-step, best.D+step
	if lo < 0 {
		lo = 0
	}
	if hi > maxD {
		hi = maxD
	}
	fine := (hi - lo) / float64(points-1)
	if fine > 0 {
		for i := 0; i < points; i++ {
			pt := sample(lo + float64(i)*fine)
			if pt.Latency < best.Latency {
				best = pt
			}
		}
	}
	return best.D, curve
}

// MeasureInter runs one phantom-mode hierarchical allgather on a fresh
// world and returns its latency.
func MeasureInter(topo topology.Cluster, prm *netmodel.Params, m int, cfg InterConfig) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		MHAInterAllgatherCfg(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()), cfg)
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}

// TuneLeaderAlg measures both phase-2 algorithms for message size m and
// returns the faster one — the empirical counterpart of the model-driven
// selection in MHAInterAllgather.
func TuneLeaderAlg(topo topology.Cluster, prm *netmodel.Params, m int) LeaderChoice {
	ring := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRing})
	rd := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRD})
	if rd < ring {
		return ForceRD
	}
	return ForceRing
}

// MeasureProfileAllgather times an arbitrary profile's allgather on a
// fresh phantom world — the building block of every allgather figure.
func MeasureProfileAllgather(topo topology.Cluster, prm *netmodel.Params, m int, prof collectives.Profile) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		prof.Allgather(p, w, mpi.Phantom(m), mpi.Phantom(m*p.Size()))
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}

// MeasureProfileAllreduce times an arbitrary profile's allreduce of n
// bytes on a fresh phantom world.
func MeasureProfileAllreduce(topo topology.Cluster, prm *netmodel.Params, n int, prof collectives.Profile) sim.Duration {
	w := mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		prof.Allreduce(p, w, mpi.Phantom(n), collectives.SumF64())
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.Duration(worst)
}
