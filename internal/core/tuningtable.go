package core

// Production MPI libraries ship *tuning tables*: per-(topology, message
// size) algorithm selections measured ahead of time (MVAPICH2's are
// generated exactly this way). This file provides the same facility for
// the MHA collectives: BuildTuningTable sweeps the simulator once per
// size class, records the winning phase-2 algorithm and the tuned offload
// d, and the result serializes to JSON so cmd/mhatune can persist it and
// jobs can load it instead of re-deriving selections from the model.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

// TuningEntry is one size class of a tuning table.
type TuningEntry struct {
	// MaxBytes is the inclusive per-rank message-size upper bound this
	// entry covers; the last entry of a table covers everything above.
	MaxBytes int `json:"max_bytes"`
	// Alg is the measured-best phase-2 algorithm ("ring" or "rd").
	Alg string `json:"alg"`
	// OffloadD is the tuned intra-node HCA offload for this size class.
	OffloadD float64 `json:"offload_d"`
	// RingUS and RDUS record the measured latencies that justified the
	// selection (microseconds), for auditability.
	RingUS float64 `json:"ring_us"`
	RDUS   float64 `json:"rd_us"`
}

// TuningTable is a persisted selection table for one cluster shape.
type TuningTable struct {
	Nodes   int           `json:"nodes"`
	PPN     int           `json:"ppn"`
	HCAs    int           `json:"hcas"`
	Entries []TuningEntry `json:"entries"`
}

// BuildTuningTable measures both phase-2 algorithms and the offload
// optimum at each size and returns the resulting table. Sizes are sorted
// ascending; each becomes one entry's MaxBytes.
func BuildTuningTable(topo topology.Cluster, prm *netmodel.Params, sizes []int) TuningTable {
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	t := TuningTable{Nodes: topo.Nodes, PPN: topo.PPN, HCAs: topo.HCAs}
	intraTopo := topology.New(1, topo.PPN, topo.HCAs)
	for _, m := range sorted {
		ring := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRing})
		rd := MeasureInter(topo, prm, m, InterConfig{LeaderAlg: ForceRD})
		alg := "ring"
		if rd < ring {
			alg = "rd"
		}
		d, _ := TuneOffload(intraTopo, prm, m, 5)
		t.Entries = append(t.Entries, TuningEntry{
			MaxBytes: m,
			Alg:      alg,
			OffloadD: d,
			RingUS:   ring.Micros(),
			RDUS:     rd.Micros(),
		})
	}
	return t
}

// Lookup returns the entry covering per-rank size m (the last entry for
// anything beyond the table).
func (t TuningTable) Lookup(m int) TuningEntry {
	if len(t.Entries) == 0 {
		panic("core: empty tuning table")
	}
	for _, e := range t.Entries {
		if m <= e.MaxBytes {
			return e
		}
	}
	return t.Entries[len(t.Entries)-1]
}

// InterConfigFor translates a lookup into the collective configuration.
func (t TuningTable) InterConfigFor(m int) InterConfig {
	e := t.Lookup(m)
	cfg := InterConfig{LeaderAlg: ForceRing}
	if e.Alg == "rd" {
		cfg.LeaderAlg = ForceRD
	}
	return cfg
}

// Matches reports whether the table was built for the given shape.
func (t TuningTable) Matches(topo topology.Cluster) bool {
	return t.Nodes == topo.Nodes && t.PPN == topo.PPN && t.HCAs == topo.HCAs
}

// Save writes the table as indented JSON.
func (t TuningTable) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// LoadTuningTable reads a table written by Save and validates it.
func LoadTuningTable(r io.Reader) (TuningTable, error) {
	var t TuningTable
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return TuningTable{}, fmt.Errorf("core: decoding tuning table: %w", err)
	}
	if t.Nodes < 1 || t.PPN < 1 || t.HCAs < 1 {
		return TuningTable{}, fmt.Errorf("core: tuning table has invalid shape %d/%d/%d", t.Nodes, t.PPN, t.HCAs)
	}
	if len(t.Entries) == 0 {
		return TuningTable{}, fmt.Errorf("core: tuning table has no entries")
	}
	last := -1
	for _, e := range t.Entries {
		if e.MaxBytes <= last {
			return TuningTable{}, fmt.Errorf("core: tuning table entries not ascending at %d", e.MaxBytes)
		}
		if e.Alg != "ring" && e.Alg != "rd" {
			return TuningTable{}, fmt.Errorf("core: unknown algorithm %q in tuning table", e.Alg)
		}
		last = e.MaxBytes
	}
	return t, nil
}
