package explore

import (
	"fmt"
	"sync"
	"testing"
)

// reportFingerprint renders everything observable about a report into one
// string, so two explorations can be compared byte for byte.
func reportFingerprint(rep *Report) string {
	out := fmt.Sprintf("execs=%d steps=%d est=%g complete=%v ces=%d\n",
		rep.Executions, rep.Steps, rep.SpaceEstimate, rep.Complete, rep.Counterexamples)
	for _, pr := range rep.Placements {
		out += fmt.Sprintf("%s %s execs=%d steps=%d decisions=%d maxf=%d est=%g adds=%d skips=%d redundant=%d complete=%v\n",
			pr.Alg, pr.Fault, pr.Executions, pr.Steps, pr.Decisions, pr.MaxFrontier,
			pr.SpaceEstimate, pr.BacktrackAdds, pr.SleepSkips, pr.RedundantExecs, pr.Complete)
		for _, ce := range pr.Counterexamples {
			out += fmt.Sprintf("  ce %s | %s | %v\n", ce.Spec, ce.Shrunk, ce.Violations)
		}
	}
	return out
}

// TestExplorationIsDeterministic runs the same exploration twice — once
// with a failing variant in the mix so counterexample discovery and
// shrinking are exercised too — and demands byte-identical reports:
// identical state counts, identical counterexample lists. Anything less
// means a repro spec printed by one run might not replay on the next.
func TestExplorationIsDeterministic(t *testing.T) {
	registerOrderBug()
	opt := Options{Algs: []string{"ring", "order-bug"}, Nodes: 1, PPN: 3, HCAs: 2,
		Msg: 2, FaultBudget: 1, MaxExecs: 2000, MaxCounterexamples: 2, ShrinkBudget: 20}
	a, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := reportFingerprint(a), reportFingerprint(b)
	if fa != fb {
		t.Errorf("two identical explorations diverged:\n--- first\n%s--- second\n%s", fa, fb)
	}
	if a.Counterexamples == 0 {
		t.Error("determinism fixture found no counterexamples; the comparison is vacuous")
	}
}

// TestConcurrentExplorationsAreIndependent stresses the placement
// parallelism inside Run and the independence of whole explorations:
// several concurrent Run calls must each produce the canonical report.
// Run under -race this doubles as the data-race check on the scheduler
// seam and the shared verify registry.
func TestConcurrentExplorationsAreIndependent(t *testing.T) {
	opt := Options{Algs: []string{"ring"}, Nodes: 2, PPN: 1, HCAs: 2, Msg: 2, FaultBudget: 1}
	want, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := reportFingerprint(want)
	const grp = 4
	got := make([]string, grp)
	errs := make([]error, grp)
	var wg sync.WaitGroup
	for i := 0; i < grp; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := Run(opt)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = reportFingerprint(rep)
		}(i)
	}
	wg.Wait()
	for i := 0; i < grp; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if got[i] != wantFP {
			t.Errorf("concurrent run %d diverged from the canonical report:\n--- canonical\n%s--- run %d\n%s",
				i, wantFP, i, got[i])
		}
	}
}
