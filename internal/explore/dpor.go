package explore

import (
	"fmt"
	"sort"

	"mha/internal/sim"
)

// Dynamic partial-order reduction, stateless-search style (Flanagan &
// Godefroid): the explorer re-executes the deterministic simulation from
// scratch for every schedule, so "state" is an execution prefix, not a
// snapshot. Each execution is recorded as a sequence of steps — an event
// firing plus every process it transitively wakes until the engine
// quiesces — together with the step's shared-state footprint and the
// events it spawned. Two same-time steps with disjoint footprints
// commute, so only one order of each commuting pair needs visiting;
// race analysis over each finished execution adds backtrack choices at
// the decision points where dependent same-time steps could have been
// reordered, and sleep sets suppress re-exploration of subtrees an
// earlier sibling choice already covered.

// A step is one executed engine step of the current trace.
type step struct {
	seq    uint64
	label  string
	at     sim.Time
	foot   []string // sorted shared-state keys the step touched
	parent int      // index of the step that spawned this step's event, or -1
	point  int      // decision-point index this step was chosen at, or -1
}

// A sleepEntry is one event (with the footprint its step exhibited) whose
// subtree is already covered by an explored sibling branch.
type sleepEntry struct {
	seq uint64
	fp  []string
}

// A point is one decision: a moment where the engine offered a frontier
// of two or more co-enabled events. The driver keeps points across
// executions; they form the DFS stack of the stateless search.
type point struct {
	at       sim.Time
	frontier []sim.EventInfo
	// chosen is the frontier index taken on the most recent execution
	// through this point; done marks every index explored so far, and
	// backtrack the indices race analysis has scheduled for exploration.
	chosen    int
	done      map[int]bool
	backtrack map[int]bool
	// stepIdx locates the chosen event's step in the current trace, and
	// fpByChoice remembers the observed footprint of every explored
	// choice (needed to seed sleep sets on later passes).
	stepIdx    int
	fpByChoice map[int][]string
	// sleepAt is the sleep set inherited when the point was first
	// reached; a backtrack candidate found sleeping here is redundant.
	sleepAt []sleepEntry
}

// guided is the sim.Scheduler+StepObserver that drives one execution.
// In driver mode it replays the forced prefix of the shared points and
// extends them canonically; in replay mode (points == nil) it forces a
// raw choice list and records nothing.
type guided struct {
	points []*point
	prefix int // leading points whose chosen index is forced
	record bool
	forced []int // replay mode choice list

	steps     []step
	parentOf  map[uint64]int
	sleep     []sleepEntry
	nextPt    int
	pending   int // point index whose chosen step is the next observed step
	diverged  string
	redundant int64 // executions that fired a sleeping event (wasted work)
}

func newGuided(points []*point, prefix int) *guided {
	return &guided{points: points, prefix: prefix, record: true,
		parentOf: map[uint64]int{}, pending: -1}
}

func newReplay(choices []int) *guided {
	return &guided{forced: choices, pending: -1}
}

// Pick implements sim.Scheduler.
func (g *guided) Pick(now sim.Time, frontier []sim.EventInfo) int {
	d := g.nextPt
	g.nextPt++
	if g.points == nil && !g.record {
		// Replay mode: force the listed choices, canonical afterwards.
		if d < len(g.forced) {
			c := g.forced[d]
			if c < 0 || c >= len(frontier) {
				if g.diverged == "" {
					g.diverged = fmt.Sprintf("decision %d: choice %d outside %d-event frontier", d, c, len(frontier))
				}
				return 0
			}
			return c
		}
		return 0
	}
	if d < g.prefix {
		// Forced prefix: the engine is deterministic, so the frontier must
		// be byte-identical to the recorded one; anything else means the
		// reduction's replay assumption broke and the run is worthless.
		pt := g.points[d]
		if !sameFrontier(pt.frontier, frontier) {
			if g.diverged == "" {
				g.diverged = fmt.Sprintf("decision %d: frontier %v diverged from recorded %v", d, frontier, pt.frontier)
			}
			if pt.chosen < len(frontier) {
				return pt.chosen
			}
			return 0
		}
		g.enterPoint(pt, d)
		return pt.chosen
	}
	// Fresh decision: canonical choice is the first frontier member not in
	// the sleep set (every member is a legal serialization; a sleeping one
	// heads a subtree an explored sibling already covers).
	c := -1
	for i := range frontier {
		if !g.sleeping(frontier[i].Seq) {
			c = i
			break
		}
	}
	if c < 0 {
		c = 0
		g.redundant++
	}
	pt := &point{
		at:         now,
		frontier:   append([]sim.EventInfo(nil), frontier...),
		chosen:     c,
		done:       map[int]bool{c: true},
		backtrack:  map[int]bool{},
		stepIdx:    -1,
		fpByChoice: map[int][]string{},
		sleepAt:    append([]sleepEntry(nil), g.sleep...),
	}
	if d != len(g.points) {
		panic(fmt.Sprintf("explore: decision %d but %d points recorded", d, len(g.points)))
	}
	g.points = append(g.points, pt)
	g.enterPoint(pt, d)
	return c
}

// enterPoint marks pt as the pending decision and moves its explored
// sibling choices into the sleep set: their subtrees from here are
// covered, so any execution that fires them next (or any backtrack that
// would re-add them) is redundant until a dependent step wakes them.
func (g *guided) enterPoint(pt *point, d int) {
	g.pending = d
	ks := make([]int, 0, len(pt.done))
	for k := range pt.done {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		if k == pt.chosen {
			continue
		}
		if fp, ok := pt.fpByChoice[k]; ok {
			g.sleep = append(g.sleep, sleepEntry{seq: pt.frontier[k].Seq, fp: fp})
		}
	}
}

func (g *guided) sleeping(seq uint64) bool {
	for _, se := range g.sleep {
		if se.seq == seq {
			return true
		}
	}
	return false
}

// ObserveStep implements sim.StepObserver.
func (g *guided) ObserveStep(info sim.StepInfo) {
	if !g.record {
		return
	}
	idx := len(g.steps)
	parent := -1
	if p, ok := g.parentOf[info.Seq]; ok {
		parent = p
	}
	for _, s := range info.Spawned {
		g.parentOf[s] = idx
	}
	ptIdx := -1
	if g.pending >= 0 {
		pt := g.points[g.pending]
		pt.stepIdx = idx
		pt.fpByChoice[pt.chosen] = info.Footprint
		ptIdx = g.pending
		g.pending = -1
	}
	// A sleeping event stays asleep only while every executed step is
	// independent of it; a dependent step can re-enable genuinely new
	// orders, so the entry is dropped.
	kept := g.sleep[:0]
	for _, se := range g.sleep {
		if se.seq == info.Seq {
			g.redundant++
			continue
		}
		if dependent(se.fp, info.Footprint) {
			continue
		}
		kept = append(kept, se)
	}
	g.sleep = kept
	g.steps = append(g.steps, step{
		seq: info.Seq, label: info.Label, at: info.At,
		foot: info.Footprint, parent: parent, point: ptIdx,
	})
}

// hb reports whether step i happens-before step j through the event
// creation chain: j's event was spawned by a step whose event was
// spawned by ... step i. Program order is a special case — a process
// schedules its next wake during its current step — so same-process
// steps are always creation-chained.
func (g *guided) hb(i, j int) bool {
	cur := j
	for cur > i {
		cur = g.steps[cur].parent
		if cur < 0 {
			return false
		}
	}
	return cur == i
}

// dependent reports whether two sorted footprints intersect.
func dependent(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// extLabel marks events scheduled through the untyped Schedule/After
// API; their closures may touch state the footprint instrumentation
// cannot see, so they are conservatively dependent with everything.
func extLabel(label string) bool { return label == "ext" }

func sameFrontier(a, b []sim.EventInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Label != b[i].Label {
			return false
		}
	}
	return true
}

func sleepHasSeq(entries []sleepEntry, seq uint64) bool {
	for _, se := range entries {
		if se.seq == seq {
			return true
		}
	}
	return false
}

// choices returns the chosen index at every decision of the trace, i.e.
// the schedule part of a repro spec for the execution just finished.
func (g *guided) choices() []int {
	out := make([]int, len(g.points))
	for i, pt := range g.points {
		out[i] = pt.chosen
	}
	return out
}

// analyze runs the race analysis over the finished trace: for every step
// j, find the most recent same-time step i that touches overlapping
// state without being causally ordered before j, and schedule the
// reordering at i's decision point. If j's event was already co-enabled
// at i the reordering is a single alternative choice; otherwise every
// alternative at i must be tried (the conservative persistent-set
// fallback). Candidates found in i's inherited sleep set are skipped:
// the subtree that starts with them was already explored.
func (g *guided) analyze(m *metrics) {
	for j := range g.steps {
		sj := &g.steps[j]
		for i := j - 1; i >= 0 && g.steps[i].at == sj.at; i-- {
			si := &g.steps[i]
			dep := dependent(si.foot, sj.foot) || extLabel(si.label) || extLabel(sj.label)
			if !dep {
				continue
			}
			if g.hb(i, j) {
				continue
			}
			if si.point >= 0 {
				pt := g.points[si.point]
				if k, ok := frontierIndex(pt, sj.seq); ok {
					m.precise++
					if !pt.done[k] && !pt.backtrack[k] {
						if sleepHasSeq(pt.sleepAt, sj.seq) {
							m.sleepSkips++
						} else {
							pt.backtrack[k] = true
							m.backtrackAdds++
						}
					}
				} else {
					m.fallback++
					for k := range pt.frontier {
						if k != pt.chosen && !pt.done[k] && !pt.backtrack[k] {
							pt.backtrack[k] = true
							m.backtrackAdds++
						}
					}
				}
			}
			break // only the latest racing step matters for j
		}
	}
}

func frontierIndex(pt *point, seq uint64) (int, bool) {
	for k, ev := range pt.frontier {
		if ev.Seq == seq {
			return k, true
		}
	}
	return 0, false
}

// metrics accumulates reduction-effectiveness counters across the
// executions of one (variant, placement) exploration.
type metrics struct {
	backtrackAdds int64
	sleepSkips    int64
	precise       int64
	fallback      int64
}
