package explore

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mha/internal/mpi"
	"mha/internal/verify"
)

// Options tunes an exploration. Algs and the world shape are required.
type Options struct {
	// Algs names the registered variants to verify.
	Algs []string
	// World shape: Nodes*PPN ranks (<= MaxWorldRanks), HCAs rails/node.
	Nodes, PPN, HCAs int
	// Msg is the per-rank contribution in bytes.
	Msg int
	// Fabric is an internal/fabric spec ("" means flat).
	Fabric string
	// FaultBudget selects fault placements: 0 explores only the healthy
	// world, 1 adds every single (node, rail) Down placement. Larger
	// budgets are not supported.
	FaultBudget int
	// MaxExecs caps executions per (variant, placement); 0 means
	// DefaultMaxExecs. Hitting the cap marks the report incomplete.
	MaxExecs int
	// MaxCounterexamples stops a placement after this many distinct
	// failing schedules (default 3).
	MaxCounterexamples int
	// ShrinkBudget caps replay evaluations spent minimizing each
	// counterexample (default 60).
	ShrinkBudget int
	// Full disables the partial-order reduction and enumerates every
	// interleaving. Only tractable on tiny worlds; the determinism and
	// soundness tests use it to cross-check the reduced search.
	Full bool
	// Log, when non-nil, receives one line per (variant, placement).
	Log io.Writer
}

// DefaultMaxExecs bounds the executions of one (variant, placement)
// exploration when Options.MaxExecs is zero.
const DefaultMaxExecs = 50000

// A Counterexample is one failing schedule, replayable via its Spec.
type Counterexample struct {
	// Spec reproduces the failure as found; Shrunk is its minimized
	// still-failing form (== Spec when shrinking found nothing smaller).
	Spec, Shrunk string
	// Violations are the shrunk schedule's broken properties.
	Violations []verify.Violation
}

// A PlacementReport summarizes exploring one (variant, placement) pair.
type PlacementReport struct {
	Alg   string
	Fault Placement
	// Executions counts complete schedules run to a terminal state and
	// verified; Steps counts executed engine steps across all of them
	// (the visited-state count of the stateless search).
	Executions int
	Steps      int64
	// Decisions counts decision points created (frontiers with >= 2
	// events); MaxFrontier is the widest frontier seen.
	Decisions   int64
	MaxFrontier int
	// SpaceEstimate is the product of frontier widths along the canonical
	// execution: the unreduced interleaving count of that path. The
	// reduction's effectiveness is Executions versus this estimate.
	SpaceEstimate float64
	// BacktrackAdds and SleepSkips count race-analysis decisions: orders
	// scheduled for exploration, and orders provably covered by an
	// explored sibling subtree.
	BacktrackAdds, SleepSkips int64
	// Precise and Fallback count race-analysis branch outcomes.
	Precise, Fallback int64
	// RedundantExecs counts executions that fired a sleeping event (work
	// a sharper reduction would have avoided; always verified anyway).
	RedundantExecs int64
	// Complete is true when the backtrack sets drained: every
	// non-equivalent interleaving was visited.
	Complete        bool
	Counterexamples []Counterexample
}

// A Report aggregates an exploration across variants and placements.
type Report struct {
	Placements []PlacementReport
	// Executions/Steps/SpaceEstimate are sums over Placements; Complete
	// is their conjunction.
	Executions      int
	Steps           int64
	SpaceEstimate   float64
	Complete        bool
	Counterexamples int
}

// Run explores every (variant, placement) pair exhaustively and returns
// the aggregate report. The search is deterministic: identical options
// yield an identical report, byte for byte.
func Run(opt Options) (*Report, error) {
	if len(opt.Algs) == 0 {
		return nil, errors.New("explore: no algorithms selected")
	}
	if opt.FaultBudget < 0 || opt.FaultBudget > 1 {
		return nil, fmt.Errorf("explore: fault budget %d unsupported (want 0 or 1)", opt.FaultBudget)
	}
	if opt.MaxExecs <= 0 {
		opt.MaxExecs = DefaultMaxExecs
	}
	if opt.MaxCounterexamples <= 0 {
		opt.MaxCounterexamples = 3
	}
	if opt.ShrinkBudget <= 0 {
		opt.ShrinkBudget = 60
	}
	placements := []Placement{NoFault}
	if opt.FaultBudget == 1 {
		for n := 0; n < opt.Nodes; n++ {
			for r := 0; r < opt.HCAs; r++ {
				placements = append(placements, Placement{Node: n, Rail: r})
			}
		}
	}
	var jobs []Spec
	for _, alg := range opt.Algs {
		for _, pl := range placements {
			base := Spec{Alg: alg, Nodes: opt.Nodes, PPN: opt.PPN,
				HCAs: opt.HCAs, Msg: opt.Msg, Fabric: opt.Fabric, Fault: pl}
			if err := base.Validate(); err != nil {
				return nil, err
			}
			jobs = append(jobs, base)
		}
	}
	// Each (variant, placement) exploration is independent — its own
	// engine, world, and DFS stack — so they run concurrently. Results
	// land in job order and are aggregated sequentially, keeping the
	// report byte-identical regardless of worker count.
	prs := make([]PlacementReport, len(jobs))
	errs := make([]error, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore gonosim driver-side worker pool: each goroutine owns whole independent engines (one per exploration), never runs inside one, and results are joined in deterministic job order
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				prs[i], errs[i] = explorePlacement(opt, jobs[i])
			}
		}()
	}
	wg.Wait()
	rep := &Report{Complete: true}
	for i, pr := range prs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		rep.Placements = append(rep.Placements, pr)
		rep.Executions += pr.Executions
		rep.Steps += pr.Steps
		rep.SpaceEstimate += pr.SpaceEstimate
		rep.Complete = rep.Complete && pr.Complete
		rep.Counterexamples += len(pr.Counterexamples)
		if opt.Log != nil {
			status := "complete"
			if !pr.Complete {
				status = "INCOMPLETE"
			}
			fmt.Fprintf(opt.Log, "%-10s fault=%-12s %6d executions %8d states  est %.3g  %s, %d counterexamples\n",
				pr.Alg, pr.Fault, pr.Executions, pr.Steps, pr.SpaceEstimate, status, len(pr.Counterexamples))
		}
	}
	return rep, nil
}

// runSpec executes the spec's scenario once under the guided scheduler,
// which both forces the schedule and records the trace.
func runSpec(base Spec, g *guided) (verify.RunResult, error) {
	sc, err := base.scenario()
	if err != nil {
		return verify.RunResult{}, err
	}
	res := verify.RunOnce(sc, func(w *mpi.World) {
		w.Engine().SetScheduler(g)
	})
	return res, nil
}

// explorePlacement is the stateless DFS over schedules of one (variant,
// placement) pair: run, analyze races, backtrack at the deepest pending
// decision, repeat until the backtrack sets drain or a cap hits.
func explorePlacement(opt Options, base Spec) (PlacementReport, error) {
	rep := PlacementReport{Alg: base.Alg, Fault: base.Fault, Complete: true}
	var m metrics
	var points []*point
	prefix := 0
	for {
		g := newGuided(points, prefix)
		res, err := runSpec(base, g)
		if err != nil {
			return rep, err
		}
		rep.Executions++
		rep.Steps += int64(len(g.steps))
		rep.Decisions += int64(len(g.points) - prefix)
		for _, pt := range g.points[prefix:] {
			if len(pt.frontier) > rep.MaxFrontier {
				rep.MaxFrontier = len(pt.frontier)
			}
		}
		if g.diverged != "" {
			return rep, fmt.Errorf("explore: %s %s: replay diverged: %s", base.Alg, base.Fault, g.diverged)
		}
		if rep.Executions == 1 {
			est := 1.0
			for _, pt := range g.points {
				est *= float64(len(pt.frontier))
			}
			rep.SpaceEstimate = est
		}
		if len(res.Violations) > 0 {
			found := base
			found.Choices = g.choices()
			ce := Counterexample{Spec: found.String()}
			shrunk, svs, _ := shrinkSpec(found, res.Violations, opt.ShrinkBudget)
			ce.Shrunk = shrunk.String()
			ce.Violations = svs
			rep.Counterexamples = append(rep.Counterexamples, ce)
			if len(rep.Counterexamples) >= opt.MaxCounterexamples {
				rep.Complete = false
				break
			}
		}
		if opt.Full {
			// Unreduced enumeration: every alternative at every decision.
			for _, pt := range g.points {
				for k := range pt.frontier {
					if !pt.done[k] {
						pt.backtrack[k] = true
					}
				}
			}
		} else {
			g.analyze(&m)
		}
		rep.RedundantExecs += g.redundant
		// Deepest decision with an unexplored backtrack candidate; the
		// candidates are tried in ascending index order for determinism.
		depth, choice := -1, 0
		for i := len(g.points) - 1; i >= 0 && depth < 0; i-- {
			pt := g.points[i]
			ks := make([]int, 0, len(pt.backtrack))
			for k := range pt.backtrack {
				ks = append(ks, k)
			}
			sort.Ints(ks)
			for _, k := range ks {
				if !pt.done[k] {
					depth, choice = i, k
					break
				}
			}
		}
		if depth < 0 {
			break // backtrack sets drained: exploration complete
		}
		if rep.Executions >= opt.MaxExecs {
			rep.Complete = false
			break
		}
		pt := g.points[depth]
		pt.chosen = choice
		pt.done[choice] = true
		points = g.points[:depth+1]
		prefix = depth + 1
	}
	rep.BacktrackAdds = m.backtrackAdds
	rep.SleepSkips = m.sleepSkips
	rep.Precise, rep.Fallback = m.precise, m.fallback
	return rep, nil
}

// Replay runs one spec's forced schedule and returns its violations. A
// spec whose choices do not fit the world's actual decision frontiers is
// an error (it cannot correspond to a real execution).
func Replay(s Spec) ([]verify.Violation, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := newReplay(s.Choices)
	res, err := runSpec(s, g)
	if err != nil {
		return nil, err
	}
	if g.diverged != "" {
		return nil, fmt.Errorf("explore: schedule does not replay: %s", g.diverged)
	}
	return res.Violations, nil
}
