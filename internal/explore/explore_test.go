package explore

import (
	"strings"
	"testing"

	"mha/internal/mpi"
	"mha/internal/verify"
)

// orderBug is the deliberately seeded ordering bug: every rank sends its
// block to every peer under ONE shared tag, and receivers file the
// blocks into slots by arrival position (AnySource, in arrival order)
// instead of by source rank. The canonical schedule happens to deliver
// same-time arrivals in rank order, so the randomized campaign's runs
// pass; only an execution that reorders two simultaneous deposits into
// one mailbox exposes the bug — exactly the class the explorer exists
// to catch.
func orderBug(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	c := w.CommWorld()
	m := send.Len()
	n := c.Size()
	me := c.Rank(p)
	p.LocalCopy(recv.Slice(me*m, m), send)
	if n == 1 {
		return
	}
	tag := mpi.Tag(c.Epoch(p), 13, 0)
	var sreqs []*mpi.Request
	for r := 0; r < n; r++ {
		if r != me {
			sreqs = append(sreqs, p.Isend(c, r, tag, send))
		}
	}
	slot := 0
	for k := 0; k < n-1; k++ {
		if slot == me {
			slot++
		}
		data := p.Recv(c, mpi.AnySource, tag) // assumes arrival order == rank order
		recv.Slice(slot*m, m).CopyFrom(data)
		slot++
	}
	p.Waitall(sreqs...)
}

func registerOrderBug() {
	verify.Register(verify.Algorithm{Name: "order-bug", Run: orderBug})
}

func TestExploreRingHealthyComplete(t *testing.T) {
	rep, err := Run(Options{Algs: []string{"ring"}, Nodes: 1, PPN: 2, HCAs: 1, Msg: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Error("2-rank ring exploration did not complete")
	}
	if rep.Counterexamples != 0 {
		t.Errorf("ring produced counterexamples: %+v", rep.Placements)
	}
	if rep.Executions < 1 || rep.Steps < 1 {
		t.Errorf("implausible exploration: %d executions, %d steps", rep.Executions, rep.Steps)
	}
}

func TestExploreWithFaultPlacements(t *testing.T) {
	rep, err := Run(Options{Algs: []string{"ring"}, Nodes: 2, PPN: 1, HCAs: 2, Msg: 4, FaultBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy world + one Down placement per (node, rail).
	if want := 1 + 2*2; len(rep.Placements) != want {
		t.Fatalf("explored %d placements, want %d", len(rep.Placements), want)
	}
	if !rep.Complete {
		t.Error("fault-placement exploration did not complete")
	}
	if rep.Counterexamples != 0 {
		for _, pr := range rep.Placements {
			for _, ce := range pr.Counterexamples {
				t.Errorf("%s %s: %s -> %v", pr.Alg, pr.Fault, ce.Shrunk, ce.Violations)
			}
		}
	}
}

// TestDPORAgreesWithFullEnumeration cross-checks the reduction on a
// world small enough to enumerate unreduced: both searches must complete
// with the same verdict, and the reduced one must not do more work.
func TestDPORAgreesWithFullEnumeration(t *testing.T) {
	registerOrderBug()
	for _, alg := range []string{"ring", "order-bug"} {
		// The cap matters for ring: single-node worlds explode honestly
		// (the per-node memory gauge couples every simultaneous send), so
		// both searches stop at the bound and the comparison is between
		// equally-budgeted searches. order-bug converges far below it.
		opt := Options{Algs: []string{alg}, Nodes: 1, PPN: 3, HCAs: 1, Msg: 2,
			MaxExecs: 500, MaxCounterexamples: 1, ShrinkBudget: 10}
		reduced, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Full = true
		full, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		if (reduced.Counterexamples > 0) != (full.Counterexamples > 0) {
			t.Errorf("%s: reduced search found %d counterexamples, full %d",
				alg, reduced.Counterexamples, full.Counterexamples)
		}
		if reduced.Executions > full.Executions {
			t.Errorf("%s: reduction ran MORE executions than full enumeration (%d > %d)",
				alg, reduced.Executions, full.Executions)
		}
		t.Logf("%s: reduced %d executions vs full %d", alg, reduced.Executions, full.Executions)
	}
}

// TestSeededOrderingBugCaughtAndShrunk is the tentpole's acceptance
// test: the planted arrival-order bug must be caught, and the shrunk
// counterexample must be a one-line spec that parses and replays to the
// same failure.
func TestSeededOrderingBugCaughtAndShrunk(t *testing.T) {
	registerOrderBug()
	// The canonical schedule must pass: the bug hides from single-order
	// testing, including the whole randomized campaign.
	if vs, err := Replay(Spec{Alg: "order-bug", Nodes: 1, PPN: 3, HCAs: 1, Msg: 2, Fault: NoFault}); err != nil || len(vs) > 0 {
		t.Fatalf("canonical run of order-bug should pass (err %v, violations %v)", err, vs)
	}
	rep, err := Run(Options{Algs: []string{"order-bug"}, Nodes: 1, PPN: 3, HCAs: 1, Msg: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counterexamples == 0 {
		t.Fatal("explorer missed the seeded ordering bug")
	}
	ce := rep.Placements[0].Counterexamples[0]
	if strings.ContainsAny(ce.Shrunk, "\n") {
		t.Errorf("shrunk repro is not one line: %q", ce.Shrunk)
	}
	spec, perr := ParseSpec(ce.Shrunk)
	if perr != nil {
		t.Fatalf("shrunk repro does not parse: %v\n  %s", perr, ce.Shrunk)
	}
	vs, rerr := Replay(spec)
	if rerr != nil {
		t.Fatalf("shrunk repro does not replay: %v\n  %s", rerr, ce.Shrunk)
	}
	if len(vs) == 0 {
		t.Fatalf("shrunk repro passes on replay: %s", ce.Shrunk)
	}
	hasOracle := false
	for _, v := range ce.Violations {
		if v.Kind == "oracle" {
			hasOracle = true
		}
	}
	if !hasOracle {
		t.Errorf("counterexample violations lack an oracle report: %v", ce.Violations)
	}
	t.Logf("caught and shrunk to: %s", ce.Shrunk)
}

// TestReductionIsEffective asserts the acceptance bound: on the 4-rank
// 2-rail benchmark shape the visited execution count stays under 10% of
// the unreduced interleaving estimate.
func TestReductionIsEffective(t *testing.T) {
	rep, err := Run(Options{Algs: []string{"ring"}, Nodes: 2, PPN: 2, HCAs: 2, Msg: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("benchmark-shape exploration did not complete")
	}
	if rep.SpaceEstimate < 10 {
		t.Fatalf("implausibly small interleaving estimate %g", rep.SpaceEstimate)
	}
	if ratio := float64(rep.Executions) / rep.SpaceEstimate; ratio >= 0.10 {
		t.Errorf("DPOR visited %d executions of ~%.0f interleavings (%.1f%%, want < 10%%)",
			rep.Executions, rep.SpaceEstimate, 100*ratio)
	}
	t.Logf("visited %d of ~%.3g estimated interleavings (%d steps)",
		rep.Executions, rep.SpaceEstimate, rep.Steps)
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []Spec{
		{Alg: "ring", Nodes: 2, PPN: 2, HCAs: 2, Msg: 8, Fault: NoFault},
		{Alg: "rd", Nodes: 2, PPN: 2, HCAs: 1, Msg: 0, Fault: Placement{Node: 1, Rail: 0}},
		{Alg: "ring", Nodes: 1, PPN: 3, HCAs: 2, Msg: 2, Fault: NoFault, Choices: []int{0, 2, 1}},
	} {
		line := s.String()
		got, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", line, err)
		}
		if got.String() != line {
			t.Errorf("round trip drifted: %q -> %q", line, got.String())
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"nodes=2",                             // missing alg
		"alg=no-such-variant nodes=2",         // unknown variant
		"alg=ring nodes=x",                    // non-numeric
		"alg=ring bogus=1",                    // unknown key
		"alg=ring nodes=0",                    // invalid topology
		"alg=ring nodes=4 ppn=4",              // 16 ranks > exhaustive limit
		"alg=ring nodes=2 sched=0.-1.2",       // negative choice
		"alg=ring nodes=2 sched=a.b",          // non-numeric choice
		"alg=ring nodes=2 fault=node5.rail0",  // fault off-cluster
		"alg=ring nodes=2 fault=node0.railxy", // malformed fault
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", bad)
		}
	}
}

func TestReplayRejectsUnfittingSchedule(t *testing.T) {
	// 2-rank single-rail ring has tiny frontiers; choice index 7 cannot
	// correspond to any real decision.
	_, err := Replay(Spec{Alg: "ring", Nodes: 1, PPN: 2, HCAs: 1, Msg: 2, Fault: NoFault, Choices: []int{7}})
	if err == nil {
		t.Fatal("replay accepted a schedule that does not fit the world")
	}
}
