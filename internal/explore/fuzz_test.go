package explore

import "testing"

// FuzzParseExploreSpec drives the repro-spec parser with arbitrary
// input. Properties: ParseSpec never panics; whatever it accepts
// validates, renders via String() in a form ParseSpec accepts again, and
// that render is a fixed point — otherwise a counterexample line printed
// by mhaexplore might not replay.
func FuzzParseExploreSpec(f *testing.F) {
	for _, seed := range []string{
		"alg=ring nodes=2 ppn=2 hcas=2 msg=8 fault=none sched=canonical",
		"alg=rd nodes=2 ppn=1 hcas=2 msg=0 fault=node1.rail0 sched=0.2.1",
		"alg=sched-mha nodes=1 ppn=3 hcas=1 msg=2 fault=none sched=0.0.0.0.0.0.0.0.0.0.0.0.0.2",
		"alg=ring",
		"alg=ring sched=7",
		"alg=ring nodes=4 ppn=4",
		"alg=ring nodes=2 fault=node5.rail0",
		"alg=ring nodes=2 fault=node0.railxy",
		"alg=ring nodes=-1",
		"alg=ring msg=x",
		"alg= nodes=2",
		"nodes=2 ppn=2",
		"alg=ring bogus=1",
		"alg=ring sched=0.-1.2",
		"alg=ring sched=a.b",
		"alg=ring sched=",
		"  alg=ring   nodes=2  ",
		"alg=ring nodes=99999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseSpec(line)
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSpec accepted a spec its own Validate rejects: %v\ninput: %q", verr, line)
		}
		rendered := s.String()
		s2, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("String() output does not re-parse: %v\ninput: %q\nrendered: %q", err, line, rendered)
		}
		if s2.String() != rendered {
			t.Fatalf("String/Parse not a fixed point:\nfirst:  %q\nsecond: %q", rendered, s2.String())
		}
	})
}
