package explore

import "mha/internal/verify"

// shrinkSpec greedily minimizes a failing explored schedule, mirroring
// verify.Shrink's contract: vs must be the violations s already
// exhibited, the returned violations belong to the returned spec, and at
// most budget candidate replays are spent. Candidates that fail to
// replay (their choices no longer fit the frontiers of the reduced
// world) are charged against the budget and discarded.
func shrinkSpec(s Spec, vs []verify.Violation, budget int) (Spec, []verify.Violation, int) {
	cur, curVs := s, vs
	used := 0
	for used < budget {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			if used >= budget {
				break
			}
			if cand.String() == cur.String() || cand.Validate() != nil {
				continue
			}
			used++
			cvs, err := Replay(cand)
			if err != nil || len(cvs) == 0 {
				continue
			}
			cur, curVs = cand, cvs
			improved = true
			break
		}
		if !improved {
			break
		}
	}
	return cur, curVs, used
}

// shrinkCandidates proposes one-step reductions, most aggressive first:
// drop the whole schedule (is the bug schedule-independent?), drop the
// fault, halve and trim the choice list, zero trailing choices back to
// canonical, and shrink the payload.
func shrinkCandidates(s Spec) []Spec {
	var out []Spec
	with := func(mut func(*Spec)) {
		c := s
		c.Choices = append([]int(nil), s.Choices...)
		mut(&c)
		out = append(out, c)
	}
	if len(s.Choices) > 0 {
		with(func(c *Spec) { c.Choices = nil })
	}
	if !s.Fault.Healthy() {
		with(func(c *Spec) { c.Fault = NoFault })
	}
	if s.Fabric != "" {
		with(func(c *Spec) { c.Fabric = "" })
	}
	if n := len(s.Choices); n > 1 {
		with(func(c *Spec) { c.Choices = c.Choices[:n/2] })
		with(func(c *Spec) { c.Choices = c.Choices[:n-1] })
	}
	// Zero the last nonzero choice: canonical prefixes shrink the repro
	// line even when the list length cannot drop.
	for i := len(s.Choices) - 1; i >= 0; i-- {
		if s.Choices[i] != 0 {
			i := i
			with(func(c *Spec) { c.Choices[i] = 0 })
			break
		}
	}
	// A trailing run of zeros is equivalent to a shorter list.
	if n := len(s.Choices); n > 0 && s.Choices[n-1] == 0 {
		k := n
		for k > 0 && s.Choices[k-1] == 0 {
			k--
		}
		with(func(c *Spec) { c.Choices = c.Choices[:k] })
	}
	for _, m := range []int{0, 1, s.Msg / 2, s.Msg - 1} {
		if m >= 0 && m < s.Msg {
			m := m
			with(func(c *Spec) { c.Msg = m })
		}
	}
	return out
}
