// Package explore exhaustively verifies allgather variants on small
// worlds. Where internal/verify samples the scenario space at random,
// explore enumerates it: for a fixed world shape it visits every
// meaningfully distinct interleaving of same-virtual-time events (the
// only nondeterminism the deterministic engine abstracts away) and every
// single-rail-fault placement, checking the byte-level oracle and the
// teardown audits at every terminal state. Dynamic partial-order
// reduction over the engine's per-step dependency footprints keeps the
// visited-state count a small fraction of the raw interleaving space.
package explore

import (
	"fmt"
	"strconv"
	"strings"

	"mha/internal/fabric"
	"mha/internal/faults"
	"mha/internal/sim"
	"mha/internal/verify"
)

// MaxWorldRanks bounds the worlds the explorer accepts: exhaustive
// enumeration is only tractable (and only interesting) for small worlds.
const MaxWorldRanks = 8

// FaultWindow is the outage span of an injected single-rail Down fault.
// It is long enough to cover the first phase of every variant at the
// explorer's message sizes, so the fault actually intersects traffic.
const FaultWindow = 30 * sim.Time(sim.Microsecond)

// A Placement locates one injected rail fault. The zero value is NOT
// healthy; use NoFault.
type Placement struct {
	// Node and Rail locate the downed rail; Node == -1 means no fault.
	Node, Rail int
}

// NoFault is the healthy placement.
var NoFault = Placement{Node: -1, Rail: -1}

// Healthy reports whether the placement injects nothing.
func (pl Placement) Healthy() bool { return pl.Node < 0 }

func (pl Placement) String() string {
	if pl.Healthy() {
		return "none"
	}
	return fmt.Sprintf("node%d.rail%d", pl.Node, pl.Rail)
}

// parsePlacement reads the String form back.
func parsePlacement(s string) (Placement, error) {
	if s == "none" {
		return NoFault, nil
	}
	rest, ok := strings.CutPrefix(s, "node")
	if !ok {
		return NoFault, fmt.Errorf("explore: bad fault %q (want none or nodeN.railR)", s)
	}
	ns, rs, ok := strings.Cut(rest, ".rail")
	if !ok {
		return NoFault, fmt.Errorf("explore: bad fault %q (want none or nodeN.railR)", s)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return NoFault, fmt.Errorf("explore: bad fault node in %q: %v", s, err)
	}
	r, err := strconv.Atoi(rs)
	if err != nil {
		return NoFault, fmt.Errorf("explore: bad fault rail in %q: %v", s, err)
	}
	if n < 0 || r < 0 {
		return NoFault, fmt.Errorf("explore: negative fault location %q", s)
	}
	return Placement{Node: n, Rail: r}, nil
}

// A Spec pins one explored execution: a variant, a world shape, a fault
// placement, and the schedule choices taken at successive decision
// points (each an index into that point's co-enabled event frontier;
// points beyond the list take the canonical lowest-seq event). It
// round-trips through a one-line text form, so a counterexample can be
// replayed with `mhaexplore -repro`.
type Spec struct {
	Alg                   string
	Nodes, PPN, HCAs, Msg int
	// Fabric is an internal/fabric spec ("" means flat); the explored
	// world's inter-node traffic then crosses shared fabric links.
	Fabric  string
	Fault   Placement
	Choices []int
}

// String renders the one-line form ParseSpec reads.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s nodes=%d ppn=%d hcas=%d msg=%d", s.Alg, s.Nodes, s.PPN, s.HCAs, s.Msg)
	if s.Fabric != "" {
		fmt.Fprintf(&b, " fabric=%s", s.Fabric)
	}
	fmt.Fprintf(&b, " fault=%s sched=", s.Fault)
	if len(s.Choices) == 0 {
		b.WriteString("canonical")
		return b.String()
	}
	for i, c := range s.Choices {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// ParseSpec reads a line produced by String (the inverse, modulo
// whitespace). Unknown keys are an error; every key except alg has a
// default (one node, one rank, one rail, empty message, healthy rails,
// canonical schedule).
func ParseSpec(line string) (Spec, error) {
	s := Spec{Nodes: 1, PPN: 1, HCAs: 1, Fault: NoFault}
	for _, field := range strings.Fields(strings.TrimSpace(line)) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("explore: bad field %q (want key=value)", field)
		}
		var err error
		switch k {
		case "alg":
			s.Alg = v
		case "nodes":
			s.Nodes, err = strconv.Atoi(v)
		case "ppn":
			s.PPN, err = strconv.Atoi(v)
		case "hcas":
			s.HCAs, err = strconv.Atoi(v)
		case "msg":
			s.Msg, err = strconv.Atoi(v)
		case "fabric":
			var fs fabric.Spec
			if fs, err = fabric.ParseSpec(v); err == nil {
				s.Fabric = fs.String()
				if fs.Kind == fabric.Flat {
					s.Fabric = ""
				}
			}
		case "fault":
			s.Fault, err = parsePlacement(v)
		case "sched":
			if v != "canonical" {
				for _, part := range strings.Split(v, ".") {
					var c int
					c, err = strconv.Atoi(part)
					if err != nil || c < 0 {
						err = fmt.Errorf("bad choice %q", part)
						break
					}
					s.Choices = append(s.Choices, c)
				}
			}
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return s, fmt.Errorf("explore: field %q: %v", field, err)
		}
	}
	if s.Alg == "" {
		return s, fmt.Errorf("explore: spec is missing alg=")
	}
	return s, s.Validate()
}

// Validate reports why the spec is not explorable, or nil.
func (s Spec) Validate() error {
	if n := s.Nodes * s.PPN; n > MaxWorldRanks {
		return fmt.Errorf("explore: %d ranks exceeds the %d-rank exhaustive limit", n, MaxWorldRanks)
	}
	if len(s.Choices) > 100000 {
		return fmt.Errorf("explore: schedule with %d choices is implausible", len(s.Choices))
	}
	if !s.Fault.Healthy() && (s.Fault.Node >= s.Nodes || s.Fault.Rail >= s.HCAs) {
		return fmt.Errorf("explore: fault %s outside a %dx%d-rail cluster", s.Fault, s.Nodes, s.HCAs)
	}
	sc, err := s.scenario()
	if err != nil {
		return err
	}
	return sc.Validate()
}

// scenario maps the spec onto the verify harness's scenario form: block
// layout, seed 1, and — crucially — zero jitter. Jitter draws from a
// run-wide RNG shared by every rank, which would make every step depend
// on every other and defeat the partial-order reduction; the explorer
// covers scheduling nondeterminism exhaustively instead of sampling
// timing noise.
func (s Spec) scenario() (verify.Scenario, error) {
	sc := verify.Scenario{
		Alg: s.Alg, Nodes: s.Nodes, PPN: s.PPN, HCAs: s.HCAs,
		Msg: s.Msg, Seed: 1, Fabric: s.Fabric,
	}
	if !s.Fault.Healthy() {
		sched, err := faults.New(faults.Fault{
			Kind: faults.Down, Node: s.Fault.Node, Rail: s.Fault.Rail, Until: FaultWindow,
		})
		if err != nil {
			return sc, err
		}
		sc.Faults = sched
	}
	return sc, nil
}
