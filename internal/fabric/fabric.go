// Package fabric models the structured inter-node network that carries
// cross-node MPI traffic: k-ary fat-trees with per-level oversubscription
// and dragonfly group/router/global-link topologies. It replaces the
// implicit flat all-to-all assumption (every pair contends only at its
// endpoints' HCAs) with deterministic routing over shared per-link
// sim.Resources, so inter-node contention is simulated instead of
// assumed away.
//
// A fabric is described by a compact, space-free spec string (it embeds
// into the one-line verify/explore scenario grammar):
//
//	flat
//	ft:arity=4,levels=2,over=2:1
//	dfly:groups=2,routers=2,nodes=2,local=1,global=2:1
//
// Oversubscription values accept both plain factors ("2") and ratio
// form ("2:1"); lists (one taper per fat-tree trunk level, leaf
// upward) are "/"-separated: over=4:1/2:1.
package fabric

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind selects the fabric family.
type Kind int

const (
	// Flat is the non-blocking all-to-all fabric: no shared links,
	// transfers contend only at endpoint HCAs (the paper's single-switch
	// Thor).
	Flat Kind = iota
	// FatTree is a k-ary tree: nodes attach in groups of Arity to leaf
	// switches, Arity leaves to each level-2 switch, and so on, topped by
	// a non-blocking core. Each switch's up/down trunk pair is a shared
	// resource tapered by the per-level oversubscription.
	FatTree
	// Dragonfly is the group/router/global-link topology: routers inside
	// a group are fully connected by local links, groups are connected
	// pairwise by global links, and minimal routing goes
	// local -> global -> local.
	Dragonfly
)

func (k Kind) String() string {
	switch k {
	case Flat:
		return "flat"
	case FatTree:
		return "fattree"
	case Dragonfly:
		return "dragonfly"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Bounds keep parsed specs small enough that building a network is
// always cheap (the fuzzer explores the full accepted space).
const (
	maxArity    = 1024
	maxLevels   = 8
	maxOver     = 1024
	maxGroups   = 1024
	maxRouters  = 256
	maxNodesPer = 1024
	maxDflyLoc  = 1 << 20 // Groups * Routers^2 (local-link count) ceiling
)

// Spec is a validated fabric description. The zero value is the flat
// fabric.
type Spec struct {
	Kind Kind

	// Fat-tree shape: Arity children per switch, Levels switch levels
	// counting the leaf row as 1 and the non-blocking core as Levels.
	// Over holds one oversubscription factor per trunk level (Levels-1
	// entries, leaf uplinks first); 1 is full bisection.
	Arity  int
	Levels int
	Over   []float64

	// Dragonfly shape: Groups x Routers x NodesPer must equal the
	// cluster's node count. LocalOver/GlobalOver taper the local and
	// global link capacities.
	Groups     int
	Routers    int
	NodesPer   int
	LocalOver  float64
	GlobalOver float64
}

// TwoLevel returns the fat-tree spec equivalent to the legacy
// netmodel NodesPerLeaf/Oversubscription parameters: leaves of
// nodesPerLeaf nodes under a non-blocking core, uplinks tapered by
// over.
func TwoLevel(nodesPerLeaf int, over float64) Spec {
	return Spec{Kind: FatTree, Arity: nodesPerLeaf, Levels: 2, Over: []float64{over}}
}

// Validate reports whether the spec is well-formed (shape-independent;
// see Check for the fit against a concrete cluster).
func (s *Spec) Validate() error {
	switch s.Kind {
	case Flat:
		return nil
	case FatTree:
		if s.Arity < 1 || s.Arity > maxArity {
			return fmt.Errorf("fabric: fat-tree arity %d outside [1,%d]", s.Arity, maxArity)
		}
		if s.Levels < 2 || s.Levels > maxLevels {
			return fmt.Errorf("fabric: fat-tree levels %d outside [2,%d]", s.Levels, maxLevels)
		}
		if len(s.Over) != s.Levels-1 {
			return fmt.Errorf("fabric: fat-tree with %d levels needs %d taper entries, have %d",
				s.Levels, s.Levels-1, len(s.Over))
		}
		for i, o := range s.Over {
			if !(o >= 1 && o <= maxOver) {
				return fmt.Errorf("fabric: level-%d oversubscription %v outside [1,%d]", i+1, o, maxOver)
			}
		}
		return nil
	case Dragonfly:
		if s.Groups < 1 || s.Groups > maxGroups {
			return fmt.Errorf("fabric: dragonfly groups %d outside [1,%d]", s.Groups, maxGroups)
		}
		if s.Routers < 1 || s.Routers > maxRouters {
			return fmt.Errorf("fabric: dragonfly routers %d outside [1,%d]", s.Routers, maxRouters)
		}
		if s.NodesPer < 1 || s.NodesPer > maxNodesPer {
			return fmt.Errorf("fabric: dragonfly nodes-per-router %d outside [1,%d]", s.NodesPer, maxNodesPer)
		}
		if s.Groups*s.Routers*s.Routers > maxDflyLoc {
			return fmt.Errorf("fabric: dragonfly local-link count %d exceeds %d", s.Groups*s.Routers*s.Routers, maxDflyLoc)
		}
		if !(s.LocalOver >= 1 && s.LocalOver <= maxOver) {
			return fmt.Errorf("fabric: dragonfly local oversubscription %v outside [1,%d]", s.LocalOver, maxOver)
		}
		if !(s.GlobalOver >= 1 && s.GlobalOver <= maxOver) {
			return fmt.Errorf("fabric: dragonfly global oversubscription %v outside [1,%d]", s.GlobalOver, maxOver)
		}
		return nil
	default:
		return fmt.Errorf("fabric: unknown kind %v", s.Kind)
	}
}

// CheckNodes reports whether the spec fits a cluster of the given node
// count. Fat-trees fit any count (trailing leaves may be partially
// populated, like the legacy two-level model); a dragonfly must tile
// the nodes exactly.
func (s *Spec) CheckNodes(nodes int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Kind == Dragonfly && s.Groups*s.Routers*s.NodesPer != nodes {
		return fmt.Errorf("fabric: dragonfly %dx%dx%d hosts %d nodes, cluster has %d",
			s.Groups, s.Routers, s.NodesPer, s.Groups*s.Routers*s.NodesPer, nodes)
	}
	return nil
}

// String renders the canonical space-free spec text; ParseSpec inverts
// it exactly.
func (s *Spec) String() string {
	switch s.Kind {
	case FatTree:
		overs := make([]string, len(s.Over))
		for i, o := range s.Over {
			overs[i] = formatFactor(o)
		}
		return fmt.Sprintf("ft:arity=%d,levels=%d,over=%s", s.Arity, s.Levels, strings.Join(overs, "/"))
	case Dragonfly:
		return fmt.Sprintf("dfly:groups=%d,routers=%d,nodes=%d,local=%s,global=%s",
			s.Groups, s.Routers, s.NodesPer, formatFactor(s.LocalOver), formatFactor(s.GlobalOver))
	default:
		return "flat"
	}
}

func formatFactor(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
