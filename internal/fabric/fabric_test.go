package fabric

import (
	"strings"
	"testing"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

func TestParseSpecForms(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "flat"},
		{"flat", "flat"},
		{"ft:arity=4", "ft:arity=4,levels=2,over=1"},
		{"ft:arity=4,levels=2,over=2", "ft:arity=4,levels=2,over=2"},
		{"ft:arity=4,over=2:1", "ft:arity=4,levels=2,over=2"},
		{"ft:arity=2,over=4:1/2:1", "ft:arity=2,levels=3,over=4/2"},
		{"ft:arity=2,levels=3,over=2", "ft:arity=2,levels=3,over=2/1"},
		{"fattree:arity=8,over=3:2", "ft:arity=8,levels=2,over=1.5"},
		{"dfly:groups=2,routers=2", "dfly:groups=2,routers=2,nodes=1,local=1,global=1"},
		{"dfly:groups=2,routers=2,nodes=2,local=1,global=2:1",
			"dfly:groups=2,routers=2,nodes=2,local=1,global=2"},
		{"dragonfly:groups=4,routers=4,nodesper=2,global=2",
			"dfly:groups=4,routers=4,nodes=2,local=1,global=2"},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got := s.String(); got != c.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical text round-trips to the identical spec.
		again, err := ParseSpec(s.String())
		if err != nil || again.String() != s.String() {
			t.Errorf("canonical %q does not round-trip (%v)", s.String(), err)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"mesh:x=2", "ft", "ft:", "ft:levels=2", "ft:arity=0", "ft:arity=-3",
		"ft:arity=4,arity=4", "ft:arity=4,bogus=1", "ft:arity=4,over=0.5",
		"ft:arity=4,over=2:0", "ft:arity=4,over=nope", "ft:arity=4,levels=99",
		"ft:arity=4,levels=1", "ft:arity=4,over=1/1/1/1/1/1/1/1/1",
		"ft:arity=4,over=NaN", "ft:arity=4,over=+Inf",
		"dfly:groups=2", "dfly:routers=2", "dfly:groups=0,routers=2",
		"dfly:groups=2,routers=2,local=0.2", "dfly:groups=2,routers=2,nodes=",
		"dfly:groups=99999,routers=2",
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) should fail", in)
		}
	}
}

// The synthesized two-level spec must reproduce the legacy leaf-uplink
// capacity bit-for-bit, including partially filled leaves.
func TestTwoLevelMatchesLegacyLeafUplink(t *testing.T) {
	prm := netmodel.Thor()
	prm.NodesPerLeaf = 3
	prm.Oversubscription = 2
	topo := topology.New(7, 2, 2) // 3 leaves, last one partial
	nw, err := Build(nil, TwoLevel(prm.NodesPerLeaf, prm.Oversubscription), topo, prm)
	if err != nil {
		t.Fatal(err)
	}
	want := prm.LeafUplinkBW(topo.HCAs)
	for _, l := range nw.Links() {
		if l.BW != want {
			t.Fatalf("link %s capacity %v, legacy leaf uplink %v", l.Name, l.BW, want)
		}
	}
	if len(nw.Links()) != 6 {
		t.Fatalf("want 3 leaves x up/down, got %d links", len(nw.Links()))
	}
}

func TestFatTreeRouting(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(8, 1, 2)
	nw, err := Build(nil, MustParse("ft:arity=2,levels=3,over=2/2"), topo, prm)
	if err != nil {
		t.Fatal(err)
	}
	names := func(src, dst int) string {
		var ns []string
		for _, l := range nw.Route(src, dst) {
			ns = append(ns, l.Name)
		}
		return strings.Join(ns, " ")
	}
	if got := names(0, 1); got != "" {
		t.Fatalf("same leaf should use no shared links, got %q", got)
	}
	if got := names(0, 2); got != "ft.l1.s0.up ft.l1.s1.down" {
		t.Fatalf("adjacent-leaf route %q", got)
	}
	if got := names(0, 7); got != "ft.l1.s0.up ft.l2.s0.up ft.l2.s1.down ft.l1.s3.down" {
		t.Fatalf("cross-core route %q", got)
	}
	if got := names(7, 0); got != "ft.l1.s3.up ft.l2.s1.up ft.l2.s0.down ft.l1.s0.down" {
		t.Fatalf("reverse cross-core route %q", got)
	}
	// Taper compounds down the tree: level-2 trunks see arity^2 nodes
	// through over[0]*over[1].
	l1 := nw.Route(0, 2)[0].BW
	l2 := nw.Route(0, 7)[1].BW
	if l1 != 2*2*prm.BWHCA/2 || l2 != 4*2*prm.BWHCA/4 {
		t.Fatalf("trunk capacities l1=%v l2=%v", l1, l2)
	}
}

func TestDragonflyRouting(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(8, 1, 2)
	nw, err := Build(nil, MustParse("dfly:groups=2,routers=2,nodes=2,global=2"), topo, prm)
	if err != nil {
		t.Fatal(err)
	}
	names := func(src, dst int) string {
		var ns []string
		for _, l := range nw.Route(src, dst) {
			ns = append(ns, l.Name)
		}
		return strings.Join(ns, " ")
	}
	if got := names(0, 1); got != "" {
		t.Fatalf("same router should use no shared links, got %q", got)
	}
	if got := names(0, 2); got != "dfly.g0.r0-r1" {
		t.Fatalf("intra-group route %q", got)
	}
	// Gateway for groups (0,1) is router (0+1)%2 = 1: node 0 (g0,r0)
	// hops to r1, crosses, lands on g1's gateway r1 which hosts node 6.
	if got := names(0, 6); got != "dfly.g0.r0-r1 dfly.g0-g1" {
		t.Fatalf("cross-group route via gateway %q", got)
	}
	if got := names(0, 4); got != "dfly.g0.r0-r1 dfly.g0-g1 dfly.g1.r1-r0" {
		t.Fatalf("full three-hop route %q", got)
	}
	// The global link is one shared cable for both directions.
	if nw.Route(0, 4)[1] != nw.Route(4, 0)[1] {
		t.Fatal("global link should be shared by both directions")
	}
	gl := nw.Route(0, 4)[1]
	if gl.BW != 2*2*prm.BWHCA/2 {
		t.Fatalf("global capacity %v", gl.BW)
	}
}

func TestDragonflyMustTileNodes(t *testing.T) {
	if _, err := Build(nil, MustParse("dfly:groups=2,routers=2,nodes=2"), topology.New(6, 1, 1), netmodel.Thor()); err == nil {
		t.Fatal("2x2x2 dragonfly on 6 nodes should fail")
	}
}

// Heterogeneous clusters shrink the trunks their weaker nodes feed.
func TestHeterogeneousCapacity(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.Cluster{Nodes: 4, PPN: 1, HCAs: 2, NodeHCAs: []int{2, 2, 1, 1}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	nw, err := Build(nil, MustParse("ft:arity=2,over=1"), topo, prm)
	if err != nil {
		t.Fatal(err)
	}
	fat := nw.Route(0, 2)[0].BW  // leaf 0: two 2-HCA nodes
	thin := nw.Route(2, 0)[0].BW // leaf 1: two 1-HCA nodes
	if fat != 4*prm.BWHCA || thin != 2*prm.BWHCA {
		t.Fatalf("hetero trunk capacities fat=%v thin=%v", fat, thin)
	}
}

func TestDescribe(t *testing.T) {
	prm := netmodel.Thor()
	for _, spec := range []string{"flat", "ft:arity=2,over=2", "dfly:groups=2,routers=2,nodes=2"} {
		nw, err := Build(nil, MustParse(spec), topology.New(8, 2, 2), prm)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		nw.Describe(&sb)
		if !strings.Contains(sb.String(), "shared links:") {
			t.Fatalf("describe(%s) = %q", spec, sb.String())
		}
	}
}
