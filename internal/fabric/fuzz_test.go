package fabric

import (
	"testing"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

// FuzzParseFabricSpec drives the spec parser with hostile input. The
// parser must never panic; on accepted input the spec must validate,
// render to canonical text that reparses to the identical spec, and
// build a network over a small cluster without panicking (dragonfly
// node-count mismatches are allowed to error, not crash).
func FuzzParseFabricSpec(f *testing.F) {
	seeds := []string{
		"", "flat",
		"ft:arity=4,levels=2,over=2",
		"ft:arity=2,over=4:1/2:1",
		"ft:arity=1,levels=2,over=2",
		"fattree:arity=8,over=3:2",
		"dfly:groups=2,routers=2,nodes=2,local=1,global=2:1",
		"dragonfly:groups=4,routers=4,nodesper=2",
		"ft:arity=0", "ft:arity=4,bogus=1", "dfly:groups=2",
		"ft:arity=4,over=NaN", "mesh:x=1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	prm := netmodel.Thor()
	topo := topology.New(8, 1, 2)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted invalid spec: %v", in, verr)
		}
		canon := s.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q (from %q) does not reparse: %v", canon, in, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical text not a fixed point: %q -> %q", canon, again.String())
		}
		if nw, err := Build(nil, s, topo, prm); err == nil {
			for src := 0; src < topo.Nodes; src++ {
				for dst := 0; dst < topo.Nodes; dst++ {
					for _, l := range nw.Route(src, dst) {
						if l == nil || !(l.BW > 0) {
							t.Fatalf("spec %q: route %d->%d has bad link", canon, src, dst)
						}
					}
				}
			}
		}
	})
}
