package fabric

import (
	"fmt"
	"io"

	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// Link is one shared fabric cable: an aggregate trunk (fat-tree) or a
// local/global channel (dragonfly). BW is its capacity in bytes per
// second; Res is the FIFO-queue resource that serializes transfers over
// it (nil when the network was built without an engine, for
// describe/route-only use).
type Link struct {
	Name string
	BW   float64
	Res  *sim.Resource
}

// Network is a built fabric instance: the spec applied to a concrete
// cluster, with one sim.Resource per link and every pairwise route
// precomputed. Routes are deterministic (minimal, lowest-index
// tie-break) and the table is immutable after Build, so concurrent
// simulator processes can read it without synchronization.
type Network struct {
	spec   Spec
	topo   topology.Cluster
	links  []*Link
	routes [][]*Link // [src*Nodes+dst]

	// fat-tree: up/down trunk per switch per trunk level, and the
	// (clamped) subtree width per level for switch indexing.
	up, down [][]*Link
	pows     []int

	// dragonfly: directed local links [g][a][b] flattened, and one
	// global link per unordered group pair.
	local  []*Link
	global []*Link
}

// Build instantiates a fabric over a cluster. eng may be nil, in which
// case links carry no resources and the network only describes and
// routes (used by the CLI). Capacities derive from the cluster's
// injection bandwidth — heterogeneous HCA counts and asymmetric rail
// scales shrink the trunks they feed — tapered by the spec's
// oversubscription factors.
func Build(eng *sim.Engine, spec Spec, topo topology.Cluster, prm *netmodel.Params) (*Network, error) {
	if err := spec.CheckNodes(topo.Nodes); err != nil {
		return nil, err
	}
	nw := &Network{spec: spec, topo: topo}
	switch spec.Kind {
	case Flat:
		// No shared links; all routes stay empty.
	case FatTree:
		nw.buildFatTree(eng, prm)
	case Dragonfly:
		nw.buildDragonfly(eng, prm)
	}
	nw.routes = make([][]*Link, topo.Nodes*topo.Nodes)
	for s := 0; s < topo.Nodes; s++ {
		for d := 0; d < topo.Nodes; d++ {
			if s != d {
				nw.routes[s*topo.Nodes+d] = nw.computeRoute(s, d)
			}
		}
	}
	return nw, nil
}

// NodeInjection is the aggregate bandwidth node n can push into the
// fabric: the sum of its rails' (possibly scaled) line rates.
func NodeInjection(topo topology.Cluster, prm *netmodel.Params, n int) float64 {
	sum := 0.0
	for r := 0; r < topo.HCAsOf(n); r++ {
		sum += prm.RailBW(topo.RailScale(r))
	}
	return sum
}

func (nw *Network) newLink(eng *sim.Engine, name string, bw float64) *Link {
	l := &Link{Name: name, BW: bw}
	if eng != nil {
		l.Res = eng.NewResource(name)
	}
	nw.links = append(nw.links, l)
	return l
}

func (nw *Network) buildFatTree(eng *sim.Engine, prm *netmodel.Params) {
	spec, topo := nw.spec, nw.topo
	hetero := topo.Heterogeneous()
	nw.pows = make([]int, spec.Levels)
	nw.pows[0] = 1
	pow := 1    // subtree width, clamped for indexing
	powF := 1.0 // notional full-subtree width, for capacity
	cum := 1.0  // cumulative taper down to this trunk level
	for k := 1; k < spec.Levels; k++ {
		if pow <= topo.Nodes {
			pow *= spec.Arity
		}
		if pow > topo.Nodes {
			pow = topo.Nodes
		}
		nw.pows[k] = pow
		powF *= float64(spec.Arity)
		cum *= spec.Over[k-1]
		switches := (topo.Nodes + pow - 1) / pow
		ups := make([]*Link, switches)
		downs := make([]*Link, switches)
		for s := 0; s < switches; s++ {
			var bw float64
			if !hetero {
				// Matches the legacy two-level LeafUplinkBW formula
				// bit-for-bit at k=1, including partially filled leaves,
				// which keeps pre-fabric goldens stable.
				bw = powF * float64(topo.HCAs) * prm.BWHCA / cum
			} else {
				inj := 0.0
				for n := s * pow; n < (s+1)*pow && n < topo.Nodes; n++ {
					inj += NodeInjection(topo, prm, n)
				}
				bw = inj / cum
			}
			ups[s] = nw.newLink(eng, fmt.Sprintf("ft.l%d.s%d.up", k, s), bw)
			downs[s] = nw.newLink(eng, fmt.Sprintf("ft.l%d.s%d.down", k, s), bw)
		}
		nw.up = append(nw.up, ups)
		nw.down = append(nw.down, downs)
	}
}

func (nw *Network) buildDragonfly(eng *sim.Engine, prm *netmodel.Params) {
	spec, topo := nw.spec, nw.topo
	total := 0.0
	for n := 0; n < topo.Nodes; n++ {
		total += NodeInjection(topo, prm, n)
	}
	meanInj := total / float64(topo.Nodes)
	localBW := float64(spec.NodesPer) * meanInj / spec.LocalOver
	globalBW := float64(spec.NodesPer) * meanInj / spec.GlobalOver
	R := spec.Routers
	nw.local = make([]*Link, spec.Groups*R*R)
	for g := 0; g < spec.Groups; g++ {
		for a := 0; a < R; a++ {
			for b := 0; b < R; b++ {
				if a == b {
					continue
				}
				nw.local[(g*R+a)*R+b] = nw.newLink(eng,
					fmt.Sprintf("dfly.g%d.r%d-r%d", g, a, b), localBW)
			}
		}
	}
	nw.global = make([]*Link, spec.Groups*spec.Groups)
	for i := 0; i < spec.Groups; i++ {
		for j := i + 1; j < spec.Groups; j++ {
			l := nw.newLink(eng, fmt.Sprintf("dfly.g%d-g%d", i, j), globalBW)
			nw.global[i*spec.Groups+j] = l
			nw.global[j*spec.Groups+i] = l
		}
	}
}

// Route returns the shared links a transfer from src node to dst node
// crosses, in charge order (source side up, then destination side
// down). Nil means no shared links: same node, same switch/router, or
// a flat fabric.
func (nw *Network) Route(src, dst int) []*Link {
	if src == dst {
		return nil
	}
	return nw.routes[src*nw.topo.Nodes+dst]
}

func (nw *Network) computeRoute(src, dst int) []*Link {
	switch nw.spec.Kind {
	case FatTree:
		return nw.ftRoute(src, dst)
	case Dragonfly:
		return nw.dflyRoute(src, dst)
	}
	return nil
}

func (nw *Network) ftRoute(src, dst int) []*Link {
	// Meet at the first level whose switch both nodes share; the core
	// (level Levels) is non-blocking, so paths crossing it only charge
	// the trunk stacks on either side.
	meet := nw.spec.Levels
	for k := 1; k < nw.spec.Levels; k++ {
		if src/nw.pows[k] == dst/nw.pows[k] {
			meet = k
			break
		}
	}
	var path []*Link
	for k := 1; k < meet; k++ {
		path = append(path, nw.up[k-1][src/nw.pows[k]])
	}
	for k := meet - 1; k >= 1; k-- {
		path = append(path, nw.down[k-1][dst/nw.pows[k]])
	}
	return path
}

func (nw *Network) dflyRoute(src, dst int) []*Link {
	R, P, G := nw.spec.Routers, nw.spec.NodesPer, nw.spec.Groups
	gi, ri := src/(R*P), (src/P)%R
	gj, rj := dst/(R*P), (dst/P)%R
	if gi == gj {
		if ri == rj {
			return nil
		}
		return []*Link{nw.local[(gi*R+ri)*R+rj]}
	}
	// Minimal routing: hop to the deterministic gateway router, cross
	// the group pair's global link, hop to the destination router.
	gw := (gi + gj) % R
	var path []*Link
	if ri != gw {
		path = append(path, nw.local[(gi*R+ri)*R+gw])
	}
	path = append(path, nw.global[gi*G+gj])
	if gw != rj {
		path = append(path, nw.local[(gj*R+gw)*R+rj])
	}
	return path
}

// Spec returns the fabric description the network was built from.
func (nw *Network) Spec() Spec { return nw.spec }

// Links returns every shared link in creation order.
func (nw *Network) Links() []*Link { return nw.links }

// Describe writes a human-readable structure summary.
func (nw *Network) Describe(w io.Writer) {
	spec := &nw.spec
	fmt.Fprintf(w, "fabric %s (%s) on %v\n", spec, spec.Kind, nw.topo)
	switch spec.Kind {
	case Flat:
		fmt.Fprintf(w, "  non-blocking: transfers contend only at endpoint HCAs\n")
	case FatTree:
		for k := 1; k < spec.Levels; k++ {
			sw := nw.up[k-1]
			fmt.Fprintf(w, "  level %d: %d switches, trunk %.1f GB/s each way, taper %s\n",
				k, len(sw), sw[0].BW/1e9, formatFactor(spec.Over[k-1]))
		}
		fmt.Fprintf(w, "  level %d: non-blocking core\n", spec.Levels)
	case Dragonfly:
		var localBW, globalBW float64
		locals, globals := 0, 0
		for _, l := range nw.local {
			if l != nil {
				locals++
				localBW = l.BW
			}
		}
		for i := 0; i < spec.Groups; i++ {
			for j := i + 1; j < spec.Groups; j++ {
				globals++
				globalBW = nw.global[i*spec.Groups+j].BW
			}
		}
		fmt.Fprintf(w, "  %d groups x %d routers x %d nodes/router\n", spec.Groups, spec.Routers, spec.NodesPer)
		fmt.Fprintf(w, "  local links: %d x %.1f GB/s (taper %s)\n", locals, localBW/1e9, formatFactor(spec.LocalOver))
		if globals > 0 {
			fmt.Fprintf(w, "  global links: %d x %.1f GB/s (taper %s)\n", globals, globalBW/1e9, formatFactor(spec.GlobalOver))
		}
	}
	fmt.Fprintf(w, "  shared links: %d\n", len(nw.links))
}
