package fabric

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the compact fabric spec grammar. It never panics on
// hostile input (fuzzed), rejects unknown and duplicate keys, and only
// returns specs that Validate. The empty string and "flat" both mean
// the flat fabric.
func ParseSpec(text string) (Spec, error) {
	t := strings.TrimSpace(text)
	if t == "" || t == "flat" {
		return Spec{Kind: Flat}, nil
	}
	head, rest, ok := strings.Cut(t, ":")
	if !ok {
		return Spec{}, fmt.Errorf("fabric: spec %q: want flat, ft:... or dfly:...", text)
	}
	var s Spec
	var err error
	switch head {
	case "ft", "fattree":
		s, err = parseFatTree(rest)
	case "dfly", "dragonfly":
		s, err = parseDragonfly(rest)
	default:
		return Spec{}, fmt.Errorf("fabric: unknown fabric kind %q", head)
	}
	if err != nil {
		return Spec{}, err
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// MustParse is ParseSpec for statically known specs (tests, tables).
func MustParse(text string) Spec {
	s, err := ParseSpec(text)
	if err != nil {
		panic(err)
	}
	return s
}

func parseFatTree(rest string) (Spec, error) {
	s := Spec{Kind: FatTree, Levels: 2}
	sawLevels := false
	err := eachField(rest, func(key, val string) error {
		switch key {
		case "arity":
			return parseInt(val, &s.Arity)
		case "levels":
			sawLevels = true
			return parseInt(val, &s.Levels)
		case "over":
			for _, part := range strings.Split(val, "/") {
				o, err := parseFactor(part)
				if err != nil {
					return err
				}
				s.Over = append(s.Over, o)
			}
			return nil
		default:
			return fmt.Errorf("fabric: unknown fat-tree key %q", key)
		}
	})
	if err != nil {
		return Spec{}, err
	}
	if s.Arity == 0 {
		return Spec{}, fmt.Errorf("fabric: fat-tree spec needs arity=")
	}
	if !sawLevels && len(s.Over) > 1 {
		// Taper list implies the trunk-level count.
		s.Levels = len(s.Over) + 1
	}
	// Missing trailing tapers read as full bisection.
	for s.Levels >= 2 && len(s.Over) < s.Levels-1 {
		s.Over = append(s.Over, 1)
	}
	return s, nil
}

func parseDragonfly(rest string) (Spec, error) {
	s := Spec{Kind: Dragonfly, NodesPer: 1, LocalOver: 1, GlobalOver: 1}
	err := eachField(rest, func(key, val string) error {
		switch key {
		case "groups":
			return parseInt(val, &s.Groups)
		case "routers":
			return parseInt(val, &s.Routers)
		case "nodes", "nodesper":
			return parseInt(val, &s.NodesPer)
		case "local":
			o, err := parseFactor(val)
			s.LocalOver = o
			return err
		case "global":
			o, err := parseFactor(val)
			s.GlobalOver = o
			return err
		default:
			return fmt.Errorf("fabric: unknown dragonfly key %q", key)
		}
	})
	if err != nil {
		return Spec{}, err
	}
	if s.Groups == 0 || s.Routers == 0 {
		return Spec{}, fmt.Errorf("fabric: dragonfly spec needs groups= and routers=")
	}
	return s, nil
}

// eachField walks "k=v,k=v" fields, rejecting malformed and duplicate
// keys.
func eachField(rest string, fn func(key, val string) error) error {
	seen := map[string]bool{}
	for _, field := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok || key == "" || val == "" {
			return fmt.Errorf("fabric: malformed field %q (want key=value)", field)
		}
		if seen[key] {
			return fmt.Errorf("fabric: duplicate key %q", key)
		}
		seen[key] = true
		if err := fn(key, val); err != nil {
			return err
		}
	}
	return nil
}

func parseInt(val string, dst *int) error {
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return fmt.Errorf("fabric: bad count %q", val)
	}
	*dst = n
	return nil
}

// parseFactor reads an oversubscription factor: a plain float ("2",
// "1.5") or a ratio ("2:1", "3:2").
func parseFactor(val string) (float64, error) {
	if num, den, ok := strings.Cut(val, ":"); ok {
		a, err1 := strconv.ParseFloat(num, 64)
		b, err2 := strconv.ParseFloat(den, 64)
		if err1 != nil || err2 != nil || !(b > 0) {
			return 0, fmt.Errorf("fabric: bad oversubscription ratio %q", val)
		}
		return a / b, nil
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("fabric: bad oversubscription %q", val)
	}
	return f, nil
}
