// Package faults is a deterministic fault-injection subsystem for the
// simulated cluster: scripted schedules of rail failures (a rail down for
// a window, degraded to a fraction of its bandwidth, serving with elevated
// per-message latency, or flapping periodically) that the MPI runtime
// applies to its HCA resources and consults for transport selection.
//
// A Schedule is a pure function of virtual time: the same schedule on the
// same workload always yields bit-identical results, and the Random
// generator derives a schedule deterministically from a seed, so fault
// campaigns are as reproducible as the healthy simulations.
package faults

import (
	"fmt"
	"math/rand"
	"strings"

	"mha/internal/sim"
)

// Kind classifies a fault.
type Kind int

const (
	// Down makes the rail completely unavailable during [From, Until).
	Down Kind = iota
	// Degrade scales the rail's bandwidth by Fraction during [From, Until).
	Degrade
	// Latency adds Extra startup time to every message on the rail during
	// [From, Until) without touching its bandwidth.
	Latency
	// Flap repeats [down for DownFor, up for Period-DownFor] cycles,
	// starting at From, until Until.
	Flap
)

func (k Kind) String() string {
	switch k {
	case Down:
		return "down"
	case Degrade:
		return "degrade"
	case Latency:
		return "latency"
	case Flap:
		return "flap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Forever marks an open-ended fault window (and is what state queries
// return as the horizon when no further transition is scheduled).
const Forever = sim.TimeMax

// AllNodes and AllRails select every node / every rail of a Fault.
const (
	AllNodes = -1
	AllRails = -1
)

// Fault is one scripted fault on one rail (or on every rail of a node, or
// on one rail index of every node).
type Fault struct {
	// Kind selects the failure mode.
	Kind Kind
	// Node is the afflicted node, or AllNodes.
	Node int
	// Rail is the afflicted rail index, or AllRails.
	Rail int
	// From and Until bound the fault window [From, Until). Until <= 0
	// normalizes to Forever.
	From, Until sim.Time
	// Fraction is the surviving bandwidth share of a Degrade fault,
	// in (0, 1).
	Fraction float64
	// Extra is the added per-message startup of a Latency fault.
	Extra sim.Duration
	// Period and DownFor shape a Flap fault: each Period starts with
	// DownFor of outage. 0 < DownFor < Period.
	Period, DownFor sim.Duration
}

// normalize applies the Until <= 0 => Forever convention.
func (f Fault) normalize() Fault {
	if f.Until <= 0 {
		f.Until = Forever
	}
	return f
}

// validate reports whether the fault is well-formed.
func (f Fault) validate() error {
	switch {
	case f.Node < AllNodes:
		return fmt.Errorf("faults: node %d invalid", f.Node)
	case f.Rail < AllRails:
		return fmt.Errorf("faults: rail %d invalid", f.Rail)
	case f.From < 0:
		return fmt.Errorf("faults: negative start %v", f.From)
	case f.Until <= f.From:
		return fmt.Errorf("faults: empty window [%v, %v)", f.From, f.Until)
	}
	switch f.Kind {
	case Down:
	case Degrade:
		if f.Fraction <= 0 || f.Fraction >= 1 {
			return fmt.Errorf("faults: degrade fraction %v outside (0, 1)", f.Fraction)
		}
	case Latency:
		if f.Extra <= 0 {
			return fmt.Errorf("faults: latency fault needs a positive extra, have %v", f.Extra)
		}
	case Flap:
		if f.Period <= 0 || f.DownFor <= 0 || f.DownFor >= f.Period {
			return fmt.Errorf("faults: flap needs 0 < down (%v) < period (%v)", f.DownFor, f.Period)
		}
	default:
		return fmt.Errorf("faults: unknown kind %d", int(f.Kind))
	}
	return nil
}

// applies reports whether the fault afflicts (node, rail).
func (f Fault) applies(node, rail int) bool {
	return (f.Node == AllNodes || f.Node == node) &&
		(f.Rail == AllRails || f.Rail == rail)
}

// state returns this fault's bandwidth multiplier at time t and the
// horizon until which it is constant (> t, exclusive).
func (f Fault) state(t sim.Time) (frac float64, until sim.Time) {
	if t < f.From {
		return 1, f.From
	}
	if t >= f.Until {
		return 1, Forever
	}
	switch f.Kind {
	case Down:
		return 0, f.Until
	case Degrade:
		return f.Fraction, f.Until
	case Latency:
		return 1, f.Until
	case Flap:
		phase := sim.Duration(t-f.From) % f.Period
		cycleStart := t - sim.Time(phase)
		if phase < f.DownFor {
			return 0, minTime(f.Until, cycleStart+sim.Time(f.DownFor))
		}
		return 1, minTime(f.Until, cycleStart+sim.Time(f.Period))
	}
	return 1, f.Until
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

// fmtDuration renders a duration for String/Spec output.
func (f Fault) String() string {
	var b strings.Builder
	b.WriteString(f.Kind.String())
	if f.Node == AllNodes {
		b.WriteString(" node=*")
	} else {
		fmt.Fprintf(&b, " node=%d", f.Node)
	}
	if f.Rail == AllRails {
		b.WriteString(" rail=*")
	} else {
		fmt.Fprintf(&b, " rail=%d", f.Rail)
	}
	switch f.Kind {
	case Degrade:
		fmt.Fprintf(&b, " frac=%g", f.Fraction)
	case Latency:
		fmt.Fprintf(&b, " extra=%s", specDuration(f.Extra))
	case Flap:
		fmt.Fprintf(&b, " period=%s down=%s", specDuration(f.Period), specDuration(f.DownFor))
	}
	fmt.Fprintf(&b, " from=%s", specTime(f.From))
	if f.Until >= Forever {
		b.WriteString(" until=forever")
	} else {
		fmt.Fprintf(&b, " until=%s", specTime(f.Until))
	}
	return b.String()
}

// Schedule is an immutable, validated set of faults. A nil *Schedule is a
// valid always-healthy schedule, so callers can thread one through
// unconditionally.
type Schedule struct {
	faults []Fault
}

// New validates the faults and builds a schedule.
func New(fs ...Fault) (*Schedule, error) {
	s := &Schedule{faults: make([]Fault, 0, len(fs))}
	for i, f := range fs {
		f = f.normalize()
		if err := f.validate(); err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		s.faults = append(s.faults, f)
	}
	return s, nil
}

// MustNew is New, panicking on invalid faults (for literals in tests and
// benchmarks).
func MustNew(fs ...Fault) *Schedule {
	s, err := New(fs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len reports the number of faults; zero for a nil schedule.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.faults)
}

// Faults returns a copy of the fault list.
func (s *Schedule) Faults() []Fault {
	if s == nil {
		return nil
	}
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	return out
}

// Check verifies that every fault's node and rail indices fit a cluster of
// the given shape.
func (s *Schedule) Check(nodes, rails int) error {
	if s == nil {
		return nil
	}
	for i, f := range s.faults {
		if f.Node >= nodes {
			return fmt.Errorf("faults: fault %d targets node %d, cluster has %d", i, f.Node, nodes)
		}
		if f.Rail >= rails {
			return fmt.Errorf("faults: fault %d targets rail %d, cluster has %d", i, f.Rail, rails)
		}
	}
	return nil
}

// RailState returns the combined bandwidth fraction of (node, rail) at
// virtual time t — 1 healthy, 0 down, in between degraded (overlapping
// degradations compound multiplicatively) — and the horizon until which
// that fraction holds. The pair is exactly the piecewise-constant rate
// profile sim.Resource.SetRate consumes.
func (s *Schedule) RailState(node, rail int, t sim.Time) (frac float64, until sim.Time) {
	frac, until = 1, Forever
	if s == nil {
		return
	}
	for _, f := range s.faults {
		if !f.applies(node, rail) {
			continue
		}
		ff, fu := f.state(t)
		frac *= ff
		if fu < until {
			until = fu
		}
	}
	return
}

// Fraction returns the bandwidth fraction of (node, rail) at t.
func (s *Schedule) Fraction(node, rail int, t sim.Time) float64 {
	f, _ := s.RailState(node, rail, t)
	return f
}

// Up reports whether (node, rail) can carry traffic at t.
func (s *Schedule) Up(node, rail int, t sim.Time) bool {
	return s.Fraction(node, rail, t) > 0
}

// NextUp returns the earliest time >= t at which (node, rail) carries
// traffic again, or Forever if it never recovers.
func (s *Schedule) NextUp(node, rail int, t sim.Time) sim.Time {
	for i := 0; i < 1<<20; i++ {
		frac, until := s.RailState(node, rail, t)
		if frac > 0 {
			return t
		}
		if until >= Forever {
			return Forever
		}
		t = until
	}
	return Forever
}

// SteadyFraction reports the time-invariant bandwidth share of (node,
// rail): the product of the fractions of faults afflicting the rail for
// the entire run (From == 0, Until == Forever). Transient windows do not
// count — algorithm planners that must agree on a single number across
// ranks regardless of when each rank asks use this, leaving transient
// rerouting to the transport layer. A whole-run Flap contributes its
// duty-cycle average.
func (s *Schedule) SteadyFraction(node, rail int) float64 {
	if s == nil {
		return 1
	}
	frac := 1.0
	for _, f := range s.faults {
		if !f.applies(node, rail) || f.From != 0 || f.Until < Forever {
			continue
		}
		switch f.Kind {
		case Down:
			return 0
		case Degrade:
			frac *= f.Fraction
		case Flap:
			frac *= 1 - float64(f.DownFor)/float64(f.Period)
		}
	}
	return frac
}

// ExtraLatency sums the per-message startup penalties of every Latency
// fault active on (node, rail) at t.
func (s *Schedule) ExtraLatency(node, rail int, t sim.Time) sim.Duration {
	if s == nil {
		return 0
	}
	var extra sim.Duration
	for _, f := range s.faults {
		if f.Kind == Latency && f.applies(node, rail) && t >= f.From && t < f.Until {
			extra += f.Extra
		}
	}
	return extra
}

// Window is one maximal span of constant rail state, for rendering fault
// timelines into traces.
type Window struct {
	From, To sim.Time
	Fraction float64
	Extra    sim.Duration
}

// Windows enumerates the non-healthy windows of (node, rail) intersected
// with [from, to): every maximal span where the rail is down, degraded, or
// latency-elevated.
func (s *Schedule) Windows(node, rail int, from, to sim.Time) []Window {
	var out []Window
	if s == nil {
		return out
	}
	for t := from; t < to; {
		frac, until := s.RailState(node, rail, t)
		extra := s.ExtraLatency(node, rail, t)
		end := minTime(until, to)
		if frac < 1 || extra > 0 {
			if n := len(out); n > 0 && out[n-1].To == t &&
				out[n-1].Fraction == frac && out[n-1].Extra == extra {
				out[n-1].To = end // merge adjacent equal windows
			} else {
				out = append(out, Window{From: t, To: end, Fraction: frac, Extra: extra})
			}
		}
		if until >= Forever {
			break
		}
		t = until
	}
	return out
}

func (w Window) String() string {
	switch {
	case w.Fraction <= 0:
		return "down"
	case w.Fraction < 1 && w.Extra > 0:
		return fmt.Sprintf("%.0f%%+%v", w.Fraction*100, w.Extra)
	case w.Fraction < 1:
		return fmt.Sprintf("%.0f%% bw", w.Fraction*100)
	default:
		return fmt.Sprintf("+%v latency", w.Extra)
	}
}

// Spec renders the schedule in the textual format Parse accepts, one fault
// per line.
func (s *Schedule) String() string {
	if s == nil || len(s.faults) == 0 {
		return "(healthy)"
	}
	lines := make([]string, len(s.faults))
	for i, f := range s.faults {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// Random derives a schedule deterministically from a seed: each rail of
// each node independently draws one fault (or none) with windows inside
// [0, horizon). The same seed always yields the same schedule.
func Random(seed int64, nodes, rails int, horizon sim.Time) *Schedule {
	if horizon <= 0 {
		panic("faults: Random needs a positive horizon")
	}
	rng := rand.New(rand.NewSource(seed))
	span := func(lo, hi float64) (sim.Time, sim.Time) {
		h := float64(horizon)
		from := sim.Time(h * lo * rng.Float64())
		until := from + sim.Time(h*hi*(0.1+0.9*rng.Float64()))
		if until > horizon {
			until = horizon
		}
		return from, until
	}
	var fs []Fault
	for n := 0; n < nodes; n++ {
		for r := 0; r < rails; r++ {
			switch roll := rng.Float64(); {
			case roll < 0.4: // healthy rail
			case roll < 0.6:
				from, until := span(0.5, 0.5)
				fs = append(fs, Fault{Kind: Down, Node: n, Rail: r, From: from, Until: until})
			case roll < 0.8:
				from, until := span(0.3, 0.7)
				fs = append(fs, Fault{Kind: Degrade, Node: n, Rail: r,
					Fraction: 0.25 + 0.5*rng.Float64(), From: from, Until: until})
			default:
				from, _ := span(0.3, 0)
				period := sim.Duration(float64(horizon) * (0.05 + 0.15*rng.Float64()))
				fs = append(fs, Fault{Kind: Flap, Node: n, Rail: r,
					Period: period, DownFor: sim.Duration(float64(period) * (0.2 + 0.3*rng.Float64())),
					From: from, Until: horizon})
			}
		}
	}
	s, err := New(fs...)
	if err != nil {
		panic(err) // generator bug, not user input
	}
	return s
}
