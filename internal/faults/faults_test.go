package faults

import (
	"strings"
	"testing"

	"mha/internal/sim"
)

const (
	us = sim.Time(1000)
	ms = 1000 * us
)

func TestRailStateDownWindow(t *testing.T) {
	s := MustNew(Fault{Kind: Down, Node: 0, Rail: 1, From: 10 * us, Until: 20 * us})

	if f, until := s.RailState(0, 1, 0); f != 1 || until != 10*us {
		t.Fatalf("before window: frac=%v until=%v", f, until)
	}
	if f, until := s.RailState(0, 1, 10*us); f != 0 || until != 20*us {
		t.Fatalf("inside window: frac=%v until=%v", f, until)
	}
	if f, until := s.RailState(0, 1, 20*us); f != 1 || until != Forever {
		t.Fatalf("after window: frac=%v until=%v", f, until)
	}
	// Other rails and nodes are untouched.
	if f, _ := s.RailState(0, 0, 15*us); f != 1 {
		t.Fatalf("rail 0 affected: frac=%v", f)
	}
	if f, _ := s.RailState(1, 1, 15*us); f != 1 {
		t.Fatalf("node 1 affected: frac=%v", f)
	}
}

func TestRailStateWildcardsAndOverlap(t *testing.T) {
	s := MustNew(
		Fault{Kind: Degrade, Node: AllNodes, Rail: 0, Fraction: 0.5, From: 0, Until: ms},
		Fault{Kind: Degrade, Node: 2, Rail: AllRails, Fraction: 0.5, From: 0, Until: ms},
	)
	if f, _ := s.RailState(1, 0, 0); f != 0.5 {
		t.Fatalf("node1.rail0 frac=%v, want 0.5", f)
	}
	// Overlapping degrades compound multiplicatively.
	if f, _ := s.RailState(2, 0, 0); f != 0.25 {
		t.Fatalf("node2.rail0 frac=%v, want 0.25", f)
	}
	if f, _ := s.RailState(2, 1, 0); f != 0.5 {
		t.Fatalf("node2.rail1 frac=%v, want 0.5", f)
	}
}

func TestFlapPhases(t *testing.T) {
	// down 50us at the start of each 200us period, from 100us.
	s := MustNew(Fault{Kind: Flap, Node: 0, Rail: 0,
		Period: sim.Duration(200 * us), DownFor: sim.Duration(50 * us),
		From: 100 * us, Until: Forever})

	cases := []struct {
		t     sim.Time
		frac  float64
		until sim.Time
	}{
		{0, 1, 100 * us},        // before the fault
		{100 * us, 0, 150 * us}, // first down phase
		{149 * us, 0, 150 * us},
		{150 * us, 1, 300 * us}, // first up phase
		{299 * us, 1, 300 * us},
		{300 * us, 0, 350 * us}, // second cycle
	}
	for _, c := range cases {
		if f, u := s.RailState(0, 0, c.t); f != c.frac || u != c.until {
			t.Errorf("t=%v: frac=%v until=%v, want %v, %v", c.t, f, u, c.frac, c.until)
		}
	}
}

func TestNextUp(t *testing.T) {
	s := MustNew(
		Fault{Kind: Down, Node: 0, Rail: 0, From: 0, Until: 10 * us},
		Fault{Kind: Down, Node: 0, Rail: 1, From: 0, Until: Forever},
	)
	if up := s.NextUp(0, 0, 0); up != 10*us {
		t.Fatalf("NextUp rail0 = %v, want 10us", up)
	}
	if up := s.NextUp(0, 0, 15*us); up != 15*us {
		t.Fatalf("NextUp when already up = %v, want 15us", up)
	}
	if up := s.NextUp(0, 1, 0); up != Forever {
		t.Fatalf("NextUp permanently-down rail = %v, want Forever", up)
	}
}

func TestExtraLatency(t *testing.T) {
	s := MustNew(
		Fault{Kind: Latency, Node: 0, Rail: 0, Extra: 5000, From: 0, Until: ms},
		Fault{Kind: Latency, Node: AllNodes, Rail: AllRails, Extra: 1000, From: 0, Until: ms},
	)
	if e := s.ExtraLatency(0, 0, 0); e != 6000 {
		t.Fatalf("latency = %v, want 6000 (stacked)", e)
	}
	if e := s.ExtraLatency(1, 0, 0); e != 1000 {
		t.Fatalf("latency other node = %v, want 1000", e)
	}
	if e := s.ExtraLatency(0, 0, ms); e != 0 {
		t.Fatalf("latency after window = %v, want 0", e)
	}
	// Latency faults don't touch bandwidth.
	if f, _ := s.RailState(0, 0, 0); f != 1 {
		t.Fatalf("latency fault changed fraction to %v", f)
	}
}

func TestWindows(t *testing.T) {
	s := MustNew(
		Fault{Kind: Down, Node: 0, Rail: 0, From: 10 * us, Until: 20 * us},
		Fault{Kind: Degrade, Node: 0, Rail: 0, Fraction: 0.5, From: 30 * us, Until: 40 * us},
	)
	ws := s.Windows(0, 0, 0, 100*us)
	if len(ws) != 2 {
		t.Fatalf("windows = %v, want 2", ws)
	}
	if ws[0].From != 10*us || ws[0].To != 20*us || ws[0].Fraction != 0 {
		t.Errorf("window 0 = %+v", ws[0])
	}
	if ws[1].From != 30*us || ws[1].To != 40*us || ws[1].Fraction != 0.5 {
		t.Errorf("window 1 = %+v", ws[1])
	}
	// Clamped to the query range.
	if ws := s.Windows(0, 0, 0, 15*us); len(ws) != 1 || ws[0].To != 15*us {
		t.Errorf("clamped windows = %v", ws)
	}
	if ws := s.Windows(1, 1, 0, 100*us); len(ws) != 0 {
		t.Errorf("healthy rail windows = %v", ws)
	}
}

func TestValidation(t *testing.T) {
	bad := []Fault{
		{Kind: Degrade, Fraction: 0},                // fraction out of range
		{Kind: Degrade, Fraction: 1},                // fraction out of range
		{Kind: Latency},                             // no extra
		{Kind: Flap, Period: 100, DownFor: 100},     // down == period
		{Kind: Flap, Period: 0, DownFor: 10},        // no period
		{Kind: Down, From: 20 * us, Until: 10 * us}, // empty window
		{Kind: Down, Node: -7},                      // bad node
		{Kind: Kind(42)},                            // unknown kind
	}
	for i, f := range bad {
		if _, err := New(f); err == nil {
			t.Errorf("fault %d (%+v) validated, want error", i, f)
		}
	}
	if _, err := New(Fault{Kind: Down, Node: 0, Rail: 0}); err != nil {
		t.Errorf("open-ended down fault rejected: %v", err)
	}
}

func TestCheckAgainstCluster(t *testing.T) {
	s := MustNew(Fault{Kind: Down, Node: 3, Rail: 1})
	if err := s.Check(4, 2); err != nil {
		t.Fatalf("in-range fault rejected: %v", err)
	}
	if err := s.Check(3, 2); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := s.Check(4, 1); err == nil {
		t.Fatal("out-of-range rail accepted")
	}
	var nilSched *Schedule
	if err := nilSched.Check(1, 1); err != nil {
		t.Fatalf("nil schedule Check: %v", err)
	}
}

func TestNilScheduleIsHealthy(t *testing.T) {
	var s *Schedule
	if s.Len() != 0 {
		t.Fatal("nil schedule has faults")
	}
	if f, until := s.RailState(0, 0, 0); f != 1 || until != Forever {
		t.Fatalf("nil schedule state = %v, %v", f, until)
	}
	if !s.Up(0, 0, 0) {
		t.Fatal("nil schedule rail down")
	}
	if s.String() != "(healthy)" {
		t.Fatalf("nil schedule String = %q", s.String())
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := `
# a comment
down    node=0 rail=1 from=10us until=2ms
degrade node=* rail=1 frac=0.5
latency node=2 rail=* extra=5us from=1ms until=forever
flap    node=1 rail=0 period=200us down=50us
`
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("parsed %d faults, want 4", s.Len())
	}
	fs := s.Faults()
	if fs[0].Kind != Down || fs[0].Node != 0 || fs[0].Rail != 1 ||
		fs[0].From != 10*us || fs[0].Until != 2*ms {
		t.Errorf("fault 0 = %+v", fs[0])
	}
	if fs[1].Kind != Degrade || fs[1].Node != AllNodes || fs[1].Fraction != 0.5 ||
		fs[1].Until != Forever {
		t.Errorf("fault 1 = %+v", fs[1])
	}
	// String() renders in the format Parse accepts.
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parsing String(): %v\n%s", err, s.String())
	}
	if s2.String() != s.String() {
		t.Fatalf("round trip changed:\n%s\nvs\n%s", s.String(), s2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"explode node=0",        // unknown kind
		"down node=x",           // bad index
		"down from=banana",      // bad duration
		"down node=0 rail",      // malformed field
		"down wat=1",            // unknown key
		"degrade node=0 rail=0", // missing frac fails validation
		"down from=-5us",        // negative duration
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(42, 4, 2, ms)
	b := Random(42, 4, 2, ms)
	if a.String() != b.String() {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a, b)
	}
	c := Random(43, 4, 2, ms)
	if a.String() == c.String() && a.Len() > 0 {
		t.Fatal("different seeds produced identical non-empty schedules")
	}
	if err := a.Check(4, 2); err != nil {
		t.Fatalf("random schedule out of range: %v", err)
	}
}

func TestScheduleStringMentionsEveryFault(t *testing.T) {
	s := MustNew(
		Fault{Kind: Down, Node: 0, Rail: 0, From: us},
		Fault{Kind: Flap, Node: 1, Rail: 1, Period: 1000, DownFor: 100},
	)
	str := s.String()
	for _, want := range []string{"down", "flap", "period=1us", "until=forever"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}
