package faults

import (
	"strings"
	"testing"
)

// FuzzParseSpec drives the fault-schedule spec parser with arbitrary
// input. Properties: Parse never panics; whatever it accepts validates,
// renders via String() in a form Parse accepts again, and that render is
// a fixed point (String -> Parse -> String is identity).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"down node=0 rail=1 from=10us until=2ms",
		"degrade node=* rail=1 frac=0.5",
		"latency node=2 rail=* extra=5us from=1ms until=forever",
		"flap node=1 rail=0 period=200us down=50us",
		"# a comment\n\ndown    node=0 rail=1 until=40us\ndegrade node=* rail=1 frac=0.5 from=40us",
		"down node=0 rail=1 until=40us # trailing comment",
		"explode node=0",
		"down node=x",
		"down from=banana",
		"down node=0 rail",
		"down wat=1",
		"degrade node=0 rail=0",
		"down from=-5us",
		"flap period=0s down=0s",
		"degrade frac=1.5",
		"latency extra=9223372036854775807ns",
		"down from=2ms until=1ms",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		if s.Len() == 0 {
			return // empty schedules render as "(healthy)", which Parse rejects
		}
		rendered := s.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() output does not re-parse: %v\ninput: %q\nrendered:\n%s", err, text, rendered)
		}
		if s2.String() != rendered {
			t.Fatalf("String/Parse not a fixed point:\nfirst:  %s\nsecond: %s", rendered, s2.String())
		}
		if s2.Len() != s.Len() {
			t.Fatalf("round trip changed fault count: %d -> %d", s.Len(), s2.Len())
		}
		// Accepted schedules must be internally consistent: every fault's
		// textual form is one line of the render.
		if got := len(strings.Split(rendered, "\n")); got != s.Len() {
			t.Fatalf("render has %d lines for %d faults", got, s.Len())
		}
	})
}
