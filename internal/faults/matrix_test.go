// Correctness under fault: every allgather variant must deliver byte-
// identical results under every fault schedule — faults may slow the
// machine, never corrupt it — and repeated seeded runs must be
// bit-identical in virtual time.
package faults_test

import (
	"fmt"
	"testing"

	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/faults"
	"mha/internal/mpi"
	"mha/internal/sim"
	"mha/internal/topology"
)

func pattern(r, m int) []byte {
	b := make([]byte, m)
	for i := range b {
		b[i] = byte(r*131 + i*7 + 3)
	}
	return b
}

func expected(n, m int) []byte {
	out := make([]byte, 0, n*m)
	for r := 0; r < n; r++ {
		out = append(out, pattern(r, m)...)
	}
	return out
}

var variants = map[string]func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf){
	"mha":       core.MHAAllgather,
	"two-level": collectives.KandallaAllgather,
	"multi-leader": func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		collectives.MultiLeaderAllgather(p, w, send, recv, 2)
	},
	"ring": func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		collectives.RingAllgather(p, w.CommWorld(), send, recv)
	},
}

func schedules() map[string]*faults.Schedule {
	const us = sim.Time(sim.Microsecond)
	return map[string]*faults.Schedule{
		"healthy": nil,
		"rail-down-window": faults.MustNew(
			faults.Fault{Kind: faults.Down, Node: 0, Rail: 1, From: 5 * us, Until: 400 * us}),
		"rail-down-forever": faults.MustNew(
			faults.Fault{Kind: faults.Down, Node: 0, Rail: 1}),
		"degraded-half": faults.MustNew(
			faults.Fault{Kind: faults.Degrade, Node: faults.AllNodes, Rail: 1, Fraction: 0.5}),
		"latency-spike": faults.MustNew(
			faults.Fault{Kind: faults.Latency, Node: 0, Rail: faults.AllRails,
				Extra: 5 * sim.Microsecond, Until: 300 * us}),
		"flapping": faults.MustNew(
			faults.Fault{Kind: faults.Flap, Node: 1, Rail: 0,
				Period: 60 * sim.Microsecond, DownFor: 15 * sim.Microsecond}),
		"random-42": faults.Random(42, 2, 2, 2000*us),
	}
}

// runVariant executes one collective on a faulted world and checks every
// rank's bytes against the oracle, returning the completion time.
func runVariant(t *testing.T, alg func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf),
	sched *faults.Schedule, blind bool, m int) sim.Time {
	t.Helper()
	w := mpi.New(mpi.Config{
		Topo:       topology.New(2, 4, 2),
		Faults:     sched,
		FaultBlind: blind,
		Seed:       1,
	})
	n := w.Topo().Size()
	want := expected(n, m)
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		send := mpi.Bytes(pattern(p.Rank(), m))
		recv := mpi.NewBuf(n * m)
		alg(p, w, send, recv)
		if got := string(recv.Data()); got != string(want) {
			t.Errorf("rank %d: wrong bytes under fault", p.Rank())
		}
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return worst
}

func TestAllgatherVariantsCorrectUnderEveryFault(t *testing.T) {
	const m = 32 << 10
	for vName, alg := range variants {
		for sName, sched := range schedules() {
			t.Run(fmt.Sprintf("%s/%s", vName, sName), func(t *testing.T) {
				end := runVariant(t, alg, sched, false, m)
				// Same schedule, same seed: bit-identical timing.
				if again := runVariant(t, alg, sched, false, m); again != end {
					t.Fatalf("nondeterministic under fault: %v vs %v", end, again)
				}
			})
		}
	}
}

func TestFaultBlindStillCorrect(t *testing.T) {
	// Health-blind selection queues on degraded rails but must never
	// corrupt data either.
	sched := schedules()["degraded-half"]
	for vName, alg := range variants {
		t.Run(vName, func(t *testing.T) {
			runVariant(t, alg, sched, true, 32<<10)
		})
	}
}

func TestFaultsOnlyEverSlowDown(t *testing.T) {
	// A faulted run can never beat the healthy run of the same algorithm.
	const m = 64 << 10
	for vName, alg := range variants {
		t.Run(vName, func(t *testing.T) {
			healthy := runVariant(t, alg, nil, false, m)
			for sName, sched := range schedules() {
				if sched == nil {
					continue
				}
				if end := runVariant(t, alg, sched, false, m); end < healthy {
					t.Errorf("%s under %s finished at %v, faster than healthy %v",
						vName, sName, end, healthy)
				}
			}
		})
	}
}
