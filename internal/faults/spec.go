package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mha/internal/sim"
)

// Parse reads the textual fault-schedule format: one fault per line,
//
//	down    node=0 rail=1 from=10us until=2ms
//	degrade node=* rail=1 frac=0.5
//	latency node=2 rail=* extra=5us from=1ms
//	flap    node=1 rail=0 period=200us down=50us until=forever
//
// Keys may appear in any order. node/rail default to * (every node/rail),
// from defaults to 0 and until to forever. Durations use Go syntax
// (ns/us/ms/s). Blank lines and #-comments are skipped.
func Parse(text string) (*Schedule, error) {
	var fs []Fault
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		f, err := parseFault(fields)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", ln+1, err)
		}
		fs = append(fs, f)
	}
	return New(fs...)
}

func parseFault(fields []string) (Fault, error) {
	f := Fault{Node: AllNodes, Rail: AllRails, Until: Forever}
	switch fields[0] {
	case "down":
		f.Kind = Down
	case "degrade":
		f.Kind = Degrade
	case "latency":
		f.Kind = Latency
	case "flap":
		f.Kind = Flap
	default:
		return f, fmt.Errorf("unknown fault kind %q (want down|degrade|latency|flap)", fields[0])
	}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return f, fmt.Errorf("malformed field %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "node":
			f.Node, err = parseIndex(val)
		case "rail":
			f.Rail, err = parseIndex(val)
		case "from":
			var d sim.Duration
			d, err = parseDuration(val)
			f.From = sim.Time(d)
		case "until":
			if val == "forever" {
				f.Until = Forever
			} else {
				var d sim.Duration
				d, err = parseDuration(val)
				f.Until = sim.Time(d)
			}
		case "frac":
			f.Fraction, err = strconv.ParseFloat(val, 64)
		case "extra":
			f.Extra, err = parseDuration(val)
		case "period":
			f.Period, err = parseDuration(val)
		case "down":
			f.DownFor, err = parseDuration(val)
		default:
			return f, fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return f, fmt.Errorf("field %q: %w", kv, err)
		}
	}
	return f, nil
}

func parseIndex(s string) (int, error) {
	if s == "*" {
		return -1, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("want a non-negative index or *, have %q", s)
	}
	return v, nil
}

func parseDuration(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("want a non-negative duration (e.g. 50us), have %q", s)
	}
	return sim.Duration(d.Nanoseconds()), nil
}

// specDuration renders a duration in the most compact unit Parse accepts.
func specDuration(d sim.Duration) string {
	switch {
	case d%sim.Millisecond == 0 && d != 0:
		return fmt.Sprintf("%dms", d/sim.Millisecond)
	case d%sim.Microsecond == 0 && d != 0:
		return fmt.Sprintf("%dus", d/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

func specTime(t sim.Time) string { return specDuration(sim.Duration(t)) }
