package lint

import (
	"go/ast"
	"go/types"
)

// detnow forbids wall-clock time and the process-global math/rand source
// in simulator code. The engine guarantees bit-identical replays only if
// every input is part of the scenario: time must be sim virtual time, and
// randomness must flow from an explicit seed through rand.New, so the
// same seed always yields the same trace hash.
var detnowPass = &Pass{
	Name: "detnow",
	Doc:  "forbid wall-clock time and unseeded global math/rand in simulator code",
	Scope: scopeIn(
		"internal/sim", "internal/mpi", "internal/sched",
		"internal/cluster", "internal/collectives", "internal/explore",
		"internal/compose", "internal/fabric",
	),
	Run: runDetnow,
}

// detnowTime lists the time package's nondeterministic entry points.
// Constants (time.Millisecond, ...) and pure converters stay legal.
var detnowTime = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// detnowRandOK lists the math/rand (and v2) package-level functions that
// construct explicitly seeded generators rather than touching the global
// source.
var detnowRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors, should the tree ever migrate.
	"NewPCG": true, "NewChaCha8": true,
}

func runDetnow(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := u.Info.Uses[base].(*types.PkgName)
			if !ok {
				return true
			}
			// Type and constant references (rand.Rand, time.Duration,
			// time.Millisecond) are deterministic; only the functions that
			// touch the wall clock or the global source matter.
			if _, isType := u.Info.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if detnowTime[name] {
					out = append(out, diag(u, sel, "detnow",
						"time.%s reads the wall clock; simulator code must use sim virtual time (Proc.Now/Sleep)", name))
				}
			case "math/rand", "math/rand/v2":
				if !detnowRandOK[name] {
					out = append(out, diag(u, sel, "detnow",
						"rand.%s uses the process-global source; draw from a seeded rand.New(rand.NewSource(seed)) so runs replay bit-identically", name))
				}
			}
			return true
		})
	}
	return out
}
