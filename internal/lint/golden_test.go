package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the pass golden files")

// TestPassGoldens pins the exact diagnostics every pass emits on its
// fixture package (testdata/src/<pass>), one golden file per pass,
// matching the bench golden convention: re-record deliberately with
//
//	go test ./internal/lint -run TestPassGoldens -update
//
// Each fixture pairs firing files (fire.go, bad.go) with a non-firing
// ok.go, so the golden proves both that violations are caught and that
// the blessed patterns stay silent.
func TestPassGoldens(t *testing.T) {
	for _, pass := range Passes() {
		pass := pass
		t.Run(pass.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", pass.Name)
			units, err := Load([]string{dir})
			if err != nil {
				t.Fatalf("loading fixture %s: %v", dir, err)
			}
			passes := []*Pass{pass}
			if pass.Name == "suppaudit" {
				// Staleness is only judged for directives whose named
				// passes all ran, so the audit fixture needs the full
				// suite: its live suppression must genuinely suppress.
				passes = Passes()
			}
			diags := Check(units, passes)
			var buf bytes.Buffer
			for _, d := range diags {
				rel, err := filepath.Rel(dir, d.Pos.Filename)
				if err != nil {
					rel = d.Pos.Filename
				}
				fmt.Fprintf(&buf, "%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
				if strings.HasPrefix(rel, "ok.go") {
					t.Errorf("non-firing fixture ok.go produced a diagnostic: %s", d)
				}
			}
			if buf.Len() == 0 {
				t.Errorf("pass %s produced no diagnostics on its firing fixture", pass.Name)
			}
			path := filepath.Join("testdata", "golden", pass.Name+".golden")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden for %s (record with -update): %v", pass.Name, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("pass %s diagnostics drifted from golden:\n--- golden ---\n%s--- got ---\n%s",
					pass.Name, want, buf.Bytes())
			}
		})
	}
}
