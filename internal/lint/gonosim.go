package lint

import (
	"go/ast"
)

// gonosim forbids raw `go` statements in simulator-process code. The
// engine owns concurrency: it serializes process execution and orders
// simultaneous events by sequence number, which is what makes traces
// hash-identical across runs. A goroutine the engine does not know
// about races the virtual clock and destroys that guarantee — sim
// processes must be spawned with Engine.Spawn and communicate through
// mailboxes/counters. The engine's own worker goroutine in
// internal/sim carries a //lint:ignore with its justification.
var gonosimPass = &Pass{
	Name: "gonosim",
	Doc:  "no raw goroutines in sim-proc code; use Engine.Spawn and mailboxes",
	Scope: scopeIn(
		"internal/sim", "internal/mpi", "internal/sched", "internal/cluster",
		"internal/collectives", "internal/core", "internal/verify",
		"internal/explore", "internal/compose", "internal/fabric",
	),
	Run: runGonosim,
}

func runGonosim(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				out = append(out, diag(u, g, "gonosim",
					"raw goroutine bypasses the engine's deterministic scheduler; spawn sim processes with Engine.Spawn and coordinate via mailboxes"))
			}
			return true
		})
	}
	return out
}
