package lint

import (
	"strings"
)

// The //lint: directive family. Parsing lives here, apart from the
// driver, so the fuzz target can hammer it directly:
//
//	//lint:ignore <pass>[,<pass>...] <reason>   silence one line
//	//lint:pure [note]                          mark the next function a purity root
//
// A directive is recognized by its "lint:" prefix after the comment
// marker; everything else in a comment is prose.

const (
	ignorePrefix = "lint:ignore"
	purePrefix   = "lint:pure"
)

// directiveKind discriminates parsed //lint: directives.
type directiveKind int

const (
	directiveNone   directiveKind = iota // not a lint directive at all
	directiveIgnore                      // valid //lint:ignore
	directivePure                        // valid //lint:pure
	directiveBad                         // a lint directive that fails its contract
)

// directive is the parse of one comment's text.
type directive struct {
	kind    directiveKind
	passes  []string // for ignore: the named passes, in written order
	reason  string   // for ignore: the mandatory justification; for pure: the optional note
	problem string   // for bad: what is wrong, in the diagnostic's words
}

// parseDirective parses one comment's raw text (as go/ast delivers it,
// leading // or /* included). Comments that are not lint directives
// return kind directiveNone. Malformed directives return directiveBad
// with a problem message; they must suppress nothing.
func parseDirective(text string) directive {
	body, ok := commentBody(text)
	if !ok {
		return directive{kind: directiveNone}
	}
	switch {
	case strings.HasPrefix(body, ignorePrefix):
		return parseIgnore(strings.TrimPrefix(body, ignorePrefix))
	case strings.HasPrefix(body, purePrefix):
		rest := strings.TrimPrefix(body, purePrefix)
		if rest != "" && !startsWithSpace(rest) {
			return directive{kind: directiveNone} // e.g. lint:purely — not ours
		}
		return directive{kind: directivePure, reason: strings.TrimSpace(rest)}
	case strings.HasPrefix(body, "lint:"):
		word := strings.Fields(strings.TrimPrefix(body, "lint:"))
		name := ""
		if len(word) > 0 {
			name = word[0]
		}
		return directive{kind: directiveBad,
			problem: "unknown //lint: directive " + strconvQuote(name) + " (have lint:ignore, lint:pure)"}
	default:
		return directive{kind: directiveNone}
	}
}

// parseIgnore parses the remainder of an ignore directive after the
// prefix: a comma-separated pass list and a non-empty reason.
func parseIgnore(rest string) directive {
	if rest != "" && !startsWithSpace(rest) {
		return directive{kind: directiveNone} // e.g. lint:ignoreme — not ours
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return directive{kind: directiveBad,
			problem: "//lint:ignore needs a pass name and a non-empty reason: //lint:ignore <pass> <why this is safe>"}
	}
	var passes []string
	for _, name := range strings.Split(fields[0], ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return directive{kind: directiveBad,
				problem: "//lint:ignore has an empty entry in its pass list " + strconvQuote(fields[0])}
		}
		passes = append(passes, name)
	}
	return directive{
		kind:   directiveIgnore,
		passes: passes,
		reason: strings.Join(fields[1:], " "),
	}
}

// commentBody strips the comment marker and leading CR/whitespace noise
// down to the directive text. Directives must start immediately after //
// (the gofmt convention for machine-readable comments); block comments
// are never directives.
func commentBody(text string) (string, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return "", false // /* ... */ comments are prose
	}
	body = strings.TrimSuffix(body, "\r")
	if !strings.HasPrefix(body, "lint:") {
		return "", false
	}
	return body, true
}

func startsWithSpace(s string) bool {
	return len(s) > 0 && (s[0] == ' ' || s[0] == '\t' || s[0] == '\r' || s[0] == '\n')
}

// strconvQuote is a tiny local %q to keep the parser allocation-light
// under fuzzing.
func strconvQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
