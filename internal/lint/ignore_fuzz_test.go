package lint

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseIgnore hammers the //lint: directive parser with arbitrary
// comment text and checks its contract rather than specific outputs:
// it never panics, is deterministic, and every parse lands in exactly
// one well-formed state (an ignore has passes and a reason, a bad
// directive has a problem, prose has neither).
func FuzzParseIgnore(f *testing.F) {
	seeds := []string{
		"//lint:ignore detnow cache warmup is wall-clock by design",
		"//lint:ignore detnow,maporder two passes one line",
		"//lint:ignore detnow",             // missing reason
		"//lint:ignore",                    // missing everything
		"//lint:ignore  ",                  // trailing whitespace only
		"//lint:ignore ,detnow why",        // empty pass-list entry
		"//lint:ignore detnow,,gonosim w",  // empty middle entry
		"//lint:ignoreme not a directive",  // prefix must be word-final
		"//lint:pure",                      // bare pure marker
		"//lint:pure keys must be stable",  // pure with a note
		"//lint:purely adverbs are prose",  // not a pure directive
		"//lint:frobnicate unknown verb",   // unknown directive
		"//lint:",                          // bare namespace
		"// lint:ignore detnow spaced out", // space before lint: is prose
		"//lint:ignore detnow why\r",       // CRLF leftovers
		"//lint:ignore\tdetnow\ttabbed reason",
		"/*lint:ignore detnow block comments are prose*/",
		"//",
		"",
		"//lint:ignore detnow \x00 control bytes",
		"//lint:ignore " + strings.Repeat("p,", 100) + "p long list",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d1 := parseDirective(text)
		d2 := parseDirective(text)
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("parseDirective is nondeterministic on %q: %+v vs %+v", text, d1, d2)
		}
		switch d1.kind {
		case directiveIgnore:
			if len(d1.passes) == 0 {
				t.Errorf("valid ignore with no passes: %q", text)
			}
			for _, p := range d1.passes {
				if p == "" || strings.ContainsAny(p, " \t\r\n") {
					t.Errorf("pass name %q not a clean token from %q", p, text)
				}
			}
			if d1.reason == "" {
				t.Errorf("valid ignore with empty reason: %q", text)
			}
			if d1.problem != "" {
				t.Errorf("valid ignore carries a problem: %q -> %q", text, d1.problem)
			}
		case directiveBad:
			if d1.problem == "" {
				t.Errorf("bad directive with no problem text: %q", text)
			}
		case directiveNone, directivePure:
			if d1.problem != "" || len(d1.passes) != 0 {
				t.Errorf("%v directive carries ignore fields: %q -> %+v", d1.kind, text, d1)
			}
		default:
			t.Errorf("unknown directive kind %v from %q", d1.kind, text)
		}
		// A directive only ever comes from a line comment that starts
		// with the namespace immediately after the marker.
		if d1.kind != directiveNone && !strings.HasPrefix(text, "//lint:") {
			t.Errorf("non-comment text parsed as a directive: %q -> %+v", text, d1)
		}
	})
}
