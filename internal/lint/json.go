package lint

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
)

// Machine-readable output and the accepted-findings baseline. Both
// renderings are byte-deterministic: Check returns diagnostics in a
// total order, the JSON encoder walks structs (not maps), and baselines
// are sorted and deduplicated — so CI can diff either against a checked-
// in file without normalization.

// jsonDiagnostic is the wire form of one finding.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// jsonReport is the wire form of one run.
type jsonReport struct {
	Passes   []string         `json:"passes"`
	Findings []jsonDiagnostic `json:"findings"`
}

// RenderJSON encodes a run's findings (as returned by Check, already
// sorted) with the pass names that ran. The output ends in a newline and
// is byte-identical for identical inputs.
func RenderJSON(passNames []string, diags []Diagnostic) []byte {
	rep := jsonReport{Passes: passNames, Findings: []jsonDiagnostic{}}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Pass: d.Pass, Message: d.Message,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		// Plain structs of strings and ints cannot fail to encode.
		panic("lint: rendering JSON: " + err.Error())
	}
	return buf.Bytes()
}

// Fingerprint is a finding's baseline identity: file, pass, and message,
// without the line and column. Accepted findings therefore survive
// unrelated edits that shift line numbers; any change to the message (or
// a second identical finding in the same file) surfaces as new.
func Fingerprint(d Diagnostic) string {
	return d.Pos.Filename + "\t" + d.Pass + "\t" + d.Message
}

// ParseBaseline reads a baseline file: one fingerprint per line, blank
// lines and #-comments ignored.
func ParseBaseline(data []byte) map[string]bool {
	base := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	return base
}

// FormatBaseline renders findings as a baseline file.
func FormatBaseline(diags []Diagnostic) []byte {
	seen := map[string]bool{}
	var lines []string
	for _, d := range diags {
		fp := Fingerprint(d)
		if !seen[fp] {
			seen[fp] = true
			lines = append(lines, fp)
		}
	}
	sort.Strings(lines)
	var buf bytes.Buffer
	buf.WriteString("# mhalint baseline: accepted findings, one per line (file<TAB>pass<TAB>message).\n")
	buf.WriteString("# Regenerate with: go run ./cmd/mhalint -write-baseline lint.baseline ./...\n")
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteString("\n")
	}
	return buf.Bytes()
}

// ApplyBaseline splits findings into new (not in the baseline) and
// accepted. Baseline entries that matched nothing are stale but not an
// error — regenerating the file cleans them up.
func ApplyBaseline(diags []Diagnostic, base map[string]bool) (fresh, accepted []Diagnostic) {
	for _, d := range diags {
		if base[Fingerprint(d)] {
			accepted = append(accepted, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, accepted
}
