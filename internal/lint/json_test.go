package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRenderJSONGolden pins the -json wire format byte for byte: CI
// diffs this output against a checked-in baseline, so any drift —
// field order, indentation, escaping — must be a deliberate,
// golden-updating change.
func TestRenderJSONGolden(t *testing.T) {
	units, err := Load([]string{filepath.Join("testdata", "src", "waitpair")})
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(units, []*Pass{waitpairPass})
	got := RenderJSON([]string{"waitpair"}, diags)
	if again := RenderJSON([]string{"waitpair"}, diags); !bytes.Equal(got, again) {
		t.Fatal("RenderJSON is not byte-deterministic across calls")
	}

	path := filepath.Join("testdata", "golden", "json.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing JSON golden (record with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON output drifted from golden:\n--- golden ---\n%s--- got ---\n%s", want, got)
	}
}

// TestBaselineRoundTrip: accepting the current findings into a baseline
// must make the same run come back clean, and the baseline must be
// line-drift-robust (fingerprints carry no line numbers).
func TestBaselineRoundTrip(t *testing.T) {
	units, err := Load([]string{filepath.Join("testdata", "src", "waitpair")})
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(units, []*Pass{waitpairPass})
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings to baseline")
	}

	base := ParseBaseline(FormatBaseline(diags))
	fresh, accepted := ApplyBaseline(diags, base)
	if len(fresh) != 0 {
		t.Errorf("%d findings survived their own baseline: %v", len(fresh), fresh)
	}
	if len(accepted) != len(diags) {
		t.Errorf("accepted %d of %d findings", len(accepted), len(diags))
	}

	shifted := diags[0]
	shifted.Pos.Line += 40
	shifted.Pos.Column += 3
	if f, _ := ApplyBaseline([]Diagnostic{shifted}, base); len(f) != 0 {
		t.Error("baseline match must survive line/column drift")
	}

	reworded := diags[0]
	reworded.Message += " (now different)"
	if f, _ := ApplyBaseline([]Diagnostic{reworded}, base); len(f) != 1 {
		t.Error("a changed message must count as a new finding")
	}
}
