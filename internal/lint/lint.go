// Package lint implements mhalint, a stdlib-only static-analysis suite
// that proves the simulator's determinism and resource-discipline rules
// at build time (go/ast + go/parser + go/types; no external modules).
//
// The runtime audits — CheckQuiescent, VerifyTeardown, the verification
// campaign's trace-hash cross-check — catch invariant violations only on
// the scenarios a run happens to execute. The passes here encode the same
// contracts as compile-time rules over the whole tree:
//
//	detnow      no wall-clock or process-global randomness in sim code
//	maporder    no map iteration with order-dependent effects
//	waitpair    every Isend/Irecv result reaches a Wait/Waitall, tracked
//	            through helpers via call-graph summaries
//	railpin     rail pinning comes from planning, not hardwired constants
//	gonosim     no raw goroutines where the engine must own scheduling
//	sharedstate no mutable value shared across sim procs except through
//	            engine-owned types (Resource, Mailbox, Counter, Gauge)
//	purity      //lint:pure roots are transitively free of wall-clock,
//	            global-randomness, and map-order effects
//	locklint    every mutex unlocks on all paths and is never held
//	            across a simulation or synthesis call
//	suppaudit   no //lint:ignore directive that suppresses nothing
//
// The first six are unit passes (one package at a time); waitpair,
// sharedstate, purity, and locklint run over a whole Program — the call
// graph and capture analysis built in program.go — so helpers, closures,
// and cross-package call chains are inside the proof, not exempt from it.
//
// A finding can be silenced for one line with
//
//	//lint:ignore <pass> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: a suppression without one is itself reported, and a
// suppression that no longer suppresses anything is reported by
// suppaudit. A function can be declared a purity root with //lint:pure
// on the line above its declaration.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// A Pass is one analysis. Scope selects the packages it applies to by
// import path; every pass additionally applies to its own fixture package
// under internal/lint/testdata/src/<name>. Exactly one of Run (unit at a
// time) and RunProgram (whole loaded program at once) is set, except for
// suppaudit, which the driver implements itself from the other passes'
// results.
type Pass struct {
	Name       string
	Doc        string
	Scope      func(path string) bool
	Run        func(u *Unit) []Diagnostic
	RunProgram func(p *Program) []Diagnostic
}

// Passes returns every registered analysis in reporting order.
func Passes() []*Pass {
	return []*Pass{
		detnowPass, maporderPass, waitpairPass, railpinPass, gonosimPass,
		sharedstatePass, purityPass, locklintPass, suppauditPass,
	}
}

// suppauditPass is the driver-implemented suppression audit: a valid
// //lint:ignore that matched no finding of its named passes is dead
// weight that will silently swallow a future, different finding on that
// line — it must be deleted (or re-justified) instead.
var suppauditPass = &Pass{
	Name:  "suppaudit",
	Doc:   "report stale //lint:ignore directives that no longer suppress anything",
	Scope: func(string) bool { return true },
}

// PassNames returns the registered pass names in reporting order.
func PassNames() []string {
	out := make([]string, 0, 16)
	for _, p := range Passes() {
		out = append(out, p.Name)
	}
	return out
}

// applies reports whether pass p checks the package at import path. The
// suppaudit fixture package is in every pass's scope so its fixtures can
// exercise live and stale suppressions of real passes.
func applies(p *Pass, path string) bool {
	if strings.HasSuffix(path, "/lint/testdata/src/"+p.Name) {
		return true
	}
	if strings.HasSuffix(path, "/lint/testdata/src/suppaudit") {
		return true
	}
	return p.Scope(path)
}

// Check runs the given passes over the units and returns the surviving
// diagnostics sorted by position. Suppressed findings are dropped;
// malformed or unknown //lint:ignore directives are reported under the
// pseudo-pass "lint"; stale directives are reported by suppaudit when it
// is among the selected passes.
func Check(units []*Unit, passes []*Pass) []Diagnostic {
	known := map[string]bool{}
	for _, p := range Passes() {
		known[p.Name] = true
	}
	selected := map[string]bool{}
	for _, p := range passes {
		selected[p.Name] = true
	}

	igs, out := collectIgnores(units, known)

	var prog *Program
	for _, p := range passes {
		if p.RunProgram != nil && prog == nil {
			prog = BuildProgram(units)
		}
	}

	var raw []Diagnostic
	for _, p := range passes {
		switch {
		case p.RunProgram != nil:
			raw = append(raw, p.RunProgram(prog)...)
		case p.Run != nil:
			for _, u := range units {
				if !applies(p, u.Path) {
					continue
				}
				raw = append(raw, p.Run(u)...)
			}
		}
	}
	for _, d := range raw {
		if igs.covers(d.Pass, d.Pos) {
			continue
		}
		out = append(out, d)
	}

	if selected["suppaudit"] {
		out = append(out, igs.stale(selected)...)
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
	return out
}

// An ignoreEntry is one valid //lint:ignore directive, tracked for
// staleness: it is used when any finding of a named pass lands on its
// line or the line below.
type ignoreEntry struct {
	pos    token.Position
	passes []string
	used   bool
}

// ignoreSet indexes the valid directives by file and directive line.
type ignoreSet struct {
	byFile map[string]map[int]*ignoreEntry
	all    []*ignoreEntry // in collection order for deterministic audits
}

// covers reports whether a finding for pass at pos is suppressed: a
// directive counts for its own line and the line immediately below it.
// Matching marks the directive used for the suppression audit.
func (s *ignoreSet) covers(pass string, pos token.Position) bool {
	lines := s.byFile[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		e := lines[line]
		if e == nil {
			continue
		}
		for _, p := range e.passes {
			if p == pass {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

func (s *ignoreSet) add(e *ignoreEntry) {
	if s.byFile == nil {
		s.byFile = map[string]map[int]*ignoreEntry{}
	}
	lines := s.byFile[e.pos.Filename]
	if lines == nil {
		lines = map[int]*ignoreEntry{}
		s.byFile[e.pos.Filename] = lines
	}
	if prev := lines[e.pos.Line]; prev != nil {
		prev.passes = append(prev.passes, e.passes...)
		return
	}
	lines[e.pos.Line] = e
	s.all = append(s.all, e)
}

// stale reports every unused directive whose named passes all ran — a
// directive for an unselected pass is not judged, since its finding had
// no chance to appear.
func (s *ignoreSet) stale(selected map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.all {
		if e.used {
			continue
		}
		judged := true
		for _, p := range e.passes {
			if !selected[p] {
				judged = false
			}
		}
		if !judged {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  e.pos,
			Pass: "suppaudit",
			Message: fmt.Sprintf("//lint:ignore %s suppresses nothing: no such finding on this or the next line; delete the directive",
				strings.Join(e.passes, ",")),
		})
	}
	return out
}

// collectIgnores scans every comment in every unit for //lint:ignore
// directives. Valid directives populate the returned set; a directive
// with no reason, or naming a pass that does not exist, is reported and
// suppresses nothing.
func collectIgnores(units []*Unit, known map[string]bool) (*ignoreSet, []Diagnostic) {
	igs := &ignoreSet{}
	var bad []Diagnostic
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					dir := parseDirective(c.Text)
					pos := u.Fset.Position(c.Pos())
					switch dir.kind {
					case directiveBad:
						bad = append(bad, Diagnostic{Pos: pos, Pass: "lint", Message: dir.problem})
					case directiveIgnore:
						entry := &ignoreEntry{pos: pos}
						for _, name := range dir.passes {
							if !known[name] {
								bad = append(bad, Diagnostic{
									Pos:     pos,
									Pass:    "lint",
									Message: fmt.Sprintf("//lint:ignore names unknown pass %q (have %s)", name, strings.Join(PassNames(), ", ")),
								})
								continue
							}
							entry.passes = append(entry.passes, name)
						}
						if len(entry.passes) > 0 {
							igs.add(entry)
						}
					}
				}
			}
		}
	}
	return igs, bad
}

// scopeIn builds a Scope matching any import path ending in one of the
// given package suffixes (e.g. "internal/sim").
func scopeIn(segs ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range segs {
			if strings.HasSuffix(path, s) {
				return true
			}
		}
		return false
	}
}

// scopeInternal matches every package under internal/ except the lint
// suite itself (whose bookkeeping legitimately walks maps and has no sim
// side effects).
func scopeInternal(path string) bool {
	if !strings.Contains(path, "/internal/") {
		return false
	}
	return !strings.Contains(path, "/internal/lint")
}

// diag builds a Diagnostic at a node's position.
func diag(u *Unit, n ast.Node, pass, format string, args ...interface{}) Diagnostic {
	return Diagnostic{Pos: u.Fset.Position(n.Pos()), Pass: pass, Message: fmt.Sprintf(format, args...)}
}
