// Package lint implements mhalint, a stdlib-only static-analysis suite
// that proves the simulator's determinism and resource-discipline rules
// at build time (go/ast + go/parser + go/types; no external modules).
//
// The runtime audits — CheckQuiescent, VerifyTeardown, the verification
// campaign's trace-hash cross-check — catch invariant violations only on
// the scenarios a run happens to execute. The passes here encode the same
// contracts as compile-time rules over the whole tree:
//
//	detnow    no wall-clock or process-global randomness in sim code
//	maporder  no map iteration with order-dependent effects
//	waitpair  every Isend/Irecv result reaches a Wait/Waitall
//	railpin   rail pinning comes from planning, not hardwired constants
//	gonosim   no raw goroutines where the engine must own scheduling
//
// A finding can be silenced for one line with
//
//	//lint:ignore <pass> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// A Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. mha/internal/sim
	Dir   string // directory the files were parsed from
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// A Pass is one analysis. Scope selects the packages it applies to by
// import path; every pass additionally applies to its own fixture package
// under internal/lint/testdata/src/<name>.
type Pass struct {
	Name  string
	Doc   string
	Scope func(path string) bool
	Run   func(u *Unit) []Diagnostic
}

// Passes returns every registered analysis in reporting order.
func Passes() []*Pass {
	return []*Pass{detnowPass, maporderPass, waitpairPass, railpinPass, gonosimPass}
}

// PassNames returns the registered pass names in reporting order.
func PassNames() []string {
	out := make([]string, 0, 8)
	for _, p := range Passes() {
		out = append(out, p.Name)
	}
	return out
}

// applies reports whether pass p checks the package at import path.
func applies(p *Pass, path string) bool {
	if strings.HasSuffix(path, "/lint/testdata/src/"+p.Name) {
		return true
	}
	return p.Scope(path)
}

// Check runs the given passes over the units and returns the surviving
// diagnostics sorted by position. Suppressed findings are dropped;
// malformed or unknown //lint:ignore directives are reported under the
// pseudo-pass "lint".
func Check(units []*Unit, passes []*Pass) []Diagnostic {
	known := map[string]bool{}
	for _, p := range Passes() {
		known[p.Name] = true
	}
	var out []Diagnostic
	for _, u := range units {
		igs, bad := collectIgnores(u, known)
		out = append(out, bad...)
		for _, p := range passes {
			if !applies(p, u.Path) {
				continue
			}
			for _, d := range p.Run(u) {
				if igs.covers(p.Name, d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return out
}

// ignoreSet records which (file, line) positions are covered by a valid
// //lint:ignore directive, per pass.
type ignoreSet map[string]map[int]map[string]bool // file -> line -> pass

// covers reports whether a finding for pass at pos is suppressed: a
// directive counts for its own line and the line immediately below it.
func (s ignoreSet) covers(pass string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][pass] || lines[pos.Line-1][pass]
}

func (s ignoreSet) add(file string, line int, pass string) {
	lines := s[file]
	if lines == nil {
		lines = map[int]map[string]bool{}
		s[file] = lines
	}
	passes := lines[line]
	if passes == nil {
		passes = map[string]bool{}
		lines[line] = passes
	}
	passes[pass] = true
}

const ignorePrefix = "lint:ignore"

// collectIgnores scans every comment in the unit for //lint:ignore
// directives. Valid directives populate the returned set; a directive
// with no reason, or naming a pass that does not exist, is reported.
func collectIgnores(u *Unit, known map[string]bool) (ignoreSet, []Diagnostic) {
	igs := ignoreSet{}
	var bad []Diagnostic
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Pass: "lint",
						Message: "//lint:ignore needs a pass name and a non-empty reason: " +
							"//lint:ignore <pass> <why this is safe>",
					})
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						bad = append(bad, Diagnostic{
							Pos:     pos,
							Pass:    "lint",
							Message: fmt.Sprintf("//lint:ignore names unknown pass %q (have %s)", name, strings.Join(PassNames(), ", ")),
						})
						continue
					}
					igs.add(pos.Filename, pos.Line, name)
				}
			}
		}
	}
	return igs, bad
}

// scopeIn builds a Scope matching any import path ending in one of the
// given package suffixes (e.g. "internal/sim").
func scopeIn(segs ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range segs {
			if strings.HasSuffix(path, s) {
				return true
			}
		}
		return false
	}
}

// scopeInternal matches every package under internal/ except the lint
// suite itself (whose bookkeeping legitimately walks maps and has no sim
// side effects).
func scopeInternal(path string) bool {
	if !strings.Contains(path, "/internal/") {
		return false
	}
	return !strings.Contains(path, "/internal/lint")
}

// diag builds a Diagnostic at a node's position.
func diag(u *Unit, n ast.Node, pass, format string, args ...interface{}) Diagnostic {
	return Diagnostic{Pos: u.Fset.Position(n.Pos()), Pass: pass, Message: fmt.Sprintf(format, args...)}
}
