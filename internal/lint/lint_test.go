package lint

import (
	"strings"
	"testing"
)

// TestTreeIsClean is the library-level version of the CI gate: the
// shipped tree must lint clean under every pass. Running it from the
// package test keeps the gate active even where CI is not.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type-check is slow; the CI Lint step covers it")
	}
	units, err := Load([]string{"../..."})
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	for _, d := range Check(units, Passes()) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestExpandSkipsTestdata proves `...` walks never descend into fixture
// trees — otherwise the CI gate would trip over the firing fixtures.
func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 {
		t.Fatalf("expected just the lint package dir, got %v", dirs)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("walk descended into %s", d)
		}
	}
}

// TestSuppressionRequiresReason pins the directive contract on the
// gonosim fixture: the valid suppression in ok.go silences its finding,
// while bad.go's reason-less and unknown-pass directives are themselves
// reported and suppress nothing.
func TestSuppressionRequiresReason(t *testing.T) {
	units, err := Load([]string{"testdata/src/gonosim"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(units, []*Pass{gonosimPass})
	var fromOK, malformed, unknown, badGo int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Pos.Filename, "ok.go"):
			fromOK++
		case d.Pass == "lint" && strings.Contains(d.Message, "non-empty reason"):
			malformed++
		case d.Pass == "lint" && strings.Contains(d.Message, "unknown pass"):
			unknown++
		case d.Pass == "gonosim" && strings.Contains(d.Pos.Filename, "bad.go"):
			badGo++
		}
	}
	if fromOK != 0 {
		t.Errorf("valid suppression did not silence ok.go (got %d findings)", fromOK)
	}
	if malformed != 1 || unknown != 1 {
		t.Errorf("suppression hygiene: want 1 malformed + 1 unknown directive, got %d + %d", malformed, unknown)
	}
	if badGo != 2 {
		t.Errorf("invalid directives must not suppress: want 2 gonosim findings in bad.go, got %d", badGo)
	}
}

// TestCheckIsDeterministic runs the full suite twice over the fixture
// trees and demands identical output — the linter preaches determinism
// and must practice it.
func TestCheckIsDeterministic(t *testing.T) {
	render := func() string {
		units, err := Load([]string{"testdata/src/maporder", "testdata/src/waitpair"})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range Check(units, Passes()) {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("two identical Check runs disagreed:\n%s\nvs\n%s", a, b)
	}
}

// TestScopes pins which packages each pass patrols: detnow and gonosim
// watch the simulator core, the resource-discipline passes cover all of
// internal/, and nothing chases the lint package or the facade.
func TestScopes(t *testing.T) {
	cases := []struct {
		pass *Pass
		path string
		want bool
	}{
		{detnowPass, "mha/internal/sim", true},
		{detnowPass, "mha/internal/collectives", true},
		{detnowPass, "mha/internal/bench", false},
		{detnowPass, "mha/internal/lint/testdata/src/detnow", true},
		{detnowPass, "mha/internal/fabric", true},
		{gonosimPass, "mha/internal/core", true},
		{gonosimPass, "mha/internal/fabric", true},
		{gonosimPass, "mha/internal/trace", false},
		{waitpairPass, "mha/internal/apps/stencil", true},
		{waitpairPass, "mha/internal/lint", false},
		{maporderPass, "mha/internal/machines", true},
		{railpinPass, "mha", false},
		{sharedstatePass, "mha/internal/cluster", true},
		{sharedstatePass, "mha/internal/lint", false},
		{purityPass, "mha/internal/tuner", true},
		{locklintPass, "mha/internal/tuner", true},
		{locklintPass, "mha/internal/cluster", true},
		{locklintPass, "mha/internal/sim", false},
		{suppauditPass, "mha/internal/lint", true},
		// The suppaudit fixture is in every pass's scope so its live
		// suppressions have findings to absorb.
		{detnowPass, "mha/internal/lint/testdata/src/suppaudit", true},
		{railpinPass, "mha/internal/lint/testdata/src/suppaudit", true},
	}
	for _, c := range cases {
		if got := applies(c.pass, c.path); got != c.want {
			t.Errorf("applies(%s, %s) = %v, want %v", c.pass.Name, c.path, got, c.want)
		}
	}
}
