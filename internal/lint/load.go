package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Unit is one parsed, type-checked package: the input to the unit
// passes and the building block of a Program.
type Unit struct {
	Fset  *token.FileSet
	Path  string // import path
	Dir   string
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// Load parses and type-checks every package named by the patterns and
// returns one Unit per package. A pattern is either a directory or a
// `dir/...` walk; walks skip testdata, hidden, and underscore
// directories (matching the go tool), while naming a testdata directory
// explicitly loads it — that is how the fixture suite feeds the driver.
// Test files are never loaded: the invariants govern shipped simulator
// code, and tests legitimately use wall-clock timeouts and literals.
func Load(patterns []string) ([]*Unit, error) {
	dirs, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer type-checks dependencies (stdlib included) from
	// source, so the loader needs nothing but the go/* stdlib packages.
	imp := importer.ForCompiler(fset, "source", nil)
	var units []*Unit
	for _, dir := range dirs {
		us, err := loadDir(fset, imp, dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Path < units[j].Path })
	return units, nil
}

// expand resolves `/...` patterns into the list of directories that
// contain at least one non-test Go file.
func expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, walk := strings.CutSuffix(pat, "/...")
		if !walk {
			if hasGoFiles(pat) {
				add(pat)
				continue
			}
			return nil, fmt.Errorf("lint: no Go files in %s", pat)
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if name := e.Name(); !e.IsDir() &&
			strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses the non-test files of one directory and type-checks
// them as a package rooted at its module-derived import path.
func loadDir(fset *token.FileSet, imp types.Importer, dir string) ([]*Unit, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", dir, err)
	}
	path, err := importPath(dir)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	// A directory holds at most one non-test package in a healthy tree,
	// but check whatever the parser found so a stray duplicate package
	// clause surfaces as a type error rather than silence.
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		apkg := pkgs[name]
		files := make([]*ast.File, 0, len(apkg.Files))
		fnames := make([]string, 0, len(apkg.Files))
		for fname := range apkg.Files {
			fnames = append(fnames, fname)
		}
		sort.Strings(fnames)
		for _, fname := range fnames {
			files = append(files, apkg.Files[fname])
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
		}
		units = append(units, &Unit{
			Fset: fset, Path: path, Dir: dir, Files: files, Info: info, Pkg: tpkg,
		})
	}
	return units, nil
}

// importPath derives a directory's import path from the enclosing
// module's go.mod.
func importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			mod := modulePath(data)
			if mod == "" {
				return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return "", err
			}
			if rel == "." {
				return mod, nil
			}
			return mod + "/" + filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", fmt.Errorf("lint: %s is not inside a Go module", dir)
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
