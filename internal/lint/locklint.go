package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// locklint proves lock discipline in the two packages that mix mutexes
// with heavy work: the tuner (cache + singleflight around synthesis) and
// the cluster harness (error collection across rank bodies). Two rules:
//
//   - every sync.Mutex/RWMutex Lock acquires an unlock on all paths out
//     of the function — an explicit Unlock before each return, or a
//     deferred one;
//   - no lock is held across a simulation or synthesis call (Simulate,
//     SimulateHealth, Synthesize): those run for simulated hours and
//     serialize every other caller behind the mutex, which is exactly
//     the singleflight-outside-the-lock design rule in the tuner.
//
// The analysis interprets each function body statement by statement with
// a held-lock set: both arms of an if are interpreted and merged, arms
// that terminate (return) drop out of the merge, and defer of an unlock
// marks the lock satisfied for every later exit. Loops are interpreted
// for their findings but assumed lock-balanced; locks are keyed by the
// rendered receiver expression (s.mu), so aliasing a mutex through a
// second name defeats the pairing — don't do that.
var locklintPass = &Pass{
	Name:  "locklint",
	Doc:   "mutexes unlock on all paths and are never held across simulation/synthesis calls",
	Scope: scopeIn("internal/tuner", "internal/cluster"),
}

func init() { locklintPass.RunProgram = runLocklint }

// locklintHeavy names the calls that must not run under a lock.
var locklintHeavy = map[string]bool{
	"Simulate": true, "SimulateHealth": true, "Synthesize": true,
}

// lockEvent classifies one call as a lock-state transition.
type lockEvent int

const (
	lockNone lockEvent = iota
	lockAcquire
	lockRelease
)

// lockCall resolves a call to a lock transition on a key. Only the
// methods of sync.Mutex and sync.RWMutex count (including promoted ones
// on embedding structs); the key is the rendered receiver expression
// plus a read-mode marker, so Lock pairs Unlock and RLock pairs RUnlock.
func lockCall(u *Unit, call *ast.CallExpr) (lockEvent, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockNone, ""
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockNone, ""
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return lockAcquire, key
	case "Unlock":
		return lockRelease, key
	case "RLock":
		return lockAcquire, key + " (read)"
	case "RUnlock":
		return lockRelease, key + " (read)"
	}
	return lockNone, ""
}

// lockState is the abstract state at one program point: which locks are
// held (keyed by rendered receiver, value = acquisition site) and which
// have a deferred unlock pending.
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// sortedHeld returns the held-lock keys in deterministic order.
func (s *lockState) sortedHeld() []string {
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockChecker interprets one function body.
type lockChecker struct {
	u    *Unit
	out  []Diagnostic
	seen map[string]bool // dedup: one finding per (pos, message)
}

func (c *lockChecker) report(pos token.Pos, format string, args ...interface{}) {
	d := diag(c.u, fakeNode(pos), "locklint", format, args...)
	key := d.String()
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.out = append(c.out, d)
}

// fakeNode wraps a position as an ast.Node for diag.
type posNode token.Pos

func (p posNode) Pos() token.Pos { return token.Pos(p) }
func (p posNode) End() token.Pos { return token.Pos(p) }

func fakeNode(p token.Pos) ast.Node { return posNode(p) }

func runLocklint(p *Program) []Diagnostic {
	var out []Diagnostic
	for _, key := range p.keys {
		fi := p.Funcs[key]
		if !applies(locklintPass, fi.Unit.Path) {
			continue
		}
		c := &lockChecker{u: fi.Unit, seen: map[string]bool{}}
		state := newLockState()
		terminated := c.block(fi.Decl.Body, state)
		if !terminated {
			c.atExit(fi.Decl.Body.Rbrace, state)
		}
		out = append(out, c.out...)
	}
	return out
}

// atExit reports locks still held (and not deferred) at a function exit.
func (c *lockChecker) atExit(pos token.Pos, s *lockState) {
	for _, k := range s.sortedHeld() {
		if s.deferred[k] {
			continue
		}
		c.report(s.held[k],
			"lock %s is acquired here but not released on the path reaching line %d; unlock on every path or defer the unlock",
			k, c.u.Fset.Position(pos).Line)
	}
}

// block interprets a statement list, mutating s in place. Returns true
// when the block definitely terminates (returns or panics) before its
// end.
func (c *lockChecker) block(b *ast.BlockStmt, s *lockState) bool {
	for _, st := range b.List {
		if c.stmt(st, s) {
			return true
		}
	}
	return false
}

// stmt interprets one statement. Returns true when it terminates the
// enclosing function.
func (c *lockChecker) stmt(st ast.Stmt, s *lockState) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		c.expr(st.X, s)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			c.expr(rhs, s)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				c.expr(call, s)
				return false
			}
			return true
		})
	case *ast.DeferStmt:
		if ev, key := lockCall(c.u, st.Call); ev == lockRelease {
			s.deferred[key] = true
			return false
		}
		// defer func() { mu.Unlock() }() — scan the literal's body.
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if ev, key := lockCall(c.u, call); ev == lockRelease {
						s.deferred[key] = true
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.expr(r, s)
		}
		c.atExit(st.Pos(), s)
		return true
	case *ast.BranchStmt:
		// break/continue/goto: leave the lock state alone; the loop
		// approximation below absorbs the imprecision.
	case *ast.BlockStmt:
		return c.block(st, s)
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmt(st.Init, s)
		}
		c.expr(st.Cond, s)
		thenS, elseS := s.clone(), s.clone()
		thenT := c.block(st.Body, thenS)
		elseT := false
		if st.Else != nil {
			elseT = c.stmt(st.Else, elseS)
		}
		switch {
		case thenT && elseT:
			return true
		case thenT:
			*s = *elseS
		case elseT:
			*s = *thenS
		default:
			// Both arms fall through: a lock is held after the if when
			// either arm holds it (conservative union; the release-in-
			// one-arm shape will be reported at the next exit).
			merged := thenS
			for k, v := range elseS.held {
				if _, ok := merged.held[k]; !ok {
					merged.held[k] = v
				}
			}
			for k := range elseS.deferred {
				merged.deferred[k] = true
			}
			*s = *merged
		}
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init, s)
		}
		if st.Cond != nil {
			c.expr(st.Cond, s)
		}
		body := s.clone()
		c.block(st.Body, body) // findings inside still surface; state assumed balanced
	case *ast.RangeStmt:
		c.expr(st.X, s)
		body := s.clone()
		c.block(st.Body, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init, s)
		}
		if st.Tag != nil {
			c.expr(st.Tag, s)
		}
		c.clauses(st.Body, s)
	case *ast.TypeSwitchStmt:
		c.clauses(st.Body, s)
	case *ast.SelectStmt:
		c.clauses(st.Body, s)
	case *ast.GoStmt:
		// The goroutine's lock activity is its own; gonosim polices the
		// go statement itself.
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, s)
	}
	return false
}

// clauses interprets each case body from a copy of the entry state. The
// post-state keeps the entry state: case bodies are assumed balanced,
// like loop bodies, but every finding inside them still surfaces.
func (c *lockChecker) clauses(body *ast.BlockStmt, s *lockState) {
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		cs := s.clone()
		for _, st := range stmts {
			if c.stmt(st, cs) {
				break
			}
		}
	}
}

// expr scans an expression for lock transitions and heavy calls, in
// evaluation order.
func (c *lockChecker) expr(e ast.Expr, s *lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a literal's body runs when called, not here
		case *ast.CallExpr:
			for _, arg := range n.Args {
				c.expr(arg, s)
			}
			if ev, key := lockCall(c.u, n); ev != lockNone {
				switch ev {
				case lockAcquire:
					s.held[key] = n.Pos()
				case lockRelease:
					delete(s.held, key)
					delete(s.deferred, key)
				}
				return false
			}
			if id := calleeIdent(n); id != nil && locklintHeavy[id.Name] && len(s.held) > 0 {
				for _, k := range s.sortedHeld() {
					c.report(n.Pos(),
						"%s is called while %s is held; simulation and synthesis must run outside the lock (singleflight, then re-acquire to publish)",
						id.Name, k)
				}
			}
			return false
		}
		return true
	})
}
