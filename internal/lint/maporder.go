package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporder flags `for range` over a map whose body has order-dependent
// effects: Go randomizes map iteration order per run, so any message,
// scheduled event, trace record, or schedule/step list built inside such
// a loop differs between replays. Order-insensitive folds (max, sum,
// membership) are fine, as is collecting keys that are sorted before
// use — the canonical fix.
var maporderPass = &Pass{
	Name:  "maporder",
	Doc:   "flag map iteration whose body sends, schedules, traces, or appends to an ordered list",
	Scope: scopeInternal,
	Run:   runMaporder,
}

// maporderEffects names the methods whose call order is observable in a
// simulation: message posts, mailbox and event-queue operations, process
// spawns, resource seizures, and trace records.
var maporderEffects = map[string]string{
	"Isend": "posts a message", "Irecv": "posts a receive",
	"Send": "posts a message", "Recv": "posts a receive",
	"SendRecv": "posts messages",
	"Put":      "enqueues into a mailbox", "PutAt": "enqueues into a mailbox",
	"Get":      "matches from a mailbox",
	"Schedule": "schedules an event", "After": "schedules an event",
	"Spawn":   "spawns a process",
	"Acquire": "seizes a resource", "AcquireAfter": "seizes a resource",
	"AcquireTogether": "seizes resources",
	"Add":             "bumps a counter/trace",
	"trace":           "records a trace event", "Emit": "records a trace event",
}

func runMaporder(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		// Walk with an explicit stack of enclosing function bodies so the
		// append-then-sort excuse can scan the rest of the function.
		var bodies []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
					ast.Inspect(n.Body, walk)
					bodies = bodies[:len(bodies)-1]
				}
				return false
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
				ast.Inspect(n.Body, walk)
				bodies = bodies[:len(bodies)-1]
				return false
			case *ast.RangeStmt:
				tv, ok := u.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				var enclosing *ast.BlockStmt
				if len(bodies) > 0 {
					enclosing = bodies[len(bodies)-1]
				}
				if why := mapBodyEffect(u, n, enclosing); why != "" {
					out = append(out, diag(u, n, "maporder",
						"map iteration order is randomized per run, but this loop %s; iterate a sorted key slice instead", why))
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return out
}

// mapBodyEffect reports the first order-dependent effect in a map-range
// body, or "" when the body is order-insensitive.
func mapBodyEffect(u *Unit, rng *ast.RangeStmt, fnBody *ast.BlockStmt) string {
	var why string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			why = "sends on a channel"
		case *ast.CallExpr:
			if id := calleeIdent(n); id != nil {
				if what, ok := maporderEffects[id.Name]; ok {
					why = "calls " + id.Name + " (" + what + ")"
				}
			}
		case *ast.AssignStmt:
			// x = append(x, ...) growing a variable that outlives the
			// loop builds an ordered list in map order — unless that
			// list is sorted before the function is done with it.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(n.Lhs) <= i {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					// Appending into a field or element of an outer
					// structure: no sort excuse, flag it.
					why = "appends to an ordered list"
					continue
				}
				obj := u.Info.ObjectOf(target)
				if obj == nil || insideNode(obj.Pos(), rng) {
					continue // loop-local scratch
				}
				if fnBody != nil && sortedAfter(u, fnBody, rng.End(), obj) {
					continue // collected keys are sorted before use
				}
				why = "appends to " + target.Name + " (ordered list, never sorted afterwards)"
			}
		}
		return why == ""
	})
	return why
}

// insideNode reports whether pos falls within n's source extent.
func insideNode(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after pos within the function body.
func sortedAfter(u *Unit, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := u.Info.Uses[base].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && u.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeIdent returns the rightmost identifier of a call's function
// expression: F for F(...), recv.F for recv.F(...). Nil when the callee
// is not a plain or selected identifier.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}
