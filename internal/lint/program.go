package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program layer under the interprocedural passes:
// a function index over every loaded unit, a call graph with stable
// string keys, and a capture analysis for closures. Passes that need to
// see across function and package boundaries (sharedstate, purity,
// locklint, the interprocedural half of waitpair) run over a Program;
// the original single-unit passes still run unit by unit.

// A Program is the whole loaded tree: every unit plus the derived
// function index and call graph.
type Program struct {
	Units []*Unit
	// Funcs indexes every function declared in a loaded unit by its
	// canonical key (types.Func FullName), which is stable across the
	// two ways a package reaches the type checker: loaded directly as a
	// unit, or pulled in as a source-imported dependency.
	Funcs map[string]*FuncInfo
	keys  []string // sorted index keys, for deterministic iteration
}

// A FuncInfo is one declared function or method with its derived facts.
type FuncInfo struct {
	Key  string // canonical key (types.Func.FullName)
	Unit *Unit
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Callees lists the canonical keys of every statically resolvable
	// callee, sorted and deduplicated. Calls through function values and
	// interface methods have no static target and are not recorded;
	// referencing a function as a value (a method value, a handler
	// registration) conservatively counts as an edge, since a reference
	// is how a later dynamic call is formed.
	Callees []string
	// parents maps every node in Decl to its syntactic parent; built
	// once per function and shared by the analyses.
	parents map[ast.Node]ast.Node

	summary *reqSummary // waitpair interprocedural summary, lazily built
	facts   *purityFacts
}

// funcKey returns the canonical index key for a function object.
func funcKey(fn *types.Func) string { return fn.FullName() }

// BuildProgram derives the function index and call graph from the loaded
// units. It is deterministic: units arrive sorted by import path, files
// within a unit are sorted, and every derived list is sorted.
func BuildProgram(units []*Unit) *Program {
	p := &Program{Units: units, Funcs: map[string]*FuncInfo{}}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Key:     funcKey(obj),
					Unit:    u,
					Decl:    fd,
					Obj:     obj,
					parents: buildParents(fd),
				}
				p.Funcs[fi.Key] = fi
			}
		}
	}
	for _, fi := range p.Funcs {
		fi.Callees = callees(fi)
	}
	p.keys = make([]string, 0, len(p.Funcs))
	for k := range p.Funcs {
		p.keys = append(p.keys, k)
	}
	sort.Strings(p.keys)
	return p
}

// Keys returns the index keys in sorted order.
func (p *Program) Keys() []string { return p.keys }

// FuncAt resolves a call expression to the declared function it
// statically targets, or nil for dynamic and out-of-program calls.
func (p *Program) FuncAt(u *Unit, call *ast.CallExpr) *FuncInfo {
	fn := staticCallee(u, call)
	if fn == nil {
		return nil
	}
	return p.Funcs[funcKey(fn)]
}

// unitFor returns the unit whose file set position covers pos (every
// unit shares one fset, so filename lookup suffices).
func (p *Program) unitFor(filename string) *Unit {
	for _, u := range p.Units {
		for _, f := range u.Files {
			if u.Fset.Position(f.Pos()).Filename == filename {
				return u
			}
		}
	}
	return nil
}

// staticCallee resolves a call's target to a declared *types.Func: a
// plain function call, a method call, or a qualified pkg.F call. Dynamic
// calls (function values, interface methods resolve to the interface
// method object, which has no body in the index) return that object too;
// the index lookup then misses, which is the conservative outcome.
func staticCallee(u *Unit, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := u.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := u.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// callees records every statically resolvable outgoing edge of one
// function, including closures declared inside it (a closure's calls are
// attributed to the enclosing declaration) and bare function references.
func callees(fi *FuncInfo) []string {
	seen := map[string]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := fi.Unit.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		seen[funcKey(fn)] = true // self-edges stay: recursion is a real cycle
		return true
	})
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// moduleOf returns the leading path segment of an import path — the
// loaded tree's module name for every unit ("mha" here, the fixture
// package's own path in tests).
func moduleOf(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// InProgramPackage reports whether a function object belongs to a
// package of the loaded module (as opposed to the stdlib), whether or
// not that package was loaded as a unit.
func (p *Program) InProgramPackage(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || len(p.Units) == 0 {
		return false
	}
	return moduleOf(pkg.Path()) == moduleOf(p.Units[0].Path)
}

// ---- Capture analysis ----------------------------------------------------

// A capture is one variable a closure references from an enclosing
// scope, with how the closure treats it.
type capture struct {
	obj     types.Object
	written bool      // assigned, grown, inc/dec'd, or address-taken inside the closure
	firstAt token.Pos // first occurrence inside the closure, for reporting
	uses    []*ast.Ident
}

// captures lists the variables a FuncLit references but does not
// declare: free variables of the closure, classified read vs written.
// parents must cover the FuncLit (built from an enclosing declaration).
// Package-level variables count — a global captured by a process body is
// the sharedstate hazard case — but package-level funcs, consts, and
// types do not.
func capturesOf(u *Unit, fl *ast.FuncLit, parents map[ast.Node]ast.Node) []*capture {
	found := map[types.Object]*capture{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := u.Info.ObjectOf(id)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the closure (including its own params)?
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return true
		}
		c := found[obj]
		if c == nil {
			c = &capture{obj: obj, firstAt: id.Pos()}
			found[obj] = c
		}
		c.uses = append(c.uses, id)
		if isWriteUse(u, id, parents) {
			c.written = true
		}
		return true
	})
	out := make([]*capture, 0, len(found))
	for _, c := range found {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].firstAt < out[j].firstAt })
	return out
}

// isWriteUse reports whether one identifier occurrence mutates the
// variable it names: the variable (or a selector/index chain rooted at
// it) on the left of an assignment, an IncDec, a range clause assigning
// into it, or its address taken (after which any mutation is possible).
// Method calls are deliberately not writes: mutation through a method is
// the engine-mediated channel (Resource.Acquire, Mailbox.Put) that
// sharedstate's exemption list sanctions explicitly.
func isWriteUse(u *Unit, id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	var cur ast.Node = id
	for {
		parent := parents[cur]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.SelectorExpr:
			if p.X == cur {
				cur = p // x.f: keep climbing — x.f = v writes x
				continue
			}
			return false // the .Sel side; the base identifier is judged separately
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p // x[i]: keep climbing — x[i] = v writes x
				continue
			}
			return false // used as an index
		case *ast.SliceExpr:
			if p.X == cur {
				cur = p
				continue
			}
			return false
		case *ast.StarExpr:
			cur = p // *x = v writes through x
			continue
		case *ast.UnaryExpr:
			return p.Op == token.AND // &x escapes; assume mutation
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == exprOf(cur) {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == exprOf(cur)
		case *ast.RangeStmt:
			return p.Key == exprOf(cur) || p.Value == exprOf(cur)
		default:
			return false
		}
	}
}
