package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// loadProgram loads one fixture directory and builds its Program.
func loadProgram(t *testing.T, dir string) *Program {
	t.Helper()
	units, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return BuildProgram(units)
}

// funcNamed finds the unique indexed function whose key ends in name.
func funcNamed(t *testing.T, p *Program, name string) *FuncInfo {
	t.Helper()
	var found *FuncInfo
	for _, key := range p.Keys() {
		if strings.HasSuffix(key, name) {
			if found != nil {
				t.Fatalf("two functions match %q: %s and %s", name, found.Key, key)
			}
			found = p.Funcs[key]
		}
	}
	if found == nil {
		t.Fatalf("no function %q in program (have %v)", name, p.Keys())
	}
	return found
}

func callsTo(fi *FuncInfo, name string) bool {
	for _, k := range fi.Callees {
		if strings.HasSuffix(k, name) {
			return true
		}
	}
	return false
}

// TestCallGraphRecursion: direct recursion keeps its self-edge, and the
// two-function shuffle cycle in the waitpair fixture closes both ways.
func TestCallGraphRecursion(t *testing.T) {
	p := loadProgram(t, "testdata/src/program")
	fact := funcNamed(t, p, ".fact")
	if !callsTo(fact, ".fact") {
		t.Errorf("fact's self-edge missing: callees = %v", fact.Callees)
	}

	wp := loadProgram(t, "testdata/src/waitpair")
	a, b := funcNamed(t, wp, ".shuffleA"), funcNamed(t, wp, ".shuffleB")
	if !callsTo(a, ".shuffleB") || !callsTo(b, ".shuffleA") {
		t.Errorf("shuffle cycle not closed: A->%v, B->%v", a.Callees, b.Callees)
	}
}

// TestCallGraphMethodValue: referencing a method as a value records a
// conservative edge even though no call expression exists.
func TestCallGraphMethodValue(t *testing.T) {
	p := loadProgram(t, "testdata/src/program")
	umv := funcNamed(t, p, ".useMethodValue")
	if !callsTo(umv, ".Greet") {
		t.Errorf("method-value reference to Greet not recorded: %v", umv.Callees)
	}
}

// TestCapturesLoopVariable: the closure in loopCaptures writes the outer
// accumulator and reads the per-iteration loop variable; the capture
// analysis must see both, classify the write, and place the loop
// variable's declaration inside the loop (Go's per-iteration semantics).
func TestCapturesLoopVariable(t *testing.T) {
	p := loadProgram(t, "testdata/src/program")
	lc := funcNamed(t, p, ".loopCaptures")

	var fl *ast.FuncLit
	var loop ast.Node
	ast.Inspect(lc.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loop = n
		case *ast.FuncLit:
			fl = n
		}
		return true
	})
	if fl == nil || loop == nil {
		t.Fatal("fixture lost its closure or loop")
	}

	caps := capturesOf(lc.Unit, fl, lc.parents)
	byName := map[string]*capture{}
	for _, c := range caps {
		byName[c.obj.Name()] = c
	}
	sum, i := byName["sum"], byName["i"]
	if sum == nil || i == nil {
		t.Fatalf("want captures sum and i, got %v", byName)
	}
	if !sum.written {
		t.Error("sum += i inside the closure must classify as a write")
	}
	if i.written {
		t.Error("i is only read inside the closure; must not classify as a write")
	}
	if insideNode(sum.obj.Pos(), loop) {
		t.Error("sum is declared outside the loop (shared across closures)")
	}
	if !insideNode(i.obj.Pos(), loop) {
		t.Error("i is the loop variable: its declaration must sit inside the loop (per-iteration)")
	}
}

// TestWaitpairSummaries pins the interprocedural verdicts on the
// waitpair fixture helpers: producers return requests, consumers prove
// their parameter reaches a Wait, inspectors and no-wait cycles stay
// unproven.
func TestWaitpairSummaries(t *testing.T) {
	p := loadProgram(t, "testdata/src/waitpair")
	cases := []struct {
		fn           string
		returnsAny   bool
		param        int // request parameter index, -1 to skip
		wantConsumed bool
	}{
		{".postOne", true, -1, false},
		{".postPair", true, -1, false},
		{".postGroup", true, -1, false},
		{".waitOn", false, 1, true},
		{".relay", false, 1, true},
		{".peek", false, 0, false},
		{".shuffleA", false, 1, false},
		{".shuffleB", false, 1, false},
		{".drain", false, 1, true},
	}
	for _, c := range cases {
		fi := funcNamed(t, p, c.fn)
		sum := p.summaryOf(fi)
		if sum.returnsAny != c.returnsAny {
			t.Errorf("%s: returnsAny = %v, want %v", c.fn, sum.returnsAny, c.returnsAny)
		}
		if c.param < 0 {
			continue
		}
		if !sum.reqParam[c.param] {
			t.Errorf("%s: param %d not recognized as request-typed", c.fn, c.param)
			continue
		}
		if sum.paramConsumed[c.param] != c.wantConsumed {
			t.Errorf("%s: paramConsumed[%d] = %v, want %v", c.fn, c.param, sum.paramConsumed[c.param], c.wantConsumed)
		}
	}
}
