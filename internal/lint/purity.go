package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// purity proves that functions marked //lint:pure — the tuner's cache-key
// canonicalizers and the α/β cost pricer — are transitively free of the
// three effects that would make a cache key or a price depend on anything
// but its inputs:
//
//   - wall-clock reads (time.Now and friends, the detnow list),
//   - process-global randomness (unseeded math/rand),
//   - map iteration with order-dependent effects (an encoder that walks
//     a map in randomized order produces a different key per run).
//
// The proof is a DFS over the call graph from each root. Stdlib callees
// are assumed pure (the effects above are only reachable through the
// time/math-rand packages, which the local facts catch at the call site);
// an in-module callee whose body is not in the loaded program — or a
// dynamic call through a function value or interface — cannot be proven
// and is reported as such. The fix is to load the missing package or
// restructure the root to avoid the dynamic hop.
var purityPass = &Pass{
	Name:  "purity",
	Doc:   "//lint:pure roots must be transitively free of time, global randomness, and map-order effects",
	Scope: scopeInternal,
}

func init() { purityPass.RunProgram = runPurity }

// purityFacts is one function's local effect set plus the callees a proof
// must recurse into.
type purityFacts struct {
	// effects are this function's own impure acts, rendered for the
	// diagnostic ("calls time.Now", "ranges over a map with ordered
	// effects"), in source order.
	effects []string
	// unprovable are calls whose target cannot be resolved to a body in
	// the program but belongs to the loaded module, rendered for the
	// diagnostic. Stdlib and dynamic calls are not listed.
	unprovable []string
}

// pureRoots returns every function in the program carrying a //lint:pure
// directive, in key order.
func pureRoots(p *Program) []*FuncInfo {
	var roots []*FuncInfo
	for _, key := range p.keys {
		fi := p.Funcs[key]
		if hasPureDirective(fi) {
			roots = append(roots, fi)
		}
	}
	return roots
}

// hasPureDirective reports whether fi's doc comment, or any comment on
// the line directly above its declaration, is //lint:pure.
func hasPureDirective(fi *FuncInfo) bool {
	if fi.Decl.Doc != nil {
		for _, c := range fi.Decl.Doc.List {
			if parseDirective(c.Text).kind == directivePure {
				return true
			}
		}
	}
	declLine := fi.Unit.Fset.Position(fi.Decl.Pos()).Line
	declFile := fi.Unit.Fset.Position(fi.Decl.Pos()).Filename
	for _, f := range fi.Unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fi.Unit.Fset.Position(c.Pos())
				if pos.Filename == declFile && pos.Line == declLine-1 &&
					parseDirective(c.Text).kind == directivePure {
					return true
				}
			}
		}
	}
	return false
}

func runPurity(p *Program) []Diagnostic {
	var out []Diagnostic
	for _, root := range pureRoots(p) {
		if !applies(purityPass, root.Unit.Path) {
			continue
		}
		visiting := map[string]bool{}
		if msg := p.impurityOf(root, visiting, nil); msg != "" {
			out = append(out, diag(root.Unit, root.Decl.Name, "purity",
				"%s is marked //lint:pure but %s", root.Obj.Name(), msg))
		}
	}
	return out
}

// impurityOf returns a rendered impurity ("calls time.Now via Encode ->
// stamp") for fi or any function it transitively calls, or "" when the
// whole call tree is provably pure. path carries the call chain from the
// root for the message; visiting breaks recursion cycles (a cycle adds no
// effects beyond its members' own, all of which are checked).
func (p *Program) impurityOf(fi *FuncInfo, visiting map[string]bool, path []string) string {
	if visiting[fi.Key] {
		return ""
	}
	visiting[fi.Key] = true

	facts := p.factsOf(fi)
	via := ""
	if len(path) > 0 {
		via = " (via " + strings.Join(path, " -> ") + ")"
	}
	if len(facts.effects) > 0 {
		return fmt.Sprintf("%s%s", facts.effects[0], via)
	}
	if len(facts.unprovable) > 0 {
		return fmt.Sprintf("calls %s, whose body is outside the loaded program, so purity cannot be proven%s",
			facts.unprovable[0], via)
	}
	for _, key := range fi.Callees {
		callee := p.Funcs[key]
		if callee == nil {
			continue // outside the index: already judged by unprovable/stdlib rules
		}
		if msg := p.impurityOf(callee, visiting, append(path, callee.Obj.Name())); msg != "" {
			return msg
		}
	}
	return ""
}

// factsOf computes (lazily, once) one function's local purity facts.
func (p *Program) factsOf(fi *FuncInfo) *purityFacts {
	if fi.facts != nil {
		return fi.facts
	}
	u := fi.Unit
	facts := &purityFacts{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			base, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := u.Info.Uses[base].(*types.PkgName)
			if !ok {
				return true
			}
			if _, isType := u.Info.Uses[n.Sel].(*types.TypeName); isType {
				return true
			}
			name := n.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if detnowTime[name] {
					facts.effects = append(facts.effects, "calls time."+name)
				}
			case "math/rand", "math/rand/v2":
				if !detnowRandOK[name] {
					facts.effects = append(facts.effects, "uses the process-global rand."+name)
				}
			}
		case *ast.RangeStmt:
			tv, ok := u.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if why := mapBodyEffect(u, n, fi.Decl.Body); why != "" {
				facts.effects = append(facts.effects, "ranges over a map and "+why)
			}
		case *ast.CallExpr:
			fn := staticCallee(u, n)
			if fn == nil {
				return true // dynamic call: not judged (documented approximation)
			}
			if p.Funcs[funcKey(fn)] != nil {
				return true // in the index: the DFS recurses into it
			}
			if p.InProgramPackage(fn) {
				facts.unprovable = append(facts.unprovable, fn.FullName())
			}
			// Stdlib / external: assumed pure; impure stdlib entry points
			// are exactly the time/rand selectors caught above.
		}
		return true
	})
	fi.facts = facts
	return facts
}
