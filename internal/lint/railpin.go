package lint

import (
	"go/ast"
)

// railpin rejects rail pinning with compile-time constants. A hardwired
// ViaRail(1) encodes an assumption about adapter count and health that
// the rail-health registry exists to own: pinned rails must be computed
// (PlanRails, a schedule's planned Rail field, a round-robin index), so
// that failover and re-weighted striping stay in charge of placement.
var railpinPass = &Pass{
	Name:  "railpin",
	Doc:   "rail pins must come from PlanRails/health-aware planning, not integer literals",
	Scope: scopeInternal,
	Run:   runRailpin,
}

func runRailpin(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id := calleeIdent(call)
			if id == nil || id.Name != "ViaRail" || len(call.Args) == 0 {
				return true
			}
			tv, ok := u.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil {
				return true // computed rail: fine
			}
			out = append(out, diag(u, call, "railpin",
				"rail hardwired to constant %s; derive it from PlanRails/health-aware planning so failover owns placement", tv.Value))
			return true
		})
	}
	return out
}
