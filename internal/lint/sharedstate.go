package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// sharedstate is the static shard-safety fence: no mutable value may be
// reachable from two simulated processes except through an engine-owned
// type. The engine interleaves proc steps deterministically, so a plain
// variable written by one proc and read by another is a data race in
// real-world terms and a replay hazard in simulated ones — the observed
// value depends on the event order, which is exactly what the scenario
// seed is supposed to pin down. sim.Resource, Mailbox, and the counter
// types serialize access through the event queue and are exempt.
//
// A spawn site is a call to Spawn or Run passing a closure whose
// parameter list includes a *Proc. Two hazards are reported:
//
//   - a variable captured by two or more spawned closures, written by at
//     least one of them;
//   - a closure spawned inside a loop writing a capture declared outside
//     the loop — with Go's per-iteration loop variables, everything
//     declared inside the loop body is private to one proc, and
//     everything outside is shared by all iterations.
//
// Captures are keyed by declaration position, which the shared FileSet
// makes unique across the whole program, so a package-level variable
// captured by spawn closures in two different functions is caught too.
var sharedstatePass = &Pass{
	Name:  "sharedstate",
	Doc:   "no mutable value shared across spawned sim procs except engine-owned types",
	Scope: scopeInternal,
}

func init() { sharedstatePass.RunProgram = runSharedstate }

// sharedExemptNames are the engine-owned types whose methods serialize
// cross-proc access; sharing them is the sanctioned channel. Matching is
// by type name plus the sim package path, so fixture stubs with the same
// names exercise the same rule.
var sharedExemptNames = map[string]bool{
	"Resource": true, "Mailbox": true, "Counter": true,
	"Gauge": true, "Engine": true, "Proc": true, "World": true,
}

// sharedExempt reports whether a captured variable's type is safe to
// share: an engine-owned named type (directly, behind pointers, or as a
// slice of such), anything from the sim package, or a function type
// (code is immutable; a closure value is only hazardous through its own
// captures, which are analyzed separately).
func sharedExempt(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return sharedExempt(t.Elem())
	case *types.Slice:
		return sharedExempt(t.Elem())
	case *types.Signature:
		return true
	case *types.Named:
		if sharedExemptNames[t.Obj().Name()] {
			return true
		}
		if pkg := t.Obj().Pkg(); pkg != nil && strings.HasSuffix(pkg.Path(), "internal/sim") {
			return true
		}
		if _, isFunc := t.Underlying().(*types.Signature); isFunc {
			return true
		}
	}
	return false
}

// spawnSite is one spawned closure with its context.
type spawnSite struct {
	fi   *FuncInfo
	call *ast.CallExpr
	fl   *ast.FuncLit
	loop ast.Node // innermost for/range enclosing the spawn, nil if none
}

// spawnClosure returns the proc-body closure of a Spawn/Run call, or nil.
func spawnClosure(u *Unit, call *ast.CallExpr) *ast.FuncLit {
	id := calleeIdent(call)
	if id == nil || (id.Name != "Spawn" && id.Name != "Run") {
		return nil
	}
	for _, arg := range call.Args {
		fl, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		if hasProcParam(u, fl) {
			return fl
		}
	}
	return nil
}

// hasProcParam reports whether a closure's parameter list includes a
// parameter of type *Proc (any package's Proc: the engine's, or a
// fixture stub's).
func hasProcParam(u *Unit, fl *ast.FuncLit) bool {
	if fl.Type.Params == nil {
		return false
	}
	for _, field := range fl.Type.Params.List {
		tv, ok := u.Info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Proc" {
			return true
		}
	}
	return false
}

// enclosingLoop returns the innermost for/range statement containing n
// within its function, or nil.
func enclosingLoop(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch cur.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return cur
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// sharedCapture is one (spawn site, captured variable) pair.
type sharedCapture struct {
	site *spawnSite
	cap  *capture
}

func runSharedstate(p *Program) []Diagnostic {
	var sites []*spawnSite
	for _, key := range p.keys {
		fi := p.Funcs[key]
		if !applies(sharedstatePass, fi.Unit.Path) {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fl := spawnClosure(fi.Unit, call); fl != nil {
				sites = append(sites, &spawnSite{
					fi: fi, call: call, fl: fl,
					loop: enclosingLoop(fi.parents, call),
				})
			}
			return true
		})
	}

	var out []Diagnostic
	byDecl := map[token.Pos][]sharedCapture{} // capture groups across all sites

	for _, site := range sites {
		for _, c := range capturesOf(site.fi.Unit, site.fl, site.fi.parents) {
			if sharedExempt(c.obj.Type()) {
				continue
			}
			byDecl[c.obj.Pos()] = append(byDecl[c.obj.Pos()], sharedCapture{site: site, cap: c})

			// Loop rule: one closure, many procs. A capture declared
			// outside the enclosing loop is the same variable in every
			// spawned proc.
			if site.loop == nil || !c.written {
				continue
			}
			if insideNode(c.obj.Pos(), site.loop) {
				continue // per-iteration: private to this proc
			}
			out = append(out, Diagnostic{
				Pos:  site.fi.Unit.Fset.Position(c.firstAt),
				Pass: "sharedstate",
				Message: "proc body spawned in a loop writes " + c.obj.Name() +
					", declared outside the loop and therefore shared by every spawned proc; declare it inside the loop or route the mutation through an engine-owned type (sim.Resource, Mailbox, Counter)",
			})
		}
	}

	// Cross-closure rule: the same variable captured by two or more
	// spawned procs, written by at least one.
	declKeys := make([]token.Pos, 0, len(byDecl))
	for k := range byDecl {
		declKeys = append(declKeys, k)
	}
	sort.Slice(declKeys, func(i, j int) bool { return declKeys[i] < declKeys[j] })
	for _, k := range declKeys {
		group := byDecl[k]
		if len(group) < 2 {
			continue
		}
		written := false
		for _, sc := range group {
			written = written || sc.cap.written
		}
		if !written {
			continue
		}
		for _, sc := range group {
			if !sc.cap.written {
				continue
			}
			out = append(out, Diagnostic{
				Pos:  sc.site.fi.Unit.Fset.Position(sc.cap.firstAt),
				Pass: "sharedstate",
				Message: "proc body writes " + sc.cap.obj.Name() + ", which is captured by " +
					strconv.Itoa(len(group)) + " spawned procs; cross-proc mutable state must go through an engine-owned type (sim.Resource, Mailbox, Counter) or a per-proc copy",
			})
		}
	}
	return out
}
