package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Waitpair's interprocedural half: per-function summaries over the call
// graph. A summary answers the two questions the intraprocedural pass
// used to punt on at function boundaries:
//
//   - does this function return a request its caller must wait on?
//   - does a request passed into this parameter provably reach a
//     Wait/Waitall inside (directly or through further helpers)?
//
// Consumption is a least fixpoint: a parameter starts unproven and is
// promoted to consumed when its uses reach a Wait, a trusted escape
// (return, store into a structure, a call outside the loaded program),
// or a parameter of another function already proven to consume. Cycles
// of helpers that hand a request around without ever waiting therefore
// stay unproven — and every call site into the cycle is reported.

// reqSummary is the waitpair summary of one declared function.
type reqSummary struct {
	// resultsReq marks which results are request-typed: a caller that
	// drops or never waits such a result leaks the request.
	resultsReq []bool
	// returnsAny is true when any result is request-typed.
	returnsAny bool
	// reqParam marks which parameters (receiver excluded) are
	// request-typed; only those have a consumption verdict.
	reqParam []bool
	// paramConsumed marks request-typed parameters proven to reach a
	// Wait/Waitall (or a trusted escape) inside the function.
	paramConsumed []bool
}

// isRequestType reports whether t is a request shape: a named type
// whose name is or ends in Request (mpi.Request, but also wrapper
// handles like collectives.AllgatherRequest), a pointer to one, or a
// slice of either. Wrapper handles complete via their own Wait method,
// which classify recognizes alongside the p.Wait(req) form.
func isRequestType(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return isRequestType(t.Elem())
	case *types.Slice:
		return isRequestType(t.Elem())
	case *types.Named:
		return strings.HasSuffix(t.Obj().Name(), "Request")
	}
	return false
}

// summaryOf returns fn's waitpair summary, computing the whole
// program's fixpoint on first use.
func (p *Program) summaryOf(fi *FuncInfo) *reqSummary {
	if fi.summary == nil {
		p.buildSummaries()
	}
	return fi.summary
}

// buildSummaries seeds every function's summary from its signature and
// iterates parameter consumption to a fixpoint.
func (p *Program) buildSummaries() {
	for _, key := range p.keys {
		fi := p.Funcs[key]
		sig := fi.Obj.Type().(*types.Signature)
		s := &reqSummary{}
		for i := 0; i < sig.Results().Len(); i++ {
			isReq := isRequestType(sig.Results().At(i).Type())
			s.resultsReq = append(s.resultsReq, isReq)
			s.returnsAny = s.returnsAny || isReq
		}
		for i := 0; i < sig.Params().Len(); i++ {
			s.reqParam = append(s.reqParam, isRequestType(sig.Params().At(i).Type()))
			s.paramConsumed = append(s.paramConsumed, false)
		}
		fi.summary = s
	}
	// Least fixpoint: consumption only ever flips false -> true, so the
	// iteration terminates; the bound is belt and braces.
	for round := 0; round < 16; round++ {
		changed := false
		for _, key := range p.keys {
			if p.refineSummary(p.Funcs[key]) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// refineSummary recomputes parameter consumption for one function under
// the current summaries. Reports whether anything was promoted.
func (p *Program) refineSummary(fi *FuncInfo) bool {
	s := fi.summary
	sig := fi.Obj.Type().(*types.Signature)
	changed := false
	for i := 0; i < sig.Params().Len(); i++ {
		if !s.reqParam[i] || s.paramConsumed[i] {
			continue
		}
		obj := sig.Params().At(i)
		a := &reqAnalysis{u: fi.Unit, body: fi.Decl.Body, parents: fi.parents, prog: p}
		if a.objConsumed(obj, fi.Decl.Body.Pos()) {
			s.paramConsumed[i] = true
			changed = true
		}
	}
	return changed
}

// objConsumed reports whether any use of obj after pos consumes it:
// reaches a Wait, escapes somewhere trusted, or is carried through a
// slice that is itself consumed. Conditional consumption counts — a
// helper that waits on some path is treated as an owner; the caller-side
// all-paths discipline applies where the request is produced.
func (a *reqAnalysis) objConsumed(obj types.Object, pos token.Pos) bool {
	for _, us := range a.usesOf(obj, pos) {
		switch us.kind {
		case useWait, useEscape:
			return true
		case useCarry:
			if us.carrier != nil && a.carrierConsumed(us.carrier, us.id.End(), 0) {
				return true
			}
		}
	}
	return false
}

// argParamIndex maps a call argument position to the callee's parameter
// index, folding variadic tails onto the final parameter. ok is false
// when the position cannot be mapped.
func argParamIndex(sig *types.Signature, arg int) (int, bool) {
	n := sig.Params().Len()
	if n == 0 {
		return 0, false
	}
	if arg < n {
		return arg, true
	}
	if sig.Variadic() {
		return n - 1, true
	}
	return 0, false
}

// findArg returns the index of e in the call's argument list, or -1.
func findArg(call *ast.CallExpr, e ast.Expr) int {
	for i, arg := range call.Args {
		if arg == e {
			return i
		}
	}
	return -1
}
