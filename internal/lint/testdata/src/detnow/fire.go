// Package detnow is the firing fixture for the detnow pass: wall-clock
// reads and process-global randomness that would make a simulation
// unreplayable.
package detnow

import (
	"math/rand"
	"time"
)

// JitterBadly models per-message jitter from sources that differ on
// every run.
func JitterBadly() time.Duration {
	start := time.Now()               // finding: wall clock
	time.Sleep(50 * time.Microsecond) // finding: real sleep in sim code
	if rand.Intn(2) == 0 {            // finding: global source
		rand.Seed(42) // finding: reseeding the global source helps nothing
	}
	return time.Since(start) // finding: wall clock
}

// LateTimer leaks a real timer into virtual time.
func LateTimer(fire func()) *time.Timer {
	return time.AfterFunc(time.Millisecond, fire) // finding: wall-clock timer
}
