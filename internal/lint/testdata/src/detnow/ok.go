package detnow

import (
	"math/rand"
	"time"
)

// SeededDelay draws from an explicitly seeded local source: the same
// seed replays the same sequence, so determinism survives.
func SeededDelay(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8)
}

// Budget uses time only for constants and arithmetic — no clock reads.
func Budget(n int) time.Duration {
	var d time.Duration = time.Millisecond
	return d * time.Duration(n)
}
