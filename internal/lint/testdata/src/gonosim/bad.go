package gonosim

// BadSuppressions exercises suppression hygiene: a directive without a
// reason and one naming an unknown pass both get reported, and neither
// silences the goroutine findings they sit above.
func BadSuppressions(work func()) {
	//lint:ignore gonosim
	go work() // finding: directive above lacks a reason, so it does not apply

	//lint:ignore gonosimm typo in the pass name
	go work() // finding: directive names an unknown pass
}
