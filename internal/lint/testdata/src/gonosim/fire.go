// Package gonosim is the fixture for the gonosim pass: raw goroutines
// in code the engine must schedule deterministically.
package gonosim

// RaceTheClock hands work to the Go scheduler, whose interleaving the
// sim engine cannot order.
func RaceTheClock(work func()) {
	go work() // finding: raw goroutine
	ch := make(chan int)
	go func() { ch <- 1 }() // finding: raw goroutine literal
	<-ch
}
