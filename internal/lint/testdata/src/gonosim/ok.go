package gonosim

// engine mirrors the sim engine's spawn primitive.
type engine struct{}

func (e *engine) Spawn(name string, fn func()) { fn() }

// SpawnWorkers routes all concurrency through the engine.
func SpawnWorkers(e *engine, work func()) {
	for i := 0; i < 3; i++ {
		e.Spawn("worker", work)
	}
}

// RunnerInternals shows a justified suppression: the reason is recorded
// and the finding is silenced for this line only.
func RunnerInternals(work func()) {
	//lint:ignore gonosim fixture mirror of the engine's own serialized worker launch
	go work()
}
