package locklint

// LeakOnEarlyReturn unlocks on the miss path but not on the hit.
func (s *Service) LeakOnEarlyReturn(key string) int {
	s.mu.Lock() // finding: held at the early return
	if v, ok := s.cache[key]; ok {
		return v
	}
	s.mu.Unlock()
	return 0
}

// NeverUnlocked acquires and forgets.
func (s *Service) NeverUnlocked() {
	s.mu.Lock() // finding: never released
	s.cache["x"] = 1
}

// HeavyUnderLock synthesizes while holding the mutex — the shape the
// tuner's singleflight design exists to prevent.
func (s *Service) HeavyUnderLock(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Synthesize(key) // finding: heavy call under s.mu
}

// MismatchedRead takes the read lock but releases the write flavor:
// the read lock is never released.
func (s *Service) MismatchedRead(key string) int {
	s.rw.RLock() // finding: read lock never released
	v := s.cache[key]
	s.rw.Unlock()
	return v
}
