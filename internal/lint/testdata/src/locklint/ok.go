package locklint

// DeferredUnlock is the canonical acquire/defer shape.
func (s *Service) DeferredUnlock(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache[key]
}

// EarlyReturnBalanced unlocks on both paths and runs the heavy call in
// the gap — the tuner Decide shape (check cache, release, synthesize,
// re-acquire to publish).
func (s *Service) EarlyReturnBalanced(key string) int {
	s.mu.Lock()
	if v, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := Simulate(key)
	s.mu.Lock()
	s.cache[key] = v
	s.mu.Unlock()
	return v
}

// ReadPath pairs RLock with RUnlock.
func (s *Service) ReadPath(key string) int {
	s.rw.RLock()
	v := s.cache[key]
	s.rw.RUnlock()
	return v
}

// ClosureDefer releases through a deferred closure.
func (s *Service) ClosureDefer(key string) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.cache[key]
}
