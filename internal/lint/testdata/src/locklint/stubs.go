// Package locklint is the fixture for the locklint pass. Simulate and
// Synthesize stand in for the heavy calls the pass forbids under a
// lock; the mutexes are the real sync types, since the pass matches
// their methods by package.
package locklint

import "sync"

type Service struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cache map[string]int
}

func Simulate(key string) int { return len(key) }

func Synthesize(key string) int { return len(key) }
