// Package maporder is the firing fixture for the maporder pass: map
// iteration whose body has order-dependent effects.
package maporder

type mailbox struct{}

func (m *mailbox) Put(v int) {}

type step struct{ dst int }

// BuildSteps appends to the schedule in map order: the resulting step
// list differs from run to run.
func BuildSteps(peers map[int]*mailbox) []step {
	var steps []step
	for dst := range peers { // finding: appends to steps, never sorted
		steps = append(steps, step{dst})
	}
	return steps
}

// NotifyAll posts messages in map order, so mailbox arrival order is
// randomized.
func NotifyAll(peers map[int]*mailbox) {
	for _, mb := range peers { // finding: calls Put
		mb.Put(1)
	}
}

// FanOut sends on a channel in map order.
func FanOut(peers map[int]int, ch chan int) {
	for _, v := range peers { // finding: channel send
		ch <- v
	}
}
