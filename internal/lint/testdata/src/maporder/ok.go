package maporder

import "sort"

// SortedSteps collects keys in map order but sorts them before building
// the schedule — the canonical deterministic pattern.
func SortedSteps(peers map[int]*mailbox) []step {
	keys := make([]int, 0, len(peers))
	for k := range peers {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	steps := make([]step, 0, len(keys))
	for _, k := range keys {
		steps = append(steps, step{k})
	}
	return steps
}

// MaxLoad is an order-insensitive fold: any iteration order yields the
// same maximum.
func MaxLoad(load map[int]int) int {
	best := 0
	for _, v := range load {
		if v > best {
			best = v
		}
	}
	return best
}

// CountReady only inspects; nothing observable depends on order.
func CountReady(ready map[int]bool) int {
	n := 0
	for _, ok := range ready {
		if ok {
			n++
		}
	}
	return n
}
