// Package program exercises the whole-program layer directly: the call
// graph (recursion, method values), and the closure capture analysis
// (loop variables, outer accumulators). It is not a pass fixture — the
// program_test.go unit tests load it by name.
package program

// fact is directly recursive: the call graph keeps the self-edge, since
// recursion is a real cycle for the fixpoint analyses.
func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}

type Greeter struct{ prefix string }

func (g Greeter) Greet(s string) string { return g.prefix + s }

// useMethodValue references Greet without calling it; the reference is
// recorded as a conservative edge, since it is how a later dynamic call
// is formed.
func useMethodValue(g Greeter) func(string) string {
	return g.Greet
}

// loopCaptures closes over the (per-iteration) loop variable and a
// (shared) outer accumulator.
func loopCaptures() []func() int {
	sum := 0
	var fns []func() int
	for i := 0; i < 3; i++ {
		fns = append(fns, func() int {
			sum += i
			return i
		})
	}
	return fns
}
