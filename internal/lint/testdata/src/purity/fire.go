package purity

import (
	"math/rand"
	"time"
)

// StampedKey folds the wall clock into a cache key: two identical
// queries get different keys.
//
//lint:pure a key must depend on the query alone
func StampedKey(q int) int64 { // finding: calls time.Now
	return int64(q) + time.Now().UnixNano()
}

// jitter draws from the process-global source — impure one call away.
func jitter() float64 { return rand.Float64() }

// NoisyPrice is pure-looking locally; the impurity is in its callee.
//
//lint:pure prices must replay bit-identically
func NoisyPrice(base float64) float64 { // finding: via jitter
	return base * jitter()
}

// MapWalkEncode emits keys in randomized map order: the encoding
// differs between runs of the same input.
//
//lint:pure encodings feed cache keys
func MapWalkEncode(m map[string]int, sink *Tape) { // finding: ordered map walk
	for k := range m {
		sink.Emit(k)
	}
}
