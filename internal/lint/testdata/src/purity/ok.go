package purity

import (
	"math/rand"
	"sort"
)

// fold is a plain deterministic reduction.
func fold(vs []int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

// StableKey proves purity through an in-program callee.
//
//lint:pure cache keys depend only on inputs
func StableKey(vs []int) int { return fold(vs) }

// SortedEncode walks a map but sorts the collected keys before anyone
// can observe the order — the canonical fix.
//
//lint:pure sorted walks are deterministic
func SortedEncode(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SeededDraw uses an explicitly seeded generator: the same seed always
// yields the same value.
//
//lint:pure seeded draws replay bit-identically
func SeededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
