// Package purity is the fixture for the purity pass: functions marked
// //lint:pure must be transitively free of wall-clock reads, global
// randomness, and order-dependent map walks.
package purity

// Tape stands in for an encoder sink whose write order is observable.
type Tape struct{ out []string }

func (t *Tape) Emit(s string) { t.out = append(t.out, s) }
