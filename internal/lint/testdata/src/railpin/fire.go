// Package railpin is the fixture for the railpin pass: rail choices
// hardwired at compile time instead of flowing from planning.
package railpin

type SendOption func()

// ViaRail mirrors the mpi option the pass matches by name.
func ViaRail(r int) SendOption { return func() {} }

const fastRail = 1

// PinnedLiteral hardwires rail 0 — wrong the moment the health registry
// marks it down or the machine has a different adapter count.
func PinnedLiteral() SendOption {
	return ViaRail(0) // finding: literal rail
}

// PinnedConst is no better: the constant still bypasses planning.
func PinnedConst() SendOption {
	return ViaRail(fastRail) // finding: constant rail
}

// PinnedExpr folds constants and is still compile-time fixed.
func PinnedExpr() SendOption {
	return ViaRail(1 + 1) // finding: constant expression rail
}
