package railpin

// PlanRails mirrors the health registry's planning entry point.
func PlanRails(node int) int { return 2 }

// StripePlanned walks the planned rail count: every pin is computed, so
// failover and re-weighting stay in charge.
func StripePlanned(node int) []SendOption {
	var opts []SendOption
	for r := 0; r < PlanRails(node); r++ {
		opts = append(opts, ViaRail(r))
	}
	return opts
}

// FromSchedule pins whatever the schedule's analyzer chose.
type xfer struct{ Rail int }

func FromSchedule(t xfer) SendOption {
	return ViaRail(t.Rail)
}
