package sharedstate

// SharedTally: two proc bodies increment one plain int. The observed
// value depends on interleaving — exactly what the pass forbids.
func SharedTally(eng *Engine) {
	total := 0
	eng.Spawn("a", func(p *Proc) { total++ })    // finding: written, shared by 2 procs
	eng.Spawn("b", func(p *Proc) { total += 2 }) // finding: written, shared by 2 procs
	_ = total
}

// LoopSharedSlice: procs spawned in a loop write a slice declared
// outside it, so every proc mutates the same backing array.
func LoopSharedSlice(eng *Engine) {
	hits := make([]int, 8)
	for i := 0; i < 8; i++ {
		rank := i
		eng.Spawn("w", func(p *Proc) { hits[rank] = 1 }) // finding: loop-shared write
	}
	_ = hits
}

// seen is the package-level hazard: spawn sites in two different
// functions reach the same global.
var seen int

func SpawnWriterA(eng *Engine) {
	eng.Spawn("ga", func(p *Proc) { seen++ }) // finding: global written by 2 procs
}

func SpawnWriterB(eng *Engine) {
	eng.Spawn("gb", func(p *Proc) { seen = 2 }) // finding: global written by 2 procs
}
