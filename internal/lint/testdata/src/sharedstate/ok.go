package sharedstate

// PerProcState: with per-iteration loop variables, everything declared
// inside the loop body is private to the proc spawned that iteration.
func PerProcState(eng *Engine) {
	for i := 0; i < 4; i++ {
		local := i
		eng.Spawn("w", func(p *Proc) { local++ })
	}
}

// EngineOwned: cross-proc effects flow through the sanctioned types;
// their methods serialize access through the event queue.
func EngineOwned(eng *Engine, res *Resource, box *Mailbox) {
	var done Counter
	eng.Spawn("a", func(p *Proc) {
		res.Acquire(p, 1)
		box.Put(1)
		done.Add(1)
	})
	eng.Spawn("b", func(p *Proc) {
		res.Release(1)
		done.Add(1)
	})
}

// ReadSharedConfig: a capture every proc only reads is immutable in
// practice and safe to share.
func ReadSharedConfig(eng *Engine) {
	limit := 16
	eng.Spawn("a", func(p *Proc) { _ = limit })
	eng.Spawn("b", func(p *Proc) { _ = limit })
}
