// Package sharedstate is the fixture for the sharedstate pass. The
// stubs mirror the engine API shapes the pass matches by name and type:
// Spawn/Run with a *Proc closure marks a proc body, and the named types
// here stand in for the engine-owned cross-proc channels.
package sharedstate

type Proc struct{}

func (p *Proc) Now() int64 { return 0 }

type Resource struct{ n int }

func (r *Resource) Acquire(p *Proc, n int) {}
func (r *Resource) Release(n int)          {}

type Mailbox struct{}

func (m *Mailbox) Put(v int)       {}
func (m *Mailbox) Get(p *Proc) int { return 0 }

type Counter struct{ n int64 }

func (c *Counter) Add(d int64) {}

type Engine struct{}

func (e *Engine) Spawn(name string, fn func(p *Proc)) {}
func (e *Engine) Run() error                          { return nil }
