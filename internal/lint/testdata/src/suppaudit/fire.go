// Package suppaudit is the fixture for the suppression audit: a valid
// //lint:ignore that matches no finding is dead weight that will
// silently swallow a future, different finding on its line.
package suppaudit

import "time"

// The directive below suppressed a wall-clock read once; the code moved
// on and nothing on its line or the next fires detnow anymore.
//
//lint:ignore detnow this once suppressed a wall-clock read
var quantum = int64(7)

// stale on a live line: the next line fires detnow, but only the
// detnow directive matches it — the railpin one suppresses nothing.
//
//lint:ignore railpin nothing here pins a rail
func stamp() int64 {
	//lint:ignore detnow fixture exercises a live suppression
	return time.Now().UnixNano() + quantum
}
