package suppaudit

import "time"

// A used suppression is not stale: the next line genuinely fires detnow
// and the directive absorbs it.
func stampOK() int64 {
	//lint:ignore detnow fixture proves live suppressions stay silent
	return time.Now().UnixNano()
}
