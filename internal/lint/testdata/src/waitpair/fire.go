package waitpair

// DiscardSend fires and forgets: the transfer's completion is never
// observed.
func DiscardSend(p *Proc, data Buf) {
	p.Isend(1, 0, data) // finding: result discarded
}

// BlankRecv explicitly throws the request away.
func BlankRecv(p *Proc) {
	_ = p.Irecv(0, 0) // finding: assigned to _
}

// NeverWaited binds the request but no path waits on it.
func NeverWaited(p *Proc, data Buf) {
	req := p.Isend(2, 0, data) // finding: never waited
	if req != nil {
		_ = req // inspection only; not a wait
	}
}

// OneBranchWait waits only when fast is set: the slow path leaks the
// send request.
func OneBranchWait(p *Proc, data Buf, fast bool) {
	req := p.Isend(3, 0, data) // finding: waited only inside a conditional
	if fast {
		p.Wait(req)
	}
}

// CarriedButDropped appends requests into a slice that is never
// consumed.
func CarriedButDropped(p *Proc, data Buf) {
	var reqs []*Request
	for i := 0; i < 4; i++ {
		r := p.Isend(i, 0, data) // finding: carrier slice never waited
		reqs = append(reqs, r)
	}
	_ = len(reqs)
}
