package waitpair

// Interprocedural fixtures: producers and consumers behind helpers,
// resolved through the call-graph summaries.

// postOne returns the request for the caller to own — the summary marks
// its result request-typed, so callers are checked like Isend callers.
func postOne(p *Proc, data Buf) *Request { return p.Isend(7, 0, data) }

// postPair posts both directions and returns both requests.
func postPair(p *Proc, data Buf) (*Request, *Request) {
	return p.Isend(8, 0, data), p.Irecv(8, 0)
}

// waitOn consumes a request on behalf of its caller.
func waitOn(p *Proc, r *Request) { p.Wait(r) }

// relay hands the request one hop further to a consumer.
func relay(p *Proc, r *Request) { waitOn(p, r) }

// peek inspects a request without ever consuming it.
func peek(r *Request) bool { return r != nil }

// shuffleA and shuffleB hand a request around a cycle in which nobody
// waits; the fixpoint leaves both parameters unproven.
func shuffleA(p *Proc, r *Request, depth int) {
	if depth > 0 {
		shuffleB(p, r, depth-1)
	}
}

func shuffleB(p *Proc, r *Request, depth int) { shuffleA(p, r, depth) }

// HelperDiscarded drops a helper-returned request exactly like a
// discarded Isend.
func HelperDiscarded(p *Proc, data Buf) {
	postOne(p, data) // finding: helper result discarded
}

// InspectedOnly hands the request to a helper whose summary proves it
// never waits — inspection is not consumption.
func InspectedOnly(p *Proc, data Buf) {
	req := p.Isend(4, 0, data) // finding: only handed to non-consuming helpers
	_ = peek(req)
}

// CycledAway feeds the request into the no-wait helper cycle.
func CycledAway(p *Proc) {
	req := p.Irecv(3, 0) // finding: the cycle never waits
	shuffleA(p, req, 2)
}

// ConsumedByHelper posts and delegates the wait one hop.
func ConsumedByHelper(p *Proc, data Buf) {
	req := p.Isend(5, 0, data)
	waitOn(p, req)
}

// ConsumedTwoHops delegates the wait through two helpers.
func ConsumedTwoHops(p *Proc, data Buf) {
	req := p.Isend(6, 0, data)
	relay(p, req)
}

// HelperResultWaited waits on a helper-returned request itself.
func HelperResultWaited(p *Proc, data Buf) {
	req := postOne(p, data)
	p.Wait(req)
}

// PairWaited unpacks a tuple of helper-returned requests and waits on
// both halves.
func PairWaited(p *Proc, data Buf) {
	sreq, rreq := postPair(p, data)
	p.Wait(rreq)
	p.Wait(sreq)
}
