package waitpair

// PairedRing is the canonical post/post/wait/wait ring step.
func PairedRing(p *Proc, data Buf) Buf {
	rreq := p.Irecv(0, 7)
	sreq := p.Isend(1, 7, data)
	got := p.Wait(rreq)
	p.Wait(sreq)
	return got
}

// CarriedToWaitall collects requests and drains them with a variadic
// Waitall — consumption through the carrier slice.
func CarriedToWaitall(p *Proc, data Buf) {
	var reqs []*Request
	for i := 0; i < 4; i++ {
		r := p.Isend(i, 0, data)
		reqs = append(reqs, r)
	}
	p.Waitall(reqs...)
}

// GuardedWait is the conditional-post idiom: the wait is guarded on the
// request itself, so no path leaks it.
func GuardedWait(p *Proc, data Buf, send bool) {
	var sreq *Request
	if send {
		sreq = p.Isend(1, 0, data)
	}
	if sreq != nil {
		p.Wait(sreq)
	}
}

// HandedOff escapes into a helper, which owns the requests from then on.
func HandedOff(p *Proc, data Buf) {
	reqs := []*Request{p.Isend(1, 0, data), p.Irecv(1, 0)}
	drain(p, reqs)
}

// WaitInline nests the post inside the wait.
func WaitInline(p *Proc) Buf {
	return p.Wait(p.Irecv(2, 1))
}
