// Package waitpair is the fixture for the waitpair pass. The stubs
// mirror the mpi request API shapes the pass matches by name.
package waitpair

type Request struct{ done bool }

type Buf struct{}

type Proc struct{}

func (p *Proc) Isend(dst, tag int, data Buf) *Request { return &Request{} }

func (p *Proc) Irecv(src, tag int) *Request { return &Request{} }

func (p *Proc) Wait(r *Request) Buf { return Buf{} }

func (p *Proc) Waitall(rs ...*Request) []Buf { return nil }

// drain stands in for a helper that takes ownership of requests.
func drain(p *Proc, rs []*Request) {
	for _, r := range rs {
		p.Wait(r)
	}
}
