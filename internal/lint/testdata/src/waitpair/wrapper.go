package waitpair

// Wrapper request handles: any named type ending in Request is a
// request shape, and a Wait method called on the handle itself
// completes it — the collectives.AllgatherRequest pattern, where
// IAllgatherDirect returns a handle that owns the underlying requests.

// GroupRequest owns a batch of in-flight receives.
type GroupRequest struct {
	p    *Proc
	rs   []*Request
	done bool
}

// postGroup posts one receive per peer and hands ownership to the
// returned handle; the summary marks the result request-typed.
func postGroup(p *Proc, peers []int) *GroupRequest {
	g := &GroupRequest{p: p}
	for _, peer := range peers {
		g.rs = append(g.rs, p.Irecv(peer, 9))
	}
	return g
}

// Wait completes every receive the handle owns.
func (g *GroupRequest) Wait() {
	if g.done {
		return
	}
	g.done = true
	for _, r := range g.rs {
		g.p.Wait(r)
	}
}

// WrapperDiscarded drops the handle on the floor; nobody can ever
// complete the receives it owns.
func WrapperDiscarded(p *Proc, peers []int) {
	postGroup(p, peers) // finding: wrapper handle discarded
}

// WrapperNeverWaited binds the handle but only reads a field.
func WrapperNeverWaited(p *Proc, peers []int) {
	g := postGroup(p, peers) // finding: handle never reaches a Wait
	_ = g.done
}

// WrapperWaited completes through the handle's own Wait method.
func WrapperWaited(p *Proc, peers []int) {
	g := postGroup(p, peers)
	g.Wait()
}
