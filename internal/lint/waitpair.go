package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// waitpair checks that every request returned by Isend/Irecv — or by a
// helper whose signature returns a request — reaches a Wait/Waitall. It
// is the static mirror of the teardown audit: VerifyTeardown catches a
// leaked receive only on the scenarios a campaign happens to run, while
// this pass rejects the code shape outright.
//
// The analysis is flow-approximate per function and interprocedural
// across them, via the call-graph summaries in summary.go:
//
//   - a request discarded at the call site (expression statement or
//     assignment to _) is always reported — whether it came from
//     Isend/Irecv or from a helper that returns a request;
//   - a request bound to a local that is never passed to Wait/Waitall,
//     never appended into a later-consumed slice, and never escapes
//     (return, store into a structure) is reported;
//   - a request passed to a helper in the loaded program is consumed
//     only if that helper's summary proves the parameter reaches a
//     Wait (directly or through further helpers); handing a request to
//     a helper that merely inspects it no longer counts;
//   - a request whose only waits sit inside conditionals that do not
//     dominate the post is reported as a may-leak, unless the guard
//     mentions the request itself (the `if req != nil { Wait }` idiom).
//
// Escapes out of the loaded program (stdlib calls, stores into
// structures, returns) are trusted: returns are re-checked at every
// call site through the returning function's summary.
var waitpairPass = &Pass{
	Name:  "waitpair",
	Doc:   "every Isend/Irecv or helper-returned request must reach a Wait/Waitall on all paths",
	Scope: scopeInternal,
}

func init() { waitpairPass.RunProgram = runWaitpairProgram }

func runWaitpairProgram(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, key := range prog.Keys() {
		fi := prog.Funcs[key]
		if !applies(waitpairPass, fi.Unit.Path) {
			continue
		}
		a := &reqAnalysis{u: fi.Unit, body: fi.Decl.Body, parents: fi.parents, prog: prog}
		out = append(out, a.run()...)
	}
	return out
}

type reqAnalysis struct {
	u       *Unit
	body    *ast.BlockStmt
	parents map[ast.Node]ast.Node
	prog    *Program // nil disables the interprocedural refinements
}

// buildParents maps every node under root to its syntactic parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// use classification for one identifier occurrence of a tracked request.
type useKind int

const (
	useInspect useKind = iota // read-only: comparison, field access, non-consuming helper
	useWait                   // passed to Wait/Waitall or a consuming helper
	useEscape                 // trusted escape: return, store, call outside the program
	useCarry                  // appended into a slice (consumed iff the slice is)
)

type use struct {
	id      *ast.Ident
	kind    useKind
	carrier types.Object // for useCarry: the slice appended into
	helper  string       // for useInspect via a helper: its name, for the message
}

// producer resolves a call to a request producer: Isend/Irecv by name,
// or — with a program loaded — any declared function whose signature
// returns a request. Returns the producer's display name and its
// request-typed result mask (nil when the call is not a producer).
func (a *reqAnalysis) producer(call *ast.CallExpr) (string, []bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if name := sel.Sel.Name; name == "Isend" || name == "Irecv" {
			return name, []bool{true}
		}
	}
	if a.prog == nil {
		return "", nil
	}
	fi := a.prog.FuncAt(a.u, call)
	if fi == nil {
		return "", nil
	}
	sum := a.prog.summaryOf(fi)
	if !sum.returnsAny {
		return "", nil
	}
	return fi.Obj.Name(), sum.resultsReq
}

func (a *reqAnalysis) run() []Diagnostic {
	var out []Diagnostic
	ast.Inspect(a.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, results := a.producer(call)
		if results == nil {
			return true
		}
		switch parent := a.parents[call].(type) {
		case *ast.ExprStmt:
			out = append(out, diag(a.u, call, "waitpair",
				"result of %s is discarded; the request never reaches a Wait, so completion is unobserved", name))
		case *ast.AssignStmt:
			if len(parent.Rhs) == 1 && len(parent.Lhs) > 1 {
				// Tuple assignment: check each request-typed result's target.
				for i, lhs := range parent.Lhs {
					if i >= len(results) || !results[i] {
						continue
					}
					out = append(out, a.checkTarget(lhs, call, name)...)
				}
				break
			}
			out = append(out, a.checkTarget(assignTarget(parent, call), call, name)...)
		case *ast.ValueSpec:
			for i, v := range parent.Values {
				if v != ast.Expr(call) || i >= len(parent.Names) {
					continue
				}
				if obj := a.u.Info.ObjectOf(parent.Names[i]); obj != nil {
					if d, bad := a.checkProducer(obj, call, name); bad {
						out = append(out, d)
					}
				}
			}
		default:
			// Nested in another expression (Wait(p.Irecv(...)), append
			// arg, composite literal, return value): it escapes into the
			// surrounding expression, which takes responsibility.
		}
		return true
	})
	return out
}

// checkTarget reports on one assignment target receiving a produced
// request: blank targets always fire; plain locals are tracked.
func (a *reqAnalysis) checkTarget(lhs ast.Expr, call *ast.CallExpr, name string) []Diagnostic {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return []Diagnostic{diag(a.u, call, "waitpair",
				"result of %s is assigned to _; the request never reaches a Wait", name)}
		}
		obj := a.u.Info.ObjectOf(lhs)
		if obj != nil {
			if d, bad := a.checkProducer(obj, call, name); bad {
				return []Diagnostic{d}
			}
		}
	default:
		// Stored straight into a slice element, field, or map:
		// the container owns it now; trust the consumer.
	}
	return nil
}

// assignTarget returns the LHS expression matching call on the RHS of an
// assignment, or nil.
func assignTarget(as *ast.AssignStmt, call *ast.CallExpr) ast.Expr {
	for i, rhs := range as.Rhs {
		if rhs == ast.Expr(call) && i < len(as.Lhs) {
			return as.Lhs[i]
		}
	}
	return nil
}

// checkProducer inspects every use of obj after the producing call and
// decides whether the request provably reaches a wait.
func (a *reqAnalysis) checkProducer(obj types.Object, call *ast.CallExpr, name string) (Diagnostic, bool) {
	uses := a.usesOf(obj, call.End())
	definite, conditional, inspectedByHelper := false, false, false
	for _, us := range uses {
		consumed := false
		switch us.kind {
		case useWait, useEscape:
			consumed = true
		case useCarry:
			consumed = us.carrier != nil && a.carrierConsumed(us.carrier, us.id.End(), 0)
		case useInspect:
			if us.helper != "" {
				inspectedByHelper = true
			}
		}
		if !consumed {
			continue
		}
		if a.conditionalBetween(call, us.id, obj) {
			conditional = true
		} else {
			definite = true
		}
	}
	switch {
	case definite:
		return Diagnostic{}, false
	case conditional:
		return diag(a.u, call, "waitpair",
			"request from %s is waited only inside a conditional; a path can leave it un-waited (guard on the request itself, or wait unconditionally)", name), true
	case inspectedByHelper:
		return diag(a.u, call, "waitpair",
			"request from %s is handed only to helpers that never Wait on it (per their call-graph summaries); it never reaches a Wait/Waitall", name), true
	default:
		return diag(a.u, call, "waitpair",
			"request from %s is never passed to Wait/Waitall and never escapes this function", name), true
	}
}

// usesOf collects every classified occurrence of obj after pos.
func (a *reqAnalysis) usesOf(obj types.Object, pos token.Pos) []use {
	var uses []use
	ast.Inspect(a.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= pos || a.u.Info.ObjectOf(id) != obj {
			return true
		}
		uses = append(uses, a.classify(id))
		return true
	})
	return uses
}

// classify decides what one occurrence of a request variable does with
// the value, walking outward through wrapping expressions.
func (a *reqAnalysis) classify(id *ast.Ident) use {
	var cur ast.Node = id
	for {
		parent := a.parents[cur]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p // container indexed; what happens to the element?
				continue
			}
			return use{id: id, kind: useInspect} // used as an index
		case *ast.SelectorExpr:
			if p.X == exprOf(cur) {
				if call, ok := a.parents[p].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
					// Method call on the request itself: wrapper handles
					// (AllgatherRequest and friends) complete via their
					// own Wait method rather than p.Wait(req).
					if p.Sel.Name == "Wait" || p.Sel.Name == "Waitall" {
						return use{id: id, kind: useWait}
					}
				}
			}
			return use{id: id, kind: useInspect} // field read/write
		case *ast.CallExpr:
			callee := calleeIdent(p)
			if callee == nil {
				return use{id: id, kind: useEscape}
			}
			switch callee.Name {
			case "Wait", "Waitall":
				return use{id: id, kind: useWait}
			case "append":
				if len(p.Args) > 0 && p.Args[0] == exprOf(cur) {
					return use{id: id, kind: useInspect} // the slice being grown
				}
				return use{id: id, kind: useCarry, carrier: a.appendTarget(p)}
			case "len", "cap":
				return use{id: id, kind: useInspect}
			default:
				return a.classifyHelperArg(id, p, exprOf(cur))
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.UnaryExpr:
			return use{id: id, kind: useEscape}
		case *ast.RangeStmt:
			if p.X == exprOf(cur) {
				// Ranged over: for request slices this is the classic
				// for-Wait loop; trust it.
				return use{id: id, kind: useWait}
			}
			return use{id: id, kind: useInspect}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == exprOf(cur) {
					if allBlank(p.Lhs) {
						return use{id: id, kind: useInspect} // _ = v
					}
					return use{id: id, kind: useEscape} // aliased or stored
				}
			}
			return use{id: id, kind: useInspect} // appears on the LHS
		default:
			return use{id: id, kind: useInspect}
		}
	}
}

// classifyHelperArg resolves a request passed as a call argument through
// the callee's summary: a parameter proven to reach a Wait consumes the
// request; a request-typed parameter that provably never waits is mere
// inspection (the leak surfaces at this call site); anything unresolvable
// — dynamic calls, functions outside the loaded program — stays a
// trusted escape, preserving the old boundary behavior where the program
// cannot see.
func (a *reqAnalysis) classifyHelperArg(id *ast.Ident, call *ast.CallExpr, arg ast.Expr) use {
	if a.prog == nil {
		return use{id: id, kind: useEscape}
	}
	fi := a.prog.FuncAt(a.u, call)
	if fi == nil {
		return use{id: id, kind: useEscape}
	}
	ai := findArg(call, arg)
	if ai < 0 {
		return use{id: id, kind: useEscape}
	}
	sig := fi.Obj.Type().(*types.Signature)
	pi, ok := argParamIndex(sig, ai)
	if !ok {
		return use{id: id, kind: useEscape}
	}
	sum := a.prog.summaryOf(fi)
	if !sum.reqParam[pi] {
		return use{id: id, kind: useEscape} // wrapped into interface{} etc: trusted
	}
	if sum.paramConsumed[pi] {
		return use{id: id, kind: useWait}
	}
	return use{id: id, kind: useInspect, helper: fi.Obj.Name()}
}

// appendTarget resolves append's destination to an object when it is a
// plain identifier (reqs = append(reqs, v)).
func (a *reqAnalysis) appendTarget(call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return a.u.Info.ObjectOf(id)
	}
	return nil
}

// carrierConsumed reports whether a slice that received requests is
// itself consumed (waited, ranged, passed on, or returned) after pos.
func (a *reqAnalysis) carrierConsumed(obj types.Object, pos token.Pos, depth int) bool {
	if depth > 2 {
		return false
	}
	for _, us := range a.usesOf(obj, pos) {
		switch us.kind {
		case useWait, useEscape:
			return true
		case useCarry:
			if us.carrier != nil && us.carrier != obj && a.carrierConsumed(us.carrier, us.id.End(), depth+1) {
				return true
			}
		}
	}
	return false
}

// conditionalBetween reports whether the path from a consuming use back
// up to the common ancestor with the producer crosses a conditional or
// loop boundary the producer is not inside — i.e. whether the wait can
// be skipped while the post still happens. An if whose condition
// mentions the request itself (req != nil) is treated as dominating.
func (a *reqAnalysis) conditionalBetween(producer *ast.CallExpr, consumer *ast.Ident, obj types.Object) bool {
	anc := map[ast.Node]bool{}
	for n := ast.Node(producer); n != nil; n = a.parents[n] {
		anc[n] = true
	}
	var child ast.Node = consumer
	for n := a.parents[consumer]; n != nil; n = a.parents[n] {
		if anc[n] {
			return false // reached the common ancestor cleanly
		}
		switch p := n.(type) {
		case *ast.IfStmt:
			if (child == ast.Node(p.Body) || child == p.Else) && !mentions(a.u, p.Cond, obj) {
				return true
			}
		case *ast.CaseClause, *ast.CommClause:
			return true
		case *ast.ForStmt:
			if child == ast.Node(p.Body) {
				return true // loop may run zero times
			}
		case *ast.RangeStmt:
			if child == ast.Node(p.Body) {
				return true
			}
		case *ast.FuncLit:
			return true // the closure may never run
		}
		child = n
	}
	return false
}

// mentions reports whether expr references obj.
func mentions(u *Unit, expr ast.Expr, obj types.Object) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && u.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// exprOf narrows an ast.Node known to be an expression.
func exprOf(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}
