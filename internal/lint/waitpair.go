package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// waitpair checks, function by function, that every request returned by
// Isend/Irecv reaches a Wait/Waitall. It is the static mirror of the
// teardown audit: VerifyTeardown catches a leaked receive only on the
// scenarios a campaign happens to run, while this pass rejects the code
// shape outright.
//
// The analysis is intraprocedural and flow-approximate:
//
//   - a request discarded at the call site (expression statement or
//     assignment to _) is always reported;
//   - a request bound to a local that is never passed to Wait/Waitall,
//     never appended into a later-consumed slice, and never escapes
//     (helper call, return, store into a structure) is reported;
//   - a request whose only waits sit inside conditionals that do not
//     dominate the post is reported as a may-leak, unless the guard
//     mentions the request itself (the `if req != nil { Wait }` idiom).
//
// Escapes are trusted: a request handed to another function is that
// function's responsibility, keeping the pass useful without a whole-
// program analysis.
var waitpairPass = &Pass{
	Name:  "waitpair",
	Doc:   "every Isend/Irecv result must reach a Wait/Waitall on all paths",
	Scope: scopeInternal,
	Run:   runWaitpair,
}

func runWaitpair(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &reqAnalysis{u: u, body: fd.Body, parents: buildParents(fd.Body)}
			out = append(out, a.run()...)
		}
	}
	return out
}

// buildParents maps every node under root to its syntactic parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

type reqAnalysis struct {
	u       *Unit
	body    *ast.BlockStmt
	parents map[ast.Node]ast.Node
}

// use classification for one identifier occurrence of a tracked request.
type useKind int

const (
	useInspect useKind = iota // read-only: comparison, field access
	useWait                   // passed to Wait/Waitall
	useEscape                 // passed to a helper, returned, or stored
	useCarry                  // appended into a slice (consumed iff the slice is)
)

type use struct {
	id      *ast.Ident
	kind    useKind
	carrier types.Object // for useCarry: the slice appended into
}

func (a *reqAnalysis) run() []Diagnostic {
	var out []Diagnostic
	ast.Inspect(a.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Isend" && name != "Irecv" {
			return true
		}
		switch parent := a.parents[call].(type) {
		case *ast.ExprStmt:
			out = append(out, diag(a.u, call, "waitpair",
				"result of %s is discarded; the request never reaches a Wait, so completion is unobserved", name))
		case *ast.AssignStmt:
			lhs := assignTarget(parent, call)
			switch lhs := lhs.(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					out = append(out, diag(a.u, call, "waitpair",
						"result of %s is assigned to _; the request never reaches a Wait", name))
					break
				}
				obj := a.u.Info.ObjectOf(lhs)
				if obj != nil {
					if d, bad := a.checkProducer(obj, call, name); bad {
						out = append(out, d)
					}
				}
			default:
				// Stored straight into a slice element, field, or map:
				// the container owns it now; trust the consumer.
			}
		case *ast.ValueSpec:
			for i, v := range parent.Values {
				if v != ast.Expr(call) || i >= len(parent.Names) {
					continue
				}
				if obj := a.u.Info.ObjectOf(parent.Names[i]); obj != nil {
					if d, bad := a.checkProducer(obj, call, name); bad {
						out = append(out, d)
					}
				}
			}
		default:
			// Nested in another expression (Wait(p.Irecv(...)), append
			// arg, composite literal, return value): it escapes into the
			// surrounding expression, which takes responsibility.
		}
		return true
	})
	return out
}

// assignTarget returns the LHS expression matching call on the RHS of an
// assignment, or nil.
func assignTarget(as *ast.AssignStmt, call *ast.CallExpr) ast.Expr {
	for i, rhs := range as.Rhs {
		if rhs == ast.Expr(call) && i < len(as.Lhs) {
			return as.Lhs[i]
		}
	}
	return nil
}

// checkProducer inspects every use of obj after the producing call and
// decides whether the request provably reaches a wait.
func (a *reqAnalysis) checkProducer(obj types.Object, call *ast.CallExpr, name string) (Diagnostic, bool) {
	uses := a.usesOf(obj, call.End())
	definite, conditional := false, false
	for _, us := range uses {
		consumed := false
		switch us.kind {
		case useWait, useEscape:
			consumed = true
		case useCarry:
			consumed = us.carrier != nil && a.carrierConsumed(us.carrier, us.id.End(), 0)
		}
		if !consumed {
			continue
		}
		if a.conditionalBetween(call, us.id, obj) {
			conditional = true
		} else {
			definite = true
		}
	}
	switch {
	case definite:
		return Diagnostic{}, false
	case conditional:
		return diag(a.u, call, "waitpair",
			"request from %s is waited only inside a conditional; a path can leave it un-waited (guard on the request itself, or wait unconditionally)", name), true
	default:
		return diag(a.u, call, "waitpair",
			"request from %s is never passed to Wait/Waitall and never escapes this function", name), true
	}
}

// usesOf collects every classified occurrence of obj after pos.
func (a *reqAnalysis) usesOf(obj types.Object, pos token.Pos) []use {
	var uses []use
	ast.Inspect(a.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= pos || a.u.Info.ObjectOf(id) != obj {
			return true
		}
		uses = append(uses, a.classify(id))
		return true
	})
	return uses
}

// classify decides what one occurrence of a request variable does with
// the value, walking outward through wrapping expressions.
func (a *reqAnalysis) classify(id *ast.Ident) use {
	var cur ast.Node = id
	for {
		parent := a.parents[cur]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p // container indexed; what happens to the element?
				continue
			}
			return use{id: id, kind: useInspect} // used as an index
		case *ast.SelectorExpr:
			return use{id: id, kind: useInspect} // field read/write
		case *ast.CallExpr:
			callee := calleeIdent(p)
			if callee == nil {
				return use{id: id, kind: useEscape}
			}
			switch callee.Name {
			case "Wait", "Waitall":
				return use{id: id, kind: useWait}
			case "append":
				if len(p.Args) > 0 && p.Args[0] == exprOf(cur) {
					return use{id: id, kind: useInspect} // the slice being grown
				}
				return use{id: id, kind: useCarry, carrier: a.appendTarget(p)}
			case "len", "cap":
				return use{id: id, kind: useInspect}
			default:
				return use{id: id, kind: useEscape}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.UnaryExpr:
			return use{id: id, kind: useEscape}
		case *ast.RangeStmt:
			if p.X == exprOf(cur) {
				// Ranged over: for request slices this is the classic
				// for-Wait loop; trust it.
				return use{id: id, kind: useWait}
			}
			return use{id: id, kind: useInspect}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == exprOf(cur) {
					if allBlank(p.Lhs) {
						return use{id: id, kind: useInspect} // _ = v
					}
					return use{id: id, kind: useEscape} // aliased or stored
				}
			}
			return use{id: id, kind: useInspect} // appears on the LHS
		default:
			return use{id: id, kind: useInspect}
		}
	}
}

// appendTarget resolves append's destination to an object when it is a
// plain identifier (reqs = append(reqs, v)).
func (a *reqAnalysis) appendTarget(call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return a.u.Info.ObjectOf(id)
	}
	return nil
}

// carrierConsumed reports whether a slice that received requests is
// itself consumed (waited, ranged, passed on, or returned) after pos.
func (a *reqAnalysis) carrierConsumed(obj types.Object, pos token.Pos, depth int) bool {
	if depth > 2 {
		return false
	}
	for _, us := range a.usesOf(obj, pos) {
		switch us.kind {
		case useWait, useEscape:
			return true
		case useCarry:
			if us.carrier != nil && us.carrier != obj && a.carrierConsumed(us.carrier, us.id.End(), depth+1) {
				return true
			}
		}
	}
	return false
}

// conditionalBetween reports whether the path from a consuming use back
// up to the common ancestor with the producer crosses a conditional or
// loop boundary the producer is not inside — i.e. whether the wait can
// be skipped while the post still happens. An if whose condition
// mentions the request itself (req != nil) is treated as dominating.
func (a *reqAnalysis) conditionalBetween(producer *ast.CallExpr, consumer *ast.Ident, obj types.Object) bool {
	anc := map[ast.Node]bool{}
	for n := ast.Node(producer); n != nil; n = a.parents[n] {
		anc[n] = true
	}
	var child ast.Node = consumer
	for n := a.parents[consumer]; n != nil; n = a.parents[n] {
		if anc[n] {
			return false // reached the common ancestor cleanly
		}
		switch p := n.(type) {
		case *ast.IfStmt:
			if (child == ast.Node(p.Body) || child == p.Else) && !mentions(a.u, p.Cond, obj) {
				return true
			}
		case *ast.CaseClause, *ast.CommClause:
			return true
		case *ast.ForStmt:
			if child == ast.Node(p.Body) {
				return true // loop may run zero times
			}
		case *ast.RangeStmt:
			if child == ast.Node(p.Body) {
				return true
			}
		case *ast.FuncLit:
			return true // the closure may never run
		}
		child = n
	}
	return false
}

// mentions reports whether expr references obj.
func mentions(u *Unit, expr ast.Expr, obj types.Object) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && u.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// exprOf narrows an ast.Node known to be an expression.
func exprOf(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}
