// Package machines catalogs named cluster presets — a topology plus a
// matching cost-model calibration — so experiments and tools can select a
// machine by name. Thor is the paper's testbed; the others are public
// multi-rail systems the paper's introduction names as motivation, with
// parameters derived from their public specifications. Only Thor is
// calibration-validated against published measurements (the paper's
// Figures 1 and 3); the rest are plausible extrapolations for what-if
// studies, not reproductions.
package machines

import (
	"fmt"
	"sort"

	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// Machine is one named preset.
type Machine struct {
	// Name is the selector used by the -machine flags.
	Name string
	// Description says what the preset models.
	Description string
	// Topo is the full-scale topology.
	Topo topology.Cluster
	// Params is the matching calibration.
	Params *netmodel.Params
}

// catalog holds the presets, keyed by name.
var catalog = map[string]Machine{}

func register(m Machine) {
	if err := m.Topo.Validate(); err != nil {
		panic(fmt.Sprintf("machines: %s: %v", m.Name, err))
	}
	if err := m.Params.Validate(); err != nil {
		panic(fmt.Sprintf("machines: %s: %v", m.Name, err))
	}
	catalog[m.Name] = m
}

func init() {
	register(Machine{
		Name:        "thor",
		Description: "HPC Advisory Council Thor: 32 nodes x 32 cores, 2x HDR100 (the paper's testbed)",
		Topo:        topology.New(32, 32, 2),
		Params:      netmodel.Thor(),
	})
	register(Machine{
		Name:        "thor-numa",
		Description: "Thor with its dual-socket NUMA structure exposed (2 sockets, 1.5x cross-socket)",
		Topo:        topology.Cluster{Nodes: 32, PPN: 32, HCAs: 2, Sockets: 2},
		Params:      netmodel.NumaThor(),
	})
	register(Machine{
		Name:        "thetagpu",
		Description: "ANL ThetaGPU-like: 24 nodes, 8x HDR200 rails per node (the paper's 8-adapter motivation)",
		Topo:        topology.New(24, 16, 8),
		Params:      netmodel.ThetaGPU(),
	})
	summit := netmodel.Thor()
	summit.BWHCA = 12.5e9 // dual-rail EDR aggregated per the Summit node design
	summit.AlphaHCA = sim.FromMicros(1.3)
	register(Machine{
		Name:        "summit-like",
		Description: "Summit-like: 2 rails per node, 42 usable cores, taken as 16 ranks/node here",
		Topo:        topology.New(64, 16, 2),
		Params:      summit,
	})
	frontier := netmodel.Thor()
	frontier.BWHCA = 25.0e9 // Slingshot-11 200 Gb/s NICs
	frontier.AlphaHCA = sim.FromMicros(1.6)
	register(Machine{
		Name:        "frontier-like",
		Description: "Frontier-like: 4x 200Gb/s NICs per node (the paper's exascale motivation)",
		Topo:        topology.New(64, 32, 4),
		Params:      frontier,
	})
}

// Get returns a preset by name.
func Get(name string) (Machine, bool) {
	m, ok := catalog[name]
	return m, ok
}

// Names lists the presets alphabetically.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every preset in name order.
func All() []Machine {
	out := make([]Machine, 0, len(catalog))
	for _, n := range Names() {
		out = append(out, catalog[n])
	}
	return out
}
