package machines

import (
	"testing"

	"mha/internal/core"
	"mha/internal/mpi"
	"mha/internal/sim"
)

func TestCatalogValidatesAndResolves(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("catalog has %d entries", len(names))
	}
	for _, n := range names {
		m, ok := Get(n)
		if !ok {
			t.Fatalf("Get(%q) failed", n)
		}
		if m.Name != n || m.Description == "" {
			t.Fatalf("%q metadata incomplete: %+v", n, m)
		}
	}
	if _, ok := Get("nonexistent"); ok {
		t.Fatal("bogus machine resolved")
	}
	if len(All()) != len(names) {
		t.Fatal("All inconsistent with Names")
	}
}

func TestThorIsThePaperTestbed(t *testing.T) {
	m, _ := Get("thor")
	if m.Topo.Nodes != 32 || m.Topo.PPN != 32 || m.Topo.HCAs != 2 {
		t.Fatalf("thor topology %v", m.Topo)
	}
	if m.Topo.Size() != 1024 {
		t.Fatal("thor should have 1024 ranks")
	}
}

func TestEveryMachineRunsAnAllgather(t *testing.T) {
	// Downscale node counts so the test stays fast; params stay as preset.
	for _, m := range All() {
		topo := m.Topo
		topo.Nodes = 2
		if topo.PPN > 8 {
			topo.PPN = 8
		}
		w := mpi.New(mpi.Config{Topo: topo, Params: m.Params, Phantom: true})
		var worst sim.Time
		err := w.Run(func(p *mpi.Proc) {
			core.MHAAllgather(p, w, mpi.Phantom(64<<10), mpi.Phantom(64<<10*p.Size()))
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if worst == 0 {
			t.Fatalf("%s: zero latency", m.Name)
		}
	}
}

func TestMoreRailsFasterAcrossMachines(t *testing.T) {
	// The 8-rail ThetaGPU preset should beat 2-rail Thor on the same
	// per-rank workload at equal shape.
	theta, _ := Get("thetagpu")
	thor, _ := Get("thor")
	measure := func(m Machine) sim.Time {
		topo := m.Topo
		topo.Nodes, topo.PPN = 4, 8
		w := mpi.New(mpi.Config{Topo: topo, Params: m.Params, Phantom: true})
		var worst sim.Time
		if err := w.Run(func(p *mpi.Proc) {
			core.MHAAllgather(p, w, mpi.Phantom(256<<10), mpi.Phantom(256<<10*p.Size()))
			if p.Now() > worst {
				worst = p.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return worst
	}
	if measure(theta) >= measure(thor) {
		t.Fatal("8-rail HDR200 preset not faster than 2-rail HDR100")
	}
}
