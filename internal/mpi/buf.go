package mpi

import "fmt"

// Buf is a message buffer: a byte count plus, optionally, real backing
// bytes. Collectives are written entirely against Buf so the same
// algorithm code runs in two modes:
//
//   - real mode (Bytes/NewBuf): payloads actually move, so tests can verify
//     every collective against a sequential oracle;
//   - phantom mode (Phantom): only sizes flow through the simulator, so the
//     paper's largest configurations (1024 ranks x multi-MB buffers, which
//     would need hundreds of GB of real memory) still run exactly and
//     deterministically in virtual time.
//
// A Buf is a view: Slice shares the backing array like a Go slice does.
type Buf struct {
	n    int
	data []byte // nil in phantom mode
}

// Bytes wraps an existing byte slice as a real-mode Buf.
func Bytes(b []byte) Buf { return Buf{n: len(b), data: b} }

// NewBuf allocates a zeroed real-mode Buf of n bytes.
func NewBuf(n int) Buf {
	if n < 0 {
		panic("mpi: negative buffer size")
	}
	return Buf{n: n, data: make([]byte, n)}
}

// Phantom returns a size-only Buf of n bytes with no backing storage.
func Phantom(n int) Buf {
	if n < 0 {
		panic("mpi: negative buffer size")
	}
	return Buf{n: n}
}

// Make returns a real or phantom Buf of n bytes depending on phantom.
func Make(n int, phantom bool) Buf {
	if phantom {
		return Phantom(n)
	}
	return NewBuf(n)
}

// Len returns the buffer's size in bytes.
func (b Buf) Len() int { return b.n }

// IsPhantom reports whether the buffer has no backing bytes.
func (b Buf) IsPhantom() bool { return b.data == nil }

// Data returns the backing bytes (nil for phantom buffers).
func (b Buf) Data() []byte { return b.data }

// Slice returns the sub-buffer [off, off+n). Like slicing a []byte, the
// result shares backing storage with b.
func (b Buf) Slice(off, n int) Buf {
	if off < 0 || n < 0 || off+n > b.n {
		panic(fmt.Sprintf("mpi: slice [%d:%d] out of buffer of %d bytes", off, off+n, b.n))
	}
	if b.data == nil {
		return Buf{n: n}
	}
	return Buf{n: n, data: b.data[off : off+n]}
}

// CopyFrom copies src's contents into b. Sizes must match exactly. Copies
// involving a phantom side move no bytes; a real destination keeps its
// previous contents in that case, which is fine because real and phantom
// buffers are never mixed within one simulation.
func (b Buf) CopyFrom(src Buf) {
	if b.n != src.n {
		panic(fmt.Sprintf("mpi: copy size mismatch: dst %d bytes, src %d bytes", b.n, src.n))
	}
	if b.data != nil && src.data != nil {
		copy(b.data, src.data)
	}
}

// Clone returns an independent copy of b (phantomness is preserved).
func (b Buf) Clone() Buf {
	if b.data == nil {
		return Buf{n: b.n}
	}
	out := make([]byte, b.n)
	copy(out, b.data)
	return Buf{n: b.n, data: out}
}

// Equal reports whether two real buffers hold identical bytes. Phantom
// buffers compare equal when their sizes match.
func (b Buf) Equal(o Buf) bool {
	if b.n != o.n {
		return false
	}
	if b.data == nil || o.data == nil {
		return b.IsPhantom() == o.IsPhantom()
	}
	for i := range b.data {
		if b.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

func (b Buf) String() string {
	if b.data == nil {
		return fmt.Sprintf("Buf(phantom %dB)", b.n)
	}
	return fmt.Sprintf("Buf(%dB)", b.n)
}
