package mpi

import (
	"fmt"

	"mha/internal/sim"
)

// A Comm is an ordered group of world ranks with its own rank numbering,
// message-matching space, and barrier. Comms must be identical across all
// participating ranks; the pre-built World/node/leader comms and comms
// created before Run always are.
type Comm struct {
	w          *World
	id         int
	owner      string      // attribution label for audits ("" = unowned)
	ranks      []int       // comm rank -> world rank
	index      map[int]int // world rank -> comm rank
	barCounter *sim.Counter
}

// newComm registers a communicator. Caller holds no locks during New; at
// runtime w.mu guards the registry.
func (w *World) newComm(ranks []int) *Comm {
	c := &Comm{
		w:     w,
		ranks: append([]int(nil), ranks...),
		index: make(map[int]int, len(ranks)),
	}
	for i, r := range ranks {
		if r < 0 || r >= w.topo.Size() {
			panic(fmt.Sprintf("mpi: comm rank %d out of range", r))
		}
		if _, dup := c.index[r]; dup {
			panic(fmt.Sprintf("mpi: duplicate rank %d in comm", r))
		}
		c.index[r] = i
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	c.id = len(w.comms)
	c.barCounter = w.eng.NewCounter(fmt.Sprintf("comm%d.barrier", c.id))
	w.comms = append(w.comms, c)
	return c
}

// World returns the world communicator (all ranks).
func (w *World) CommWorld() *Comm { return w.world }

// NodeComm returns the communicator of the ranks on one node.
func (w *World) NodeComm(nodeID int) *Comm { return w.nodeComms[nodeID] }

// LeaderComm returns the communicator of all node leaders, in node order.
func (w *World) LeaderComm() *Comm { return w.leaders }

// NewComm creates a custom communicator over the given world ranks (in the
// given order). Call it before Run, or make sure every rank that uses the
// comm observes the same creation order.
func (w *World) NewComm(ranks []int) *Comm { return w.newComm(ranks) }

// CommNamed returns the communicator registered under key, creating it
// from ranks() on first use. It makes runtime communicator creation safe:
// every rank asking for the same key gets the same Comm object no matter
// who asks first.
func (w *World) CommNamed(key string, ranks func() []int) *Comm {
	w.mu.Lock()
	if w.named == nil {
		w.named = map[string]*Comm{}
	}
	if c, ok := w.named[key]; ok {
		w.mu.Unlock()
		return c
	}
	w.mu.Unlock()
	// newComm takes w.mu itself; build outside the lock, then publish
	// (double-checked: a racing creator loses and adopts the winner).
	c := w.newComm(ranks())
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.named[key]; ok {
		return prev
	}
	w.named[key] = c
	return c
}

// SetOwner labels the communicator with the job (or other party) its
// traffic belongs to. The label propagates to teardown audits: a leaked
// send or a still-busy rail is attributed to the owning job instead of
// being reported anonymously — essential once several jobs share one
// world. Setting it again re-labels; "" removes the label.
func (c *Comm) SetOwner(label string) {
	c.w.mu.Lock()
	defer c.w.mu.Unlock()
	c.owner = label
}

// Owner returns the label set with SetOwner ("" = unowned).
func (c *Comm) Owner() string {
	c.w.mu.Lock()
	defer c.w.mu.Unlock()
	return c.owner
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns p's rank within c, or -1 if p is not a member.
func (c *Comm) Rank(p *Proc) int {
	if i, ok := c.index[p.rs.rank]; ok {
		return i
	}
	return -1
}

// Contains reports whether world rank r belongs to the communicator.
func (c *Comm) Contains(worldRank int) bool {
	_, ok := c.index[worldRank]
	return ok
}

// WorldRank maps a comm rank to its world rank.
func (c *Comm) WorldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.ranks) {
		panic(fmt.Sprintf("mpi: comm rank %d out of range [0,%d)", commRank, len(c.ranks)))
	}
	return c.ranks[commRank]
}

// Ranks returns a copy of the comm-rank -> world-rank mapping.
func (c *Comm) Ranks() []int { return append([]int(nil), c.ranks...) }

// Epoch returns a fresh collective epoch for p on this communicator.
// Collectives call it once per invocation and embed the epoch in their
// message tags, so back-to-back collectives on one comm can never match
// each other's messages. All ranks invoke collectives in the same order,
// so they agree on the epoch.
func (c *Comm) Epoch(p *Proc) int {
	e := p.rs.epochs[c.id]
	p.rs.epochs[c.id] = e + 1
	return e
}

// Tag composes a collision-free message tag from a collective epoch, a
// phase id (5 bits) and a step number (16 bits).
func Tag(epoch, phase, step int) int {
	if phase < 0 || phase > 31 {
		panic(fmt.Sprintf("mpi: tag phase %d out of range", phase))
	}
	if step < 0 || step >= 1<<16 {
		panic(fmt.Sprintf("mpi: tag step %d out of range", step))
	}
	return epoch<<21 | phase<<16 | step
}

// Barrier blocks until every rank of the communicator has entered the same
// barrier generation. It is a synchronization fence in virtual time with no
// modeled network cost; benchmarks use it to align ranks before timing.
func (c *Comm) Barrier(p *Proc) {
	if c.Rank(p) < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in comm %d", p.rs.rank, c.id))
	}
	gen := p.rs.barGen[c.id]
	p.rs.barGen[c.id] = gen + 1
	c.barCounter.Add(1)
	c.barCounter.WaitGE(p.sp, int64(gen+1)*int64(len(c.ranks)))
}
