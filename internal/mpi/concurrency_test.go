package mpi

import (
	"strings"
	"testing"

	"mha/internal/topology"
)

// concurrentWorld builds a 2-node world with two inter-node communicators
// owned by different jobs: job1 on world ranks {0, 2}, job2 on {1, 3}.
func concurrentWorld() (*World, *Comm, *Comm) {
	w := New(Config{Topo: topology.New(2, 2, 2)})
	a := w.NewComm([]int{0, 2})
	a.SetOwner("job1")
	b := w.NewComm([]int{1, 3})
	b.SetOwner("job2")
	return w, a, b
}

// TestConcurrentCommsShareRails: two job communicators exchange across the
// same node rails in overlapping virtual time; the run stays clean, the
// teardown audit passes, and the rails record a job owner.
func TestConcurrentCommsShareRails(t *testing.T) {
	w, a, b := concurrentWorld()
	err := w.Run(func(p *Proc) {
		c := a
		if !a.Contains(p.Rank()) {
			c = b
		}
		me := c.Rank(p)
		peer := 1 - me
		rreq := p.Irecv(c, peer, 5)
		sreq := p.Isend(c, peer, 5, NewBuf(64<<10))
		if got := p.Wait(rreq); got.Len() != 64<<10 {
			t.Errorf("rank %d received %d bytes, want %d", p.Rank(), got.Len(), 64<<10)
		}
		p.Wait(sreq)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyTeardown(); err != nil {
		t.Fatalf("clean concurrent exchange flagged: %v", err)
	}
	// Both jobs stripe across the same rails, so LastOwner holds whichever
	// job acquired each rail most recently — but every rail that carried
	// traffic must be attributed to SOME job, never left blank.
	marked := 0
	for _, nd := range w.nodes {
		for _, h := range nd.hcas {
			for _, res := range []interface{ LastOwner() string }{h.tx, h.rx} {
				o := res.LastOwner()
				if o == "" {
					continue
				}
				if !strings.HasPrefix(o, "job") {
					t.Fatalf("rail owner %q is not a job label", o)
				}
				marked++
			}
		}
	}
	if marked == 0 {
		t.Fatal("no rail recorded a job owner despite inter-node traffic")
	}
}

// TestVerifyTeardownAttributesLeakToJob: an unreceived send posted on an
// owned communicator is reported against that job's label, not as an
// anonymous count.
func TestVerifyTeardownAttributesLeakToJob(t *testing.T) {
	w, a, b := concurrentWorld()
	err := w.Run(func(p *Proc) {
		c := a
		if !a.Contains(p.Rank()) {
			c = b
		}
		me := c.Rank(p)
		peer := 1 - me
		// job1 exchanges cleanly; job2's comm-rank 0 sends into the void.
		switch {
		case c == a:
			rreq := p.Irecv(c, peer, 5)
			sreq := p.Isend(c, peer, 5, NewBuf(4096))
			p.Wait(rreq)
			p.Wait(sreq)
		case me == 0:
			p.Wait(p.Isend(c, peer, 5, NewBuf(4096)))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	terr := w.VerifyTeardown()
	if terr == nil {
		t.Fatal("leaked job2 send not flagged")
	}
	msg := terr.Error()
	if !strings.Contains(msg, "never received") || !strings.Contains(msg, "job2: 1") {
		t.Fatalf("leak not attributed to job2: %v", msg)
	}
	if strings.Contains(msg, "job1") {
		t.Fatalf("clean job1 wrongly implicated: %v", msg)
	}
}
