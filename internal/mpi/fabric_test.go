package mpi

import (
	"testing"

	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// fabricParams returns a Thor calibration on a fat tree with the given
// leaf size and taper.
func fabricParams(nodesPerLeaf int, oversub float64) *netmodel.Params {
	p := netmodel.Thor()
	p.NodesPerLeaf = nodesPerLeaf
	p.Oversubscription = oversub
	return p
}

// crossLeafLatency measures N simultaneous single-rank pairs all crossing
// between two leaves.
func crossTraffic(t *testing.T, prm *netmodel.Params, pairs, m int) sim.Time {
	t.Helper()
	// Nodes 0..pairs-1 on leaf 0, nodes pairs..2*pairs-1 on leaf 1.
	w := New(Config{Topo: topology.New(2*pairs, 1, 2), Params: prm, Phantom: true})
	var worst sim.Time
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		if p.Rank() < pairs {
			p.Send(c, p.Rank()+pairs, 0, Phantom(m))
		} else {
			p.Recv(c, p.Rank()-pairs, 0)
			if p.Now() > worst {
				worst = p.Now()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return worst
}

func TestNonBlockingFabricUnchanged(t *testing.T) {
	// NodesPerLeaf = 0 must reproduce the direct model exactly.
	direct := crossTraffic(t, netmodel.Thor(), 4, 1<<20)
	tree := crossTraffic(t, fabricParams(4, 1), 4, 1<<20)
	// Full bisection: uplink aggregate equals the nodes' injection rate,
	// so four concurrent pairs serialize through it exactly as they fill
	// it — identical completion.
	if tree != direct {
		t.Fatalf("full-bisection tree (%v) differs from direct fabric (%v)", tree, direct)
	}
}

func TestOversubscriptionThrottlesCrossLeafTraffic(t *testing.T) {
	full := crossTraffic(t, fabricParams(4, 1), 4, 1<<20)
	tapered := crossTraffic(t, fabricParams(4, 2), 4, 1<<20)
	ratio := float64(tapered) / float64(full)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("2:1 oversubscription ratio = %.2f (full %v, tapered %v), want ~2",
			ratio, full, tapered)
	}
}

func TestSameLeafTrafficUnaffectedByTaper(t *testing.T) {
	// Two nodes under one leaf: the uplink is never touched.
	prm := fabricParams(4, 4) // brutal taper
	w := New(Config{Topo: topology.New(2, 1, 2), Params: prm, Phantom: true})
	var arrived sim.Time
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		if p.Rank() == 0 {
			p.Send(c, 1, 0, Phantom(1<<20))
		} else {
			p.Recv(c, 0, 0)
			arrived = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := prm.HCATime(1<<20, 2)
	if arrived != sim.Time(want) {
		t.Fatalf("same-leaf latency %v, want endpoint-only %v", arrived, want)
	}
}

func TestLeafUplinkBW(t *testing.T) {
	p := fabricParams(8, 2)
	want := 8 * 2 * p.BWHCA / 2
	if got := p.LeafUplinkBW(2); got != want {
		t.Fatalf("LeafUplinkBW = %v, want %v", got, want)
	}
	if netmodel.Thor().LeafUplinkBW(2) != 0 {
		t.Fatal("non-blocking fabric should report 0 uplink bandwidth")
	}
}

func TestFabricValidation(t *testing.T) {
	p := netmodel.Thor()
	p.NodesPerLeaf = -1
	if p.Validate() == nil {
		t.Fatal("negative NodesPerLeaf should fail")
	}
	p = netmodel.Thor()
	p.NodesPerLeaf = 4
	p.Oversubscription = 0.5
	if p.Validate() == nil {
		t.Fatal("oversubscription < 1 should fail")
	}
}

func TestAcquireHeteroDurations(t *testing.T) {
	e := sim.NewEngine()
	a := e.NewResource("a")
	b := e.NewResource("b")
	e.Spawn("p", func(p *sim.Proc) {
		start, end := sim.AcquireHetero([]sim.Duration{10 * sim.Microsecond, 30 * sim.Microsecond}, a, b)
		if start != 0 || end != sim.Time(30*sim.Microsecond) {
			t.Errorf("hetero acquire [%v %v]", start, end)
		}
		if a.FreeAt() != sim.Time(10*sim.Microsecond) || b.FreeAt() != sim.Time(30*sim.Microsecond) {
			t.Errorf("per-resource ends wrong: %v %v", a.FreeAt(), b.FreeAt())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
