package mpi

import (
	"strings"
	"testing"

	"mha/internal/faults"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

// faultWorld builds a 2-node world with the given rails and schedule.
func faultWorld(hcas int, sched *faults.Schedule, blind bool, rec *trace.Recorder) *World {
	return New(Config{
		Topo:       topology.New(2, 1, hcas),
		Faults:     sched,
		FaultBlind: blind,
		Tracer:     rec,
	})
}

// oneSend runs a single rank-0 -> rank-1 send and returns its completion
// time.
func oneSend(t *testing.T, w *World, n int, opts ...SendOption) sim.Time {
	t.Helper()
	var end sim.Time
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		if p.Rank() == 0 {
			p.Send(c, 1, 0, Phantom(n), opts...)
			end = p.Now()
		} else {
			p.Recv(c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func traceNames(rec *trace.Recorder) []string {
	var names []string
	for _, ev := range rec.Events() {
		names = append(names, ev.Name)
	}
	return names
}

func hasEvent(rec *trace.Recorder, substr string) bool {
	for _, ev := range rec.Events() {
		if strings.Contains(ev.Name, substr) {
			return true
		}
	}
	return false
}

func TestStripingSkipsDeadRail(t *testing.T) {
	down := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 1})
	rec := trace.New()
	w := faultWorld(2, down, false, rec)
	const n = 256 << 10
	deadEnd := oneSend(t, w, n, ViaHCA())

	// The stripe must collapse to one rail: the hca event says x1 and the
	// dead rail's engines are never touched.
	if !hasEvent(rec, "hca(x1)") {
		t.Fatalf("no single-rail hca event; trace: %v", traceNames(rec))
	}
	if !hasEvent(rec, "stripe(rail0=") {
		t.Fatalf("no stripe-layout fault event; trace: %v", traceNames(rec))
	}
	for _, s := range w.RailStats() {
		if s.Node == 0 && s.Rail == 1 && (s.TxUses != 0 || s.TxBusy != 0) {
			t.Fatalf("dead rail was used: %v", s)
		}
	}

	// Sanity: one surviving rail out of two lands between the healthy
	// 2-rail time and being no worse than a 1-rail-per-node topology.
	healthy := oneSend(t, faultWorld(2, nil, false, nil), n, ViaHCA())
	oneRail := oneSend(t, faultWorld(1, nil, false, nil), n, ViaHCA())
	if !(healthy < deadEnd && deadEnd <= oneRail) {
		t.Fatalf("degraded time %v not in (healthy %v, 1-rail %v]", deadEnd, healthy, oneRail)
	}
}

func TestViaRailFailsOverWithTraceEvent(t *testing.T) {
	down := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 1})
	rec := trace.New()
	w := faultWorld(2, down, false, rec)
	oneSend(t, w, 1024, ViaRail(1))
	if !hasEvent(rec, "failover(rail1->rail0)") {
		t.Fatalf("no failover event; trace: %v", traceNames(rec))
	}
	for _, s := range w.RailStats() {
		if s.Node == 0 && s.Rail == 1 && s.TxUses != 0 {
			t.Fatalf("pinned send used the dead rail: %v", s)
		}
	}
}

func TestFaultBlindQueuesOnDeadRail(t *testing.T) {
	const outage = 100 * sim.Time(sim.Microsecond)
	down := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 1, Until: outage})

	blind := oneSend(t, faultWorld(2, down, true, nil), 1024, ViaRail(1))
	aware := oneSend(t, faultWorld(2, down, false, nil), 1024, ViaRail(1))
	if blind < outage {
		t.Fatalf("blind pinned send finished at %v, before the outage ends at %v", blind, outage)
	}
	if aware >= outage {
		t.Fatalf("aware pinned send stayed on the dead rail: end %v", aware)
	}
}

func TestWeightedStripeBeatsEqualSplit(t *testing.T) {
	deg := faults.MustNew(faults.Fault{Kind: faults.Degrade, Node: 0, Rail: 1, Fraction: 0.5})
	const n = 1 << 20

	rec := trace.New()
	aware := oneSend(t, faultWorld(2, deg, false, rec), n, ViaHCA())
	blind := oneSend(t, faultWorld(2, deg, true, nil), n, ViaHCA())
	if aware >= blind {
		t.Fatalf("re-weighted stripe (%v) not faster than naive equal split (%v)", aware, blind)
	}

	// The trace records the unequal piece layout: rail 0 carries twice the
	// bytes of the half-speed rail 1.
	var layout string
	for _, ev := range rec.Events() {
		if strings.HasPrefix(ev.Name, "stripe(") {
			layout = ev.Name
		}
	}
	want := "stripe(rail0=699051,rail1=349525)"
	if layout != want {
		t.Fatalf("stripe layout = %q, want %q", layout, want)
	}
}

func TestRoundRobinSkipsDownRail(t *testing.T) {
	down := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 0})
	rec := trace.New()
	w := faultWorld(2, down, false, rec)
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < 4; i++ {
				p.Send(c, 1, i, Phantom(512)) // below the striping threshold
			}
		} else {
			for i := 0; i < 4; i++ {
				p.Recv(c, 0, i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hasEvent(rec, "failover(rail0->rail1)") {
		t.Fatalf("no round-robin failover event; trace: %v", traceNames(rec))
	}
	for _, s := range w.RailStats() {
		if s.Node == 0 && s.Rail == 0 && s.TxUses != 0 {
			t.Fatalf("round-robin used the dead rail: %v", s)
		}
	}
}

func TestAllRailsDownWaitsForRecovery(t *testing.T) {
	const outage = 50 * sim.Time(sim.Microsecond)
	down := faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: faults.AllRails, Until: outage})
	rec := trace.New()
	end := oneSend(t, faultWorld(2, down, false, rec), 64<<10, ViaHCA())
	if end < outage {
		t.Fatalf("send finished at %v during a total outage until %v", end, outage)
	}
	if !hasEvent(rec, "raildown") {
		t.Fatalf("no raildown event; trace: %v", traceNames(rec))
	}
}

func TestLatencyFaultAddsExtra(t *testing.T) {
	const extra = 5 * sim.Microsecond
	lat := faults.MustNew(faults.Fault{Kind: faults.Latency, Node: 0, Rail: 0, Extra: extra})
	slow := oneSend(t, faultWorld(1, lat, false, nil), 1024)
	healthy := oneSend(t, faultWorld(1, nil, false, nil), 1024)
	if got := sim.Duration(slow - healthy); got != extra {
		t.Fatalf("latency fault added %v, want %v", got, extra)
	}
}

func TestViaRailNegativePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "negative rail") {
			t.Fatalf("recover = %v, want negative-rail panic", r)
		}
	}()
	ViaRail(-1)
}

func TestNoStripeAboveThresholdUsesOneRail(t *testing.T) {
	rec := trace.New()
	w := faultWorld(2, nil, false, rec)
	oneSend(t, w, 256<<10, ViaHCA(), NoStripe()) // far above StripeThreshold
	if !hasEvent(rec, "hca(x1)") || hasEvent(rec, "hca(x2)") {
		t.Fatalf("NoStripe still striped; trace: %v", traceNames(rec))
	}
}

func TestFaultScheduleOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("World.New accepted a schedule targeting a missing rail")
		}
	}()
	faultWorld(2, faults.MustNew(faults.Fault{Kind: faults.Down, Node: 0, Rail: 7}), false, nil)
}

func TestFaultRunsDeterministic(t *testing.T) {
	sched := faults.MustNew(
		faults.Fault{Kind: faults.Flap, Node: 0, Rail: 0,
			Period: 40 * sim.Microsecond, DownFor: 10 * sim.Microsecond},
		faults.Fault{Kind: faults.Degrade, Node: 1, Rail: 1, Fraction: 0.5},
	)
	run := func() sim.Time {
		w := New(Config{
			Topo:   topology.New(2, 2, 2),
			Faults: sched,
			Seed:   7,
		})
		var end sim.Time
		err := w.Run(func(p *Proc) {
			c := w.CommWorld()
			peer := (p.Rank() + p.Size()/2) % p.Size()
			got := p.SendRecv(c, peer, p.Rank(), Phantom(64<<10), peer, peer, ViaHCA())
			_ = got
			if t := p.Now(); t > end {
				end = t
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed and schedule, different end times: %v vs %v", a, b)
	}
}
