package mpi

import (
	"fmt"
	"sort"

	"mha/internal/faults"
	"mha/internal/sim"
)

// RailHealth is the per-node rail-health registry: the view of the fault
// schedule that transport selection consults before committing traffic to
// a rail. With no schedule attached every query reports full health, so
// the registry can be threaded through hot paths unconditionally.
type RailHealth struct {
	sched *faults.Schedule // nil: always healthy
	hcas  int
}

// Health returns the world's rail-health registry (never nil).
func (w *World) Health() *RailHealth { return w.health }

// Faulty reports whether a fault schedule is attached at all — the hot
// paths' cheap guard before any per-rail lookups.
func (h *RailHealth) Faulty() bool { return h.sched != nil }

// Schedule returns the attached fault schedule, or nil when healthy.
func (h *RailHealth) Schedule() *faults.Schedule { return h.sched }

// Fraction reports the surviving bandwidth fraction of one node's rail at
// virtual time t (1 healthy, 0 down).
func (h *RailHealth) Fraction(node, rail int, t sim.Time) float64 {
	if h.sched == nil {
		return 1
	}
	return h.sched.Fraction(node, rail, t)
}

// Up reports whether one node's rail can carry traffic at t.
func (h *RailHealth) Up(node, rail int, t sim.Time) bool {
	return h.Fraction(node, rail, t) > 0
}

// LinkFraction reports the effective fraction of the rail-r link between
// two nodes: a transfer occupies the sender's transmit and the receiver's
// receive engine on the same rail index, so the link runs at the worse of
// the two ends.
func (h *RailHealth) LinkFraction(srcNode, dstNode, rail int, t sim.Time) float64 {
	f := h.Fraction(srcNode, rail, t)
	if g := h.Fraction(dstNode, rail, t); g < f {
		f = g
	}
	return f
}

// LinkExtraLatency reports the added per-message startup on the rail-r
// link between two nodes (latency faults on either end accumulate).
func (h *RailHealth) LinkExtraLatency(srcNode, dstNode, rail int, t sim.Time) sim.Duration {
	if h.sched == nil {
		return 0
	}
	extra := h.sched.ExtraLatency(srcNode, rail, t)
	if dstNode != srcNode {
		extra += h.sched.ExtraLatency(dstNode, rail, t)
	}
	return extra
}

// NextUp reports the earliest time >= t at which the link recovers, or
// faults.Forever if it never does.
func (h *RailHealth) NextUp(srcNode, dstNode, rail int, t sim.Time) sim.Time {
	if h.sched == nil {
		return t
	}
	up := h.sched.NextUp(srcNode, rail, t)
	for {
		other := h.sched.NextUp(dstNode, rail, up)
		if other == up || up >= faults.Forever {
			return up
		}
		up = h.sched.NextUp(srcNode, rail, other)
		if up == other {
			return up
		}
	}
}

// PlanRails reports how many of a node's rails an algorithm should plan
// for over the whole run: the rounded sum of each rail's steady (whole-
// run) bandwidth fraction, at least 1 while anything survives. It is a
// pure function of the schedule — every rank of the node gets the same
// answer no matter when it asks — which is what offload planners need to
// stay in agreement. Transiently-faulted rails still count in full; the
// transport layer routes around those windows dynamically.
func (h *RailHealth) PlanRails(node int) int {
	if h.sched == nil {
		return h.hcas
	}
	sum, any := 0.0, false
	for r := 0; r < h.hcas; r++ {
		f := h.sched.SteadyFraction(node, r)
		if f > 0 {
			any = true
		}
		sum += f
	}
	n := int(sum + 0.5)
	if n < 1 && any {
		n = 1
	}
	return n
}

// bestRail picks the healthiest rail of the src->dst link at t, excluding
// `avoid` (pass -1 to consider every rail): the up rail with the highest
// surviving fraction, ties to the lowest index. Candidates are bounded to
// [0, lim) — on heterogeneous pairs the caller passes the weaker
// endpoint's rail count so the pick always exists at both ends. If every
// candidate is down, it returns the rail that recovers earliest (again
// ties to the lowest index) — the caller queues on it and the resource
// model charges the remaining outage. The second result reports whether
// the chosen rail is up right now.
func (h *RailHealth) bestRail(srcNode, dstNode, rail int, avoid int, lim int, t sim.Time) (int, bool) {
	_ = rail // reserved: preferred-rail affinity
	if lim <= 0 || lim > h.hcas {
		lim = h.hcas
	}
	best, bestFrac := -1, 0.0
	for r := 0; r < lim; r++ {
		if r == avoid {
			continue
		}
		if f := h.LinkFraction(srcNode, dstNode, r, t); f > bestFrac {
			best, bestFrac = r, f
		}
	}
	if best >= 0 {
		return best, true
	}
	// Everything (considered) is down: earliest recovery wins.
	soonest, at := 0, faults.Forever
	for r := 0; r < lim; r++ {
		if up := h.NextUp(srcNode, dstNode, r, t); up < at {
			soonest, at = r, up
		}
	}
	return soonest, false
}

// RailBacklog reports how much queued transfer work a node's rails still
// hold at virtual time t: the sum, over every rail's transmit and receive
// engine, of how far its next-free time lies in the future. It is the
// "how contended is this node right now" signal placement policies
// (internal/cluster's rail-aware placer) consult before co-locating a new
// job with running ones.
func (w *World) RailBacklog(node int, t sim.Time) sim.Duration {
	var sum sim.Duration
	for _, a := range w.nodes[node].hcas {
		if f := a.tx.FreeAt(); f > t {
			sum += sim.Duration(f - t)
		}
		if f := a.rx.FreeAt(); f > t {
			sum += sim.Duration(f - t)
		}
	}
	return sum
}

// RailStat summarizes one rail's utilization after a run: the cumulative
// busy time and acquisition counts of its transmit and receive engines.
type RailStat struct {
	Node, Rail     int
	TxBusy, RxBusy sim.Duration
	TxUses, RxUses int64
}

// RailStats reports per-rail utilization across every node, in (node,
// rail) order — the "where did the time go" summary degraded-mode runs
// print alongside their totals.
func (w *World) RailStats() []RailStat {
	var out []RailStat
	for _, nd := range w.nodes {
		for r, a := range nd.hcas {
			out = append(out, RailStat{
				Node: nd.id, Rail: r,
				TxBusy: a.tx.BusyTime(), RxBusy: a.rx.BusyTime(),
				TxUses: a.tx.Uses(), RxUses: a.rx.Uses(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Rail < out[j].Rail
	})
	return out
}

func (s RailStat) String() string {
	return fmt.Sprintf("node%d.rail%d tx=%v/%d rx=%v/%d",
		s.Node, s.Rail, s.TxBusy, s.TxUses, s.RxBusy, s.RxUses)
}
