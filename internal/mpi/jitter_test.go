package mpi

import (
	"testing"

	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// jitterRun measures a small mixed workload (inter-node striped send,
// intra-node CMA, shm copies) under a given seed.
func jitterRun(t *testing.T, jitter float64, seed int64) sim.Time {
	t.Helper()
	prm := netmodel.Thor()
	prm.Jitter = jitter
	w := New(Config{Topo: topology.New(2, 2, 2), Params: prm, Phantom: true, Seed: seed})
	var done sim.Time
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		switch p.Rank() {
		case 0:
			p.Send(c, 2, 0, Phantom(1<<20)) // inter-node striped
			p.Send(c, 1, 1, Phantom(1<<20)) // intra-node CMA
			s := p.ShmOpen("r", 1<<20)
			s.CopyIn(p, 0, Phantom(1<<20))
			s.Counter("ok").Add(1)
		case 1:
			p.Recv(c, 0, 1)
			s := p.ShmOpen("r", 1<<20)
			s.WaitCounter(p, "ok", 1)
			s.CopyOut(p, 0, Phantom(1<<20))
			if p.Now() > done {
				done = p.Now()
			}
		case 2:
			p.Recv(c, 0, 0)
		}
		if p.Now() > done {
			done = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return done
}

func TestJitterZeroIsExact(t *testing.T) {
	a := jitterRun(t, 0, 0)
	b := jitterRun(t, 0, 12345)
	if a != b {
		t.Fatalf("zero jitter varies with seed: %v vs %v", a, b)
	}
}

func TestJitterSameSeedReproduces(t *testing.T) {
	a := jitterRun(t, 0.1, 7)
	b := jitterRun(t, 0.1, 7)
	if a != b {
		t.Fatalf("same seed differs: %v vs %v", a, b)
	}
}

func TestJitterDifferentSeedsDiffer(t *testing.T) {
	a := jitterRun(t, 0.1, 1)
	b := jitterRun(t, 0.1, 2)
	if a == b {
		t.Fatalf("different seeds identical: %v", a)
	}
}

func TestJitterOnlySlowsDown(t *testing.T) {
	// The noise factor is in [1, 1+2J], so any jittered run is at least as
	// slow as the noiseless one and bounded by (1+2J) times it.
	base := jitterRun(t, 0, 0)
	for seed := int64(0); seed < 8; seed++ {
		j := jitterRun(t, 0.1, seed)
		if j < base {
			t.Fatalf("seed %d: jittered run %v faster than noiseless %v", seed, j, base)
		}
		if float64(j) > 1.2*float64(base)+1000 {
			t.Fatalf("seed %d: jittered run %v beyond the 1+2J bound of %v", seed, j, base)
		}
	}
}

func TestJitterValidation(t *testing.T) {
	p := netmodel.Thor()
	p.Jitter = -0.1
	if p.Validate() == nil {
		t.Fatal("negative jitter should fail validation")
	}
	p.Jitter = 1.5
	if p.Validate() == nil {
		t.Fatal("jitter > 1 should fail validation")
	}
}
