package mpi

import (
	"strings"
	"testing"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

// expectPanic runs fn inside a rank and asserts it panics with a message
// containing want.
func expectPanic(t *testing.T, want string, fn func(p *Proc, w *World)) {
	t.Helper()
	w := New(Config{Topo: topology.New(2, 2, 2)})
	err := w.Run(func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("want panic containing %q, got none", want)
				return
			}
			if msg, ok := r.(string); ok && !strings.Contains(msg, want) {
				t.Errorf("panic %q does not contain %q", msg, want)
			}
		}()
		fn(p, w)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMisuseWaitOnForeignRequest(t *testing.T) {
	w := New(Config{Topo: topology.New(1, 2, 1)})
	reqs := make(chan *Request, 1)
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		if p.Rank() == 0 {
			reqs <- p.Irecv(c, 1, 0)
			p.Recv(c, 1, 1) // block so rank 1 can steal the request
		} else {
			req := <-reqs
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Wait on another rank's request should panic")
					}
				}()
				p.Wait(req)
			}()
			p.Send(c, 0, 1, Phantom(1))
			p.Send(c, 0, 0, Phantom(1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMisuseBadRail(t *testing.T) {
	expectPanic(t, "rail", func(p *Proc, w *World) {
		p.Isend(w.CommWorld(), 1, 0, Phantom(8), ViaRail(5))
	})
}

func TestMisuseByRefAcrossNodes(t *testing.T) {
	expectPanic(t, "ByRef", func(p *Proc, w *World) {
		p.Isend(w.CommWorld(), 2, 0, Phantom(8), ByRef()) // rank 2 is on node 1
	})
}

func TestMisuseCommRankOutOfRange(t *testing.T) {
	expectPanic(t, "out of range", func(p *Proc, w *World) {
		p.Isend(w.CommWorld(), 99, 0, Phantom(8))
	})
}

func TestMisuseTagBounds(t *testing.T) {
	expectPanic(t, "phase", func(p *Proc, w *World) {
		Tag(0, 32, 0)
	})
	expectPanic(t, "step", func(p *Proc, w *World) {
		Tag(0, 0, 1<<16)
	})
}

func TestMisuseBarrierFromNonMember(t *testing.T) {
	w := New(Config{Topo: topology.New(1, 3, 1)})
	sub := w.NewComm([]int{0, 1})
	err := w.Run(func(p *Proc) {
		if p.Rank() == 2 {
			defer func() {
				if recover() == nil {
					t.Error("barrier from non-member should panic")
				}
			}()
			sub.Barrier(p)
			return
		}
		sub.Barrier(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMisuseBufferSlicePanics(t *testing.T) {
	b := NewBuf(8)
	for _, fn := range []func(){
		func() { b.Slice(4, 8) },
		func() { b.Slice(-1, 2) },
		func() { b.CopyFrom(NewBuf(4)) },
		func() { NewBuf(-1) },
		func() { Phantom(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMisuseDuplicateCommRank(t *testing.T) {
	w := New(Config{Topo: topology.New(1, 2, 1)})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate rank in comm should panic")
		}
	}()
	w.NewComm([]int{0, 0})
}

func TestMisuseShmReopenDifferentSize(t *testing.T) {
	w := New(Config{Topo: topology.New(1, 2, 1)})
	err := w.Run(func(p *Proc) {
		p.ShmOpen("r", 64)
		w.CommWorld().Barrier(p)
		if p.Rank() == 1 {
			defer func() {
				if recover() == nil {
					t.Error("reopen with different size should panic")
				}
			}()
			p.ShmOpen("r", 128)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMisuseNegativeShmSize(t *testing.T) {
	expectPanic(t, "negative", func(p *Proc, w *World) {
		p.ShmOpen("neg", -1)
	})
}

func TestMisuseInvalidTopologyRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid topology should panic in New")
		}
	}()
	New(Config{Topo: topology.Cluster{Nodes: 0, PPN: 1, HCAs: 1}})
}

func TestMisuseInvalidParamsRejected(t *testing.T) {
	bad := netmodel.Thor()
	bad.BWHCA = -5
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params should panic in New")
		}
	}()
	New(Config{Topo: topology.New(1, 1, 1), Params: bad})
}

func TestBufStringForms(t *testing.T) {
	if s := Phantom(8).String(); !strings.Contains(s, "phantom") {
		t.Fatalf("phantom string %q", s)
	}
	if s := NewBuf(8).String(); strings.Contains(s, "phantom") {
		t.Fatalf("real buffer string %q", s)
	}
}

func TestCommAccessors(t *testing.T) {
	w := New(Config{Topo: topology.New(2, 2, 1)})
	c := w.CommWorld()
	if !c.Contains(3) || c.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if got := c.Ranks(); len(got) != 4 || got[2] != 2 {
		t.Fatalf("Ranks = %v", got)
	}
	if w.Engine() == nil {
		t.Fatal("engine accessor nil")
	}
}
