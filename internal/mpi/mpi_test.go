package mpi

import (
	"fmt"
	"testing"
	"testing/quick"

	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

func newWorld(nodes, ppn, hcas int) *World {
	return New(Config{Topo: topology.New(nodes, ppn, hcas)})
}

func TestSendRecvIntraNode(t *testing.T) {
	w := newWorld(1, 2, 2)
	var got Buf
	var latency sim.Time
	err := w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(w.CommWorld(), 1, 7, Bytes([]byte("payload")))
		case 1:
			got = p.Recv(w.CommWorld(), 0, 7)
			latency = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data()) != "payload" {
		t.Fatalf("got %q", got.Data())
	}
	want := w.Params().CMATime(7, 1)
	if latency != sim.Time(want) {
		t.Fatalf("latency %v, want %v", latency, want)
	}
}

func TestSendRecvInterNode(t *testing.T) {
	w := newWorld(2, 1, 2)
	var latency sim.Time
	n := 1024 // below stripe threshold: single rail
	err := w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(w.CommWorld(), 1, 0, Phantom(n))
		case 1:
			p.Recv(w.CommWorld(), 0, 0)
			latency = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := w.Params().HCATime(n, 1)
	if latency != sim.Time(want) {
		t.Fatalf("latency %v, want %v", latency, want)
	}
}

func TestStripingHalvesLargeMessageLatency(t *testing.T) {
	// The Figure 3 effect: with 2 rails a large message takes about half
	// the single-rail time.
	n := 4 << 20
	run := func(hcas int, opts ...SendOption) sim.Time {
		w := newWorld(2, 1, hcas)
		var latency sim.Time
		err := w.Run(func(p *Proc) {
			switch p.Rank() {
			case 0:
				p.Send(w.CommWorld(), 1, 0, Phantom(n), opts...)
			case 1:
				p.Recv(w.CommWorld(), 0, 0)
				latency = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return latency
	}
	one := run(1)
	two := run(2)
	ratio := float64(one) / float64(two)
	if ratio < 1.8 || ratio > 2.1 {
		t.Fatalf("striping speedup = %.2f (1 rail %v, 2 rails %v), want ~2x", ratio, one, two)
	}
	noStripe := run(2, NoStripe())
	if noStripe != one {
		t.Fatalf("NoStripe latency %v, want single-rail %v", noStripe, one)
	}
}

func TestViaRailPinsTransfer(t *testing.T) {
	w := newWorld(2, 1, 2)
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		switch p.Rank() {
		case 0:
			p.Send(c, 1, 0, Phantom(1<<20), ViaRail(1))
		case 1:
			p.Recv(c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only rail 1 should have been used.
	n0 := w.nodes[0]
	if n0.hcas[0].tx.Uses() != 0 {
		t.Fatal("rail 0 tx used despite ViaRail(1)")
	}
	if n0.hcas[1].tx.Uses() != 1 {
		t.Fatalf("rail 1 tx uses = %d, want 1", n0.hcas[1].tx.Uses())
	}
}

func TestViaHCALoopbackUsesSameNodeRails(t *testing.T) {
	w := newWorld(1, 2, 2)
	var latency sim.Time
	n := 1 << 20
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		switch p.Rank() {
		case 0:
			p.Send(c, 1, 0, Phantom(n), ViaHCA())
		case 1:
			p.Recv(c, 0, 0)
			latency = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	nd := w.nodes[0]
	if nd.hcas[0].tx.Uses()+nd.hcas[1].tx.Uses() == 0 {
		t.Fatal("ViaHCA did not touch any rail")
	}
	want := w.Params().HCATime(n, 2) // striped loopback
	if latency != sim.Time(want) {
		t.Fatalf("latency %v, want %v", latency, want)
	}
}

func TestRoundRobinSmallMessages(t *testing.T) {
	w := newWorld(2, 1, 2)
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		switch p.Rank() {
		case 0:
			for i := 0; i < 4; i++ {
				p.Send(c, 1, i, Phantom(64))
			}
		case 1:
			for i := 0; i < 4; i++ {
				p.Recv(c, 0, i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	nd := w.nodes[0]
	if nd.hcas[0].tx.Uses() != 2 || nd.hcas[1].tx.Uses() != 2 {
		t.Fatalf("round robin uses = %d/%d, want 2/2",
			nd.hcas[0].tx.Uses(), nd.hcas[1].tx.Uses())
	}
}

func TestNonblockingOverlap(t *testing.T) {
	// An Isend over the HCA should overlap with local compute: total time
	// is max(transfer, compute), not the sum.
	w := newWorld(2, 1, 1)
	n := 1 << 20
	compute := 500 * sim.Microsecond
	var done sim.Time
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		switch p.Rank() {
		case 0:
			req := p.Isend(c, 1, 0, Phantom(n))
			p.Sleep(compute) // concurrent local work
			p.Wait(req)
			done = p.Now()
		case 1:
			p.Recv(c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	transfer := w.Params().HCATime(n, 1)
	want := transfer
	if compute > want {
		want = compute
	}
	if done != sim.Time(want) {
		t.Fatalf("overlapped completion %v, want max(transfer %v, compute %v)",
			done, transfer, compute)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	w := newWorld(1, 3, 1)
	var fromTag, fromSrc Buf
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		switch p.Rank() {
		case 0:
			p.Send(c, 2, 5, Bytes([]byte("tag5")))
		case 1:
			p.Send(c, 2, 9, Bytes([]byte("tag9")))
		case 2:
			fromTag = p.Recv(c, 1, 9)
			fromSrc = p.Recv(c, AnySource, 5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(fromTag.Data()) != "tag9" || string(fromSrc.Data()) != "tag5" {
		t.Fatalf("matching wrong: %q, %q", fromTag.Data(), fromSrc.Data())
	}
}

func TestCommIsolation(t *testing.T) {
	// The same (src, tag) on different comms must not match each other.
	w := newWorld(1, 2, 1)
	sub := w.NewComm([]int{0, 1})
	var first Buf
	err := w.Run(func(p *Proc) {
		world := w.CommWorld()
		switch p.Rank() {
		case 0:
			p.Send(world, 1, 3, Bytes([]byte("world")))
			p.Send(sub, 1, 3, Bytes([]byte("sub")))
		case 1:
			first = p.Recv(sub, 0, 3)
			p.Recv(world, 0, 3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(first.Data()) != "sub" {
		t.Fatalf("comm isolation broken: got %q", first.Data())
	}
}

func TestNodeAndLeaderComms(t *testing.T) {
	w := newWorld(3, 4, 1)
	err := w.Run(func(p *Proc) {
		nc := w.NodeComm(p.Node())
		if nc.Size() != 4 {
			t.Errorf("node comm size %d", nc.Size())
		}
		if got := nc.Rank(p); got != p.Local() {
			t.Errorf("node comm rank %d, want %d", got, p.Local())
		}
		lc := w.LeaderComm()
		if p.IsLeader() {
			if got := lc.Rank(p); got != p.Node() {
				t.Errorf("leader comm rank %d, want node %d", got, p.Node())
			}
		} else if lc.Rank(p) != -1 {
			t.Errorf("non-leader in leader comm")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := newWorld(2, 2, 1)
	times := make([]sim.Time, 4)
	err := w.Run(func(p *Proc) {
		p.Sleep(sim.Duration(p.Rank()) * 100 * sim.Microsecond)
		w.CommWorld().Barrier(p)
		times[p.Rank()] = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ti := range times {
		if ti != sim.Time(300*sim.Microsecond) {
			t.Fatalf("rank %d left barrier at %v, want 300us", r, ti)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	w := newWorld(1, 3, 1)
	err := w.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			w.CommWorld().Barrier(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShmCountersOverlap(t *testing.T) {
	// Leader copies a chunk in and bumps the counter; peers copy out after
	// waiting. Real bytes must round-trip.
	w := newWorld(1, 3, 1)
	payload := []byte("chunk-data")
	got := make([]Buf, 3)
	err := w.Run(func(p *Proc) {
		s := p.ShmOpen("bcast", 64)
		if p.Local() == 0 {
			p.Sleep(10 * sim.Microsecond)
			s.CopyIn(p, 0, Bytes(payload))
			s.Counter("ready").Add(1)
		} else {
			s.WaitCounter(p, "ready", 1)
			dst := NewBuf(len(payload))
			s.CopyOut(p, 0, dst)
			got[p.Local()] = dst
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l < 3; l++ {
		if string(got[l].Data()) != string(payload) {
			t.Fatalf("local %d got %q", l, got[l].Data())
		}
	}
}

func TestShmSharedAcrossRanksDistinctAcrossNodes(t *testing.T) {
	w := newWorld(2, 2, 1)
	err := w.Run(func(p *Proc) {
		s := p.ShmOpen("region", 16)
		if p.Local() == 0 {
			s.CopyIn(p, 0, Bytes([]byte{byte(p.Node())}))
			s.Counter("ok").Add(1)
		} else {
			s.WaitCounter(p, "ok", 1)
			dst := NewBuf(1)
			s.CopyOut(p, 0, dst)
			if dst.Data()[0] != byte(p.Node()) {
				t.Errorf("node %d read %d from its shm", p.Node(), dst.Data()[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShmWrongNodePanics(t *testing.T) {
	w := newWorld(2, 1, 1)
	var region *Shm
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			region = p.ShmOpen("r", 8)
		}
		w.CommWorld().Barrier(p)
		if p.Rank() == 1 {
			defer func() {
				if recover() == nil {
					t.Error("cross-node shm access should panic")
				}
			}()
			region.CopyIn(p, 0, Phantom(4))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhantomPayloadsFlow(t *testing.T) {
	w := New(Config{Topo: topology.New(2, 2, 2), Phantom: true})
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		if p.Rank() == 0 {
			p.Send(c, 3, 0, Phantom(1<<20))
		}
		if p.Rank() == 3 {
			got := p.Recv(c, 0, 0)
			if !got.IsPhantom() || got.Len() != 1<<20 {
				t.Errorf("phantom recv = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockSurfaceable(t *testing.T) {
	w := newWorld(1, 2, 1)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(w.CommWorld(), 1, 0) // never sent
		}
	})
	if err == nil {
		t.Fatal("want deadlock error")
	}
}

func TestTracerRecordsEvents(t *testing.T) {
	rec := trace.New()
	w := New(Config{Topo: topology.New(2, 1, 1), Tracer: rec})
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		if p.Rank() == 0 {
			p.Send(c, 1, 0, Phantom(1<<16))
		} else {
			p.Recv(c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	var sawHCA, sawWait bool
	for _, ev := range rec.Events() {
		switch ev.Cat {
		case trace.CatHCA:
			sawHCA = true
		case trace.CatWait:
			sawWait = true
		}
	}
	if !sawHCA || !sawWait {
		t.Fatalf("missing categories: hca=%v wait=%v", sawHCA, sawWait)
	}
}

func TestCMACongestionSlowsConcurrentCopies(t *testing.T) {
	// Many concurrent large intra-node transfers must take longer per
	// transfer than a single one (the paper's b factor).
	n := 4 << 20
	run := func(pairs int) sim.Time {
		w := newWorld(1, 2*pairs, 1)
		var worst sim.Time
		err := w.Run(func(p *Proc) {
			c := w.CommWorld()
			if p.Rank() < pairs {
				p.Send(c, p.Rank()+pairs, 0, Phantom(n))
			} else {
				p.Recv(c, p.Rank()-pairs, 0)
				if p.Now() > worst {
					worst = p.Now()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	single := run(1)
	many := run(24) // 24 concurrent 4MB CMA copies oversubscribe the pool
	if many <= single {
		t.Fatalf("24 concurrent copies (%v) not slower than 1 (%v)", many, single)
	}
}

func TestEpochMonotonic(t *testing.T) {
	w := newWorld(1, 2, 1)
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		for i := 0; i < 3; i++ {
			if e := c.Epoch(p); e != i {
				t.Errorf("epoch %d, want %d", e, i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBufSliceAndCopy(t *testing.T) {
	b := NewBuf(10)
	src := Bytes([]byte{1, 2, 3})
	b.Slice(4, 3).CopyFrom(src)
	if b.Data()[4] != 1 || b.Data()[6] != 3 {
		t.Fatalf("slice copy failed: %v", b.Data())
	}
	ph := Phantom(3)
	ph.CopyFrom(src) // must not panic
	if !ph.IsPhantom() {
		t.Fatal("phantom lost phantomness")
	}
	clone := b.Clone()
	clone.Data()[4] = 99
	if b.Data()[4] == 99 {
		t.Fatal("clone aliases original")
	}
}

func TestBufEqual(t *testing.T) {
	if !Bytes([]byte{1, 2}).Equal(Bytes([]byte{1, 2})) {
		t.Fatal("equal bufs not equal")
	}
	if Bytes([]byte{1, 2}).Equal(Bytes([]byte{1, 3})) {
		t.Fatal("unequal bufs equal")
	}
	if !Phantom(5).Equal(Phantom(5)) {
		t.Fatal("phantom bufs of same size should be equal")
	}
	if Phantom(5).Equal(Phantom(6)) {
		t.Fatal("phantoms of different size equal")
	}
}

// Property: any (nodes, ppn, hcas, size) pingpong between rank 0 and the
// last rank delivers exactly the sent bytes.
func TestQuickPingPongDelivers(t *testing.T) {
	f := func(nodes, ppn, hcas uint8, size uint16) bool {
		n := int(nodes)%3 + 1
		l := int(ppn)%3 + 1
		h := int(hcas)%3 + 1
		if n*l < 2 {
			return true
		}
		w := newWorld(n, l, h)
		payload := make([]byte, int(size)%2048+1)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		ok := true
		err := w.Run(func(p *Proc) {
			c := w.CommWorld()
			last := p.Size() - 1
			switch p.Rank() {
			case 0:
				p.Send(c, last, 1, Bytes(payload))
				echo := p.Recv(c, last, 2)
				ok = ok && echo.Equal(Bytes(payload))
			case last:
				got := p.Recv(c, 0, 1)
				p.Send(c, 0, 2, got)
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: transfer latency is monotone in message size for a fixed path.
func TestQuickLatencyMonotoneInSize(t *testing.T) {
	prm := netmodel.Thor()
	f := func(a, b uint32) bool {
		x, y := int(a%(8<<20))+1, int(b%(8<<20))+1
		if x > y {
			x, y = y, x
		}
		return prm.HCATime(x, 2) <= prm.HCATime(y, 2) &&
			prm.CMATime(x, 1) <= prm.CMATime(y, 1) &&
			prm.CopyTime(x, 4) <= prm.CopyTime(y, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitTwiceReturnsSameData(t *testing.T) {
	w := newWorld(1, 2, 1)
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		if p.Rank() == 0 {
			p.Send(c, 1, 0, Bytes([]byte("x")))
		} else {
			req := p.Irecv(c, 0, 0)
			first := p.Wait(req)
			second := p.Wait(req)
			if !first.Equal(second) {
				t.Error("double Wait returned different data")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldAccessors(t *testing.T) {
	w := newWorld(2, 3, 2)
	if w.Topo().Size() != 6 || w.Phantom() {
		t.Fatal("accessor mismatch")
	}
	err := w.Run(func(p *Proc) {
		if p.Size() != 6 || p.PPN() != 3 || p.HCAs() != 2 {
			t.Errorf("rank %d sees wrong shape", p.Rank())
		}
		if p.Node() != p.Rank()/3 || p.Local() != p.Rank()%3 {
			t.Errorf("rank %d mapping wrong", p.Rank())
		}
		if (p.Local() == 0) != p.IsLeader() {
			t.Errorf("leader flag wrong")
		}
		if p.World() != w {
			t.Errorf("world accessor wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvCombined(t *testing.T) {
	// A 4-rank ring rotation using SendRecv: everyone passes its rank
	// byte right and receives from the left.
	w := newWorld(2, 2, 1)
	err := w.Run(func(p *Proc) {
		c := w.CommWorld()
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		got := p.SendRecv(c, right, 0, Bytes([]byte{byte(p.Rank())}), left, 0)
		if got.Data()[0] != byte(left) {
			t.Errorf("rank %d got %d, want %d", p.Rank(), got.Data()[0], left)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func ExampleTag() {
	fmt.Println(Tag(1, 2, 3), Tag(0, 0, 7))
	// Output: 2228227 7
}
