package mpi

import (
	"fmt"
	"strings"

	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/trace"
)

// AnySource matches a message from any rank in Recv/Irecv.
const AnySource = -1

// sendOpts carries transport selection for one send.
type sendOpts struct {
	forceHCA bool   // use an HCA even for an intra-node peer (loopback)
	rail     int    // specific rail index, or -1 for the default policy
	noStripe bool   // never stripe, even above the striping threshold
	byRef    bool   // zero-cost pointer handoff (same node only)
	owner    string // owning job label, from the comm (audit attribution)
}

// SendOption customizes how a message is carried.
type SendOption func(*sendOpts)

// ViaHCA forces the message through the network adapters even when the
// peer is on the same node. This is the MHA-intra offload path: the NIC
// loops the transfer back into the node, leaving the CPUs free.
func ViaHCA() SendOption { return func(o *sendOpts) { o.forceHCA = true } }

// ViaRail pins the message to one specific rail (implies ViaHCA). When a
// fault schedule marks the pinned rail down at send time, the message
// fails over to the healthiest surviving rail and a trace event records
// the decision (unless the world is FaultBlind, in which case it queues
// on the dead rail until the outage ends).
func ViaRail(r int) SendOption {
	if r < 0 {
		panic(fmt.Sprintf("mpi: ViaRail(%d): negative rail", r))
	}
	return func(o *sendOpts) { o.forceHCA = true; o.rail = r }
}

// NoStripe disables multirail striping for this message.
func NoStripe() SendOption { return func(o *sendOpts) { o.noStripe = true } }

// ByRef delivers the message instantly with no transfer cost, modeling a
// pointer handoff between on-node ranks (e.g. exposing a buffer for the
// peer to read via CMA). The consumer pays for the actual copy, typically
// via ChargeCMA. Only valid between ranks on the same node.
func ByRef() SendOption { return func(o *sendOpts) { o.byRef = true } }

// A Request is an in-flight nonblocking operation; complete it with Wait.
type Request struct {
	p      *Proc
	isSend bool
	end    sim.Time // send: transfer completion
	// receive side:
	comm     *Comm
	src, tag int
	data     Buf
	done     bool
	posted   sim.Time
}

// Isend starts a nonblocking send of data to comm rank dst. The payload is
// snapshotted immediately (the caller may reuse its buffer). Transfer
// resources are seized at post time; Wait blocks until the transfer ends.
func (p *Proc) Isend(c *Comm, dst, tag int, data Buf, opts ...SendOption) *Request {
	var o sendOpts
	o.rail = -1
	// The engine serializes process execution, so the plain owner read is
	// ordered after any SetOwner by the dispatching scheduler.
	o.owner = c.owner
	for _, opt := range opts {
		opt(&o)
	}
	wdst := c.WorldRank(dst)
	wsrc := p.rs.rank
	n := data.Len()
	// Per-message posting overhead (LogGP's o): the caller's CPU is busy
	// before the transfer machinery even starts. ByRef handoffs are free.
	if post := p.w.prm.AlphaPost; post > 0 && !o.byRef {
		_, oe := p.rs.cpu.Acquire(post)
		p.sp.WaitUntil(oe)
	}
	msg := &message{comm: c.id, src: wsrc, dst: wdst, tag: tag, data: data.Clone(), sentAt: p.Now()}

	var end sim.Time
	sameNode := p.w.topo.SameNode(wsrc, wdst)
	switch {
	case o.byRef:
		if !sameNode {
			panic("mpi: ByRef send to a rank on another node")
		}
		end = p.Now()
	case sameNode && !o.forceHCA:
		end = p.sendCMA(wdst, n)
	default:
		end = p.sendHCA(wdst, n, o)
	}
	p.w.ranks[wdst].mbox.PutAt(end, msg)
	return &Request{p: p, isSend: true, end: end, posted: msg.sentAt}
}

// sendCMA carries n bytes to an on-node peer with a kernel-assisted single
// copy performed by this rank's CPU, subject to memory congestion and, on
// NUMA topologies, the cross-socket penalty.
func (p *Proc) sendCMA(wdst, n int) sim.Time {
	nd := p.w.nodes[p.rs.node]
	conc := nd.mem.Inc()
	d := p.w.perturb(p.w.prm.CMATime(n, conc))
	if f := p.w.prm.SocketFactor(); f > 1 &&
		!p.w.topo.SameSocket(p.rs.local, p.w.topo.LocalOf(wdst)) {
		d = sim.Duration(float64(d) * f)
	}
	start, end := p.rs.cpu.Acquire(d)
	nd.mem.DecAt(end)
	p.trace(trace.CatSend, "cma", start, end, wdst, n)
	// The sending CPU is busy for the whole copy; model that by advancing
	// the rank past its own copy. Nonblocking semantics survive because
	// further sends queue on the cpu resource rather than on the caller.
	return end
}

// sendHCA carries n bytes through network adapters: a pinned rail, a
// round-robin rail for small messages, or striped across every rail for
// large ones (the multirail point-to-point design of Liu et al.).
//
// When a fault schedule is attached (and the world is not FaultBlind),
// selection consults the rail-health registry first: pinned sends fail
// over off dead rails, round-robin skips them, and striping re-weights
// the pieces by each surviving rail's bandwidth fraction so all rails
// finish together. Every deviation from the healthy decision is recorded
// as a CatFault trace event.
func (p *Proc) sendHCA(wdst, n int, o sendOpts) sim.Time {
	prm := p.w.prm
	srcNodeID := p.rs.node
	dstNodeID := p.w.topo.NodeOf(wdst)
	srcNode := p.w.nodes[srcNodeID]
	dstNode := p.w.nodes[dstNodeID]
	// A transfer occupies the same rail index at both ends, so a
	// heterogeneous pair is limited to the rails the weaker endpoint has.
	H := len(srcNode.hcas)
	if dh := len(dstNode.hcas); dh < H {
		H = dh
	}
	health := p.w.health
	consult := health.Faulty() && !p.w.faultBlind
	now := p.Now()

	rendezvous := sim.Duration(0)
	if n >= prm.RendezvousThreshold {
		rendezvous = prm.AlphaRendezvous
	}

	var rails []int
	var pieces []int
	switch {
	case o.rail >= 0:
		r := o.rail
		if r >= H {
			if !p.w.topo.Heterogeneous() {
				panic(fmt.Sprintf("mpi: rail %d out of range (H=%d)", o.rail, H))
			}
			// A planner pinned a rail the weaker endpoint of this
			// heterogeneous pair lacks: wrap onto the shared rails so the
			// schedule stays correct, and record the deviation.
			c := r % H
			p.trace(trace.CatFault, fmt.Sprintf("railclamp(rail%d->rail%d)", r, c), now, now, wdst, n)
			r = c
		}
		if consult && !health.Up(srcNodeID, r, now) ||
			consult && !health.Up(dstNodeID, r, now) {
			alt, up := health.bestRail(srcNodeID, dstNodeID, r, r, H, now)
			if up {
				p.trace(trace.CatFault, fmt.Sprintf("failover(rail%d->rail%d)", r, alt), now, now, wdst, n)
				r = alt
			} else {
				// Every rail is down: queue on the one that recovers
				// first; the resource's rate profile charges the wait.
				alt, _ = health.bestRail(srcNodeID, dstNodeID, r, -1, H, now)
				p.trace(trace.CatFault, fmt.Sprintf("raildown(wait rail%d)", alt), now, now, wdst, n)
				r = alt
			}
		}
		rails, pieces = []int{r}, []int{n}
	case !o.noStripe && prm.ShouldStripe(n) && H > 1:
		if consult {
			rails, pieces = p.stripeByHealth(srcNodeID, dstNodeID, wdst, n, H, now)
		} else if scales := p.railScales(H); scales != nil {
			// Asymmetric rails: split in proportion to deliverable
			// bandwidth so every rail finishes its share together.
			rails, pieces = dropEmptyPieces(railList(H), netmodel.RailChunkWeighted(n, scales))
		} else {
			rails = railList(H)
			pieces = netmodel.RailChunk(n, H)
		}
	default:
		r := p.rs.railRR % H
		p.rs.railRR++
		if consult && !health.Up(srcNodeID, r, now) || consult && !health.Up(dstNodeID, r, now) {
			picked := -1
			for k := 1; k < H; k++ {
				c := (r + k) % H
				if health.LinkFraction(srcNodeID, dstNodeID, c, now) > 0 {
					picked = c
					break
				}
			}
			if picked >= 0 {
				p.trace(trace.CatFault, fmt.Sprintf("failover(rail%d->rail%d)", r, picked), now, now, wdst, n)
				r = picked
			} else {
				picked, _ = health.bestRail(srcNodeID, dstNodeID, r, -1, H, now)
				p.trace(trace.CatFault, fmt.Sprintf("raildown(wait rail%d)", picked), now, now, wdst, n)
				r = picked
			}
		}
		rails, pieces = []int{r}, []int{n}
	}

	// Latency faults add a per-piece startup penalty whether or not
	// selection is health-aware — elevated latency is physical, not a
	// routing decision.
	var extra [8]sim.Duration
	extraLat := extra[:0]
	for _, r := range rails {
		extraLat = append(extraLat, health.LinkExtraLatency(srcNodeID, dstNodeID, r, now))
	}

	// On a structured fabric, pieces whose endpoints sit under different
	// switches additionally hold every shared link on their route — the
	// contention points of an oversubscribed tree or a dragonfly's
	// local/global channels. Same-switch (and loopback) traffic never
	// enters the fabric.
	path := p.w.routeOf(srcNodeID, dstNodeID)

	var end sim.Time
	var start sim.Time = -1
	for i, r := range rails {
		bw := prm.BWHCA
		if p.w.topo.RailBW != nil {
			bw = prm.RailBW(p.w.topo.RailScale(r))
		}
		d := p.w.perturb(prm.AlphaHCA+rendezvous+sim.FromSeconds(float64(pieces[i])/bw)) + extraLat[i]
		s, e := sim.AcquireTogether(d, srcNode.hcas[r].tx, dstNode.hcas[r].rx)
		srcNode.hcas[r].tx.MarkOwner(o.owner)
		dstNode.hcas[r].rx.MarkOwner(o.owner)
		for _, lk := range path {
			// The piece consumes each route link's capacity from the
			// moment it starts injecting; it is only delivered once every
			// (FIFO, aggregate-rate) fabric stage has carried it. On a
			// full-bisection fabric the links keep up and this never
			// extends the endpoint time; tapered links queue here.
			lkD := sim.FromSeconds(float64(pieces[i]) / lk.BW)
			if _, e2 := lk.Res.AcquireAfter(s, lkD); e2 > e {
				e = e2
			}
			lk.Res.MarkOwner(o.owner)
		}
		if start < 0 || s < start {
			start = s
		}
		if e > end {
			end = e
		}
	}
	p.trace(trace.CatHCA, fmt.Sprintf("hca(x%d)", len(rails)), start, end, wdst, n)
	return end
}

// railScales returns the first H per-rail bandwidth scales, or nil when
// every rail runs at nominal rate (the homogeneous fast path).
func (p *Proc) railScales(H int) []float64 {
	if p.w.topo.RailBW == nil {
		return nil
	}
	return p.w.topo.RailBW[:H]
}

// railList returns [0..H).
func railList(H int) []int {
	rails := make([]int, H)
	for i := range rails {
		rails[i] = i
	}
	return rails
}

// dropEmptyPieces removes zero-byte pieces so no startup cost is paid
// for rails a weighted split rounded down to nothing.
func dropEmptyPieces(rails, pieces []int) ([]int, []int) {
	outR, outP := rails[:0], pieces[:0]
	for i := range rails {
		if pieces[i] > 0 {
			outR = append(outR, rails[i])
			outP = append(outP, pieces[i])
		}
	}
	return outR, outP
}

// stripeByHealth plans a striped transfer over the surviving rails of the
// src->dst link: dead rails are skipped and each piece is sized in
// proportion to its rail's surviving bandwidth fraction (times its
// asymmetric-rail scale, when the cluster has one), so every rail
// finishes its share at the same moment despite unequal degradation. Any
// deviation from the healthy equal split is recorded as a CatFault event
// naming the piece layout.
func (p *Proc) stripeByHealth(srcNodeID, dstNodeID, wdst, n, H int, now sim.Time) (rails, pieces []int) {
	health := p.w.health
	scales := p.railScales(H)
	var fracs []float64
	allHealthy := true
	for r := 0; r < H; r++ {
		f := health.LinkFraction(srcNodeID, dstNodeID, r, now)
		if f > 0 {
			rails = append(rails, r)
			fracs = append(fracs, f)
		}
		if f != 1 {
			allHealthy = false
		}
	}
	switch {
	case len(rails) == 0:
		// Nothing is up: fall back to the rail that recovers first and
		// let the rate profile charge the remaining outage.
		r, _ := health.bestRail(srcNodeID, dstNodeID, 0, -1, H, now)
		p.trace(trace.CatFault, fmt.Sprintf("raildown(wait rail%d)", r), now, now, wdst, n)
		return []int{r}, []int{n}
	case allHealthy && scales == nil:
		return rails, netmodel.RailChunk(n, H)
	case allHealthy:
		// Every rail is up; only the hardware asymmetry shapes the split,
		// which is the expected plan — no fault event.
		return dropEmptyPieces(rails, netmodel.RailChunkWeighted(n, scales))
	}
	weights := fracs
	if scales != nil {
		sub := make([]float64, len(rails))
		for i, r := range rails {
			sub[i] = scales[r]
		}
		weights = netmodel.RailWeights(fracs, sub)
	}
	pieces = netmodel.RailChunkWeighted(n, weights)
	// Drop pieces rounded down to nothing so we don't pay startup costs
	// for empty transfers.
	rails, pieces = dropEmptyPieces(rails, pieces)
	var b strings.Builder
	for i := range rails {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "rail%d=%d", rails[i], pieces[i])
	}
	p.trace(trace.CatFault, "stripe("+b.String()+")", now, now, wdst, n)
	return rails, pieces
}

// Irecv posts a nonblocking receive for a message from comm rank src with
// the given tag. src may be AnySource. The match happens at Wait time.
func (p *Proc) Irecv(c *Comm, src, tag int) *Request {
	wsrc := AnySource
	if src != AnySource {
		wsrc = c.WorldRank(src)
	}
	return &Request{p: p, comm: c, src: wsrc, tag: tag, posted: p.Now()}
}

// Wait completes a request. For receives it blocks until a matching
// message has arrived and returns its payload; for sends it blocks until
// the transfer has left the machine and returns a zero Buf.
func (p *Proc) Wait(req *Request) Buf {
	if req.p != p {
		panic("mpi: Wait on another rank's request")
	}
	if req.done {
		return req.data
	}
	req.done = true
	if req.isSend {
		start := p.Now()
		p.sp.WaitUntil(req.end)
		p.trace(trace.CatWait, "wait-send", start, p.Now(), -1, 0)
		return Buf{}
	}
	start := p.Now()
	what := fmt.Sprintf("msg(comm=%d src=%d tag=%d)", req.comm.id, req.src, req.tag)
	v := p.rs.mbox.Get(p.sp, what, func(v interface{}) bool {
		m := v.(*message)
		return m.comm == req.comm.id && m.tag == req.tag &&
			(req.src == AnySource || m.src == req.src)
	})
	m := v.(*message)
	req.data = m.data
	// Per-message completion overhead on the receiving CPU.
	if post := p.w.prm.AlphaPost; post > 0 {
		_, oe := p.rs.cpu.Acquire(post)
		p.sp.WaitUntil(oe)
	}
	// The blocking interval is wait time, not work: the transfer itself is
	// traced on the sender's lane (CMA copy or HCA occupation).
	p.trace(trace.CatWait, "recv-wait", start, p.Now(), m.src, m.data.Len())
	return m.data
}

// Waitall completes a set of requests in order and returns the receive
// payloads positionally (zero Bufs for sends).
func (p *Proc) Waitall(reqs ...*Request) []Buf {
	out := make([]Buf, len(reqs))
	for i, r := range reqs {
		out[i] = p.Wait(r)
	}
	return out
}

// Send is a blocking send: it returns when the transfer completes.
func (p *Proc) Send(c *Comm, dst, tag int, data Buf, opts ...SendOption) {
	p.Wait(p.Isend(c, dst, tag, data, opts...))
}

// Recv is a blocking receive returning the matched payload.
func (p *Proc) Recv(c *Comm, src, tag int) Buf {
	return p.Wait(p.Irecv(c, src, tag))
}

// SendRecv posts the receive, starts the send, and completes both — the
// classic ring-step primitive.
func (p *Proc) SendRecv(c *Comm, dst, sendTag int, data Buf, src, recvTag int, opts ...SendOption) Buf {
	rreq := p.Irecv(c, src, recvTag)
	sreq := p.Isend(c, dst, sendTag, data, opts...)
	got := p.Wait(rreq)
	p.Wait(sreq)
	return got
}
