package mpi

import (
	"fmt"

	"mha/internal/sim"
	"mha/internal/trace"
)

// Shm is a node-local shared-memory region with virtual-time availability
// counters — the mechanism the paper's phase 3 uses to overlap inter-node
// transfers with intra-node distribution: the node leader copies each
// arriving chunk in and bumps a counter; non-leader ranks wait on the
// counter and copy the chunk out, all while the leader's next inter-node
// transfer is already in flight.
type Shm struct {
	node     *node
	w        *World
	name     string
	buf      Buf
	counters map[string]*sim.Counter
}

// ShmOpen returns the named shared region on this rank's node, creating it
// with the given size on first open. Every rank of the node that opens the
// same name gets the same region; sizes must agree.
func (p *Proc) ShmOpen(name string, size int) *Shm {
	if size < 0 {
		panic("mpi: negative shm size")
	}
	w := p.w
	nd := w.nodes[p.rs.node]
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := nd.shms[name]; ok {
		if s.buf.Len() != size {
			panic(fmt.Sprintf("mpi: shm %q reopened with size %d, was %d", name, size, s.buf.Len()))
		}
		return s
	}
	s := &Shm{
		node:     nd,
		w:        w,
		name:     name,
		buf:      Make(size, w.phantom),
		counters: map[string]*sim.Counter{},
	}
	nd.shms[name] = s
	return s
}

// Size returns the region's size in bytes.
func (s *Shm) Size() int { return s.buf.Len() }

// Region returns a Buf view of [off, off+n) of the region's backing
// store, sharing storage with it. Leaders use it to send straight out of
// shared memory without an intermediate copy.
func (s *Shm) Region(off, n int) Buf { return s.buf.Slice(off, n) }

// Counter returns the named availability counter of this region, creating
// it at zero on first use.
func (s *Shm) Counter(name string) *sim.Counter {
	s.w.mu.Lock()
	defer s.w.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := s.w.eng.NewCounter(fmt.Sprintf("node%d.shm.%s.%s", s.node.id, s.name, name))
	s.counters[name] = c
	return c
}

// WaitCounter blocks p until the named counter reaches at least v.
func (s *Shm) WaitCounter(p *Proc, name string, v int64) {
	start := p.Now()
	s.Counter(name).WaitGE(p.sp, v)
	p.trace(trace.CatWait, "shm-counter:"+name, start, p.Now(), -1, 0)
}

// CopyIn copies src into the region at off, charging the copying rank's CPU
// the congested memcpy cost (T_L with the cg factor). It blocks until the
// copy completes.
func (s *Shm) CopyIn(p *Proc, off int, src Buf) {
	s.checkNode(p)
	n := src.Len()
	s.buf.Slice(off, n).CopyFrom(src)
	start, end := s.chargeCopy(p, n)
	p.trace(trace.CatCopyIn, "shm-copyin", start, end, -1, n)
}

// CopyOut copies n bytes at off out of the region into dst, charging the
// congested memcpy cost. It blocks until the copy completes.
func (s *Shm) CopyOut(p *Proc, off int, dst Buf) {
	s.checkNode(p)
	n := dst.Len()
	dst.CopyFrom(s.buf.Slice(off, n))
	start, end := s.chargeCopy(p, n)
	p.trace(trace.CatCopyOut, "shm-copyout", start, end, -1, n)
}

// chargeCopy occupies the rank's CPU for a congested memcpy of n bytes and
// blocks until done, returning the occupation interval.
func (s *Shm) chargeCopy(p *Proc, n int) (start, end sim.Time) {
	conc := s.node.mem.Inc()
	d := s.w.perturb(s.w.prm.CopyTime(n, conc))
	start, end = p.rs.cpu.Acquire(d)
	s.node.mem.DecAt(end)
	p.sp.WaitUntil(end)
	return start, end
}

func (s *Shm) checkNode(p *Proc) {
	if p.rs.node != s.node.id {
		panic(fmt.Sprintf("mpi: rank %d (node %d) touching shm of node %d",
			p.rs.rank, p.rs.node, s.node.id))
	}
}
