package mpi

import (
	"fmt"
	"strings"

	"mha/internal/sim"
)

// VerifyTeardown audits the world after Run has returned and reports every
// violated teardown invariant. On top of the engine-level quiescence audit
// (all ranks finished, no pending events, every resource idle with busy
// time within the makespan, every mailbox drained — sim.Engine.
// CheckQuiescent), it names leaks in MPI terms: a rank whose mailbox still
// holds messages received a send nobody posted a matching receive for, and
// a rail whose cumulative busy time exceeds the makespan double-charged an
// occupation. With several jobs multiplexed onto one world (internal/
// cluster), leaks are attributed per owning communicator — "job3 leaked 2"
// rather than one undifferentiated count — and a busy rail names the job
// that last acquired it. A nil error means the job tore down cleanly.
func (w *World) VerifyTeardown() error {
	makespan := sim.Duration(w.eng.Stats().Now)
	var bad []string
	if err := w.eng.CheckQuiescent(); err != nil {
		bad = append(bad, err.Error())
	}
	for _, rs := range w.ranks {
		items := rs.mbox.PendingItems()
		if len(items) == 0 {
			continue
		}
		bad = append(bad, fmt.Sprintf("rank %d: %d sent messages never received%s",
			rs.rank, len(items), w.leakByOwner(items)))
	}
	for _, nd := range w.nodes {
		for r, a := range nd.hcas {
			tx, rx := a.tx.BusyTime(), a.rx.BusyTime()
			if tx > makespan || rx > makespan {
				owned := ""
				if o := a.tx.LastOwner(); o != "" {
					owned = " (last acquired by " + o + ")"
				} else if o := a.rx.LastOwner(); o != "" {
					owned = " (last acquired by " + o + ")"
				}
				bad = append(bad, fmt.Sprintf("node %d rail %d: busy tx=%v rx=%v exceeds makespan %v%s",
					nd.id, r, tx, rx, makespan, owned))
			}
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("mpi: teardown violations: %s", strings.Join(bad, "; "))
}

// leakByOwner renders leaked mailbox messages grouped by the owner label
// of their communicator, e.g. " (job2: 3, unowned: 1)". It returns "" when
// no message belongs to a labeled comm, keeping single-tenant reports
// unchanged.
func (w *World) leakByOwner(items []interface{}) string {
	counts := map[string]int{}
	var order []string
	any := false
	for _, v := range items {
		m, ok := v.(*message)
		if !ok {
			continue
		}
		label := "unowned"
		if m.comm >= 0 && m.comm < len(w.comms) {
			if o := w.comms[m.comm].owner; o != "" {
				label, any = o, true
			}
		}
		if counts[label] == 0 {
			order = append(order, label)
		}
		counts[label]++
	}
	if !any {
		return ""
	}
	parts := make([]string, len(order))
	for i, label := range order {
		parts[i] = fmt.Sprintf("%s: %d", label, counts[label])
	}
	return " (" + strings.Join(parts, ", ") + ")"
}
