package mpi

import (
	"fmt"
	"strings"

	"mha/internal/sim"
)

// VerifyTeardown audits the world after Run has returned and reports every
// violated teardown invariant. On top of the engine-level quiescence audit
// (all ranks finished, no pending events, every resource idle with busy
// time within the makespan, every mailbox drained — sim.Engine.
// CheckQuiescent), it names leaks in MPI terms: a rank whose mailbox still
// holds messages received a send nobody posted a matching receive for, and
// a rail whose cumulative busy time exceeds the makespan double-charged an
// occupation. A nil error means the job tore down cleanly.
func (w *World) VerifyTeardown() error {
	makespan := sim.Duration(w.eng.Stats().Now)
	var bad []string
	if err := w.eng.CheckQuiescent(); err != nil {
		bad = append(bad, err.Error())
	}
	for _, rs := range w.ranks {
		if n := rs.mbox.Pending(); n > 0 {
			bad = append(bad, fmt.Sprintf("rank %d: %d sent messages never received", rs.rank, n))
		}
	}
	for _, st := range w.RailStats() {
		if st.TxBusy > makespan || st.RxBusy > makespan {
			bad = append(bad, fmt.Sprintf("node %d rail %d: busy tx=%v rx=%v exceeds makespan %v",
				st.Node, st.Rail, st.TxBusy, st.RxBusy, makespan))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("mpi: teardown violations: %s", strings.Join(bad, "; "))
}
