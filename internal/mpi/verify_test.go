package mpi

import (
	"strings"
	"testing"

	"mha/internal/topology"
)

func TestVerifyTeardownClean(t *testing.T) {
	w := New(Config{Topo: topology.New(2, 2, 2)})
	err := w.Run(func(p *Proc) {
		peer := (p.Rank() + 1) % p.Size()
		send := NewBuf(64)
		rreq := p.Irecv(w.CommWorld(), (p.Rank()-1+p.Size())%p.Size(), 5)
		sreq := p.Isend(w.CommWorld(), peer, 5, send)
		p.Wait(rreq)
		p.Wait(sreq)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyTeardown(); err != nil {
		t.Fatalf("clean exchange flagged: %v", err)
	}
}

func TestVerifyTeardownCatchesUnreceivedSend(t *testing.T) {
	w := New(Config{Topo: topology.New(1, 2, 1)})
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Wait(p.Isend(w.CommWorld(), 1, 9, NewBuf(32)))
		}
		// Rank 1 never posts the matching receive.
	})
	if err != nil {
		t.Fatal(err)
	}
	terr := w.VerifyTeardown()
	if terr == nil || !strings.Contains(terr.Error(), "never received") {
		t.Fatalf("orphaned send not flagged: %v", terr)
	}
}
