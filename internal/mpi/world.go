// Package mpi is a miniature MPI runtime on top of the sim engine: ranks
// are simulated processes, point-to-point messages move real (or phantom)
// payloads, and transfer times come from the netmodel cost functions
// applied to contended hardware resources (HCA rails, node memory).
//
// It provides exactly the substrate the paper's designs need: blocking and
// nonblocking point-to-point with tag matching, transport selection (CMA,
// a specific HCA rail, striped multirail), communicators and sub-
// communicators (node-local and leader comms), and node-level shared-memory
// regions with virtual-time availability counters.
package mpi

import (
	"fmt"
	"math/rand"
	"sync"

	"mha/internal/fabric"
	"mha/internal/faults"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
)

// Config describes a simulated MPI job.
type Config struct {
	// Topo is the cluster shape (required).
	Topo topology.Cluster
	// Params is the communication cost model; nil means netmodel.Thor().
	Params *netmodel.Params
	// Tracer, when non-nil, records every communication event.
	Tracer *trace.Recorder
	// Phantom makes shared-memory regions size-only. Point-to-point
	// payloads are phantom whenever the caller passes Phantom buffers,
	// independent of this flag.
	Phantom bool
	// Seed initializes the jitter RNG when Params.Jitter > 0; two worlds
	// with the same seed produce identical results.
	Seed int64
	// Faults, when non-nil, degrades the HCA rails over virtual time: down
	// windows, reduced-bandwidth spans, added latency, flapping. The
	// schedule both slows the rail resources and feeds the rail-health
	// registry that transport selection consults.
	Faults *faults.Schedule
	// FaultBlind keeps transport selection unaware of the fault schedule:
	// rails still degrade, but striping splits equally and pinned/round-
	// robin sends queue on dead rails. This is the naive baseline the
	// health-aware path is measured against.
	FaultBlind bool
	// Fabric, when non-nil, selects the structured inter-node network
	// (fat-tree or dragonfly) whose shared links cross-node traffic must
	// traverse. Nil falls back to the legacy Params.NodesPerLeaf two-level
	// tree when that is set, else the flat non-blocking fabric.
	Fabric *fabric.Spec
}

// World is one simulated MPI job. Create it with New, then call Run with
// the rank body.
type World struct {
	eng    *sim.Engine
	topo   topology.Cluster
	prm    *netmodel.Params
	tracer *trace.Recorder

	phantom    bool
	nodes      []*node
	ranks      []*rankState
	net        *fabric.Network // nil on a flat (non-blocking) fabric
	health     *RailHealth
	faultBlind bool

	jitterMu sync.Mutex
	jitter   *rand.Rand // nil when Params.Jitter == 0

	mu          sync.Mutex
	comms       []*Comm
	world       *Comm
	nodeComms   []*Comm
	leaders     *Comm
	socketComms [][]*Comm // [node][socket], only when Topo.Sockets > 1
	named       map[string]*Comm
}

// node holds the per-node hardware: HCA rails and the memory-concurrency
// gauge that drives the congestion factors, plus shared-memory regions.
type node struct {
	id   int
	hcas []*hca
	mem  *sim.Gauge
	shms map[string]*Shm
}

// hca is one network adapter: independent transmit and receive engines
// (full-duplex, as on InfiniBand).
type hca struct {
	tx *sim.Resource
	rx *sim.Resource
}

// rankState is the engine-side state of one rank.
type rankState struct {
	rank, node, local int
	mbox              *sim.Mailbox
	cpu               *sim.Resource
	railRR            int         // round-robin cursor for small messages
	epochs            map[int]int // per-comm collective epoch
	barGen            map[int]int // per-comm barrier generation
}

// message is what travels between ranks.
type message struct {
	comm     int
	src, dst int // world ranks
	tag      int
	data     Buf
	sentAt   sim.Time
}

// New builds a world. The cluster shape must validate.
func New(cfg Config) *World {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	prm := cfg.Params
	if prm == nil {
		prm = netmodel.Thor()
	}
	if err := prm.Validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	w := &World{
		eng:     eng,
		topo:    cfg.Topo,
		prm:     prm,
		tracer:  cfg.Tracer,
		phantom: cfg.Phantom,
	}
	if prm.Jitter > 0 {
		w.jitter = rand.New(rand.NewSource(cfg.Seed))
	}
	if cfg.Faults.Len() > 0 {
		if err := cfg.Faults.Check(cfg.Topo.Nodes, cfg.Topo.HCAs); err != nil {
			panic(fmt.Sprintf("mpi: %v", err))
		}
		w.health = &RailHealth{sched: cfg.Faults, hcas: cfg.Topo.HCAs}
	} else {
		w.health = &RailHealth{hcas: cfg.Topo.HCAs}
	}
	w.faultBlind = cfg.FaultBlind
	fspec := cfg.Fabric
	if fspec == nil && prm.NodesPerLeaf > 0 {
		s := fabric.TwoLevel(prm.NodesPerLeaf, prm.Oversubscription)
		fspec = &s
	}
	if fspec != nil && fspec.Kind != fabric.Flat {
		nw, err := fabric.Build(eng, *fspec, cfg.Topo, prm)
		if err != nil {
			panic(fmt.Sprintf("mpi: %v", err))
		}
		w.net = nw
	}
	for n := 0; n < cfg.Topo.Nodes; n++ {
		nd := &node{id: n, mem: eng.NewGauge(fmt.Sprintf("node%d.mem", n)), shms: map[string]*Shm{}}
		for h := 0; h < cfg.Topo.HCAsOf(n); h++ {
			a := &hca{
				tx: eng.NewResource(fmt.Sprintf("node%d.hca%d.tx", n, h)),
				rx: eng.NewResource(fmt.Sprintf("node%d.hca%d.rx", n, h)),
			}
			if w.health.Faulty() {
				n, h := n, h
				rate := func(t sim.Time) (float64, sim.Time) {
					return cfg.Faults.RailState(n, h, t)
				}
				a.tx.SetRate(rate)
				a.rx.SetRate(rate)
			}
			nd.hcas = append(nd.hcas, a)
		}
		w.nodes = append(w.nodes, nd)
	}
	for r := 0; r < cfg.Topo.Size(); r++ {
		w.ranks = append(w.ranks, &rankState{
			rank:   r,
			node:   cfg.Topo.NodeOf(r),
			local:  cfg.Topo.LocalOf(r),
			mbox:   eng.NewMailbox(fmt.Sprintf("rank%d", r)),
			cpu:    eng.NewResource(fmt.Sprintf("rank%d.cpu", r)),
			epochs: map[int]int{},
			barGen: map[int]int{},
		})
	}
	// Pre-build the standard communicators.
	all := make([]int, cfg.Topo.Size())
	for i := range all {
		all[i] = i
	}
	w.world = w.newComm(all)
	for n := 0; n < cfg.Topo.Nodes; n++ {
		w.nodeComms = append(w.nodeComms, w.newComm(cfg.Topo.NodeRanks(n)))
	}
	w.leaders = w.newComm(cfg.Topo.Leaders())
	// Leaked-message attribution: when the teardown audit finds an
	// unclaimed mailbox item, render it in MPI terms — source, destination,
	// tag, and the owning communicator's job label if one was set. The
	// describer runs post-run only (no concurrent comm mutation), so the
	// direct field reads are safe.
	eng.SetItemDescriber(func(v interface{}) string {
		m, ok := v.(*message)
		if !ok {
			return fmt.Sprintf("%v", v)
		}
		label := ""
		if m.comm >= 0 && m.comm < len(w.comms) {
			if o := w.comms[m.comm].owner; o != "" {
				label = " owner=" + o
			}
		}
		return fmt.Sprintf("msg(src=%d dst=%d tag=%d bytes=%d sent=%v%s)",
			m.src, m.dst, m.tag, m.data.Len(), m.sentAt, label)
	})
	if s := cfg.Topo.NumaSockets(); s > 1 {
		w.socketComms = make([][]*Comm, cfg.Topo.Nodes)
		for n := 0; n < cfg.Topo.Nodes; n++ {
			w.socketComms[n] = make([]*Comm, s)
			for sock := 0; sock < s; sock++ {
				locals := cfg.Topo.SocketLocals(sock)
				ranks := make([]int, len(locals))
				for i, l := range locals {
					ranks[i] = cfg.Topo.RankOf(n, l)
				}
				w.socketComms[n][sock] = w.newComm(ranks)
			}
		}
	}
	return w
}

// Fabric returns the structured inter-node network, or nil on a flat
// (non-blocking) fabric.
func (w *World) Fabric() *fabric.Network { return w.net }

// routeOf returns the shared fabric links between two nodes (nil for
// same-node traffic or a flat fabric). The route table is immutable
// after New, so concurrent rank processes may read it freely.
func (w *World) routeOf(srcNode, dstNode int) []*fabric.Link {
	if w.net == nil || srcNode == dstNode {
		return nil
	}
	return w.net.Route(srcNode, dstNode)
}

// SocketComm returns the communicator of one NUMA socket's ranks. It
// panics when the topology has no socket structure (Sockets <= 1).
func (w *World) SocketComm(nodeID, socket int) *Comm {
	if w.socketComms == nil {
		panic("mpi: SocketComm on a flat (non-NUMA) topology")
	}
	return w.socketComms[nodeID][socket]
}

// Topo returns the cluster shape.
func (w *World) Topo() topology.Cluster { return w.topo }

// Params returns the communication cost model in use.
func (w *World) Params() *netmodel.Params { return w.prm }

// Engine exposes the underlying simulation engine (for custom resources).
func (w *World) Engine() *sim.Engine { return w.eng }

// Phantom reports whether shared-memory regions are size-only.
func (w *World) Phantom() bool { return w.phantom }

// perturb applies the configured OS/fabric noise to a modeled duration:
// a uniform factor in [1, 1+2*Jitter]. With Jitter == 0 it is identity.
// Draws happen in deterministic virtual-time order (the engine runs one
// process at a time), so a fixed seed reproduces exactly.
func (w *World) perturb(d sim.Duration) sim.Duration {
	if w.jitter == nil {
		return d
	}
	w.jitterMu.Lock()
	f := 1 + 2*w.prm.Jitter*w.jitter.Float64()
	w.jitterMu.Unlock()
	return sim.Duration(float64(d) * f)
}

// Run spawns one simulated process per rank, each executing body, and runs
// the simulation to completion.
func (w *World) Run(body func(*Proc)) error {
	for r := 0; r < w.topo.Size(); r++ {
		rs := w.ranks[r]
		w.eng.Spawn(fmt.Sprintf("rank%d", r), func(sp *sim.Proc) {
			body(&Proc{sp: sp, w: w, rs: rs})
		})
	}
	return w.eng.Run()
}

// Proc is the per-rank handle passed to the rank body. All its methods must
// be called from that rank's goroutine.
type Proc struct {
	sp *sim.Proc
	w  *World
	rs *rankState
}

// Rank returns this process's world rank.
func (p *Proc) Rank() int { return p.rs.rank }

// Sim exposes the underlying simulated process, so schedulers layered on
// the runtime (internal/cluster) can block a rank on engine primitives —
// e.g. a control mailbox — between collective assignments.
func (p *Proc) Sim() *sim.Proc { return p.sp }

// Size returns the world size.
func (p *Proc) Size() int { return p.w.topo.Size() }

// Node returns the node index hosting this rank.
func (p *Proc) Node() int { return p.rs.node }

// Local returns the rank's index within its node.
func (p *Proc) Local() int { return p.rs.local }

// PPN returns the processes-per-node count.
func (p *Proc) PPN() int { return p.w.topo.PPN }

// HCAs returns the number of rails per node.
func (p *Proc) HCAs() int { return p.w.topo.HCAs }

// World returns the job this process belongs to.
func (p *Proc) World() *World { return p.w }

// Now returns the current virtual time.
func (p *Proc) Now() sim.Time { return p.sp.Now() }

// IsLeader reports whether this rank is its node's leader (local 0).
func (p *Proc) IsLeader() bool { return p.rs.local == 0 }

// Compute occupies this rank's CPU for d, modeling local computation.
func (p *Proc) Compute(d sim.Duration) {
	if d <= 0 {
		return
	}
	start := p.Now()
	_, end := p.rs.cpu.Acquire(d)
	p.sp.WaitUntil(end)
	p.trace(trace.CatCompute, "compute", start, end, -1, 0)
}

// LocalCopy models a local memcpy of n bytes (e.g. send buffer to receive
// buffer at the start of a non-in-place collective), subject to the node's
// memory congestion, and performs the byte copy if both buffers are real.
func (p *Proc) LocalCopy(dst, src Buf) {
	n := src.Len()
	dst.CopyFrom(src)
	nd := p.w.nodes[p.rs.node]
	conc := nd.mem.Inc()
	d := p.w.perturb(p.w.prm.CopyTime(n, conc))
	start, end := p.rs.cpu.Acquire(d)
	nd.mem.DecAt(end)
	p.sp.WaitUntil(end)
	p.trace(trace.CatCompute, "localcopy", start, end, -1, n)
}

// ChargeCopy models the time of a local memcpy of n bytes (congested, on
// this rank's CPU) without moving any data. Collectives use it for bulk
// buffer shuffles whose data movement is done separately via Buf.CopyFrom.
func (p *Proc) ChargeCopy(n int) {
	if n <= 0 {
		return
	}
	nd := p.w.nodes[p.rs.node]
	conc := nd.mem.Inc()
	d := p.w.perturb(p.w.prm.CopyTime(n, conc))
	start, end := p.rs.cpu.Acquire(d)
	nd.mem.DecAt(end)
	p.sp.WaitUntil(end)
	p.trace(trace.CatCompute, "memcopy", start, end, -1, n)
}

// ChargeCMA models the time of a receiver-driven CMA pull of n bytes
// (process_vm_readv performed by this rank's CPU against another rank's
// address space), congested like any CMA transfer. Pair it with ByRef
// sends for leader-driven gathers.
func (p *Proc) ChargeCMA(n int) {
	if n <= 0 {
		return
	}
	nd := p.w.nodes[p.rs.node]
	conc := nd.mem.Inc()
	d := p.w.perturb(p.w.prm.CMATime(n, conc))
	start, end := p.rs.cpu.Acquire(d)
	nd.mem.DecAt(end)
	p.sp.WaitUntil(end)
	p.trace(trace.CatRecv, "cma-pull", start, end, -1, n)
}

// Sleep advances this rank's virtual clock without occupying any resource.
func (p *Proc) Sleep(d sim.Duration) { p.sp.Sleep(d) }

func (p *Proc) trace(cat trace.Category, name string, start, end sim.Time, peer, bytes int) {
	if p.w.tracer == nil {
		return
	}
	p.w.tracer.Add(trace.Event{
		Rank: p.rs.rank, Cat: cat, Name: name,
		Start: start, End: end, Peer: peer, Bytes: bytes,
	})
}
