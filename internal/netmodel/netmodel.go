// Package netmodel holds the calibrated communication-cost parameters of
// the simulated cluster and the cost functions built from them. The
// parameter names follow Table 1 of the paper: startup terms alpha_X,
// bandwidths BW_X, the intra-node concurrency factor b, and the
// shared-memory congestion factor cg(M, readers).
//
// The default calibration (Thor) models the paper's testbed: the Thor
// cluster of the HPC Advisory Council — 32 nodes, dual-socket 16-core
// Broadwell, 2x ConnectX-6 HDR100 100 Gb/s HCAs per node. Numbers are
// chosen so the simulator reproduces the paper's Figures 1 and 3: an
// intra-node CMA bandwidth approximately equal to one HCA's (~12.5 GB/s),
// inter-node bandwidth doubling when the second rail stripes, and rail
// saturation (striping onset) at 16 KB.
package netmodel

import (
	"fmt"

	"mha/internal/sim"
)

// Params is the communication parameter set (Table 1 of the paper).
// All bandwidths are in bytes per second.
type Params struct {
	// AlphaHCA is the startup time per inter-node transfer (alpha_H).
	AlphaHCA sim.Duration
	// BWHCA is the bandwidth of one HCA rail (BW_H).
	BWHCA float64

	// AlphaCMA is the startup time per intra-node CMA transfer (alpha_C).
	AlphaCMA sim.Duration
	// BWCMA is the single-copy CMA bandwidth (BW_C).
	BWCMA float64

	// AlphaCopy is the startup cost of a local/shared-memory copy (alpha_L).
	AlphaCopy sim.Duration
	// BWCopy is the single-stream shared-memory copy bandwidth (BW_L).
	// Collective micro-benchmarks loop over the same buffers, so these
	// copies run cache-hot (Broadwell LLC-resident memcpy).
	BWCopy float64

	// BWMemAgg is the node-aggregate bandwidth available to concurrent CMA
	// transfers. CMA copies cross address spaces through the kernel and
	// miss caches, so k concurrent copies share this pool: each sees
	// min(BW_C, BWMemAgg/k). This produces the paper's b factor without a
	// separate empirical table.
	BWMemAgg float64

	// BWShmAgg is the node-aggregate bandwidth for concurrent shared-
	// memory pipeline copies (the cg factor of Equation 5). It is much
	// higher than BWMemAgg because phase-3 readers stream blocks the
	// leader just wrote — LLC-resident on the evaluation workloads.
	BWShmAgg float64

	// CongestionMinBytes is the message size above which memory congestion
	// applies (the paper notes b = 1 for small messages, which are
	// latency-bound).
	CongestionMinBytes int

	// StripeThreshold is the message size at which one rail saturates and
	// point-to-point transfers start striping across all rails (16 KB on
	// Thor, per Section 2.1 / Figure 3 of the paper).
	StripeThreshold int

	// RendezvousThreshold is the size above which the rendezvous protocol
	// adds an extra handshake round-trip to inter-node transfers.
	RendezvousThreshold int

	// AlphaRendezvous is the extra startup of a rendezvous handshake.
	AlphaRendezvous sim.Duration

	// InterSocketFactor scales intra-node transfers whose endpoints sit on
	// different NUMA sockets (QPI/UPI hop + remote memory). 1 means a flat
	// node; the paper's future-work 3-level design targets the > 1 case.
	InterSocketFactor float64

	// Jitter, when positive, perturbs every transfer and copy duration by
	// a uniform factor in [1, 1+2*Jitter] drawn from the world's seeded
	// RNG (mean 1+Jitter). It models OS and fabric noise: with Jitter = 0
	// the simulation is exactly reproducible; with a fixed seed it still
	// is, and sweeping seeds yields distributions for robustness studies.
	Jitter float64

	// AlphaPost is the CPU overhead of posting one send or completing one
	// receive (the LogGP "o" term: descriptor setup, tag-matching,
	// completion handling inside the MPI library). Thor's default is 0 —
	// the simulator's baselines already land on the paper's absolute
	// scale without it — but ThorWithOverhead enables it for the
	// sensitivity study of how per-message software costs compress the
	// medium-message margins (see EXPERIMENTS.md).
	AlphaPost sim.Duration

	// NodesPerLeaf, when positive, enables a two-level fat-tree fabric:
	// nodes attach in groups of NodesPerLeaf to leaf switches whose shared
	// uplinks carry all cross-leaf traffic. Zero models a non-blocking
	// fabric (transfers only contend at the endpoints' HCAs, which is how
	// the paper's single-switch Thor behaves).
	NodesPerLeaf int

	// Oversubscription is the leaf uplink taper: aggregate uplink
	// bandwidth = NodesPerLeaf * HCAs * BWHCA / Oversubscription. 1 is a
	// full-bisection tree; 2 means half bisection. Ignored when
	// NodesPerLeaf is zero; values below 1 are invalid.
	Oversubscription float64
}

// Thor returns the default calibration modeled after the paper's testbed.
func Thor() *Params {
	return &Params{
		AlphaHCA:            sim.FromMicros(1.9),
		BWHCA:               12.4e9, // HDR100: 100 Gb/s line rate, ~12.4 GB/s at MPI level
		AlphaCMA:            sim.FromMicros(0.60),
		BWCMA:               12.0e9, // "approximately equal" to one HCA (paper Fig. 1)
		AlphaCopy:           sim.FromMicros(0.30),
		BWCopy:              26.0e9,  // cache-hot single-stream shm copy
		BWMemAgg:            200.0e9, // concurrent-CMA ceiling (uncached, 2 sockets DDR4-2400)
		BWShmAgg:            700.0e9, // concurrent shm-pipeline ceiling (LLC-resident)
		CongestionMinBytes:  16 << 10,
		StripeThreshold:     16 << 10,
		RendezvousThreshold: 16 << 10,
		AlphaRendezvous:     sim.FromMicros(1.1),
		InterSocketFactor:   1.0,
	}
}

// ThorWithOverhead returns the Thor calibration plus a per-message CPU
// posting/completion cost, approximating production MPI library software
// overheads.
func ThorWithOverhead(o sim.Duration) *Params {
	p := Thor()
	p.AlphaPost = o
	return p
}

// NumaThor returns the Thor calibration with a NUMA penalty on
// cross-socket intra-node transfers, for the 3-level design studies
// (remote-socket CMA streams at roughly 2/3 the local rate on Broadwell).
func NumaThor() *Params {
	p := Thor()
	p.InterSocketFactor = 1.5
	return p
}

// ThetaGPU returns an 8-rail calibration in the spirit of ANL's ThetaGPU
// (eight HDR adapters per node), used by the rail-scaling ablation.
func ThetaGPU() *Params {
	p := Thor()
	p.BWHCA = 23.0e9 // HDR200
	return p
}

// Validate reports whether the parameters are physically sensible.
func (p *Params) Validate() error {
	switch {
	case p.BWHCA <= 0 || p.BWCMA <= 0 || p.BWCopy <= 0 || p.BWMemAgg <= 0 || p.BWShmAgg <= 0:
		return fmt.Errorf("netmodel: non-positive bandwidth in %+v", *p)
	case p.AlphaHCA < 0 || p.AlphaCMA < 0 || p.AlphaCopy < 0 || p.AlphaRendezvous < 0 || p.AlphaPost < 0:
		return fmt.Errorf("netmodel: negative startup cost in %+v", *p)
	case p.StripeThreshold < 0 || p.RendezvousThreshold < 0 || p.CongestionMinBytes < 0:
		return fmt.Errorf("netmodel: negative threshold in %+v", *p)
	case p.InterSocketFactor != 0 && p.InterSocketFactor < 1:
		return fmt.Errorf("netmodel: inter-socket factor %v < 1", p.InterSocketFactor)
	case p.Jitter < 0 || p.Jitter > 1:
		return fmt.Errorf("netmodel: jitter %v outside [0, 1]", p.Jitter)
	case p.NodesPerLeaf < 0:
		return fmt.Errorf("netmodel: negative nodes per leaf %d", p.NodesPerLeaf)
	case p.NodesPerLeaf > 0 && p.Oversubscription < 1:
		return fmt.Errorf("netmodel: oversubscription %v < 1", p.Oversubscription)
	}
	return nil
}

// LeafUplinkBW returns the aggregate uplink bandwidth of one leaf switch
// for hcas rails per node, or 0 when the fabric is non-blocking.
func (p *Params) LeafUplinkBW(hcas int) float64 {
	if p.NodesPerLeaf <= 0 {
		return 0
	}
	return float64(p.NodesPerLeaf) * float64(hcas) * p.BWHCA / p.Oversubscription
}

// SocketFactor returns the effective cross-socket scale (>= 1; a zero
// value means unset and reads as flat).
func (p *Params) SocketFactor() float64 {
	if p.InterSocketFactor < 1 {
		return 1
	}
	return p.InterSocketFactor
}

// Congestion returns the slowdown factor for one of k concurrent memory
// operations of n bytes each running at baseBW against an aggregate pool
// aggBW: max(1, k*baseBW/aggBW). Small messages are latency-bound and see
// no congestion. This is the paper's b (CMA, pool BWMemAgg) and cg
// (shared-memory copy-out, pool BWShmAgg) in one mechanism.
func (p *Params) Congestion(n, concurrent int, baseBW, aggBW float64) float64 {
	if n < p.CongestionMinBytes || concurrent <= 1 {
		return 1
	}
	f := float64(concurrent) * baseBW / aggBW
	if f < 1 {
		return 1
	}
	return f
}

// CongestionCMA is the paper's b factor for one of k concurrent CMA copies.
func (p *Params) CongestionCMA(n, concurrent int) float64 {
	return p.Congestion(n, concurrent, p.BWCMA, p.BWMemAgg)
}

// CongestionShm is the paper's cg factor for one of k concurrent shared-
// memory pipeline copies.
func (p *Params) CongestionShm(n, concurrent int) float64 {
	return p.Congestion(n, concurrent, p.BWCopy, p.BWShmAgg)
}

// CMATime is T_C(M): the cost of an intra-node CMA transfer of n bytes when
// it is one of `concurrent` copies touching the node's memory.
func (p *Params) CMATime(n, concurrent int) sim.Duration {
	b := p.CongestionCMA(n, concurrent)
	return p.AlphaCMA + sim.FromSeconds(float64(n)*b/p.BWCMA)
}

// CopyTime is T_L(M): a local or shared-memory copy of n bytes as one of
// `concurrent` concurrent copies (cg factor).
func (p *Params) CopyTime(n, concurrent int) sim.Duration {
	cg := p.CongestionShm(n, concurrent)
	return p.AlphaCopy + sim.FromSeconds(float64(n)*cg/p.BWCopy)
}

// HCATime is T_H(M): an inter-node transfer of n bytes striped over `rails`
// rails, including the rendezvous handshake for large messages.
func (p *Params) HCATime(n, rails int) sim.Duration {
	if rails < 1 {
		panic("netmodel: need at least one rail")
	}
	d := p.AlphaHCA + sim.FromSeconds(float64(n)/(p.BWHCA*float64(rails)))
	if n >= p.RendezvousThreshold {
		d += p.AlphaRendezvous
	}
	return d
}

// RailChunk returns the per-rail piece sizes when n bytes stripe across
// `rails` rails; the remainder goes to the first rails.
func RailChunk(n, rails int) []int {
	out := make([]int, rails)
	base := n / rails
	rem := n % rails
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// RailChunkWeighted returns per-rail piece sizes when n bytes stripe
// across rails of unequal surviving bandwidth: piece i is proportional to
// weights[i] (largest-remainder rounding, ties to the lowest index, so the
// split is deterministic and sums exactly to n). A zero weight yields a
// zero piece; at least one weight must be positive. With equal weights it
// reproduces RailChunk's equal split.
func RailChunkWeighted(n int, weights []float64) []int {
	if len(weights) == 0 {
		panic("netmodel: RailChunkWeighted with no rails")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("netmodel: negative rail weight %v", w))
		}
		total += w
	}
	if total <= 0 {
		panic("netmodel: RailChunkWeighted needs a positive total weight")
	}
	out := make([]int, len(weights))
	rem := make([]float64, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(n) * w / total
		out[i] = int(exact)
		rem[i] = exact - float64(out[i])
		assigned += out[i]
	}
	for left := n - assigned; left > 0; left-- {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		out[best]++
		rem[best] = -1
	}
	return out
}

// RailBW is the line rate of one rail under an asymmetric-rail scale
// (topology.Cluster.RailScale). A non-positive scale reads as unset and
// yields the nominal rate, so homogeneous worlds price identically with
// or without a scale table.
func (p *Params) RailBW(scale float64) float64 {
	if scale <= 0 {
		return p.BWHCA
	}
	return p.BWHCA * scale
}

// RailWeights combines per-rail surviving health fractions with
// per-rail bandwidth scales into the striping weights RailChunkWeighted
// expects: weight i = frac[i] * scale[i]. scales may be nil (all
// nominal). The result is proportional to each rail's deliverable
// bandwidth, so the stripe finishes evenly across asymmetric rails.
func RailWeights(fracs, scales []float64) []float64 {
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		s := 1.0
		if scales != nil {
			s = scales[i]
		}
		out[i] = f * s
	}
	return out
}

// EffectiveBW is the effective-bandwidth lookup for a (possibly degraded)
// rail: the rail's line rate scaled by the fault schedule's surviving
// fraction. Zero means the rail is down.
func (p *Params) EffectiveBW(fraction float64) float64 {
	if fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	return p.BWHCA * fraction
}

// ShouldStripe reports whether a message of n bytes should stripe across
// all rails rather than use a single round-robin rail.
func (p *Params) ShouldStripe(n int) bool { return n >= p.StripeThreshold }

func (p *Params) String() string {
	return fmt.Sprintf("netmodel{HCA a=%v bw=%.1fGB/s, CMA a=%v bw=%.1fGB/s, copy a=%v bw=%.1fGB/s, agg=%.1fGB/s, stripe>=%dB}",
		p.AlphaHCA, p.BWHCA/1e9, p.AlphaCMA, p.BWCMA/1e9, p.AlphaCopy, p.BWCopy/1e9, p.BWMemAgg/1e9, p.StripeThreshold)
}
