package netmodel

import (
	"testing"
	"testing/quick"

	"mha/internal/sim"
)

func TestThorValidates(t *testing.T) {
	if err := Thor().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ThetaGPU().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.BWHCA = 0 },
		func(p *Params) { p.BWCMA = -1 },
		func(p *Params) { p.BWCopy = 0 },
		func(p *Params) { p.BWMemAgg = 0 },
		func(p *Params) { p.AlphaHCA = -1 },
		func(p *Params) { p.StripeThreshold = -1 },
	}
	for i, mutate := range cases {
		p := Thor()
		mutate(p)
		if p.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	// The motivation experiment: intra-node CMA bandwidth is approximately
	// equal to 1 HCA, and 2 HCAs roughly double it at large sizes.
	p := Thor()
	n := 4 << 20
	bwOf := func(d sim.Duration) float64 { return float64(n) / d.Seconds() }
	cma := bwOf(p.CMATime(n, 1))
	one := bwOf(p.HCATime(n, 1))
	two := bwOf(p.HCATime(n, 2))
	if r := one / cma; r < 0.85 || r > 1.25 {
		t.Fatalf("1 HCA / CMA bandwidth ratio = %.2f, want ~1", r)
	}
	if r := two / one; r < 1.8 || r > 2.05 {
		t.Fatalf("2 HCA / 1 HCA bandwidth ratio = %.2f, want ~2", r)
	}
}

func TestStripingThreshold(t *testing.T) {
	p := Thor()
	if p.ShouldStripe(8 << 10) {
		t.Fatal("8KB should not stripe")
	}
	if !p.ShouldStripe(16 << 10) {
		t.Fatal("16KB should stripe")
	}
}

func TestCongestionFactor(t *testing.T) {
	p := Thor()
	if f := p.CongestionCMA(1<<20, 1); f != 1 {
		t.Fatalf("single copy congestion = %f, want 1", f)
	}
	if f := p.CongestionCMA(512, 32); f != 1 {
		t.Fatalf("small message congestion = %f, want 1", f)
	}
	f4 := p.CongestionCMA(1<<20, 4)
	f32 := p.CongestionCMA(1<<20, 32)
	if f32 <= f4 {
		t.Fatalf("congestion not increasing: f(4)=%f f(32)=%f", f4, f32)
	}
	// 32 concurrent CMA copies oversubscribe the uncached-copy pool.
	if f32 < 1.5 {
		t.Fatalf("f(32) = %f, want visible congestion", f32)
	}
	// Shm pipeline copies are cache-assisted: far milder congestion.
	if shm := p.CongestionShm(1<<20, 32); shm >= f32 {
		t.Fatalf("shm congestion %f should be milder than CMA %f", shm, f32)
	}
}

func TestRailChunk(t *testing.T) {
	got := RailChunk(10, 3)
	if got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("RailChunk(10,3) = %v", got)
	}
	total := 0
	for _, c := range RailChunk(1<<20+7, 8) {
		total += c
	}
	if total != 1<<20+7 {
		t.Fatalf("chunks don't sum: %d", total)
	}
}

func TestRendezvousAddsLatency(t *testing.T) {
	p := Thor()
	below := p.HCATime(p.RendezvousThreshold-1, 1)
	at := p.HCATime(p.RendezvousThreshold, 1)
	if at-below < p.AlphaRendezvous {
		t.Fatalf("rendezvous step missing: %v -> %v", below, at)
	}
}

// Property: striping over more rails never makes a transfer slower.
func TestQuickMoreRailsNeverSlower(t *testing.T) {
	p := Thor()
	f := func(n uint32, r uint8) bool {
		size := int(n%(16<<20)) + 1
		rails := int(r)%7 + 1
		return p.HCATime(size, rails+1) <= p.HCATime(size, rails)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RailChunk always partitions n into `rails` pieces differing by
// at most one byte.
func TestQuickRailChunkBalanced(t *testing.T) {
	f := func(n uint32, r uint8) bool {
		size := int(n % (64 << 20))
		rails := int(r)%8 + 1
		chunks := RailChunk(size, rails)
		if len(chunks) != rails {
			return false
		}
		sum, mn, mx := 0, chunks[0], chunks[0]
		for _, c := range chunks {
			sum += c
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		return sum == size && mx-mn <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: congestion is monotone in concurrency and never below 1.
func TestQuickCongestionMonotone(t *testing.T) {
	p := Thor()
	f := func(n uint32, k uint8) bool {
		size := int(n % (8 << 20))
		k1 := int(k)%64 + 1
		f1 := p.CongestionShm(size, k1)
		f2 := p.CongestionShm(size, k1+1)
		return f1 >= 1 && f2 >= f1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHCATimePanicsOnZeroRails(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Thor().HCATime(1024, 0)
}

func TestStringNonEmpty(t *testing.T) {
	if Thor().String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDerivedCalibrations(t *testing.T) {
	if NumaThor().InterSocketFactor != 1.5 {
		t.Fatal("NumaThor factor")
	}
	if err := NumaThor().Validate(); err != nil {
		t.Fatal(err)
	}
	o := ThorWithOverhead(sim.FromMicros(1))
	if o.AlphaPost != sim.FromMicros(1) {
		t.Fatal("ThorWithOverhead")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Thor()
	bad.AlphaPost = -1
	if bad.Validate() == nil {
		t.Fatal("negative AlphaPost should fail")
	}
	bad2 := Thor()
	bad2.InterSocketFactor = 0.5
	if bad2.Validate() == nil {
		t.Fatal("factor < 1 should fail")
	}
}

func TestSocketFactorDefaults(t *testing.T) {
	p := Thor()
	p.InterSocketFactor = 0 // unset reads as flat
	if p.SocketFactor() != 1 {
		t.Fatal("unset socket factor should read 1")
	}
	if NumaThor().SocketFactor() != 1.5 {
		t.Fatal("NumaThor socket factor")
	}
}

func TestCopyTimeShape(t *testing.T) {
	p := Thor()
	single := p.CopyTime(1<<20, 1)
	congested := p.CopyTime(1<<20, 64)
	if congested <= single {
		t.Fatal("64-way copy congestion missing")
	}
	if p.CopyTime(0, 1) != p.AlphaCopy {
		t.Fatal("zero-byte copy should cost alpha only")
	}
}

func TestRailBWScale(t *testing.T) {
	p := Thor()
	if p.RailBW(0) != p.BWHCA || p.RailBW(1) != p.BWHCA {
		t.Fatal("unset/nominal scale should price at BWHCA")
	}
	if p.RailBW(0.5) != p.BWHCA*0.5 {
		t.Fatal("scaled rail should price proportionally")
	}
}

func TestRailWeights(t *testing.T) {
	got := RailWeights([]float64{1, 0.5}, nil)
	if got[0] != 1 || got[1] != 0.5 {
		t.Fatalf("nil scales: %v", got)
	}
	got = RailWeights([]float64{1, 0.5}, []float64{2, 1})
	if got[0] != 2 || got[1] != 0.5 {
		t.Fatalf("combined weights: %v", got)
	}
	pieces := RailChunkWeighted(3000, RailWeights([]float64{1, 1}, []float64{2, 1}))
	if pieces[0] != 2000 || pieces[1] != 1000 {
		t.Fatalf("weighted stripe: %v", pieces)
	}
}
