package netmodel

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRailChunkWeightedSumsAndProportions(t *testing.T) {
	got := RailChunkWeighted(30, []float64{1, 0.5})
	if got[0] != 20 || got[1] != 10 {
		t.Fatalf("RailChunkWeighted(30, [1 .5]) = %v, want [20 10]", got)
	}
	got = RailChunkWeighted(100, []float64{1, 0, 1})
	if !reflect.DeepEqual(got, []int{50, 0, 50}) {
		t.Fatalf("zero-weight rail got bytes: %v", got)
	}
}

func TestRailChunkWeightedEqualWeightsMatchRailChunk(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1 << 16, 1<<20 + 3} {
		for h := 1; h <= 8; h++ {
			w := make([]float64, h)
			for i := range w {
				w[i] = 1
			}
			if got, want := RailChunkWeighted(n, w), RailChunk(n, h); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d h=%d: weighted %v != equal %v", n, h, got, want)
			}
		}
	}
}

func TestRailChunkWeightedDeterministic(t *testing.T) {
	w := []float64{0.3, 0.3, 0.4}
	a := RailChunkWeighted(1<<20+1, w)
	b := RailChunkWeighted(1<<20+1, w)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different splits: %v vs %v", a, b)
	}
}

func TestQuickRailChunkWeightedConserves(t *testing.T) {
	f := func(n uint16, a, b, c uint8) bool {
		w := []float64{float64(a) + 1, float64(b), float64(c)}
		total := 0
		for _, p := range RailChunkWeighted(int(n), w) {
			if p < 0 {
				return false
			}
			total += p
		}
		return total == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRailChunkWeightedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no rails":        func() { RailChunkWeighted(10, nil) },
		"negative weight": func() { RailChunkWeighted(10, []float64{1, -1}) },
		"zero total":      func() { RailChunkWeighted(10, []float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEffectiveBW(t *testing.T) {
	p := Thor()
	if got := p.EffectiveBW(1); got != p.BWHCA {
		t.Fatalf("EffectiveBW(1) = %v, want %v", got, p.BWHCA)
	}
	if got := p.EffectiveBW(0.5); got != 0.5*p.BWHCA {
		t.Fatalf("EffectiveBW(0.5) = %v", got)
	}
	if got := p.EffectiveBW(0); got != 0 {
		t.Fatalf("EffectiveBW(0) = %v, want 0", got)
	}
	if got := p.EffectiveBW(-2); got != 0 {
		t.Fatalf("EffectiveBW(-2) = %v, want 0", got)
	}
	if got := p.EffectiveBW(7); got != p.BWHCA {
		t.Fatalf("EffectiveBW(7) = %v, want clamp to %v", got, p.BWHCA)
	}
}
