package perfmodel

// Analytic models for the collectives beyond allgather, in the same
// Table-1 vocabulary. The allreduce models extend the paper's Section 5.4
// argument ("by improving Allgather, the performance of Allreduce is also
// enhanced") into closed form; the bcast models cover the future-work
// hierarchical broadcast.

import (
	"mha/internal/sim"
)

// reduceBW is the modeled elementwise-reduction throughput (bytes/s),
// matching collectives.SumF64's default.
const reduceBW = 8e9

// ringStepTime is one flat-ring step of `bytes` per rank: every rank
// sends concurrently, so a step costs the slowest link — the congested
// intra-node CMA hop when PPN > 1, one HCA-striped hop otherwise.
func (m Model) ringStepTime(bytes int) sim.Duration {
	if m.Topo.PPN > 1 {
		return m.TC(bytes)
	}
	return m.TH(bytes)
}

// FlatRingAllreduce models the Patarasuk-Yuan ring allreduce of n total
// bytes over all P ranks: 2(P-1) steps of n/P bytes plus the per-step
// chunk reductions in the scatter phase.
func (m Model) FlatRingAllreduce(n int) sim.Duration {
	P := m.Topo.Size()
	if P <= 1 {
		return 0
	}
	chunk := n / P
	if chunk < 1 {
		chunk = 1
	}
	step := m.ringStepTime(chunk)
	reduce := sim.FromSeconds(float64(chunk) / reduceBW)
	return sim.Duration(P-1)*(step+reduce) + sim.Duration(P-1)*step
}

// MHAAllreduce models the improved allreduce: the same ring reduce-scatter
// followed by the MHA allgather of the reduced chunks (per-rank chunk size
// n/P).
func (m Model) MHAAllreduce(n int) sim.Duration {
	P := m.Topo.Size()
	if P <= 1 {
		return 0
	}
	chunk := n / P
	if chunk < 1 {
		chunk = 1
	}
	step := m.ringStepTime(chunk)
	reduce := sim.FromSeconds(float64(chunk) / reduceBW)
	rs := sim.Duration(P-1) * (step + reduce)
	ag := m.MHAInterRing(chunk)
	if rd := m.MHAInterRD(chunk); rd < ag {
		ag = rd
	}
	return rs + ag
}

// AllreduceImprovement predicts the latency reduction of the MHA allreduce
// over the flat ring for n total bytes (the paper's Figure 15 metric).
func (m Model) AllreduceImprovement(n int) float64 {
	flat := m.FlatRingAllreduce(n)
	if flat <= 0 {
		return 0
	}
	return 1 - float64(m.MHAAllreduce(n))/float64(flat)
}

// FlatBinomialBcast models the binomial-tree broadcast of n bytes: ceil
// log2(P) serial hops, each paying the slower of the two link classes it
// might traverse (with PPN > 1 most tree edges cross nodes under block
// layout, so the inter-node cost dominates).
func (m Model) FlatBinomialBcast(n int) sim.Duration {
	P := m.Topo.Size()
	if P <= 1 {
		return 0
	}
	hop := m.TH(n)
	if c := m.TC(n); c > hop && m.Topo.PPN > 1 {
		hop = c
	}
	return sim.Duration(log2ceil(P)) * hop
}

// MHABcast models the hierarchical broadcast: log2(N) striped inter-leader
// hops plus one node-level shared-memory distribution (copy-in pipelined
// with copy-out, bounded by their max plus one chunk drain).
func (m Model) MHABcast(n int) sim.Duration {
	N := m.Topo.Nodes
	var tree sim.Duration
	if N > 1 {
		tree = sim.Duration(log2ceil(N)) * m.TH(n)
	}
	if m.Topo.PPN == 1 {
		return tree
	}
	ci := m.copyIn(n)
	co := m.copyOut(n)
	pipeline := ci
	if co > pipeline {
		pipeline = co
	}
	return tree + pipeline + minDur(ci, co)
}

func minDur(a, b sim.Duration) sim.Duration {
	if a < b {
		return a
	}
	return b
}
