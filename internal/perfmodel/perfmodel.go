// Package perfmodel implements the analytic cost models of Section 4 of
// the paper (Equations 1-7, with the notation of its Table 1): the offload
// balance for MHA-intra, the phase costs of MHA-inter with Recursive
// Doubling or Ring inter-leader exchange, and the shared-memory broadcast
// cost with the cg congestion factor. The same netmodel parameters drive
// both the model and the simulator, so the model-validation experiments
// (the paper's Figures 9 and 10) compare two genuinely independent
// computations of each latency: a closed-form estimate versus an event-by-
// event simulation with resource contention.
package perfmodel

import (
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// Model evaluates the paper's cost equations for one cluster shape.
type Model struct {
	// P is the communication parameter set (Table 1).
	P *netmodel.Params
	// Topo provides N (nodes), L (PPN) and H (adapters).
	Topo topology.Cluster
}

// New returns a model over the given shape and parameters.
func New(p *netmodel.Params, topo topology.Cluster) Model {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	return Model{P: p, Topo: topo}
}

// TH is T_H(M): the time to send M bytes using all H adapters.
func (m Model) TH(M int) sim.Duration { return m.P.HCATime(M, m.Topo.HCAs) }

// TC is T_C(M): an intra-node transfer when all L ranks copy concurrently
// (the b factor of the paper).
func (m Model) TC(M int) sim.Duration { return m.P.CMATime(M, m.Topo.PPN) }

// TL is T_L(M): a single local memory copy.
func (m Model) TL(M int) sim.Duration { return m.P.CopyTime(M, 1) }

// OffloadD is Equation (1): the number of each rank's L-1 intra-node
// transfers to hand to the HCAs so CPUs and adapters finish together:
//
//	T_C(M) * (L-1-d) = T_H(M) * L * d
//	d = T_C(M)*(L-1) / (T_H(M)*L + T_C(M))
//
// refined with the T_L(M) send-to-receive-buffer copy, which also occupies
// the CPU (Equation 2 charges it but Equation 1 as published omits it):
//
//	T_L(M) + T_C(M)*(L-1-d) = T_H(M) * L * d
//	d = (T_L(M) + T_C(M)*(L-1)) / (T_H(M)*L + T_C(M))
//
// The result is fractional; the implementation offloads floor(d) whole
// transfers and splits one transfer by the remaining fraction.
func (m Model) OffloadD(M int) float64 {
	L := m.Topo.PPN
	if L <= 1 {
		return 0
	}
	tc := float64(m.TC(M))
	th := float64(m.TH(M))
	tl := float64(m.TL(M))
	d := (tl + tc*float64(L-1)) / (th*float64(L) + tc)
	if d < 0 {
		d = 0
	}
	if max := float64(L - 1); d > max {
		d = max
	}
	return d
}

// MHAIntra is Equation (2): the cost of the multi-HCA-aware intra-node
// allgather with offload d transfers per rank:
//
//	T = T_L(M) + max{ (L-1-d)*T_C(M), L*d*T_H(M) }
func (m Model) MHAIntra(M int) sim.Duration {
	return m.MHAIntraWithOffload(M, m.OffloadD(M))
}

// MHAIntraWithOffload is Equation (2) for an explicit offload amount; the
// offload-size/latency trade-off chart (the paper's Figure 5) sweeps d.
// The T_L self-copy runs on the CPU concurrently with the adapters, so it
// counts toward the CPU side of the max.
func (m Model) MHAIntraWithOffload(M int, d float64) sim.Duration {
	L := float64(m.Topo.PPN)
	cpu := float64(m.TL(M)) + (L-1-d)*float64(m.TC(M))
	hca := L * d * float64(m.TH(M))
	worst := cpu
	if hca > worst {
		worst = hca
	}
	if worst < 0 {
		worst = 0
	}
	return sim.Duration(worst)
}

// Phase2RD is Equation (3): inter-leader recursive doubling over node
// blocks of M*L bytes — log(N) startups plus (N-1) block transfers' worth
// of bytes through H rails.
func (m Model) Phase2RD(M int) sim.Duration {
	N := m.Topo.Nodes
	if N <= 1 {
		return 0
	}
	ML := M * m.Topo.PPN
	steps := log2ceil(N)
	bytes := float64((N - 1) * ML)
	return sim.Duration(steps)*m.P.AlphaHCA +
		sim.FromSeconds(bytes/(m.P.BWHCA*float64(m.Topo.HCAs)))
}

// Phase2Ring is Equation (4): N-1 constant-size ring steps.
func (m Model) Phase2Ring(M int) sim.Duration {
	N := m.Topo.Nodes
	if N <= 1 {
		return 0
	}
	ML := M * m.Topo.PPN
	bytes := float64((N - 1) * ML)
	return sim.Duration(N-1)*m.P.AlphaHCA +
		sim.FromSeconds(bytes/(m.P.BWHCA*float64(m.Topo.HCAs)))
}

// IntraBcast is Equation (5): the leader's copy-in of one node block plus
// the L-1 peers' congested copy-out (the cg factor):
//
//	T = (a_L + ML/BW_L) + (a_L + ML/BW_L) * cg(ML, L-1)
func (m Model) IntraBcast(M int) sim.Duration {
	L := m.Topo.PPN
	ML := M * L
	copyIn := m.P.CopyTime(ML, 1)
	if L <= 1 {
		return copyIn
	}
	cg := m.P.CongestionShm(ML, L-1)
	copyOut := m.P.AlphaCopy + sim.FromSeconds(float64(ML)*cg/m.P.BWCopy)
	return copyIn + copyOut
}

// copyIn is the leader's single-stream publication of `bytes` into shm.
func (m Model) copyIn(bytes int) sim.Duration { return m.P.CopyTime(bytes, 1) }

// copyOut is one peer's congested copy of `bytes` out of shm while the
// other L-1 peers do the same (the cg factor).
func (m Model) copyOut(bytes int) sim.Duration {
	L := m.Topo.PPN
	if L <= 1 {
		return 0
	}
	cg := m.P.CongestionShm(bytes, L-1)
	return m.P.AlphaCopy + sim.FromSeconds(float64(bytes)*cg/m.P.BWCopy)
}

// MHAInterRing models the hierarchical allgather with Ring in phase 2 in
// pipeline form — a refinement of the paper's Equation (7). The phase-2/3
// machinery is a three-stage pipeline (wire, leader copy-in, peer
// copy-out) over N-1 constant-size chunks: total time is the first
// arrival, N-2 steady-state steps at the bottleneck stage, and the drain
// of the final chunk. When copies are slower than the wire this degrades
// gracefully to the copy-bound branch of the paper's equation.
func (m Model) MHAInterRing(M int) sim.Duration {
	N := m.Topo.Nodes
	phase1 := m.MHAIntra(M)
	if N <= 1 {
		return phase1
	}
	ML := M * m.Topo.PPN
	th, ci, co := m.TH(ML), m.copyIn(ML), m.copyOut(ML)
	bottleneck := maxDur(th, maxDur(ci, co))
	return phase1 + th + sim.Duration(N-2)*bottleneck + ci + co
}

// MHAInterRD models the hierarchical allgather with RD in phase 2 — a
// pipeline refinement of the paper's Equation (6). Step k moves 2^k node
// blocks; the copies of step k hide under the (twice larger) transfer of
// step k+1 when the copy machinery keeps half the wire rate. The final
// N/2-block broadcast is always exposed — exactly why RD "loses its
// overlapping capability" (Section 3.2) and Ring wins at scale.
func (m Model) MHAInterRD(M int) sim.Duration {
	N := m.Topo.Nodes
	phase1 := m.MHAIntra(M)
	if N <= 1 {
		return phase1
	}
	ML := M * m.Topo.PPN
	if maxDur(m.copyIn(ML), m.copyOut(ML)) <= m.TH(2*ML) {
		// Overlapped regime: transfers dominate, plus the exposed tail.
		tail := N / 2 * ML
		return phase1 + m.Phase2RD(M) + m.copyIn(tail) + m.copyOut(tail)
	}
	// Copy-bound regime: after the first chunk lands, the shm pipeline is
	// the bottleneck for all N-1 blocks.
	return phase1 + m.TH(ML) +
		sim.Duration(N-1)*maxDur(m.copyIn(ML), m.copyOut(ML)) +
		m.copyIn(ML) + m.copyOut(ML)
}

// PaperEq6 is Equation (6) exactly as published, for reference and for the
// model-validation experiments' comparison column.
func (m Model) PaperEq6(M int) sim.Duration {
	N := m.Topo.Nodes
	phase1 := m.MHAIntra(M)
	if N <= 1 {
		return phase1
	}
	ML := M * m.Topo.PPN
	bcast := m.IntraBcast(M)
	if bcast <= m.TH(2*ML) {
		return phase1 + m.Phase2RD(M) + m.intraBcastOf(ML*(N/2))
	}
	return phase1 + m.TH(ML) + sim.Duration(N-1)*bcast
}

// PaperEq7 is Equation (7) exactly as published.
func (m Model) PaperEq7(M int) sim.Duration {
	N := m.Topo.Nodes
	phase1 := m.MHAIntra(M)
	if N <= 1 {
		return phase1
	}
	ML := M * m.Topo.PPN
	bcast := m.IntraBcast(M)
	if bcast <= m.TH(ML) {
		return phase1 + m.Phase2Ring(M) + bcast
	}
	return phase1 + m.TH(ML) + sim.Duration(N-1)*bcast
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

// intraBcastOf is Equation (5) applied to an arbitrary byte count (used
// for RD's oversized final chunk).
func (m Model) intraBcastOf(bytes int) sim.Duration {
	L := m.Topo.PPN
	copyIn := m.P.CopyTime(bytes, 1)
	if L <= 1 {
		return copyIn
	}
	cg := m.P.CongestionShm(bytes, L-1)
	return copyIn + m.P.AlphaCopy + sim.FromSeconds(float64(bytes)*cg/m.P.BWCopy)
}

// RingBetterThanRD predicts whether Ring beats RD in phase 2 for per-rank
// message size M (the paper's Figure 8 crossover).
func (m Model) RingBetterThanRD(M int) bool {
	return m.MHAInterRing(M) < m.MHAInterRD(M)
}

// FlatRing estimates the flat ring allgather: N*L-1 steps, each limited by
// the slowest link — the congested intra-node hops once PPN > 1.
func (m Model) FlatRing(M int) sim.Duration {
	P := m.Topo.Size()
	if P <= 1 {
		return m.TL(M)
	}
	step := m.TC(M) // intra-node hop under full concurrency
	if m.Topo.PPN == 1 {
		step = m.TH(M)
	}
	return m.TL(M) + sim.Duration(P-1)*step
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v *= 2 {
		k++
	}
	return k
}
