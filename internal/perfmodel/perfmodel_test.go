package perfmodel

import (
	"testing"
	"testing/quick"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

func thor(nodes, ppn, hcas int) Model {
	return New(netmodel.Thor(), topology.New(nodes, ppn, hcas))
}

func TestOffloadDInRange(t *testing.T) {
	f := func(ppn, hcas uint8, mRaw uint32) bool {
		L := int(ppn)%32 + 1
		H := int(hcas)%8 + 1
		m := int(mRaw%(16<<20)) + 1
		d := thor(1, L, H).OffloadD(m)
		return d >= 0 && d <= float64(L-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadDZeroForSingleRank(t *testing.T) {
	if d := thor(1, 1, 2).OffloadD(1 << 20); d != 0 {
		t.Fatalf("d = %f for L=1, want 0", d)
	}
}

func TestOffloadBalancesFinishTimes(t *testing.T) {
	// At the analytic d, CPU and HCA finish times are equal by
	// construction (Equation 1 with the T_L refinement).
	m := thor(1, 8, 2)
	M := 1 << 20
	d := m.OffloadD(M)
	L := 8.0
	cpu := float64(m.TL(M)) + (L-1-d)*float64(m.TC(M))
	hca := L * d * float64(m.TH(M))
	if diff := cpu - hca; diff > float64(m.TC(M)) || diff < -float64(m.TC(M)) {
		t.Fatalf("imbalance at analytic d: cpu %.0f vs hca %.0f", cpu, hca)
	}
}

func TestMHAIntraBeatsNoOffload(t *testing.T) {
	m := thor(1, 4, 2)
	M := 4 << 20
	with := m.MHAIntra(M)
	without := m.MHAIntraWithOffload(M, 0)
	if with >= without {
		t.Fatalf("offload does not help: %v vs %v", with, without)
	}
	// Figure 5's U: full offload is also worse than the optimum.
	full := m.MHAIntraWithOffload(M, 3)
	if with >= full {
		t.Fatalf("optimum (%v) not better than full offload (%v)", with, full)
	}
}

func TestIntraSpeedupDecreasesWithPPN(t *testing.T) {
	// Section 5.2's trend: the benefit shrinks as processes share the
	// fixed pool of adapters.
	M := 4 << 20
	speedup := func(L int) float64 {
		m := thor(1, L, 2)
		return float64(m.MHAIntraWithOffload(M, 0)) / float64(m.MHAIntra(M))
	}
	s2, s8, s32 := speedup(2), speedup(8), speedup(32)
	if !(s2 > s8 && s8 > s32) {
		t.Fatalf("speedups not decreasing: L=2 %.2f, L=8 %.2f, L=32 %.2f", s2, s8, s32)
	}
	if s2 < 1.5 {
		t.Fatalf("2-process speedup %.2f, want >1.5x (paper: ~65%% latency cut)", s2)
	}
}

func TestFigure8Crossover(t *testing.T) {
	// RD wins for small messages, Ring for large (Figures 7 and 8).
	m := thor(16, 32, 2)
	if m.RingBetterThanRD(64) {
		t.Fatal("Ring should lose at 64B")
	}
	if !m.RingBetterThanRD(256 << 10) {
		t.Fatal("Ring should win at 256KB")
	}
	// And the crossover is monotone: find it and check consistency.
	crossed := false
	for sz := 64; sz <= 1<<20; sz *= 2 {
		ring := m.RingBetterThanRD(sz)
		if crossed && !ring {
			t.Fatalf("non-monotone RD/Ring decision at %dB", sz)
		}
		if ring {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("no crossover found")
	}
}

func TestPhase2Costs(t *testing.T) {
	m := thor(8, 4, 2)
	M := 64 << 10
	rd := m.Phase2RD(M)
	ring := m.Phase2Ring(M)
	// Both move the same (N-1)*M*L bytes; ring pays more startups.
	if ring <= rd {
		t.Fatalf("ring (%v) should pay more alpha than RD (%v)", ring, rd)
	}
	if d := ring - rd; d != 4*m.P.AlphaHCA { // (N-1)-log2(N) = 7-3 = 4
		t.Fatalf("alpha difference = %v, want 4 alphas", d)
	}
	if m.Phase2RD(0) != m.Phase2Ring(0)-4*m.P.AlphaHCA {
		t.Fatal("zero-byte phase2 inconsistent")
	}
	single := thor(1, 4, 2)
	if single.Phase2RD(M) != 0 || single.Phase2Ring(M) != 0 {
		t.Fatal("single node phase 2 should be free")
	}
}

func TestIntraBcastIncludesCongestion(t *testing.T) {
	wide := thor(2, 32, 2)
	narrow := thor(2, 2, 2)
	M := 256 << 10
	// Same per-rank size; the wide node moves 16x the bytes AND suffers
	// cg congestion, so it must be much more than 16x slower.
	if float64(wide.IntraBcast(M)) < 16*float64(narrow.IntraBcast(M)) {
		t.Fatalf("cg congestion missing: wide %v vs narrow %v",
			wide.IntraBcast(M), narrow.IntraBcast(M))
	}
}

func TestMHAInterBeatsFlatRing(t *testing.T) {
	// The headline: at 32 nodes x 32 PPN the hierarchical design is far
	// faster than the flat ring for large messages.
	m := thor(32, 32, 2)
	M := 64 << 10
	flat := m.FlatRing(M)
	mha := m.MHAInterRing(M)
	if ratio := float64(flat) / float64(mha); ratio < 1.5 {
		t.Fatalf("MHA/flat-ring speedup = %.2fx, want > 1.5x (flat %v, mha %v)",
			ratio, flat, mha)
	}
}

func TestSingleNodeInterReducesToIntra(t *testing.T) {
	m := thor(1, 8, 2)
	M := 1 << 20
	if m.MHAInterRing(M) != m.MHAIntra(M) || m.MHAInterRD(M) != m.MHAIntra(M) {
		t.Fatal("single-node inter cost should equal intra cost")
	}
}

// Property: model latencies are monotone in message size.
func TestQuickModelMonotone(t *testing.T) {
	m := thor(8, 8, 2)
	f := func(a, b uint32) bool {
		x, y := int(a%(4<<20))+1, int(b%(4<<20))+1
		if x > y {
			x, y = y, x
		}
		return m.MHAIntra(x) <= m.MHAIntra(y) &&
			m.MHAInterRing(x) <= m.MHAInterRing(y) &&
			m.MHAInterRD(x) <= m.MHAInterRD(y) &&
			m.FlatRing(x) <= m.FlatRing(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: more HCAs never slow the model down.
func TestQuickMoreHCAsNeverSlower(t *testing.T) {
	f := func(h uint8, mRaw uint32) bool {
		H := int(h)%4 + 1
		M := int(mRaw%(4<<20)) + 1
		a := thor(8, 8, H)
		b := thor(8, 8, H+1)
		return b.MHAIntra(M) <= a.MHAIntra(M) && b.MHAInterRing(M) <= a.MHAInterRing(M)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLog2Ceil(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {32, 5}} {
		if got := log2ceil(c.n); got != c.want {
			t.Fatalf("log2ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params should panic")
		}
	}()
	bad := netmodel.Thor()
	bad.BWHCA = -1
	New(bad, topology.New(1, 1, 1))
}

func TestPaperEquations6And7(t *testing.T) {
	m := thor(8, 32, 2)
	// The published forms must agree with the pipeline refinements on
	// direction: both predict Ring's advantage at large sizes once the
	// overlap branch is taken, and both reduce to phase 1 on one node.
	single := thor(1, 8, 2)
	if single.PaperEq6(1<<20) != single.MHAIntra(1<<20) ||
		single.PaperEq7(1<<20) != single.MHAIntra(1<<20) {
		t.Fatal("single-node paper equations should equal MHA-intra")
	}
	for _, M := range []int{1 << 10, 64 << 10, 1 << 20} {
		e6, e7 := m.PaperEq6(M), m.PaperEq7(M)
		if e6 <= 0 || e7 <= 0 {
			t.Fatalf("M=%d: non-positive paper equations %v %v", M, e6, e7)
		}
		// The pipeline refinements never exceed the published copy-bound
		// branch by more than the drain terms.
		if r := float64(m.MHAInterRing(M)) / float64(e7); r > 3 || r < 0.2 {
			t.Fatalf("M=%d: refined/published ring ratio %v implausible", M, r)
		}
	}
}

func TestIntraBcastOfMatchesIntraBcast(t *testing.T) {
	m := thor(4, 8, 2)
	M := 64 << 10
	if m.IntraBcast(M) != m.intraBcastOf(M*m.Topo.PPN) {
		t.Fatal("intraBcastOf(M*L) should equal IntraBcast(M)")
	}
}

func TestAllreduceModels(t *testing.T) {
	m := thor(8, 32, 2)
	n := 1 << 20
	flat := m.FlatRingAllreduce(n)
	ours := m.MHAAllreduce(n)
	if ours >= flat {
		t.Fatalf("model says MHA allreduce (%v) not faster than flat (%v)", ours, flat)
	}
	imp := m.AllreduceImprovement(n)
	if imp < 0.2 || imp > 0.8 {
		t.Fatalf("predicted improvement %.2f outside the paper's plausible band", imp)
	}
	single := thor(1, 1, 2)
	if single.FlatRingAllreduce(n) != 0 || single.MHAAllreduce(n) != 0 ||
		single.AllreduceImprovement(n) != 0 {
		t.Fatal("single-rank allreduce should be free")
	}
}

func TestAllreduceModelTracksSimulator(t *testing.T) {
	// The model's predicted improvement should be in the same band as the
	// measured Figure 15 numbers (paper: 34-56%; simulator: 37-48%).
	m := thor(8, 32, 2)
	imp := m.AllreduceImprovement(1 << 20)
	if imp < 0.15 || imp > 0.7 {
		t.Fatalf("predicted improvement %.0f%% implausible", imp*100)
	}
}

func TestBcastModels(t *testing.T) {
	m := thor(8, 16, 2)
	n := 4 << 20
	flat := m.FlatBinomialBcast(n)
	ours := m.MHABcast(n)
	if ours >= flat {
		t.Fatalf("model says MHA bcast (%v) not faster than flat (%v)", ours, flat)
	}
	if thor(1, 1, 1).FlatBinomialBcast(n) != 0 {
		t.Fatal("single-rank bcast should be free")
	}
	// Single node: just the shm pipeline.
	intra := thor(1, 8, 2)
	if intra.MHABcast(n) <= 0 {
		t.Fatal("single-node MHA bcast should cost the shm pipeline")
	}
}

// Property: both allreduce models are monotone in buffer size.
func TestQuickAllreduceModelsMonotone(t *testing.T) {
	m := thor(4, 8, 2)
	f := func(a, b uint32) bool {
		x, y := int(a%(8<<20))+1024, int(b%(8<<20))+1024
		if x > y {
			x, y = y, x
		}
		return m.FlatRingAllreduce(x) <= m.FlatRingAllreduce(y) &&
			m.MHAAllreduce(x) <= m.MHAAllreduce(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
