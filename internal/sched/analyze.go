package sched

import (
	"fmt"
	"strings"

	"mha/internal/netmodel"
	"mha/internal/sim"
)

// analyzeMaxRanks bounds the hold-tracking matrix (ranks x blocks); the
// analyzer is meant for schedules the simulator can also run, not for
// arbitrarily large parsed inputs.
const analyzeMaxRanks = 4096

// Report is the analyzer's verdict on a valid schedule: the alpha-beta
// critical-path estimate and traffic accounting.
type Report struct {
	// Cost is the predicted makespan: the initial self-copy plus, per
	// step, the busiest resource's serialized work (CPU seconds for CMA
	// pushes/pulls/staging copies, rail tx/rx occupation for adapter
	// transfers), summed over steps.
	Cost      sim.Duration
	StepCosts []sim.Duration
	// Transfers / Pulls / Copies count schedule entries; Reduces counts
	// the transfers that fold on receive; WireBytes and IntraBytes split
	// the payload traffic at the node boundary.
	Transfers, Pulls, Copies int
	Reduces                  int
	WireBytes, IntraBytes    int64
}

// violations accumulates analyzer findings, keeping the first few.
type violations struct {
	n    int
	msgs []string
}

func (v *violations) addf(format string, args ...interface{}) {
	v.n++
	if len(v.msgs) < 8 {
		v.msgs = append(v.msgs, fmt.Sprintf(format, args...))
	}
}

func (v *violations) err() error {
	if v.n == 0 {
		return nil
	}
	s := strings.Join(v.msgs, "; ")
	if extra := v.n - len(v.msgs); extra > 0 {
		s += fmt.Sprintf("; and %d more", extra)
	}
	return fmt.Errorf("sched: invalid schedule: %s", s)
}

// cover tracks which bytes of one block a rank holds, as sorted disjoint
// intervals. done short-circuits full blocks (the common case) and is
// the only representation of "held" for zero-byte messages.
type cover struct {
	done bool
	ivs  [][2]int
}

func (c *cover) markAll() { c.done = true; c.ivs = nil }

func (c *cover) add(lo, hi, size int) {
	if c.done {
		return
	}
	if lo <= 0 && hi >= size {
		c.markAll()
		return
	}
	out := c.ivs[:0]
	merged := [2]int{lo, hi}
	inserted := false
	for _, iv := range c.ivs {
		switch {
		case iv[1] < merged[0]:
			out = append(out, iv)
		case merged[1] < iv[0]:
			if !inserted {
				out = append(out, merged)
				inserted = true
			}
			out = append(out, iv)
		default: // overlap or touch: absorb
			if iv[0] < merged[0] {
				merged[0] = iv[0]
			}
			if iv[1] > merged[1] {
				merged[1] = iv[1]
			}
		}
	}
	if !inserted {
		out = append(out, merged)
	}
	c.ivs = out
	if len(c.ivs) == 1 && c.ivs[0][0] <= 0 && c.ivs[0][1] >= size {
		c.markAll()
	}
}

func (c *cover) full() bool { return c.done }

// holdState is the per-(rank, block) state matrix: byte coverage plus
// the contributor set the copy carries (see Goal). For a plain move the
// set is the sender's; matching sets merge coverage, a different set
// replaces the copy outright. A reducing delivery unions two disjoint
// sets — overlap means some rank's contribution would fold in twice.
type holdState struct {
	n, nb, msg int
	cov        []cover      // rank*nb + block
	set        []contribSet // rank*nb + block; nil = holds nothing
}

func newHoldState(n, nb, msg int, g *Goal) *holdState {
	h := &holdState{n: n, nb: nb, msg: msg,
		cov: make([]cover, n*nb), set: make([]contribSet, n*nb)}
	for r, list := range g.Init {
		for _, rng := range list {
			for b := rng.First; b < rng.First+rng.Count; b++ {
				h.cov[r*nb+b].markAll()
				h.set[r*nb+b] = h.set[r*nb+b].with(r, n)
			}
		}
	}
	return h
}

func (h *holdState) at(rank, block int) *cover        { return &h.cov[rank*h.nb+block] }
func (h *holdState) setAt(rank, block int) contribSet { return h.set[rank*h.nb+block] }

// holdsWindow reports whether rank holds every byte the transfer reads.
func (h *holdState) holdsWindow(rank int, t Transfer) (bool, int) {
	for _, w := range windowBlocks(t, h.msg) {
		c := h.at(rank, w.block)
		if !c.full() {
			// Partial coverage could in principle satisfy a partial read,
			// but no builder forwards bytes it holds only partially;
			// requiring full blocks keeps the invariant simple and strict.
			return false, w.block
		}
	}
	return true, 0
}

// snapshot captures the source's per-window contributor sets before any
// of the step's deliveries land (sends read pre-step state). Sets are
// copy-on-write, so aliasing the live slice is safe.
func (h *holdState) snapshot(t Transfer) []contribSet {
	ws := windowBlocks(t, h.msg)
	out := make([]contribSet, len(ws))
	for i, w := range ws {
		out[i] = h.setAt(t.Src, w.block)
	}
	return out
}

// deliver credits the transfer's byte window to the destination, using
// the pre-step source sets from snapshot. Reducing deliveries report
// double folds and partially-held destinations through viol.
func (h *holdState) deliver(t Transfer, srcSets []contribSet, si, xi int, viol *violations) {
	for i, w := range windowBlocks(t, h.msg) {
		idx := t.Dst*h.nb + w.block
		if t.Red {
			switch {
			case h.set[idx] == nil:
				// Folding into nothing is a plain arrival.
				h.set[idx] = srcSets[i]
				h.cov[idx] = cover{}
				h.cov[idx].add(w.lo, w.hi, h.msg)
			case !h.cov[idx].full():
				viol.addf("step %d xfer %d: rank %d folds into partially held block %d", si, xi, t.Dst, w.block)
			case !h.set[idx].disjoint(srcSets[i]):
				viol.addf("step %d xfer %d: double fold into rank %d block %d", si, xi, t.Dst, w.block)
			default:
				h.set[idx] = h.set[idx].union(srcSets[i])
			}
			continue
		}
		if h.set[idx].equal(srcSets[i]) {
			h.cov[idx].add(w.lo, w.hi, h.msg)
			continue
		}
		// A copy with different provenance replaces what was held.
		h.set[idx] = srcSets[i]
		h.cov[idx] = cover{}
		h.cov[idx].add(w.lo, w.hi, h.msg)
	}
}

// blockWindow is the slice of one block touched by a transfer window.
type blockWindow struct {
	block  int
	lo, hi int // byte range within the block
}

// windowBlocks expands a transfer's byte window into per-block slices.
// A whole-range transfer covers all its blocks fully even when msg == 0
// (zero-byte allgathers still have a completion structure).
func windowBlocks(t Transfer, msg int) []blockWindow {
	out := make([]blockWindow, 0, t.Count)
	if t.Whole(msg) {
		for b := t.First; b < t.First+t.Count; b++ {
			out = append(out, blockWindow{block: b, lo: 0, hi: msg})
		}
		return out
	}
	for b := 0; b < t.Count; b++ {
		blo, bhi := b*msg, (b+1)*msg
		lo, hi := t.Off, t.Off+t.Len
		if lo < blo {
			lo = blo
		}
		if hi > bhi {
			hi = bhi
		}
		if lo < hi {
			out = append(out, blockWindow{block: t.First + b, lo: lo - blo, hi: hi - blo})
		}
	}
	return out
}

// resource keys for the per-step busy accounting.
type resKind uint8

const (
	resCPU resKind = iota // per-rank CPU (CMA pushes, pulls, staging copies)
	resTX                 // per-(node, rail) adapter transmit
	resRX                 // per-(node, rail) adapter receive
)

type resKey struct {
	kind resKind
	a, b int // CPU: (rank, 0); TX/RX: (node, rail)
}

// Analyze statically checks a schedule and prices it, without running
// the simulator. The three semantic invariants:
//
//  1. progression — a transfer only forwards blocks its source fully
//     holds at the start of the step (sends read pre-step state);
//  2. completeness — after the last step every rank holds every block;
//  3. rail exclusivity — within a step, pinned (via=rail) transfers get
//     a (node, rail, direction) endpoint exclusively; two pinned
//     transfers colliding on one is a planning error. Policy transfers
//     (auto/hca) are best-effort and exempt: the runtime serializes
//     them on the rail resources instead.
//
// The returned Report prices each step as the busiest resource's
// serialized work under the netmodel alpha-beta costs, mirroring how the
// runtime charges the same primitives (CMA and staging copies see the
// node's memory-congestion factor at the step's concurrency; adapter
// transfers pay per-piece startup plus rendezvous above the threshold;
// unpinned inter-node transfers stripe above StripeThreshold and
// round-robin below it, like mpi.Isend's healthy policy).
func Analyze(s *Schedule, prm *netmodel.Params) (*Report, error) {
	return AnalyzeHealth(s, prm, nil)
}

// AnalyzeHealth is Analyze under a steady rail-health vector (see
// ValidHealth): degraded rails price at their surviving bandwidth, policy
// transfers stripe across rails weighted by health (and round-robin only
// over the live ones), mirroring the runtime's health-aware transport
// under the equivalent fault schedule — and a transfer pinned to a down
// rail is an invariant violation, because the runtime would wait on it
// forever. A nil vector is exactly Analyze.
func AnalyzeHealth(s *Schedule, prm *netmodel.Params, health []float64) (*Report, error) {
	return AnalyzeGoalHealth(s, prm, health, nil)
}

// AnalyzeGoal is Analyze against an explicit goal: initial holds come
// from goal.Init, completeness requires every Want range fully covered
// and carrying exactly its canonical contributor set, and reducing
// transfers are checked for double folds. A nil goal means the classic
// allgather contract (and then the schedule must use the default block
// space). This is how internal/compose verifies every lowered
// collective with the same machinery the allgather variants use.
func AnalyzeGoal(s *Schedule, prm *netmodel.Params, g *Goal) (*Report, error) {
	return AnalyzeGoalHealth(s, prm, nil, g)
}

// AnalyzeGoalHealth is AnalyzeGoal under a rail-health vector.
//
//lint:pure the alpha-beta price feeds cached decisions and must not drift
func AnalyzeGoalHealth(s *Schedule, prm *netmodel.Params, health []float64, g *Goal) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := ValidHealth(health, s.Topo.HCAs); err != nil {
		return nil, err
	}
	if prm == nil {
		prm = netmodel.Thor()
	}
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	n := s.Topo.Size()
	if n > analyzeMaxRanks {
		return nil, fmt.Errorf("sched: analyzer supports up to %d ranks, schedule has %d", analyzeMaxRanks, n)
	}
	nb := s.Blocks()
	if g == nil {
		if s.NumBlocks != 0 && s.NumBlocks != n {
			return nil, fmt.Errorf("sched: block space %d needs an explicit goal (world has %d ranks)", s.NumBlocks, n)
		}
		g = AllgatherGoal(n)
	}
	if err := g.Validate(n, nb); err != nil {
		return nil, err
	}
	if n*nb > analyzeMaxRanks*analyzeMaxRanks {
		return nil, fmt.Errorf("sched: hold matrix %d x %d exceeds the analyzer's bound", n, nb)
	}
	m := s.Msg
	hold := newHoldState(n, nb, m, g)
	var viol violations
	rep := &Report{
		// Every rank starts by staging its initial blocks into place; the
		// interpreter performs the same LocalCopys.
		StepCosts: make([]sim.Duration, len(s.Steps)),
	}
	var worstInit sim.Duration
	for _, list := range g.Init {
		var d sim.Duration
		for _, rng := range list {
			d += prm.CopyTime(rng.Count*m, 1)
		}
		if d > worstInit {
			worstInit = d
		}
	}
	rep.Cost = worstInit
	H := s.Topo.HCAs
	railRR := make([]int, n) // per-rank round-robin cursor, mirroring the runtime

	for si := range s.Steps {
		st := &s.Steps[si]

		// Pass 1: invariants. Sends read pre-step state, so all checks —
		// and the contributor-set snapshots the deliveries need — precede
		// all deliveries.
		pinned := map[resKey]int{} // (node, rail, dir) -> count of pinned users
		srcSets := make([][]contribSet, len(st.Xfers))
		for xi, t := range st.Xfers {
			srcSets[xi] = hold.snapshot(t)
			if ok, blk := hold.holdsWindow(t.Src, t); !ok {
				viol.addf("step %d xfer %d: rank %d sends block %d before holding it", si, xi, t.Src, blk)
			}
			if t.Via == ViaRail {
				if healthOf(health, t.Rail) <= 0 {
					viol.addf("step %d xfer %d: pinned to down rail %d", si, xi, t.Rail)
				}
				tx := resKey{resTX, s.Topo.NodeOf(t.Src), t.Rail}
				rx := resKey{resRX, s.Topo.NodeOf(t.Dst), t.Rail}
				if pinned[tx]++; pinned[tx] > 1 {
					viol.addf("step %d xfer %d: rail conflict: node %d rail %d tx pinned twice", si, xi, tx.a, t.Rail)
				}
				if pinned[rx]++; pinned[rx] > 1 {
					viol.addf("step %d xfer %d: rail conflict: node %d rail %d rx pinned twice", si, xi, rx.a, t.Rail)
				}
			}
		}
		for ci, cp := range st.Copies {
			for b := cp.First; b < cp.First+cp.Count; b++ {
				if !hold.at(cp.Rank, b).full() {
					viol.addf("step %d copy %d: rank %d stages block %d before holding it", si, ci, cp.Rank, b)
					break
				}
			}
		}

		// Pass 2: concurrency census for the memory-congestion factor —
		// how many CMA/copy operations hit each node in this step.
		memOps := map[int]int{}
		for _, t := range st.Xfers {
			switch t.Via {
			case ViaAuto:
				if s.Topo.SameNode(t.Src, t.Dst) {
					memOps[s.Topo.NodeOf(t.Src)]++
				}
			case ViaPull:
				memOps[s.Topo.NodeOf(t.Dst)]++
			}
		}
		for _, cp := range st.Copies {
			memOps[s.Topo.NodeOf(cp.Rank)]++
		}

		// Pass 3: price the step. Each resource serializes its own work;
		// the step finishes when the busiest resource does.
		busy := map[resKey]sim.Duration{}
		addTX := func(node, rail int, d sim.Duration) { busy[resKey{resTX, node, rail}] += d }
		addRX := func(node, rail int, d sim.Duration) { busy[resKey{resRX, node, rail}] += d }
		for _, t := range st.Xfers {
			srcNode, dstNode := s.Topo.NodeOf(t.Src), s.Topo.NodeOf(t.Dst)
			sameNode := srcNode == dstNode
			switch {
			case t.Via == ViaPull:
				busy[resKey{resCPU, t.Dst, 0}] += prm.CMATime(t.Len, memOps[dstNode])
				rep.Pulls++
				rep.IntraBytes += int64(t.Len)
			case t.Via == ViaAuto && sameNode:
				busy[resKey{resCPU, t.Src, 0}] += prm.CMATime(t.Len, memOps[srcNode])
				rep.IntraBytes += int64(t.Len)
			case t.Via == ViaRail:
				d := hcaPiece(prm, t.Len, t.Len, healthOf(health, t.Rail))
				addTX(srcNode, t.Rail, d)
				addRX(dstNode, t.Rail, d)
				rep.WireBytes += int64(t.Len)
			default: // ViaHCA anywhere, or ViaAuto across nodes
				if prm.ShouldStripe(t.Len) && H > 1 {
					for rail, piece := range stripeChunks(t.Len, H, health) {
						if piece == 0 {
							continue
						}
						d := hcaPiece(prm, t.Len, piece, healthOf(health, rail))
						addTX(srcNode, rail, d)
						addRX(dstNode, rail, d)
					}
				} else {
					r := railRR[t.Src] % H
					railRR[t.Src]++
					for healthOf(health, r) <= 0 {
						// The runtime's failover skips dead rails; ValidHealth
						// guarantees a live one exists.
						r = railRR[t.Src] % H
						railRR[t.Src]++
					}
					d := hcaPiece(prm, t.Len, t.Len, healthOf(health, r))
					addTX(srcNode, r, d)
					addRX(dstNode, r, d)
				}
				rep.WireBytes += int64(t.Len)
			}
			if t.Red {
				// The destination folds the arrived bytes into its copy;
				// priced like the byte-wise reducers charge compute.
				busy[resKey{resCPU, t.Dst, 0}] += sim.FromSeconds(float64(t.Len) / reduceBW)
				rep.Reduces++
			}
			rep.Transfers++
		}
		for _, cp := range st.Copies {
			nd := s.Topo.NodeOf(cp.Rank)
			busy[resKey{resCPU, cp.Rank, 0}] += prm.CopyTime(cp.Count*m, memOps[nd])
			rep.Copies++
		}
		var worst sim.Duration
		for _, d := range busy {
			if d > worst {
				worst = d
			}
		}
		rep.StepCosts[si] = worst
		rep.Cost += worst

		// Pass 4: apply deliveries for the next step.
		for xi, t := range st.Xfers {
			hold.deliver(t, srcSets[xi], si, xi, &viol)
		}
	}

	// Completeness: every wanted block fully covered and carrying exactly
	// its canonical contributor set (for an allgather, "rank r ends
	// holding every block"; for a reduction, "fully folded, no double
	// counting").
	canon := g.contributors(n)
	for r := 0; r < n && viol.n <= 8; r++ {
		for _, rng := range g.Want[r] {
			for b := rng.First; b < rng.First+rng.Count; b++ {
				if !hold.at(r, b).full() {
					viol.addf("rank %d ends missing block %d", r, b)
				} else if got := hold.setAt(r, b); !got.equal(canon[b]) {
					viol.addf("rank %d ends block %d with %d of %d contributions",
						r, b, got.count(), canon[b].count())
				}
			}
		}
	}
	if err := viol.err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// reduceBW is the fold bandwidth (bytes/s) charged to the destination
// CPU per reducing delivery, matching the byte-wise reducers' cost
// model (collectives.Float64Sum and compose's byte-sum both use 8 GB/s).
const reduceBW = 8e9

// hcaPiece prices one rail piece of an adapter transfer: startup plus
// wire time at the rail's surviving bandwidth, plus the rendezvous
// handshake when the whole message crosses the threshold — the same
// shape mpi.sendHCA charges per rail. Dead rails (health <= 0) are the
// caller's problem: pinned use is a violation and the policy paths never
// route bytes to them.
func hcaPiece(prm *netmodel.Params, total, piece int, health float64) sim.Duration {
	d := prm.AlphaHCA + sim.FromSeconds(float64(piece)/prm.EffectiveBW(health))
	if total >= prm.RendezvousThreshold {
		d += prm.AlphaRendezvous
	}
	return d
}

// stripeChunks splits a striped policy transfer across the rails: equal
// pieces when every rail is healthy (the runtime's healthy split),
// health-weighted pieces otherwise (its re-weighted split, dead rails
// getting nothing).
func stripeChunks(n, rails int, health []float64) []int {
	if health == nil {
		return netmodel.RailChunk(n, rails)
	}
	uniform := true
	for _, h := range health {
		if h != health[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return netmodel.RailChunk(n, rails)
	}
	return netmodel.RailChunkWeighted(n, health)
}
