package sched

import (
	"fmt"

	"mha/internal/netmodel"
	"mha/internal/perfmodel"
	"mha/internal/topology"
)

// The lowering constructors: each expresses one of the repo's hand-
// written allgather designs as an explicit Schedule. They are pure
// functions of (topology, message size, options) — every rank of a job
// that builds the same schedule gets the identical plan.

// Ring lowers the classic ring allgather: n-1 steps, each rank
// forwarding the block it received in the previous step to its right
// neighbor over the default transport.
func Ring(topo topology.Cluster, msg int) *Schedule {
	n := topo.Size()
	b := NewBuilder("ring", topo, msg)
	for s := 0; s < n-1; s++ {
		b.Step()
		for r := 0; r < n; r++ {
			b.Send(r, (r+1)%n, ((r-s)%n+n)%n)
		}
	}
	return b.MustBuild()
}

// RecursiveDoubling lowers the recursive-doubling allgather: log2(n)
// steps, each rank exchanging its accumulated aligned block range with
// its partner at distance 2^k. Like the hand-written RDAllgather, it
// requires a power-of-two size; other sizes fall back to the ring
// lowering (the hand-written code falls back to Bruck, whose shifted
// intermediate state does not map onto contiguous block ranges).
func RecursiveDoubling(topo topology.Cluster, msg int) *Schedule {
	n := topo.Size()
	if n&(n-1) != 0 {
		return Ring(topo, msg)
	}
	b := NewBuilder("rd", topo, msg)
	for dist := 1; dist < n; dist *= 2 {
		b.Step()
		for r := 0; r < n; r++ {
			base := r &^ (2*dist - 1) // group base after this exchange
			mine := base
			if r&dist != 0 {
				mine = base + dist // r is the upper half: it holds the upper range
			}
			b.SendRange(r, r^dist, mine, dist)
		}
	}
	return b.MustBuild()
}

// Phase2Alg selects the leader exchange of the two-phase MHA lowering.
type Phase2Alg int

const (
	// Phase2Ring moves node blocks around the leader ring, one striped
	// rail transfer per leader per step.
	Phase2Ring Phase2Alg = iota
	// Phase2RD exchanges doubling node-block ranges between leaders;
	// non-power-of-two node counts fall back to Phase2Ring.
	Phase2RD
)

func (a Phase2Alg) String() string {
	if a == Phase2RD {
		return "rd"
	}
	return "ring"
}

// AutoOffload asks TwoPhaseMHA to derive the phase-1 HCA offload count
// from the performance model (Equation 1 of the paper, floored to whole
// transfers).
const AutoOffload = -1

// MHAOptions tunes the TwoPhaseMHA lowering.
type MHAOptions struct {
	// Phase2 picks the leader-exchange pattern.
	Phase2 Phase2Alg
	// Offload is the number of phase-1 direct-spread steps each rank
	// hands to the adapters (whole transfers; AutoOffload uses Eq. 1).
	Offload int
	// Sequential disables the phase-2/phase-3 fusion: all node blocks
	// arrive first, then one distribution step staged through a leader
	// copy (the Kandalla-style non-overlapped baseline).
	Sequential bool
	// Push makes the leader push arrived blocks to its peers over CMA
	// instead of the peers pulling them (pull spreads the copy cost
	// across the readers' CPUs, which is how the shared-memory phase 3
	// behaves).
	Push bool
}

// TwoPhaseMHA lowers the paper's hierarchical multi-HCA-aware design:
// phase 1 is the intra-node direct spread with the tail steps offloaded
// to the adapters, phase 2 moves whole node blocks between leaders
// striped across every rail (pinned pieces, one per rail), and phase 3
// distributes each arrived node block inside the node, fused into the
// following phase-2 step unless Sequential. Multi-node topologies need
// the block layout (node blocks must be contiguous in the receive
// buffer); single-node topologies work with either layout.
func TwoPhaseMHA(topo topology.Cluster, prm *netmodel.Params, msg int, opt MHAOptions) *Schedule {
	if topo.Nodes > 1 && topo.Layout != topology.Block {
		panic(fmt.Sprintf("sched: TwoPhaseMHA needs the block layout on %v", topo))
	}
	if prm == nil {
		prm = netmodel.Thor()
	}
	N, L, H := topo.Nodes, topo.PPN, topo.HCAs
	d := opt.Offload
	if d < 0 {
		node := topo
		node.Nodes, node.PPN, node.Sockets = 1, L, 0
		d = int(perfmodel.New(prm, node).OffloadD(msg))
	}
	if d > L-1 {
		d = L - 1
	}
	name := "mha-" + opt.Phase2.String()
	if opt.Sequential {
		name += "-seq"
	}
	if opt.Push {
		name += "-push"
	}
	b := NewBuilder(name, topo, msg)

	// Phase 1: direct spread within each node; the last d steps ride the
	// otherwise idle adapters (loopback), matching core.offloadPlan's
	// whole-transfer assignment.
	for s := 1; s < L; s++ {
		b.Step()
		for nd := 0; nd < N; nd++ {
			for l := 0; l < L; l++ {
				src := topo.RankOf(nd, l)
				dst := topo.RankOf(nd, (l+s)%L)
				if s >= L-d {
					b.SendHCA(src, dst, src, 1)
				} else {
					b.Send(src, dst, src)
				}
			}
		}
	}
	if N == 1 {
		return b.MustBuild()
	}

	distribute := func(nd, firstBlock, count int) {
		leader := topo.LeaderOf(nd)
		for l := 1; l < L; l++ {
			peer := topo.RankOf(nd, l)
			if opt.Push {
				b.SendRange(leader, peer, firstBlock, count)
			} else {
				b.Pull(leader, peer, firstBlock, count)
			}
		}
	}

	if opt.Phase2 == Phase2RD && N&(N-1) == 0 {
		// Phase 2 RD: leaders exchange doubling node-block ranges; each
		// range received in step j is distributed during step j+1.
		type rng struct{ base, count int }
		prev := make([]rng, N) // range received in the previous step, per node
		step := 0
		for dist := 1; dist < N; dist *= 2 {
			b.Step()
			for v := 0; v < N; v++ {
				base := v &^ (2*dist - 1)
				mine := base
				if v&dist != 0 {
					mine = base + dist
				}
				b.Striped(topo.LeaderOf(v), topo.LeaderOf(v^dist), mine*L, dist*L, H)
				if !opt.Sequential && step > 0 {
					distribute(v, prev[v].base*L, prev[v].count*L)
				}
				theirs := base
				if v&dist == 0 {
					theirs = base + dist
				}
				prev[v] = rng{theirs, dist}
			}
			step++
		}
		if L > 1 {
			b.Step()
			for v := 0; v < N; v++ {
				if opt.Sequential {
					// Every remote node block at once, staged through a
					// leader copy (the shared-memory publish).
					for nd := 0; nd < N; nd++ {
						if nd != v {
							b.Copy(topo.LeaderOf(v), nd*L, L)
							distribute(v, nd*L, L)
						}
					}
				} else {
					distribute(v, prev[v].base*L, prev[v].count*L)
				}
			}
		}
		return b.MustBuild()
	}

	// Phase 2 ring: in step k every leader forwards the node block it
	// received in step k-1 (its own block at k = 0) and, fused, its
	// peers read that previous block out of the leader's buffer.
	for k := 0; k < N-1; k++ {
		b.Step()
		for v := 0; v < N; v++ {
			cur := ((v-k)%N + N) % N
			b.Striped(topo.LeaderOf(v), topo.LeaderOf((v+1)%N), cur*L, L, H)
			if !opt.Sequential && k > 0 {
				distribute(v, cur*L, L)
			}
		}
	}
	if L > 1 {
		b.Step()
		for v := 0; v < N; v++ {
			if opt.Sequential {
				for nd := 0; nd < N; nd++ {
					if nd != v {
						b.Copy(topo.LeaderOf(v), nd*L, L)
						distribute(v, nd*L, L)
					}
				}
			} else {
				distribute(v, ((v+1)%N)*L, L)
			}
		}
	}
	return b.MustBuild()
}

// DirectRail is the synthesizer's greedy direct construction: every
// cross-node (src, dst) pair gets the source's block as one pinned
// transfer, list-scheduled into the earliest step with a rail free at
// both endpoints (tx at the source node, rx at the destination node);
// intra-node blocks spread over the same steps as receiver-driven
// pulls. Returns nil when the machine's cross-traffic cannot fit the
// step limit.
func DirectRail(topo topology.Cluster, msg int) *Schedule {
	n := topo.Size()
	H := topo.HCAs
	b := NewBuilder("direct-rail", topo, msg)
	// txUsed/rxUsed[step][node*H+rail] track pinned endpoint occupancy.
	var txUsed, rxUsed [][]bool
	ensure := func(step int) bool {
		for len(txUsed) <= step {
			if len(txUsed) >= maxSteps {
				return false
			}
			txUsed = append(txUsed, make([]bool, topo.Nodes*H))
			rxUsed = append(rxUsed, make([]bool, topo.Nodes*H))
			b.Step()
		}
		return true
	}
	type placed struct{ src, dst, step, rail int }
	var plan []placed
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst == src || topo.SameNode(src, dst) {
				continue
			}
			sn, dn := topo.NodeOf(src), topo.NodeOf(dst)
			placedAt := -1
			for step := 0; placedAt < 0; step++ {
				if !ensure(step) {
					return nil
				}
				for r := 0; r < H; r++ {
					if !txUsed[step][sn*H+r] && !rxUsed[step][dn*H+r] {
						txUsed[step][sn*H+r] = true
						rxUsed[step][dn*H+r] = true
						plan = append(plan, placed{src, dst, step, r})
						placedAt = step
						break
					}
				}
			}
		}
	}
	// Emit pinned transfers step by step (the builder appends to the
	// current step, so fill each step's transfers in order).
	steps := len(txUsed)
	if steps == 0 {
		if n > 1 {
			ensure(0)
			steps = 1
		}
	}
	byStep := make([][]placed, steps)
	for _, pl := range plan {
		byStep[pl.step] = append(byStep[pl.step], pl)
	}
	b.s.Steps = b.s.Steps[:0]
	for step := 0; step < steps; step++ {
		b.Step()
		for _, pl := range byStep[step] {
			if msg == 0 {
				b.RailPiece(pl.src, pl.dst, pl.src, 1, 0, 0, pl.rail)
			} else {
				b.RailPiece(pl.src, pl.dst, pl.src, 1, 0, msg, pl.rail)
			}
		}
		// Spread the intra-node exchange across the schedule: in step k,
		// every rank pulls the block of its node peer at distance k+1.
		for r := 0; r < n; r++ {
			nd, l := topo.NodeOf(r), topo.LocalOf(r)
			for s := step + 1; s < topo.PPN; s += steps {
				peer := topo.RankOf(nd, (l+s)%topo.PPN)
				b.Pull(peer, r, peer, 1)
			}
		}
	}
	return b.MustBuild()
}
