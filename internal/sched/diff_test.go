package sched

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mha/internal/collectives"
	"mha/internal/core"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/topology"
	"mha/internal/trace"
)

// patByte mirrors the verification oracle's contribution pattern.
func patByte(r, i int) byte { return byte(r*131 + i*7 + 3) }

// runFn is one allgather implementation (hand-written or interpreted).
type runFn func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)

// runReal executes fn on a fresh real-payload world and returns every
// rank's receive buffer plus the trace hash of the run.
func runReal(t *testing.T, topo topology.Cluster, m int, fn runFn) ([][]byte, uint64) {
	t.Helper()
	rec := trace.New()
	w := mpi.New(mpi.Config{Topo: topo, Params: netmodel.Thor(), Tracer: rec})
	n := topo.Size()
	out := make([][]byte, n)
	var mu sync.Mutex
	err := w.Run(func(p *mpi.Proc) {
		send := mpi.NewBuf(m)
		for i := range send.Data() {
			send.Data()[i] = patByte(p.Rank(), i)
		}
		recv := mpi.NewBuf(n * m)
		fn(p, w, send, recv)
		mu.Lock()
		out[p.Rank()] = append([]byte(nil), recv.Data()...)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("run on %v msg=%d: %v", topo, m, err)
	}
	return out, rec.Hash()
}

// TestDifferential checks, for each lowered design, that interpreting
// the schedule produces byte-identical receive buffers to the
// hand-written implementation and that both are trace-hash
// deterministic, across block/cyclic/single-node/odd topologies and
// message sizes including zero and odd/prime byte counts.
func TestDifferential(t *testing.T) {
	prm := netmodel.Thor()
	type variant struct {
		name  string
		hand  runFn
		build func(topo topology.Cluster, msg int) *Schedule
		block bool // needs block layout on multi-node machines
	}
	variants := []variant{
		{
			name: "ring",
			hand: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
				collectives.RingAllgather(p, w.CommWorld(), send, recv)
			},
			build: Ring,
		},
		{
			name: "rd",
			hand: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
				collectives.RDAllgather(p, w.CommWorld(), send, recv)
			},
			build: RecursiveDoubling,
		},
		{
			name:  "mha",
			hand:  core.MHAAllgather,
			block: true,
			build: func(topo topology.Cluster, msg int) *Schedule {
				return TwoPhaseMHA(topo, prm, msg, MHAOptions{Offload: AutoOffload})
			},
		},
	}
	topos := []topology.Cluster{
		topology.New(2, 2, 2),
		topology.New(4, 3, 1),
		{Nodes: 1, PPN: 4, HCAs: 2, Layout: topology.Block},
		{Nodes: 3, PPN: 2, HCAs: 2, Layout: topology.Cyclic},
	}
	msgs := []int{0, 7, 257, 8192}

	for _, v := range variants {
		for _, topo := range topos {
			if v.block && topo.Layout != topology.Block && topo.Nodes > 1 {
				continue
			}
			for _, m := range msgs {
				t.Run(fmt.Sprintf("%s/%v/%d", v.name, topo, m), func(t *testing.T) {
					// The power-of-two-only RD lowering falls back to ring
					// where the hand-written code falls back to Bruck; the
					// differential comparison needs matching structure, so
					// compare against the hand-written ring there.
					hand := v.hand
					if v.name == "rd" && topo.Size()&(topo.Size()-1) != 0 {
						hand = func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
							collectives.RingAllgather(p, w.CommWorld(), send, recv)
						}
					}
					s := v.build(topo, m)
					if _, err := Analyze(s, prm); err != nil {
						t.Fatalf("lowered %s schedule invalid: %v", v.name, err)
					}
					run := func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
						Execute(p, w, s, send, recv)
					}
					gotS, hashS1 := runReal(t, topo, m, run)
					_, hashS2 := runReal(t, topo, m, run)
					gotH, hashH1 := runReal(t, topo, m, hand)
					_, hashH2 := runReal(t, topo, m, hand)

					if hashS1 != hashS2 {
						t.Errorf("schedule interpreter not deterministic: %#x vs %#x", hashS1, hashS2)
					}
					if hashH1 != hashH2 {
						t.Errorf("hand-written %s not deterministic: %#x vs %#x", v.name, hashH1, hashH2)
					}
					for r := range gotS {
						if !bytes.Equal(gotS[r], gotH[r]) {
							t.Errorf("rank %d: interpreted buffer differs from hand-written", r)
							break
						}
						if m == 0 {
							continue
						}
						for i, b := range gotS[r] {
							if want := patByte(i/m, i%m); b != want {
								t.Errorf("rank %d byte %d = %#02x, want %#02x", r, i, b, want)
								break
							}
						}
					}
				})
			}
		}
	}
}
