package sched

import (
	"fmt"
	"sync"

	"mha/internal/faults"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// phaseSched is the tag phase id of schedule-interpreter messages.
// Phases 0-8 belong to internal/collectives and 10-11 to internal/core;
// a distinct id keeps traces and tag dumps unambiguous. The 16-bit step
// field carries (step index << 7) | per-pair ordinal, which is why
// Validate caps schedules at 512 steps and 128 same-step transfers per
// (src, dst) pair.
const phaseSched = 12

// Execute runs the schedule on the mpi runtime as this rank's share of
// an allgather: send is the rank's contribution (Msg bytes), recv the
// full result (Msg * Size bytes). All ranks must call it, like any
// collective. The schedule must match the world's topology.
//
// Per step, the rank posts its receives, posts its sends (payloads are
// snapshotted at post time, so every send reads the pre-step state even
// when a receive of the same step would overwrite it), then completes
// receives and sends. Steps are rank-local: no global barrier separates
// them, so a step's CMA copies overlap a neighbor's rail transfers
// exactly as the hand-written overlapped designs do.
//
// Execute assumes a schedule Analyze accepts; running an invalid one
// may deadlock the simulation (which the engine reports) or produce
// wrong bytes (which verification catches), but never corrupts the
// runtime.
func Execute(p *mpi.Proc, w *mpi.World, s *Schedule, send, recv mpi.Buf) {
	topo := w.Topo()
	if topo.Nodes != s.Topo.Nodes || topo.PPN != s.Topo.PPN ||
		topo.HCAs != s.Topo.HCAs || topo.Layout != s.Topo.Layout {
		panic(fmt.Sprintf("sched: schedule for %v executed on %v", s.Topo, topo))
	}
	m := s.Msg
	if send.Len() != m || recv.Len() != m*p.Size() {
		panic(fmt.Sprintf("sched: buffer sizes (%d, %d) do not match schedule msg %d on %d ranks",
			send.Len(), recv.Len(), m, p.Size()))
	}
	c := w.CommWorld()
	me := p.Rank()
	epoch := c.Epoch(p)

	// Own contribution into place first, like every other variant.
	p.LocalCopy(recv.Slice(me*m, m), send)

	type pendingRecv struct {
		req *mpi.Request
		t   Transfer
	}
	for si := range s.Steps {
		st := &s.Steps[si]
		// Both endpoints must derive identical tags for the q-th transfer
		// between a pair, so the ordinal comes from scanning the step's
		// full transfer list in order on both sides.
		ord := map[[2]int]int{}
		tagOf := func(t Transfer) int {
			k := [2]int{t.Src, t.Dst}
			q := ord[k]
			ord[k] = q + 1
			return mpi.Tag(epoch, phaseSched, si<<7|q)
		}
		var recvs []pendingRecv
		var sends []*mpi.Request
		for _, t := range st.Xfers {
			if t.Dst != me && t.Src != me {
				tagOf(t) // keep the shared ordinal stream in sync
				continue
			}
			tag := tagOf(t)
			if t.Dst == me {
				recvs = append(recvs, pendingRecv{p.Irecv(c, t.Src, tag), t})
			}
			if t.Src == me {
				buf := recv.Slice(t.First*m+t.Off, t.Len)
				switch t.Via {
				case ViaPull:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ByRef()))
				case ViaHCA:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ViaHCA()))
				case ViaRail:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ViaRail(t.Rail)))
				default:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf))
				}
			}
		}
		for _, pr := range recvs {
			data := p.Wait(pr.req)
			if pr.t.Via == ViaPull {
				// ByRef handoff: the reader performs (and pays for) the
				// actual copy out of the peer's buffer.
				p.ChargeCMA(pr.t.Len)
			}
			recv.Slice(pr.t.First*m+pr.t.Off, pr.t.Len).CopyFrom(data)
		}
		for _, cp := range st.Copies {
			if cp.Rank == me {
				p.ChargeCopy(cp.Count * m)
			}
		}
		for _, sr := range sends {
			p.Wait(sr)
		}
	}
}

// ExecuteGoal runs a goal-based schedule (see Goal) as this rank's
// share of a derived collective over the communicator c. The schedule's
// ranks are comm ranks, so sub-communicator plans work; only the sizes
// must agree (a plan lowered for a flat virtual topology may run on a
// comm whose ranks span nodes — the runtime routes each message by the
// real machine, the plan's pricing is simply approximate there).
//
// init supplies the caller's contiguous buffer for each of the rank's
// Init ranges, and out the destination buffer for each Want range; both
// are copied through a private arena so the caller's send buffer is
// never aliased or clobbered. red folds an arrived payload into the
// arena for reducing transfers (required iff the schedule contains
// any); it must charge its own compute time and tolerate phantom
// buffers.
//
// Every transfer window must stay inside one contiguous run of the
// rank's touched blocks — lowerings guarantee this by construction, and
// a violation is a planning bug, reported by panic.
func ExecuteGoal(p *mpi.Proc, c *mpi.Comm, s *Schedule, g *Goal,
	init func(r Range) mpi.Buf,
	out func(r Range) mpi.Buf,
	red func(p *mpi.Proc, dst, src mpi.Buf)) {
	n := c.Size()
	if s.Topo.Size() != n {
		panic(fmt.Sprintf("sched: schedule for %d ranks executed on a %d-rank comm", s.Topo.Size(), n))
	}
	m := s.Msg
	nb := s.Blocks()
	me := c.Rank(p)

	// The arena holds every block this rank touches, packed by block
	// index so contiguous block ranges stay contiguous in memory.
	touched := make([]bool, nb)
	mark := func(first, count int) {
		for b := first; b < first+count; b++ {
			touched[b] = true
		}
	}
	for _, rng := range g.Init[me] {
		mark(rng.First, rng.Count)
	}
	for _, rng := range g.Want[me] {
		mark(rng.First, rng.Count)
	}
	for _, st := range s.Steps {
		for _, t := range st.Xfers {
			if t.Src == me || t.Dst == me {
				mark(t.First, t.Count)
			}
		}
		for _, cp := range st.Copies {
			if cp.Rank == me {
				mark(cp.First, cp.Count)
			}
		}
	}
	arenaOff := make([]int, nb)
	total := 0
	for b, on := range touched {
		if on {
			arenaOff[b] = total
			total++
		} else {
			arenaOff[b] = -1
		}
	}
	arena := mpi.Make(total*m, p.World().Phantom())
	window := func(first, count, off, ln int) mpi.Buf {
		base := arenaOff[first]
		if base < 0 || arenaOff[first+count-1] != base+count-1 {
			panic(fmt.Sprintf("sched: rank %d: block range [%d,%d) not contiguous in its arena", me, first, first+count))
		}
		return arena.Slice(base*m+off, ln)
	}

	// Stage initial blocks, like Execute's own-contribution LocalCopy.
	for _, rng := range g.Init[me] {
		p.LocalCopy(window(rng.First, rng.Count, 0, rng.Count*m), init(rng))
	}

	epoch := c.Epoch(p)
	type pendingRecv struct {
		req *mpi.Request
		t   Transfer
	}
	for si := range s.Steps {
		st := &s.Steps[si]
		ord := map[[2]int]int{}
		tagOf := func(t Transfer) int {
			k := [2]int{t.Src, t.Dst}
			q := ord[k]
			ord[k] = q + 1
			return mpi.Tag(epoch, phaseSched, si<<7|q)
		}
		var recvs []pendingRecv
		var sends []*mpi.Request
		for _, t := range st.Xfers {
			if t.Dst != me && t.Src != me {
				tagOf(t) // keep the shared ordinal stream in sync
				continue
			}
			tag := tagOf(t)
			if t.Dst == me {
				recvs = append(recvs, pendingRecv{p.Irecv(c, t.Src, tag), t})
			}
			if t.Src == me {
				buf := window(t.First, t.Count, t.Off, t.Len)
				switch t.Via {
				case ViaPull:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ByRef()))
				case ViaHCA:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ViaHCA()))
				case ViaRail:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ViaRail(t.Rail)))
				default:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf))
				}
			}
		}
		for _, pr := range recvs {
			data := p.Wait(pr.req)
			if pr.t.Via == ViaPull {
				p.ChargeCMA(pr.t.Len)
			}
			dst := window(pr.t.First, pr.t.Count, pr.t.Off, pr.t.Len)
			if pr.t.Red {
				if red == nil {
					panic("sched: schedule has reducing transfers but no reducer was supplied")
				}
				red(p, dst, data)
			} else {
				dst.CopyFrom(data)
			}
		}
		for _, cp := range st.Copies {
			if cp.Rank == me {
				p.ChargeCopy(cp.Count * m)
			}
		}
		for _, sr := range sends {
			p.Wait(sr)
		}
	}

	// Deliver the wanted ranges to the caller's buffers.
	for _, rng := range g.Want[me] {
		p.LocalCopy(out(rng), window(rng.First, rng.Count, 0, rng.Count*m))
	}
}

// ChargeRed is the reducer stand-in for phantom measurement runs: it
// charges the byte-wise fold's compute time (the analyzer's reduceBW)
// and moves no bytes.
func ChargeRed(p *mpi.Proc, dst, src mpi.Buf) {
	p.Compute(sim.FromSeconds(float64(src.Len()) / reduceBW))
}

// Runner adapts a schedule constructor to the verify.RunFn shape: each
// rank builds the schedule for the world's actual topology and message
// size and executes it. Constructors are deterministic pure functions of
// (topology, msg), so every rank builds the identical plan; the builds
// are cheap at verification scales.
func Runner(build func(topo topology.Cluster, msg int) *Schedule) func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	return func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		Execute(p, w, build(w.Topo(), send.Len()), send, recv)
	}
}

// Simulate runs the schedule on a fresh phantom world and returns the
// makespan (the latest rank-finish time). It is the measured counterpart
// of Analyze's Cost: same plan, real contention.
func Simulate(topo topology.Cluster, prm *netmodel.Params, s *Schedule) (sim.Duration, error) {
	return runSchedule(newPhantomWorld(topo, prm, nil), s)
}

// SimulateGoal is Simulate for a goal-based schedule: every rank runs
// ExecuteGoal with phantom buffers and the ChargeRed reducer.
func SimulateGoal(topo topology.Cluster, prm *netmodel.Params, s *Schedule, g *Goal) (sim.Duration, error) {
	w := newPhantomWorld(topo, prm, nil)
	phantom := func(rng Range) mpi.Buf { return mpi.Phantom(rng.Count * s.Msg) }
	var mu sync.Mutex
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		ExecuteGoal(p, w.CommWorld(), s, g, phantom, phantom, ChargeRed)
		mu.Lock()
		if p.Now() > worst {
			worst = p.Now()
		}
		mu.Unlock()
	})
	if err != nil {
		return 0, err
	}
	return sim.Duration(worst), nil
}

// newPhantomWorld builds the measurement world Simulate and
// SimulateHealth share, optionally under a fault schedule.
func newPhantomWorld(topo topology.Cluster, prm *netmodel.Params, fsched *faults.Schedule) *mpi.World {
	return mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true, Faults: fsched})
}

// runSchedule executes the schedule on every rank of w and returns the
// latest rank-finish time.
func runSchedule(w *mpi.World, s *Schedule) (sim.Duration, error) {
	var mu sync.Mutex
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		Execute(p, w, s, mpi.Phantom(s.Msg), mpi.Phantom(s.Msg*p.Size()))
		mu.Lock()
		if p.Now() > worst {
			worst = p.Now()
		}
		mu.Unlock()
	})
	if err != nil {
		return 0, err
	}
	return sim.Duration(worst), nil
}
