package sched

import (
	"fmt"
	"sync"

	"mha/internal/faults"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// phaseSched is the tag phase id of schedule-interpreter messages.
// Phases 0-8 belong to internal/collectives and 10-11 to internal/core;
// a distinct id keeps traces and tag dumps unambiguous. The 16-bit step
// field carries (step index << 7) | per-pair ordinal, which is why
// Validate caps schedules at 512 steps and 128 same-step transfers per
// (src, dst) pair.
const phaseSched = 12

// Execute runs the schedule on the mpi runtime as this rank's share of
// an allgather: send is the rank's contribution (Msg bytes), recv the
// full result (Msg * Size bytes). All ranks must call it, like any
// collective. The schedule must match the world's topology.
//
// Per step, the rank posts its receives, posts its sends (payloads are
// snapshotted at post time, so every send reads the pre-step state even
// when a receive of the same step would overwrite it), then completes
// receives and sends. Steps are rank-local: no global barrier separates
// them, so a step's CMA copies overlap a neighbor's rail transfers
// exactly as the hand-written overlapped designs do.
//
// Execute assumes a schedule Analyze accepts; running an invalid one
// may deadlock the simulation (which the engine reports) or produce
// wrong bytes (which verification catches), but never corrupts the
// runtime.
func Execute(p *mpi.Proc, w *mpi.World, s *Schedule, send, recv mpi.Buf) {
	topo := w.Topo()
	if topo.Nodes != s.Topo.Nodes || topo.PPN != s.Topo.PPN ||
		topo.HCAs != s.Topo.HCAs || topo.Layout != s.Topo.Layout {
		panic(fmt.Sprintf("sched: schedule for %v executed on %v", s.Topo, topo))
	}
	m := s.Msg
	if send.Len() != m || recv.Len() != m*p.Size() {
		panic(fmt.Sprintf("sched: buffer sizes (%d, %d) do not match schedule msg %d on %d ranks",
			send.Len(), recv.Len(), m, p.Size()))
	}
	c := w.CommWorld()
	me := p.Rank()
	epoch := c.Epoch(p)

	// Own contribution into place first, like every other variant.
	p.LocalCopy(recv.Slice(me*m, m), send)

	type pendingRecv struct {
		req *mpi.Request
		t   Transfer
	}
	for si := range s.Steps {
		st := &s.Steps[si]
		// Both endpoints must derive identical tags for the q-th transfer
		// between a pair, so the ordinal comes from scanning the step's
		// full transfer list in order on both sides.
		ord := map[[2]int]int{}
		tagOf := func(t Transfer) int {
			k := [2]int{t.Src, t.Dst}
			q := ord[k]
			ord[k] = q + 1
			return mpi.Tag(epoch, phaseSched, si<<7|q)
		}
		var recvs []pendingRecv
		var sends []*mpi.Request
		for _, t := range st.Xfers {
			if t.Dst != me && t.Src != me {
				tagOf(t) // keep the shared ordinal stream in sync
				continue
			}
			tag := tagOf(t)
			if t.Dst == me {
				recvs = append(recvs, pendingRecv{p.Irecv(c, t.Src, tag), t})
			}
			if t.Src == me {
				buf := recv.Slice(t.First*m+t.Off, t.Len)
				switch t.Via {
				case ViaPull:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ByRef()))
				case ViaHCA:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ViaHCA()))
				case ViaRail:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf, mpi.ViaRail(t.Rail)))
				default:
					sends = append(sends, p.Isend(c, t.Dst, tag, buf))
				}
			}
		}
		for _, pr := range recvs {
			data := p.Wait(pr.req)
			if pr.t.Via == ViaPull {
				// ByRef handoff: the reader performs (and pays for) the
				// actual copy out of the peer's buffer.
				p.ChargeCMA(pr.t.Len)
			}
			recv.Slice(pr.t.First*m+pr.t.Off, pr.t.Len).CopyFrom(data)
		}
		for _, cp := range st.Copies {
			if cp.Rank == me {
				p.ChargeCopy(cp.Count * m)
			}
		}
		for _, sr := range sends {
			p.Wait(sr)
		}
	}
}

// Runner adapts a schedule constructor to the verify.RunFn shape: each
// rank builds the schedule for the world's actual topology and message
// size and executes it. Constructors are deterministic pure functions of
// (topology, msg), so every rank builds the identical plan; the builds
// are cheap at verification scales.
func Runner(build func(topo topology.Cluster, msg int) *Schedule) func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	return func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		Execute(p, w, build(w.Topo(), send.Len()), send, recv)
	}
}

// Simulate runs the schedule on a fresh phantom world and returns the
// makespan (the latest rank-finish time). It is the measured counterpart
// of Analyze's Cost: same plan, real contention.
func Simulate(topo topology.Cluster, prm *netmodel.Params, s *Schedule) (sim.Duration, error) {
	return runSchedule(newPhantomWorld(topo, prm, nil), s)
}

// newPhantomWorld builds the measurement world Simulate and
// SimulateHealth share, optionally under a fault schedule.
func newPhantomWorld(topo topology.Cluster, prm *netmodel.Params, fsched *faults.Schedule) *mpi.World {
	return mpi.New(mpi.Config{Topo: topo, Params: prm, Phantom: true, Faults: fsched})
}

// runSchedule executes the schedule on every rank of w and returns the
// latest rank-finish time.
func runSchedule(w *mpi.World, s *Schedule) (sim.Duration, error) {
	var mu sync.Mutex
	var worst sim.Time
	err := w.Run(func(p *mpi.Proc) {
		Execute(p, w, s, mpi.Phantom(s.Msg), mpi.Phantom(s.Msg*p.Size()))
		mu.Lock()
		if p.Now() > worst {
			worst = p.Now()
		}
		mu.Unlock()
	})
	if err != nil {
		return 0, err
	}
	return sim.Duration(worst), nil
}
