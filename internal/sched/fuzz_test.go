package sched

import (
	"testing"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

// FuzzParseSchedule drives the schedule parser (text and JSON forms)
// with arbitrary input. Properties: Parse never panics; whatever it
// accepts validates, renders via String() in a form Parse accepts
// again, that render is a fixed point, and the analyzer can process
// small accepted schedules without panicking.
func FuzzParseSchedule(f *testing.F) {
	valid := NewBuilder("seedling", topology.New(2, 2, 2), 64)
	valid.Step()
	valid.Send(0, 1, 0).Send(2, 3, 2)
	valid.Step()
	valid.RailPiece(0, 2, 0, 2, 0, 64, 0).RailPiece(2, 0, 2, 2, 0, 64, 1)
	seedSched := valid.MustBuild()
	seedJSON, _ := seedSched.JSON()
	for _, seed := range []string{
		seedSched.String(),
		string(seedJSON),
		"schedule tiny nodes=1 ppn=2 msg=4\nstep\nxfer src=0 dst=1 first=0 count=1\nxfer src=1 dst=0 first=1 count=1\n",
		"schedule z nodes=1 ppn=2 msg=0\nstep\nxfer src=0 dst=1 first=0 count=1 via=pull\ncopy rank=0 first=0 count=1\n",
		"# comment\n\nschedule c nodes=2 ppn=1 hcas=2 layout=block msg=8\nstep\nxfer src=0 dst=1 first=0 count=1 via=rail rail=1\n",
		"schedule cyc nodes=3 ppn=2 layout=cyclic msg=7\nstep\nxfer src=0 dst=3 first=0 count=1 via=hca\n",
		"schedule bad nodes=0 ppn=0 msg=-1\n",
		"schedule x nodes=1 ppn=2 msg=4\nstep\nxfer src=0 dst=0 first=0 count=1\n",
		"schedule x nodes=1 ppn=2 msg=4\nxfer src=0 dst=1 first=0 count=1\n",
		"schedule x nodes=99999999 ppn=99999999 msg=99999999999\n",
		"schedule x nodes=1 ppn=2 msg=4 msg=5\n",
		"step\n",
		"{",
		`{"name":"j","nodes":1,"ppn":2,"hcas":1,"layout":"block","msg":4,"steps":[{"xfers":[{"src":0,"dst":1,"first":0,"count":1}]}]}`,
		`{"name":"j","nodes":1,"ppn":2,"hcas":1,"layout":"spiral","msg":4,"steps":[]}`,
	} {
		f.Add(seed)
	}
	prm := netmodel.Thor()
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a schedule Validate rejects: %v\ninput: %q", err, text)
		}
		rendered := s.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() output does not re-parse: %v\ninput: %q\nrendered:\n%s", err, text, rendered)
		}
		if s2.String() != rendered {
			t.Fatalf("String/Parse not a fixed point:\nfirst:\n%s\nsecond:\n%s", rendered, s2.String())
		}
		if s2.NumTransfers() != s.NumTransfers() {
			t.Fatalf("round trip changed transfer count: %d -> %d", s.NumTransfers(), s2.NumTransfers())
		}
		// Analyze must never panic on a validated schedule; keep the work
		// bounded so the fuzzer spends its time in the parser.
		if s.Topo.Size() <= 64 && len(s.Steps) <= 32 && s.NumTransfers() <= 256 {
			_, _ = Analyze(s, prm)
		}
	})
}
