package sched

import "fmt"

// Range is a contiguous block range [First, First+Count).
type Range struct {
	First, Count int
}

// Goal generalizes the schedule contract beyond allgather. The block
// space has Blocks entries (for an allgather, one per rank; for an
// alltoall, one per (src, dst) pair). Init[r] lists the ranges rank r
// holds before step 0, and Want[r] the ranges it must hold — fully
// covered and carrying exactly the canonical contributor set — after the
// last step.
//
// Contribution identity is what makes reductions checkable: rank r's
// initial copy of block b carries the contributor set {r}, a plain move
// preserves the sender's set, and a reducing transfer (Transfer.Red)
// unions two disjoint sets. The canonical set of block b is every rank
// whose Init covers b, so "fully reduced" and "not double-folded" are
// both completeness checks, not runtime properties.
type Goal struct {
	Blocks int
	Init   [][]Range
	Want   [][]Range
}

// AllgatherGoal is the classic contract Analyze always enforced: block b
// is rank b's contribution, and every rank must end holding all of them.
func AllgatherGoal(n int) *Goal {
	g := &Goal{Blocks: n, Init: make([][]Range, n), Want: make([][]Range, n)}
	for r := 0; r < n; r++ {
		g.Init[r] = []Range{{First: r, Count: 1}}
		g.Want[r] = []Range{{First: 0, Count: n}}
	}
	return g
}

// Validate checks the goal against a world of n ranks and the
// schedule's block space.
func (g *Goal) Validate(n, blocks int) error {
	if g.Blocks != blocks {
		return fmt.Errorf("sched: goal block space %d does not match schedule's %d", g.Blocks, blocks)
	}
	if g.Blocks < 1 || g.Blocks > maxBlocks {
		return fmt.Errorf("sched: goal block space %d outside [1,%d]", g.Blocks, maxBlocks)
	}
	if len(g.Init) != n || len(g.Want) != n {
		return fmt.Errorf("sched: goal shaped for %d ranks, world has %d", len(g.Init), n)
	}
	check := func(kind string, rs [][]Range) error {
		for r, list := range rs {
			for _, rng := range list {
				if rng.Count < 1 || rng.First < 0 || rng.First+rng.Count > g.Blocks {
					return fmt.Errorf("sched: goal %s rank %d: block range [%d,%d) out of [0,%d)",
						kind, r, rng.First, rng.First+rng.Count, g.Blocks)
				}
			}
		}
		return nil
	}
	if err := check("init", g.Init); err != nil {
		return err
	}
	if err := check("want", g.Want); err != nil {
		return err
	}
	// Every block some rank wants must have at least one contributor, or
	// completeness could never hold.
	contrib := make([]bool, g.Blocks)
	for _, list := range g.Init {
		for _, rng := range list {
			for b := rng.First; b < rng.First+rng.Count; b++ {
				contrib[b] = true
			}
		}
	}
	for r, list := range g.Want {
		for _, rng := range list {
			for b := rng.First; b < rng.First+rng.Count; b++ {
				if !contrib[b] {
					return fmt.Errorf("sched: goal: rank %d wants block %d, which no rank contributes", r, b)
				}
			}
		}
	}
	return nil
}

// contributors returns the canonical contributor set of every block.
func (g *Goal) contributors(n int) []contribSet {
	out := make([]contribSet, g.Blocks)
	for r, list := range g.Init {
		for _, rng := range list {
			for b := rng.First; b < rng.First+rng.Count; b++ {
				out[b] = out[b].with(r, n)
			}
		}
	}
	return out
}

// contribSet is a bitset of contributing ranks; nil means empty. All
// operations are pure (copy-on-write), so snapshots of pre-step state
// may alias live sets safely.
type contribSet []uint64

func setWords(n int) int { return (n + 63) / 64 }

func (s contribSet) has(r int) bool {
	w := r / 64
	return w < len(s) && s[w]&(1<<uint(r%64)) != 0
}

// with returns a new set with rank r added (n sizes fresh allocations).
func (s contribSet) with(r, n int) contribSet {
	out := make(contribSet, setWords(n))
	copy(out, s)
	out[r/64] |= 1 << uint(r%64)
	return out
}

func (s contribSet) equal(o contribSet) bool {
	long, short := s, o
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range long {
		if i < len(short) {
			if w != short[i] {
				return false
			}
		} else if w != 0 {
			return false
		}
	}
	return true
}

func (s contribSet) disjoint(o contribSet) bool {
	n := len(s)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if s[i]&o[i] != 0 {
			return false
		}
	}
	return true
}

// union returns a fresh set holding both operands' ranks.
func (s contribSet) union(o contribSet) contribSet {
	n := len(s)
	if len(o) > n {
		n = len(o)
	}
	out := make(contribSet, n)
	copy(out, s)
	for i, w := range o {
		out[i] |= w
	}
	return out
}

func (s contribSet) count() int {
	c := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}
