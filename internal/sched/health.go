package sched

import (
	"fmt"
	"math"

	"mha/internal/faults"
	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// Rail health enters the schedule layer as a plain vector: health[r] is
// rail r's surviving bandwidth fraction on every node, 1 healthy, 0 down,
// in between degraded. This is the steady-state summary the autotuner
// service (internal/tuner) keys its cache on — a schedule chosen for a
// machine whose rail 1 runs at half rate is a different artifact from the
// healthy machine's, and the synthesizer should know while searching, not
// discover it in simulation. A nil vector means every rail is healthy and
// selects exactly the original (health-oblivious) code paths.

// ValidHealth checks a health vector against a rail count: nil is always
// valid (all healthy); otherwise the vector must have one entry per rail,
// every entry in [0, 1], and at least one rail alive.
func ValidHealth(health []float64, hcas int) error {
	if health == nil {
		return nil
	}
	if len(health) != hcas {
		return fmt.Errorf("sched: health vector has %d entries for %d rails", len(health), hcas)
	}
	alive := false
	for r, h := range health {
		if math.IsNaN(h) || h < 0 || h > 1 {
			return fmt.Errorf("sched: rail %d health %v outside [0,1]", r, h)
		}
		if h > 0 {
			alive = true
		}
	}
	if !alive {
		return fmt.Errorf("sched: every rail down")
	}
	return nil
}

// healthOf reads one rail's fraction, treating nil as fully healthy.
func healthOf(health []float64, rail int) float64 {
	if health == nil {
		return 1
	}
	return health[rail]
}

// healthAllUp reports whether no rail is fully down.
func healthAllUp(health []float64) bool {
	for _, h := range health {
		if h <= 0 {
			return false
		}
	}
	return true
}

// ApplyHealth returns a schedule with no transfer pinned to a down rail:
// every ViaRail transfer whose rail has health <= 0 is rerouted to the
// ViaHCA policy transport, whose runtime striping (and the analyzer's
// pricing) spreads the bytes across the surviving rails. Rerouting never
// breaks the other invariants — hold tracking and completeness only see
// byte windows, and rail exclusivity exempts policy transfers — so a
// schedule Analyze accepts stays acceptable after repair. When nothing
// needs repair the original schedule is returned unchanged.
func ApplyHealth(s *Schedule, health []float64) *Schedule {
	if health == nil || healthAllUp(health) {
		return s
	}
	dirty := false
	for _, st := range s.Steps {
		for _, t := range st.Xfers {
			if t.Via == ViaRail && t.Rail < len(health) && health[t.Rail] <= 0 {
				dirty = true
			}
		}
	}
	if !dirty {
		return s
	}
	out := s.Clone()
	for si := range out.Steps {
		xs := out.Steps[si].Xfers
		for xi := range xs {
			if xs[xi].Via == ViaRail && xs[xi].Rail < len(health) && health[xs[xi].Rail] <= 0 {
				xs[xi].Via = ViaHCA
				xs[xi].Rail = 0
			}
		}
	}
	return out
}

// HealthFaults converts a health vector into the equivalent steady fault
// schedule: one open-ended Down per dead rail, one open-ended Degrade per
// partially degraded rail, on every node. A nil or fully healthy vector
// yields nil (no faults), so SimulateHealth degenerates to Simulate.
func HealthFaults(health []float64) (*faults.Schedule, error) {
	var fs []faults.Fault
	for r, h := range health {
		switch {
		case h >= 1:
		case h <= 0:
			fs = append(fs, faults.Fault{Kind: faults.Down, Node: faults.AllNodes, Rail: r})
		default:
			fs = append(fs, faults.Fault{Kind: faults.Degrade, Node: faults.AllNodes, Rail: r, Fraction: h})
		}
	}
	if len(fs) == 0 {
		return nil, nil
	}
	return faults.New(fs...)
}

// SimulateHealth measures the schedule's makespan on a world whose rails
// run at the health vector's steady fractions (the runtime's health-aware
// transport reacts exactly as it would under the equivalent fault
// schedule). The schedule should have been repaired with ApplyHealth
// first: a transfer pinned to a permanently down rail never completes.
func SimulateHealth(topo topology.Cluster, prm *netmodel.Params, s *Schedule, health []float64) (sim.Duration, error) {
	if err := ValidHealth(health, topo.HCAs); err != nil {
		return 0, err
	}
	fsched, err := HealthFaults(health)
	if err != nil {
		return 0, err
	}
	if fsched == nil {
		return Simulate(topo, prm, s)
	}
	w := newPhantomWorld(topo, prm, fsched)
	return runSchedule(w, s)
}
