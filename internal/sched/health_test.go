package sched

import (
	"reflect"
	"testing"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

func TestValidHealth(t *testing.T) {
	cases := []struct {
		h    []float64
		hcas int
		ok   bool
	}{
		{nil, 2, true},
		{[]float64{1, 1}, 2, true},
		{[]float64{0, 0.5}, 2, true},
		{[]float64{1}, 2, false},      // wrong length
		{[]float64{0, 0}, 2, false},   // every rail down
		{[]float64{1.5, 1}, 2, false}, // out of range
		{[]float64{-0.1, 1}, 2, false},
	}
	for _, c := range cases {
		err := ValidHealth(c.h, c.hcas)
		if (err == nil) != c.ok {
			t.Errorf("ValidHealth(%v, %d) = %v, want ok=%v", c.h, c.hcas, err, c.ok)
		}
	}
}

func TestApplyHealthReroutesDeadRailPins(t *testing.T) {
	topo := topology.New(2, 2, 2)
	prm := netmodel.Thor()
	s := TwoPhaseMHA(topo, prm, 64<<10, MHAOptions{Offload: AutoOffload})
	health := []float64{1, 0} // rail 1 down

	// The MHA lowering stripes across both rails, so repair must fire.
	rep := ApplyHealth(s, health)
	if rep == s {
		t.Fatalf("ApplyHealth returned the original schedule despite dead-rail pins")
	}
	for si, st := range rep.Steps {
		for xi, x := range st.Xfers {
			if x.Via == ViaRail && x.Rail == 1 {
				t.Fatalf("step %d xfer %d still pinned to dead rail 1", si, xi)
			}
		}
	}
	// The repaired schedule passes the health-aware invariants...
	if _, err := AnalyzeHealth(rep, prm, health); err != nil {
		t.Fatalf("repaired schedule rejected: %v", err)
	}
	// ...while the unrepaired one is rejected for pinning a down rail.
	if _, err := AnalyzeHealth(s, prm, health); err == nil {
		t.Fatalf("AnalyzeHealth accepted a schedule pinned to a down rail")
	}
	// Healthy vectors are a no-op.
	if got := ApplyHealth(s, []float64{1, 1}); got != s {
		t.Fatalf("ApplyHealth rewrote a schedule under a healthy vector")
	}
}

func TestAnalyzeHealthPricesDegradedRails(t *testing.T) {
	topo := topology.New(2, 2, 2)
	prm := netmodel.Thor()
	s := TwoPhaseMHA(topo, prm, 256<<10, MHAOptions{Offload: AutoOffload})

	healthy, err := AnalyzeHealth(s, prm, nil)
	if err != nil {
		t.Fatalf("healthy analysis: %v", err)
	}
	base, err := Analyze(s, prm)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if healthy.Cost != base.Cost {
		t.Fatalf("nil-health analysis drifted: %v != %v", healthy.Cost, base.Cost)
	}
	degraded, err := AnalyzeHealth(s, prm, []float64{1, 0.25})
	if err != nil {
		t.Fatalf("degraded analysis: %v", err)
	}
	if degraded.Cost <= healthy.Cost {
		t.Fatalf("degraded rail did not raise the predicted cost: %v <= %v", degraded.Cost, healthy.Cost)
	}
}

func TestSimulateHealthMatchesSimulateWhenHealthy(t *testing.T) {
	topo := topology.New(2, 2, 2)
	prm := netmodel.Thor()
	s := Ring(topo, 4<<10)
	plain, err := Simulate(topo, prm, s)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	viaHealth, err := SimulateHealth(topo, prm, s, []float64{1, 1})
	if err != nil {
		t.Fatalf("SimulateHealth: %v", err)
	}
	if plain != viaHealth {
		t.Fatalf("healthy SimulateHealth %v != Simulate %v", viaHealth, plain)
	}
	degraded, err := SimulateHealth(topo, prm, s, []float64{1, 0.5})
	if err != nil {
		t.Fatalf("degraded SimulateHealth: %v", err)
	}
	if degraded < plain {
		t.Fatalf("degraded run faster than healthy: %v < %v", degraded, plain)
	}
}

func TestSynthesizeUnderRailOutage(t *testing.T) {
	topo := topology.New(2, 4, 2)
	prm := netmodel.Thor()
	health := []float64{1, 0}
	res, err := Synthesize(topo, prm, 64<<10, SynthOptions{Health: health})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	for si, st := range res.Best.Sched.Steps {
		for xi, x := range st.Xfers {
			if x.Via == ViaRail && x.Rail == 1 {
				t.Fatalf("best schedule step %d xfer %d pinned to the dead rail", si, xi)
			}
		}
	}
	if _, err := AnalyzeHealth(res.Best.Sched, prm, health); err != nil {
		t.Fatalf("best schedule fails health-aware invariants: %v", err)
	}
	if res.Best.Makespan == 0 {
		t.Fatalf("measured synthesis left Makespan unset")
	}

	// Same inputs, same pick: the daemon's cache-consistency contract.
	again, err := Synthesize(topo, prm, 64<<10, SynthOptions{Health: health})
	if err != nil {
		t.Fatalf("second Synthesize: %v", err)
	}
	if again.Best.Name != res.Best.Name ||
		!reflect.DeepEqual(again.Best.Sched.Steps, res.Best.Sched.Steps) {
		t.Fatalf("synthesis is not deterministic: %s vs %s", again.Best.Name, res.Best.Name)
	}
}

func TestSynthesizePruneMarginSkipsSimulation(t *testing.T) {
	topo := topology.New(2, 4, 2)
	prm := netmodel.Thor()
	// An absurdly generous margin can never be exceeded, so the pick is
	// measured; a tiny margin on a shape where the analyzer clearly
	// separates candidates prunes.
	res, err := Synthesize(topo, prm, 256<<10, SynthOptions{PruneMargin: 1e-9})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !res.Pruned {
		// Acceptable when the top finalists are within a hair of each
		// other — but then the result must be measured.
		if res.Best.Makespan == 0 {
			t.Fatalf("unpruned synthesis left Makespan unset")
		}
		return
	}
	if res.Best.Makespan != 0 {
		t.Fatalf("pruned synthesis still simulated (makespan %v)", res.Best.Makespan)
	}
	if res.Best.Sched == nil {
		t.Fatalf("pruned synthesis emitted no schedule")
	}
}
