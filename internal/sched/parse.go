package sched

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"mha/internal/topology"
)

// The serialized forms. Text is line-oriented, mirroring the fault-
// schedule spec language of internal/faults:
//
//	schedule ring nodes=2 ppn=2 hcas=2 layout=block msg=1024
//	step
//	xfer src=0 dst=1 first=0 count=1
//	xfer src=2 dst=3 first=2 count=2 off=0 len=512 via=rail rail=1
//	copy rank=0 first=0 count=4
//
// Omitted off/len mean the whole range; omitted via means auto. Blank
// lines and '#' comments are skipped; a trailing "# ..." on any line is
// stripped. JSON is the same structure with lowercase keys; Parse
// dispatches on a leading '{'.

// jsonSchedule is the JSON shape of a Schedule.
type jsonSchedule struct {
	Name   string     `json:"name"`
	Nodes  int        `json:"nodes"`
	PPN    int        `json:"ppn"`
	HCAs   int        `json:"hcas"`
	Layout string     `json:"layout"`
	Msg    int        `json:"msg"`
	Blocks int        `json:"blocks,omitempty"`
	Steps  []jsonStep `json:"steps"`
}

type jsonStep struct {
	Xfers  []jsonXfer `json:"xfers,omitempty"`
	Copies []jsonCopy `json:"copies,omitempty"`
}

type jsonXfer struct {
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	First int    `json:"first"`
	Count int    `json:"count"`
	Off   *int   `json:"off,omitempty"`
	Len   *int   `json:"len,omitempty"`
	Via   string `json:"via,omitempty"`
	Rail  int    `json:"rail,omitempty"`
	Red   bool   `json:"red,omitempty"`
}

type jsonCopy struct {
	Rank  int `json:"rank"`
	First int `json:"first"`
	Count int `json:"count"`
}

// JSON renders the schedule as indented JSON (the machine-readable
// counterpart of String, accepted back by Parse).
func (s *Schedule) JSON() ([]byte, error) {
	js := jsonSchedule{
		Name:   s.Name,
		Nodes:  s.Topo.Nodes,
		PPN:    s.Topo.PPN,
		HCAs:   s.Topo.HCAs,
		Layout: s.Topo.Layout.String(),
		Msg:    s.Msg,
		Blocks: s.NumBlocks,
	}
	for _, st := range s.Steps {
		jst := jsonStep{}
		for _, t := range st.Xfers {
			jx := jsonXfer{Src: t.Src, Dst: t.Dst, First: t.First, Count: t.Count, Rail: t.Rail, Red: t.Red}
			if !t.Whole(s.Msg) {
				off, n := t.Off, t.Len
				jx.Off, jx.Len = &off, &n
			}
			if t.Via != ViaAuto {
				jx.Via = t.Via.String()
			}
			jst.Xfers = append(jst.Xfers, jx)
		}
		for _, cp := range st.Copies {
			jst.Copies = append(jst.Copies, jsonCopy{Rank: cp.Rank, First: cp.First, Count: cp.Count})
		}
		js.Steps = append(js.Steps, jst)
	}
	return json.MarshalIndent(js, "", "  ")
}

// Parse reads a schedule in the text form produced by String, or in JSON
// when the input starts with '{'. The result is shape-validated; run
// Analyze for the semantic checks.
func Parse(text string) (*Schedule, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "{") {
		return parseJSON(trimmed)
	}
	return parseText(text)
}

func parseJSON(text string) (*Schedule, error) {
	dec := json.NewDecoder(strings.NewReader(text))
	dec.DisallowUnknownFields()
	var js jsonSchedule
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("sched: bad JSON: %v", err)
	}
	layout, err := parseLayout(js.Layout)
	if err != nil {
		return nil, fmt.Errorf("sched: %v", err)
	}
	s := &Schedule{
		Name:      js.Name,
		Topo:      topology.Cluster{Nodes: js.Nodes, PPN: js.PPN, HCAs: js.HCAs, Layout: layout},
		Msg:       js.Msg,
		NumBlocks: js.Blocks,
	}
	if s.Name == "" {
		return nil, fmt.Errorf("sched: schedule has no name")
	}
	for si, jst := range js.Steps {
		st := Step{}
		for xi, jx := range jst.Xfers {
			t := Transfer{Src: jx.Src, Dst: jx.Dst, First: jx.First, Count: jx.Count, Rail: jx.Rail, Red: jx.Red}
			if (jx.Off == nil) != (jx.Len == nil) {
				return nil, fmt.Errorf("sched: step %d xfer %d: off and len must appear together", si, xi)
			}
			if jx.Off != nil {
				t.Off, t.Len = *jx.Off, *jx.Len
			} else {
				t.Len = t.Count * s.Msg
			}
			if jx.Via != "" {
				if t.Via, err = parseVia(jx.Via); err != nil {
					return nil, fmt.Errorf("sched: step %d xfer %d: %v", si, xi, err)
				}
			}
			st.Xfers = append(st.Xfers, t)
		}
		for _, jc := range jst.Copies {
			st.Copies = append(st.Copies, Copy{Rank: jc.Rank, First: jc.First, Count: jc.Count})
		}
		s.Steps = append(s.Steps, st)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseLayout(s string) (topology.Layout, error) {
	switch s {
	case "block":
		return topology.Block, nil
	case "cyclic":
		return topology.Cyclic, nil
	default:
		return 0, fmt.Errorf("unknown layout %q", s)
	}
}

func parseText(text string) (*Schedule, error) {
	var s *Schedule
	inStep := false
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		at := fmt.Sprintf("sched: line %d", ln+1)
		switch fields[0] {
		case "schedule":
			if s != nil {
				return nil, fmt.Errorf("%s: duplicate schedule header", at)
			}
			if len(fields) < 2 || strings.ContainsRune(fields[1], '=') {
				return nil, fmt.Errorf("%s: schedule header needs a name", at)
			}
			kv, err := keyvals(fields[2:], "nodes", "ppn", "hcas", "layout", "msg", "blocks")
			if err != nil {
				return nil, fmt.Errorf("%s: %v", at, err)
			}
			layout, err := parseLayout(kv.str("layout", "block"))
			if err != nil {
				return nil, fmt.Errorf("%s: %v", at, err)
			}
			nodes, err1 := kv.num("nodes", -1)
			ppn, err2 := kv.num("ppn", -1)
			hcas, err3 := kv.num("hcas", 1)
			msg, err4 := kv.num("msg", -1)
			blocks, err5 := kv.num("blocks", 0)
			for _, err := range []error{err1, err2, err3, err4, err5} {
				if err != nil {
					return nil, fmt.Errorf("%s: %v", at, err)
				}
			}
			s = &Schedule{
				Name:      fields[1],
				Topo:      topology.Cluster{Nodes: nodes, PPN: ppn, HCAs: hcas, Layout: layout},
				Msg:       msg,
				NumBlocks: blocks,
			}
		case "step":
			if s == nil {
				return nil, fmt.Errorf("%s: step before schedule header", at)
			}
			if len(fields) != 1 {
				return nil, fmt.Errorf("%s: step takes no arguments", at)
			}
			s.Steps = append(s.Steps, Step{})
			inStep = true
		case "xfer":
			if !inStep {
				return nil, fmt.Errorf("%s: xfer outside a step", at)
			}
			kv, err := keyvals(fields[1:], "src", "dst", "first", "count", "off", "len", "via", "rail", "red")
			if err != nil {
				return nil, fmt.Errorf("%s: %v", at, err)
			}
			t := Transfer{}
			var errs [6]error
			t.Src, errs[0] = kv.num("src", -1)
			t.Dst, errs[1] = kv.num("dst", -1)
			t.First, errs[2] = kv.num("first", -1)
			t.Count, errs[3] = kv.num("count", -1)
			t.Off, errs[4] = kv.num("off", 0)
			t.Len, errs[5] = kv.num("len", t.Count*s.Msg)
			for _, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("%s: %v", at, err)
				}
			}
			if kv.has("off") != kv.has("len") {
				return nil, fmt.Errorf("%s: off and len must appear together", at)
			}
			if t.Via, err = parseVia(kv.str("via", "auto")); err != nil {
				return nil, fmt.Errorf("%s: %v", at, err)
			}
			if t.Rail, err = kv.num("rail", 0); err != nil {
				return nil, fmt.Errorf("%s: %v", at, err)
			}
			red, err := kv.num("red", 0)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", at, err)
			}
			t.Red = red != 0
			st := &s.Steps[len(s.Steps)-1]
			st.Xfers = append(st.Xfers, t)
		case "copy":
			if !inStep {
				return nil, fmt.Errorf("%s: copy outside a step", at)
			}
			kv, err := keyvals(fields[1:], "rank", "first", "count")
			if err != nil {
				return nil, fmt.Errorf("%s: %v", at, err)
			}
			cp := Copy{}
			var errs [3]error
			cp.Rank, errs[0] = kv.num("rank", -1)
			cp.First, errs[1] = kv.num("first", -1)
			cp.Count, errs[2] = kv.num("count", -1)
			for _, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("%s: %v", at, err)
				}
			}
			st := &s.Steps[len(s.Steps)-1]
			st.Copies = append(st.Copies, cp)
		default:
			return nil, fmt.Errorf("%s: unknown directive %q", at, fields[0])
		}
	}
	if s == nil {
		return nil, fmt.Errorf("sched: empty input")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// kvset holds the key=value fields of one directive line.
type kvset map[string]string

// keyvals splits "k=v" fields, rejecting unknown keys and duplicates.
func keyvals(fields []string, allowed ...string) (kvset, error) {
	kv := kvset{}
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		k, v := f[:eq], f[eq+1:]
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown key %q", k)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

func (kv kvset) has(k string) bool { return kv[k] != "" }

func (kv kvset) str(k, def string) string {
	if v, ok := kv[k]; ok {
		return v
	}
	return def
}

// num parses an integer value; def < 0 with the key present is fine, a
// def of -1 paired with an absent required key surfaces later as a
// Validate range error.
func (kv kvset) num(k string, def int) (int, error) {
	v, ok := kv[k]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s value %q", k, v)
	}
	return n, nil
}
