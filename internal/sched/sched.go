// Package sched is the communication-schedule IR: an allgather written
// down as data instead of code. A Schedule is a sequence of steps, each a
// set of point-to-point transfers (src rank, dst rank, block range, byte
// window, transport/rail) plus intra-node staging copies. Transfers in
// one step run concurrently and read the pre-step state; their effects
// become visible in the next step.
//
// Representing the collective this way closes the loop the hand-written
// designs in internal/collectives and internal/core cannot: the same
// Schedule value can be
//
//   - checked statically for correctness (analyze.go: every rank ends
//     holding every block, nothing is forwarded before it is held, pinned
//     transfers never fight over a rail within a step) and priced on the
//     netmodel alpha-beta cost functions without running the simulator;
//   - executed on the internal/mpi runtime so real payload bytes move
//     (exec.go), which is how the sched-* variants registered with
//     internal/verify and the bench registry run;
//   - produced by lowering the existing ring, recursive-doubling, and
//     two-phase MHA designs (builders.go), serialized to a line-oriented
//     text or JSON form (parse.go), and searched over by the greedy/beam
//     synthesizer (synth.go).
package sched

import (
	"fmt"
	"strings"

	"mha/internal/topology"
)

// Via selects the transport carrying one transfer.
type Via int

const (
	// ViaAuto uses the runtime's default policy: a CMA copy for an
	// on-node peer, the HCA policy (round-robin small, striped large)
	// across nodes.
	ViaAuto Via = iota
	// ViaPull is a receiver-driven intra-node copy: the source exposes
	// its buffer (zero-cost pointer handoff) and the destination pays the
	// CMA read. Valid only between ranks on the same node. This is how
	// leader-based distribution phases spread cost across the readers.
	ViaPull
	// ViaHCA forces the network adapters even for an on-node peer (the
	// MHA offload loopback), with the default rail policy.
	ViaHCA
	// ViaRail pins the transfer to the Rail field on both endpoints. A
	// step grants a pinned rail exclusively per (node, direction); the
	// analyzer rejects schedules where two pinned transfers collide.
	ViaRail
)

func (v Via) String() string {
	switch v {
	case ViaAuto:
		return "auto"
	case ViaPull:
		return "pull"
	case ViaHCA:
		return "hca"
	case ViaRail:
		return "rail"
	default:
		return fmt.Sprintf("Via(%d)", int(v))
	}
}

// parseVia resolves the textual transport name.
func parseVia(s string) (Via, error) {
	switch s {
	case "auto":
		return ViaAuto, nil
	case "pull":
		return ViaPull, nil
	case "hca":
		return ViaHCA, nil
	case "rail":
		return ViaRail, nil
	default:
		return 0, fmt.Errorf("unknown transport %q", s)
	}
}

// Transfer moves bytes of a contiguous block range from one rank to
// another. Blocks are identified by contributing world rank (block b is
// rank b's send buffer), so a range [First, First+Count) covers Count
// consecutive ranks' contributions — with the block layout, a whole
// node's contribution is one range, which is what lets phase-2 transfers
// stripe a node block as one large message instead of PPN small ones.
//
// Off and Len select a byte window within the range (range-local
// offsets): Off = 0, Len = Count*msg is the whole range. Partial windows
// express striping: several transfers in one step, each pinned to a
// different rail, covering disjoint windows of the same range.
type Transfer struct {
	Src, Dst     int // world ranks, Src != Dst
	First, Count int // block range [First, First+Count)
	Off, Len     int // byte window within the range
	Via          Via
	Rail         int // meaningful only when Via == ViaRail
	// Red folds the payload into the destination's copy (byte-wise
	// reduction) instead of overwriting it. Reducing transfers must carry
	// their whole range (partial folds are not well-defined) and cannot
	// be receiver-driven pulls. Plain allgather schedules never set it.
	Red bool
}

// Whole reports whether the transfer carries its full block range.
func (t Transfer) Whole(msg int) bool { return t.Off == 0 && t.Len == t.Count*msg }

// Copy charges a local staging memcpy of a block range on one rank (the
// shared-memory publish of a leader before its peers read, for example).
// It moves no inter-rank data; the analyzer and interpreter price it on
// the rank's CPU.
type Copy struct {
	Rank         int
	First, Count int
}

// Step is one round of the schedule: its transfers and copies run
// concurrently, all reading the state left by the previous step.
type Step struct {
	Xfers  []Transfer
	Copies []Copy
}

// Schedule is a complete collective plan for one (topology, message
// size) pair. Msg is the per-block payload in bytes. By default the
// block space equals the world size and the contract is the allgather's
// (rank r starts holding only block r and must end holding all of
// them); a schedule lowered from internal/compose may set NumBlocks to
// use a different block space and pair the schedule with a Goal
// describing who starts and ends with what (see AnalyzeGoal).
type Schedule struct {
	Name string
	Topo topology.Cluster
	Msg  int
	// NumBlocks overrides the block-space size when > 0; 0 means the
	// classic allgather space (one block per rank).
	NumBlocks int
	Steps     []Step
}

// maxSteps bounds the step count so step indices fit the mpi.Tag step
// field next to the per-pair ordinal (9 + 7 bits).
const maxSteps = 512

// maxPerPair bounds same-step transfers between one (src, dst) pair.
const maxPerPair = 128

// maxRanks and maxMsg bound the schedule's scale so byte arithmetic
// (Count*Msg) cannot overflow and hostile parsed inputs cannot demand
// absurd allocations downstream.
const (
	maxRanks = 1 << 16
	maxMsg   = 1 << 32
)

// maxBlocks bounds an explicit block space (an alltoall's is the world
// size squared; anything far beyond that is a hostile input).
const maxBlocks = 1 << 20

// Blocks returns the size of the block space: NumBlocks when set, the
// world size (the allgather contract) otherwise.
func (s *Schedule) Blocks() int {
	if s.NumBlocks > 0 {
		return s.NumBlocks
	}
	return s.Topo.Size()
}

// NumTransfers counts the transfers across all steps.
func (s *Schedule) NumTransfers() int {
	n := 0
	for _, st := range s.Steps {
		n += len(st.Xfers)
	}
	return n
}

// Validate checks the schedule's shape: ranks and block ranges in
// bounds, byte windows inside their ranges, transports coherent (pull
// stays on-node, pinned rails exist), and the step/pair limits the
// interpreter's tag scheme requires. It does not check semantics — that
// is Analyze's job (hold tracking, rail conflicts, completeness).
func (s *Schedule) Validate() error {
	if err := s.Topo.Validate(); err != nil {
		return err
	}
	if s.Msg < 0 || s.Msg > maxMsg {
		return fmt.Errorf("sched: message size %d outside [0,%d]", s.Msg, maxMsg)
	}
	if s.Topo.Nodes > maxRanks || s.Topo.PPN > maxRanks || s.Topo.Size() > maxRanks {
		return fmt.Errorf("sched: topology %v exceeds the %d-rank limit", s.Topo, maxRanks)
	}
	if len(s.Steps) > maxSteps {
		return fmt.Errorf("sched: %d steps exceed the %d-step limit", len(s.Steps), maxSteps)
	}
	if s.NumBlocks < 0 || s.NumBlocks > maxBlocks {
		return fmt.Errorf("sched: block space %d outside [0,%d]", s.NumBlocks, maxBlocks)
	}
	n := s.Topo.Size()
	nb := s.Blocks()
	for si, st := range s.Steps {
		pair := map[[2]int]int{}
		for xi, t := range st.Xfers {
			at := fmt.Sprintf("sched: step %d xfer %d", si, xi)
			switch {
			case t.Src < 0 || t.Src >= n || t.Dst < 0 || t.Dst >= n:
				return fmt.Errorf("%s: rank out of range in %d->%d (size %d)", at, t.Src, t.Dst, n)
			case t.Src == t.Dst:
				return fmt.Errorf("%s: self transfer on rank %d (use a copy)", at, t.Src)
			case t.Count < 1 || t.First < 0 || t.First+t.Count > nb:
				return fmt.Errorf("%s: block range [%d,%d) out of [0,%d)", at, t.First, t.First+t.Count, nb)
			case t.Off < 0 || t.Len < 0 || t.Off+t.Len > t.Count*s.Msg:
				return fmt.Errorf("%s: byte window [%d,%d) outside range of %d bytes", at, t.Off, t.Off+t.Len, t.Count*s.Msg)
			case s.Msg > 0 && t.Len == 0:
				return fmt.Errorf("%s: empty byte window", at)
			case t.Via < ViaAuto || t.Via > ViaRail:
				return fmt.Errorf("%s: unknown transport %d", at, int(t.Via))
			case t.Via == ViaRail && (t.Rail < 0 || t.Rail >= s.Topo.HCAs):
				return fmt.Errorf("%s: rail %d out of range [0,%d)", at, t.Rail, s.Topo.HCAs)
			case t.Via != ViaRail && t.Rail != 0:
				return fmt.Errorf("%s: rail %d set on a %s transfer", at, t.Rail, t.Via)
			case t.Via == ViaPull && !s.Topo.SameNode(t.Src, t.Dst):
				return fmt.Errorf("%s: pull between ranks %d and %d on different nodes", at, t.Src, t.Dst)
			case t.Red && !t.Whole(s.Msg):
				return fmt.Errorf("%s: reducing transfer carries a partial window", at)
			case t.Red && t.Via == ViaPull:
				return fmt.Errorf("%s: reducing transfer cannot be a pull", at)
			}
			pair[[2]int{t.Src, t.Dst}]++
			if pair[[2]int{t.Src, t.Dst}] > maxPerPair {
				return fmt.Errorf("%s: more than %d transfers %d->%d in one step", at, maxPerPair, t.Src, t.Dst)
			}
		}
		for ci, cp := range st.Copies {
			if cp.Rank < 0 || cp.Rank >= n {
				return fmt.Errorf("sched: step %d copy %d: rank %d out of range", si, ci, cp.Rank)
			}
			if cp.Count < 1 || cp.First < 0 || cp.First+cp.Count > nb {
				return fmt.Errorf("sched: step %d copy %d: block range [%d,%d) out of [0,%d)", si, ci, cp.First, cp.First+cp.Count, nb)
			}
		}
	}
	return nil
}

// String renders the canonical text form parsed by Parse: a header line,
// then "step" separators with one xfer/copy line each. Whole-range
// windows, the auto transport, and rail 0 on non-pinned transfers are
// omitted, so String(Parse(String(s))) is a fixed point.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s nodes=%d ppn=%d hcas=%d layout=%s msg=%d",
		s.Name, s.Topo.Nodes, s.Topo.PPN, s.Topo.HCAs, s.Topo.Layout, s.Msg)
	if s.NumBlocks != 0 {
		fmt.Fprintf(&b, " blocks=%d", s.NumBlocks)
	}
	b.WriteByte('\n')
	for _, st := range s.Steps {
		b.WriteString("step\n")
		for _, t := range st.Xfers {
			fmt.Fprintf(&b, "xfer src=%d dst=%d first=%d count=%d", t.Src, t.Dst, t.First, t.Count)
			if !t.Whole(s.Msg) {
				fmt.Fprintf(&b, " off=%d len=%d", t.Off, t.Len)
			}
			if t.Via != ViaAuto {
				fmt.Fprintf(&b, " via=%s", t.Via)
			}
			if t.Via == ViaRail {
				fmt.Fprintf(&b, " rail=%d", t.Rail)
			}
			if t.Red {
				b.WriteString(" red=1")
			}
			b.WriteByte('\n')
		}
		for _, cp := range st.Copies {
			fmt.Fprintf(&b, "copy rank=%d first=%d count=%d\n", cp.Rank, cp.First, cp.Count)
		}
	}
	return b.String()
}

// Clone returns a deep copy (steps and their slices are independent).
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{Name: s.Name, Topo: s.Topo, Msg: s.Msg,
		NumBlocks: s.NumBlocks, Steps: make([]Step, len(s.Steps))}
	for i, st := range s.Steps {
		out.Steps[i] = Step{
			Xfers:  append([]Transfer(nil), st.Xfers...),
			Copies: append([]Copy(nil), st.Copies...),
		}
	}
	return out
}

// Builder accumulates a schedule step by step. Convenience emitters
// (Send, SendRange, Pull, RailPiece, ...) append to the current step;
// Step opens the next one. Build validates the result.
type Builder struct {
	s *Schedule
}

// NewBuilder starts an empty schedule for the given machine and message
// size. The first emitter call lands in step 0 automatically.
func NewBuilder(name string, topo topology.Cluster, msg int) *Builder {
	return &Builder{s: &Schedule{Name: name, Topo: topo, Msg: msg}}
}

// Blocks sets an explicit block-space size (see Schedule.NumBlocks).
// Call it before emitting transfers; lowerings for goal-based
// collectives whose block space is not one-per-rank need it.
func (b *Builder) Blocks(nb int) *Builder {
	b.s.NumBlocks = nb
	return b
}

// Step opens a new (initially empty) step.
func (b *Builder) Step() *Builder {
	b.s.Steps = append(b.s.Steps, Step{})
	return b
}

func (b *Builder) cur() *Step {
	if len(b.s.Steps) == 0 {
		b.Step()
	}
	return &b.s.Steps[len(b.s.Steps)-1]
}

// Xfer appends a fully-specified transfer to the current step.
func (b *Builder) Xfer(t Transfer) *Builder {
	st := b.cur()
	st.Xfers = append(st.Xfers, t)
	return b
}

// Send emits one whole block over the default transport.
func (b *Builder) Send(src, dst, block int) *Builder {
	return b.SendRange(src, dst, block, 1)
}

// SendRange emits a whole block range over the default transport.
func (b *Builder) SendRange(src, dst, first, count int) *Builder {
	return b.Xfer(Transfer{Src: src, Dst: dst, First: first, Count: count,
		Len: count * b.s.Msg})
}

// SendHCA emits a whole block range forced through the adapters with the
// default rail policy (the offload-loopback transport).
func (b *Builder) SendHCA(src, dst, first, count int) *Builder {
	return b.Xfer(Transfer{Src: src, Dst: dst, First: first, Count: count,
		Len: count * b.s.Msg, Via: ViaHCA})
}

// SendRed emits a whole block range that folds into the destination's
// copy (default transport). See Transfer.Red.
func (b *Builder) SendRed(src, dst, first, count int) *Builder {
	return b.Xfer(Transfer{Src: src, Dst: dst, First: first, Count: count,
		Len: count * b.s.Msg, Red: true})
}

// SendRedHCA is SendRed forced through the adapters with the default
// rail policy (reductions cannot pin partial windows, so striping is
// the transport's business).
func (b *Builder) SendRedHCA(src, dst, first, count int) *Builder {
	return b.Xfer(Transfer{Src: src, Dst: dst, First: first, Count: count,
		Len: count * b.s.Msg, Via: ViaHCA, Red: true})
}

// Pull emits a receiver-driven whole-range copy from an on-node peer.
func (b *Builder) Pull(src, dst, first, count int) *Builder {
	return b.Xfer(Transfer{Src: src, Dst: dst, First: first, Count: count,
		Len: count * b.s.Msg, Via: ViaPull})
}

// RailPiece emits a byte window of a block range pinned to one rail.
func (b *Builder) RailPiece(src, dst, first, count, off, n, rail int) *Builder {
	return b.Xfer(Transfer{Src: src, Dst: dst, First: first, Count: count,
		Off: off, Len: n, Via: ViaRail, Rail: rail})
}

// Striped emits a whole block range split across every rail in pinned
// pieces (netmodel.RailChunk sizing), or a single rail-0 transfer when
// the range is empty (zero-byte messages still synchronize).
func (b *Builder) Striped(src, dst, first, count, rails int) *Builder {
	total := count * b.s.Msg
	if total == 0 {
		return b.RailPiece(src, dst, first, count, 0, 0, 0)
	}
	off := 0
	for r := 0; r < rails; r++ {
		// Equal split with the remainder on the first rails, matching the
		// runtime's healthy striping.
		piece := total / rails
		if r < total%rails {
			piece++
		}
		if piece == 0 {
			continue
		}
		b.RailPiece(src, dst, first, count, off, piece, r)
		off += piece
	}
	return b
}

// Copy charges a local staging copy of a block range on one rank.
func (b *Builder) Copy(rank, first, count int) *Builder {
	st := b.cur()
	st.Copies = append(st.Copies, Copy{Rank: rank, First: first, Count: count})
	return b
}

// Build validates and returns the schedule.
func (b *Builder) Build() (*Schedule, error) {
	if err := b.s.Validate(); err != nil {
		return nil, err
	}
	return b.s, nil
}

// MustBuild is Build for the lowering constructors, whose inputs are
// generated: a validation failure is a bug, not bad user input.
func (b *Builder) MustBuild() *Schedule {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
